(* mgrts — command-line front end.

   Subcommands:
     gen      generate random instances (Section VII-A parameters)
     solve    decide feasibility of an instance with any solver path
     verify   check a schedule file against a task set
     fig1     print the paper's Figure 1
     table1 / table3 / table4 / ablation / baselines
              reproduce the corresponding experiment
     minproc  incremental search for the smallest feasible m

   Task sets are read as text: one task per line, "O C D T" integers,
   '#' comments allowed. *)

open Cmdliner
open Rt_model

(* ------------------------------------------------------------------ *)
(* Task-set file I/O (format: Rt_model.Io).                            *)

let read_taskset = Io.load_taskset
let print_taskset ts = print_string (Io.taskset_to_string ts)

(* ------------------------------------------------------------------ *)
(* Common arguments.                                                   *)

let m_arg =
  let doc = "Number of processors." in
  Arg.(required & opt (some int) None & info [ "m"; "processors" ] ~docv:"M" ~doc)

let limit_arg =
  let doc = "Per-run wall-clock limit in seconds (0 = unlimited)." in
  Arg.(value & opt float 0. & info [ "limit" ] ~docv:"SECONDS" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

(* Deliberately [string], not [Arg.file]: cmdliner's existence check only
   catches files missing at parse time (exit 124) and lets unreadable ones
   through to an uncaught [Sys_error].  Routing every path through
   [Io.load_taskset] under [guard] gives one behavior for both: a
   one-line "mgrts: ..." message and the stable invalid-input exit 3. *)
let file_arg =
  let doc = "Task-set file (one 'O C D T' line per task)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TASKSET" ~doc)

let budget_of_limit limit =
  if limit <= 0. then Prelude.Timer.unlimited else Prelude.Timer.budget ~wall_s:limit ()

(* ------------------------------------------------------------------ *)
(* Typed error handling.

   Every subcommand body runs under [guard]: bad input and resource
   exhaustion become a one-line "mgrts: ..." message on stderr and a
   stable nonzero exit code instead of a crash dump.  Exit codes:
   0 decided, 1 tool-specific failure, 2 undecided, 3 invalid input
   (malformed task set, m < 1, bad flags), 4 hyperperiod overflow,
   5 all portfolio arms crashed.  Genuinely unexpected exceptions
   (solver soundness bugs) still escape with a backtrace. *)

let guard f =
  try f () with
  | Failure msg ->
    (* [Io] parse errors ("line N: ...") and ad-hoc option validation. *)
    Printf.eprintf "mgrts: %s\n%!" msg;
    Core.error_exit_code (Core.Invalid_input msg)
  | e -> (
    match Core.error_of_exn e with
    | Some err ->
      Printf.eprintf "mgrts: %s\n%!" (Core.error_message err);
      Core.error_exit_code err
    | None -> raise e)

let solver_conv =
  (* The name grammar lives in [Core.solver_of_string], shared with the
     serve protocol's "solver" field.  [Portfolio]'s job count is a
     placeholder; [solve] substitutes --jobs. *)
  let parse s =
    match Core.solver_of_string s with
    | Some solver -> Ok solver
    | None -> Error (`Msg (Printf.sprintf "unknown solver %S" s))
  in
  Arg.conv (parse, fun ppf s -> Format.fprintf ppf "%s" (Core.solver_name s))

let solver_arg =
  let doc =
    "Solver path: csp1, csp1-sat, csp2-generic, csp2, csp2+rm, csp2+dm, csp2+tc, csp2+dc, \
     csp2-opt (alias csp2-opt+dc; also +rm/+dm/+tc), local-search, portfolio."
  in
  Arg.(value & opt solver_conv Core.default_solver & info [ "solver" ] ~docv:"SOLVER" ~doc)

let jobs_arg =
  let doc =
    "Domains for --solver portfolio or csp2-opt subtree splitting (0 = all available cores)."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let memo_mb_arg =
  let doc =
    "csp2-opt transposition-table cap in MiB (0 disables memoization; ignored by other \
     solvers)."
  in
  Arg.(value & opt int Csp2.Opt.default_memo_mb & info [ "memo-mb" ] ~docv:"MIB" ~doc)

let no_nogoods_arg =
  let doc =
    "csp2-opt: disable dominance-nogood learning (the memo and capacity bound stay on; \
     ignored by other solvers)."
  in
  Arg.(value & flag & info [ "no-nogoods" ] ~doc)

let split_depth_arg =
  let doc =
    "csp2-opt: time slots decided sequentially before the surviving prefixes are raced \
     across domains (0 keeps the search sequential; ignored by other solvers)."
  in
  Arg.(value & opt int 2 & info [ "split-depth" ] ~docv:"SLOTS" ~doc)

(* ------------------------------------------------------------------ *)
(* Commands.                                                           *)

let gen_cmd =
  let run n m tmax seed count offsets order =
    guard @@ fun () ->
    let order =
      match order with
      | "d" -> Gen.Generator.D_first
      | "c" -> Gen.Generator.C_first
      | "t" -> Gen.Generator.T_first
      | other -> failwith ("unknown order (use d, c or t): " ^ other)
    in
    let params = { (Gen.Generator.default ~n ~m:(Gen.Generator.Fixed_m m) ~tmax) with order; offsets } in
    let instances = Gen.Generator.batch ~seed ~count params in
    Array.iteri
      (fun i (ts, m) ->
        Printf.printf "# instance %d: m=%d U=%.3f r=%.3f T=%d\n" i m (Taskset.utilization ts)
          (Taskset.utilization_ratio ts ~m)
          (Taskset.hyperperiod ts);
        print_taskset ts)
      instances;
    0
  in
  let n = Arg.(value & opt int 10 & info [ "n"; "tasks" ] ~docv:"N" ~doc:"Number of tasks.") in
  let m = Arg.(value & opt int 5 & info [ "m" ] ~docv:"M" ~doc:"Number of processors.") in
  let tmax = Arg.(value & opt int 7 & info [ "tmax" ] ~docv:"TMAX" ~doc:"Maximum period.") in
  let count = Arg.(value & opt int 1 & info [ "count" ] ~docv:"K" ~doc:"Instances to emit.") in
  let offsets =
    Arg.(value & opt bool true & info [ "offsets" ] ~docv:"BOOL" ~doc:"Sample release offsets.")
  in
  let order =
    Arg.(value & opt string "d" & info [ "order" ] ~docv:"ORDER" ~doc:"Sampling order: d, c or t.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate random instances (Section VII-A).")
    Term.(const run $ n $ m $ tmax $ seed_arg $ count $ offsets $ order)

let solve_cmd =
  let run file m solver jobs memo_mb no_nogoods split_depth limit seed quiet trace progress
      failpoints watchdog_beats =
    guard @@ fun () ->
    Option.iter Resilience.Failpoint.arm_spec failpoints;
    let ts = read_taskset file in
    let budget = budget_of_limit limit in
    (* Telemetry: --trace records spans/counters for a Chrome trace dump,
       --progress streams heartbeat lines; either one turns recording on. *)
    if trace <> None || progress then begin
      Telemetry.start ();
      if progress then
        Telemetry.set_on_progress
          (Some
             (fun p ->
               Printf.eprintf "progress: %s nodes=%d fails=%d depth=%d rate=%.0f/s t=%.1fs\n%!"
                 p.Telemetry.p_name p.Telemetry.p_nodes p.Telemetry.p_fails
                 p.Telemetry.p_depth p.Telemetry.p_rate p.Telemetry.p_elapsed))
    end;
    let stats_acc = ref [] in
    let dump_trace () =
      match trace with
      | None -> ()
      | Some out ->
        Telemetry.stop ();
        let events = Telemetry.drain () in
        let json = Telemetry.to_chrome_json ~stats:(List.rev !stats_acc) events in
        (* Atomic: a crash or Ctrl-C mid-write must not leave a truncated
           trace for the CI shape check to choke on. *)
        Resilience.Artifact.write_atomic out json;
        let dropped = Telemetry.dropped () in
        Printf.eprintf "trace: %d event(s) written to %s%s\n%!" (List.length events) out
          (if dropped > 0 then Printf.sprintf " (%d dropped)" dropped else "")
    in
    let print_verdict verdict elapsed =
      match verdict with
      | Core.Feasible _ ->
        Printf.printf "feasible (%.4fs, %s)\n" elapsed (Core.solver_name solver)
      | Core.Infeasible -> Printf.printf "infeasible (%.4fs, proof)\n" elapsed
      | Core.Limit -> Printf.printf "limit reached (%.4fs): undecided\n" elapsed
      | Core.Memout reason -> Printf.printf "model too large: %s\n" reason
    in
    let verdict, report =
      match solver with
      | Core.Portfolio _ ->
        let jobs = if jobs > 0 then Some jobs else None in
        let r = Core.solve_portfolio ?jobs ~budget ~seed ~stall_beats:watchdog_beats ts ~m in
        List.iter
          (fun b ->
            if b.Portfolio.outcome <> None then
              stats_acc := b.Portfolio.stats :: !stats_acc)
          r.Portfolio.backends;
        (r.Portfolio.verdict, Some (Portfolio.summary r))
      | Core.Csp2_opt heuristic ->
        let jobs = if jobs > 0 then Some jobs else None in
        let verdict, elapsed, stats =
          Core.solve_csp2_opt ~heuristic ~budget ~memo_mb ~nogoods:(not no_nogoods) ?jobs
            ~split_depth ts ~m
        in
        print_verdict verdict elapsed;
        Option.iter
          (fun st ->
            stats_acc := Csp2.Opt.to_stats ~backend:(Core.solver_name solver) st :: !stats_acc)
          stats;
        let report =
          Option.map
            (fun st ->
              Printf.sprintf
                "csp2-opt: nodes=%d fails=%d memo hits=%d misses=%d stores=%d (%.1f%% hit \
                 rate) nogood hits=%d misses=%d stores=%d evicted=%d (%.1f%% hit rate) \
                 subtrees=%d pulls=%d steals=%d parks=%d"
                st.Csp2.Opt.nodes st.Csp2.Opt.fails st.Csp2.Opt.memo_hits
                st.Csp2.Opt.memo_misses st.Csp2.Opt.memo_stores
                (Csp2.Opt.hit_rate_pct ~hits:st.Csp2.Opt.memo_hits
                   ~misses:st.Csp2.Opt.memo_misses)
                st.Csp2.Opt.nogood_hits st.Csp2.Opt.nogood_misses st.Csp2.Opt.nogood_stores
                st.Csp2.Opt.nogood_evicted
                (Csp2.Opt.hit_rate_pct ~hits:st.Csp2.Opt.nogood_hits
                   ~misses:st.Csp2.Opt.nogood_misses)
                st.Csp2.Opt.subtrees st.Csp2.Opt.pulls st.Csp2.Opt.steals st.Csp2.Opt.parks)
            stats
        in
        (verdict, report)
      | _ ->
        let verdict, elapsed = Core.solve ~solver ~budget ~seed ts ~m in
        print_verdict verdict elapsed;
        (verdict, None)
    in
    Option.iter print_endline report;
    dump_trace ();
    (match verdict with
    | Core.Feasible sched -> if not quiet then Format.printf "%a@." Schedule.pp sched
    | Core.Infeasible | Core.Limit | Core.Memout _ -> ());
    match verdict with Core.Feasible _ | Core.Infeasible -> 0 | _ -> 2
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Do not print the schedule.") in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record solver spans, counters and heartbeats and write them as Chrome \
             trace-event JSON (load in chrome://tracing or Perfetto).")
  in
  let progress =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:"Stream rate-limited progress heartbeats (nodes, depth, node rate) to stderr.")
  in
  let failpoints =
    Arg.(
      value
      & opt (some string) None
      & info [ "failpoints" ] ~docv:"SPEC"
          ~doc:
            "Arm deterministic failpoints for fault-tolerance testing (same grammar as the \
             MGRTS_FAILPOINTS environment variable: \
             'site=raise:Out_of_memory@3,site2=delay:50ms').  Armed sites fire only inside \
             supervised portfolio arms.")
  in
  let watchdog_beats =
    Arg.(
      value & opt float 16.
      & info [ "watchdog-beats" ] ~docv:"BEATS"
          ~doc:
            "Portfolio stall-watchdog window, in heartbeat intervals: an arm silent for \
             this many intervals is cancelled alone and marked stalled (<= 0 disables the \
             watchdog).")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Decide feasibility of a task-set file.")
    Term.(
      const run $ file_arg $ m_arg $ solver_arg $ jobs_arg $ memo_mb_arg $ no_nogoods_arg
      $ split_depth_arg $ limit_arg $ seed_arg $ quiet $ trace $ progress $ failpoints
      $ watchdog_beats)

let fig1_cmd =
  let run () =
    print_string (Experiments.Tables.figure1 ());
    0
  in
  Cmd.v (Cmd.info "fig1" ~doc:"Print the paper's Figure 1.") Term.(const run $ const ())

let with_config limit instances seed f =
  let base = Experiments.Config.from_env () in
  let config =
    {
      base with
      Experiments.Config.limit_s = (if limit > 0. then limit else base.Experiments.Config.limit_s);
      instances = (if instances > 0 then instances else base.Experiments.Config.instances);
      seed;
    }
  in
  f config

let instances_arg =
  Arg.(value & opt int 0 & info [ "instances" ] ~docv:"K" ~doc:"Instance count (0 = default).")

let table1_cmd =
  let run limit instances seed =
    guard @@ fun () ->
    with_config limit instances seed (fun config ->
        let campaign = Experiments.Campaign.run config in
        print_string (Experiments.Tables.render_table1 (Experiments.Tables.table1 campaign));
        print_newline ();
        print_string (Experiments.Tables.render_table2 (Experiments.Tables.table2 campaign));
        0)
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce Tables I and II.")
    Term.(const run $ limit_arg $ instances_arg $ seed_arg)

let table3_cmd =
  let run limit instances seed =
    guard @@ fun () ->
    with_config limit instances seed (fun config ->
        let campaign = Experiments.Campaign.run config in
        print_string (Experiments.Tables.render_bucket_rows (Experiments.Tables.table3 campaign));
        0)
  in
  Cmd.v
    (Cmd.info "table3" ~doc:"Reproduce Table III.")
    Term.(const run $ limit_arg $ instances_arg $ seed_arg)

let table4_cmd =
  let run limit instances seed =
    guard @@ fun () ->
    with_config limit instances seed (fun config ->
        let config =
          if instances > 0 then { config with Experiments.Config.table4_instances = instances }
          else config
        in
        print_string (Experiments.Tables.render_table4 (Experiments.Tables.table4 config));
        0)
  in
  Cmd.v
    (Cmd.info "table4" ~doc:"Reproduce Table IV.")
    Term.(const run $ limit_arg $ instances_arg $ seed_arg)

let ablation_cmd =
  let run limit instances seed =
    guard @@ fun () ->
    with_config limit instances seed (fun config ->
        print_string (Experiments.Ablation.render (Experiments.Ablation.run config));
        0)
  in
  Cmd.v
    (Cmd.info "ablation" ~doc:"Run the encoding/search ablations.")
    Term.(const run $ limit_arg $ instances_arg $ seed_arg)

let baselines_cmd =
  let run limit instances seed =
    guard @@ fun () ->
    with_config limit instances seed (fun config ->
        print_string (Experiments.Baselines.render (Experiments.Baselines.run config));
        0)
  in
  Cmd.v
    (Cmd.info "baselines" ~doc:"Compare priority-driven baselines on feasible instances.")
    Term.(const run $ limit_arg $ instances_arg $ seed_arg)

let analyze_cmd =
  let run file m work_budget quiet =
    guard @@ fun () ->
    let ts = read_taskset file in
    let work_budget = if work_budget > 0 then Some work_budget else None in
    let report, analyzed = Core.analyze ?work_budget ts ~m in
    if analyzed != ts then
      Printf.printf "# arbitrary deadlines: report refers to the clone system (mgrts clone)\n";
    List.iter (Printf.printf "note: skipped %s\n") report.Analysis.skipped;
    Printf.printf "m lower bound: %d\n" report.Analysis.m_lower;
    match report.Analysis.verdict with
    | Analysis.Infeasible cert ->
      let valid = Analysis.Certificate.validate analyzed (Platform.identical ~m) cert in
      Format.printf "statically infeasible on %d processor(s) (%.4fs)@.%a@." m
        report.Analysis.time_s Analysis.Certificate.pp cert;
      if valid then begin
        print_endline "certificate: independently re-validated";
        0
      end
      else begin
        (* Should be unreachable: the analyzer only emits checkable chains. *)
        print_endline "certificate: FAILED validation (analyzer bug)";
        1
      end
    | Analysis.Trivially_feasible sched ->
      Printf.printf "trivially feasible: static partitioned schedule found (%.4fs)\n"
        report.Analysis.time_s;
      if not quiet then Format.printf "%a@." Schedule.pp sched;
      0
    | Analysis.Pruned d ->
      Format.printf "statically undecided (%.4fs): %a@." report.Analysis.time_s
        Analysis.Domains.pp d;
      2
  in
  let work_budget =
    Arg.(
      value & opt int 0
      & info [ "work-budget" ] ~docv:"UNITS"
          ~doc:"Analyzer work budget in abstract units (0 = default).")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Do not print the schedule.") in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the static schedulability analyzer alone: certified refutation, static \
          schedule, or pruned domains.")
    Term.(const run $ file_arg $ m_arg $ work_budget $ quiet)

let minproc_cmd =
  let run file solver limit =
    guard @@ fun () ->
    let ts = read_taskset file in
    let budget_per_m = if limit > 0. then Some (Prelude.Timer.budget ~wall_s:limit ()) else None in
    match Core.min_processors ~solver ~budget_per_m ts with
    | Core.Exact m ->
      Printf.printf "schedulable on %d processor(s) (lower bound %d)\n" m
        (Taskset.min_processors ts);
      0
    | Core.All_infeasible ->
      Printf.printf "not schedulable on up to %d processors\n" (Taskset.size ts);
      0
    | Core.Inconclusive { first_limit; feasible } ->
      (match feasible with
      | Some upper ->
        Printf.printf
          "inconclusive: schedulable on %d processor(s), but m=%d was undecided within the \
           budget (true minimum is in [%d, %d])\n"
          upper first_limit first_limit upper
      | None ->
        Printf.printf
          "inconclusive: m=%d was undecided within the budget and no larger m was proved \
           schedulable\n"
          first_limit);
      2
  in
  Cmd.v
    (Cmd.info "minproc" ~doc:"Find the smallest feasible processor count (Section VII-E).")
    Term.(const run $ file_arg $ solver_arg $ limit_arg)

let priority_cmd =
  let run file m limit =
    guard @@ fun () ->
    let ts = read_taskset file in
    let budget = budget_of_limit limit in
    (match Priority.Assignment.search ~budget ts ~m with
    | Priority.Assignment.Found ranks, stats ->
      Printf.printf "feasible fixed-priority assignment found (%d candidates simulated):\n"
        stats.Priority.Assignment.candidates;
      Array.iteri (fun i r -> Printf.printf "  task %d -> priority %d\n" (i + 1) r) ranks
    | Priority.Assignment.Not_found, stats ->
      Printf.printf "no fixed-priority assignment works (%d candidates simulated)\n"
        stats.Priority.Assignment.candidates
    | Priority.Assignment.Limit, _ -> Printf.printf "limit reached: undecided\n");
    0
  in
  Cmd.v
    (Cmd.info "priority" ~doc:"Search for a feasible fixed-priority assignment (future work #2).")
    Term.(const run $ file_arg $ m_arg $ limit_arg)

let simulate_cmd =
  let run file m policy =
    guard @@ fun () ->
    let ts = read_taskset file in
    let policy, label =
      match String.lowercase_ascii policy with
      | "edf" -> (Sched.Sim.EDF, "EDF")
      | "llf" -> (Sched.Sim.LLF, "LLF")
      | "rm" -> (Sched.Sim.Fixed_priority (Sched.Sim.rm_priorities ts), "RM")
      | "dm" -> (Sched.Sim.Fixed_priority (Sched.Sim.dm_priorities ts), "DM")
      | other -> failwith ("unknown policy (edf, llf, rm, dm): " ^ other)
    in
    let res = Sched.Sim.run ts ~m ~policy in
    if res.Sched.Sim.ok && res.Sched.Sim.exact then
      Printf.printf "%s meets all deadlines (schedule provably repeats)\n" label
    else if res.Sched.Sim.ok then
      Printf.printf "%s found no miss within the simulated window (not a proof)\n" label
    else begin
      Printf.printf "%s misses deadlines:\n" label;
      List.iter
        (fun { Sched.Sim.task; job; at } ->
          Printf.printf "  job %d of task %d at t=%d\n" job (task + 1) at)
        res.Sched.Sim.misses
    end;
    if res.Sched.Sim.ok && res.Sched.Sim.exact then 0 else 1
  in
  let policy =
    Arg.(value & opt string "edf" & info [ "policy" ] ~docv:"POLICY" ~doc:"edf, llf, rm or dm.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Simulate a priority-driven global scheduler (exact verdict).")
    Term.(const run $ file_arg $ m_arg $ policy)

let clone_cmd =
  let run file =
    guard @@ fun () ->
    let ts = read_taskset file in
    let reduction = Clone.transform ts in
    let cloned = Clone.cloned reduction in
    Printf.printf "# clone system (Section VI-B); origins:" ;
    Array.iteri
      (fun c _ -> Printf.printf " %d->%d" (c + 1) (Clone.origin reduction c + 1))
      (Taskset.tasks cloned);
    print_newline ();
    print_taskset cloned;
    0
  in
  Cmd.v
    (Cmd.info "clone" ~doc:"Print the arbitrary-deadline clone transform of a task set.")
    Term.(const run $ file_arg)

let dimacs_cmd =
  let run file m =
    guard @@ fun () ->
    let ts = read_taskset file in
    let model = Encodings.Csp1_sat.build ts ~m in
    print_string (Sat.Dimacs.to_string (Encodings.Csp1_sat.to_dimacs model));
    0
  in
  Cmd.v
    (Cmd.info "dimacs" ~doc:"Export the CSP1 encoding as DIMACS CNF (for external SAT solvers).")
    Term.(const run $ file_arg $ m_arg)

let metrics_cmd =
  let run file m solver limit polish =
    guard @@ fun () ->
    let ts = read_taskset file in
    match Core.solve ~solver ~budget:(budget_of_limit limit) ts ~m with
    | Core.Feasible sched, elapsed ->
      Format.printf "feasible (%.4fs); %a@." elapsed Rt_model.Metrics.pp
        (Rt_model.Metrics.analyze ts sched);
      if polish then begin
        let polished = Sched.Polish.minimize_migrations sched in
        Format.printf "polished:           %a@." Rt_model.Metrics.pp
          (Rt_model.Metrics.analyze ts polished)
      end;
      0
    | (Core.Infeasible | Core.Limit | Core.Memout _), _ ->
      print_endline "no schedule to measure";
      1
  in
  let polish =
    Arg.(value & flag & info [ "polish" ] ~doc:"Also report metrics after migration polishing.")
  in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Solve and report schedule quality metrics.")
    Term.(const run $ file_arg $ m_arg $ solver_arg $ limit_arg $ polish)

let verify_cmd =
  let run taskset_file schedule_file =
    guard @@ fun () ->
    let ts = read_taskset taskset_file in
    let ic = open_in schedule_file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let sched = Io.schedule_of_csv text in
    match Verify.check ts sched with
    | Ok () ->
      print_endline "schedule is feasible (C1-C4 hold)";
      0
    | Error violations ->
      Printf.printf "schedule is INVALID (%d violation(s)):\n" (List.length violations);
      List.iter
        (fun v -> Format.printf "  %a@." Verify.pp_violation v)
        violations;
      1
  in
  let schedule_file =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SCHEDULE.CSV"
           ~doc:"Schedule CSV (rows = processors, cells = 1-based task ids or empty).")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Check a schedule CSV against a task set (conditions C1-C4).")
    Term.(const run $ file_arg $ schedule_file)

let serve_cmd =
  let run workers jobs queue default_limit max_limit cache stats_every failpoints =
    guard @@ fun () ->
    Option.iter Resilience.Failpoint.arm_spec failpoints;
    let base = Serve.Scheduler.default_config () in
    let config =
      {
        base with
        Serve.Scheduler.workers = (if workers > 0 then workers else base.Serve.Scheduler.workers);
        jobs_per_request =
          (if jobs > 0 then jobs else base.Serve.Scheduler.jobs_per_request);
        queue_capacity =
          (if queue > 0 then queue else base.Serve.Scheduler.queue_capacity);
        default_wall_s =
          (if default_limit > 0. then default_limit else base.Serve.Scheduler.default_wall_s);
        max_wall_s = (if max_limit > 0. then max_limit else base.Serve.Scheduler.max_wall_s);
        cache_capacity =
          (if cache > 0 then cache else base.Serve.Scheduler.cache_capacity);
      }
    in
    let stats_every_s = if stats_every > 0. then Some stats_every else None in
    Serve.Daemon.run ~config ?stats_every_s ()
  in
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:"Concurrent requests in flight (0 = half the recommended domains).")
  in
  let jobs =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Domains each request's portfolio solve may use (0 = auto-shard).")
  in
  let queue =
    Arg.(
      value & opt int 0
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission-queue capacity: further solve requests are rejected with code 6 \
             until the backlog drains (0 = default 64).")
  in
  let default_limit =
    Arg.(
      value & opt float 0.
      & info [ "default-limit" ] ~docv:"SECONDS"
          ~doc:"Wall budget for requests that name none (0 = default 5s).")
  in
  let max_limit =
    Arg.(
      value & opt float 0.
      & info [ "max-limit" ] ~docv:"SECONDS"
          ~doc:"Hard per-request wall-budget clamp (0 = default 30s).")
  in
  let cache =
    Arg.(
      value & opt int 0
      & info [ "cache" ] ~docv:"ENTRIES"
          ~doc:"Verdict-cache capacity before LRU eviction (0 = default 512).")
  in
  let stats_every =
    Arg.(
      value & opt float 0.
      & info [ "stats-every" ] ~docv:"SECONDS"
          ~doc:
            "Emit a periodic {\"event\": \"stats\", ...} line on the output stream (0 = \
             only the final one).")
  in
  let failpoints =
    Arg.(
      value
      & opt (some string) None
      & info [ "failpoints" ] ~docv:"SPEC"
          ~doc:
            "Arm deterministic failpoints (MGRTS_FAILPOINTS grammar); serve requests run \
             supervised, so an armed serve.request site crashes individual requests, never \
             the daemon.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the multi-tenant solve daemon: NDJSON requests on stdin, one response per \
          line on stdout, shared verdict cache, per-request budgets and crash containment.")
    Term.(
      const run $ workers $ jobs $ queue $ default_limit $ max_limit $ cache $ stats_every
      $ failpoints)

let default =
  Term.(ret (const (`Help (`Pager, None))))

let () =
  let info = Cmd.info "mgrts" ~version:"1.0.0" ~doc:"Global multiprocessor real-time scheduling as a CSP." in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            gen_cmd;
            solve_cmd;
            analyze_cmd;
            fig1_cmd;
            table1_cmd;
            table3_cmd;
            table4_cmd;
            ablation_cmd;
            baselines_cmd;
            minproc_cmd;
            priority_cmd;
            simulate_cmd;
            clone_cmd;
            dimacs_cmd;
            metrics_cmd;
            verify_cmd;
            serve_cmd;
          ]))
