(* CLI for the concurrency model checker (lib/check).

   Default run: every non-mutation scenario, exhaustively (or
   preemption-bounded, per scenario); any violation prints its
   replayable schedule and fails the process.  CI calls this from the
   static-analysis job and uploads the per-scenario interleaving counts
   (--out) as an artifact.

   Mutation gate: --mutation NAME --expect-violation runs a
   deliberately broken scenario and *fails unless* the checker finds a
   violation — proving the checker can catch the bug class it exists
   for.  The found schedule is replayed once before trusting it. *)

let usage () =
  prerr_endline
    "usage: check [--list] [--only NAME] [--out FILE] [--mutation NAME --expect-violation]";
  exit 2

let mode_to_string = function
  | Check.Engine.Exhaustive { preemptions = None } -> "exhaustive+sleep-sets"
  | Check.Engine.Exhaustive { preemptions = Some k } ->
    Printf.sprintf "exhaustive, preemption-bound %d" k
  | Check.Engine.Random { walks; seed } -> Printf.sprintf "random, %d walks, seed %d" walks seed

let run_scenario (s : Check.Scenarios.t) =
  let t0 = Unix.gettimeofday () in
  let o = Check.Engine.explore s.mode s.body in
  let dt = Unix.gettimeofday () -. t0 in
  (o, dt)

let report buf (s : Check.Scenarios.t) (o : Check.Engine.outcome) dt =
  let line =
    Printf.sprintf "%-28s %-34s executions=%-8d choice_points=%-8d max_depth=%-4d %.2fs %s"
      s.name (mode_to_string s.mode) o.executions o.choice_points o.max_depth dt
      (match o.violation with None -> "ok" | Some _ -> "VIOLATION")
  in
  print_endline line;
  Buffer.add_string buf (line ^ "\n")

let () =
  let args = Array.to_list Sys.argv in
  let rec parse only out mutation expect = function
    | [] -> (only, out, mutation, expect)
    | "--list" :: _ ->
      List.iter
        (fun (s : Check.Scenarios.t) ->
          Printf.printf "%-28s %s%s\n" s.name s.descr
            (if s.mutation then " [mutation]" else ""))
        Check.Scenarios.all;
      exit 0
    | "--only" :: name :: rest -> parse (Some name) out mutation expect rest
    | "--out" :: file :: rest -> parse only (Some file) mutation expect rest
    | "--mutation" :: name :: rest -> parse only out (Some name) expect rest
    | "--expect-violation" :: rest -> parse only out mutation true rest
    | _ -> usage ()
  in
  let only, out, mutation, expect = parse None None None false (List.tl args) in
  match mutation with
  | Some name -> (
    if not expect then begin
      prerr_endline "check: --mutation requires --expect-violation";
      exit 2
    end;
    match Check.Scenarios.find name with
    | None ->
      Printf.eprintf "check: unknown scenario %s\n" name;
      exit 2
    | Some s -> (
      Printf.printf "mutation gate: %s (%s)\n%!" s.name (mode_to_string s.mode);
      let o, dt = run_scenario s in
      match o.violation with
      | None ->
        Printf.printf
          "mutation NOT caught after %d executions (%.2fs) — the checker is blind to this \
           bug class\n"
          o.executions dt;
        exit 1
      | Some v ->
        Format.printf "%a" Check.Engine.pp_violation v;
        (* Trust, but verify: the schedule must reproduce the same
           violation, not merely some violation. *)
        (match Check.Engine.replay s.body v.v_schedule with
        | Some v' when v'.v_kind = v.v_kind ->
          Printf.printf
            "mutation caught after %d executions (%.2fs); schedule replayed and reproduces\n"
            o.executions dt
        | Some v' ->
          Printf.printf "replay produced a different violation (%s) — engine bug\n" v'.v_kind;
          exit 1
        | None ->
          Printf.printf "recorded schedule did not replay — engine bug\n";
          exit 1);
        exit 0))
  | None ->
    let scenarios =
      match only with
      | None -> List.filter (fun (s : Check.Scenarios.t) -> not s.mutation) Check.Scenarios.all
      | Some name -> (
        match Check.Scenarios.find name with
        | Some s -> [ s ]
        | None ->
          Printf.eprintf "check: unknown scenario %s\n" name;
          exit 2)
    in
    let buf = Buffer.create 1024 in
    let failed = ref false in
    List.iter
      (fun (s : Check.Scenarios.t) ->
        match run_scenario s with
        | o, dt ->
          report buf s o dt;
          (match o.violation with
          | None -> ()
          | Some v ->
            failed := true;
            Format.printf "%a" Check.Engine.pp_violation v)
        | exception Check.Engine.Budget_exceeded msg ->
          failed := true;
          let line = Printf.sprintf "%-28s BUDGET EXCEEDED: %s" s.name msg in
          print_endline line;
          Buffer.add_string buf (line ^ "\n"))
      scenarios;
    (match out with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc (Buffer.contents buf);
      close_out oc);
    exit (if !failed then 1 else 0)
