(* Hot-path / concurrency lint over lib/, on compiler-libs parsetrees.

   Four rule families, all syntactic (no typing pass — the rules are
   chosen so that a parsetree is enough):

   poly-compare   Any use of the polymorphic comparator family that the
                  flambda-less compiler cannot specialize through a
                  function argument: bare [compare], [Stdlib.compare],
                  [Hashtbl.hash] — anywhere under lib/, applied or
                  passed ([List.sort compare] is the classic).  Files
                  that define their own [compare] are exempt for the
                  bare name.

   poly-minmax    Bare [min]/[max] (and [Stdlib.min]/[Stdlib.max]) in
                  the hot-path directories: these go through the
                  polymorphic compare runtime on every call unless the
                  compiler can prove the type, and on solver inner
                  loops they show up in profiles.  [Int.min] is the
                  fix.  Files defining their own min/max are exempt.

   racy-mutable   A write (record-field set, array set, [:=], [incr],
                  [decr]) inside a closure handed to a spawn-like
                  primitive (Domain.spawn, *.Thread.spawn, Pool.run,
                  *.assign) whose target is captured from an enclosing
                  scope and is not an Atomic/Mutex-mediated structure.
                  Local function names referenced from such closures
                  are chased through their let-bindings (the pool
                  worker bodies are named functions, not literals).
                  Genuinely safe sites (per-worker array slots indexed
                  by the worker id, single-writer refs read after join)
                  are annotated [@lint.racy_ok "reason"], which
                  suppresses the subtree and doubles as documentation.

   failpoint-catalogue
                  Three-way agreement between DESIGN.md's catalogue
                  (between <!-- failpoint-catalogue --> markers), the
                  [catalogue] value in lib/resilience/failpoint.ml, and
                  the actual [Failpoint.hit "site"] call sites under
                  lib/.  A drifting catalogue silently un-tests a
                  failure path, which is exactly what it exists to
                  prevent.

   Exit status 1 iff any finding; CI gates on it. *)

let hot_dirs =
  [ "prelude"; "model"; "csp2"; "sat"; "fd"; "analysis"; "localsearch"; "encodings" ]

type finding = { f_file : string; f_line : int; f_col : int; f_rule : string; f_msg : string }

let findings : finding list ref = ref []

let add ~file ~loc ~rule msg =
  let p = loc.Location.loc_start in
  findings :=
    {
      f_file = file;
      f_line = p.Lexing.pos_lnum;
      f_col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
      f_rule = rule;
      f_msg = msg;
    }
    :: !findings

let rec flatten_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_lid l @ [ s ]
  | Longident.Lapply _ -> []

let lid_str lid = String.concat "." (flatten_lid lid)

let has_racy_ok attrs =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = "lint.racy_ok") attrs

(* ------------------------------------------------------------------ *)
(* Per-file context. *)

type ctx = {
  file : string;
  hot : bool;
  defines : (string, unit) Hashtbl.t;  (* names let-bound anywhere in the file *)
  bindings : (string, Parsetree.expression) Hashtbl.t;  (* name -> bound expr *)
  mutable hits : (string * Location.t) list;  (* Failpoint.hit string literals *)
}

let iter_patterns pat_f =
  {
    Ast_iterator.default_iterator with
    pat =
      (fun self p ->
        (match p.Parsetree.ppat_desc with
        | Parsetree.Ppat_var { txt; _ } -> pat_f txt
        | _ -> ());
        Ast_iterator.default_iterator.pat self p);
  }

let collect_defines str =
  let tbl = Hashtbl.create 64 in
  let it = iter_patterns (fun name -> Hashtbl.replace tbl name ()) in
  it.structure it str;
  tbl

let collect_bindings str =
  let tbl = Hashtbl.create 64 in
  let record_vb (vb : Parsetree.value_binding) =
    match vb.pvb_pat.ppat_desc with
    | Parsetree.Ppat_var { txt; _ } ->
      if not (has_racy_ok vb.pvb_attributes) then Hashtbl.replace tbl txt vb.pvb_expr
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          record_vb vb;
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it str;
  tbl

(* ------------------------------------------------------------------ *)
(* Rules 1+2: polymorphic comparator family. *)

let check_comparators ctx str =
  let check_ident lid loc =
    match flatten_lid lid with
    | [ "compare" ] when not (Hashtbl.mem ctx.defines "compare") ->
      add ~file:ctx.file ~loc ~rule:"poly-compare"
        "bare `compare` is the polymorphic comparator; use a specialized compare \
         (Int.compare, a per-type compare, or a key extraction)"
    | [ "Stdlib"; "compare" ] ->
      add ~file:ctx.file ~loc ~rule:"poly-compare"
        "Stdlib.compare is the polymorphic comparator; use a specialized compare"
    | [ "Hashtbl"; "hash" ] | [ "Stdlib"; "Hashtbl"; "hash" ] ->
      add ~file:ctx.file ~loc ~rule:"poly-compare"
        "Hashtbl.hash is the polymorphic hash; hash the fields explicitly"
    | [ ("min" | "max") as n ] when ctx.hot && not (Hashtbl.mem ctx.defines n) ->
      add ~file:ctx.file ~loc ~rule:"poly-minmax"
        (Printf.sprintf
           "bare `%s` is polymorphic and unspecialized on this hot path; use Int.%s / \
            Float.%s"
           n n n)
    | [ "Stdlib"; (("min" | "max") as n) ] when ctx.hot ->
      add ~file:ctx.file ~loc ~rule:"poly-minmax"
        (Printf.sprintf "Stdlib.%s is polymorphic; use Int.%s / Float.%s" n n n)
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; loc } -> check_ident txt loc
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str

(* ------------------------------------------------------------------ *)
(* Rule 3: captured mutable writes inside spawn-like closures. *)

let spawn_like lid =
  match List.rev (flatten_lid lid) with
  | "spawn" :: _ :: _ -> true  (* Domain.spawn, Thread.spawn, T.spawn, ... *)
  | "run" :: owner :: _ -> owner = "Pool"  (* Pool.run, Csp2.Pool.run *)
  | "assign" :: _ :: _ -> true  (* Proto.assign / Pool_proto assign *)
  | _ -> false

let write_head lid =
  match flatten_lid lid with
  | [ "Array"; "set" ] | [ "Bytes"; "set" ] | [ ":=" ] | [ "incr" ] | [ "decr" ] -> true
  | _ -> false

(* The expression whose mutation we're attributing: strip field and
   array-read projections down to the root identifier. *)
let rec write_root (e : Parsetree.expression) =
  match e.pexp_desc with
  | Parsetree.Pexp_ident { txt; loc } -> Some (txt, loc)
  | Parsetree.Pexp_field (e', _) -> write_root e'
  | Parsetree.Pexp_apply
      ({ pexp_desc = Parsetree.Pexp_ident { txt = Longident.Ldot (Longident.Lident "Array", "get"); _ }; _ },
       (_, a) :: _) ->
    write_root a
  | _ -> None

(* Names bound anywhere under [e] (fun params, lets, match arms): an
   over-approximation of closure-local scope — good enough to separate
   captured targets from local bookkeeping. *)
let names_under_expr e =
  let tbl = Hashtbl.create 16 in
  let it = iter_patterns (fun name -> Hashtbl.replace tbl name ()) in
  it.expr it e;
  tbl

let check_closure ctx visited e0 =
  let rec walk_entry e0 =
    if has_racy_ok e0.Parsetree.pexp_attributes then ()
    else begin
      let local = names_under_expr e0 in
      let flag root_lid loc =
        match root_lid with
        | Longident.Lident n when Hashtbl.mem local n -> ()
        | _ ->
          add ~file:ctx.file ~loc ~rule:"racy-mutable"
            (Printf.sprintf
               "write to `%s`, captured by a closure that runs on another domain, without \
                Atomic/Mutex protection; make it atomic, move it inside the domain, or \
                annotate the write [@lint.racy_ok \"reason\"]"
               (lid_str root_lid))
      in
      let chase name =
        if (not (Hashtbl.mem local name)) && not (Hashtbl.mem visited name) then begin
          Hashtbl.replace visited name ();
          match Hashtbl.find_opt ctx.bindings name with
          | Some body -> walk_entry body
          | None -> ()
        end
      in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun self e ->
              if has_racy_ok e.Parsetree.pexp_attributes then ()
              else begin
                (match e.Parsetree.pexp_desc with
                | Parsetree.Pexp_setfield (tgt, _, _) -> (
                  match write_root tgt with
                  | Some (lid, loc) -> flag lid loc
                  | None -> ())
                | Parsetree.Pexp_apply
                    ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, (_, first) :: _)
                  when write_head txt -> (
                  match write_root first with
                  | Some (lid, loc) -> flag lid loc
                  | None -> ())
                | Parsetree.Pexp_ident { txt = Longident.Lident n; _ } -> chase n
                | _ -> ());
                Ast_iterator.default_iterator.expr self e
              end);
        }
      in
      it.expr it e0
    end
  in
  walk_entry e0

let check_spawns ctx str =
  let visited = Hashtbl.create 16 in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_apply ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, args)
            when spawn_like txt ->
            List.iter
              (fun (_, (arg : Parsetree.expression)) ->
                match arg.pexp_desc with
                | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ ->
                  check_closure ctx visited arg
                | Parsetree.Pexp_ident { txt = Longident.Lident n; _ } ->
                  if not (Hashtbl.mem visited n) then begin
                    Hashtbl.replace visited n ();
                    match Hashtbl.find_opt ctx.bindings n with
                    | Some body -> check_closure ctx visited body
                    | None -> ()
                  end
                | _ -> ())
              args
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str

(* ------------------------------------------------------------------ *)
(* Rule 4: failpoint catalogue agreement. *)

let collect_hits ctx str =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_apply ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, args)
            -> (
            match List.rev (flatten_lid txt) with
            | "hit" :: "Failpoint" :: _ -> (
              match args with
              | (_, { pexp_desc = Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _)); pexp_loc; _ })
                :: _ ->
                ctx.hits <- (s, pexp_loc) :: ctx.hits
              | _ -> ())
            | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it str

let catalogue_of_failpoint_ml str =
  let result = ref [] in
  let rec strings_of (e : Parsetree.expression) =
    match e.pexp_desc with
    | Parsetree.Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some { pexp_desc = Parsetree.Pexp_tuple [ hd; tl ]; _ }) ->
      (match hd.pexp_desc with
      | Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _)) -> s :: strings_of tl
      | _ -> strings_of tl)
    | _ -> []
  in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match vb.Parsetree.pvb_pat.ppat_desc with
          | Parsetree.Ppat_var { txt = "catalogue"; _ } -> result := strings_of vb.pvb_expr
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it str;
  !result

let design_catalogue design_file =
  if not (Sys.file_exists design_file) then None
  else begin
    let ic = open_in design_file in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    let start_marker = "<!-- failpoint-catalogue -->" in
    let stop_marker = "<!-- /failpoint-catalogue -->" in
    let find sub from =
      let sl = String.length sub and tl = String.length text in
      let rec go i = if i + sl > tl then None else if String.sub text i sl = sub then Some i else go (i + 1) in
      go from
    in
    match find start_marker 0 with
    | None -> None
    | Some i -> (
      match find stop_marker i with
      | None -> None
      | Some j ->
        let region = String.sub text i (j - i) in
        (* Collect `backtick.quoted` tokens that look like site names. *)
        let sites = ref [] in
        let len = String.length region in
        let k = ref 0 in
        while !k < len do
          if region.[!k] = '`' then begin
            let e = ref (!k + 1) in
            while !e < len && region.[!e] <> '`' && region.[!e] <> '\n' do incr e done;
            if !e < len && region.[!e] = '`' then begin
              let tok = String.sub region (!k + 1) (!e - !k - 1) in
              let is_site =
                String.length tok > 0
                && String.contains tok '.'
                && String.for_all
                     (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '.' || c = '_')
                     tok
              in
              if is_site then sites := tok :: !sites;
              k := !e + 1
            end
            else k := !k + 1
          end
          else incr k
        done;
        Some (List.rev !sites))
  end

let check_failpoints ~root all_hits =
  let dummy_loc = Location.none in
  let design_file = Filename.concat root "DESIGN.md" in
  let failpoint_ml = Filename.concat root "lib/resilience/failpoint.ml" in
  let sort = List.sort_uniq String.compare in
  let diff a b = List.filter (fun x -> not (List.mem x b)) a in
  let code_catalogue =
    if Sys.file_exists failpoint_ml then begin
      let ic = open_in failpoint_ml in
      let lb = Lexing.from_channel ic in
      Location.init lb failpoint_ml;
      let str = Parse.implementation lb in
      close_in ic;
      catalogue_of_failpoint_ml str
    end
    else []
  in
  let code_catalogue = sort code_catalogue in
  let hit_sites = sort (List.map fst all_hits) in
  (match design_catalogue design_file with
  | None ->
    add ~file:design_file ~loc:dummy_loc ~rule:"failpoint-catalogue"
      "DESIGN.md has no <!-- failpoint-catalogue --> ... <!-- /failpoint-catalogue --> \
       section to check the code against"
  | Some design_sites ->
    let design_sites = sort design_sites in
    List.iter
      (fun s ->
        add ~file:design_file ~loc:dummy_loc ~rule:"failpoint-catalogue"
          (Printf.sprintf "site `%s` documented in DESIGN.md but has no Failpoint.hit call site" s))
      (diff design_sites hit_sites);
    List.iter
      (fun s ->
        add ~file:design_file ~loc:dummy_loc ~rule:"failpoint-catalogue"
          (Printf.sprintf "Failpoint.hit %S exists in code but is missing from DESIGN.md's catalogue" s))
      (diff hit_sites design_sites));
  List.iter
    (fun s ->
      add ~file:failpoint_ml ~loc:dummy_loc ~rule:"failpoint-catalogue"
        (Printf.sprintf "Failpoint.catalogue lists `%s` but no Failpoint.hit call site uses it" s))
    (diff code_catalogue hit_sites);
  List.iter
    (fun s ->
      add ~file:failpoint_ml ~loc:dummy_loc ~rule:"failpoint-catalogue"
        (Printf.sprintf "Failpoint.hit %S exists in code but is missing from Failpoint.catalogue" s))
    (diff hit_sites code_catalogue)

(* ------------------------------------------------------------------ *)
(* Driver. *)

let rec ml_files dir =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.concat_map (fun entry ->
           let path = Filename.concat dir entry in
           if Sys.is_directory path then ml_files path
           else if Filename.check_suffix entry ".ml" then [ path ]
           else [])
  | exception Sys_error _ -> []

let is_hot path =
  List.exists
    (fun d ->
      let needle = Filename.concat "lib" d ^ Filename.dir_sep in
      let nl = String.length needle and pl = String.length path in
      let rec go i = i + nl <= pl && (String.sub path i nl = needle || go (i + 1)) in
      go 0)
    hot_dirs

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  let files = List.sort String.compare (ml_files (Filename.concat root "lib")) in
  if files = [] then begin
    Printf.eprintf "lint: no .ml files under %s/lib\n" root;
    exit 2
  end;
  let all_hits = ref [] in
  List.iter
    (fun file ->
      match
        let ic = open_in file in
        let lb = Lexing.from_channel ic in
        Location.init lb file;
        let str = Parse.implementation lb in
        close_in ic;
        str
      with
      | str ->
        let ctx =
          {
            file;
            hot = is_hot file;
            defines = collect_defines str;
            bindings = collect_bindings str;
            hits = [];
          }
        in
        check_comparators ctx str;
        check_spawns ctx str;
        collect_hits ctx str;
        all_hits := ctx.hits @ !all_hits
      | exception e ->
        add ~file ~loc:Location.none ~rule:"parse-error" (Printexc.to_string e))
    files;
  check_failpoints ~root !all_hits;
  let fs =
    List.sort_uniq
      (fun a b ->
        match String.compare a.f_file b.f_file with
        | 0 -> (
          match Int.compare a.f_line b.f_line with
          | 0 -> (
            match Int.compare a.f_col b.f_col with
            | 0 -> String.compare a.f_rule b.f_rule
            | c -> c)
          | c -> c)
        | c -> c)
      !findings
  in
  List.iter
    (fun f -> Printf.printf "%s:%d:%d: [%s] %s\n" f.f_file f.f_line f.f_col f.f_rule f.f_msg)
    fs;
  if fs = [] then print_endline "lint: no findings"
  else Printf.printf "lint: %d finding(s)\n" (List.length fs);
  exit (if fs = [] then 0 else 1)
