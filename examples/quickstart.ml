(* Quickstart: the paper's running example end to end.

   Builds Example 1 (n = 3 tasks, m = 2 processors, hyperperiod 12), shows
   its availability-interval pattern (Figure 1), finds a feasible periodic
   schedule with the dedicated CSP2 solver, verifies it against conditions
   C1-C4, and cross-checks all solver paths.

   Run with: dune exec examples/quickstart.exe *)

open Rt_model

let () =
  let ts = Examples.running_example in
  let m = Examples.running_example_m in
  Format.printf "Task system (paper Example 1):@.%a@." Taskset.pp ts;
  Format.printf "Availability intervals over one hyperperiod (Figure 1):@.%a@.@."
    Windows.pp_figure (Windows.build ts);

  (* Solve with the paper's best solver: dedicated CSP2 search, (D-C)
     value ordering.  Core.solve verifies the schedule before returning. *)
  (match Core.solve ts ~m with
  | Core.Feasible schedule, elapsed ->
    Format.printf "Feasible schedule found by %s in %.4fs:@.%a@."
      (Core.solver_name Core.default_solver) elapsed Schedule.pp schedule;
    Format.printf "Verification: %s@."
      (if Verify.is_feasible ts schedule then "all C1-C4 conditions hold" else "BUG");
    Format.printf "Quality: %a@.@." Metrics.pp (Metrics.analyze ts schedule)
  | (Core.Infeasible | Core.Limit | Core.Memout _), _ ->
    Format.printf "unexpected: the running example is feasible@.");

  (* Every solver path agrees (Theorems 1 and 2 in executable form). *)
  Format.printf "Cross-checking all solver paths:@.";
  List.iter
    (fun solver ->
      let verdict, elapsed = Core.solve ~solver ts ~m in
      Format.printf "  %-14s -> %-10s (%.4fs)@." (Core.solver_name solver)
        (Encodings.Outcome.to_string verdict) elapsed)
    Core.all_solvers;

  (* The smallest platform that works. *)
  match Core.min_processors ts with
  | Core.Exact m_min -> Format.printf "@.Minimum processors for feasibility: %d@." m_min
  | Core.Inconclusive { first_limit; _ } ->
    Format.printf "@.Undecided at m=%d within the budget@." first_limit
  | Core.All_infeasible ->
    Format.printf "@.Not schedulable on any platform up to n processors@."
