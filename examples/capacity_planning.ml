(* Capacity planning: how many processors does a workload need?

   Section VII-E of the paper closes with: "It would be interesting to use
   an algorithm which incrementally searches for the smallest number of
   processors m required to schedule a given set of tasks."  This example
   is that algorithm in use: generate workloads of growing utilization and
   compare three sizing answers —

     lower bound   ⌈U⌉            (the r <= 1 necessary condition)
     exact         min m with a feasible CSP schedule
     partitioned   min m accepted by first-fit EDF partitioning

   The gap between the last two is capacity wasted by refusing migration.

   Run with: dune exec examples/capacity_planning.exe *)

open Rt_model

let min_m_partitioned ts ~max_m =
  let rec go m =
    if m > max_m then None
    else if (Sched.Partitioned.partition ts ~m).Sched.Partitioned.ok then Some m
    else go (m + 1)
  in
  go 1

let () =
  Format.printf "workload   U      lower  exact  partitioned@.";
  let rng = Prelude.Prng.create ~seed:42 in
  let params = Gen.Generator.default ~n:8 ~m:(Gen.Generator.Fixed_m 2) ~tmax:6 in
  let shown = ref 0 in
  while !shown < 8 do
    let ts, _ = Gen.Generator.generate rng params in
    let lower = Taskset.min_processors ts in
    let budget_per_m = Some (Prelude.Timer.budget ~wall_s:0.5 ()) in
    match Core.min_processors ~budget_per_m ~max_m:8 ts with
    | Core.Exact exact ->
      let part = min_m_partitioned ts ~max_m:8 in
      incr shown;
      Format.printf "#%d        %5.2f  %5d  %5d  %s@." !shown (Taskset.utilization ts) lower
        exact
        (match part with Some p -> string_of_int p | None -> ">8");
      if exact > lower then
        Format.printf "           (windows too tight for the utilization bound alone)@.";
      (match part with
      | Some p when p > exact ->
        Format.printf "           (partitioning wastes %d processor(s) vs global)@." (p - exact)
      | Some _ | None -> ())
    | Core.Inconclusive _ | Core.All_infeasible ->
      ()  (* undecided within budget or unschedulable: skip, keep the output clean *)
  done
