open Prelude

type cell = {
  c_name : string;
  last : float Atomic.t;
  stalled_flag : bool Atomic.t;
  active : bool Atomic.t;
  cancel : unit -> unit;
}

type t = {
  stall_s : float;
  tick_s : float;
  cells : cell list Atomic.t;
  shutdown : bool Atomic.t;
  mutable dom : unit Domain.t option;
}

let create ?(stall_beats = 16.) () =
  let stall_s = Float.max 1e-3 (stall_beats *. Telemetry.heartbeat_interval ()) in
  (* A few scans per stall window: prompt detection without a busy loop,
     and [stop] joins within one tick. *)
  let tick_s = Float.max 0.002 (Float.min 0.05 (stall_s /. 4.)) in
  { stall_s; tick_s; cells = Atomic.make []; shutdown = Atomic.make false; dom = None }

let touch c = Atomic.set c.last (Timer.now ())

let watch t ~name ~cancel =
  let c =
    {
      c_name = name;
      last = Atomic.make (Timer.now ());
      stalled_flag = Atomic.make false;
      active = Atomic.make true;
      cancel;
    }
  in
  let rec push () =
    let old = Atomic.get t.cells in
    if not (Atomic.compare_and_set t.cells old (c :: old)) then push ()
  in
  push ();
  c

let unwatch c = Atomic.set c.active false
let stalled c = Atomic.get c.stalled_flag

(* Beats are emitted under backend family names, not arm identities, so
   the hook maps beat -> cell through domain-local state: an arm occupies
   exactly one domain while it runs. *)
let dls_cell : cell option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let with_cell c f =
  let r = Domain.DLS.get dls_cell in
  let saved = !r in
  r := Some c;
  Fun.protect ~finally:(fun () -> r := saved) f

let beat_hook () =
  match !(Domain.DLS.get dls_cell) with Some c -> touch c | None -> ()

(* The telemetry hook is global; a refcount keeps it installed exactly
   while some watchdog is live, so with none the heartbeat disabled path
   stays one atomic load. *)
let live = Atomic.make 0

let scan t =
  let now = Timer.now () in
  List.iter
    (fun c ->
      if
        Atomic.get c.active
        && (not (Atomic.get c.stalled_flag))
        && now -. Atomic.get c.last > t.stall_s
        && Atomic.compare_and_set c.stalled_flag false true
      then begin
        Telemetry.instant "watchdog.stall" ~cat:"resilience"
          ~args:[ ("arm", c.c_name); ("stall_s", Printf.sprintf "%.3f" t.stall_s) ];
        c.cancel ()
      end)
    (Atomic.get t.cells)

let start t =
  if Atomic.fetch_and_add live 1 = 0 then Telemetry.set_on_beat (Some beat_hook);
  t.dom <-
    Some
      (Domain.spawn (fun () ->
           while not (Atomic.get t.shutdown) do
             Unix.sleepf t.tick_s;
             scan t
           done))

let stop t =
  Atomic.set t.shutdown true;
  Option.iter Domain.join t.dom;
  t.dom <- None;
  if Atomic.fetch_and_add live (-1) = 1 then Telemetry.set_on_beat None
