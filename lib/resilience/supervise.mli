(** Crash containment for supervised units of work.

    {!protect} is the portfolio's per-arm containment wrapper: it turns an
    arbitrary crash — [Out_of_memory] while growing a memo, a
    [Stack_overflow] in a deep subtree, any solver bug — into a value the
    race loop can record and route around, instead of an exception that
    propagates through [Domain.join] and kills every arm.

    [Sys.Break] is deliberately {e not} contained: containing it would
    make a supervised solver uninterruptible from the keyboard. *)

type crash = {
  exn : string;  (** [Printexc.to_string] of the caught exception. *)
  backtrace : string;  (** Raw backtrace; empty when unavailable. *)
}

val protect : name:string -> (unit -> 'a) -> ('a, crash) result
(** Run [f] inside a failpoint injection scope
    ({!Failpoint.with_scope}), catching every exception except
    [Sys.Break].  A crash records a [crash:<name>] telemetry instant
    carrying the exception and backtrace, and returns [Error]. *)

val crash_message : crash -> string
(** The exception text alone — stable across environments (backtraces are
    not), so callers can pattern-match or log it compactly. *)
