type exn_kind = Out_of_memory | Stack_overflow | Failure_msg of string

type action =
  | Raise of exn_kind
  | Delay of float

type trigger =
  | Always
  | Nth of int
  | From of int

let catalogue =
  [
    "portfolio.arm_start";
    "portfolio.analysis";
    "csp2.node";
    "csp2opt.node";
    "csp2opt.memo_grow";
    "csp2opt.steal";
    "sat.propagate";
    "localsearch.restart";
    "localsearch.iter";
    "serve.request";
  ]

type site = {
  s_name : string;
  s_action : action;
  s_trigger : trigger;
  s_hits : int Atomic.t;  (* in-scope hits since arming *)
  s_fired : bool Atomic.t;  (* one-shot latch for [Nth] *)
}

(* The whole armed configuration lives behind one immutable list in an
   atomic, plus a boolean fast-path gate.  Arming is rare (tests, program
   start); [hit] on the hot path reads [armed_flag] once and returns. *)
let sites : site list Atomic.t = Atomic.make []
let armed_flag = Atomic.make false

let publish l =
  Atomic.set sites l;
  Atomic.set armed_flag (l <> [])

let armed () = Atomic.get armed_flag

(* Injection scope: a per-domain depth counter.  Armed sites fire only
   when the calling domain is inside at least one scope. *)
let dls_scope : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let in_scope () = !(Domain.DLS.get dls_scope) > 0

let with_scope f =
  let d = Domain.DLS.get dls_scope in
  incr d;
  Fun.protect ~finally:(fun () -> decr d) f

let find name = List.find_opt (fun s -> s.s_name = name) (Atomic.get sites)

let hits name = match find name with Some s -> Atomic.get s.s_hits | None -> 0

let arm ?(trigger = Always) name action =
  let s =
    {
      s_name = name;
      s_action = action;
      s_trigger = trigger;
      s_hits = Atomic.make 0;
      s_fired = Atomic.make false;
    }
  in
  publish (s :: List.filter (fun s -> s.s_name <> name) (Atomic.get sites))

let disarm name = publish (List.filter (fun s -> s.s_name <> name) (Atomic.get sites))

let reset () = publish []

let fire s =
  Telemetry.instant ("failpoint:" ^ s.s_name) ~cat:"resilience";
  match s.s_action with
  | Delay d -> Unix.sleepf d
  | Raise Out_of_memory -> raise Stdlib.Out_of_memory
  | Raise Stack_overflow -> raise Stdlib.Stack_overflow
  | Raise (Failure_msg m) -> failwith m

let hit name =
  if Atomic.get armed_flag && in_scope () then
    match find name with
    | None -> ()
    | Some s -> (
      let n = 1 + Atomic.fetch_and_add s.s_hits 1 in
      match s.s_trigger with
      | Always -> fire s
      | From k -> if n >= k then fire s
      | Nth k ->
        (* One-shot even under concurrent hits: the CAS on [s_fired]
           elects a single firing domain. *)
        if n >= k && Atomic.compare_and_set s.s_fired false true then fire s)

(* ------------------------------------------------------------------ *)
(* Spec parsing: "site=raise:Out_of_memory@3,other=delay:50ms". *)

let parse_duration s =
  let num t =
    match float_of_string_opt t with
    | Some v when v >= 0. -> Ok v
    | _ -> Error (Printf.sprintf "bad duration %S" s)
  in
  if Filename.check_suffix s "ms" then
    Result.map (fun v -> v /. 1000.) (num (Filename.chop_suffix s "ms"))
  else if Filename.check_suffix s "s" then num (Filename.chop_suffix s "s")
  else num s

let parse_action s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad action %S (want raise:<exn> or delay:<duration>)" s)
  | Some i -> (
    let kind = String.sub s 0 i in
    let arg = String.sub s (i + 1) (String.length s - i - 1) in
    match kind with
    | "delay" -> Result.map (fun d -> Delay d) (parse_duration arg)
    | "raise" -> (
      match String.index_opt arg ':' with
      | Some j when String.sub arg 0 j = "Failure" ->
        Ok (Raise (Failure_msg (String.sub arg (j + 1) (String.length arg - j - 1))))
      | _ -> (
        match arg with
        | "Out_of_memory" -> Ok (Raise Out_of_memory)
        | "Stack_overflow" -> Ok (Raise Stack_overflow)
        | "Failure" -> Ok (Raise (Failure_msg "injected failure"))
        | _ ->
          Error
            (Printf.sprintf "unknown exception %S (want Out_of_memory, Stack_overflow or Failure)"
               arg)))
    | _ -> Error (Printf.sprintf "unknown action kind %S (want raise or delay)" kind))

let parse_trigger s =
  if s = "" then Ok Always
  else
    let from = Filename.check_suffix s "+" in
    let t = if from then Filename.chop_suffix s "+" else s in
    match int_of_string_opt t with
    | Some n when n >= 1 -> Ok (if from then From n else Nth n)
    | _ -> Error (Printf.sprintf "bad trigger %S (want @N or @N+, N >= 1)" s)

let parse_entry s =
  match String.index_opt s '=' with
  | None -> Error (Printf.sprintf "bad entry %S (want site=action)" s)
  | Some i ->
    let name = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let action_s, trigger_s =
      match String.index_opt rest '@' with
      | None -> (rest, "")
      | Some j -> (String.sub rest 0 j, String.sub rest (j + 1) (String.length rest - j - 1))
    in
    Result.bind (parse_action action_s) (fun action ->
        Result.map (fun trigger -> (name, action, trigger)) (parse_trigger trigger_s))

let parse_spec s =
  let entries = String.split_on_char ',' (String.trim s) in
  let entries = List.filter (fun e -> String.trim e <> "") entries in
  List.fold_left
    (fun acc e ->
      Result.bind acc (fun l ->
          Result.map (fun entry -> entry :: l) (parse_entry (String.trim e))))
    (Ok []) entries
  |> Result.map List.rev

let arm_spec s =
  match parse_spec s with
  | Error msg -> invalid_arg ("Failpoint.arm_spec: " ^ msg)
  | Ok entries ->
    List.iter
      (fun (name, _, _) ->
        if not (List.mem name catalogue) then
          invalid_arg
            (Printf.sprintf "Failpoint.arm_spec: unknown site %S (catalogue: %s)" name
               (String.concat ", " catalogue)))
      entries;
    List.iter (fun (name, action, trigger) -> arm ~trigger name action) entries

(* Environment arming at program start: malformed input warns and is
   skipped entry by entry — injection must never crash the process by
   itself (and [hit] only ever fires inside a supervision scope). *)
let () =
  match Sys.getenv_opt "MGRTS_FAILPOINTS" with
  | None | Some "" -> ()
  | Some s ->
    List.iter
      (fun e ->
        let e = String.trim e in
        if e <> "" then
          match parse_entry e with
          | Ok (name, action, trigger) ->
            if not (List.mem name catalogue) then
              Printf.eprintf "mgrts: MGRTS_FAILPOINTS: unknown site %S (ignored)\n%!" name
            else arm ~trigger name action
          | Error msg -> Printf.eprintf "mgrts: MGRTS_FAILPOINTS: %s (ignored)\n%!" msg)
      (String.split_on_char ',' s)
