(* Two historical bugs live on in the regression tests:

   - The original writer [Sys.rename]d without fsyncing the temporary (or
     its directory), so a power loss shortly after the rename could still
     surface a truncated — or empty — artifact: rename is atomic with
     respect to *processes*, not to the disk.  The file data must reach
     stable storage before the rename makes it reachable, and the
     directory entry itself must be flushed after.

   - The temporary was the *fixed* name [path ^ ".tmp"], so two concurrent
     writers of the same artifact (e.g. two serve requests exporting
     traces) clobbered each other's half-written file and one of them
     renamed the other's bytes into place.  The name now embeds the pid
     and a process-wide counter, making it unique per writer. *)

let tmp_counter = Atomic.make 0

let tmp_name path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Atomic.fetch_and_add tmp_counter 1)

(* Flush the directory entry so the rename itself is durable.  Some
   filesystems refuse fsync on a directory fd (and any O_RDONLY open of a
   directory can fail on exotic setups) — degrade silently: the data-file
   fsync above already rules out the truncated-artifact failure mode. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_atomic path contents =
  let tmp = tmp_name path in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644 in
  (try
     let len = String.length contents in
     let written = ref 0 in
     while !written < len do
       written := !written + Unix.write_substring fd contents !written (len - !written)
     done;
     Unix.fsync fd;
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  (try Sys.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  fsync_dir (Filename.dirname path)
