(** Atomic, durable artifact writes.

    Bench tables, trace exports and serve-side dumps are consumed by CI
    jobs and diffed across runs; a crash or Ctrl-C mid-write must never
    leave a truncated half-file behind.  [write_atomic path contents]
    writes to a temporary unique to the calling writer (pid + counter, so
    concurrent writers of the same [path] never clobber each other's
    temporary), [Unix.fsync]s it, [Sys.rename]s it into place — rename is
    atomic on POSIX filesystems, so readers observe either the old file or
    the complete new one — and finally fsyncs the containing directory so
    the rename survives a power loss.  On any error the temporary is
    removed and the destination left untouched. *)

val write_atomic : string -> string -> unit
