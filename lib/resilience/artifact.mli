(** Atomic artifact writes.

    Bench tables and trace exports are consumed by CI jobs and diffed
    across runs; a crash or Ctrl-C mid-write must never leave a truncated
    half-file behind.  [write_atomic path contents] writes to
    [path ^ ".tmp"] and [Sys.rename]s it into place — rename is atomic on
    POSIX filesystems, so readers observe either the old file or the
    complete new one.  On any error the temporary is removed and the
    destination left untouched. *)

val write_atomic : string -> string -> unit
