(** Deterministic failpoint injection for fault-tolerance testing.

    A {e failpoint} is a named site in solver code ([Failpoint.hit
    "csp2opt.memo_grow"]) that normally does nothing but can be {e armed}
    to raise an exception or inject a delay — deterministically, so a test
    or a CI job can crash exactly one portfolio arm and assert that the
    race survives.  Sites are armed programmatically ({!arm}) or from the
    [MGRTS_FAILPOINTS] environment variable at program start.

    {b Overhead when disarmed} (the default): {!hit} is one [bool
    Atomic.t] load and a return — the same discipline as the telemetry
    layer, guarded by the same Bechamel micro-bench.

    {b Scoping}: an armed failpoint only ever fires inside a supervision
    scope ({!with_scope}, entered by {!Supervise.protect}).  Code that
    runs outside any containment wrapper — direct backend calls in unit
    tests, the sequential [Core.solve] paths — is never perturbed, which
    is what lets the whole test suite run under an injection matrix.

    {b Environment grammar}:
    [MGRTS_FAILPOINTS="site=raise:Out_of_memory@3,other=delay:50ms"] —
    a comma-separated list of [site=action] entries where [action] is
    [raise:Out_of_memory], [raise:Stack_overflow], [raise:Failure] (or
    [raise:Failure:msg]) or [delay:<duration>] ([50ms], [0.5s] or plain
    seconds), optionally followed by a trigger suffix: [@N] fires once on
    the [N]-th in-scope hit (1-based), [@N+] on every hit from the [N]-th
    on, and no suffix on every hit.  A malformed entry is reported on
    stderr and skipped — injection must never crash the process by
    itself. *)

type exn_kind = Out_of_memory | Stack_overflow | Failure_msg of string

type action =
  | Raise of exn_kind
  | Delay of float  (** seconds *)

type trigger =
  | Always
  | Nth of int  (** fire exactly once, on the [N]-th in-scope hit (1-based) *)
  | From of int  (** fire on every in-scope hit from the [N]-th on *)

val catalogue : string list
(** Every site compiled into the fleet, one per instrumented checkpoint:
    [portfolio.arm_start], [portfolio.analysis], [csp2.node],
    [csp2opt.node], [csp2opt.memo_grow], [sat.propagate],
    [localsearch.restart], [localsearch.iter], [serve.request]. *)

val hit : string -> unit
(** The instrumentation point.  Disarmed: one atomic load.  Armed: if the
    calling domain is inside a supervision scope and the site's trigger
    matches, performs the action (raises, or sleeps for a delay) after
    recording a [failpoint:<site>] telemetry instant. *)

val with_scope : (unit -> 'a) -> 'a
(** Run [f] with injection enabled for the calling domain (restored on
    exit, exceptions included).  {!Supervise.protect} wraps its thunk in
    this — user code rarely needs it directly. *)

val in_scope : unit -> bool
(** Whether the calling domain is inside a supervision scope. *)

val arm : ?trigger:trigger -> string -> action -> unit
(** Arm [site] (replacing any previous arming of the same site).  The
    site name is not validated — tests may arm ad-hoc sites — use
    {!arm_spec} for validated user input.  [trigger] defaults to
    [Always]. *)

val disarm : string -> unit
(** Remove any arming of [site]; no-op when not armed. *)

val reset : unit -> unit
(** Disarm every site, including those armed from the environment.  Test
    suites that own their injection state call this first. *)

val arm_spec : string -> unit
(** Parse a [MGRTS_FAILPOINTS]-grammar spec and arm each entry, validating
    site names against {!catalogue}.
    @raise Invalid_argument on a malformed entry or unknown site. *)

val armed : unit -> bool
(** Whether any site is currently armed (one atomic load). *)

val hits : string -> int
(** In-scope hits of [site] since it was (last) armed; 0 when unarmed.
    Only armed sites count — the disarmed fast path keeps no counters. *)
