(** Stall watchdog: a supervisor domain that cancels arms which stop
    making progress.

    Every backend already emits rate-limited heartbeats from its budget
    checkpoints ({!Telemetry.heartbeat}).  The watchdog turns those beats
    into liveness: each supervised arm registers a {e cell} ({!watch})
    whose timestamp is refreshed on every beat the arm's domain emits
    ({!with_cell} binds the beats to the cell), and a background domain
    ({!start}) scans the cells, marking any arm silent for longer than
    the stall window and invoking its [cancel] callback — exactly once.

    The beat plumbing costs nothing when no watchdog is live: the
    {!Telemetry.set_on_beat} hook is installed while at least one watchdog
    is started and removed when the last one stops, so the heartbeat
    disabled path stays one atomic load. *)

type cell
(** One supervised arm's liveness record. *)

type t
(** A watchdog instance: a set of cells plus the scanning domain. *)

val create : ?stall_beats:float -> unit -> t
(** A watchdog whose stall window is [stall_beats] (default 16.0) times
    the current {!Telemetry.heartbeat_interval}: an arm is stalled when it
    has emitted no beat — and made no other [touch] — for that long.  The
    scan period adapts to the window (a few scans per window, floored at
    2 ms), so short test windows are detected promptly. *)

val watch : t -> name:string -> cancel:(unit -> unit) -> cell
(** Register an arm.  [cancel] is invoked (once, from the watchdog
    domain) when the arm stalls — typically [Timer.cancel] on that arm's
    private budget.  The cell starts fresh: the clock runs from now. *)

val touch : cell -> unit
(** Refresh the cell's liveness clock.  Called automatically on each
    telemetry beat of the bound domain; callers can also touch manually
    around known-slow phases. *)

val unwatch : cell -> unit
(** Deactivate the cell: the scanner ignores it from now on.  Call when
    the arm finishes (crash included). *)

val stalled : cell -> bool
(** Whether the watchdog cancelled this arm for stalling. *)

val with_cell : cell -> (unit -> 'a) -> 'a
(** Run [f] with the calling domain's telemetry beats bound to [cell]
    (restored on exit): every {!Telemetry.heartbeat} emission the domain
    makes inside [f] touches the cell. *)

val start : t -> unit
(** Spawn the scanning domain and install the telemetry beat hook. *)

val stop : t -> unit
(** Shut the scanning domain down and join it (bounded by one scan
    period); uninstalls the beat hook when this was the last live
    watchdog. *)
