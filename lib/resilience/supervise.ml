type crash = { exn : string; backtrace : string }

let crash_message c = c.exn

(* Backtraces cost nothing until an exception is actually raised, and a
   contained crash without one is near-undiagnosable. *)
let () = Printexc.record_backtrace true

let protect ~name f =
  match Failpoint.with_scope f with
  | v -> Ok v
  | exception Sys.Break -> raise Sys.Break
  | exception e ->
    let backtrace = Printexc.get_backtrace () in
    let exn = Printexc.to_string e in
    Telemetry.instant ("crash:" ^ name) ~cat:"resilience"
      ~args:[ ("exception", exn); ("backtrace", backtrace) ];
    Error { exn; backtrace }
