(** Lock-free registry of per-writer ring buffers — the concurrency core
    of {!Telemetry}, functorized over {!Prelude.Sync.ATOMIC} so the model
    checker ([lib/check]) explores the registration/epoch protocol over
    instrumented atomics while production runs it over [Stdlib.Atomic].

    The protocol, and the invariants the checker holds it to:
    - {!Make.register} is a CAS-cons onto a shared list: concurrent
      registrations from any number of writers all land (no lost
      buffer), in some order;
    - each buffer has a {e single} writer, so {!Make.record} is plain
      array stores — a full ring overwrites oldest-first and counts
      every overwritten slot in [buf_dropped] (records in = records
      retained + drops, checked as a conservation law);
    - {!Make.new_epoch} invalidates every registered buffer at once:
      writers notice staleness ({!Make.stale}) on their next record and
      re-register a fresh buffer; {!Make.drain} and {!Make.dropped}
      ignore stale buffers entirely. *)

module Make (_ : Prelude.Sync.ATOMIC) : sig
  type 'a buffer = {
    tid : int;  (** writer identity, stamped into drained events *)
    epoch : int;  (** epoch at creation; stale when the core has moved on *)
    slots : 'a option array;
    mask : int;
    mutable next : int;
    mutable buf_dropped : int;
  }

  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  (** [capacity] (default [2^14], rounded up to a power of two, minimum
      2) is per ring.  The tiny minimum exists for the checker, which
      wants overflow reachable in a couple of records. *)

  val epoch : 'a t -> int
  val new_epoch : 'a t -> unit

  val fresh_buffer : 'a t -> tid:int -> 'a buffer
  (** A new empty ring stamped with the current epoch.  Not yet
      registered — callers pair this with {!register}. *)

  val register : 'a t -> 'a buffer -> unit
  val stale : 'a t -> 'a buffer -> bool

  val record : 'a buffer -> 'a -> unit
  (** Single-writer by contract: only the owning domain may call this. *)

  val dropped : 'a t -> int
  (** Total overwritten records across current-epoch buffers. *)

  val drain : 'a t -> 'a list
  (** All retained records of current-epoch buffers, in per-buffer write
      order but unordered across buffers (callers sort); resets every
      drained ring's cursor but {e not} its drop counter, so
      [kept + dropped = recorded] holds even when {!dropped} is read
      after the drain.  Call only after the writers have quiesced. *)
end
