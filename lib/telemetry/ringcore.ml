(* The telemetry ring/registry protocol, functorized over the atomics.

   What is concurrency-sensitive about telemetry is exactly this file:
   the lock-free CAS-cons registry of per-writer ring buffers, and the
   epoch stamp that lets a new recording session invalidate every old
   buffer without touching other domains' state.  The rings themselves
   are single-writer by construction (each domain records only into its
   own), so the write path needs no atomics at all — the checker
   verifies the registry never loses a concurrent registration and that
   a ring past capacity overwrites oldest-first while counting every
   drop, rather than trusting this comment.

   Policy (what an event is, domain-local storage, timestamp sorting,
   the enabled fast path) stays in Telemetry over the native
   instantiation. *)

module Make (A : Prelude.Sync.ATOMIC) = struct
  type 'a buffer = {
    tid : int;
    epoch : int;
    slots : 'a option array;
    mask : int;
    mutable next : int;  (* monotonically increasing write cursor *)
    mutable buf_dropped : int;
  }

  type 'a t = {
    registry : 'a buffer list A.t;
    current_epoch : int A.t;
    capacity : int;
  }

  let rec pow2 n p = if p >= n then p else pow2 n (2 * p)

  let create ?(capacity = 1 lsl 14) () =
    let capacity = pow2 (Int.max 2 capacity) 2 in
    { registry = A.make []; current_epoch = A.make 0; capacity }

  let epoch t = A.get t.current_epoch
  let new_epoch t = A.incr t.current_epoch

  let fresh_buffer t ~tid =
    {
      tid;
      epoch = A.get t.current_epoch;
      slots = Array.make t.capacity None;
      mask = t.capacity - 1;
      next = 0;
      buf_dropped = 0;
    }

  let register t buf =
    let rec go () =
      let old = A.get t.registry in
      if not (A.compare_and_set t.registry old (buf :: old)) then go ()
    in
    go ()

  let stale t buf = buf.epoch <> A.get t.current_epoch

  (* Single writer per buffer: no atomics, one array store. *)
  let record b x =
    let idx = b.next land b.mask in
    if b.next > b.mask then b.buf_dropped <- b.buf_dropped + 1;
    b.slots.(idx) <- Some x;
    b.next <- b.next + 1

  let dropped t =
    let epoch = A.get t.current_epoch in
    List.fold_left
      (fun acc b -> if b.epoch = epoch then acc + b.buf_dropped else acc)
      0 (A.get t.registry)

  let drain t =
    let epoch = A.get t.current_epoch in
    List.concat_map
      (fun b ->
        if b.epoch <> epoch then []
        else begin
          let n = Int.min b.next (b.mask + 1) in
          let evs = List.filter_map Fun.id (Array.to_list (Array.sub b.slots 0 n)) in
          (* [buf_dropped] survives the drain on purpose: callers report
             drops after draining (kept + dropped = recorded). *)
          b.next <- 0;
          Array.fill b.slots 0 (b.mask + 1) None;
          evs
        end)
      (A.get t.registry)
end
