open Prelude

(* Re-export: [telemetry.ml] is the library's entry module, so sibling
   modules are invisible outside unless aliased here. *)
module Ringcore = Ringcore

(* ------------------------------------------------------------------ *)
(* Unified per-backend statistics. *)

module Stats = struct
  type t = {
    backend : string;
    nodes : int;
    fails : int;
    depth : int;
    propagations : int;
    restarts : int;
    memo_hits : int;
    memo_misses : int;
    memo_stores : int;
    nogood_hits : int;
    nogood_misses : int;
    nogood_stores : int;
    subtrees : int;
    pulls : int;
    steals : int;
    parks : int;
    time_s : float;
  }

  let make ~backend ?(nodes = 0) ?(fails = 0) ?(depth = 0) ?(propagations = 0) ?(restarts = 0)
      ?(memo_hits = 0) ?(memo_misses = 0) ?(memo_stores = 0) ?(nogood_hits = 0)
      ?(nogood_misses = 0) ?(nogood_stores = 0) ?(subtrees = 0) ?(pulls = 0) ?(steals = 0)
      ?(parks = 0) ?(time_s = 0.) () =
    {
      backend;
      nodes;
      fails;
      depth;
      propagations;
      restarts;
      memo_hits;
      memo_misses;
      memo_stores;
      nogood_hits;
      nogood_misses;
      nogood_stores;
      subtrees;
      pulls;
      steals;
      parks;
      time_s;
    }

  let summary s =
    let b = Buffer.create 48 in
    Buffer.add_string b (Printf.sprintf "n=%d f=%d %.4fs" s.nodes s.fails s.time_s);
    if s.memo_hits + s.memo_misses + s.memo_stores > 0 then
      Buffer.add_string b
        (Printf.sprintf " memo=%d/%d/%d" s.memo_hits s.memo_misses s.memo_stores);
    if s.nogood_hits + s.nogood_misses + s.nogood_stores > 0 then
      Buffer.add_string b
        (Printf.sprintf " ng=%d/%d/%d" s.nogood_hits s.nogood_misses s.nogood_stores);
    if s.subtrees > 0 then Buffer.add_string b (Printf.sprintf " sub=%d" s.subtrees);
    if s.pulls > 0 then Buffer.add_string b (Printf.sprintf " pull=%d" s.pulls);
    if s.steals > 0 then Buffer.add_string b (Printf.sprintf " steal=%d" s.steals);
    if s.parks > 0 then Buffer.add_string b (Printf.sprintf " park=%d" s.parks);
    Buffer.contents b

  (* Hand-rolled: the repo deliberately has no JSON dependency. *)
  let json_escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let to_json s =
    Printf.sprintf
      "{\"backend\": \"%s\", \"nodes\": %d, \"fails\": %d, \"depth\": %d, \"propagations\": \
       %d, \"restarts\": %d, \"memo_hits\": %d, \"memo_misses\": %d, \"memo_stores\": %d, \
       \"nogood_hits\": %d, \"nogood_misses\": %d, \"nogood_stores\": %d, \"subtrees\": %d, \
       \"pulls\": %d, \"steals\": %d, \"parks\": %d, \"time_s\": %.6f}"
      (json_escape s.backend) s.nodes s.fails s.depth s.propagations s.restarts s.memo_hits
      s.memo_misses s.memo_stores s.nogood_hits s.nogood_misses s.nogood_stores s.subtrees
      s.pulls s.steals s.parks s.time_s
end

(* ------------------------------------------------------------------ *)
(* Global switch and trace clock. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

(* Trace origin, seconds since the epoch.  Written only by [start] (single
   writer by contract: instrumentation is armed before domains spawn). *)
let t_zero = Atomic.make 0.

type event = {
  e_name : string;
  e_cat : string;
  e_ph : [ `Span | `Instant | `Counter ];
  e_ts : float;
  e_dur : float;
  e_tid : int;
  e_value : int;
  e_args : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* Per-domain ring buffers.

   Each domain records into its own fixed-capacity ring (single writer, no
   atomics on the write path beyond the [enabled] load), claimed lazily
   through domain-local storage.  Buffers register themselves once in a
   global lock-free list (CAS cons); [drain] walks the list after the
   recording domains are joined.  An [epoch] stamp lets [start] invalidate
   old buffers without touching other domains' state.

   The registry/epoch/ring protocol itself lives in Ringcore, functorized
   over the atomics so the model checker can explore it; this module owns
   only the domain-local claiming, which is inherently native. *)

module Rings = Ringcore.Make (Prelude.Sync.Atomic)

let ring_capacity = 1 lsl 14
let rings : event Rings.t = Rings.create ~capacity:ring_capacity ()

let fresh_buffer () = Rings.fresh_buffer rings ~tid:(Domain.self () :> int)

let dls_buffer : event Rings.buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = fresh_buffer () in
      Rings.register rings b;
      b)

(* A domain that lives across [start] calls re-registers a fresh ring the
   first time it records in the new epoch. *)
let my_buffer () =
  let b = Domain.DLS.get dls_buffer in
  if not (Rings.stale rings b) then b
  else begin
    let fresh = fresh_buffer () in
    Domain.DLS.set dls_buffer fresh;
    Rings.register rings fresh;
    fresh
  end

let record ev =
  let b = my_buffer () in
  Rings.record b { ev with e_tid = b.Rings.tid }

(* [hb_active] (defined with the heartbeat machinery below) must track
   [enabled_flag]; forward through a mutable hook to keep definition
   order simple. *)
let refresh_hb_hook = ref (fun () -> ())

let start () =
  Rings.new_epoch rings;
  Atomic.set t_zero (Timer.now ());
  Atomic.set enabled_flag true;
  !refresh_hb_hook ()

let stop () =
  Atomic.set enabled_flag false;
  !refresh_hb_hook ()

let rel t = t -. Atomic.get t_zero

let dropped () = Rings.dropped rings
let drain () = List.sort (fun a b -> Float.compare a.e_ts b.e_ts) (Rings.drain rings)

(* ------------------------------------------------------------------ *)
(* Recording entry points. *)

let with_span ?(cat = "solver") ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Timer.now () in
    let emit args =
      record
        {
          e_name = name;
          e_cat = cat;
          e_ph = `Span;
          e_ts = rel t0;
          e_dur = Timer.now () -. t0;
          e_tid = (Domain.self () :> int);
          e_value = 0;
          e_args = args;
        }
    in
    match f () with
    | v ->
      emit args;
      v
    | exception e ->
      emit (("exception", Printexc.to_string e) :: args);
      raise e
  end

let instant ?(cat = "solver") ?(args = []) name =
  if enabled () then
    record
      {
        e_name = name;
        e_cat = cat;
        e_ph = `Instant;
        e_ts = rel (Timer.now ());
        e_dur = 0.;
        e_tid = (Domain.self () :> int);
        e_value = 0;
        e_args = args;
      }

let counter name value =
  if enabled () then
    record
      {
        e_name = name;
        e_cat = "counter";
        e_ph = `Counter;
        e_ts = rel (Timer.now ());
        e_dur = 0.;
        e_tid = (Domain.self () :> int);
        e_value = value;
        e_args = [];
      }

(* ------------------------------------------------------------------ *)
(* Progress heartbeats. *)

type progress = {
  p_name : string;
  p_nodes : int;
  p_fails : int;
  p_depth : int;
  p_rate : float;
  p_elapsed : float;
}

let on_progress : (progress -> unit) option Atomic.t = Atomic.make None
let set_on_progress f = Atomic.set on_progress f

let hb_interval = Atomic.make 0.5
let set_heartbeat_interval s = Atomic.set hb_interval (Float.max 1e-6 s)
let heartbeat_interval () = Atomic.get hb_interval

(* The liveness hook (the resilience watchdog): called on every
   rate-limited beat emission, whether or not event recording is on.
   [hb_active] is the combined gate — recording enabled OR a beat hook
   installed — kept as a single derived atomic so the heartbeat disabled
   path stays one atomic load. *)
let on_beat : (unit -> unit) option Atomic.t = Atomic.make None
let hb_active = Atomic.make false
let refresh_hb () = Atomic.set hb_active (Atomic.get enabled_flag || Atomic.get on_beat <> None)

let set_on_beat f =
  Atomic.set on_beat f;
  refresh_hb ()

let () = refresh_hb_hook := refresh_hb

type beat_state = { mutable last_t : float; mutable last_nodes : int }

let dls_beat : beat_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { last_t = 0.; last_nodes = 0 })

let heartbeat ~name ~nodes ~fails ~depth =
  if Atomic.get hb_active then begin
    let st = Domain.DLS.get dls_beat in
    let t = Timer.now () in
    if t -. st.last_t >= Atomic.get hb_interval then begin
      let rate =
        if st.last_t = 0. || t <= st.last_t then 0.
        else float_of_int (nodes - st.last_nodes) /. (t -. st.last_t)
      in
      st.last_t <- t;
      st.last_nodes <- nodes;
      (match Atomic.get on_beat with None -> () | Some f -> f ());
      if enabled () then begin
        counter (name ^ ".nodes") nodes;
        counter (name ^ ".depth") depth;
        counter (name ^ ".rate") (int_of_float rate);
        match Atomic.get on_progress with
        | None -> ()
        | Some f ->
          f
            {
              p_name = name;
              p_nodes = nodes;
              p_fails = fails;
              p_depth = depth;
              p_rate = rate;
              p_elapsed = rel t;
            }
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export. *)

let to_chrome_json ?(stats = []) events =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\": [\n";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b "  "
  in
  let args_json args =
    "{"
    ^ String.concat ", "
        (List.map
           (fun (k, v) ->
             Printf.sprintf "\"%s\": \"%s\"" (Stats.json_escape k) (Stats.json_escape v))
           args)
    ^ "}"
  in
  List.iter
    (fun e ->
      sep ();
      let us t = t *. 1e6 in
      match e.e_ph with
      | `Span ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %.1f, \"dur\": %.1f, \
              \"pid\": 1, \"tid\": %d, \"args\": %s}"
             (Stats.json_escape e.e_name) (Stats.json_escape e.e_cat) (us e.e_ts) (us e.e_dur)
             e.e_tid (args_json e.e_args))
      | `Instant ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", \"s\": \"t\", \"ts\": %.1f, \
              \"pid\": 1, \"tid\": %d, \"args\": %s}"
             (Stats.json_escape e.e_name) (Stats.json_escape e.e_cat) (us e.e_ts) e.e_tid
             (args_json e.e_args))
      | `Counter ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"C\", \"ts\": %.1f, \"pid\": 1, \
              \"tid\": %d, \"args\": {\"value\": %d}}"
             (Stats.json_escape e.e_name) (Stats.json_escape e.e_cat) (us e.e_ts) e.e_tid
             e.e_value))
    events;
  List.iter
    (fun (s : Stats.t) ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\": \"backend_stats\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"args\": %s}"
           (Stats.to_json s)))
    stats;
  Buffer.add_string b "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b
