(** Solver-wide instrumentation: spans, counters, progress heartbeats and a
    unified per-backend statistics record.

    The paper's whole evaluation (Section VII, Tables I–IV) is about where
    solver time goes under a wall-clock limit, yet each backend used to
    report its own ad-hoc [(nodes, fails)] pair and the portfolio race was
    a black box.  This module is the single observability layer:

    - {b spans}: named monotonic intervals ({!with_span}) recorded into
      {e per-domain} ring buffers — each domain writes only its own buffer,
      so recording is lock-free and safe under [Domain.spawn];
    - {b counters / instants}: point samples ({!counter}, {!instant}) in
      the same buffers;
    - {b heartbeats}: rate-limited progress samples emitted from the
      solvers' existing budget-poll checkpoints ({!heartbeat}), surfaced
      both as counter events and through a user callback
      ({!set_on_progress}) — this is [mgrts solve --progress];
    - {b {!Stats}}: the unified record every backend fills in place of its
      ad-hoc tuples;
    - {b Chrome trace export}: {!to_chrome_json} renders everything
      recorded as trace-event JSON loadable in [chrome://tracing] /
      Perfetto — this is [mgrts solve --trace].

    {b Overhead when disabled} (the default): every entry point first reads
    one [bool Atomic.t] and returns; solvers only reach these entry points
    from checkpoints they already own (every 256 search nodes), so the
    disabled cost on the hot paths is one atomic load per checkpoint —
    measured by the [telemetry] Bechamel micro-bench and the CSP2OPT bench
    guard (see DESIGN.md §8).

    Buffers are bounded: when a domain's ring fills, the oldest events are
    overwritten and the drop is counted ({!dropped}). *)

module Ringcore = Ringcore
(** The ring/registry protocol core, re-exported for the model checker
    ([lib/check]), which instantiates it over instrumented atomics. *)

(** The unified per-backend statistics record.  Fields that a backend does
    not track stay [0] ({!Stats.make} defaults): SAT reports decisions as
    [nodes] and conflicts as [fails]; local search reports iterations and
    restarts; the analysis arm reports statically forced cells as [nodes]
    and blocked cells as [fails]. *)
module Stats : sig
  type t = {
    backend : string;  (** Reporting backend, e.g. ["csp2-opt+D-C"]. *)
    nodes : int;  (** Search nodes / SAT decisions / LS iterations. *)
    fails : int;  (** Dead ends / SAT conflicts / LS restarts. *)
    depth : int;  (** Deepest slot (or depth) reached; 0 when untracked. *)
    propagations : int;
    restarts : int;
    memo_hits : int;
    memo_misses : int;
    memo_stores : int;
    nogood_hits : int;  (** Dominance-nogood prunes (csp2-opt only). *)
    nogood_misses : int;
    nogood_stores : int;
    subtrees : int;
    pulls : int;  (** Parallel work items taken from the worker's own queue. *)
    steals : int;  (** Parallel work items taken from {e another} worker's queue. *)
    parks : int;  (** Idle-worker sleeps while waiting for stealable work. *)
    time_s : float;
  }

  val make :
    backend:string ->
    ?nodes:int ->
    ?fails:int ->
    ?depth:int ->
    ?propagations:int ->
    ?restarts:int ->
    ?memo_hits:int ->
    ?memo_misses:int ->
    ?memo_stores:int ->
    ?nogood_hits:int ->
    ?nogood_misses:int ->
    ?nogood_stores:int ->
    ?subtrees:int ->
    ?pulls:int ->
    ?steals:int ->
    ?parks:int ->
    ?time_s:float ->
    unit ->
    t
  (** All counters default to 0, [time_s] to 0. *)

  val summary : t -> string
  (** Compact one-cell rendering: ["n=<nodes> f=<fails> <time>s"] plus the
      non-zero extras ([memo=h/m/s], [ng=h/m/s], [sub=], [pull=],
      [steal=], [park=]). *)

  val to_json : t -> string
  (** One flat JSON object (hand-rolled; the repo has no JSON dep). *)
end

(** {1 Global switch} *)

val enabled : unit -> bool
(** One atomic load — the only cost the solvers pay when tracing is off. *)

val start : unit -> unit
(** Enable recording and (re)zero the trace clock.  Events recorded before
    [start] are discarded by the next {!drain}. *)

val stop : unit -> unit
(** Disable recording.  Already-recorded events remain drainable. *)

(** {1 Recording}

    All of these are no-ops (one atomic load) when disabled.  Each domain
    records into its own ring buffer; no locks are taken anywhere. *)

val with_span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and records a complete span around it
    (also on exception).  [cat] is the Chrome trace category (default
    ["solver"]). *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** A zero-duration marker event. *)

val counter : string -> int -> unit
(** A named point sample, rendered as a Chrome counter track. *)

(** {1 Progress heartbeats} *)

type progress = {
  p_name : string;  (** Reporting solver, e.g. ["csp2-opt"]. *)
  p_nodes : int;
  p_fails : int;
  p_depth : int;  (** Best-slot watermark / current depth. *)
  p_rate : float;  (** Nodes per second since this domain's last beat. *)
  p_elapsed : float;  (** Seconds since {!start}. *)
}

val set_on_progress : (progress -> unit) option -> unit
(** Install the heartbeat listener ([mgrts solve --progress] prints one
    line per beat).  The callback runs on the {e solver's} domain — keep it
    short and re-entrant (e.g. a single [Printf.eprintf]). *)

val heartbeat : name:string -> nodes:int -> fails:int -> depth:int -> unit
(** Called by every solver at its budget-poll checkpoint.  Rate-limited
    per domain (at most one emission per {!set_heartbeat_interval}
    seconds): an emission records [nodes]/[depth]/rate counter events and
    invokes the {!set_on_progress} callback. *)

val set_heartbeat_interval : float -> unit
(** Default 0.5 s; clamped to be positive. *)

val heartbeat_interval : unit -> float
(** The current rate-limit interval — the resilience watchdog derives its
    stall window from it. *)

val set_on_beat : (unit -> unit) option -> unit
(** Install a liveness hook invoked on {e every} rate-limited beat
    emission, even when event recording is off — heartbeats become active
    whenever recording is enabled {e or} a beat hook is installed, at the
    cost of one (combined) atomic load on the disabled path.  The hook
    runs on the solver's domain: keep it tiny and re-entrant.  This is
    the resilience watchdog's progress signal; it installs the hook only
    while a watchdog is live. *)

(** {1 Draining and export} *)

type event = {
  e_name : string;
  e_cat : string;
  e_ph : [ `Span | `Instant | `Counter ];
  e_ts : float;  (** Seconds since {!start}. *)
  e_dur : float;  (** Span duration in seconds; 0 otherwise. *)
  e_tid : int;  (** Recording domain id. *)
  e_value : int;  (** Counter value; 0 otherwise. *)
  e_args : (string * string) list;
}

val drain : unit -> event list
(** Collect every recorded event from every domain's buffer, sorted by
    start time, and clear the buffers.  Call it after the recording
    domains have been joined (the portfolio and the CLI do): draining
    while another domain is still recording can miss — but never tear —
    that domain's in-flight events. *)

val dropped : unit -> int
(** Events overwritten by ring-buffer wrap-around since {!start}. *)

val to_chrome_json : ?stats:Stats.t list -> event list -> string
(** Chrome trace-event JSON: [{"traceEvents": [...], ...}] with one ["X"]
    (complete) event per span, ["i"] per instant, ["C"] per counter;
    timestamps in microseconds since {!start}, [tid] = recording domain.
    [stats] records are attached as metadata events so Perfetto shows the
    final per-backend counters next to the timeline. *)
