type t = {
  instances : int;
  limit_s : float;
  seed : int;
  table4_instances : int;
  table4_sizes : int list;
}

let default =
  {
    instances = 500;
    limit_s = 0.1;
    seed = 1;
    table4_instances = 100;
    table4_sizes = [ 4; 8; 16; 32; 64; 128; 256 ];
  }

let from_env () =
  let int_var name fallback =
    match Sys.getenv_opt name with
    | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> fallback)
    | None -> fallback
  in
  let float_var name fallback =
    match Sys.getenv_opt name with
    | Some s -> ( match float_of_string_opt s with Some v when v > 0. -> v | _ -> fallback)
    | None -> fallback
  in
  let sizes =
    match Sys.getenv_opt "MGRTS_T4_SIZES" with
    | None -> default.table4_sizes
    | Some s ->
      let parsed = String.split_on_char ',' s |> List.filter_map int_of_string_opt in
      if parsed = [] then default.table4_sizes else parsed
  in
  let instances = int_var "MGRTS_INSTANCES" default.instances in
  {
    instances;
    limit_s = float_var "MGRTS_LIMIT" default.limit_s;
    seed = int_var "MGRTS_SEED" default.seed;
    (* Scaling MGRTS_INSTANCES down (CI smoke runs) scales Table IV with
       it unless MGRTS_T4_INSTANCES pins it explicitly. *)
    table4_instances = int_var "MGRTS_T4_INSTANCES" (min default.table4_instances instances);
    table4_sizes = sizes;
  }

let budget t = Prelude.Timer.budget ~wall_s:t.limit_s ()
