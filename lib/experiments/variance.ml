open Prelude

type row = {
  instance : int;
  ratio : float;
  min_time : float;
  median_time : float;
  max_time : float;
  overruns : int;
  seeds : int;
  csp2_time : float;
}

let median sorted =
  let n = Array.length sorted in
  if n = 0 then 0.
  else if n land 1 = 1 then sorted.(n / 2)
  else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.

let run ?(instances = 10) ?(seeds = 20) (config : Config.t) =
  let params = Campaign.generation_params config in
  let pool = Gen.Generator.batch ~seed:(config.Config.seed + 4242) ~count:(4 * instances) params in
  let rows = ref [] in
  let kept = ref 0 in
  let idx = ref 0 in
  while !kept < instances && !idx < Array.length pool do
    let ts, m = pool.(!idx) in
    let times = Array.make seeds 0. in
    let overruns = ref 0 in
    for s = 0 to seeds - 1 do
      let r = Runner.run_one Runner.csp1 ts ~m ~limit_s:config.Config.limit_s ~seed:(1000 + s) in
      times.(s) <- r.Runner.time_s;
      if r.Runner.overrun then incr overruns
    done;
    (* Keep instances where randomness matters: at least one quick seed. *)
    if !overruns < seeds then begin
      Array.sort Float.compare times;
      let dc = List.nth Runner.csp2_variants 4 in
      let reference = Runner.run_one dc ts ~m ~limit_s:config.Config.limit_s ~seed:0 in
      rows :=
        {
          instance = !idx;
          ratio = Rt_model.Taskset.utilization_ratio ts ~m;
          min_time = times.(0);
          median_time = median times;
          max_time = times.(seeds - 1);
          overruns = !overruns;
          seeds;
          csp2_time = reference.Runner.time_s;
        }
        :: !rows;
      incr kept
    end;
    incr idx
  done;
  List.rev !rows

let render rows =
  let table =
    Ascii_table.create
      ~headers:[ "inst"; "r"; "CSP1 min"; "median"; "max"; "overruns"; "CSP2+(D-C)" ]
  in
  List.iter
    (fun row ->
      Ascii_table.add_row table
        [
          string_of_int row.instance;
          Printf.sprintf "%.2f" row.ratio;
          Printf.sprintf "%.4f" row.min_time;
          Printf.sprintf "%.4f" row.median_time;
          Printf.sprintf "%.4f" row.max_time;
          Printf.sprintf "%d/%d" row.overruns row.seeds;
          Printf.sprintf "%.4f" row.csp2_time;
        ])
    rows;
  "Randomness (Section VII-B): per-instance spread of the randomized CSP1 search\n"
  ^ Ascii_table.render table
