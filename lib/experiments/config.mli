(** Experiment configuration.

    The paper ran every solver with a 30 s limit on one core of a 2.4 GHz
    Core2Quad (Section VII).  Absolute seconds are meaningless across
    machines, so the default per-run limit here is scaled down; the paper's
    regime is one environment variable away:

    {v MGRTS_LIMIT=30 MGRTS_INSTANCES=500 dune exec bench/main.exe v} *)

type t = {
  instances : int;  (** Table I–III instance count (paper: 500). *)
  limit_s : float;  (** Per-run wall-clock limit (paper: 30 s). *)
  seed : int;  (** Master generation seed. *)
  table4_instances : int;  (** Instances per n in Table IV (paper: 100). *)
  table4_sizes : int list;  (** Values of n swept in Table IV. *)
}

val default : t
(** 500 instances, 0.1 s limit, seed 1, Table IV: 100 instances per
    n ∈ {4, 8, 16, 32, 64, 128, 256}. *)

val from_env : unit -> t
(** {!default} overridden by [MGRTS_INSTANCES], [MGRTS_LIMIT],
    [MGRTS_SEED], [MGRTS_T4_INSTANCES], [MGRTS_T4_SIZES] (comma-separated)
    when present.  Lowering [MGRTS_INSTANCES] below 100 also lowers the
    Table IV per-size count to match (CI smoke runs stay short) unless
    [MGRTS_T4_INSTANCES] pins it. *)

val budget : t -> Prelude.Timer.budget
(** Fresh per-run budget honouring [limit_s]. *)
