open Prelude

type solver = {
  name : string;
  run :
    Rt_model.Taskset.t -> m:int -> budget:Timer.budget -> seed:int -> Encodings.Outcome.t;
}

let csp1 =
  {
    name = "CSP1";
    run = (fun ts ~m ~budget ~seed -> fst (Encodings.Csp1.solve ~budget ~seed ts ~m));
  }

let dedicated heuristic name =
  {
    name;
    run =
      (fun ts ~m ~budget ~seed:_ -> fst (Csp2.Solver.solve ~heuristic ~budget ts ~m));
  }

let csp2_variants =
  [
    dedicated Csp2.Heuristic.Id "CSP2";
    dedicated Csp2.Heuristic.RM "+RM";
    dedicated Csp2.Heuristic.DM "+DM";
    dedicated Csp2.Heuristic.TC "+(T-C)";
    dedicated Csp2.Heuristic.DC "+(D-C)";
  ]

let table1_solvers = csp1 :: csp2_variants

let dedicated_weak heuristic name =
  {
    name;
    run =
      (fun ts ~m ~budget ~seed:_ ->
        fst (Csp2.Solver.solve ~urgency:false ~heuristic ~budget ts ~m));
  }

let csp2_weak_variants =
  [
    dedicated_weak Csp2.Heuristic.Id "CSP2";
    dedicated_weak Csp2.Heuristic.RM "+RM";
    dedicated_weak Csp2.Heuristic.DM "+DM";
    dedicated_weak Csp2.Heuristic.TC "+(T-C)";
    dedicated_weak Csp2.Heuristic.DC "+(D-C)";
  ]

let table1_weak_solvers = csp1 :: csp2_weak_variants

let csp1_wdeg =
  {
    name = "CSP1+wdeg";
    run =
      (fun ts ~m ~budget ~seed ->
        fst
          (Encodings.Csp1.solve ~var_heuristic:Fd.Search.Dom_over_wdeg
             ~value_heuristic:Fd.Search.Min_value ~budget ~seed ts ~m));
  }

let csp1_sat =
  {
    name = "CSP1/SAT";
    run = (fun ts ~m ~budget ~seed -> fst (Encodings.Csp1_sat.solve ~budget ~seed ts ~m));
  }

let csp2_generic ?(symmetry = true) ?(dc_value_order = false) () =
  let name =
    Printf.sprintf "CSP2/gen%s%s" (if symmetry then "+sym" else "") (if dc_value_order then "+DC" else "")
  in
  {
    name;
    run =
      (fun ts ~m ~budget ~seed ->
        let value_heuristic =
          if dc_value_order then begin
            (* Idle last, then tasks by D−C rank: the generic-solver analogue
               of the dedicated value ordering. *)
            let order = Array.to_list (Csp2.Heuristic.order Csp2.Heuristic.DC ts) in
            Some (Fd.Search.Ordered (fun _ -> order @ [ -1 ]))
          end
          else None
        in
        fst (Encodings.Csp2_fd.solve ~symmetry ?value_heuristic ~budget ~seed ts ~m));
  }

let csp2_opt ?(nogoods = true) ?memo_mb () =
  let name = if nogoods then "CSP2/opt" else "CSP2/opt-ng" in
  {
    name;
    run =
      (fun ts ~m ~budget ~seed:_ ->
        (* The sequential entry point keeps its engine warm per domain, so
           a campaign driven through this solver exercises the arena/epoch
           reuse path on every instance after the first. *)
        fst (Csp2.Opt.solve ~nogoods ?memo_mb ~budget ts ~m));
  }

let local_search =
  {
    name = "min-conflicts";
    run =
      (fun ts ~m ~budget ~seed -> fst (Localsearch.Min_conflicts.solve ~seed ~budget ts ~m));
  }

let portfolio ?jobs () =
  let name =
    match jobs with
    | Some j -> Printf.sprintf "portfolio(%d)" j
    | None -> "portfolio"
  in
  {
    name;
    run =
      (fun ts ~m ~budget ~seed ->
        (Portfolio.solve ?jobs ~budget ~seed ts ~m).Portfolio.verdict);
  }

type run = {
  outcome : Encodings.Outcome.t;
  time_s : float;
  overrun : bool;
}

let run_one solver ts ~m ~limit_s ~seed =
  let budget = Timer.budget ~wall_s:limit_s () in
  let t0 = Timer.start () in
  let outcome = solver.run ts ~m ~budget ~seed in
  let elapsed = Timer.elapsed t0 in
  let overrun =
    match outcome with
    | Encodings.Outcome.Limit | Encodings.Outcome.Memout _ -> true
    | Encodings.Outcome.Feasible _ | Encodings.Outcome.Infeasible -> false
  in
  (* The paper reports overruns at the limit value (e.g. the 30.0 rows of
     Table III), so cap the measured time. *)
  { outcome; time_s = (if overrun then limit_s else min elapsed limit_s); overrun }
