(** CSP2OPT benchmark section: classic dedicated search vs {!Csp2.Opt}.

    Over a generated batch (Table I distribution, analyzer-decided
    instances skipped so only real search is measured), runs three
    configurations per instance under the configured per-run budget:

    - the classic {!Csp2.Solver} (D−C heuristic);
    - {!Csp2.Opt.solve} — bitsets, transposition table, capacity bound;
    - {!Csp2.Opt.solve_parallel} with [jobs] domains.

    Accumulates node counts and wall clocks over the instances both
    engines decided (the acceptance measurement: the optimized engine
    must explore markedly fewer nodes at equal verdicts), memo hit/store
    counters, frontier sizes, and re-verifies every schedule the
    optimized engine produces. *)

type totals = {
  instances : int;
  searched : int;  (** Analyzer left undecided: the engines actually ran. *)
  classic_decided : int;
  opt_decided : int;
  compared : int;  (** Decided by both classic and opt. *)
  verdicts_equal : int;  (** Same constructor on compared instances. *)
  schedules_valid : int;  (** Opt [Feasible] schedules passing {!Rt_model.Verify}. *)
  feasible_checked : int;
  nodes_classic : int;  (** Over compared instances. *)
  nodes_opt : int;
  memo_hits : int;
  memo_misses : int;
  memo_stores : int;
  subtrees : int;  (** Work items deep-solved by the parallel runs. *)
  pulls : int;  (** Items workers took from their own deques. *)
  steals : int;  (** Items taken from {e another} worker's deque — the honest count. *)
  parks : int;  (** Idle-worker sleeps while out of stealable work. *)
  parallel_jobs : int;
  classic_wall_s : float;  (** Summed over compared instances. *)
  opt_wall_s : float;
  opt_parallel_wall_s : float;
}

val run : ?progress:(int -> unit) -> ?jobs:int -> Config.t -> totals
(** [jobs] defaults to {!Prelude.Parallel.recommended_jobs} — [1] on a
    single-core box, where the parallel entry point then takes its
    sequential path.  Pass [~jobs] (or [MGRTS_JOBS] on the bench
    harness) to force oversubscribed domains explicitly. *)

val node_reduction_pct : totals -> float
(** Percent fewer nodes for the optimized engine on compared instances. *)

val render : totals -> string
val to_json : totals -> string
(** One flat JSON object (hand-rolled; no JSON dependency). *)
