(** CSP2OPT benchmark section: classic dedicated search vs {!Csp2.Opt}.

    Over a generated batch (Table I distribution, analyzer-decided
    instances skipped so only real search is measured), runs four
    configurations per instance under the configured per-run budget:

    - the classic {!Csp2.Solver} (D−C heuristic);
    - {!Csp2.Opt.solve} — bitsets, transposition table, nogood
      learning, capacity bound;
    - the same with [nogoods:false] (the learning ablation);
    - {!Csp2.Opt.solve_parallel} with [jobs] domains.

    Accumulates node counts and wall clocks over the instances both
    engines decided (the acceptance measurement: the optimized engine
    must explore markedly fewer nodes at equal verdicts), memo and
    nogood hit/store counters with their hit rates, frontier sizes, and
    re-verifies every schedule the optimized engine produces.  A final
    batch phase re-solves the searched campaign back-to-back with warm
    pooled engines and again with {!Csp2.Opt.reset_caches} forced
    before every solve, so the artifact records what arena/epoch reuse
    is worth on wall clock.  The three batch configurations are timed
    in interleaved rounds (after an untimed lead-in pass) so load drift
    on the host lands on all of them about equally. *)

type totals = {
  instances : int;
  searched : int;  (** Analyzer left undecided: the engines actually ran. *)
  classic_decided : int;
  opt_decided : int;
  compared : int;  (** Decided by both classic and opt. *)
  verdicts_equal : int;  (** Same constructor on compared instances. *)
  schedules_valid : int;  (** Opt [Feasible] schedules passing {!Rt_model.Verify}. *)
  feasible_checked : int;
  nodes_classic : int;  (** Over compared instances. *)
  nodes_opt : int;
  nodes_opt_searched : int;
      (** Nogoods-on nodes over {e all} searched instances.  The
          ablation pair accumulates on this wider basis because the
          instances where learning pays are exactly the ones the
          classic solver times out on, which never enter [compared];
          on the compared set both numbers sit at the
          schedule-construction floor (feasible first descents). *)
  nodes_opt_nonogood : int;  (** Same engine and basis, nogood learning off. *)
  memo_hits : int;
  memo_misses : int;
  memo_stores : int;
  nogood_hits : int;
  nogood_misses : int;
  nogood_stores : int;
  nogood_evicted : int;
  subtrees : int;  (** Work items deep-solved by the parallel runs. *)
  pulls : int;  (** Items workers took from their own deques. *)
  steals : int;  (** Items taken from {e another} worker's deque — the honest count. *)
  parks : int;  (** Idle-worker sleeps while out of stealable work. *)
  parallel_jobs : int;
  classic_wall_s : float;  (** Summed over compared instances. *)
  opt_wall_s : float;
  opt_parallel_wall_s : float;
  batch_solves : int;  (** Searched instances × passes (each campaign runs 3×). *)
  batch_passes : int;
  batch_reuse_wall_s : float;  (** Back-to-back campaign, warm pooled engines. *)
  batch_nonogood_wall_s : float;
      (** Same warm campaign, learning gated off — the equal-footing
          wall side of the nogood ablation (interleaved per-instance
          walls are order-biased by OS/allocator warmth). *)
  batch_fresh_wall_s : float;  (** Same campaign, caches dropped before every solve. *)
}

val run : ?progress:(int -> unit) -> ?jobs:int -> Config.t -> totals
(** [jobs] defaults to {!Prelude.Parallel.recommended_jobs} — [1] on a
    single-core box, where the parallel entry point then takes its
    sequential path.  Pass [~jobs] (or [MGRTS_JOBS] on the bench
    harness) to force oversubscribed domains explicitly. *)

val node_reduction_pct : totals -> float
(** Percent fewer nodes for the optimized engine on compared instances. *)

val nogood_node_reduction_pct : totals -> float
(** Percent fewer nodes with nogood learning on vs off — same engine,
    over all searched instances ([nodes_opt_nonogood] vs
    [nodes_opt_searched]). *)

val memo_hit_rate_pct : totals -> float
val nogood_hit_rate_pct : totals -> float

val render : totals -> string
val to_json : totals -> string
(** One flat JSON object (hand-rolled; no JSON dependency). *)
