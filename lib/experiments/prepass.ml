open Rt_model

type totals = {
  instances : int;
  old_filter_refuted : int;
  static_refuted : int;
  certificates_valid : int;
  static_schedules : int;
  pruned_with_facts : int;
  forced_cells : int;
  blocked_cells : int;
  dead_slots : int;
  m_lower_raised : int;
  window_cells : int;
  analysis_time_s : float;
  nodes_bare : int;
  nodes_pruned : int;
  nodes_compared : int;
}

let empty =
  {
    instances = 0;
    old_filter_refuted = 0;
    static_refuted = 0;
    certificates_valid = 0;
    static_schedules = 0;
    pruned_with_facts = 0;
    forced_cells = 0;
    blocked_cells = 0;
    dead_slots = 0;
    m_lower_raised = 0;
    window_cells = 0;
    analysis_time_s = 0.;
    nodes_bare = 0;
    nodes_pruned = 0;
    nodes_compared = 0;
  }

(* Cells the encodings would give a variable: one per (job, window slot). *)
let window_cells_of ts =
  let windows = Windows.build ts in
  Array.fold_left
    (fun acc (j : Windows.job) -> acc + Array.length j.slots)
    0 (Windows.jobs windows)

let run ?(progress = fun _ -> ()) (config : Config.t) =
  let params = Campaign.generation_params config in
  let instances =
    Gen.Generator.batch ~seed:(config.Config.seed + 4242) ~count:config.Config.instances params
  in
  let acc = ref { empty with instances = Array.length instances } in
  Array.iteri
    (fun idx (ts, m) ->
      let t = !acc in
      let old_hit = Analysis.utilization_exceeds ts ~m in
      let report = Analysis.analyze ts ~m in
      let t =
        {
          t with
          old_filter_refuted = t.old_filter_refuted + Bool.to_int old_hit;
          analysis_time_s = t.analysis_time_s +. report.Analysis.time_s;
          m_lower_raised =
            (t.m_lower_raised
            + Bool.to_int (report.Analysis.m_lower > Taskset.min_processors ts));
        }
      in
      let t =
        match report.Analysis.verdict with
        | Analysis.Infeasible cert ->
          {
            t with
            static_refuted = t.static_refuted + 1;
            certificates_valid =
              (t.certificates_valid
              + Bool.to_int (Analysis.Certificate.validate ts (Platform.identical ~m) cert));
          }
        | Analysis.Trivially_feasible _ -> { t with static_schedules = t.static_schedules + 1 }
        | Analysis.Pruned d ->
          let forced = Analysis.Domains.forced_cells d in
          let blocked = Analysis.Domains.blocked_cells d in
          let dead = Analysis.Domains.dead_slots d in
          let t =
            if forced + blocked + dead > 0 then
              { t with pruned_with_facts = t.pruned_with_facts + 1 }
            else t
          in
          (* The acceptance measurement: the complete CSP2 search with and
             without the analyzer's domains, same budget, same instance. *)
          let bare, bare_st = Csp2.Solver.solve ~budget:(Config.budget config) ts ~m in
          let pruned, pruned_st =
            Csp2.Solver.solve ~budget:(Config.budget config) ~domains:d ts ~m
          in
          let decided = function
            | Encodings.Outcome.Feasible _ | Encodings.Outcome.Infeasible -> true
            | Encodings.Outcome.Limit | Encodings.Outcome.Memout _ -> false
          in
          let t =
            if decided bare && decided pruned then
              {
                t with
                nodes_bare = t.nodes_bare + bare_st.Csp2.Solver.nodes;
                nodes_pruned = t.nodes_pruned + pruned_st.Csp2.Solver.nodes;
                nodes_compared = t.nodes_compared + 1;
              }
            else t
          in
          {
            t with
            forced_cells = t.forced_cells + forced;
            blocked_cells = t.blocked_cells + blocked;
            dead_slots = t.dead_slots + dead;
            window_cells = t.window_cells + window_cells_of ts;
          }
      in
      acc := t;
      progress idx)
    instances;
  !acc

let render t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "Static pre-pass over %d generated instances (%.3fs of analysis total):" t.instances
    t.analysis_time_s;
  line "  refuted statically        %4d  (old r>1 filter alone: %d)" t.static_refuted
    t.old_filter_refuted;
  line "  certificates re-validated %4d  (of %d refutations)" t.certificates_valid
    t.static_refuted;
  line "  scheduled statically      %4d" t.static_schedules;
  line "  pruned domains emitted    %4d  (with at least one fact)" t.pruned_with_facts;
  let cells = max 1 t.window_cells in
  line "  forced cells %d, blocked cells %d, dead slots %d (%.2f%% of %d window cells)"
    t.forced_cells t.blocked_cells t.dead_slots
    (100. *. float_of_int (t.forced_cells + t.blocked_cells) /. float_of_int cells)
    t.window_cells;
  line "  m lower bound beat ceil(U) on %d instance(s)" t.m_lower_raised;
  (if t.nodes_compared = 0 then line "  csp2 node comparison: no instance decided both ways"
   else
     let reduction =
       if t.nodes_bare = 0 then 0.
       else
         100. *. float_of_int (t.nodes_bare - t.nodes_pruned) /. float_of_int t.nodes_bare
     in
     line "  csp2 nodes on %d decided instances: %d bare vs %d with domains (%.2f%% fewer)"
       t.nodes_compared t.nodes_bare t.nodes_pruned reduction);
  Buffer.contents b
