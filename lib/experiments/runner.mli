(** Budgeted solver invocations shared by the table reproductions. *)

type solver = {
  name : string;  (** Column label, matching the paper's. *)
  run :
    Rt_model.Taskset.t ->
    m:int ->
    budget:Prelude.Timer.budget ->
    seed:int ->
    Encodings.Outcome.t;
}

val csp1 : solver
(** CSP1 on the generic FD solver with the randomized default strategy —
    the "Choco with default search" column. *)

val csp2_variants : solver list
(** The paper's five dedicated-search columns: CSP2 (id order), +RM, +DM,
    +(T−C), +(D−C); all deterministic. *)

val table1_solvers : solver list
(** {!csp1} followed by {!csp2_variants} — Table I's column order. *)

val csp2_weak_variants : solver list
(** The same five columns with urgency propagation disabled — the weak
    search regime in which the paper's heuristic ordering
    (CSP2 > +RM > +DM > +(T−C) > +(D−C) overruns) becomes observable. *)

val table1_weak_solvers : solver list

val csp1_wdeg : solver
(** CSP1 with the conflict-driven dom/wdeg variable heuristic — a modern
    CP baseline the 2009 Choco default predates. *)

val csp1_sat : solver
val csp2_generic : ?symmetry:bool -> ?dc_value_order:bool -> unit -> solver

val csp2_opt : ?nogoods:bool -> ?memo_mb:int -> unit -> solver
(** The optimized engine ({!Csp2.Opt.solve}, D−C order) as a table
    column.  Runs on the calling domain's pooled engine, so campaigns
    driven through it rebind — not re-allocate — their memo, nogood and
    frame storage between instances; [nogoods:false] is the learning
    ablation column ("CSP2/opt-ng"). *)

val local_search : solver

val portfolio : ?jobs:int -> unit -> solver
(** The Domains-based parallel race over {!Portfolio.default_specs};
    [jobs] defaults to the machine's recommended domain count.  Lets the
    table reproductions report a portfolio column next to the sequential
    backends it races. *)

type run = {
  outcome : Encodings.Outcome.t;
  time_s : float;  (** Wall clock, capped at the budget for overruns. *)
  overrun : bool;  (** [Limit] or [Memout] — the paper counts both. *)
}

val run_one : solver -> Rt_model.Taskset.t -> m:int -> limit_s:float -> seed:int -> run
