type totals = {
  instances : int;
  searched : int;
  classic_decided : int;
  opt_decided : int;
  compared : int;
  verdicts_equal : int;
  schedules_valid : int;
  feasible_checked : int;
  nodes_classic : int;
  nodes_opt : int;
  nodes_opt_searched : int;
  nodes_opt_nonogood : int;
  memo_hits : int;
  memo_misses : int;
  memo_stores : int;
  nogood_hits : int;
  nogood_misses : int;
  nogood_stores : int;
  nogood_evicted : int;
  subtrees : int;
  pulls : int;
  steals : int;
  parks : int;
  parallel_jobs : int;
  classic_wall_s : float;
  opt_wall_s : float;
  opt_parallel_wall_s : float;
  batch_solves : int;
  batch_passes : int;
  batch_reuse_wall_s : float;
  batch_nonogood_wall_s : float;
  batch_fresh_wall_s : float;
}

let empty =
  {
    instances = 0;
    searched = 0;
    classic_decided = 0;
    opt_decided = 0;
    compared = 0;
    verdicts_equal = 0;
    schedules_valid = 0;
    feasible_checked = 0;
    nodes_classic = 0;
    nodes_opt = 0;
    nodes_opt_searched = 0;
    nodes_opt_nonogood = 0;
    memo_hits = 0;
    memo_misses = 0;
    memo_stores = 0;
    nogood_hits = 0;
    nogood_misses = 0;
    nogood_stores = 0;
    nogood_evicted = 0;
    subtrees = 0;
    pulls = 0;
    steals = 0;
    parks = 0;
    parallel_jobs = 1;
    classic_wall_s = 0.;
    opt_wall_s = 0.;
    opt_parallel_wall_s = 0.;
    batch_solves = 0;
    batch_passes = 2;
    batch_reuse_wall_s = 0.;
    batch_nonogood_wall_s = 0.;
    batch_fresh_wall_s = 0.;
  }

let decided = function
  | Encodings.Outcome.Feasible _ | Encodings.Outcome.Infeasible -> true
  | Encodings.Outcome.Limit | Encodings.Outcome.Memout _ -> false

let same_verdict a b =
  match (a, b) with
  | Encodings.Outcome.Feasible _, Encodings.Outcome.Feasible _ -> true
  | Encodings.Outcome.Infeasible, Encodings.Outcome.Infeasible -> true
  | _ -> false

let run ?(progress = fun _ -> ()) ?jobs (config : Config.t) =
  let params = Campaign.generation_params config in
  let instances =
    Gen.Generator.batch ~seed:(config.Config.seed + 777) ~count:config.Config.instances params
  in
  (* One jobs default for the whole repo: no more forcing [max 2 ...]
     here while the engine itself used a bare recommended count — that
     split is how a 1-core CI box ended up benchmarking two time-sliced
     domains as "parallel speedup".  Oversubscription is still available,
     but only on explicit request ([~jobs] / [MGRTS_JOBS]). *)
  let jobs =
    match jobs with Some j -> max 1 j | None -> Prelude.Parallel.recommended_jobs ()
  in
  let acc = ref { empty with instances = Array.length instances; parallel_jobs = jobs } in
  let searched_instances = ref [] in
  Array.iteri
    (fun idx (ts, m) ->
      (* The Table I distribution is dominated by statically refutable
         instances; both engines would agree in 0 nodes there.  Skip the
         analyzer-decided ones so the comparison only counts real search. *)
      let searched =
        match (Analysis.analyze ts ~m).Analysis.verdict with
        | Analysis.Infeasible _ | Analysis.Trivially_feasible _ -> false
        | Analysis.Pruned _ -> true
      in
      if searched then begin
        searched_instances := (ts, m) :: !searched_instances;
        let t = { !acc with searched = !acc.searched + 1 } in
        let classic, classic_st =
          Csp2.Solver.solve ~budget:(Config.budget config) ts ~m
        in
        let opt, opt_st = Csp2.Opt.solve ~budget:(Config.budget config) ts ~m in
        (* The learning ablation: the same sequential engine rebound with
           the nogood store gated off.  Nodes-with vs nodes-without is
           the generalized-pruning payoff at equal verdicts.  Only node
           counts are compared from this interleaved pair — back-to-back
           runs of one instance share OS/allocator warmth, so the second
           run's wall clock is flattered; the ablation {e wall} numbers
           come from the equal-footing campaign passes below. *)
        let nong, nong_st =
          Csp2.Opt.solve ~budget:(Config.budget config) ~nogoods:false ts ~m
        in
        (* The parallel run contributes wall clock and splitting counters;
           its verdict is checked for consistency below via [agree]. *)
        let par, par_st =
          Csp2.Opt.solve_parallel ~budget:(Config.budget config) ~jobs ts ~m
        in
        if not (Encodings.Outcome.agree par opt) then
          failwith "Csp2opt.run: sequential and parallel opt verdicts contradict";
        if not (Encodings.Outcome.agree nong opt) then
          failwith "Csp2opt.run: nogoods-on and nogoods-off verdicts contradict";
        let t =
          {
            t with
            classic_decided = t.classic_decided + Bool.to_int (decided classic);
            opt_decided = t.opt_decided + Bool.to_int (decided opt);
            (* The ablation pair accumulates over {e every} searched
               instance: the engine-vs-itself comparison does not depend
               on the classic solver finishing, and the instances where
               learning matters most are exactly the ones classic times
               out on (they never enter the compared set below). *)
            nodes_opt_searched = t.nodes_opt_searched + opt_st.Csp2.Opt.nodes;
            nodes_opt_nonogood = t.nodes_opt_nonogood + nong_st.Csp2.Opt.nodes;
            memo_hits = t.memo_hits + opt_st.Csp2.Opt.memo_hits;
            memo_misses = t.memo_misses + opt_st.Csp2.Opt.memo_misses;
            memo_stores = t.memo_stores + opt_st.Csp2.Opt.memo_stores;
            nogood_hits = t.nogood_hits + opt_st.Csp2.Opt.nogood_hits;
            nogood_misses = t.nogood_misses + opt_st.Csp2.Opt.nogood_misses;
            nogood_stores = t.nogood_stores + opt_st.Csp2.Opt.nogood_stores;
            nogood_evicted = t.nogood_evicted + opt_st.Csp2.Opt.nogood_evicted;
            subtrees = t.subtrees + par_st.Csp2.Opt.subtrees;
            pulls = t.pulls + par_st.Csp2.Opt.pulls;
            steals = t.steals + par_st.Csp2.Opt.steals;
            parks = t.parks + par_st.Csp2.Opt.parks;
          }
        in
        let t =
          match opt with
          | Encodings.Outcome.Feasible sched ->
            let ok =
              match Rt_model.Verify.check ts sched with Ok () -> true | Error _ -> false
            in
            {
              t with
              feasible_checked = t.feasible_checked + 1;
              schedules_valid = t.schedules_valid + Bool.to_int ok;
            }
          | _ -> t
        in
        let t =
          if decided classic && decided opt then
            {
              t with
              compared = t.compared + 1;
              verdicts_equal = t.verdicts_equal + Bool.to_int (same_verdict classic opt);
              nodes_classic = t.nodes_classic + classic_st.Csp2.Solver.nodes;
              nodes_opt = t.nodes_opt + opt_st.Csp2.Opt.nodes;
              classic_wall_s = t.classic_wall_s +. classic_st.Csp2.Solver.time_s;
              opt_wall_s = t.opt_wall_s +. opt_st.Csp2.Opt.time_s;
              opt_parallel_wall_s = t.opt_parallel_wall_s +. par_st.Csp2.Opt.time_s;
            }
          else t
        in
        acc := t
      end;
      progress idx)
    instances;
  (* Batch campaigns: the searched instances solved back-to-back
     [batch_passes] times on this domain, sequentially, three ways —
     warm pooled engines with learning on (the default path), the same
     warm passes with learning gated off (the equal-footing wall side
     of the nogood ablation), and learning on but dropping every
     per-domain cache before each solve.  Same instances, same order,
     same budgets; the reuse-vs-fresh gap is the amortization payoff,
     the reuse-vs-nonogood gap is what learning costs or saves on the
     clock. *)
  let batch = Array.of_list (List.rev !searched_instances) in
  let passes = empty.batch_passes in
  let run_campaign ~nogoods =
    Array.iter
      (fun (ts, m) -> ignore (Csp2.Opt.solve ~budget:(Config.budget config) ~nogoods ts ~m))
      batch
  in
  let timed f =
    let t0 = Prelude.Timer.start () in
    f ();
    Prelude.Timer.elapsed t0
  in
  (* The three configurations are timed in interleaved rounds — warm,
     warm-without-learning, fresh, repeated [passes] times — not as one
     block each: machine-load drift over the seconds a block takes then
     lands on all three about equally instead of inverting the
     comparison.  The untimed lead-in pass grows the pooled storage to
     steady state so the first timed round isn't charged for it. *)
  Csp2.Opt.reset_caches ();
  run_campaign ~nogoods:true;
  let reuse_wall = ref 0. and nonogood_wall = ref 0. and fresh_wall = ref 0. in
  for _pass = 1 to passes do
    reuse_wall := !reuse_wall +. timed (fun () -> run_campaign ~nogoods:true);
    nonogood_wall := !nonogood_wall +. timed (fun () -> run_campaign ~nogoods:false);
    fresh_wall :=
      !fresh_wall
      +. timed (fun () ->
             Array.iter
               (fun (ts, m) ->
                 Csp2.Opt.reset_caches ();
                 ignore (Csp2.Opt.solve ~budget:(Config.budget config) ts ~m))
               batch)
  done;
  let reuse_wall = !reuse_wall
  and nonogood_wall = !nonogood_wall
  and fresh_wall = !fresh_wall in
  {
    !acc with
    batch_solves = Array.length batch * passes;
    batch_passes = passes;
    batch_reuse_wall_s = reuse_wall;
    batch_nonogood_wall_s = nonogood_wall;
    batch_fresh_wall_s = fresh_wall;
  }

let node_reduction_pct t =
  if t.nodes_classic = 0 then 0.
  else 100. *. float_of_int (t.nodes_classic - t.nodes_opt) /. float_of_int t.nodes_classic

let nogood_node_reduction_pct t =
  if t.nodes_opt_nonogood = 0 then 0.
  else
    100.
    *. float_of_int (t.nodes_opt_nonogood - t.nodes_opt_searched)
    /. float_of_int t.nodes_opt_nonogood

let memo_hit_rate_pct t = Csp2.Opt.hit_rate_pct ~hits:t.memo_hits ~misses:t.memo_misses

let nogood_hit_rate_pct t =
  Csp2.Opt.hit_rate_pct ~hits:t.nogood_hits ~misses:t.nogood_misses

let render t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "CSP2 classic vs optimized (bitsets + memo + nogoods + capacity bound) on %d instances:"
    t.instances;
  line "  searched (analyzer undecided)  %4d" t.searched;
  line "  decided: classic %d, opt %d; both %d (verdicts equal on %d)" t.classic_decided
    t.opt_decided t.compared t.verdicts_equal;
  line "  opt schedules re-verified      %4d of %d" t.schedules_valid t.feasible_checked;
  line "  nodes on compared instances: classic %d vs opt %d (%.2f%% fewer)" t.nodes_classic
    t.nodes_opt (node_reduction_pct t);
  line
    "  nogood ablation (all %d searched): %d nodes without learning vs %d with (%.2f%% fewer)"
    t.searched t.nodes_opt_nonogood t.nodes_opt_searched (nogood_node_reduction_pct t);
  line "  memo:   %d hits / %d misses / %d stores (%.1f%% hit rate)" t.memo_hits
    t.memo_misses t.memo_stores (memo_hit_rate_pct t);
  line "  nogood: %d hits / %d misses / %d stores / %d evicted (%.1f%% hit rate)"
    t.nogood_hits t.nogood_misses t.nogood_stores t.nogood_evicted (nogood_hit_rate_pct t);
  line "  wall on compared instances: classic %.4fs, opt %.4fs, opt --jobs %d %.4fs"
    t.classic_wall_s t.opt_wall_s t.parallel_jobs t.opt_parallel_wall_s;
  line "  parallel phase: %d subtrees, %d pulls, %d steals, %d parks" t.subtrees t.pulls
    t.steals t.parks;
  line
    "  batch x%d (%d solves): warm engines %.4fs vs fresh engines %.4fs (warm, learning off: %.4fs)"
    t.batch_passes t.batch_solves t.batch_reuse_wall_s t.batch_fresh_wall_s
    t.batch_nonogood_wall_s;
  Buffer.contents b

(* Hand-rolled: the repo deliberately has no JSON dependency. *)
let to_json t =
  let b = Buffer.create 512 in
  let field ?(last = false) name value =
    Buffer.add_string b (Printf.sprintf "  %S: %s%s\n" name value (if last then "" else ","))
  in
  Buffer.add_string b "{\n";
  field "instances" (string_of_int t.instances);
  field "searched" (string_of_int t.searched);
  field "classic_decided" (string_of_int t.classic_decided);
  field "opt_decided" (string_of_int t.opt_decided);
  field "compared" (string_of_int t.compared);
  field "verdicts_equal" (string_of_int t.verdicts_equal);
  field "schedules_valid" (string_of_int t.schedules_valid);
  field "feasible_checked" (string_of_int t.feasible_checked);
  field "nodes_classic" (string_of_int t.nodes_classic);
  field "nodes_opt" (string_of_int t.nodes_opt);
  field "nodes_opt_searched" (string_of_int t.nodes_opt_searched);
  field "nodes_opt_nonogood" (string_of_int t.nodes_opt_nonogood);
  field "node_reduction_pct" (Printf.sprintf "%.2f" (node_reduction_pct t));
  field "nogood_node_reduction_pct" (Printf.sprintf "%.2f" (nogood_node_reduction_pct t));
  field "memo_hits" (string_of_int t.memo_hits);
  field "memo_misses" (string_of_int t.memo_misses);
  field "memo_stores" (string_of_int t.memo_stores);
  field "memo_hit_rate_pct" (Printf.sprintf "%.2f" (memo_hit_rate_pct t));
  field "nogood_hits" (string_of_int t.nogood_hits);
  field "nogood_misses" (string_of_int t.nogood_misses);
  field "nogood_stores" (string_of_int t.nogood_stores);
  field "nogood_evicted" (string_of_int t.nogood_evicted);
  field "nogood_hit_rate_pct" (Printf.sprintf "%.2f" (nogood_hit_rate_pct t));
  field "subtrees" (string_of_int t.subtrees);
  field "pulls" (string_of_int t.pulls);
  field "steals" (string_of_int t.steals);
  field "parks" (string_of_int t.parks);
  field "parallel_jobs" (string_of_int t.parallel_jobs);
  field "classic_wall_s" (Printf.sprintf "%.6f" t.classic_wall_s);
  field "opt_wall_s" (Printf.sprintf "%.6f" t.opt_wall_s);
  field "opt_parallel_wall_s" (Printf.sprintf "%.6f" t.opt_parallel_wall_s);
  field "batch_solves" (string_of_int t.batch_solves);
  field "batch_passes" (string_of_int t.batch_passes);
  field "batch_reuse_wall_s" (Printf.sprintf "%.6f" t.batch_reuse_wall_s);
  field "batch_nonogood_wall_s" (Printf.sprintf "%.6f" t.batch_nonogood_wall_s);
  field ~last:true "batch_fresh_wall_s" (Printf.sprintf "%.6f" t.batch_fresh_wall_s);
  Buffer.add_string b "}\n";
  Buffer.contents b
