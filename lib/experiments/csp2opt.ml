type totals = {
  instances : int;
  searched : int;
  classic_decided : int;
  opt_decided : int;
  compared : int;
  verdicts_equal : int;
  schedules_valid : int;
  feasible_checked : int;
  nodes_classic : int;
  nodes_opt : int;
  memo_hits : int;
  memo_misses : int;
  memo_stores : int;
  subtrees : int;
  pulls : int;
  steals : int;
  parks : int;
  parallel_jobs : int;
  classic_wall_s : float;
  opt_wall_s : float;
  opt_parallel_wall_s : float;
}

let empty =
  {
    instances = 0;
    searched = 0;
    classic_decided = 0;
    opt_decided = 0;
    compared = 0;
    verdicts_equal = 0;
    schedules_valid = 0;
    feasible_checked = 0;
    nodes_classic = 0;
    nodes_opt = 0;
    memo_hits = 0;
    memo_misses = 0;
    memo_stores = 0;
    subtrees = 0;
    pulls = 0;
    steals = 0;
    parks = 0;
    parallel_jobs = 1;
    classic_wall_s = 0.;
    opt_wall_s = 0.;
    opt_parallel_wall_s = 0.;
  }

let decided = function
  | Encodings.Outcome.Feasible _ | Encodings.Outcome.Infeasible -> true
  | Encodings.Outcome.Limit | Encodings.Outcome.Memout _ -> false

let same_verdict a b =
  match (a, b) with
  | Encodings.Outcome.Feasible _, Encodings.Outcome.Feasible _ -> true
  | Encodings.Outcome.Infeasible, Encodings.Outcome.Infeasible -> true
  | _ -> false

let run ?(progress = fun _ -> ()) ?jobs (config : Config.t) =
  let params = Campaign.generation_params config in
  let instances =
    Gen.Generator.batch ~seed:(config.Config.seed + 777) ~count:config.Config.instances params
  in
  (* One jobs default for the whole repo: no more forcing [max 2 ...]
     here while the engine itself used a bare recommended count — that
     split is how a 1-core CI box ended up benchmarking two time-sliced
     domains as "parallel speedup".  Oversubscription is still available,
     but only on explicit request ([~jobs] / [MGRTS_JOBS]). *)
  let jobs =
    match jobs with Some j -> max 1 j | None -> Prelude.Parallel.recommended_jobs ()
  in
  let acc = ref { empty with instances = Array.length instances; parallel_jobs = jobs } in
  Array.iteri
    (fun idx (ts, m) ->
      (* The Table I distribution is dominated by statically refutable
         instances; both engines would agree in 0 nodes there.  Skip the
         analyzer-decided ones so the comparison only counts real search. *)
      let searched =
        match (Analysis.analyze ts ~m).Analysis.verdict with
        | Analysis.Infeasible _ | Analysis.Trivially_feasible _ -> false
        | Analysis.Pruned _ -> true
      in
      if searched then begin
        let t = { !acc with searched = !acc.searched + 1 } in
        let classic, classic_st =
          Csp2.Solver.solve ~budget:(Config.budget config) ts ~m
        in
        let opt, opt_st = Csp2.Opt.solve ~budget:(Config.budget config) ts ~m in
        (* The parallel run contributes wall clock and splitting counters;
           its verdict is checked for consistency below via [agree]. *)
        let par, par_st =
          Csp2.Opt.solve_parallel ~budget:(Config.budget config) ~jobs ts ~m
        in
        if not (Encodings.Outcome.agree par opt) then
          failwith "Csp2opt.run: sequential and parallel opt verdicts contradict";
        let t =
          {
            t with
            classic_decided = t.classic_decided + Bool.to_int (decided classic);
            opt_decided = t.opt_decided + Bool.to_int (decided opt);
            memo_hits = t.memo_hits + opt_st.Csp2.Opt.memo_hits;
            memo_misses = t.memo_misses + opt_st.Csp2.Opt.memo_misses;
            memo_stores = t.memo_stores + opt_st.Csp2.Opt.memo_stores;
            subtrees = t.subtrees + par_st.Csp2.Opt.subtrees;
            pulls = t.pulls + par_st.Csp2.Opt.pulls;
            steals = t.steals + par_st.Csp2.Opt.steals;
            parks = t.parks + par_st.Csp2.Opt.parks;
          }
        in
        let t =
          match opt with
          | Encodings.Outcome.Feasible sched ->
            let ok =
              match Rt_model.Verify.check ts sched with Ok () -> true | Error _ -> false
            in
            {
              t with
              feasible_checked = t.feasible_checked + 1;
              schedules_valid = t.schedules_valid + Bool.to_int ok;
            }
          | _ -> t
        in
        let t =
          if decided classic && decided opt then
            {
              t with
              compared = t.compared + 1;
              verdicts_equal = t.verdicts_equal + Bool.to_int (same_verdict classic opt);
              nodes_classic = t.nodes_classic + classic_st.Csp2.Solver.nodes;
              nodes_opt = t.nodes_opt + opt_st.Csp2.Opt.nodes;
              classic_wall_s = t.classic_wall_s +. classic_st.Csp2.Solver.time_s;
              opt_wall_s = t.opt_wall_s +. opt_st.Csp2.Opt.time_s;
              opt_parallel_wall_s = t.opt_parallel_wall_s +. par_st.Csp2.Opt.time_s;
            }
          else t
        in
        acc := t
      end;
      progress idx)
    instances;
  !acc

let node_reduction_pct t =
  if t.nodes_classic = 0 then 0.
  else 100. *. float_of_int (t.nodes_classic - t.nodes_opt) /. float_of_int t.nodes_classic

let render t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "CSP2 classic vs optimized (bitsets + memo + capacity bound) on %d instances:"
    t.instances;
  line "  searched (analyzer undecided)  %4d" t.searched;
  line "  decided: classic %d, opt %d; both %d (verdicts equal on %d)" t.classic_decided
    t.opt_decided t.compared t.verdicts_equal;
  line "  opt schedules re-verified      %4d of %d" t.schedules_valid t.feasible_checked;
  line "  nodes on compared instances: classic %d vs opt %d (%.2f%% fewer)" t.nodes_classic
    t.nodes_opt (node_reduction_pct t);
  line "  memo: %d hits / %d misses / %d stores" t.memo_hits t.memo_misses t.memo_stores;
  line "  wall on compared instances: classic %.4fs, opt %.4fs, opt --jobs %d %.4fs"
    t.classic_wall_s t.opt_wall_s t.parallel_jobs t.opt_parallel_wall_s;
  line "  parallel phase: %d subtrees, %d pulls, %d steals, %d parks" t.subtrees t.pulls
    t.steals t.parks;
  Buffer.contents b

(* Hand-rolled: the repo deliberately has no JSON dependency. *)
let to_json t =
  let b = Buffer.create 512 in
  let field ?(last = false) name value =
    Buffer.add_string b (Printf.sprintf "  %S: %s%s\n" name value (if last then "" else ","))
  in
  Buffer.add_string b "{\n";
  field "instances" (string_of_int t.instances);
  field "searched" (string_of_int t.searched);
  field "classic_decided" (string_of_int t.classic_decided);
  field "opt_decided" (string_of_int t.opt_decided);
  field "compared" (string_of_int t.compared);
  field "verdicts_equal" (string_of_int t.verdicts_equal);
  field "schedules_valid" (string_of_int t.schedules_valid);
  field "feasible_checked" (string_of_int t.feasible_checked);
  field "nodes_classic" (string_of_int t.nodes_classic);
  field "nodes_opt" (string_of_int t.nodes_opt);
  field "node_reduction_pct" (Printf.sprintf "%.2f" (node_reduction_pct t));
  field "memo_hits" (string_of_int t.memo_hits);
  field "memo_misses" (string_of_int t.memo_misses);
  field "memo_stores" (string_of_int t.memo_stores);
  field "subtrees" (string_of_int t.subtrees);
  field "pulls" (string_of_int t.pulls);
  field "steals" (string_of_int t.steals);
  field "parks" (string_of_int t.parks);
  field "parallel_jobs" (string_of_int t.parallel_jobs);
  field "classic_wall_s" (Printf.sprintf "%.6f" t.classic_wall_s);
  field "opt_wall_s" (Printf.sprintf "%.6f" t.opt_wall_s);
  field ~last:true "opt_parallel_wall_s" (Printf.sprintf "%.6f" t.opt_parallel_wall_s);
  Buffer.add_string b "}\n";
  Buffer.contents b
