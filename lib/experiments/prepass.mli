(** ANALYZE benchmark section: what the static pre-pass buys.

    Over a generated instance batch (same distribution as Tables I–III),
    measures the analyzer's decision rates against the pre-existing
    utilization filter ([r > 1]), the volume of forced/blocked facts it
    derives, and — the acceptance measurement — the dedicated CSP2
    solver's search-node counts with and without the pruned domains on
    the instances the analyzer leaves undecided. *)

type totals = {
  instances : int;
  old_filter_refuted : int;  (** Refuted by utilization alone ([r > 1]). *)
  static_refuted : int;  (** Analyzer [Infeasible]; always >= the above. *)
  certificates_valid : int;  (** Refutations whose certificate re-validated. *)
  static_schedules : int;  (** Analyzer [Trivially_feasible]. *)
  pruned_with_facts : int;  (** [Pruned] verdicts carrying at least one fact. *)
  forced_cells : int;
  blocked_cells : int;
  dead_slots : int;
  m_lower_raised : int;  (** Instances with [m_lower] strictly above ⌈U⌉. *)
  window_cells : int;  (** Total (job, window-slot) cells of pruned instances. *)
  analysis_time_s : float;
  nodes_bare : int;  (** CSP2 nodes without domains, over compared instances. *)
  nodes_pruned : int;  (** CSP2 nodes with domains, same instances. *)
  nodes_compared : int;  (** Instances decided under both configurations. *)
}

val run : ?progress:(int -> unit) -> Config.t -> totals
(** Analyze every generated instance; on [Pruned] ones additionally race
    nothing — just run CSP2 twice sequentially (bare, then with domains)
    under the configured per-run budget and accumulate node counts for the
    pairs where both runs decided. *)

val render : totals -> string
