(** Systematic search over a constraint store (Section III-B of the paper).

    Depth-first search with chronological backtracking, d-way branching,
    pluggable variable- and value-ordering heuristics, optional Luby
    restarts, and combined wall-clock/node budgets.

    The default strategy ([Min_dom_random] + [Random_value]) emulates the
    randomized behaviour the paper observed in Choco (Section VII-B):
    two runs with different seeds may take wildly different times on the
    same instance.  With restarts disabled the search is complete, so
    [Unsat] results are proofs of infeasibility. *)

type var_heuristic =
  | Input_order  (** First unassigned variable in creation order. *)
  | Min_dom  (** Smallest domain, ties by creation order. *)
  | Min_dom_random  (** Smallest domain, ties broken randomly. *)
  | Random_var
  | Dom_over_wdeg
      (** Smallest domain-size / constraint-failure-weight ratio
          (Boussemart et al.'s conflict-driven heuristic); deterministic. *)

type value_heuristic =
  | Min_value
  | Max_value
  | Random_value
  | Ordered of (Engine.var -> int list)
      (** Custom order; values absent from the returned list are tried last
          in ascending order, and values no longer in the domain are
          skipped. *)

type stats = {
  nodes : int;  (** Branching decisions taken. *)
  fails : int;  (** Dead ends encountered. *)
  max_depth : int;
  restarts : int;
  propagations : int;
  time_s : float;
}

val to_stats : backend:string -> stats -> Telemetry.Stats.t
(** The unified telemetry view: [nodes]/[fails] map directly, [max_depth]
    to [depth]. *)

type outcome =
  | Sat of (Engine.var -> int)  (** Total valuation of the solution. *)
  | Unsat  (** Complete refutation (only reported when sound). *)
  | Limit  (** Budget exhausted first — the paper's "overrun". *)

type result = { outcome : outcome; stats : stats }

val solve :
  ?var_heuristic:var_heuristic ->
  ?value_heuristic:value_heuristic ->
  ?seed:int ->
  ?budget:Prelude.Timer.budget ->
  ?restarts:bool ->
  ?branch_vars:Engine.var array ->
  Engine.t ->
  result
(** Find one solution.  [branch_vars] restricts branching to the given
    variables (others must become assigned by propagation; an error is
    raised if a "solution" leaves one unassigned).  [restarts] (default
    false) enables a Luby sequence with base 128 failures — sound for
    satisfiable instances only, so [Unsat] is downgraded to [Limit] while
    any restart remains possible. *)

val count_solutions :
  ?var_heuristic:var_heuristic ->
  ?value_heuristic:value_heuristic ->
  ?seed:int ->
  ?limit:int ->
  Engine.t ->
  int
(** Exhaustively count solutions (testing helper; [limit] caps the count,
    default 1_000_000). *)

val luby : int -> int
(** The Luby restart sequence (1,1,2,1,1,2,4,…), 1-indexed; exposed for
    tests. *)
