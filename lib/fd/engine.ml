open Prelude

exception Too_large of string

type var = {
  vid : int;
  vname : string;
  lo : int;  (* value represented by bit 0 of [dom] *)
  dom : Bitset.t;
  mutable saved_at : int;  (* deepest level whose trail holds a copy *)
  mutable wake : int list;  (* propagator ids watching this variable *)
  mutable weight : int;  (* failures of propagators watching this var (wdeg) *)
}

type trail_entry = { tvar : var; saved : Bitset.t; prev_saved_at : int }

type prop = { pid : int; pname : string; run : unit -> bool; scope : var list }

type t = {
  var_budget : int;
  mutable vars : var list;  (* reverse creation order *)
  mutable nvars : int;
  mutable props : prop list;
  mutable nprops : int;
  queue : int Queue.t;
  queued : Bool_vec.t;
  mutable prop_by_id : prop option array;
  mutable trail : trail_entry list;
  mutable marks : int list;  (* trail depth at each level entry *)
  mutable trail_len : int;
  mutable level : int;
  mutable failed : bool;
  mutable propagations : int;
}

let create ?(var_budget = 2_000_000) () =
  {
    var_budget;
    vars = [];
    nvars = 0;
    props = [];
    nprops = 0;
    queue = Queue.create ();
    queued = Bool_vec.create ();
    prop_by_id = Array.make 16 None;
    trail = [];
    marks = [];
    trail_len = 0;
    level = 0;
    failed = false;
    propagations = 0;
  }

let var_count t = t.nvars
let name v = v.vname
let vid v = v.vid
let level t = t.level
let failed t = t.failed
let propagation_count t = t.propagations

let new_var t ?name ~lo ~hi () =
  if lo > hi then invalid_arg "Engine.new_var: empty domain";
  if t.nvars >= t.var_budget then
    raise (Too_large (Printf.sprintf "variable budget (%d) exhausted" t.var_budget));
  let vname = match name with Some n -> n | None -> Printf.sprintf "x%d" t.nvars in
  let v =
    { vid = t.nvars; vname; lo; dom = Bitset.full (hi - lo + 1); saved_at = -1; wake = [];
      weight = 0 }
  in
  t.vars <- v :: t.vars;
  t.nvars <- t.nvars + 1;
  v

let new_var_of t ?name vals =
  match vals with
  | [] -> invalid_arg "Engine.new_var_of: empty domain"
  | first :: rest ->
    let lo = List.fold_left Int.min first rest in
    let hi = List.fold_left Int.max first rest in
    let v = new_var t ?name ~lo ~hi () in
    Bitset.remove_below v.dom 0;
    (* Start empty, then add the requested values. *)
    Bitset.remove_above v.dom (-1);
    List.iter (fun x -> Bitset.add v.dom (x - lo)) vals;
    v

let weight v = v.weight

let bump_scope p = List.iter (fun v -> v.weight <- v.weight + 1) p.scope

let vmin v = v.lo + Bitset.min_elt v.dom
let vmax v = v.lo + Bitset.max_elt v.dom
let size v = Bitset.cardinal v.dom
let mem v x = Bitset.mem v.dom (x - v.lo)
let is_assigned v = size v = 1
let value v = match Bitset.singleton_value v.dom with Some b -> Some (v.lo + b) | None -> None
let iter_values v f = Bitset.iter (fun b -> f (v.lo + b)) v.dom
let values v = List.map (fun b -> v.lo + b) (Bitset.elements v.dom)

let enqueue_watchers t v =
  List.iter
    (fun pid ->
      if not (Bool_vec.get t.queued pid) then begin
        Bool_vec.set t.queued pid true;
        Queue.add pid t.queue
      end)
    v.wake

let save_if_needed t v =
  if t.level > 0 && v.saved_at < t.level then begin
    t.trail <- { tvar = v; saved = Bitset.copy v.dom; prev_saved_at = v.saved_at } :: t.trail;
    t.trail_len <- t.trail_len + 1;
    v.saved_at <- t.level
  end

let after_change t v =
  if Bitset.is_empty v.dom then begin
    t.failed <- true;
    false
  end
  else begin
    enqueue_watchers t v;
    true
  end

let assign t v x =
  if not (mem v x) then begin
    t.failed <- true;
    false
  end
  else if size v = 1 then true
  else begin
    save_if_needed t v;
    let b = x - v.lo in
    Bitset.remove_below v.dom b;
    Bitset.remove_above v.dom b;
    after_change t v
  end

let remove t v x =
  if not (mem v x) then true
  else begin
    save_if_needed t v;
    Bitset.remove v.dom (x - v.lo);
    after_change t v
  end

let remove_below t v bound =
  if vmin v >= bound then true
  else begin
    save_if_needed t v;
    Bitset.remove_below v.dom (bound - v.lo);
    after_change t v
  end

let remove_above t v bound =
  if vmax v <= bound then true
  else begin
    save_if_needed t v;
    Bitset.remove_above v.dom (bound - v.lo);
    after_change t v
  end

let grow_prop_by_id t =
  if t.nprops >= Array.length t.prop_by_id then begin
    let bigger = Array.make (2 * Array.length t.prop_by_id) None in
    Array.blit t.prop_by_id 0 bigger 0 (Array.length t.prop_by_id);
    t.prop_by_id <- bigger
  end

let propagate t =
  if t.failed then false
  else begin
    let ok = ref true in
    while !ok && not (Queue.is_empty t.queue) do
      let pid = Queue.pop t.queue in
      Bool_vec.set t.queued pid false;
      match t.prop_by_id.(pid) with
      | None -> ()
      | Some p ->
        t.propagations <- t.propagations + 1;
        if not (p.run ()) then begin
          (* wdeg: credit the failure to the constraint's scope. *)
          bump_scope p;
          t.failed <- true;
          ok := false
        end
    done;
    if not !ok then begin
      Queue.clear t.queue;
      Bool_vec.clear t.queued
    end;
    !ok
  end

let post t ~name ~wake ~propagate:run =
  grow_prop_by_id t;
  let p = { pid = t.nprops; pname = name; run; scope = wake } in
  ignore p.pname;
  t.props <- p :: t.props;
  t.nprops <- t.nprops + 1;
  t.prop_by_id.(p.pid) <- Some p;
  List.iter (fun v -> v.wake <- p.pid :: v.wake) wake;
  t.propagations <- t.propagations + 1;
  if t.failed then false
  else if not (run ()) then begin
    bump_scope p;
    t.failed <- true;
    Queue.clear t.queue;
    Bool_vec.clear t.queued;
    false
  end
  else propagate t

let push_level t =
  t.marks <- t.trail_len :: t.marks;
  t.level <- t.level + 1

let backtrack t =
  match t.marks with
  | [] -> invalid_arg "Engine.backtrack: at root level"
  | mark :: rest ->
    while t.trail_len > mark do
      match t.trail with
      | [] -> assert false
      | { tvar; saved; prev_saved_at } :: tl ->
        Bitset.blit ~src:saved ~dst:tvar.dom;
        tvar.saved_at <- prev_saved_at;
        t.trail <- tl;
        t.trail_len <- t.trail_len - 1
    done;
    t.marks <- rest;
    t.level <- t.level - 1;
    t.failed <- false;
    Queue.clear t.queue;
    Bool_vec.clear t.queued

let unassigned_count t =
  List.fold_left (fun acc v -> if is_assigned v then acc else acc + 1) 0 t.vars

let fold_vars t f init = List.fold_left f init (List.rev t.vars)
