open Prelude
module E = Engine

type var_heuristic = Input_order | Min_dom | Min_dom_random | Random_var | Dom_over_wdeg

type value_heuristic =
  | Min_value
  | Max_value
  | Random_value
  | Ordered of (Engine.var -> int list)

type stats = {
  nodes : int;
  fails : int;
  max_depth : int;
  restarts : int;
  propagations : int;
  time_s : float;
}

type outcome = Sat of (Engine.var -> int) | Unsat | Limit
type result = { outcome : outcome; stats : stats }

let luby = Intmath.luby

exception Stop_limit

type searcher = {
  eng : E.t;
  vars : E.var array;
  rng : Prng.t;
  budget : Timer.budget;
  var_h : var_heuristic;
  val_h : value_heuristic;
  mutable nodes : int;
  mutable fails : int;
  mutable max_depth : int;
  mutable fail_limit : int;  (* for restarts; max_int = no restart *)
  mutable fails_this_run : int;
}

exception Restart_now

let check_budget s =
  (* The node limit is exact (cheap integer test); the wall clock is only
     consulted every 1024 nodes.  The cancellation flag is a single atomic
     read, polled on every node so a portfolio cancel lands promptly. *)
  if s.nodes land 1023 = 0 then
    Telemetry.heartbeat ~name:"fd" ~nodes:s.nodes ~fails:s.fails ~depth:s.max_depth;
  if
    Timer.nodes_exceeded s.budget ~nodes:s.nodes
    || Timer.cancelled s.budget
    || (s.nodes land 1023 = 0 && Timer.exceeded s.budget ~nodes:s.nodes)
  then raise Stop_limit

(* Variable selection is the inner loop of the search (it runs once per
   node over every variable), so each strategy gets a hand-rolled scan;
   the randomized ones draw a single random number per node (two-pass
   choose-k-th) instead of per-variable reservoir sampling. *)
(* [hint] is a lower bound on the first unassigned position, valid for
   [Input_order]: every variable before it was assigned at a shallower
   level and stays assigned throughout the subtree. *)
let select_var s ~hint =
  let vars = s.vars in
  let nvars = Array.length vars in
  match s.var_h with
  | Input_order ->
    let rec go i =
      if i >= nvars then None
      else if not (E.is_assigned vars.(i)) then Some (vars.(i), i)
      else go (i + 1)
    in
    go hint
  | Min_dom ->
    let best = ref None and best_size = ref max_int in
    for i = 0 to nvars - 1 do
      let v = vars.(i) in
      if not (E.is_assigned v) then begin
        let sz = E.size v in
        if sz < !best_size then begin
          best := Some v;
          best_size := sz
        end
      end
    done;
    (match !best with None -> None | Some v -> Some (v, hint))
  | Min_dom_random ->
    let best_size = ref max_int and ties = ref 0 in
    for i = 0 to nvars - 1 do
      let v = vars.(i) in
      if not (E.is_assigned v) then begin
        let sz = E.size v in
        if sz < !best_size then begin
          best_size := sz;
          ties := 1
        end
        else if sz = !best_size then incr ties
      end
    done;
    if !ties = 0 then None
    else begin
      let target = ref (Prng.int s.rng !ties) in
      let chosen = ref None in
      (try
         for i = 0 to nvars - 1 do
           let v = vars.(i) in
           if (not (E.is_assigned v)) && E.size v = !best_size then begin
             if !target = 0 then begin
               chosen := Some (v, hint);
               raise Exit
             end;
             decr target
           end
         done
       with Exit -> ());
      !chosen
    end
  | Dom_over_wdeg ->
    (* Minimize size/(weight+1); compare with cross-multiplication to stay
       in integers.  Ties by position. *)
    let best = ref None and best_size = ref 1 and best_w1 = ref 0 in
    for i = 0 to nvars - 1 do
      let v = vars.(i) in
      if not (E.is_assigned v) then begin
        let sz = E.size v and w1 = E.weight v + 1 in
        match !best with
        | None ->
          best := Some v;
          best_size := sz;
          best_w1 := w1
        | Some _ ->
          if sz * !best_w1 < !best_size * w1 then begin
            best := Some v;
            best_size := sz;
            best_w1 := w1
          end
      end
    done;
    (match !best with None -> None | Some v -> Some (v, hint))
  | Random_var ->
    let count = ref 0 in
    for i = 0 to nvars - 1 do
      if not (E.is_assigned vars.(i)) then incr count
    done;
    if !count = 0 then None
    else begin
      let target = ref (Prng.int s.rng !count) in
      let chosen = ref None in
      (try
         for i = 0 to nvars - 1 do
           let v = vars.(i) in
           if not (E.is_assigned v) then begin
             if !target = 0 then begin
               chosen := Some (v, hint);
               raise Exit
             end;
             decr target
           end
         done
       with Exit -> ());
      !chosen
    end

let value_order s v =
  let domain = E.values v in
  match s.val_h with
  | Min_value -> domain
  | Max_value -> List.rev domain
  | Random_value ->
    let a = Array.of_list domain in
    Prng.shuffle s.rng a;
    Array.to_list a
  | Ordered f ->
    let preferred = List.filter (fun x -> E.mem v x) (f v) in
    let rest = List.filter (fun x -> not (List.mem x preferred)) domain in
    preferred @ rest

(* Depth-first search; returns [true] when a solution has been reached
   (all branch variables assigned, constraints at fixpoint). *)
let rec dfs s depth hint =
  check_budget s;
  if depth > s.max_depth then s.max_depth <- depth;
  match select_var s ~hint with
  | None -> true
  | Some (v, pos) ->
    let try_value x =
      s.nodes <- s.nodes + 1;
      check_budget s;
      E.push_level s.eng;
      let ok = E.assign s.eng v x && E.propagate s.eng && dfs s (depth + 1) pos in
      if ok then true
      else begin
        E.backtrack s.eng;
        s.fails <- s.fails + 1;
        s.fails_this_run <- s.fails_this_run + 1;
        if s.fails_this_run > s.fail_limit then raise Restart_now;
        false
      end
    in
    List.exists try_value (value_order s v)

let make_searcher ?(var_heuristic = Min_dom_random) ?(value_heuristic = Random_value)
    ?(seed = 0) ?(budget = Timer.unlimited) ?branch_vars eng =
  let vars =
    match branch_vars with
    | Some vs -> vs
    | None -> Array.of_list (E.fold_vars eng (fun acc v -> v :: acc) [] |> List.rev)
  in
  {
    eng;
    vars;
    rng = Prng.create ~seed;
    budget;
    var_h = var_heuristic;
    val_h = value_heuristic;
    nodes = 0;
    fails = 0;
    max_depth = 0;
    fail_limit = max_int;
    fails_this_run = 0;
  }

let stats_of s ~restarts ~t0 =
  {
    nodes = s.nodes;
    fails = s.fails;
    max_depth = s.max_depth;
    restarts;
    propagations = E.propagation_count s.eng;
    time_s = Timer.elapsed t0;
  }

let to_stats ~backend (st : stats) =
  Telemetry.Stats.make ~backend ~nodes:st.nodes ~fails:st.fails ~depth:st.max_depth
    ~restarts:st.restarts ~propagations:st.propagations ~time_s:st.time_s ()

let extract_solution s =
  (* Capture the valuation eagerly: the engine's state dies with the next
     backtrack. *)
  let table = Hashtbl.create (Array.length s.vars * 2) in
  let record v =
    match E.value v with
    | Some x -> Hashtbl.replace table (E.vid v) x
    | None -> invalid_arg ("Search.solve: unassigned non-branch variable " ^ E.name v)
  in
  E.fold_vars s.eng (fun () v -> record v) ();
  fun v -> Hashtbl.find table (E.vid v)

let solve ?var_heuristic ?value_heuristic ?seed ?budget ?(restarts = false) ?branch_vars eng =
  let t0 = Timer.start () in
  let s = make_searcher ?var_heuristic ?value_heuristic ?seed ?budget ?branch_vars eng in
  if E.failed eng then { outcome = Unsat; stats = stats_of s ~restarts:0 ~t0 }
  else begin
    let restart_count = ref 0 in
    let rec attempt run =
      s.fails_this_run <- 0;
      s.fail_limit <- (if restarts then 128 * luby run else max_int);
      match dfs s 0 0 with
      | true -> { outcome = Sat (extract_solution s); stats = stats_of s ~restarts:!restart_count ~t0 }
      | false ->
        (* [dfs] only returns [false] after exploring the whole tree (an
           aborted run raises [Restart_now] instead), so this is a proof. *)
        { outcome = Unsat; stats = stats_of s ~restarts:!restart_count ~t0 }
      | exception Restart_now ->
        (* Unwind any levels left by the aborted recursion. *)
        while E.level eng > 0 do
          E.backtrack eng
        done;
        incr restart_count;
        attempt (run + 1)
      | exception Stop_limit ->
        while E.level eng > 0 do
          E.backtrack eng
        done;
        { outcome = Limit; stats = stats_of s ~restarts:!restart_count ~t0 }
    in
    attempt 1
  end

let count_solutions ?var_heuristic ?value_heuristic ?seed ?(limit = 1_000_000) eng =
  let s = make_searcher ?var_heuristic ?value_heuristic ?seed eng in
  let count = ref 0 in
  if E.failed eng then 0
  else begin
    let rec enumerate depth hint =
      if !count >= limit then ()
      else
        match select_var s ~hint with
        | None -> incr count
        | Some (v, pos) ->
          let try_value x =
            s.nodes <- s.nodes + 1;
            E.push_level s.eng;
            if E.assign s.eng v x && E.propagate s.eng then enumerate (depth + 1) pos;
            E.backtrack s.eng
          in
          List.iter try_value (value_order s v)
    in
    enumerate 0 0;
    !count
  end
