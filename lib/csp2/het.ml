open Prelude
open Rt_model

(* Number of window slots of [job] at positions >= t.  Slot arrays are
   ascending cyclic values, which is exactly sweep order (a wrapped window's
   head slots are the small values and are swept first). *)
let slots_from (job : Windows.job) t =
  let slots = job.slots in
  let len = Array.length slots in
  (* Binary search for the first index with slots.(i) >= t. *)
  let rec go lo hi = if lo >= hi then lo else
      let mid = (lo + hi) / 2 in
      if slots.(mid) >= t then go lo mid else go (mid + 1) hi
  in
  len - go 0 len

exception Stop_limit

let solve ?(heuristic = Heuristic.DC) ?(budget = Timer.unlimited) ~platform ts =
  let t0 = Timer.start () in
  let windows = Windows.build ts in
  let n = Taskset.size ts in
  let m = Platform.processors platform in
  let horizon = Windows.horizon windows in
  let jobs = Windows.jobs windows in
  let rem = Array.map (fun (j : Windows.job) -> (Taskset.task ts j.task).wcet) jobs in
  (* Sort the slot arrays once: Windows lists a wrapped job's slots in
     release order; sweep reasoning wants them ascending. *)
  let jobs =
    Array.map
      (fun (j : Windows.job) ->
        let slots = Array.copy j.slots in
        Array.sort Int.compare slots;
        { j with Windows.slots })
      jobs
  in
  (* Quality-ascending processor order (paper: least capable first). *)
  let proc_order = Array.init m Fun.id in
  let quality = Array.init m (fun p -> Platform.quality platform ts ~proc:p) in
  Array.sort
    (fun a b ->
      if quality.(a) <> quality.(b) then Float.compare quality.(a) quality.(b) else Int.compare a b)
    proc_order;
  (* Value order per task: few eligible processors first, then heuristic. *)
  let eligible_count =
    Array.init n (fun i -> List.length (Platform.eligible_processors platform ~task:i))
  in
  let hrank = Heuristic.rank heuristic ts in
  let task_order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      if eligible_count.(a) <> eligible_count.(b) then
        Int.compare eligible_count.(a) eligible_count.(b)
      else if hrank.(a) <> hrank.(b) then Int.compare hrank.(a) hrank.(b)
      else Int.compare a b)
    task_order;
  let max_rate =
    Array.init n (fun i ->
        List.fold_left
          (fun acc p -> Int.max acc (Platform.rate platform ~task:i ~proc:p))
          0
          (Platform.eligible_processors platform ~task:i))
  in
  let cells = Array.make_matrix m horizon (-1) in
  let assigned = Bitset.create n in  (* tasks taken in the current slot *)
  let nodes = ref 0 in
  let fails = ref 0 in
  let max_time = ref 0 in
  (* Every node increment is followed by a [decide_slot] entry, so the
     masked wall-clock check fires once per 256 nodes; the stop flag is an
     atomic read and is polled unconditionally for prompt cancellation. *)
  let check_budget () =
    if
      Timer.nodes_exceeded budget ~nodes:!nodes
      || Timer.cancelled budget
      || (!nodes land 255 = 0 && Timer.exceeded budget ~nodes:!nodes)
    then raise Stop_limit
  in
  (* End-of-slot feasibility: every job active at [t] must still be able to
     finish at maximal rate, and jobs ending at [t] must be complete. *)
  let slot_check t =
    let ok = ref true in
    List.iter
      (fun i ->
        if !ok then begin
          let g = Windows.job_id_at windows ~task:i ~time:t in
          let job = jobs.(g) in
          let left = slots_from job (t + 1) in
          if rem.(g) > left * max_rate.(i) then ok := false
        end)
      (Windows.available_tasks windows ~time:t);
    !ok
  in
  (* Decide cell [q] (index into proc_order) of slot [t]. *)
  let rec decide_slot t q =
    check_budget ();
    if q = m then begin
      if slot_check t then begin
        if t > !max_time then max_time := t;
        if t + 1 = horizon then true
        else begin
          Bitset.clear assigned;
          let ok = decide_slot (t + 1) 0 in
          if not ok then begin
            (* Restore the slot-local assigned set for backtracking. *)
            Bitset.clear assigned;
            for k = 0 to m - 1 do
              let v = cells.(k).(t) in
              if v >= 0 then Bitset.add assigned v
            done
          end;
          ok
        end
      end
      else begin
        incr fails;
        false
      end
    end
    else begin
      let p = proc_order.(q) in
      (* Symmetry (13): identical neighbour processors in ascending value
         order (idle = -1 first). *)
      let floor_value =
        if q = 0 then min_int
        else begin
          let p' = proc_order.(q - 1) in
          if Platform.same_kind platform ~proc:p ~proc':p' ~tasks:n then cells.(p').(t)
          else min_int
        end
      in
      let try_task i =
        if i >= floor_value && (not (Bitset.mem assigned i)) then begin
          let rate = Platform.rate platform ~task:i ~proc:p in
          if rate > 0 then begin
            let g = Windows.job_id_at windows ~task:i ~time:t in
            if g >= 0 && rem.(g) >= rate then begin
              incr nodes;
              cells.(p).(t) <- i;
              Bitset.add assigned i;
              rem.(g) <- rem.(g) - rate;
              let ok = decide_slot t (q + 1) in
              if not ok then begin
                rem.(g) <- rem.(g) + rate;
                Bitset.remove assigned i;
                cells.(p).(t) <- -1;
                incr fails
              end;
              ok
            end
            else false
          end
          else false
        end
        else false
      in
      Array.exists try_task task_order
      ||
      (* Idle, ordered last (sound even though tasks may be eligible —
         see the .mli note on rates vs the no-idle rule). *)
      (-1 >= floor_value
      &&
      begin
        incr nodes;
        cells.(p).(t) <- -1;
        decide_slot t (q + 1)
      end)
    end
  in
  let stats () =
    {
      Solver.nodes = !nodes;
      fails = !fails;
      max_time_reached = !max_time;
      time_s = Timer.elapsed t0;
    }
  in
  match decide_slot 0 0 with
  | true ->
    let sched = Schedule.create ~m ~horizon in
    for p = 0 to m - 1 do
      for t = 0 to horizon - 1 do
        if cells.(p).(t) >= 0 then Schedule.set sched ~proc:p ~time:t cells.(p).(t)
      done
    done;
    (Encodings.Outcome.Feasible sched, stats ())
  | false -> (Encodings.Outcome.Infeasible, stats ())
  | exception Stop_limit -> (Encodings.Outcome.Limit, stats ())
