(* The pool's job-slot protocol and completion barrier, as a functor.

   Extracted from Pool so the parts that can deadlock — the park/assign
   handshake on the per-worker mutex/condvar, and the run-boundary
   completion barrier — are expressed once over abstract primitives.
   Production (Pool) instantiates the stdlib primitives; the model
   checker (lib/check) instantiates instrumented shims and explores the
   interleavings of assign/park/arrive/await exhaustively.

   [defer_job_clear] re-instates, behind a test-only flag, the exact bug
   this protocol shipped with and was fixed for: clearing the job slot
   after [f ()] on re-lock instead of before unlock.  The completion
   barrier a job arrives at is what releases the worker to the next
   [run]; with the deferred clear, a fresh assignment landing between
   [f ()] and the re-lock is silently destroyed — the worker parks, the
   new caller waits forever.  The checker must (and does) find that
   hang; production never passes the flag. *)

open Prelude

module Make (P : Sync.PRIMS) = struct
  type worker = {
    lock : P.Mutex.t;
    cond : P.Condition.t;
    mutable job : (unit -> unit) option;
    mutable quit : bool;
  }

  let protect m f = Sync.protect (module P.Mutex) m f

  let make_worker () =
    { lock = P.Mutex.create (); cond = P.Condition.create (); job = None; quit = false }

  let worker_loop ?(defer_job_clear = false) w =
    P.Mutex.lock w.lock;
    let rec park () =
      match w.job with
      | Some f ->
        (* Claim the job — clear the slot BEFORE dropping the lock.  The
           barrier [f] arrives at is what lets the caller release this
           worker, so the next [run] can assign a fresh job while we are
           still between [f ()] and re-locking; the deferred clear below
           (mutation only) silently destroys that assignment. *)
        if not defer_job_clear then w.job <- None;
        P.Mutex.unlock w.lock;
        f ();
        P.Mutex.lock w.lock;
        if defer_job_clear then w.job <- None;
        park ()
      | None ->
        if w.quit then P.Mutex.unlock w.lock
        else begin
          P.Condition.wait w.cond w.lock;
          park ()
        end
    in
    park ()

  let assign w f =
    protect w.lock (fun () ->
        w.job <- Some f;
        P.Condition.signal w.cond)

  let retire w =
    protect w.lock (fun () ->
        w.quit <- true;
        P.Condition.signal w.cond)

  (* Completion barrier for one [run]: [arrive] is called once per job
     off the worker's hot path; [await] blocks the caller until every
     job has arrived.  The counter is decremented OUTSIDE the lock (one
     atomic op per job), but the broadcast happens under it and [await]
     re-checks the counter under it before every wait — the classic
     no-lost-wakeup shape the checker verifies. *)
  module Barrier = struct
    type t = {
      remaining : int P.Atomic.t;
      lock : P.Mutex.t;
      cond : P.Condition.t;
    }

    let create n =
      { remaining = P.Atomic.make n; lock = P.Mutex.create (); cond = P.Condition.create () }

    let arrive t =
      if P.Atomic.fetch_and_add t.remaining (-1) = 1 then
        protect t.lock (fun () -> P.Condition.broadcast t.cond)

    let await t =
      P.Mutex.lock t.lock;
      while P.Atomic.get t.remaining > 0 do
        P.Condition.wait t.cond t.lock
      done;
      P.Mutex.unlock t.lock
  end
end
