open Prelude
open Rt_model

type stats = {
  nodes : int;
  fails : int;
  max_time_reached : int;
  time_s : float;
}

(* One decision point per time slot.  Availability, urgency and the free
   list are recomputed from [rem] on every visit (they are O(n) to derive
   and storing them per frame would cost O(n·T) memory on Table IV-sized
   instances); only the undo set and the combination cursor persist. *)
type frame = {
  mutable time : int;
  applied : Bitset.t;  (* task ids scheduled at this slot *)
  mutable has_applied : bool;
  mutable combo : int array;  (* indices into the free list *)
  mutable fresh : bool;  (* first combination not yet emitted *)
}

type search = {
  jm : Jobmap.t;
  m : int;
  horizon : int;
  n : int;
  rem : int array;  (* per global job: units still owed *)
  by_rank : int array;  (* rank -> task id *)
  deadline : int array;
  urgency : bool;  (* forced inclusion of zero-laxity tasks (Section V-C3) *)
  domains : Analysis.Domains.t option;  (* statically pruned cells *)
  usable_after : int array array;  (* [task].(t): unblocked window slots >= t;
                                      only built (and valid) with domains *)
  budget : Timer.budget;
  mutable nodes : int;
  mutable fails : int;
  mutable max_time : int;
}

(* Remaining window slots of job (task, k) at sweep position [t], counting
   both parts of a wrapped window (head slots are swept first but belong to
   the same cyclic job as the tail). *)
let remaining_slots s ~task ~k ~t =
  let release = Jobmap.release s.jm ~task ~k in
  let last = release + s.deadline.(task) - 1 in
  if last < s.horizon then last - t + 1
  else begin
    (* Wrapped: head covers [0, last - T], tail covers [release, T-1]. *)
    let head_end = last - s.horizon in
    if t <= head_end then head_end - t + 1 + (s.horizon - release) else s.horizon - t
  end

let is_blocked s ~task ~time =
  match s.domains with
  | None -> false
  | Some d -> Analysis.Domains.is_blocked d ~task ~time

(* With pruned domains the window arithmetic above over-counts: blocked
   slots can never serve the job.  [usable_after.(i).(t)] replaces it with
   the exact count of unblocked window slots at sweep positions >= t, so a
   statically forced cell (unblocked count = remaining demand) becomes
   urgent automatically and the urgency invariant [rem <= slots_left] is
   preserved branch-wide. *)
let build_usable_after jm deadline domains =
  let horizon = Jobmap.horizon jm in
  let n = Array.length deadline in
  let ua = Array.make_matrix n horizon 0 in
  for i = 0 to n - 1 do
    for k = 0 to Jobmap.jobs_of_task jm i - 1 do
      let release = Jobmap.release jm ~task:i ~k in
      let slots =
        List.init deadline.(i) (fun d -> (release + d) mod horizon)
        |> List.sort_uniq Int.compare (* sweep (= numeric) order; head first *)
      in
      let acc = ref 0 in
      List.iter
        (fun t ->
          if not (Analysis.Domains.is_blocked domains ~task:i ~time:t) then incr acc;
          ua.(i).(t) <- !acc)
        (List.rev slots)
    done
  done;
  ua

let to_stats ~backend (st : stats) =
  Telemetry.Stats.make ~backend ~nodes:st.nodes ~fails:st.fails ~depth:st.max_time_reached
    ~time_s:st.time_s ()

type step = Applied | Exhausted | Stopped

let undo s f =
  if f.has_applied then begin
    Bitset.iter
      (fun i ->
        let g = Jobmap.global_job_at s.jm ~task:i ~time:f.time in
        s.rem.(g) <- s.rem.(g) + 1)
      f.applied;
    Bitset.clear f.applied;
    f.has_applied <- false
  end

(* Without urgency propagation, the only failure signal is a window
   closing unfinished: any available task whose job's last sweep slot is
   [t] must have been completed by the chosen subset. *)
let expiry_ok s ~avail =
  List.for_all
    (fun ((_ : int), (_ : int), g, slots_left) -> slots_left > 1 || s.rem.(g) = 0)
    avail

let advance s f =
  let t = f.time in
  undo s f;
  (* Availability in heuristic order; urgency classification. *)
  let urgent = ref [] and free = ref [] in
  let n_urgent = ref 0 and n_free = ref 0 in
  let avail = ref [] in
  for r = s.n - 1 downto 0 do
    let i = s.by_rank.(r) in
    let k = Jobmap.local_job_at s.jm ~task:i ~time:t in
    if k >= 0 && not (is_blocked s ~task:i ~time:t) then begin
      let g = Jobmap.first_of_task s.jm i + k in
      if s.rem.(g) > 0 then begin
        let slots_left =
          match s.domains with
          | None -> remaining_slots s ~task:i ~k ~t
          | Some _ -> s.usable_after.(i).(t)
        in
        avail := (i, k, g, slots_left) :: !avail;
        if s.urgency then begin
          assert (s.rem.(g) <= slots_left);
          if s.rem.(g) = slots_left then begin
            urgent := i :: !urgent;
            incr n_urgent
          end
          else begin
            free := i :: !free;
            incr n_free
          end
        end
        else begin
          (* No urgency forcing: every available task is a free choice. *)
          free := i :: !free;
          incr n_free
        end
      end
    end
  done;
  let q = Int.min s.m (!n_urgent + !n_free) in
  if !n_urgent > q then begin
    (* Urgency overload: no subset of this slot can work. *)
    s.fails <- s.fails + 1;
    Exhausted
  end
  else begin
    let k = q - !n_urgent in
    let free_arr = Array.of_list !free in
    let schedule i =
      let g = Jobmap.global_job_at s.jm ~task:i ~time:t in
      s.rem.(g) <- s.rem.(g) - 1;
      Bitset.add f.applied i
    in
    (* Iterate combinations until one passes the post-checks.  Without
       urgency propagation this loop can reject C(n_free, k) subsets in a
       single [advance] call, so the budget must be polled here: the outer
       search loop alone would let one call run arbitrarily past the wall
       limit.  The check fires on every 256th node — tested on each
       increment, so it cannot be skipped over — plus a per-node atomic
       read of the stop flag for prompt cross-domain cancellation. *)
    let rec attempt () =
      let next_ok =
        if f.fresh then begin
          f.combo <- Array.init k Fun.id;
          f.fresh <- false;
          true
        end
        else k > 0 && Combi.next ~n:!n_free f.combo
      in
      if not next_ok then begin
        s.fails <- s.fails + 1;
        Exhausted
      end
      else begin
        List.iter schedule !urgent;
        Array.iter (fun idx -> schedule free_arr.(idx)) f.combo;
        f.has_applied <- true;
        s.nodes <- s.nodes + 1;
        if
          Timer.cancelled s.budget
          || (s.nodes land 255 = 0 && Timer.exceeded s.budget ~nodes:s.nodes)
        then begin
          undo s f;
          Stopped
        end
        else if s.urgency || expiry_ok s ~avail:!avail then Applied
        else begin
          (* A window closed unfinished: reject this subset locally. *)
          s.fails <- s.fails + 1;
          undo s f;
          attempt ()
        end
      end
    in
    attempt ()
  end

let build_schedule s frames depth =
  let sched = Schedule.create ~m:s.m ~horizon:s.horizon in
  for d = 0 to depth - 1 do
    let f = frames.(d) in
    (* Symmetry rule (10): idle processors first, then tasks ascending. *)
    let tasks = Bitset.elements f.applied in
    let q = List.length tasks in
    List.iteri (fun pos i -> Schedule.set sched ~proc:(s.m - q + pos) ~time:f.time i) tasks
  done;
  sched

let solve ?(heuristic = Heuristic.DC) ?(budget = Timer.unlimited) ?(urgency = true) ?domains ts
    ~m =
  if m < 1 then invalid_arg "Csp2.Solver.solve: m must be >= 1";
  let t0 = Timer.start () in
  let jm = Jobmap.create ts in
  let n = Taskset.size ts in
  let horizon = Jobmap.horizon jm in
  (match domains with
  | Some d when not (Analysis.Domains.matches d ~n ~m ~horizon) ->
    invalid_arg "Csp2.Solver.solve: domains derived for a different instance"
  | _ -> ());
  let wcet = Array.init n (fun i -> (Taskset.task ts i).wcet) in
  let deadline = Array.init n (fun i -> (Taskset.task ts i).deadline) in
  let rem = Array.make (Jobmap.job_count jm) 0 in
  for i = 0 to n - 1 do
    let base = Jobmap.first_of_task jm i in
    for k = 0 to Jobmap.jobs_of_task jm i - 1 do
      rem.(base + k) <- wcet.(i)
    done
  done;
  let s =
    {
      jm;
      m;
      horizon;
      n;
      rem;
      by_rank = Heuristic.order heuristic ts;
      deadline;
      urgency;
      domains;
      usable_after =
        (match domains with Some d -> build_usable_after jm deadline d | None -> [||]);
      budget;
      nodes = 0;
      fails = 0;
      max_time = 0;
    }
  in
  let stats () =
    { nodes = s.nodes; fails = s.fails; max_time_reached = s.max_time; time_s = Timer.elapsed t0 }
  in
  let new_frame time =
    { time; applied = Bitset.create n; has_applied = false; combo = [||]; fresh = true }
  in
  (* Explicit stack: recursion depth would be the hyperperiod.  Each cell
     gets its own frame — [Array.make] would seed every cell with the
     *same* record, and two live depths sharing one [applied] bitset would
     corrupt [undo].  (The old code masked this by overwriting each cell
     with a fresh frame before use; per-cell init plus [reset_frame] keeps
     the invariant explicit and drops the per-descent allocation.) *)
  let frames = Array.init (horizon + 1) (fun _ -> new_frame 0) in
  let reset_frame f time =
    f.time <- time;
    Bitset.clear f.applied;
    f.has_applied <- false;
    f.combo <- [||];
    f.fresh <- true
  in
  let depth = ref 1 in
  let outcome = ref None in
  while !outcome = None do
    if !depth = 0 then outcome := Some Encodings.Outcome.Infeasible
    else if
      (if s.nodes land 255 = 0 then begin
         Resilience.Failpoint.hit "csp2.node";
         Telemetry.heartbeat ~name:"csp2" ~nodes:s.nodes ~fails:s.fails ~depth:s.max_time
       end;
       Timer.nodes_exceeded budget ~nodes:s.nodes
       || Timer.cancelled budget
       || (s.nodes land 255 = 0 && Timer.exceeded budget ~nodes:s.nodes))
    then outcome := Some Encodings.Outcome.Limit
    else begin
      let f = frames.(!depth - 1) in
      match advance s f with
      | Exhausted -> decr depth
      | Stopped -> outcome := Some Encodings.Outcome.Limit
      | Applied ->
        if f.time > s.max_time then s.max_time <- f.time;
        if f.time + 1 = horizon then
          outcome := Some (Encodings.Outcome.Feasible (build_schedule s frames !depth))
        else begin
          reset_frame frames.(!depth) (f.time + 1);
          incr depth
        end
    end
  done;
  (match !outcome with Some o -> (o, stats ()) | None -> assert false)
