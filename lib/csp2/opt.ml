open Prelude
open Rt_model

type stats = {
  nodes : int;
  fails : int;
  memo_hits : int;
  memo_misses : int;
  memo_stores : int;
  nogood_hits : int;
  nogood_misses : int;
  nogood_stores : int;
  nogood_evicted : int;
  subtrees : int;
  pulls : int;
  steals : int;
  parks : int;
  max_time_reached : int;
  time_s : float;
}

let hit_rate_pct ~hits ~misses =
  let lookups = hits + misses in
  if lookups = 0 then 0. else 100. *. float_of_int hits /. float_of_int lookups

let default_memo_mb = 64
let default_probe_nodes = 4096

(* ------------------------------------------------------------------ *)
(* Transposition table.

   A slot state is (time, remaining-execution vector); the exploration
   below a state is a deterministic function of it, so a state once
   exhaustively refuted can be pruned on every later visit.  The table is
   a fixed-capacity direct-mapped cache (replace on collision): memory is
   bounded by construction, and pruning compares the *full* rem vector —
   the incremental hash only picks the slot, so a hash collision costs a
   missed prune, never a wrong one.

   Entries carry an epoch stamp: an entry is live only while its stamp
   equals the table's current epoch, and [reset] — used when a pooled
   engine is rebound to a new instance — just bumps the epoch.  This is
   O(1) invalidation of a table that may have grown to tens of MB, and
   it is what makes engine reuse across back-to-back solves safe: a
   stale entry from a previous task set can never satisfy a lookup. *)

module Memo = struct
  type t = {
    key_len : int;  (* bytes per rem vector *)
    wide : bool;  (* two bytes per job (any wcet > 255) *)
    cap_mask : int;  (* final entry count - 1 allowed by the MB cap *)
    mutable mask : int;  (* current entry count - 1, power of two *)
    mutable epoch : int;  (* entries are live iff their stamp matches *)
    mutable stamps : int array;
    mutable times : int array;
    mutable hashes : int array;
    mutable keys : Bytes.t;  (* flat (mask+1) * key_len buffer: no per-entry alloc *)
    mutable occupied : int;  (* live entries, drives geometric growth *)
    mutable hits : int;
    mutable lookups : int;
    mutable stores : int;
  }

  (* Three int-array cells per entry, on top of the key bytes. *)
  let entry_overhead = 24

  (* Start tiny and double toward the cap: eager full-cap allocation
     (zeroing tens of MB) would dominate the wall clock of the many
     instances that are decided in a few hundred nodes. *)
  let initial_size = 4096

  let create ~job_count ~max_rem ~cap_bytes =
    if cap_bytes <= 0 || max_rem > 0xFFFF then None
    else begin
      let wide = max_rem > 0xFF in
      let key_len = Int.max 1 (job_count * if wide then 2 else 1) in
      let budget_bytes = cap_bytes in
      let slots = Int.max 64 (budget_bytes / (key_len + entry_overhead)) in
      let rec pow2 p = if 2 * p > slots || 2 * p <= 0 then p else pow2 (2 * p) in
      let cap_size = pow2 64 in
      let size = Int.min initial_size cap_size in
      Some
        {
          key_len;
          wide;
          cap_mask = cap_size - 1;
          mask = size - 1;
          epoch = 1;
          stamps = Array.make size 0;
          times = Array.make size 0;
          hashes = Array.make size 0;
          keys = Bytes.create (size * key_len);
          occupied = 0;
          hits = 0;
          lookups = 0;
          stores = 0;
        }
    end

  (* O(1) wholesale invalidation: stale entries fail the stamp check and
     are overwritten by later stores.  Counters restart with the solve
     they now describe. *)
  let reset t =
    t.epoch <- t.epoch + 1;
    t.occupied <- 0;
    t.hits <- 0;
    t.lookups <- 0;
    t.stores <- 0

  let slot_index t ~time ~hash =
    let h = hash lxor (time * 0x9E3779B1) in
    let h = (h lxor (h lsr 33)) * 0xFF51AFD7 in
    let h = h lxor (h lsr 15) in
    h land t.mask

  let key_matches t idx rem =
    let off = idx * t.key_len in
    let jn = Array.length rem in
    if t.wide then begin
      let rec go g =
        g >= jn
        || Char.code (Bytes.unsafe_get t.keys (off + (2 * g)))
           lor (Char.code (Bytes.unsafe_get t.keys (off + (2 * g) + 1)) lsl 8)
           = rem.(g)
           && go (g + 1)
      in
      go 0
    end
    else begin
      let rec go g =
        g >= jn || (Char.code (Bytes.unsafe_get t.keys (off + g)) = rem.(g) && go (g + 1))
      in
      go 0
    end

  let write_key t idx rem =
    let off = idx * t.key_len in
    if t.wide then
      for g = 0 to Array.length rem - 1 do
        Bytes.unsafe_set t.keys (off + (2 * g)) (Char.unsafe_chr (rem.(g) land 0xFF));
        Bytes.unsafe_set t.keys (off + (2 * g) + 1) (Char.unsafe_chr ((rem.(g) lsr 8) land 0xFF))
      done
    else
      for g = 0 to Array.length rem - 1 do
        Bytes.unsafe_set t.keys (off + g) (Char.unsafe_chr rem.(g))
      done

  let known_infeasible t ~time ~hash rem =
    t.lookups <- t.lookups + 1;
    let idx = slot_index t ~time ~hash in
    if
      t.stamps.(idx) = t.epoch
      && t.times.(idx) = time
      && t.hashes.(idx) = hash
      && key_matches t idx rem
    then begin
      t.hits <- t.hits + 1;
      true
    end
    else false

  (* Double the table and reinsert the live entries: times/hashes carry
     everything the slot function needs, keys are blitted wholesale.
     Rehash collisions just overwrite (direct-mapped replacement either
     way); stale-epoch entries are dropped. *)
  let grow t =
    Resilience.Failpoint.hit "csp2opt.memo_grow";
    let old_mask = t.mask
    and old_stamps = t.stamps
    and old_times = t.times
    and old_hashes = t.hashes in
    let old_keys = t.keys in
    let size = 2 * (old_mask + 1) in
    t.mask <- size - 1;
    t.stamps <- Array.make size 0;
    t.times <- Array.make size 0;
    t.hashes <- Array.make size 0;
    t.keys <- Bytes.create (size * t.key_len);
    t.occupied <- 0;
    for idx = 0 to old_mask do
      if old_stamps.(idx) = t.epoch then begin
        let time = old_times.(idx) in
        let hash = old_hashes.(idx) in
        let idx' = slot_index t ~time ~hash in
        if t.stamps.(idx') <> t.epoch then t.occupied <- t.occupied + 1;
        t.stamps.(idx') <- t.epoch;
        t.times.(idx') <- time;
        t.hashes.(idx') <- hash;
        Bytes.blit old_keys (idx * t.key_len) t.keys (idx' * t.key_len) t.key_len
      end
    done

  let store t ~time ~hash rem =
    t.stores <- t.stores + 1;
    if t.occupied * 2 > t.mask + 1 && t.mask < t.cap_mask then grow t;
    let idx = slot_index t ~time ~hash in
    if t.stamps.(idx) <> t.epoch then t.occupied <- t.occupied + 1;
    t.stamps.(idx) <- t.epoch;
    t.times.(idx) <- time;
    t.hashes.(idx) <- hash;
    write_key t idx rem
end

(* ------------------------------------------------------------------ *)
(* Nogood store.

   The memo above answers "was exactly this (t, rem) refuted?".  The
   nogood store generalizes: an exhausted (t, rem₀) refutes every
   (t, rem) with rem ≥ rem₀ pointwise — a feasible completion for the
   harder state would, by deleting the extra units, yield one for rem₀
   (job windows don't move and slot capacity is monotone; see DESIGN.md
   §7c).  So each genuinely exhausted subtree root is recorded as a
   (slot, remaining-demand-vector) nogood, and entry pruning scans the
   slot's chain for a {e dominated} match.  This transfers pruning
   across sibling branches the exact-key table cannot connect, and —
   because chains are associative where the memo is direct-mapped — it
   also retains refutations the memo loses to slot collisions.

   Memory model: remainder vectors live in one {!Prelude.Arena} (flat
   ints, bump-allocated), per-slot chain heads in a
   {!Prelude.Epoch_dict}, per-entry metadata in parallel int arrays.
   Rebinding a pooled engine clears everything in O(1): arena reset +
   dict epoch bump.  The store shares the [--memo-mb] budget with the
   memo (one eighth of the byte budget, see [make_search]); overflowing
   the entry cap triggers deterministic activity-based eviction, never
   unbounded growth.

   Lookup cost is bounded: at most [max_scan] chain entries are
   examined (a longer chain costs missed prunes, never unsoundness),
   each gated by a total-demand quick reject before the pointwise
   compare, and a hit moves its entry to the chain head so hot nogoods
   stay inside the scan window. *)

module Nogood = struct
  type t = {
    jn : int;  (* words per remainder vector *)
    cap_entries : int;  (* eviction threshold from the byte budget *)
    heads : Epoch_dict.t;  (* slot -> head entry id (absent = empty chain) *)
    rems : Arena.t;  (* entry id -> jn words at [off.(id)] *)
    mutable next : int array;  (* chain link, -1 terminates *)
    mutable off : int array;  (* offset of the rem vector in [rems] *)
    mutable time : int array;  (* the slot, for eviction rebuild *)
    mutable total : int array;  (* sum of the rem vector: quick reject *)
    mutable activity : int array;  (* hits since last eviction halving *)
    mutable live : bool array;  (* false once subsumed or evicted *)
    mutable n_entries : int;  (* ids 0 .. n_entries-1 are allocated *)
    mutable hits : int;
    mutable lookups : int;
    mutable stores : int;
    mutable evicted : int;
  }

  (* 6 int-array cells (48 bytes) per entry on top of the 8-byte words
     of its rem vector. *)
  let entry_overhead = 48

  (* Chain-scan bound for both lookup and store-time subsumption. *)
  let max_scan = 32

  (* Only subtrees that cost at least this many nodes are worth a chain
     entry: shallow exhaustions are cheaper to re-derive than to scan
     for, and they would swamp the chains (and churn eviction) —
     measured on the bench's hard instances, 4 keeps the node reduction
     of unconditional recording at roughly half the store traffic. *)
  let min_subtree = 4

  let create ~job_count ~cap_bytes =
    if cap_bytes <= 0 then None
    else begin
      let jn = Int.max 1 job_count in
      let cap_entries = Int.max 32 (cap_bytes / ((8 * jn) + entry_overhead)) in
      let size = Int.min 256 cap_entries in
      Some
        {
          jn;
          cap_entries;
          heads = Epoch_dict.create ();
          rems = Arena.create ~capacity:(size * jn) ();
          next = Array.make size (-1);
          off = Array.make size 0;
          time = Array.make size 0;
          total = Array.make size 0;
          activity = Array.make size 0;
          live = Array.make size false;
          n_entries = 0;
          hits = 0;
          lookups = 0;
          stores = 0;
          evicted = 0;
        }
    end

  (* O(1) wholesale invalidation, mirroring [Memo.reset]: the dict epoch
     bump orphans every chain, the arena rewind reclaims every vector.
     Counters restart with the solve they now describe. *)
  let reset t =
    Epoch_dict.clear t.heads;
    Arena.reset t.rems;
    t.n_entries <- 0;
    t.hits <- 0;
    t.lookups <- 0;
    t.stores <- 0;
    t.evicted <- 0

  (* rem ≥ vector at [off] pointwise? *)
  let dominates t ~off rem =
    let data = Arena.data t.rems in
    let rec go g = g >= t.jn || (Array.unsafe_get rem g >= Array.unsafe_get data (off + g) && go (g + 1)) in
    go 0

  (* vector at [off] ≥ rem pointwise? *)
  let dominated_by t ~off rem =
    let data = Arena.data t.rems in
    let rec go g = g >= t.jn || (Array.unsafe_get data (off + g) >= Array.unsafe_get rem g && go (g + 1)) in
    go 0

  let known_infeasible t ~time:tm ~total rem =
    t.lookups <- t.lookups + 1;
    let head = Epoch_dict.get t.heads ~default:(-1) tm in
    let rec scan prev e steps =
      if e < 0 || steps >= max_scan then false
      else if t.total.(e) <= total && dominates t ~off:t.off.(e) rem then begin
        t.hits <- t.hits + 1;
        t.activity.(e) <- t.activity.(e) + 1;
        (* Move to front so hot nogoods stay inside the scan window. *)
        if prev >= 0 then begin
          t.next.(prev) <- t.next.(e);
          t.next.(e) <- head;
          Epoch_dict.set t.heads tm e
        end;
        true
      end
      else scan e t.next.(e) (steps + 1)
    in
    scan (-1) head 0

  let grow t =
    let size = Int.min t.cap_entries (2 * Array.length t.next) in
    let extend a fill =
      let b = Array.make size fill in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    t.next <- extend t.next (-1);
    t.off <- extend t.off 0;
    t.time <- extend t.time 0;
    t.total <- extend t.total 0;
    t.activity <- extend t.activity 0;
    t.live <- extend t.live false

  (* Deterministic activity-based eviction: keep the most-hit half
     (ties to the older entry), compact the arena in id order, rebuild
     the chains in id order, halve survivor activities so formerly hot
     entries cannot become immortal.  Everything is a pure function of
     the store's state, so reruns evict identically. *)
  let evict t =
    let ids = Array.init t.n_entries Fun.id in
    let alive = Array.of_list (List.filter (fun i -> t.live.(i)) (Array.to_list ids)) in
    Array.sort
      (fun a b ->
        let c = Int.compare t.activity.(b) t.activity.(a) in
        if c <> 0 then c else Int.compare a b)
      alive;
    let keep = Int.min (Array.length alive) (Int.max 16 (t.cap_entries / 2)) in
    t.evicted <- t.evicted + (t.n_entries - keep);
    let kept = Array.sub alive 0 keep in
    Array.sort Int.compare kept;
    let data = Arena.data t.rems in
    Array.iteri
      (fun nid oid ->
        let noff = nid * t.jn in
        Array.blit data t.off.(oid) data noff t.jn;
        t.off.(nid) <- noff;
        t.time.(nid) <- t.time.(oid);
        t.total.(nid) <- t.total.(oid);
        t.activity.(nid) <- t.activity.(oid) lsr 1;
        t.live.(nid) <- true;
        t.next.(nid) <- -1)
      kept;
    t.n_entries <- keep;
    (* Compaction rewound in place: survivors occupy exactly [keep * jn]. *)
    Arena.truncate t.rems (keep * t.jn);
    Epoch_dict.clear t.heads;
    for nid = keep - 1 downto 0 do
      let tm = t.time.(nid) in
      t.next.(nid) <- Epoch_dict.get t.heads ~default:(-1) tm;
      Epoch_dict.set t.heads tm nid
    done

  let store t ~time:tm ~total rem =
    (* Store-time subsumption, bounded like lookups: skip the new nogood
       when a chained one already dominates it, and splice out chained
       ones the new one strictly strengthens. *)
    let head = Epoch_dict.get t.heads ~default:(-1) tm in
    let subsumed = ref false in
    let prev = ref (-1) in
    let e = ref head in
    let steps = ref 0 in
    while (not !subsumed) && !e >= 0 && !steps < max_scan do
      let cur = !e in
      let nxt = t.next.(cur) in
      if t.total.(cur) <= total && dominates t ~off:t.off.(cur) rem then subsumed := true
      else if t.total.(cur) >= total && dominated_by t ~off:t.off.(cur) rem then begin
        (* [cur] is weaker than the new nogood: unlink and mark dead. *)
        if !prev >= 0 then t.next.(!prev) <- nxt else Epoch_dict.set t.heads tm nxt;
        t.live.(cur) <- false;
        e := nxt
      end
      else begin
        prev := cur;
        e := nxt
      end;
      incr steps
    done;
    if not !subsumed then begin
      if t.n_entries >= Array.length t.next then
        if t.n_entries >= t.cap_entries then evict t else grow t;
      let id = t.n_entries in
      t.n_entries <- id + 1;
      let off = Arena.alloc t.rems t.jn in
      let data = Arena.data t.rems in
      Array.blit rem 0 data off t.jn;
      t.off.(id) <- off;
      t.time.(id) <- tm;
      t.total.(id) <- total;
      t.activity.(id) <- 0;
      t.live.(id) <- true;
      t.next.(id) <- Epoch_dict.get t.heads ~default:(-1) tm;
      Epoch_dict.set t.heads tm id;
      t.stores <- t.stores + 1
    end
end

(* ------------------------------------------------------------------ *)
(* Shared read-only context: everything derivable from the instance
   alone, built once and shared by every subtree worker. *)

type ctx = {
  jm : Jobmap.t;
  m : int;
  horizon : int;
  n : int;
  by_rank : int array;  (* rank -> task id (heuristic order) *)
  rank_of : int array;  (* task id -> rank *)
  deadline : int array;
  wcet : int array;
  job_wcet : int array;  (* per global job *)
  domains : Analysis.Domains.t option;
  usable_after : int array array;  (* as in Solver: only with domains *)
  elig : Ibits.t array;  (* per slot, rank space: in-window and unblocked *)
  elig_built : bool array;  (* lazy build; forced before going parallel *)
  zob_off : int array;  (* per global job: offset into [zob_data] *)
  zob_data : int array;  (* flat Zobrist keys: [zob_off.(g) + c] tags rem.(g) = c *)
}

(* Identical to Solver.remaining_slots / Solver.build_usable_after; kept
   local so the two engines stay independently evolvable. *)
let remaining_slots cx ~task ~k ~t =
  let release = Jobmap.release cx.jm ~task ~k in
  let last = release + cx.deadline.(task) - 1 in
  if last < cx.horizon then last - t + 1
  else begin
    let head_end = last - cx.horizon in
    if t <= head_end then head_end - t + 1 + (cx.horizon - release) else cx.horizon - t
  end

let build_usable_after jm deadline domains =
  let horizon = Jobmap.horizon jm in
  let n = Array.length deadline in
  let ua = Array.make_matrix n horizon 0 in
  for i = 0 to n - 1 do
    for k = 0 to Jobmap.jobs_of_task jm i - 1 do
      let release = Jobmap.release jm ~task:i ~k in
      let slots =
        List.init deadline.(i) (fun d -> (release + d) mod horizon)
        |> List.sort_uniq Int.compare
      in
      let acc = ref 0 in
      List.iter
        (fun t ->
          if not (Analysis.Domains.is_blocked domains ~task:i ~time:t) then incr acc;
          ua.(i).(t) <- !acc)
        (List.rev slots)
    done
  done;
  ua

(* Per-domain context scratch: the eligibility bitsets and the Zobrist
   table are the two allocations [make_ctx] pays per solve, and both are
   pure functions of the instance — so a batch campaign rebuilds their
   {e contents} but can reuse their {e storage}.  The Zobrist keys live
   in a [Prelude.Arena] (reset per solve, O(1)); the bitset array is
   kept as long as the task count matches exactly (word counts must
   agree) and the horizon fits.  A context built from scratch storage is
   only ever consumed by solves issued from this domain before the next
   [make_ctx] here, which is exactly the lifetime of a solve: the
   parallel phase shares the context with pooled workers, but
   [Pool.run] joins them before the caller can rebuild. *)
type ctx_scratch = {
  mutable sc_n : int;  (* task count the cached bitsets were sized for *)
  mutable sc_elig : Ibits.t array;
  mutable sc_elig_built : bool array;
  sc_zob : Arena.t;
  mutable sc_zob_off : int array;
}

let ctx_scratch_slot : ctx_scratch Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        sc_n = -1;
        sc_elig = [||];
        sc_elig_built = [||];
        sc_zob = Arena.create ();
        sc_zob_off = [||];
      })

let make_ctx ~heuristic ?domains ts ~m =
  if m < 1 then invalid_arg "Csp2.Opt.solve: m must be >= 1";
  let jm = Jobmap.create ts in
  let n = Taskset.size ts in
  let horizon = Jobmap.horizon jm in
  (match domains with
  | Some d when not (Analysis.Domains.matches d ~n ~m ~horizon) ->
    invalid_arg "Csp2.Opt.solve: domains derived for a different instance"
  | _ -> ());
  let wcet = Array.init n (fun i -> (Taskset.task ts i).wcet) in
  let deadline = Array.init n (fun i -> (Taskset.task ts i).deadline) in
  let jn = Jobmap.job_count jm in
  let job_wcet = Array.make jn 0 in
  for i = 0 to n - 1 do
    let base = Jobmap.first_of_task jm i in
    for k = 0 to Jobmap.jobs_of_task jm i - 1 do
      job_wcet.(base + k) <- wcet.(i)
    done
  done;
  let sc = Domain.DLS.get ctx_scratch_slot in
  if sc.sc_n <> n || Array.length sc.sc_elig < horizon then begin
    sc.sc_n <- n;
    sc.sc_elig <- Array.init horizon (fun _ -> Ibits.create n);
    sc.sc_elig_built <- Array.make horizon false
  end
  else Array.fill sc.sc_elig_built 0 horizon false;
  (* Fixed seed: equal instances hash identically run to run, so node and
     memo counters stay reproducible — and independently of scratch
     reuse, since the keys are fully rewritten below. *)
  let rng = Prng.create ~seed:0x2545F49 in
  Arena.reset sc.sc_zob;
  if Array.length sc.sc_zob_off <> jn then sc.sc_zob_off <- Array.make jn 0;
  for g = 0 to jn - 1 do
    let off = Arena.alloc sc.sc_zob (job_wcet.(g) + 1) in
    sc.sc_zob_off.(g) <- off;
    for c = 0 to job_wcet.(g) do
      Arena.set sc.sc_zob (off + c) (Int64.to_int (Prng.bits64 rng) land max_int)
    done
  done;
  {
    jm;
    m;
    horizon;
    n;
    by_rank = Heuristic.order heuristic ts;
    rank_of = Heuristic.rank heuristic ts;
    deadline;
    wcet;
    job_wcet;
    domains;
    usable_after =
      (match domains with Some d -> build_usable_after jm deadline d | None -> [||]);
    elig = sc.sc_elig;
    elig_built = sc.sc_elig_built;
    zob_off = sc.sc_zob_off;
    zob_data = Arena.data sc.sc_zob;
  }

let build_elig cx t =
  let set = cx.elig.(t) in
  Ibits.clear set;
  for i = 0 to cx.n - 1 do
    if Jobmap.local_job_at cx.jm ~task:i ~time:t >= 0 then begin
      let blocked =
        match cx.domains with
        | None -> false
        | Some d -> Analysis.Domains.is_blocked d ~task:i ~time:t
      in
      if not blocked then Ibits.set set cx.rank_of.(i)
    end
  done;
  cx.elig_built.(t) <- true

(* The lazy build mutates shared arrays, so the parallel phase forces
   every slot it can reach up front: concurrent lazy builds of one slot
   would race on the word-level read-modify-writes. *)
let force_elig cx ~from =
  for t = from to cx.horizon - 1 do
    if not cx.elig_built.(t) then build_elig cx t
  done

let init_hash cx =
  let h = ref 0 in
  Array.iteri (fun g c -> h := !h lxor cx.zob_data.(cx.zob_off.(g) + c)) cx.job_wcet;
  !h

(* ------------------------------------------------------------------ *)
(* Per-engine mutable state.  All per-slot buffers are preallocated and
   reused: a search node allocates nothing.  Engines themselves are
   pooled per domain (see [acquire]) so back-to-back solves reuse the
   frames, the rem buffer and the — epoch-invalidated — memo table. *)

type frame = {
  mutable time : int;
  applied : int array;  (* task ids scheduled at this slot *)
  mutable applied_n : int;
  free : int array;  (* available, non-urgent task ids in rank order *)
  mutable free_n : int;
  urgent : int array;
  mutable urgent_n : int;
  combo : int array;  (* cursor into [free]; first [combo_k] cells live *)
  mutable combo_k : int;
  mutable fresh : bool;
  mutable entry_nodes : int;  (* engine node count at frame activation *)
}

let new_frame n =
  {
    time = 0;
    applied = Array.make (Int.max 1 n) 0;
    applied_n = 0;
    free = Array.make (Int.max 1 n) 0;
    free_n = 0;
    urgent = Array.make (Int.max 1 n) 0;
    urgent_n = 0;
    combo = Array.make (Int.max 1 n) 0;
    combo_k = 0;
    fresh = true;
    entry_nodes = 0;
  }

let reset_frame f time ~nodes =
  f.time <- time;
  f.applied_n <- 0;
  f.combo_k <- 0;
  f.fresh <- true;
  f.entry_nodes <- nodes

type search = {
  mutable cx : ctx;
  mutable rem : int array;  (* per global job: units still owed *)
  mutable total_rem : int;
  mutable hash : int;  (* Zobrist hash of [rem], maintained incrementally *)
  mutable memo : Memo.t option;
  mutable nogood : Nogood.t option;
  mutable nogoods_on : bool;  (* gates nogood lookups and stores *)
  mutable memo_cap_mb : int;  (* the cap memo + nogood were created under *)
  mutable memo_store : bool;  (* stores gated off during frontier expansion *)
  mutable budget : Timer.budget;
  mutable frames : frame array;
  mutable frame_cap : int;  (* task capacity of each frame's buffers *)
  mutable in_use : bool;
  mutable nodes : int;
  mutable fails : int;
  mutable max_time : int;
}

(* One [--memo-mb] budget covers both tables: the nogood store takes an
   eighth of the bytes (its associative chains prune more per byte, but
   the direct-mapped memo answers in one probe and should stay large),
   the memo the rest.  [memo_mb <= 0] disables both.  The split does NOT
   depend on the [nogoods] flag: toggling learning off merely gates use
   of the store, so a pooled engine alternating between on and off
   solves (the bench ablation does exactly that) keeps both tables'
   storage instead of reallocating the memo at a different size on
   every rebind — and the ablation compares equal memo capacities. *)
let split_budget ~memo_mb =
  let total = memo_mb * 1024 * 1024 in
  let ng = total / 8 in
  (total - ng, ng)

let make_search cx ~budget ~memo_mb ~nogoods =
  let rem = Array.copy cx.job_wcet in
  let total_rem = Array.fold_left ( + ) 0 rem in
  let max_rem = Array.fold_left Int.max 0 cx.wcet in
  let memo_bytes, ng_bytes = split_budget ~memo_mb in
  {
    cx;
    rem;
    total_rem;
    hash = init_hash cx;
    memo = Memo.create ~job_count:(Array.length rem) ~max_rem ~cap_bytes:memo_bytes;
    nogood = Nogood.create ~job_count:(Array.length rem) ~cap_bytes:ng_bytes;
    nogoods_on = nogoods;
    memo_cap_mb = memo_mb;
    memo_store = true;
    budget;
    frames = Array.init (cx.horizon + 1) (fun _ -> new_frame cx.n);
    frame_cap = Int.max 1 cx.n;
    in_use = false;
    nodes = 0;
    fails = 0;
    max_time = 0;
  }

(* Rebind a cached engine to a (possibly different) instance: reuse every
   buffer that still fits, bump the memo epoch instead of freeing the
   table, and zero the per-solve counters. *)
let rebind s cx ~budget ~memo_mb ~nogoods =
  let jn = Array.length cx.job_wcet in
  if Array.length s.rem <> jn then s.rem <- Array.copy cx.job_wcet
  else Array.blit cx.job_wcet 0 s.rem 0 jn;
  s.total_rem <- Array.fold_left ( + ) 0 s.rem;
  s.hash <- init_hash cx;
  let n = Int.max 1 cx.n in
  if Array.length s.frames < cx.horizon + 1 || s.frame_cap < n then begin
    let cap = Int.max s.frame_cap n in
    s.frames <-
      Array.init (Int.max (Array.length s.frames) (cx.horizon + 1)) (fun _ -> new_frame cap);
    s.frame_cap <- cap
  end;
  let max_rem = Array.fold_left Int.max 0 cx.wcet in
  let wide = max_rem > 0xFF in
  let key_len = Int.max 1 (jn * if wide then 2 else 1) in
  let memo_bytes, ng_bytes = split_budget ~memo_mb in
  (match s.memo with
  | Some m
    when memo_mb = s.memo_cap_mb && memo_mb > 0 && max_rem <= 0xFFFF
         && m.Memo.key_len = key_len && m.Memo.wide = wide ->
    Memo.reset m
  | _ -> s.memo <- Memo.create ~job_count:jn ~max_rem ~cap_bytes:memo_bytes);
  (match s.nogood with
  | Some ng when memo_mb = s.memo_cap_mb && ng.Nogood.jn = Int.max 1 jn ->
    Nogood.reset ng
  | _ -> s.nogood <- Nogood.create ~job_count:jn ~cap_bytes:ng_bytes);
  s.nogoods_on <- nogoods;
  s.memo_cap_mb <- memo_mb;
  s.memo_store <- true;
  s.budget <- budget;
  s.cx <- cx;
  s.nodes <- 0;
  s.fails <- 0;
  s.max_time <- 0

(* One cached engine per domain.  The cache survives across solves —
   that is the point — so acquisition marks it busy and a nested acquire
   (never taken on purpose, but cheap to keep correct) falls back to a
   fresh transient engine. *)
let engine_slot : search option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let acquire cx ~budget ~memo_mb ~nogoods =
  let cell = Domain.DLS.get engine_slot in
  match !cell with
  | Some s when not s.in_use ->
    s.in_use <- true;
    rebind s cx ~budget ~memo_mb ~nogoods;
    s
  | cached ->
    let s = make_search cx ~budget ~memo_mb ~nogoods in
    s.in_use <- true;
    (match cached with None -> cell := Some s | Some _ -> ());
    s

let release s = s.in_use <- false

(* Drop this domain's warm engine and context scratch, so the next solve
   here pays the full allocation cost.  Pooled worker domains keep their
   own caches — this only affects the calling domain, which is exactly
   what the batch-reuse bench needs: its sequential solves all run on
   the caller, so fresh-vs-reuse is an honest comparison there. *)
let reset_caches () =
  Domain.DLS.get engine_slot := None;
  Domain.DLS.set ctx_scratch_slot
    {
      sc_n = -1;
      sc_elig = [||];
      sc_elig_built = [||];
      sc_zob = Arena.create ();
      sc_zob_off = [||];
    }

let undo s f =
  if f.applied_n > 0 then begin
    for idx = 0 to f.applied_n - 1 do
      let i = f.applied.(idx) in
      let g = Jobmap.global_job_at s.cx.jm ~task:i ~time:f.time in
      let c = s.rem.(g) in
      let zo = s.cx.zob_off.(g) in
      s.rem.(g) <- c + 1;
      s.hash <- s.hash lxor s.cx.zob_data.(zo + c) lxor s.cx.zob_data.(zo + c + 1);
      s.total_rem <- s.total_rem + 1
    done;
    f.applied_n <- 0
  end

let apply_task s f i =
  let g = Jobmap.global_job_at s.cx.jm ~task:i ~time:f.time in
  let c = s.rem.(g) in
  let zo = s.cx.zob_off.(g) in
  s.rem.(g) <- c - 1;
  s.hash <- s.hash lxor s.cx.zob_data.(zo + c) lxor s.cx.zob_data.(zo + c - 1);
  s.total_rem <- s.total_rem - 1;
  f.applied.(f.applied_n) <- i;
  f.applied_n <- f.applied_n + 1

(* Entry checks for a state visited for the first time at this frame
   activation.  All are functions of (t, rem) only, so pruning here can
   only shed states with no feasible completion:
   - aggregate capacity: the work still owed must fit in m units per
     remaining slot (urgency propagation guarantees every unfinished job's
     window is still open, so all of [total_rem] competes for them);
   - the transposition table: the state was exhaustively refuted before;
   - the dominance-nogood store (see the Nogood module above).
   A per-deadline demand bound (the EDF processor-demand criterion per
   slot) was prototyped here and measured: urgency propagation plus the
   aggregate check subsumed every prune it found on both the Table I
   regime and a small-m/long-horizon stream, while its scan cost 4x on
   the raw node rate — so it was dropped rather than windowed. *)
let prune_entry s t =
  if s.total_rem > s.cx.m * (s.cx.horizon - t) then true
  else if
    match s.memo with
    | Some memo -> Memo.known_infeasible memo ~time:t ~hash:s.hash s.rem
    | None -> false
  then true
  else
    match s.nogood with
    | Some ng when s.nogoods_on ->
      Nogood.known_infeasible ng ~time:t ~total:s.total_rem s.rem
    | _ -> false

(* Availability in heuristic (= rank) order, straight off the packed
   eligibility word for the slot: blocked and out-of-window tasks never
   enter the loop, and the free/urgent split lands in reused buffers. *)
let classify s f t =
  f.free_n <- 0;
  f.urgent_n <- 0;
  if not s.cx.elig_built.(t) then build_elig s.cx t;
  let words = (s.cx.elig.(t) :> int array) in
  for w = 0 to Array.length words - 1 do
    let bits = ref words.(w) in
    let base = w lsl 5 in
    while !bits <> 0 do
      let r = base + Ibits.lowest_bit_index !bits in
      bits := !bits land (!bits - 1);
      let i = s.cx.by_rank.(r) in
      let k = Jobmap.local_job_at s.cx.jm ~task:i ~time:t in
      let g = Jobmap.first_of_task s.cx.jm i + k in
      if s.rem.(g) > 0 then begin
        let slots_left =
          match s.cx.domains with
          | None -> remaining_slots s.cx ~task:i ~k ~t
          | Some _ -> s.cx.usable_after.(i).(t)
        in
        assert (s.rem.(g) <= slots_left);
        if s.rem.(g) = slots_left then begin
          f.urgent.(f.urgent_n) <- i;
          f.urgent_n <- f.urgent_n + 1
        end
        else begin
          f.free.(f.free_n) <- i;
          f.free_n <- f.free_n + 1
        end
      end
    done
  done

type step = Applied | Exhausted | Stopped

let advance s f =
  let t = f.time in
  undo s f;
  if f.fresh && prune_entry s t then begin
    f.fresh <- false;
    s.fails <- s.fails + 1;
    Exhausted
  end
  else begin
    classify s f t;
    let q = Int.min s.cx.m (f.urgent_n + f.free_n) in
    if f.urgent_n > q then begin
      (* Urgency overload: no subset of this slot can work.  Cheap to
         rediscover (O(n), no search below), so not worth a memo entry. *)
      s.fails <- s.fails + 1;
      Exhausted
    end
    else begin
      let k = q - f.urgent_n in
      let next_ok =
        if f.fresh then begin
          for j = 0 to k - 1 do
            f.combo.(j) <- j
          done;
          f.combo_k <- k;
          f.fresh <- false;
          true
        end
        else f.combo_k > 0 && Combi.next_k ~n:f.free_n ~k:f.combo_k f.combo
      in
      if not next_ok then begin
        s.fails <- s.fails + 1;
        (* Every subset of this state was tried and every subtree failed
           through normal backtracking (a budget stop aborts the whole
           loop before reaching here), so (t, rem) is proven infeasible:
           record it.  [undo] above restored rem/hash to the entry state.
           Stores are gated off while a worker merely *enumerates* a
           slot's children for the work deque — exhausting a truncated
           sweep proves nothing about the full subtree. *)
        if s.memo_store then begin
          (match s.memo with
          | Some memo -> Memo.store memo ~time:t ~hash:s.hash s.rem
          | None -> ());
          (* The same exhaustion proof, generalized: record (t, rem) as a
             dominance nogood — but only when the refuted subtree cost
             enough nodes that scanning a chain for it can ever pay. *)
          match s.nogood with
          | Some ng when s.nogoods_on && s.nodes - f.entry_nodes >= Nogood.min_subtree ->
            Nogood.store ng ~time:t ~total:s.total_rem s.rem
          | _ -> ()
        end;
        Exhausted
      end
      else begin
        for j = 0 to f.urgent_n - 1 do
          apply_task s f f.urgent.(j)
        done;
        for j = 0 to f.combo_k - 1 do
          apply_task s f f.free.(f.combo.(j))
        done;
        s.nodes <- s.nodes + 1;
        if
          Timer.cancelled s.budget
          || (s.nodes land 255 = 0 && Timer.exceeded s.budget ~nodes:s.nodes)
        then begin
          undo s f;
          Stopped
        end
        else Applied
      end
    end
  end

type run_result = R_feasible | R_exhausted | R_stopped

(* Chronological loop over slots [start, stop_time).  [stop_time =
   horizon] decides the subtree: [R_feasible] leaves the assignment in
   the frames.  With [stop_time < horizon] the loop enumerates surviving
   prefixes instead: [on_frontier] fires for each, the prefix is then
   abandoned and the sweep continues with its next sibling — memo stores
   must be off in that mode (an ancestor exhausted by truncated subtrees
   is not refuted; lookups remain sound either way). *)
let search_loop s ~start ~stop_time ~on_frontier =
  assert (stop_time = s.cx.horizon || not s.memo_store);
  let depth = ref 1 in
  reset_frame s.frames.(0) start ~nodes:s.nodes;
  let result = ref None in
  while !result = None do
    if !depth = 0 then result := Some R_exhausted
    else if
      (if s.nodes land 255 = 0 then begin
         Resilience.Failpoint.hit "csp2opt.node";
         Telemetry.heartbeat ~name:"csp2-opt" ~nodes:s.nodes ~fails:s.fails ~depth:s.max_time;
         (* Memo hit-rate sample, an order of magnitude sparser than the
            heartbeat checkpoints so a fast search cannot flood the ring. *)
         match s.memo with
         | Some memo when s.nodes land 65535 = 0 && Telemetry.enabled () ->
           Telemetry.counter "csp2-opt.memo-hits" memo.Memo.hits;
           Telemetry.counter "csp2-opt.memo-lookups" memo.Memo.lookups
         | _ -> ()
       end;
       Timer.nodes_exceeded s.budget ~nodes:s.nodes
       || Timer.cancelled s.budget
       || (s.nodes land 255 = 0 && Timer.exceeded s.budget ~nodes:s.nodes))
    then result := Some R_stopped
    else begin
      let f = s.frames.(!depth - 1) in
      match advance s f with
      | Exhausted -> decr depth
      | Stopped -> result := Some R_stopped
      | Applied ->
        if f.time > s.max_time then s.max_time <- f.time;
        if f.time + 1 = stop_time then begin
          if stop_time = s.cx.horizon then result := Some R_feasible else on_frontier !depth
        end
        else begin
          reset_frame s.frames.(!depth) (f.time + 1) ~nodes:s.nodes;
          incr depth
        end
    end
  done;
  (match !result with Some r -> r | None -> assert false)

let no_frontier _ = assert false

(* Symmetry rule (10): idle processors first, then tasks ascending. *)
let place sched ~m ~time ids count =
  let ids = Array.sub ids 0 count in
  Array.sort Int.compare ids;
  Array.iteri (fun pos i -> Schedule.set sched ~proc:(m - count + pos) ~time i) ids

let build_schedule s ~prefix ~depth =
  let sched = Schedule.create ~m:s.cx.m ~horizon:s.cx.horizon in
  Array.iteri (fun t ids -> place sched ~m:s.cx.m ~time:t ids (Array.length ids)) prefix;
  for d = 0 to depth - 1 do
    let f = s.frames.(d) in
    place sched ~m:s.cx.m ~time:f.time f.applied f.applied_n
  done;
  sched

(* A per-engine counter snapshot: engines outlive solves (they are
   pooled), so stats are assembled from copies taken while the engine is
   still bound to this solve. *)
type slice = {
  sl_nodes : int;
  sl_fails : int;
  sl_hits : int;
  sl_lookups : int;
  sl_stores : int;
  sl_ng_hits : int;
  sl_ng_lookups : int;
  sl_ng_stores : int;
  sl_ng_evicted : int;
  sl_max_time : int;
}

let slice_of s =
  let hits, lookups, stores =
    match s.memo with
    | None -> (0, 0, 0)
    | Some m -> (m.Memo.hits, m.Memo.lookups, m.Memo.stores)
  in
  let ng_hits, ng_lookups, ng_stores, ng_evicted =
    match s.nogood with
    | None -> (0, 0, 0, 0)
    | Some ng -> (ng.Nogood.hits, ng.Nogood.lookups, ng.Nogood.stores, ng.Nogood.evicted)
  in
  {
    sl_nodes = s.nodes;
    sl_fails = s.fails;
    sl_hits = hits;
    sl_lookups = lookups;
    sl_stores = stores;
    sl_ng_hits = ng_hits;
    sl_ng_lookups = ng_lookups;
    sl_ng_stores = ng_stores;
    sl_ng_evicted = ng_evicted;
    sl_max_time = s.max_time;
  }

let stats_of ?(subtrees = 0) ?(pulls = 0) ?(steals = 0) ?(parks = 0) slices ~t0 =
  let nodes = ref 0
  and fails = ref 0
  and hits = ref 0
  and lookups = ref 0
  and stores = ref 0
  and ng_hits = ref 0
  and ng_lookups = ref 0
  and ng_stores = ref 0
  and ng_evicted = ref 0
  and max_time = ref 0 in
  List.iter
    (fun sl ->
      nodes := !nodes + sl.sl_nodes;
      fails := !fails + sl.sl_fails;
      hits := !hits + sl.sl_hits;
      lookups := !lookups + sl.sl_lookups;
      stores := !stores + sl.sl_stores;
      ng_hits := !ng_hits + sl.sl_ng_hits;
      ng_lookups := !ng_lookups + sl.sl_ng_lookups;
      ng_stores := !ng_stores + sl.sl_ng_stores;
      ng_evicted := !ng_evicted + sl.sl_ng_evicted;
      if sl.sl_max_time > !max_time then max_time := sl.sl_max_time)
    slices;
  {
    nodes = !nodes;
    fails = !fails;
    memo_hits = !hits;
    memo_misses = !lookups - !hits;
    memo_stores = !stores;
    nogood_hits = !ng_hits;
    nogood_misses = !ng_lookups - !ng_hits;
    nogood_stores = !ng_stores;
    nogood_evicted = !ng_evicted;
    subtrees;
    pulls;
    steals;
    parks;
    max_time_reached = !max_time;
    time_s = Timer.elapsed t0;
  }

let to_stats ~backend (st : stats) =
  Telemetry.Stats.make ~backend ~nodes:st.nodes ~fails:st.fails ~depth:st.max_time_reached
    ~memo_hits:st.memo_hits ~memo_misses:st.memo_misses ~memo_stores:st.memo_stores
    ~nogood_hits:st.nogood_hits ~nogood_misses:st.nogood_misses
    ~nogood_stores:st.nogood_stores ~subtrees:st.subtrees ~pulls:st.pulls ~steals:st.steals
    ~parks:st.parks ~time_s:st.time_s ()

(* ------------------------------------------------------------------ *)
(* Phase-0 probe: a static node-count estimate.

   Branching at slot [t] is at most C(|elig(t)|, min m |elig(t)|); the
   product over the horizon (saturating, pruned domains already folded
   into [elig]) bounds the tree size of the *unpruned* search.  When even
   that bound is small, parallel setup can never pay for itself and the
   solve stays on the sequential path.  The estimate errs on the large
   side (it ignores urgency propagation, the capacity bound and the
   memo), so the follow-up bounded sequential burst — not this number —
   is what keeps moderately sized instances sequential. *)

let est_saturated = 1 lsl 40

let choose_sat n k =
  let k = Int.min k (n - k) in
  if k <= 0 then 1
  else begin
    let acc = ref 1 in
    (try
       for i = 1 to k do
         acc := !acc * (n - k + i) / i;
         if !acc >= est_saturated then raise Exit
       done
     with Exit -> acc := est_saturated);
    !acc
  end

let estimate_nodes cx =
  let est = ref 1 in
  (try
     for t = 0 to cx.horizon - 1 do
       if not cx.elig_built.(t) then build_elig cx t;
       let e = Ibits.popcount cx.elig.(t) in
       let b = choose_sat e (Int.min cx.m e) in
       est := !est * Int.max 1 b;
       if !est >= est_saturated then raise Exit
     done
   with Exit -> est := est_saturated);
  !est

(* ------------------------------------------------------------------ *)
(* Entry points. *)

let run_sequential s =
  match search_loop s ~start:0 ~stop_time:s.cx.horizon ~on_frontier:no_frontier with
  | R_feasible -> Encodings.Outcome.Feasible (build_schedule s ~prefix:[||] ~depth:s.cx.horizon)
  | R_exhausted -> Encodings.Outcome.Infeasible
  | R_stopped -> Encodings.Outcome.Limit

let solve ?(heuristic = Heuristic.DC) ?(budget = Timer.unlimited) ?domains
    ?(memo_mb = default_memo_mb) ?(nogoods = true) ts ~m =
  let t0 = Timer.start () in
  let cx = make_ctx ~heuristic ?domains ts ~m in
  let s = acquire cx ~budget ~memo_mb ~nogoods in
  Fun.protect ~finally:(fun () -> release s) @@ fun () ->
  let outcome = run_sequential s in
  (outcome, stats_of [ slice_of s ] ~t0)

(* A unit of parallel work: the search state at the root of an
   unexplored subtree, plus the concrete slot assignments above it (for
   rebuilding a witness schedule). *)
type work_item = {
  w_time : int;  (* next slot to decide; < horizon by construction *)
  w_rem : int array;
  w_hash : int;
  w_total : int;
  w_prefix : int array array;  (* per slot 0 .. w_time-1: applied task ids *)
}

let load_item s it =
  Array.blit it.w_rem 0 s.rem 0 (Array.length s.rem);
  s.hash <- it.w_hash;
  s.total_rem <- it.w_total

let solve_parallel ?(heuristic = Heuristic.DC) ?(budget = Timer.unlimited) ?domains
    ?(memo_mb = default_memo_mb) ?(nogoods = true) ?jobs ?split_depth
    ?(probe_nodes = default_probe_nodes) ts ~m =
  let t0 = Timer.start () in
  let cx = make_ctx ~heuristic ?domains ts ~m in
  let jobs =
    match jobs with Some j -> Int.max 1 j | None -> Parallel.recommended_jobs ()
  in
  let split =
    let d = match split_depth with Some d -> d | None -> 2 in
    Intmath.clamp ~lo:0 ~hi:(cx.horizon - 1) d
  in
  let sequential () =
    let s = acquire cx ~budget ~memo_mb ~nogoods in
    Fun.protect ~finally:(fun () -> release s) @@ fun () ->
    let outcome = run_sequential s in
    (outcome, stats_of [ slice_of s ] ~t0)
  in
  if jobs <= 1 || split = 0 then sequential ()
  else if probe_nodes > 0 && estimate_nodes cx <= probe_nodes then
    (* The whole tree is provably smaller than one probe burst: domain
       coordination can only add overhead. *)
    sequential ()
  else begin
    let workers = jobs in
    let per_worker_mb = Int.max 1 (memo_mb / workers) in
    let s0 = acquire cx ~budget ~memo_mb:per_worker_mb ~nogoods in
    Fun.protect ~finally:(fun () -> release s0) @@ fun () ->
    (* Phase 0b: a bounded sequential burst.  The Table I population is
       dominated by instances a warm engine decides in a few hundred
       nodes; they must never pay for work distribution.  Node caps are
       exact and deterministic where wall clocks are not, and the burst's
       memo entries stay valid for worker 0's parallel phase, so at most
       [probe_nodes] of exploration is duplicated across workers. *)
    let probe_result =
      if probe_nodes <= 0 then R_stopped
      else begin
        let caller = s0.budget in
        s0.budget <-
          (match Timer.remaining_wall budget with
          | None -> Timer.sub ~nodes:probe_nodes budget
          | Some w -> Timer.sub ~wall_s:w ~nodes:probe_nodes budget);
        let r = search_loop s0 ~start:0 ~stop_time:cx.horizon ~on_frontier:no_frontier in
        s0.budget <- caller;
        r
      end
    in
    match probe_result with
    | R_feasible ->
      ( Encodings.Outcome.Feasible (build_schedule s0 ~prefix:[||] ~depth:cx.horizon),
        stats_of [ slice_of s0 ] ~t0 )
    | R_exhausted -> (Encodings.Outcome.Infeasible, stats_of [ slice_of s0 ] ~t0)
    | R_stopped
      when probe_nodes > 0
           && (Timer.cancelled budget || Timer.exceeded budget ~nodes:s0.nodes) ->
      (* The caller's own budget — not the probe cap — ran out. *)
      (Encodings.Outcome.Limit, stats_of [ slice_of s0 ] ~t0)
    | R_stopped ->
      (* Phase 1: depth-adaptive lazy splitting over work-stealing
         deques.  Every worker owns a deque; expanding an item pushes its
         children (the surviving assignments of one slot) onto the
         owner's deque, where idle workers steal them.  Splitting is
         adaptive: a worker only expands (rather than deep-solves) an
         item while it is shallow or the worker's own deque has run dry,
         so skewed subtrees keep shedding work exactly when someone needs
         it. *)
      force_elig cx ~from:0;
      let hard_split = Intmath.clamp ~lo:split ~hi:(cx.horizon - 1) (split + 4) in
      (* The stop/winner pair is a [Prelude.Race]: the first worker to
         find a schedule claims it (one CAS), raises the shared stop
         flag, and — being the unique claimant — writes [solution] as
         its sole writer. *)
      let race = Race.create () in
      let worker_budget = Timer.with_stop budget (Race.flag race) in
      s0.budget <- worker_budget;
      let solution : Schedule.t option Atomic.t = Atomic.make None in
      (* Items not yet fully processed; [Infeasible] requires it to reach
         zero with nobody limited.  Incremented for every child *before*
         the parent is retired, so it can never transiently hit zero
         while work is still outstanding. *)
      let pending = Atomic.make 1 in
      let deques = Array.init workers (fun _ -> Deque.create ()) in
      Deque.push deques.(0)
        {
          w_time = 0;
          w_rem = Array.copy cx.job_wcet;
          w_hash = init_hash cx;
          w_total = Array.fold_left ( + ) 0 cx.job_wcet;
          w_prefix = [||];
        };
      let limited = Array.make workers false in
      let pulls = Array.make workers 0 in
      let steals = Array.make workers 0 in
      let parks = Array.make workers 0 in
      let subtrees = Array.make workers 0 in
      let slices = Array.make workers None in
      let worker wid =
        let s =
          if wid = 0 then s0
          else acquire cx ~budget:worker_budget ~memo_mb:per_worker_mb ~nogoods
        in
        let my = deques.(wid) in
        let rng = Prng.create ~seed:(0x51ED2701 + (wid * 7919)) in
        let running = ref true in
        let process it =
          if
            it.w_time < hard_split
            && (it.w_time < split || Deque.size my = 0)
          then begin
            (* Expand: enumerate the surviving assignments of slot
               [w_time] and push each as a child item.  Memo stores off —
               the sweep truncates every child at depth one — but lookups
               stay on, so a state already refuted by any worker expands
               to nothing. *)
            load_item s it;
            let children = ref [] in
            let nchildren = ref 0 in
            let capture _depth =
              let f = s.frames.(0) in
              children :=
                {
                  w_time = it.w_time + 1;
                  w_rem = Array.copy s.rem;
                  w_hash = s.hash;
                  w_total = s.total_rem;
                  w_prefix =
                    Array.append it.w_prefix [| Array.sub f.applied 0 f.applied_n |];
                }
                :: !children;
              incr nchildren
            in
            s.memo_store <- false;
            let r =
              search_loop s ~start:it.w_time ~stop_time:(it.w_time + 1)
                ~on_frontier:capture
            in
            s.memo_store <- true;
            (match r with
            | R_exhausted ->
              if !nchildren > 0 then begin
                ignore (Atomic.fetch_and_add pending !nchildren);
                (* [children] holds the last-enumerated child first, so
                   this pushes in reverse order: the owner pops the
                   heuristically best child next (depth-first, like the
                   sequential engine) while thieves steal the tail. *)
                List.iter (Deque.push my) !children
              end
            | R_stopped ->
              (limited.(wid) <- true) [@lint.racy_ok "per-worker slot, read after join"];
              running := false
            | R_feasible -> assert false (* stop_time < horizon *));
            ignore (Atomic.fetch_and_add pending (-1))
          end
          else begin
            (subtrees.(wid) <- subtrees.(wid) + 1) [@lint.racy_ok "per-worker slot, read after join"];
            load_item s it;
            (match
               search_loop s ~start:it.w_time ~stop_time:cx.horizon
                 ~on_frontier:no_frontier
             with
            | R_feasible ->
              let sched =
                build_schedule s ~prefix:it.w_prefix ~depth:(cx.horizon - it.w_time)
              in
              if Race.claim race wid then Atomic.set solution (Some sched);
              running := false
            | R_exhausted -> ()
            | R_stopped ->
              (limited.(wid) <- true) [@lint.racy_ok "per-worker slot, read after join"];
              running := false);
            ignore (Atomic.fetch_and_add pending (-1))
          end
        in
        let backoff = ref 0 in
        Fun.protect
          ~finally:(fun () ->
            (slices.(wid) <- Some (slice_of s)) [@lint.racy_ok "per-worker slot, read after join"];
            if wid <> 0 then release s)
        @@ fun () ->
        try
          while !running do
            if Race.stopped race || Timer.cancelled worker_budget then running := false
            else
              match Deque.pop my with
              | Some it ->
                backoff := 0;
                (pulls.(wid) <- pulls.(wid) + 1) [@lint.racy_ok "per-worker slot, read after join"];
                process it
              | None ->
                if Atomic.get pending = 0 then running := false
                else begin
                  Resilience.Failpoint.hit "csp2opt.steal";
                  let victim =
                    let v = Prng.int rng (workers - 1) in
                    if v >= wid then v + 1 else v
                  in
                  match Deque.steal deques.(victim) with
                  | Some it ->
                    backoff := 0;
                    (steals.(wid) <- steals.(wid) + 1)
                    [@lint.racy_ok "per-worker slot, read after join"];
                    if Telemetry.enabled () then
                      Telemetry.instant "csp2-opt.steal"
                        ~args:
                          [
                            ("thief", string_of_int wid); ("victim", string_of_int victim);
                          ];
                    process it
                  | None ->
                    incr backoff;
                    if !backoff >= 2 * workers then begin
                      (* Nothing to steal anywhere right now: park.  An
                         actual sleep (not just a pause hint) matters on
                         oversubscribed boxes, where a spinning thief
                         would steal the OS slice from the worker it is
                         waiting on. *)
                      (parks.(wid) <- parks.(wid) + 1)
                      [@lint.racy_ok "per-worker slot, read after join"];
                      backoff := 0;
                      Unix.sleepf 5e-5
                    end
                    else Domain.cpu_relax ()
                end
          done
        with e ->
          (* A crashing worker (an armed failpoint, a genuine bug) must
             not leave its siblings spinning on [pending]: abort the
             race, then let {!Pool.run} re-raise on the caller. *)
          Race.cancel race;
          raise e
      in
      Pool.run ~jobs:workers worker;
      let sum a = Array.fold_left ( + ) 0 a in
      let slices = List.filter_map Fun.id (Array.to_list slices) in
      let stats =
        stats_of slices ~subtrees:(sum subtrees) ~pulls:(sum pulls) ~steals:(sum steals)
          ~parks:(sum parks) ~t0
      in
      let outcome =
        match Atomic.get solution with
        | Some sched -> Encodings.Outcome.Feasible sched
        | None ->
          if Array.exists Fun.id limited || Timer.cancelled budget then
            Encodings.Outcome.Limit
          else if Atomic.get pending = 0 then Encodings.Outcome.Infeasible
          else Encodings.Outcome.Limit
      in
      (outcome, stats)
  end
