open Prelude
open Rt_model

type stats = {
  nodes : int;
  fails : int;
  memo_hits : int;
  memo_misses : int;
  memo_stores : int;
  subtrees : int;
  steals : int;
  max_time_reached : int;
  time_s : float;
}

let default_memo_mb = 64

(* ------------------------------------------------------------------ *)
(* Transposition table.

   A slot state is (time, remaining-execution vector); the exploration
   below a state is a deterministic function of it, so a state once
   exhaustively refuted can be pruned on every later visit.  The table is
   a fixed-capacity direct-mapped cache (replace on collision): memory is
   bounded by construction, and pruning compares the *full* rem vector —
   the incremental hash only picks the slot, so a hash collision costs a
   missed prune, never a wrong one. *)

module Memo = struct
  type t = {
    key_len : int;  (* bytes per rem vector *)
    wide : bool;  (* two bytes per job (any wcet > 255) *)
    cap_mask : int;  (* final entry count - 1 allowed by the MB cap *)
    mutable mask : int;  (* current entry count - 1, power of two *)
    mutable times : int array;  (* -1 marks an empty entry *)
    mutable hashes : int array;
    mutable keys : Bytes.t;  (* flat (mask+1) * key_len buffer: no per-entry alloc *)
    mutable occupied : int;  (* filled entries, drives geometric growth *)
    mutable hits : int;
    mutable lookups : int;
    mutable stores : int;
  }

  (* Two int-array cells per entry, on top of the key bytes. *)
  let entry_overhead = 16

  (* Start tiny and double toward the cap: eager full-cap allocation
     (zeroing tens of MB) would dominate the wall clock of the many
     instances that are decided in a few hundred nodes. *)
  let initial_size = 4096

  let create ~job_count ~max_rem ~cap_mb =
    if cap_mb <= 0 || max_rem > 0xFFFF then None
    else begin
      let wide = max_rem > 0xFF in
      let key_len = Int.max 1 (job_count * if wide then 2 else 1) in
      let budget_bytes = cap_mb * 1024 * 1024 in
      let slots = Int.max 64 (budget_bytes / (key_len + entry_overhead)) in
      let rec pow2 p = if 2 * p > slots || 2 * p <= 0 then p else pow2 (2 * p) in
      let cap_size = pow2 64 in
      let size = Int.min initial_size cap_size in
      Some
        {
          key_len;
          wide;
          cap_mask = cap_size - 1;
          mask = size - 1;
          times = Array.make size (-1);
          hashes = Array.make size 0;
          keys = Bytes.create (size * key_len);
          occupied = 0;
          hits = 0;
          lookups = 0;
          stores = 0;
        }
    end

  let slot_index t ~time ~hash =
    let h = hash lxor (time * 0x9E3779B1) in
    let h = (h lxor (h lsr 33)) * 0xFF51AFD7 in
    let h = h lxor (h lsr 15) in
    h land t.mask

  let key_matches t idx rem =
    let off = idx * t.key_len in
    let jn = Array.length rem in
    if t.wide then begin
      let rec go g =
        g >= jn
        || Char.code (Bytes.unsafe_get t.keys (off + (2 * g)))
           lor (Char.code (Bytes.unsafe_get t.keys (off + (2 * g) + 1)) lsl 8)
           = rem.(g)
           && go (g + 1)
      in
      go 0
    end
    else begin
      let rec go g =
        g >= jn || (Char.code (Bytes.unsafe_get t.keys (off + g)) = rem.(g) && go (g + 1))
      in
      go 0
    end

  let write_key t idx rem =
    let off = idx * t.key_len in
    if t.wide then
      for g = 0 to Array.length rem - 1 do
        Bytes.unsafe_set t.keys (off + (2 * g)) (Char.unsafe_chr (rem.(g) land 0xFF));
        Bytes.unsafe_set t.keys (off + (2 * g) + 1) (Char.unsafe_chr ((rem.(g) lsr 8) land 0xFF))
      done
    else
      for g = 0 to Array.length rem - 1 do
        Bytes.unsafe_set t.keys (off + g) (Char.unsafe_chr rem.(g))
      done

  let known_infeasible t ~time ~hash rem =
    t.lookups <- t.lookups + 1;
    let idx = slot_index t ~time ~hash in
    if t.times.(idx) = time && t.hashes.(idx) = hash && key_matches t idx rem then begin
      t.hits <- t.hits + 1;
      true
    end
    else false

  (* Double the table and reinsert: times/hashes carry everything the
     slot function needs, keys are blitted wholesale.  Rehash collisions
     just overwrite (direct-mapped replacement either way). *)
  let grow t =
    Resilience.Failpoint.hit "csp2opt.memo_grow";
    let old_mask = t.mask and old_times = t.times and old_hashes = t.hashes in
    let old_keys = t.keys in
    let size = 2 * (old_mask + 1) in
    t.mask <- size - 1;
    t.times <- Array.make size (-1);
    t.hashes <- Array.make size 0;
    t.keys <- Bytes.create (size * t.key_len);
    t.occupied <- 0;
    for idx = 0 to old_mask do
      let time = old_times.(idx) in
      if time >= 0 then begin
        let hash = old_hashes.(idx) in
        let idx' = slot_index t ~time ~hash in
        if t.times.(idx') < 0 then t.occupied <- t.occupied + 1;
        t.times.(idx') <- time;
        t.hashes.(idx') <- hash;
        Bytes.blit old_keys (idx * t.key_len) t.keys (idx' * t.key_len) t.key_len
      end
    done

  let store t ~time ~hash rem =
    t.stores <- t.stores + 1;
    if t.occupied * 2 > t.mask + 1 && t.mask < t.cap_mask then grow t;
    let idx = slot_index t ~time ~hash in
    if t.times.(idx) < 0 then t.occupied <- t.occupied + 1;
    t.times.(idx) <- time;
    t.hashes.(idx) <- hash;
    write_key t idx rem
end

(* ------------------------------------------------------------------ *)
(* Shared read-only context: everything derivable from the instance
   alone, built once and shared by every subtree worker. *)

type ctx = {
  jm : Jobmap.t;
  m : int;
  horizon : int;
  n : int;
  by_rank : int array;  (* rank -> task id (heuristic order) *)
  rank_of : int array;  (* task id -> rank *)
  deadline : int array;
  wcet : int array;
  job_wcet : int array;  (* per global job *)
  domains : Analysis.Domains.t option;
  usable_after : int array array;  (* as in Solver: only with domains *)
  elig : Ibits.t array;  (* per slot, rank space: in-window and unblocked *)
  elig_built : bool array;  (* lazy build; forced before going parallel *)
  zob : int array array;  (* Zobrist keys: zob.(g).(c) tags rem.(g) = c *)
}

(* Identical to Solver.remaining_slots / Solver.build_usable_after; kept
   local so the two engines stay independently evolvable. *)
let remaining_slots cx ~task ~k ~t =
  let release = Jobmap.release cx.jm ~task ~k in
  let last = release + cx.deadline.(task) - 1 in
  if last < cx.horizon then last - t + 1
  else begin
    let head_end = last - cx.horizon in
    if t <= head_end then head_end - t + 1 + (cx.horizon - release) else cx.horizon - t
  end

let build_usable_after jm deadline domains =
  let horizon = Jobmap.horizon jm in
  let n = Array.length deadline in
  let ua = Array.make_matrix n horizon 0 in
  for i = 0 to n - 1 do
    for k = 0 to Jobmap.jobs_of_task jm i - 1 do
      let release = Jobmap.release jm ~task:i ~k in
      let slots =
        List.init deadline.(i) (fun d -> (release + d) mod horizon)
        |> List.sort_uniq Int.compare
      in
      let acc = ref 0 in
      List.iter
        (fun t ->
          if not (Analysis.Domains.is_blocked domains ~task:i ~time:t) then incr acc;
          ua.(i).(t) <- !acc)
        (List.rev slots)
    done
  done;
  ua

let make_ctx ~heuristic ?domains ts ~m =
  if m < 1 then invalid_arg "Csp2.Opt.solve: m must be >= 1";
  let jm = Jobmap.create ts in
  let n = Taskset.size ts in
  let horizon = Jobmap.horizon jm in
  (match domains with
  | Some d when not (Analysis.Domains.matches d ~n ~m ~horizon) ->
    invalid_arg "Csp2.Opt.solve: domains derived for a different instance"
  | _ -> ());
  let wcet = Array.init n (fun i -> (Taskset.task ts i).wcet) in
  let deadline = Array.init n (fun i -> (Taskset.task ts i).deadline) in
  let job_wcet = Array.make (Jobmap.job_count jm) 0 in
  for i = 0 to n - 1 do
    let base = Jobmap.first_of_task jm i in
    for k = 0 to Jobmap.jobs_of_task jm i - 1 do
      job_wcet.(base + k) <- wcet.(i)
    done
  done;
  (* Fixed seed: equal instances hash identically run to run, so node and
     memo counters stay reproducible. *)
  let rng = Prng.create ~seed:0x2545F49 in
  let zob =
    Array.map
      (fun c -> Array.init (c + 1) (fun _ -> Int64.to_int (Prng.bits64 rng) land max_int))
      job_wcet
  in
  {
    jm;
    m;
    horizon;
    n;
    by_rank = Heuristic.order heuristic ts;
    rank_of = Heuristic.rank heuristic ts;
    deadline;
    wcet;
    job_wcet;
    domains;
    usable_after =
      (match domains with Some d -> build_usable_after jm deadline d | None -> [||]);
    elig = Array.init horizon (fun _ -> Ibits.create n);
    elig_built = Array.make horizon false;
    zob;
  }

let build_elig cx t =
  let set = cx.elig.(t) in
  for i = 0 to cx.n - 1 do
    if Jobmap.local_job_at cx.jm ~task:i ~time:t >= 0 then begin
      let blocked =
        match cx.domains with
        | None -> false
        | Some d -> Analysis.Domains.is_blocked d ~task:i ~time:t
      in
      if not blocked then Ibits.set set cx.rank_of.(i)
    end
  done;
  cx.elig_built.(t) <- true

(* The lazy build mutates shared arrays, so the parallel phase forces
   every slot it can reach up front: concurrent lazy builds of one slot
   would race on the word-level read-modify-writes. *)
let force_elig cx ~from =
  for t = from to cx.horizon - 1 do
    if not cx.elig_built.(t) then build_elig cx t
  done

(* ------------------------------------------------------------------ *)
(* Per-engine mutable state.  All per-slot buffers are preallocated and
   reused: a search node allocates nothing. *)

type frame = {
  mutable time : int;
  applied : int array;  (* task ids scheduled at this slot *)
  mutable applied_n : int;
  free : int array;  (* available, non-urgent task ids in rank order *)
  mutable free_n : int;
  urgent : int array;
  mutable urgent_n : int;
  combo : int array;  (* cursor into [free]; first [combo_k] cells live *)
  mutable combo_k : int;
  mutable fresh : bool;
}

let new_frame n =
  {
    time = 0;
    applied = Array.make (Int.max 1 n) 0;
    applied_n = 0;
    free = Array.make (Int.max 1 n) 0;
    free_n = 0;
    urgent = Array.make (Int.max 1 n) 0;
    urgent_n = 0;
    combo = Array.make (Int.max 1 n) 0;
    combo_k = 0;
    fresh = true;
  }

let reset_frame f time =
  f.time <- time;
  f.applied_n <- 0;
  f.combo_k <- 0;
  f.fresh <- true

type search = {
  cx : ctx;
  rem : int array;  (* per global job: units still owed *)
  mutable total_rem : int;
  mutable hash : int;  (* Zobrist hash of [rem], maintained incrementally *)
  memo : Memo.t option;
  budget : Timer.budget;
  frames : frame array;
  mutable nodes : int;
  mutable fails : int;
  mutable max_time : int;
}

let make_search cx ~budget ~memo_mb =
  let rem = Array.copy cx.job_wcet in
  let total_rem = Array.fold_left ( + ) 0 rem in
  let hash = ref 0 in
  Array.iteri (fun g c -> hash := !hash lxor cx.zob.(g).(c)) rem;
  let max_rem = Array.fold_left Int.max 0 cx.wcet in
  {
    cx;
    rem;
    total_rem;
    hash = !hash;
    memo = Memo.create ~job_count:(Array.length rem) ~max_rem ~cap_mb:memo_mb;
    budget;
    frames = Array.init (cx.horizon + 1) (fun _ -> new_frame cx.n);
    nodes = 0;
    fails = 0;
    max_time = 0;
  }

let undo s f =
  if f.applied_n > 0 then begin
    for idx = 0 to f.applied_n - 1 do
      let i = f.applied.(idx) in
      let g = Jobmap.global_job_at s.cx.jm ~task:i ~time:f.time in
      let c = s.rem.(g) in
      s.rem.(g) <- c + 1;
      s.hash <- s.hash lxor s.cx.zob.(g).(c) lxor s.cx.zob.(g).(c + 1);
      s.total_rem <- s.total_rem + 1
    done;
    f.applied_n <- 0
  end

let apply_task s f i =
  let g = Jobmap.global_job_at s.cx.jm ~task:i ~time:f.time in
  let c = s.rem.(g) in
  s.rem.(g) <- c - 1;
  s.hash <- s.hash lxor s.cx.zob.(g).(c) lxor s.cx.zob.(g).(c - 1);
  s.total_rem <- s.total_rem - 1;
  f.applied.(f.applied_n) <- i;
  f.applied_n <- f.applied_n + 1

(* Entry checks for a state visited for the first time at this frame
   activation.  Both are functions of (t, rem) only, so pruning here can
   only shed states with no feasible completion:
   - aggregate capacity: the work still owed must fit in m units per
     remaining slot (urgency propagation guarantees every unfinished job's
     window is still open, so all of [total_rem] competes for them);
   - the transposition table: the state was exhaustively refuted before. *)
let prune_entry s t =
  if s.total_rem > s.cx.m * (s.cx.horizon - t) then true
  else
    match s.memo with
    | Some memo -> Memo.known_infeasible memo ~time:t ~hash:s.hash s.rem
    | None -> false

(* Availability in heuristic (= rank) order, straight off the packed
   eligibility word for the slot: blocked and out-of-window tasks never
   enter the loop, and the free/urgent split lands in reused buffers. *)
let classify s f t =
  f.free_n <- 0;
  f.urgent_n <- 0;
  if not s.cx.elig_built.(t) then build_elig s.cx t;
  let words = (s.cx.elig.(t) :> int array) in
  for w = 0 to Array.length words - 1 do
    let bits = ref words.(w) in
    let base = w lsl 5 in
    while !bits <> 0 do
      let r = base + Ibits.lowest_bit_index !bits in
      bits := !bits land (!bits - 1);
      let i = s.cx.by_rank.(r) in
      let k = Jobmap.local_job_at s.cx.jm ~task:i ~time:t in
      let g = Jobmap.first_of_task s.cx.jm i + k in
      if s.rem.(g) > 0 then begin
        let slots_left =
          match s.cx.domains with
          | None -> remaining_slots s.cx ~task:i ~k ~t
          | Some _ -> s.cx.usable_after.(i).(t)
        in
        assert (s.rem.(g) <= slots_left);
        if s.rem.(g) = slots_left then begin
          f.urgent.(f.urgent_n) <- i;
          f.urgent_n <- f.urgent_n + 1
        end
        else begin
          f.free.(f.free_n) <- i;
          f.free_n <- f.free_n + 1
        end
      end
    done
  done

type step = Applied | Exhausted | Stopped

let advance s f =
  let t = f.time in
  undo s f;
  if f.fresh && prune_entry s t then begin
    f.fresh <- false;
    s.fails <- s.fails + 1;
    Exhausted
  end
  else begin
    classify s f t;
    let q = Int.min s.cx.m (f.urgent_n + f.free_n) in
    if f.urgent_n > q then begin
      (* Urgency overload: no subset of this slot can work.  Cheap to
         rediscover (O(n), no search below), so not worth a memo entry. *)
      s.fails <- s.fails + 1;
      Exhausted
    end
    else begin
      let k = q - f.urgent_n in
      let next_ok =
        if f.fresh then begin
          for j = 0 to k - 1 do
            f.combo.(j) <- j
          done;
          f.combo_k <- k;
          f.fresh <- false;
          true
        end
        else f.combo_k > 0 && Combi.next_k ~n:f.free_n ~k:f.combo_k f.combo
      in
      if not next_ok then begin
        s.fails <- s.fails + 1;
        (* Every subset of this state was tried and every subtree failed
           through normal backtracking (a budget stop aborts the whole
           loop before reaching here), so (t, rem) is proven infeasible:
           record it.  [undo] above restored rem/hash to the entry state. *)
        (match s.memo with
        | Some memo -> Memo.store memo ~time:t ~hash:s.hash s.rem
        | None -> ());
        Exhausted
      end
      else begin
        for j = 0 to f.urgent_n - 1 do
          apply_task s f f.urgent.(j)
        done;
        for j = 0 to f.combo_k - 1 do
          apply_task s f f.free.(f.combo.(j))
        done;
        s.nodes <- s.nodes + 1;
        if
          Timer.cancelled s.budget
          || (s.nodes land 255 = 0 && Timer.exceeded s.budget ~nodes:s.nodes)
        then begin
          undo s f;
          Stopped
        end
        else Applied
      end
    end
  end

type run_result = R_feasible | R_exhausted | R_stopped

(* Chronological loop over slots [start, stop_time).  [stop_time =
   horizon] decides the subtree: [R_feasible] leaves the assignment in
   the frames.  With [stop_time < horizon] the loop enumerates surviving
   prefixes instead: [on_frontier] fires for each, the prefix is then
   abandoned and the sweep continues with its next sibling — the memo
   must be off in that mode (an ancestor exhausted by truncated subtrees
   is not refuted). *)
let search_loop s ~start ~stop_time ~on_frontier =
  assert (stop_time = s.cx.horizon || s.memo = None);
  let depth = ref 1 in
  reset_frame s.frames.(0) start;
  let result = ref None in
  while !result = None do
    if !depth = 0 then result := Some R_exhausted
    else if
      (if s.nodes land 255 = 0 then begin
         Resilience.Failpoint.hit "csp2opt.node";
         Telemetry.heartbeat ~name:"csp2-opt" ~nodes:s.nodes ~fails:s.fails ~depth:s.max_time;
         (* Memo hit-rate sample, an order of magnitude sparser than the
            heartbeat checkpoints so a fast search cannot flood the ring. *)
         match s.memo with
         | Some memo when s.nodes land 65535 = 0 && Telemetry.enabled () ->
           Telemetry.counter "csp2-opt.memo-hits" memo.Memo.hits;
           Telemetry.counter "csp2-opt.memo-lookups" memo.Memo.lookups
         | _ -> ()
       end;
       Timer.nodes_exceeded s.budget ~nodes:s.nodes
       || Timer.cancelled s.budget
       || (s.nodes land 255 = 0 && Timer.exceeded s.budget ~nodes:s.nodes))
    then result := Some R_stopped
    else begin
      let f = s.frames.(!depth - 1) in
      match advance s f with
      | Exhausted -> decr depth
      | Stopped -> result := Some R_stopped
      | Applied ->
        if f.time > s.max_time then s.max_time <- f.time;
        if f.time + 1 = stop_time then begin
          if stop_time = s.cx.horizon then result := Some R_feasible else on_frontier !depth
        end
        else begin
          reset_frame s.frames.(!depth) (f.time + 1);
          incr depth
        end
    end
  done;
  (match !result with Some r -> r | None -> assert false)

let no_frontier _ = assert false

(* Symmetry rule (10): idle processors first, then tasks ascending. *)
let place sched ~m ~time ids count =
  let ids = Array.sub ids 0 count in
  Array.sort Int.compare ids;
  Array.iteri (fun pos i -> Schedule.set sched ~proc:(m - count + pos) ~time i) ids

let build_schedule s ~prefix ~depth =
  let sched = Schedule.create ~m:s.cx.m ~horizon:s.cx.horizon in
  Array.iteri (fun t ids -> place sched ~m:s.cx.m ~time:t ids (Array.length ids)) prefix;
  for d = 0 to depth - 1 do
    let f = s.frames.(d) in
    place sched ~m:s.cx.m ~time:f.time f.applied f.applied_n
  done;
  sched

let stats_of ?(subtrees = 0) ?(steals = 0) searches ~t0 =
  let nodes = ref 0
  and fails = ref 0
  and hits = ref 0
  and lookups = ref 0
  and stores = ref 0
  and max_time = ref 0 in
  List.iter
    (fun s ->
      nodes := !nodes + s.nodes;
      fails := !fails + s.fails;
      if s.max_time > !max_time then max_time := s.max_time;
      match s.memo with
      | None -> ()
      | Some m ->
        hits := !hits + m.Memo.hits;
        lookups := !lookups + m.Memo.lookups;
        stores := !stores + m.Memo.stores)
    searches;
  {
    nodes = !nodes;
    fails = !fails;
    memo_hits = !hits;
    memo_misses = !lookups - !hits;
    memo_stores = !stores;
    subtrees;
    steals;
    max_time_reached = !max_time;
    time_s = Timer.elapsed t0;
  }

let to_stats ~backend (st : stats) =
  Telemetry.Stats.make ~backend ~nodes:st.nodes ~fails:st.fails ~depth:st.max_time_reached
    ~memo_hits:st.memo_hits ~memo_misses:st.memo_misses ~memo_stores:st.memo_stores
    ~subtrees:st.subtrees ~steals:st.steals ~time_s:st.time_s ()

(* ------------------------------------------------------------------ *)
(* Entry points. *)

let solve ?(heuristic = Heuristic.DC) ?(budget = Timer.unlimited) ?domains
    ?(memo_mb = default_memo_mb) ts ~m =
  let t0 = Timer.start () in
  let cx = make_ctx ~heuristic ?domains ts ~m in
  let s = make_search cx ~budget ~memo_mb in
  let outcome =
    match search_loop s ~start:0 ~stop_time:cx.horizon ~on_frontier:no_frontier with
    | R_feasible ->
      Encodings.Outcome.Feasible (build_schedule s ~prefix:[||] ~depth:cx.horizon)
    | R_exhausted -> Encodings.Outcome.Infeasible
    | R_stopped -> Encodings.Outcome.Limit
  in
  (outcome, stats_of [ s ] ~t0)

type frontier_item = {
  f_rem : int array;
  f_hash : int;
  f_total : int;
  f_prefix : int array array;  (* per slot 0..split-1: applied task ids *)
}

let solve_parallel ?(heuristic = Heuristic.DC) ?(budget = Timer.unlimited) ?domains
    ?(memo_mb = default_memo_mb) ?jobs ?split_depth ts ~m =
  let t0 = Timer.start () in
  let cx = make_ctx ~heuristic ?domains ts ~m in
  let jobs =
    match jobs with
    | Some j -> Int.max 1 j
    | None -> Domain.recommended_domain_count ()
  in
  let split =
    let d = match split_depth with Some d -> d | None -> 2 in
    Intmath.clamp ~lo:0 ~hi:(cx.horizon - 1) d
  in
  if jobs <= 1 || split = 0 then begin
    let s = make_search cx ~budget ~memo_mb in
    let outcome =
      match search_loop s ~start:0 ~stop_time:cx.horizon ~on_frontier:no_frontier with
      | R_feasible ->
        Encodings.Outcome.Feasible (build_schedule s ~prefix:[||] ~depth:cx.horizon)
      | R_exhausted -> Encodings.Outcome.Infeasible
      | R_stopped -> Encodings.Outcome.Limit
    in
    (outcome, stats_of [ s ] ~t0)
  end
  else begin
    (* Phase 1 (sequential): enumerate every surviving assignment of the
       first [split] slots.  Memo off — see [search_loop]. *)
    let s0 = make_search cx ~budget ~memo_mb:0 in
    let frontier = ref [] in
    let capture depth =
      let prefix =
        Array.init depth (fun d -> Array.sub s0.frames.(d).applied 0 s0.frames.(d).applied_n)
      in
      frontier :=
        { f_rem = Array.copy s0.rem; f_hash = s0.hash; f_total = s0.total_rem; f_prefix = prefix }
        :: !frontier
    in
    match search_loop s0 ~start:0 ~stop_time:split ~on_frontier:capture with
    | R_feasible -> assert false (* split < horizon *)
    | R_stopped -> (Encodings.Outcome.Limit, stats_of [ s0 ] ~t0)
    | R_exhausted ->
      let frontier = Array.of_list (List.rev !frontier) in
      let nf = Array.length frontier in
      if nf = 0 then
        (* No prefix survives the first [split] slots: a complete proof. *)
        (Encodings.Outcome.Infeasible, stats_of [ s0 ] ~t0)
      else begin
        force_elig cx ~from:split;
        let workers = Int.min jobs nf in
        let stop = Atomic.make false in
        let worker_budget = Timer.with_stop budget stop in
        let next = Atomic.make 0 in
        let winner = Atomic.make (-1) in
        let refuted = Atomic.make 0 in
        let solutions = Array.make workers None in
        let searches = Array.make workers None in
        let pulls = Array.make workers 0 in
        let limited = Array.make workers false in
        let worker wid () =
          (* One engine (and one memo slice) per worker, reused across the
             subtrees it pulls: refuted states are global facts of the
             instance, so entries stay valid from one subtree to the next. *)
          let s = make_search cx ~budget:worker_budget ~memo_mb:(memo_mb / workers) in
          searches.(wid) <- Some s;
          let continue_ = ref true in
          while !continue_ do
            (* A cancel on the caller's own budget is observed through
               [worker_budget]: [Timer.with_stop] keeps the caller's flag
               attached (it used to replace it — the PR 1 bug). *)
            if Atomic.get stop then continue_ := false
            else begin
              let i = Atomic.fetch_and_add next 1 in
              if i >= nf then continue_ := false
              else begin
                pulls.(wid) <- pulls.(wid) + 1;
                if Telemetry.enabled () then
                  Telemetry.instant "csp2-opt.subtree-pull"
                    ~args:[ ("subtree", string_of_int i); ("worker", string_of_int wid) ];
                let fr = frontier.(i) in
                Array.blit fr.f_rem 0 s.rem 0 (Array.length s.rem);
                s.hash <- fr.f_hash;
                s.total_rem <- fr.f_total;
                match
                  search_loop s ~start:split ~stop_time:cx.horizon ~on_frontier:no_frontier
                with
                | R_feasible ->
                  if Atomic.compare_and_set winner (-1) i then begin
                    solutions.(wid) <-
                      Some (build_schedule s ~prefix:fr.f_prefix ~depth:(cx.horizon - split));
                    Atomic.set stop true
                  end;
                  continue_ := false
                | R_exhausted -> ignore (Atomic.fetch_and_add refuted 1)
                | R_stopped ->
                  limited.(wid) <- true;
                  continue_ := false
              end
            end
          done
        in
        let spawned = Array.init (workers - 1) (fun w -> Domain.spawn (fun () -> worker (w + 1) ())) in
        worker 0 ();
        Array.iter Domain.join spawned;
        let searches =
          s0 :: List.filter_map Fun.id (Array.to_list searches)
        in
        let steals = ref 0 in
        for wid = 1 to workers - 1 do
          steals := !steals + pulls.(wid)
        done;
        let stats = stats_of searches ~subtrees:nf ~steals:!steals ~t0 in
        let outcome =
          if Atomic.get winner >= 0 then begin
            match Array.fold_left (fun acc o -> match acc with Some _ -> acc | None -> o) None solutions with
            | Some sched -> Encodings.Outcome.Feasible sched
            | None -> assert false
          end
          else if Atomic.get refuted = nf then Encodings.Outcome.Infeasible
          else Encodings.Outcome.Limit
        in
        (outcome, stats)
      end
  end
