(** The dedicated CSP2 solver (Section V of the paper), identical platforms.

    A deterministic chronological backtracking search over the hyperperiod:
    time slots are decided in order (Section V-C1), and within a slot the
    search branches over which tasks to run.  The paper's search rules are
    built in:

    - {b no-idle rule}: a processor idles only when no available task
      remains, so a slot schedules exactly [min(m, #available)] tasks (safe
      by the swap argument: a later unit of an available task can always be
      pulled into an idle slot);
    - {b symmetry rule (10)}: tasks and processors are considered in
      ascending order, so the [m!] permutations of one slot collapse into a
      single canonical assignment — the search branches over *subsets*, not
      vectors;
    - {b value ordering}: subsets are enumerated so that tasks ranked better
      by the chosen {!Heuristic} enter first (the first subset tried is the
      greedy top-k);
    - {b urgency propagation}: a task whose remaining demand equals its
      remaining window slots must run now; slots where the urgent tasks
      outnumber the processors fail immediately.  With this rule the
      invariant [rem <= remaining window slots] holds along every branch,
      so urgency overload is the {e only} failure condition.

    Windows that wrap the hyperperiod boundary contribute their head slots
    at the start of the sweep and their tail at the end; a wrapped job's
    remaining-capacity accounting spans both parts (see {!Rt_model.Jobmap}).

    The search is complete: [Infeasible] is a proof.  It is also fully
    deterministic — the paper contrasts exactly this with Choco's
    randomized runs (Section VII-B). *)

type stats = {
  nodes : int;  (** Slot assignments tried (one per subset application). *)
  fails : int;  (** Urgency overloads hit. *)
  max_time_reached : int;  (** Deepest slot decided, in [[0, T]]. *)
  time_s : float;
}

val to_stats : backend:string -> stats -> Telemetry.Stats.t
(** The unified telemetry view: [max_time_reached] is reported as [depth]
    (the best-slot watermark). *)

val solve :
  ?heuristic:Heuristic.t ->
  ?budget:Prelude.Timer.budget ->
  ?urgency:bool ->
  ?domains:Analysis.Domains.t ->
  Rt_model.Taskset.t ->
  m:int ->
  Encodings.Outcome.t * stats
(** Default heuristic is [DC], the paper's best.  [Memout] is never
    returned: memory is O(jobs + m·T_reached) — plus O(n·T) for the
    unblocked-slot table when [domains] is given.

    [urgency] (default true) controls the urgency propagation.  Disabling
    it keeps the search complete — failure is then detected when a window
    closes unfinished — but far weaker, which is the regime where the
    paper's value-ordering comparison (CSP2 vs +RM/+DM/+(T−C)/+(D−C))
    becomes visible; the benchmark ablation uses it for exactly that.

    [domains] seeds the search with the static analyzer's facts: blocked
    cells leave the availability lists, and remaining-window counts become
    blocked-aware, which turns statically forced cells into urgent ones.
    Since the facts hold in every feasible schedule, completeness is
    unaffected and the node count can only shrink.
    @raise Invalid_argument on non-constrained-deadline task sets (apply
    {!Rt_model.Clone} first), [m < 1], or [domains] whose
    (n, m, hyperperiod) fingerprint does not match the instance. *)
