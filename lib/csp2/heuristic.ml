open Rt_model

type t = Id | RM | DM | TC | DC

let all = [ Id; RM; DM; TC; DC ]

let to_string = function
  | Id -> "id"
  | RM -> "RM"
  | DM -> "DM"
  | TC -> "T-C"
  | DC -> "D-C"

let of_string s =
  match String.lowercase_ascii s with
  | "id" -> Some Id
  | "rm" -> Some RM
  | "dm" -> Some DM
  | "tc" | "t-c" -> Some TC
  | "dc" | "d-c" -> Some DC
  | _ -> None

let key t (task : Task.t) =
  match t with
  | Id -> task.id
  | RM -> task.period
  | DM -> task.deadline
  | TC -> task.period - task.wcet
  | DC -> task.deadline - task.wcet

let order t ts =
  let n = Taskset.size ts in
  let ids = Array.init n Fun.id in
  let cmp a b =
    let ka = key t (Taskset.task ts a) and kb = key t (Taskset.task ts b) in
    if ka <> kb then Int.compare ka kb else Int.compare a b
  in
  Array.sort cmp ids;
  ids

let rank t ts =
  let ord = order t ts in
  let ranks = Array.make (Array.length ord) 0 in
  Array.iteri (fun position id -> ranks.(id) <- position) ord;
  ranks
