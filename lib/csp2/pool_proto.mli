(** The worker-pool synchronization protocol, separated from pool
    {e policy} (free lists, spawn accounting, failpoint scoping — all of
    which stay in {!Pool}).

    What lives here is exactly the part that can deadlock or lose a
    wakeup: the per-worker park/assign handshake and the per-[run]
    completion barrier.  It is a functor over {!Prelude.Sync.PRIMS} so
    the model checker in [lib/check] runs the {e same} protocol code
    over instrumented primitives and explores its interleavings;
    {!Pool} instantiates it over [Sync.Native] at zero cost.

    Protocol invariants (model-checked):
    - every assigned job runs exactly once, in assignment order per
      worker;
    - a worker holding no job and not retired is parked in
      [Condition.wait] — never spinning, never exited;
    - [Barrier.await] returns iff every job [arrive]d: no lost wakeup
      between the outside-the-lock counter decrement and the
      under-the-lock broadcast;
    - [retire] terminates the loop even when racing an in-flight
      assignment (the job still runs first). *)

module Make (P : Prelude.Sync.PRIMS) : sig
  type worker = {
    lock : P.Mutex.t;
    cond : P.Condition.t;
    mutable job : (unit -> unit) option;
    mutable quit : bool;
  }

  val make_worker : unit -> worker

  val worker_loop : ?defer_job_clear:bool -> worker -> unit
  (** The body a worker domain runs until {!retire}: park on the
      condvar, run each assigned job with the lock dropped, clear the
      slot {e before} dropping the lock.

      [defer_job_clear] (default [false]; test-only, never set by
      production code) re-instates the historical bug where the slot was
      cleared {e after} the job on re-lock, destroying any assignment
      that landed while the job ran.  The model checker's mutation gate
      flips it to prove the checker catches the resulting hang. *)

  val assign : worker -> (unit -> unit) -> unit
  (** Hand a parked worker its next job and wake it.  The caller must
      own the worker (in {!Pool}: have it off the free list) — the slot
      holds one job, and assigning over an unclaimed one is a protocol
      violation this signature cannot express (the checker's scenarios
      only assign to workers whose previous job has arrived at the
      barrier, mirroring [Pool.run]). *)

  val retire : worker -> unit
  (** Tell the worker to exit once its slot is empty; idempotent. *)

  (** Completion barrier for one [run]: created at [n] outstanding jobs,
      each job {!Barrier.arrive}s exactly once, the caller
      {!Barrier.await}s all of them. *)
  module Barrier : sig
    type t

    val create : int -> t
    val arrive : t -> unit
    val await : t -> unit
  end
end
