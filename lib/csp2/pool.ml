(* A parked-domain pool: spawn once, hand out per [run], park again.

   The synchronization protocol (park/assign handshake, completion
   barrier) lives in Pool_proto, functorized over the primitives so the
   model checker can explore it; this module is pool *policy*: the
   production instantiation, the free list, spawn accounting, failpoint
   scope propagation, and exception collection.  The free list is a
   plain mutex-protected stack — it is only touched at run boundaries
   (milliseconds apart), never on a solver hot path. *)

open Prelude

module Proto = Pool_proto.Make (Sync.Native)

let pool_lock = Mutex.create ()
let free : Proto.worker list ref = ref []
let spawned : unit Domain.t list ref = ref []
let spawn_count = ref 0
let exit_hook_installed = ref false

let spawned_count () = Mutex.protect pool_lock (fun () -> !spawn_count)

(* Stop and join every pooled domain.  Registered [at_exit] on first
   spawn; joining an idle worker is immediate, and a worker still running
   a job finishes it first (the process is exiting — a truncated solve
   would be no better). *)
let shutdown () =
  let doms =
    Mutex.protect pool_lock (fun () ->
        let ws = !free and doms = !spawned in
        free := [];
        spawned := [];
        List.iter Proto.retire ws;
        doms)
  in
  List.iter Domain.join doms

let acquire n =
  Mutex.protect pool_lock (fun () ->
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        at_exit shutdown
      end;
      let rec take k acc fl =
        if k = 0 then (acc, fl)
        else
          match fl with
          | w :: rest -> take (k - 1) (w :: acc) rest
          | [] ->
            let w = Proto.make_worker () in
            spawned := Domain.spawn (fun () -> Proto.worker_loop w) :: !spawned;
            spawn_count := !spawn_count + 1;
            take (k - 1) (w :: acc) []
      in
      let ws, fl = take n [] !free in
      free := fl;
      ws)

let release ws = Mutex.protect pool_lock (fun () -> free := List.rev_append ws !free)

let run ~jobs fn =
  if jobs <= 1 then fn 0
  else begin
    let n = jobs - 1 in
    let workers = acquire n in
    (* Propagate the caller's failpoint scope: an armed site must behave
       the same whether its arm runs on the caller's domain or a pooled
       one. *)
    let scoped = Resilience.Failpoint.in_scope () in
    let failed : exn list Atomic.t = Atomic.make [] in
    let record e =
      let rec go () =
        let old = Atomic.get failed in
        if not (Atomic.compare_and_set failed old (e :: old)) then go ()
      in
      go ()
    in
    let barrier = Proto.Barrier.create n in
    List.iteri
      (fun i w ->
        let wid = i + 1 in
        Proto.assign w (fun () ->
            (try if scoped then Resilience.Failpoint.with_scope (fun () -> fn wid) else fn wid
             with e -> record e);
            Proto.Barrier.arrive barrier))
      workers;
    let caller_exn = match fn 0 with () -> None | exception e -> Some e in
    Proto.Barrier.await barrier;
    release workers;
    match caller_exn with
    | Some e -> raise e
    | None -> ( match Atomic.get failed with e :: _ -> raise e | [] -> ())
  end
