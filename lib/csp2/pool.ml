(* A parked-domain pool: spawn once, hand out per [run], park again.

   Each worker owns a mutex/condvar pair and a job slot; assignment and
   completion both go through the slot, so a worker touches no global
   state while running.  The free list is a plain mutex-protected stack —
   it is only touched at run boundaries (milliseconds apart), never on a
   solver hot path. *)

type worker = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable quit : bool;
}

let pool_lock = Mutex.create ()
let free : worker list ref = ref []
let spawned : unit Domain.t list ref = ref []
let spawn_count = ref 0
let exit_hook_installed = ref false

let spawned_count () = Mutex.protect pool_lock (fun () -> !spawn_count)

let worker_loop w =
  Mutex.lock w.lock;
  let rec park () =
    match w.job with
    | Some f ->
      (* Claim the job — clear the slot BEFORE dropping the lock.  The
         completion counter a job decrements is what lets the caller
         release this worker, so the next [run] can assign a fresh job
         while we are still between [f ()] and re-locking; a deferred
         [w.job <- None] here would silently destroy that assignment
         (and hang its caller waiting on a completion that never comes). *)
      w.job <- None;
      Mutex.unlock w.lock;
      f ();
      Mutex.lock w.lock;
      park ()
    | None -> if w.quit then Mutex.unlock w.lock else (Condition.wait w.cond w.lock; park ())
  in
  park ()

(* Stop and join every pooled domain.  Registered [at_exit] on first
   spawn; joining an idle worker is immediate, and a worker still running
   a job finishes it first (the process is exiting — a truncated solve
   would be no better). *)
let shutdown () =
  let doms =
    Mutex.protect pool_lock (fun () ->
        let ws = !free and doms = !spawned in
        free := [];
        spawned := [];
        List.iter
          (fun w ->
            Mutex.protect w.lock (fun () ->
                w.quit <- true;
                Condition.signal w.cond))
          ws;
        doms)
  in
  List.iter Domain.join doms

let acquire n =
  Mutex.protect pool_lock (fun () ->
      if not !exit_hook_installed then begin
        exit_hook_installed := true;
        at_exit shutdown
      end;
      let rec take k acc fl =
        if k = 0 then (acc, fl)
        else
          match fl with
          | w :: rest -> take (k - 1) (w :: acc) rest
          | [] ->
            let w =
              { lock = Mutex.create (); cond = Condition.create (); job = None; quit = false }
            in
            spawned := Domain.spawn (fun () -> worker_loop w) :: !spawned;
            spawn_count := !spawn_count + 1;
            take (k - 1) (w :: acc) []
      in
      let ws, fl = take n [] !free in
      free := fl;
      ws)

let release ws = Mutex.protect pool_lock (fun () -> free := List.rev_append ws !free)

let assign w f =
  Mutex.protect w.lock (fun () ->
      w.job <- Some f;
      Condition.signal w.cond)

let run ~jobs fn =
  if jobs <= 1 then fn 0
  else begin
    let n = jobs - 1 in
    let workers = acquire n in
    (* Propagate the caller's failpoint scope: an armed site must behave
       the same whether its arm runs on the caller's domain or a pooled
       one. *)
    let scoped = Resilience.Failpoint.in_scope () in
    let failed : exn list Atomic.t = Atomic.make [] in
    let record e =
      let rec go () =
        let old = Atomic.get failed in
        if not (Atomic.compare_and_set failed old (e :: old)) then go ()
      in
      go ()
    in
    let remaining = Atomic.make n in
    let done_lock = Mutex.create () in
    let done_cond = Condition.create () in
    List.iteri
      (fun i w ->
        let wid = i + 1 in
        assign w (fun () ->
            (try if scoped then Resilience.Failpoint.with_scope (fun () -> fn wid) else fn wid
             with e -> record e);
            if Atomic.fetch_and_add remaining (-1) = 1 then
              Mutex.protect done_lock (fun () -> Condition.broadcast done_cond)))
      workers;
    let caller_exn = match fn 0 with () -> None | exception e -> Some e in
    Mutex.lock done_lock;
    while Atomic.get remaining > 0 do
      Condition.wait done_cond done_lock
    done;
    Mutex.unlock done_lock;
    release workers;
    match caller_exn with
    | Some e -> raise e
    | None -> ( match Atomic.get failed with e :: _ -> raise e | [] -> ())
  end
