(** A process-wide pool of warm worker domains.

    [Domain.spawn] costs hundreds of microseconds — runtime handshakes,
    fresh minor heaps, cold domain-local state.  Both parallel paths in
    this repo used to pay it on {e every} solve: the portfolio race
    spawned its arms' domains per call, and [Csp2.Opt.solve_parallel]
    spawned its subtree workers per instance, which is a large slice of
    the committed 10× parallel wall-clock regression (the CSP2OPT bench
    solves ~200 instances of a millisecond each).  The pool spawns a
    worker domain once, parks it on a condition variable between uses,
    and hands it back out to the next {!run} — so back-to-back solves
    (the bench campaign, the portfolio race, a future [mgrts serve])
    reuse domains, and with them every domain-local cache the engines
    keep (telemetry rings, and {!Csp2.Opt}'s warm engine state: frames,
    rem buffers, epoch-invalidated memo tables).

    Failpoint scoping propagates: when the caller of {!run} is inside a
    {!Resilience.Supervise.protect} scope, the pooled workers run their
    share inside a scope too, so injection semantics do not depend on
    which domain happens to execute an arm.

    Workers are joined through an [at_exit] hook; an idle pool costs one
    parked domain per high-water-mark worker and nothing else. *)

val run : jobs:int -> (int -> unit) -> unit
(** [run ~jobs fn] executes [fn 0 .. fn (jobs-1)] concurrently: [fn 0]
    on the calling domain, the rest on pooled worker domains (spawned on
    first use, reused afterwards).  Returns when every [fn] has; if any
    raised, one of the exceptions is re-raised on the caller (the
    caller's own, if it raised too).  [jobs <= 1] degrades to [fn 0]
    inline.  Reentrant calls are safe — nested [run]s draw fresh workers
    — but nothing in this repo nests parallel regions on purpose. *)

val spawned_count : unit -> int
(** Domains spawned by the pool since program start (a high-water mark:
    it never decreases while the process lives).  Exposed so tests can
    pin that repeated races reuse workers instead of respawning. *)
