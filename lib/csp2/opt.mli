(** Optimized CSP2 dedicated search: bitsets + memoization + Domains.

    Same problem, rules and verdict semantics as {!Solver} (no-idle,
    symmetry rule (10), heuristic value ordering, urgency propagation —
    always on here), re-engineered for throughput:

    - {b packed eligibility}: per-slot candidate sets live in {!Prelude.Ibits}
      words (in-window and not statically blocked, in heuristic-rank space),
      so classifying a slot walks set bits instead of all [n] tasks, and the
      per-node hot path allocates nothing (reused frame buffers, one
      max-sized combination cursor advanced with {!Prelude.Combi.next_k});

    - {b state-dominance memoization}: a search state is fully described by
      [(t, rem)] — the slot to decide and the per-job remaining demand —
      and the exploration below it is a deterministic function of that
      pair.  States refuted by exhausting every subset are recorded in a
      transposition table that doubles from a tiny initial size toward the
      [memo_mb] cap (direct-mapped, replace on collision) keyed by an
      incrementally maintained Zobrist hash;
      pruning compares the {e full} rem vector, so collisions cost a missed
      prune, never a wrong verdict.  Entries are written only on genuine
      exhaustion — never on a budget stop, never during frontier
      enumeration — so [Infeasible] remains a proof;

    - {b aggregate capacity bound}: a state with more remaining work than
      [m · (T − t)] slot-units left fails immediately (urgency propagation
      keeps every unfinished job's window open, so all remaining work
      competes for those units);

    - {b subtree splitting} ({!solve_parallel}): the surviving assignments
      of the first [split_depth] slots are enumerated sequentially, then
      raced across Domains pulling from a shared work queue with a common
      stop flag — first [Feasible] wins; [Infeasible] requires every
      subtree refuted; anything cut short degrades the verdict to [Limit].

    Verdict-equivalent to {!Solver} with [urgency:true] (property-tested in
    [test/test_csp2.ml]); node counts are lower, not equal, because the
    memo table and the capacity bound prune. *)

type stats = {
  nodes : int;  (** Slot assignments tried (summed over workers). *)
  fails : int;  (** Dead ends: overloads, capacity cuts, memo hits, exhaustions. *)
  memo_hits : int;  (** Lookups that pruned a known-infeasible state. *)
  memo_misses : int;
  memo_stores : int;
  subtrees : int;  (** Frontier size handed to the parallel phase (0 = sequential). *)
  steals : int;  (** Subtrees pulled by spawned domains (not the caller's). *)
  max_time_reached : int;
  time_s : float;
}

val default_memo_mb : int
(** 64 MiB; an explicit upper bound on table memory, not a reservation. *)

val to_stats : backend:string -> stats -> Telemetry.Stats.t
(** The unified telemetry view: the memo and splitting counters map to
    their namesake fields, [max_time_reached] to [depth]. *)

val solve :
  ?heuristic:Heuristic.t ->
  ?budget:Prelude.Timer.budget ->
  ?domains:Analysis.Domains.t ->
  ?memo_mb:int ->
  Rt_model.Taskset.t ->
  m:int ->
  Encodings.Outcome.t * stats
(** Sequential entry point.  [memo_mb <= 0] disables the transposition
    table (the capacity bound stays on); so do per-job demands above
    65535, where keys would no longer pack into two bytes.
    @raise Invalid_argument as {!Solver.solve}. *)

val solve_parallel :
  ?heuristic:Heuristic.t ->
  ?budget:Prelude.Timer.budget ->
  ?domains:Analysis.Domains.t ->
  ?memo_mb:int ->
  ?jobs:int ->
  ?split_depth:int ->
  Rt_model.Taskset.t ->
  m:int ->
  Encodings.Outcome.t * stats
(** Race the frontier after [split_depth] slots (default 2, clamped to
    [T − 1]) across [jobs] domains (default
    [Domain.recommended_domain_count ()]); [memo_mb] is split evenly across
    workers.  [jobs <= 1] or [split_depth = 0] falls back to {!solve}'s
    sequential loop.  Deterministic in its verdict — [Feasible]/[Infeasible]
    never depends on [jobs] — though which witness schedule is returned may
    (any returned schedule verifies).  The wall budget is honored in both
    phases; node budgets apply per engine. *)
