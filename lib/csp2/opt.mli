(** Optimized CSP2 dedicated search: bitsets + memoization + Domains.

    Same problem, rules and verdict semantics as {!Solver} (no-idle,
    symmetry rule (10), heuristic value ordering, urgency propagation —
    always on here), re-engineered for throughput:

    - {b packed eligibility}: per-slot candidate sets live in {!Prelude.Ibits}
      words (in-window and not statically blocked, in heuristic-rank space),
      so classifying a slot walks set bits instead of all [n] tasks, and the
      per-node hot path allocates nothing (reused frame buffers, one
      max-sized combination cursor advanced with {!Prelude.Combi.next_k});

    - {b state-dominance memoization}: a search state is fully described by
      [(t, rem)] — the slot to decide and the per-job remaining demand —
      and the exploration below it is a deterministic function of that
      pair.  States refuted by exhausting every subset are recorded in a
      transposition table that doubles from a tiny initial size toward the
      [memo_mb] cap (direct-mapped, replace on collision) keyed by an
      incrementally maintained Zobrist hash;
      pruning compares the {e full} rem vector, so collisions cost a missed
      prune, never a wrong verdict.  Entries are written only on genuine
      exhaustion — never on a budget stop, never while enumerating work
      items for the parallel phase — so [Infeasible] remains a proof.
      Entries are epoch-stamped: rebinding a pooled engine to the next
      instance invalidates the whole table in O(1) by bumping the epoch,
      which is what makes cross-solve engine reuse sound;

    - {b aggregate capacity bound}: a state with more remaining work than
      [m · (T − t)] slot-units left fails immediately (urgency propagation
      keeps every unfinished job's window open, so all remaining work
      competes for those units);

    - {b nogood learning}: on top of the exact-key memo, each genuinely
      exhausted subtree root is recorded as a (slot, remaining-demand)
      {e dominance nogood}: an exhausted [(t, rem₀)] refutes every
      [(t, rem)] with [rem ≥ rem₀] pointwise (deleting the extra units
      from a feasible completion of the harder state yields one for
      [rem₀]; DESIGN.md §7c), so pruning knowledge transfers across
      sibling branches the exact-key table cannot connect.  Nogoods
      live in per-slot chains (bounded scan, move-to-front), their
      vectors in a {!Prelude.Arena}, their chain heads in a
      {!Prelude.Epoch_dict}; the store shares the [memo_mb] budget with
      the memo and evicts its least-active half, deterministically,
      when full.  [nogoods:false] turns learning off (ablation);

    - {b engine pooling and epoch reuse}: each domain caches one warm
      engine (frames, rem and hash buffers, the memo table, the nogood
      store) plus context scratch (eligibility bitsets, the
      arena-backed Zobrist table); back-to-back solves rebind instead
      of reallocating — tables are invalidated by O(1) epoch bumps —
      and the parallel phase draws its worker domains from {!Pool}, so
      a bench campaign of hundreds of millisecond-sized instances pays
      for neither [Domain.spawn] nor table zeroing per instance;

    - {b work-stealing parallel search} ({!solve_parallel}): after a
      cheap sequential probe (static tree-size estimate, then a bounded
      node burst) fails to decide the instance, workers explore subtrees
      drawn from per-worker lock-free Chase-Lev deques
      ({!Prelude.Deque}).  Splitting is lazy and depth-adaptive: a worker
      expands an item into its children (the surviving assignments of
      one slot) while the item is shallow or the worker's own deque has
      run dry, and deep-solves it otherwise; idle workers steal from
      random victims.  First [Feasible] wins and stops the race;
      [Infeasible] requires a pending-work counter to reach zero with no
      worker budget-limited; anything cut short degrades to [Limit].

    Verdict-equivalent to {!Solver} with [urgency:true] (property-tested in
    [test/test_csp2.ml]); node counts are lower, not equal, because the
    memo table and the capacity bound prune. *)

type stats = {
  nodes : int;  (** Slot assignments tried (summed over workers). *)
  fails : int;  (** Dead ends: overloads, capacity cuts, memo hits, exhaustions. *)
  memo_hits : int;  (** Lookups that pruned a known-infeasible state. *)
  memo_misses : int;
  memo_stores : int;
  nogood_hits : int;  (** Chain scans that found a dominating nogood. *)
  nogood_misses : int;  (** Chain scans that found none (ran on memo miss). *)
  nogood_stores : int;  (** Nogoods recorded (post-subsumption). *)
  nogood_evicted : int;  (** Entries dropped by activity-based eviction. *)
  subtrees : int;  (** Work items deep-solved to the horizon (0 = sequential). *)
  pulls : int;  (** Work items taken from a worker's own deque. *)
  steals : int;  (** Work items taken from {e another} worker's deque. *)
  parks : int;  (** Times an idle worker slept after finding nothing to steal. *)
  max_time_reached : int;
  time_s : float;
}

val hit_rate_pct : hits:int -> misses:int -> float
(** [100 · hits / (hits + misses)], or [0.] with no lookups at all — the
    rate the CLI and the bench report next to the raw counters. *)

val default_memo_mb : int
(** 64 MiB; an explicit upper bound on {e combined} table memory (the
    nogood store takes an eighth of the bytes, the memo the rest), not a
    reservation. *)

val default_probe_nodes : int
(** 4096: the sequential-burst node cap of {!solve_parallel}'s probe. *)

val to_stats : backend:string -> stats -> Telemetry.Stats.t
(** The unified telemetry view: the memo and work-distribution counters
    map to their namesake fields, [max_time_reached] to [depth]. *)

val reset_caches : unit -> unit
(** Drop the calling domain's warm engine and context scratch, so its
    next solve allocates everything from scratch.  Exists for the
    batch-reuse bench (honest fresh-vs-warm comparison) and for tests;
    pooled worker domains keep their own caches. *)

val solve :
  ?heuristic:Heuristic.t ->
  ?budget:Prelude.Timer.budget ->
  ?domains:Analysis.Domains.t ->
  ?memo_mb:int ->
  ?nogoods:bool ->
  Rt_model.Taskset.t ->
  m:int ->
  Encodings.Outcome.t * stats
(** Sequential entry point.  [memo_mb <= 0] disables the transposition
    table {e and} the nogood store (the capacity bound stays on); so do
    per-job demands above 65535, where memo keys would no longer pack
    into two bytes.  [nogoods] (default [true]) toggles dominance-nogood
    learning alone; the verdict never depends on it.
    @raise Invalid_argument as {!Solver.solve}. *)

val solve_parallel :
  ?heuristic:Heuristic.t ->
  ?budget:Prelude.Timer.budget ->
  ?domains:Analysis.Domains.t ->
  ?memo_mb:int ->
  ?nogoods:bool ->
  ?jobs:int ->
  ?split_depth:int ->
  ?probe_nodes:int ->
  Rt_model.Taskset.t ->
  m:int ->
  Encodings.Outcome.t * stats
(** Work-stealing parallel search across [jobs] domains (default
    {!Prelude.Parallel.recommended_jobs}, so [1] on a single-core box);
    [memo_mb] is split evenly across workers.  [jobs <= 1] or
    [split_depth = 0] falls back to {!solve}'s sequential loop, and so
    does any instance the probe decides: a static tree-size estimate
    under [probe_nodes] skips parallel setup outright, otherwise a
    sequential burst of at most [probe_nodes] nodes (default
    {!default_probe_nodes}) runs first and its memo entries stay warm
    for worker 0.  [probe_nodes <= 0] disables the probe and forces the
    parallel phase — tests use this to exercise the deques on small
    instances.  [split_depth] (default 2, clamped to [T − 1]) is the
    depth below which items are always expanded rather than deep-solved;
    beyond it workers still split adaptively (up to [split_depth + 4])
    whenever their own deque runs dry.  Deterministic in its verdict —
    [Feasible]/[Infeasible] never depends on [jobs] — though which
    witness schedule is returned may (any returned schedule verifies).
    The wall budget is honored in all phases; node budgets apply per
    engine. *)
