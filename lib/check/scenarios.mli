(** The model-checked scenarios: closed concurrent programs over the
    instrumented instantiations of {!Prelude.Deque}, {!Prelude.Race},
    {!Prelude.Epoch_dict}, {!Csp2.Pool_proto} and
    {!Telemetry.Ringcore}, each asserting the
    invariant its production call site relies on.  See DESIGN.md §10
    for the catalogue and the per-scenario exploration mode. *)

type t = {
  name : string;
  descr : string;
  mode : Engine.mode;
  body : unit -> unit;
  mutation : bool;
      (** deliberately broken variant: excluded from the default suite,
          run only by the CLI's mutation gate, which {e expects} the
          checker to find a violation *)
}

val all : t list
val find : string -> t option
