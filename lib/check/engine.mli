(** A stateless concurrency model checker on OCaml 5 effects.

    The lock-free core of this repo ({!Prelude.Deque}, {!Prelude.Race},
    {!Csp2.Pool_proto}, {!Telemetry.Ringcore}) is functorized over
    {!Prelude.Sync} signatures; {!Shim} is the instrumented
    instantiation.  Every shared operation in a shim performs a
    scheduling-point effect before executing, so the checker — one OS
    thread, cooperative fibers, one-shot continuations — controls
    exactly which fiber takes the next shared step and can enumerate
    interleavings systematically.  The memory model is sequential
    consistency, which matches OCaml's [Atomic].

    Modeling choices a scenario author must know:
    - blocking ([Mutex.lock], [Condition.wait], [Thread.join]) is
      modeled by enabledness, never by spinning; a deadlock is reported
      when some fiber is unfinished and nothing is schedulable;
    - there are no spurious condition wakeups: a waiter runs again only
      after a signal/broadcast (then re-acquires the mutex as its next
      step).  This is stricter than POSIX in the direction that matters:
      protocols proven live here are live under spurious wakeups too iff
      they re-check their predicate in a loop — which the lint's
      companion review and the scenarios both enforce;
    - scenario code between two shared operations runs atomically, so
      plain [ref]s are safe for single-fiber bookkeeping (and only for
      that).

    Exploration is stateless re-execution over schedule prefixes:
    - [Exhaustive {preemptions = None}]: every interleaving, pruned by
      sleep sets (Godefroid) — sound and complete for the safety
      invariants asserted by scenarios;
    - [Exhaustive {preemptions = Some k}]: CHESS-style preemption
      bounding for scenarios whose full trees are intractable; sleep
      sets are deliberately off in this mode (the naive combination is
      unsound);
    - [Random {walks; seed}]: seeded uniform walks, deterministic given
      the seed; no coverage guarantee. *)

type opdesc =
  | Op_start
  | Op_get of int
  | Op_set of int
  | Op_exchange of int
  | Op_cas of int
  | Op_faa of int
  | Op_lock of int
  | Op_unlock of int
  | Op_wait of int * int
  | Op_reacquire of int
  | Op_signal of int
  | Op_broadcast of int
  | Op_spawn of int
  | Op_join of int
  | Op_relax

val op_to_string : opdesc -> string

exception Invariant of string
(** A broken scenario invariant or a synchronization-protocol error the
    scheduler itself detected (unlock of an unheld mutex, [wait]
    without holding the lock, …). *)

val ensure : bool -> string -> unit
(** [ensure cond msg] raises {!Invariant} [msg] unless [cond] — the
    assertion primitive scenarios use, so a failure carries the
    violating schedule. *)

exception Budget_exceeded of string
(** The exploration outgrew its execution or step caps.  Not a
    concurrency bug — a hard error, so CI never silently
    under-explores. *)

module Shim : Prelude.Sync.PRIMS
(** The instrumented primitives.  Usable only inside {!explore} /
    {!replay} (operations perform effects the scheduler handles);
    calling them elsewhere raises [Effect.Unhandled]. *)

type mode =
  | Exhaustive of { preemptions : int option }
  | Random of { walks : int; seed : int }

type violation = {
  v_kind : string;
  v_schedule : (int * opdesc) list;
      (** executed steps, oldest first: fiber id, operation *)
}

type outcome = {
  executions : int;
  choice_points : int;
  max_depth : int;
  violation : violation option;
}

val pp_violation : Format.formatter -> violation -> unit

val explore : ?max_execs:int -> mode -> (unit -> unit) -> outcome
(** [explore mode scenario] systematically runs [scenario] (the body of
    fiber 0, which spawns the others through {!Shim.Thread.spawn})
    under [mode].  Stops at the first violation; [max_execs] (default
    2e6) caps the number of executions, {!Budget_exceeded} past it. *)

val replay : (unit -> unit) -> (int * opdesc) list -> violation option
(** [replay scenario schedule] re-executes a recorded (violating)
    schedule step by step.  Returns the violation it reproduces, [None]
    if the schedule no longer triggers one (i.e. the code under test
    changed). *)
