(* The checked scenarios: small closed programs over the instrumented
   instantiations of the repo's lock-free primitives, each asserting
   the invariant its production call site relies on.

   Scenario-writing rules (enforced by review, relied on by the
   engine):
   - shared state goes through Engine.Shim primitives, full stop;
   - plain refs are only written by a single fiber (per-fiber
     bookkeeping), and only read by others after a join;
   - scenarios are deterministic given the schedule: no time, no
     randomness, no I/O. *)

open Engine

(* The structures under test, instantiated over the instrumented
   primitives.  Same functor bodies as production — that is the point. *)
module DQ = Prelude.Deque.Make (Shim.Atomic)
module RC = Prelude.Race.Make (Shim.Atomic)
module RG = Telemetry.Ringcore.Make (Shim.Atomic)
module ED = Prelude.Epoch_dict.Make (Shim.Atomic)
module PP = Csp2.Pool_proto.Make (Shim)
module T = Shim.Thread

type t = {
  name : string;
  descr : string;
  mode : Engine.mode;
  body : unit -> unit;
  mutation : bool;
      (* true: deliberately broken variant, excluded from the default
         suite; the CLI's mutation gate runs it expecting a violation *)
}

(* ------------------------------------------------------------------ *)
(* Deque: multiset preservation and single-take.                       *)

let sorted l = List.sort_uniq Int.compare l

(* One element, owner pops while a thief steals: the top CAS must
   arbitrate so exactly one of them gets it. *)
let deque_pop_vs_steal () =
  let d = DQ.create ~capacity:2 () in
  DQ.push d 1;
  let stolen = ref None in
  let th = T.spawn (fun () -> (stolen := DQ.steal d) [@lint.racy_ok "single writer, read after join"]) in
  let popped = DQ.pop d in
  T.join th;
  let got =
    (match popped with Some x -> [ x ] | None -> [])
    @ (match !stolen with Some x -> [ x ] | None -> [])
  in
  ensure (got = [ 1 ]) "single element must be taken exactly once"

(* Owner pushes past capacity (buffer growth) while a thief steals
   concurrently: every element is taken exactly once overall, by
   whichever side. *)
let deque_grow_during_steal () =
  let d = DQ.create ~capacity:2 () in
  DQ.push d 1;
  DQ.push d 2;
  let stolen = ref [] in
  let th =
    T.spawn
      ((fun () ->
         (match DQ.steal d with Some x -> stolen := x :: !stolen | None -> ());
         match DQ.steal d with Some x -> stolen := x :: !stolen | None -> ())
      [@lint.racy_ok "single writer, read after join"])
  in
  (* Capacity 2 is full: this push grows the buffer under the thief. *)
  DQ.push d 3;
  DQ.push d 4;
  let popped = ref [] in
  let rec drain () =
    match DQ.pop d with
    | Some x ->
      popped := x :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  T.join th;
  ensure
    (sorted (!stolen @ !popped) = [ 1; 2; 3; 4 ])
    "multiset not preserved across concurrent grow/steal/pop"

(* ------------------------------------------------------------------ *)
(* Race: at most one winner, stop implies decided-or-cancelled.        *)

let race_unique_winner () =
  let r = RC.create () in
  let wins = Array.make 3 false in
  let spawn_claim slot =
    T.spawn (fun () -> (wins.(slot) <- RC.claim r slot) [@lint.racy_ok "per-fiber slot, read after join"])
  in
  let t0 = spawn_claim 0 in
  let t1 = spawn_claim 1 in
  let t2 = spawn_claim 2 in
  T.join t0;
  T.join t1;
  T.join t2;
  let winners = List.filter (fun s -> wins.(s)) [ 0; 1; 2 ] in
  ensure (List.length winners = 1) "exactly one claim must win";
  ensure (RC.winner r = List.hd winners) "winner slot must match the winning claim";
  ensure (RC.stopped r) "a decided race must be stopped"

let race_cancel_vs_claim () =
  let r = RC.create () in
  let won = ref false in
  let canceller = T.spawn (fun () -> RC.cancel r) in
  let claimant =
    T.spawn (fun () -> (won := RC.claim r 1) [@lint.racy_ok "single writer, read after join"])
  in
  T.join canceller;
  T.join claimant;
  ensure (RC.stopped r) "cancel must leave the race stopped";
  (* Cancellation does not decide the race: the sole claimant still
     wins the slot, in every interleaving. *)
  ensure !won "sole claim must succeed even against cancel";
  ensure (RC.winner r = 1) "winner must be the sole claimant"

(* ------------------------------------------------------------------ *)
(* Pool protocol: completion barrier and the run/park handshake.       *)

(* Two arrivers, one awaiter: await must always return — the classic
   lost-wakeup shape (counter decremented outside the lock, broadcast
   under it) is what is being checked. *)
let barrier_no_lost_wakeup () =
  let b = PP.Barrier.create 2 in
  let t0 = T.spawn (fun () -> PP.Barrier.arrive b) in
  let t1 = T.spawn (fun () -> PP.Barrier.arrive b) in
  PP.Barrier.await b;
  T.join t0;
  T.join t1

(* The regression scenario for the pool job-slot race: a worker runs
   two back-to-back jobs, with the second assigned as soon as the
   first's barrier arrives — i.e. while the worker may still be between
   [f ()] and its re-lock.  With the production protocol every
   interleaving completes; with [defer_job_clear:true] (the historical
   bug, reverted behind the flag) the late [w.job <- None] can destroy
   the second assignment and the checker finds the hang. *)
let pool_handshake ~defer_job_clear () =
  let w = PP.make_worker () in
  let th = T.spawn (fun () -> PP.worker_loop ~defer_job_clear w) in
  let hits = ref 0 in
  let b1 = PP.Barrier.create 1 in
  PP.assign w (fun () ->
      (incr hits) [@lint.racy_ok "write ordered by the barrier it precedes"];
      PP.Barrier.arrive b1);
  PP.Barrier.await b1;
  let b2 = PP.Barrier.create 1 in
  PP.assign w (fun () ->
      (incr hits) [@lint.racy_ok "write ordered by the barrier it precedes"];
      PP.Barrier.arrive b2);
  PP.Barrier.await b2;
  ensure (!hits = 2) "both assigned jobs must have run";
  PP.retire w;
  T.join th

(* Retire racing an in-flight assignment: the job must still run. *)
let pool_retire_after_assign () =
  let w = PP.make_worker () in
  let th = T.spawn (fun () -> PP.worker_loop w) in
  let hits = ref 0 in
  let b = PP.Barrier.create 1 in
  PP.assign w (fun () ->
      (incr hits) [@lint.racy_ok "write ordered by the barrier it precedes"];
      PP.Barrier.arrive b);
  PP.retire w;
  PP.Barrier.await b;
  T.join th;
  ensure (!hits = 1) "assigned job must run even when retire races it"

(* ------------------------------------------------------------------ *)
(* Epoch dictionary: rebind (clear + set) vs an in-flight find.        *)

(* The engine-pool reuse shape: a pooled engine rebinds its nogood
   chain heads (one [clear], then new bindings) while a lookup from the
   previous solve could still be in flight.  The epoch protocol must
   keep that lookup honest — it may return the pre-clear binding, the
   post-clear binding, or nothing, but never a torn mix; and once the
   rebind has happened-before the lookup, only the new binding. *)
let epoch_dict_clear_vs_find () =
  let d = ED.create ~capacity:4 () in
  ED.set d 7 1;
  let seen = ref (Some (-1)) in
  let th =
    T.spawn (fun () -> (seen := ED.find d 7) [@lint.racy_ok "single writer, read after join"])
  in
  ED.clear d;
  ED.set d 7 2;
  T.join th;
  ensure
    (match !seen with Some 1 | Some 2 | None -> true | Some _ -> false)
    "racy find must see the old binding, the new binding, or nothing";
  ensure (ED.find d 7 = Some 2) "post-join find must see the rebind";
  ensure (ED.epoch d = 1 && ED.length d = 1) "one clear, one live binding"

(* ------------------------------------------------------------------ *)
(* Telemetry ring core: registration race and overflow accounting.     *)

let ring_register_race () =
  let rc : int RG.t = RG.create ~capacity:2 () in
  let writer v () =
    let b = RG.fresh_buffer rc ~tid:v in
    RG.register rc b;
    RG.record b v
  in
  let t1 = T.spawn (writer 1) in
  let t2 = T.spawn (writer 2) in
  T.join t1;
  T.join t2;
  ensure (sorted (RG.drain rc) = [ 1; 2 ]) "concurrent registration lost a buffer"

let ring_overflow_conservation () =
  let rc : int RG.t = RG.create ~capacity:2 () in
  let total = 5 in
  let th =
    T.spawn (fun () ->
        let b = RG.fresh_buffer rc ~tid:0 in
        RG.register rc b;
        for i = 1 to total do
          RG.record b i
        done)
  in
  T.join th;
  let kept = RG.drain rc in
  ensure
    (List.length kept + RG.dropped rc = total)
    "kept + dropped must equal records written";
  ensure (sorted kept = [ 4; 5 ]) "overflow must drop oldest-first";
  (* Epoch flip orphans the ring: nothing left to drain or count. *)
  RG.new_epoch rc;
  ensure (RG.drain rc = [] && RG.dropped rc = 0) "stale buffers must not leak across epochs"

(* ------------------------------------------------------------------ *)

let exhaustive = Exhaustive { preemptions = None }

let all : t list =
  [
    {
      name = "deque-pop-vs-steal";
      descr = "single element: owner pop vs thief steal, exactly one take";
      mode = exhaustive;
      body = deque_pop_vs_steal;
      mutation = false;
    };
    {
      name = "deque-grow-during-steal";
      descr = "buffer growth under concurrent steals preserves the multiset";
      mode = Exhaustive { preemptions = Some 3 };
      body = deque_grow_during_steal;
      mutation = false;
    };
    {
      name = "race-unique-winner";
      descr = "three concurrent claims: exactly one wins, stop raised";
      mode = exhaustive;
      body = race_unique_winner;
      mutation = false;
    };
    {
      name = "race-cancel-vs-claim";
      descr = "cancel racing a claim: stopped either way, claim still decides";
      mode = exhaustive;
      body = race_cancel_vs_claim;
      mutation = false;
    };
    {
      name = "barrier-no-lost-wakeup";
      descr = "outside-lock decrement + under-lock broadcast never loses the wakeup";
      mode = exhaustive;
      body = barrier_no_lost_wakeup;
      mutation = false;
    };
    {
      name = "pool-handshake";
      descr = "two back-to-back jobs through the park/assign handshake";
      mode = exhaustive;
      body = pool_handshake ~defer_job_clear:false;
      mutation = false;
    };
    {
      name = "pool-retire-after-assign";
      descr = "retire racing an in-flight assignment still runs the job";
      mode = exhaustive;
      body = pool_retire_after_assign;
      mutation = false;
    };
    {
      name = "epoch_dict-clear-vs-find";
      descr = "rebind (clear + set) vs in-flight find: stale epoch never serves a torn binding";
      mode = exhaustive;
      body = epoch_dict_clear_vs_find;
      mutation = false;
    };
    {
      name = "ring-register-race";
      descr = "concurrent CAS-cons registrations both land";
      mode = exhaustive;
      body = ring_register_race;
      mutation = false;
    };
    {
      name = "ring-overflow-conservation";
      descr = "ring overflow drops oldest-first and counts every drop";
      mode = exhaustive;
      body = ring_overflow_conservation;
      mutation = false;
    };
    {
      name = "pool-defer-clear";
      descr =
        "MUTATION: job slot cleared after the job (the reverted PR-6 bug) — must hang";
      mode = exhaustive;
      body = pool_handshake ~defer_job_clear:true;
      mutation = true;
    };
  ]

let find name = List.find_opt (fun s -> s.name = name) all
