(* A stateless concurrency model checker on OCaml 5 effects.

   The pieces under test (Deque, Race, Pool_proto, Ringcore) are
   functors over the Sync signatures; this module provides the
   instrumented instantiation (Shim) plus the scheduler that drives it.
   Every shared operation in a shim performs a [Sched] effect *before*
   executing; the scheduler captures the fiber's continuation at that
   point, so the set of captured continuations is exactly the frontier
   of the interleaving tree, and resuming one fiber runs it atomically
   up to its next shared operation (the whole checker is one OS thread —
   atomicity of the resumed slice is by construction).  Sequential
   consistency of the model matches OCaml's Atomic.

   Exploration is stateless: a state is identified by the schedule
   prefix that reaches it, and visiting a node re-executes the scenario
   from scratch under that prefix.  Scenarios are a few dozen shared ops,
   so a replay is microseconds; determinism of replay is guaranteed
   because scenarios are pure OCaml over shim state (no time, no I/O).

   Two reduction modes, deliberately not combined:
   - [Exhaustive {preemptions = None}] explores every interleaving,
     pruned by sleep sets (Godefroid): after the subtree reached by
     running fiber [t] from node [n] is fully explored, [t] sleeps in
     the later siblings of that subtree until an op *dependent* with
     [t]'s pending op executes.  Sound and complete for the safety
     properties asserted here.
   - [Exhaustive {preemptions = Some k}] bounds *preemptive* context
     switches (CHESS): switching away from a fiber that is still
     enabled costs 1, switching away from a blocked/done fiber is free.
     Sleep sets are OFF in this mode — combining them naively is
     unsound (a sleeping sibling may only be reachable under a schedule
     the bound forbids, and the sleep set would then prune it from the
     budgeted subtree too).  Used for the deque scenarios, whose
     unbounded trees are astronomically large; bound 2–3 covers every
     published Chase–Lev bug shape.
   - [Random] does seeded uniform walks: no guarantees, deterministic
     given the seed, used as a cheap smoke layer and to test the
     engine's own determinism.

   Blocking is modeled by *enabledness*, not by spinning: a fiber whose
   pending op is [Lock]/[Reacquire] on a held mutex, [Join] on a live
   fiber, or that sits in a condition's wait queue is simply not
   schedulable.  No spurious wakeups: a [wait]er runs again only after
   a signal/broadcast moves it to the reacquire state (documented
   divergence from POSIX, on the strict side for liveness: code that
   relies on spurious wakeups to terminate would deadlock here —
   but such code is already wrong under the invariants we check).
   Deadlock = some fiber undone and nothing enabled. *)

type opdesc =
  | Op_start  (* a spawned fiber's first slice *)
  | Op_get of int
  | Op_set of int
  | Op_exchange of int
  | Op_cas of int
  | Op_faa of int
  | Op_lock of int
  | Op_unlock of int
  | Op_wait of int * int  (* cond, mutex *)
  | Op_reacquire of int   (* synthesized: the mutex re-take after a wakeup *)
  | Op_signal of int
  | Op_broadcast of int
  | Op_spawn of int  (* child fid *)
  | Op_join of int
  | Op_relax

let op_to_string = function
  | Op_start -> "start"
  | Op_get l -> Printf.sprintf "get a%d" l
  | Op_set l -> Printf.sprintf "set a%d" l
  | Op_exchange l -> Printf.sprintf "exchange a%d" l
  | Op_cas l -> Printf.sprintf "cas a%d" l
  | Op_faa l -> Printf.sprintf "fetch_and_add a%d" l
  | Op_lock m -> Printf.sprintf "lock m%d" m
  | Op_unlock m -> Printf.sprintf "unlock m%d" m
  | Op_wait (c, m) -> Printf.sprintf "wait c%d (releasing m%d)" c m
  | Op_reacquire m -> Printf.sprintf "reacquire m%d" m
  | Op_signal c -> Printf.sprintf "signal c%d" c
  | Op_broadcast c -> Printf.sprintf "broadcast c%d" c
  | Op_spawn t -> Printf.sprintf "spawn t%d" t
  | Op_join t -> Printf.sprintf "join t%d" t
  | Op_relax -> "cpu_relax"

exception Invariant of string
(* Raised by scenarios (via [ensure]) and by the scheduler itself on
   protocol violations (unlock of an unheld mutex, wait without the
   lock). *)

let ensure cond msg = if not cond then raise (Invariant msg)

(* ------------------------------------------------------------------ *)
(* The world: one per execution, reachable by the shims through a
   global — the checker is strictly single-threaded, so a global
   current-world is race-free by construction. *)

type fstate =
  | Not_started of (unit -> unit)
  | Runnable of opdesc * (unit, unit) Effect.Deep.continuation
  | Blocked of int * int * (unit, unit) Effect.Deep.continuation
      (* parked in cond [c]'s wait queue, will reacquire mutex [m] *)
  | Done

type fiber = { fid : int; mutable state : fstate }
type mutex_st = { mutable holder : int option }
type cond_st = { mutable waiters : int list (* FIFO *) }

type world = {
  mutable fibers : fiber list;  (* reversed: fid = length - 1 - index *)
  mutable nfibers : int;
  mutable mutexes : mutex_st list;
  mutable nmutexes : int;
  mutable conds : cond_st list;
  mutable nconds : int;
  mutable next_loc : int;
  mutable trace : (int * opdesc) list;  (* reversed executed schedule *)
}

let dummy_world () =
  {
    fibers = [];
    nfibers = 0;
    mutexes = [];
    nmutexes = 0;
    conds = [];
    nconds = 0;
    next_loc = 0;
    trace = [];
  }

let the_world = ref (dummy_world ())

let nth_rev l n len = List.nth l (len - 1 - n)
let fiber w fid = nth_rev w.fibers fid w.nfibers
let mutex w m = nth_rev w.mutexes m w.nmutexes
let cond w c = nth_rev w.conds c w.nconds

let new_fiber w body =
  let fid = w.nfibers in
  w.fibers <- { fid; state = Not_started body } :: w.fibers;
  w.nfibers <- fid + 1;
  fid

(* ------------------------------------------------------------------ *)
(* Instrumented primitives.  Each shared operation is: one [Sched]
   effect (the interleaving point), then the operation itself run
   atomically on plain mutable state. *)

type _ Effect.t +=
  | Sched : opdesc -> unit Effect.t
  | Spawn : (unit -> unit) -> int Effect.t

module Shim : Prelude.Sync.PRIMS = struct
  module Atomic = struct
    type 'a t = { id : int; mutable v : 'a }

    let make v =
      let w = !the_world in
      let id = w.next_loc in
      w.next_loc <- id + 1;
      { id; v }

    let get r =
      Effect.perform (Sched (Op_get r.id));
      r.v

    let set r x =
      Effect.perform (Sched (Op_set r.id));
      r.v <- x

    let exchange r x =
      Effect.perform (Sched (Op_exchange r.id));
      let old = r.v in
      r.v <- x;
      old

    (* Physical equality, like Stdlib.Atomic. *)
    let compare_and_set r old next =
      Effect.perform (Sched (Op_cas r.id));
      if r.v == old then begin
        r.v <- next;
        true
      end
      else false

    let fetch_and_add r d =
      Effect.perform (Sched (Op_faa r.id));
      let old = r.v in
      r.v <- old + d;
      old

    let incr r = ignore (fetch_and_add r 1)
    let decr r = ignore (fetch_and_add r (-1))
  end

  module Mutex = struct
    type t = int

    let create () =
      let w = !the_world in
      let m = w.nmutexes in
      w.mutexes <- { holder = None } :: w.mutexes;
      w.nmutexes <- m + 1;
      m

    (* The scheduler performs the acquire/release transitions; a fiber
       pending on [lock] is simply unschedulable while the mutex is
       held (self-deadlock on relock included, as in Stdlib.Mutex). *)
    let lock m = Effect.perform (Sched (Op_lock m))
    let unlock m = Effect.perform (Sched (Op_unlock m))
  end

  module Condition = struct
    type t = int
    type mutex = int

    let create () =
      let w = !the_world in
      let c = w.nconds in
      w.conds <- { waiters = [] } :: w.conds;
      w.nconds <- c + 1;
      c

    let wait c m = Effect.perform (Sched (Op_wait (c, m)))
    let signal c = Effect.perform (Sched (Op_signal c))
    let broadcast c = Effect.perform (Sched (Op_broadcast c))
  end

  module Thread = struct
    type t = int

    let spawn f = Effect.perform (Spawn f)
    let join t = Effect.perform (Sched (Op_join t))
    let cpu_relax () = Effect.perform (Sched Op_relax)
  end
end

(* ------------------------------------------------------------------ *)
(* Scheduler: run one fiber for one slice. *)

let current : fiber ref = ref { fid = -1; state = Done }

let handler : (unit, unit) Effect.Deep.handler =
  {
    retc = (fun () -> !current.state <- Done);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Sched op ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              !current.state <- Runnable (op, k))
        | Spawn f ->
          Some
            (fun (k : (a, unit) Effect.Deep.continuation) ->
              let fid = new_fiber !the_world f in
              let w = !the_world in
              w.trace <- (!current.fid, Op_spawn fid) :: w.trace;
              Effect.Deep.continue k fid)
        | _ -> None);
  }

let is_done w fid = match (fiber w fid).state with Done -> true | _ -> false

let enabled w f =
  match f.state with
  | Done | Blocked _ -> false
  | Not_started _ -> true
  | Runnable (op, _) -> (
    match op with
    | Op_lock m | Op_reacquire m -> (mutex w m).holder = None
    | Op_join t -> is_done w t
    | _ -> true)

let wake w fid =
  let f = fiber w fid in
  match f.state with
  | Blocked (_, m, k) -> f.state <- Runnable (Op_reacquire m, k)
  | _ -> raise (Invariant "signal woke a fiber that was not waiting")

(* Execute fiber [fid]'s pending slice.  Caller guarantees enabledness. *)
let step w fid =
  let f = fiber w fid in
  match f.state with
  | Done | Blocked _ -> raise (Invariant "scheduled an unrunnable fiber")
  | Not_started body ->
    w.trace <- (fid, Op_start) :: w.trace;
    current := f;
    Effect.Deep.match_with body () handler
  | Runnable (op, k) ->
    w.trace <- (fid, op) :: w.trace;
    current := f;
    let continue () = Effect.Deep.continue k () in
    (match op with
    | Op_lock m | Op_reacquire m ->
      (mutex w m).holder <- Some fid;
      continue ()
    | Op_unlock m ->
      let mu = mutex w m in
      if mu.holder <> Some fid then raise (Invariant "unlock of a mutex not held");
      mu.holder <- None;
      continue ()
    | Op_wait (c, m) ->
      let mu = mutex w m in
      if mu.holder <> Some fid then raise (Invariant "wait without holding the mutex");
      mu.holder <- None;
      let cv = cond w c in
      cv.waiters <- cv.waiters @ [ fid ];
      f.state <- Blocked (c, m, k)
    | Op_signal c ->
      let cv = cond w c in
      (match cv.waiters with
      | [] -> ()
      | fid' :: rest ->
        cv.waiters <- rest;
        wake w fid');
      continue ()
    | Op_broadcast c ->
      let cv = cond w c in
      let ws = cv.waiters in
      cv.waiters <- [];
      List.iter (wake w) ws;
      continue ()
    | Op_start | Op_spawn _ -> raise (Invariant "impossible pending op")
    | Op_get _ | Op_set _ | Op_exchange _ | Op_cas _ | Op_faa _ | Op_join _ | Op_relax ->
      continue ())

(* ------------------------------------------------------------------ *)
(* Dependence, for sleep sets.  Conservative: anything not provably
   commuting is dependent (more dependence = less pruning = still
   sound). *)

let footprint = function
  | Op_get l | Op_set l | Op_exchange l | Op_cas l | Op_faa l -> `Loc l
  | Op_lock m | Op_unlock m | Op_reacquire m -> `Mutex m
  | Op_wait (c, m) -> `Cond_mutex (c, m)
  | Op_signal c | Op_broadcast c -> `Cond c
  | Op_relax -> `Pure
  | Op_start | Op_spawn _ | Op_join _ -> `Global

let is_load = function Op_get _ -> true | _ -> false

let independent a b =
  match (footprint a, footprint b) with
  | `Pure, _ | _, `Pure -> true
  | `Global, _ | _, `Global -> false
  | `Loc i, `Loc j -> i <> j || (is_load a && is_load b)
  | `Mutex i, `Mutex j -> i <> j
  | `Mutex i, `Cond_mutex (_, j) | `Cond_mutex (_, j), `Mutex i -> i <> j
  | `Cond i, `Cond j -> i <> j
  | `Cond i, `Cond_mutex (j, _) | `Cond_mutex (j, _), `Cond i -> i <> j
  | `Cond_mutex (c1, m1), `Cond_mutex (c2, m2) -> c1 <> c2 && m1 <> m2
  | `Loc _, (`Mutex _ | `Cond _ | `Cond_mutex _) | (`Mutex _ | `Cond _ | `Cond_mutex _), `Loc _
    ->
    true
  | `Mutex _, `Cond _ | `Cond _, `Mutex _ -> true

(* ------------------------------------------------------------------ *)
(* Exploration. *)

type mode =
  | Exhaustive of { preemptions : int option }
  | Random of { walks : int; seed : int }

type violation = {
  v_kind : string;
  v_schedule : (int * opdesc) list;  (* executed steps, oldest first *)
}

type outcome = {
  executions : int;  (* complete (non-pruned) interleavings run *)
  choice_points : int;  (* scheduler decisions with >= 2 candidates *)
  max_depth : int;
  violation : violation option;
}

let pp_violation ppf v =
  Format.fprintf ppf "violation: %s@.schedule (%d steps, replayable):@." v.v_kind
    (List.length v.v_schedule);
  List.iteri
    (fun i (fid, op) -> Format.fprintf ppf "  %3d. t%d: %s@." i fid (op_to_string op))
    v.v_schedule

let violation_of_exn e w =
  let kind =
    match e with
    | Invariant msg -> "invariant broken: " ^ msg
    | e -> "exception: " ^ Printexc.to_string e
  in
  { v_kind = kind; v_schedule = List.rev w.trace }

let pending_of f =
  match f.state with
  | Not_started _ -> Op_start
  | Runnable (op, _) -> op
  | Blocked _ | Done -> Op_relax  (* unschedulable; never consulted *)

let enabled_fids w = List.rev (List.filter_map (fun f -> if enabled w f then Some f.fid else None) w.fibers)

exception Budget_exceeded of string
(* Not a concurrency bug: the exploration itself outgrew its caps.
   Surfaced as a hard error so CI never silently under-explores. *)

let step_limit = 20_000

(* One execution: replay [prefix], then extend with the default policy
   (keep running the last fiber while it is enabled and not sleeping,
   else lowest-numbered candidate) to completion, recording every
   decision taken past the prefix so the caller can branch there. *)
type snap = {
  s_prefix : int list;  (* reversed schedule up to (excluding) this decision *)
  s_cands : (int * opdesc) list;  (* candidate fid -> its pending op *)
  s_chosen : int;
  s_sleep : (int * opdesc) list;
  s_last : int;
  s_preempts : int;
}

type run_result =
  | Completed
  | Pruned  (* sleep set emptied the candidates: subtree covered elsewhere *)
  | Violated of violation

let run_one scenario ~prefix ~sleep0 =
  let w = dummy_world () in
  the_world := w;
  ignore (new_fiber w scenario);
  let snaps = ref [] in
  let sleep = ref sleep0 in
  let last = ref (-1) in
  let preempts = ref 0 in
  let sched = ref [] in  (* reversed fids *)
  let depth = ref 0 in
  let result = ref Completed in
  (try
     let take fid =
       if not (enabled w (fiber w fid)) then raise (Invariant "schedule picks a disabled fiber");
       (if !last >= 0 && fid <> !last && enabled w (fiber w !last) then incr preempts);
       step w fid;
       sched := fid :: !sched;
       last := fid;
       incr depth;
       if !depth > step_limit then
         raise (Budget_exceeded (Printf.sprintf "execution exceeded %d steps" step_limit))
     in
     (* [sleep0] describes the state *after* the prefix, so the
        dependence-based wakeups below only apply past it. *)
     List.iter take prefix;
     let rec extend () =
       let en = enabled_fids w in
       if en = [] then begin
         if List.exists (fun f -> f.state <> Done) w.fibers then
           result := Violated { v_kind = "deadlock: no fiber enabled"; v_schedule = List.rev w.trace }
       end
       else begin
         let cands = List.filter (fun fid -> not (List.mem_assoc fid !sleep)) en in
         match cands with
         | [] -> result := Pruned
         | _ ->
           let chosen = if List.mem !last cands then !last else List.hd cands in
           let chosen_op = pending_of (fiber w chosen) in
           if List.length cands > 1 then
             snaps :=
               {
                 s_prefix = !sched;
                 s_cands = List.map (fun fid -> (fid, pending_of (fiber w fid))) cands;
                 s_chosen = chosen;
                 s_sleep = !sleep;
                 s_last = !last;
                 s_preempts = !preempts;
               }
               :: !snaps;
           take chosen;
           (* Wake sleepers whose pending op no longer commutes with
              what just ran. *)
           sleep := List.filter (fun (_, sop) -> independent sop chosen_op) !sleep;
           extend ()
       end
     in
     extend ()
   with
  | Budget_exceeded _ as e -> raise e
  | e -> result := Violated (violation_of_exn e w));
  (!result, List.rev !snaps, !depth)

let explore_exhaustive scenario ~bound ~max_execs =
  let executions = ref 0 in
  let choice_points = ref 0 in
  let max_depth = ref 0 in
  let use_sleep = bound = None in
  (* DFS by re-execution.  Each call runs one full execution from
     [prefix], then branches at its recorded decisions deepest-first
     (so a sibling enters the sleep set only after its subtree is fully
     explored). *)
  let rec explore prefix sleep0 =
    incr executions;
    if !executions > max_execs then
      raise
        (Budget_exceeded
           (Printf.sprintf "exploration exceeded %d executions" max_execs));
    let result, snaps, depth = run_one scenario ~prefix ~sleep0 in
    if depth > !max_depth then max_depth := depth;
    choice_points := !choice_points + List.length snaps;
    match result with
    | Violated v -> Some v
    | Pruned | Completed ->
      let rec branch = function
        | [] -> None
        | s :: deeper -> (
          (* Deeper snapshots first: they live inside the subtree of
             [s.s_chosen], which must be complete before the chosen
             fiber may sleep in its siblings. *)
          match branch deeper with
          | Some v -> Some v
          | None ->
            let chosen_op = List.assoc s.s_chosen s.s_cands in
            let slept = ref ((s.s_chosen, chosen_op) :: s.s_sleep) in
            let rec try_alts = function
              | [] -> None
              | (fid, op) :: rest ->
                if fid = s.s_chosen then try_alts rest
                else begin
                  let allowed =
                    match bound with
                    | None -> true
                    | Some b ->
                      (* Branching away from a still-enabled [s_last] is
                         a preemption; other switches are free. *)
                      s.s_last < 0
                      || fid = s.s_last
                      || (not (List.mem_assoc s.s_last s.s_cands))
                      || s.s_preempts < b
                  in
                  if not allowed then try_alts rest
                  else begin
                    let child_sleep =
                      if use_sleep then
                        List.filter (fun (_, sop) -> independent sop op) !slept
                      else []
                    in
                    match explore (List.rev (fid :: s.s_prefix)) child_sleep with
                    | Some v -> Some v
                    | None ->
                      if use_sleep then slept := (fid, op) :: !slept;
                      try_alts rest
                  end
                end
            in
            try_alts s.s_cands)
      in
      branch snaps
  in
  let violation = explore [] [] in
  {
    executions = !executions;
    choice_points = !choice_points;
    max_depth = !max_depth;
    violation;
  }

let explore_random scenario ~walks ~seed =
  let rng = Prelude.Prng.create ~seed in
  let executions = ref 0 in
  let choice_points = ref 0 in
  let max_depth = ref 0 in
  let violation = ref None in
  let walk () =
    let w = dummy_world () in
    the_world := w;
    ignore (new_fiber w scenario);
    let depth = ref 0 in
    try
      let rec go () =
        let en = enabled_fids w in
        match en with
        | [] ->
          if List.exists (fun f -> f.state <> Done) w.fibers then
            violation :=
              Some { v_kind = "deadlock: no fiber enabled"; v_schedule = List.rev w.trace }
        | _ ->
          if List.length en > 1 then incr choice_points;
          let fid = List.nth en (Prelude.Prng.int rng (List.length en)) in
          step w fid;
          incr depth;
          if !depth > step_limit then
            raise (Budget_exceeded (Printf.sprintf "walk exceeded %d steps" step_limit));
          go ()
      in
      go ();
      if !depth > !max_depth then max_depth := !depth
    with
    | Budget_exceeded _ as e -> raise e
    | e -> violation := Some (violation_of_exn e w)
  in
  (try
     for _ = 1 to walks do
       if !violation = None then begin
         incr executions;
         walk ()
       end
     done
   with Budget_exceeded _ as e -> raise e);
  {
    executions = !executions;
    choice_points = !choice_points;
    max_depth = !max_depth;
    violation = !violation;
  }

let default_max_execs = 2_000_000

let explore ?(max_execs = default_max_execs) mode scenario =
  match mode with
  | Exhaustive { preemptions } -> explore_exhaustive scenario ~bound:preemptions ~max_execs
  | Random { walks; seed } -> explore_random scenario ~walks ~seed

(* Re-run a recorded violating schedule, step by step.  Returns the
   violation it reproduces ([None] means the schedule no longer
   triggers — the code under test changed). *)
let replay scenario schedule =
  (* [Op_spawn] entries are trace annotations recorded mid-slice (the
     parent does not yield to spawn); they are not scheduling decisions,
     so stepping on them would double-step the parent. *)
  let fids =
    List.filter_map
      (fun (fid, op) -> match op with Op_spawn _ -> None | _ -> Some fid)
      schedule
  in
  let w = dummy_world () in
  the_world := w;
  ignore (new_fiber w scenario);
  try
    List.iter
      (fun fid ->
        if not (enabled w (fiber w fid)) then
          raise (Invariant "replay schedule picks a disabled fiber");
        step w fid)
      fids;
    let en = enabled_fids w in
    if en = [] && List.exists (fun f -> f.state <> Done) w.fibers then
      Some { v_kind = "deadlock: no fiber enabled"; v_schedule = List.rev w.trace }
    else None
  with e -> Some (violation_of_exn e w)
