(** Cheap necessary feasibility conditions.

    These are the pre-filters the paper applies before invoking a solver:
    the utilization test [U <= m] (equivalently [r <= 1], Section II) prunes
    most unsolvable instances of Table II, and two slot-granularity demand
    arguments catch further ones without any search. *)

type verdict =
  | Infeasible of string  (** Provably infeasible, with the failed test. *)
  | Unknown  (** No necessary condition violated; a solver must decide. *)

val utilization_exceeds : Taskset.t -> m:int -> bool
(** The paper's [r > 1] filter, computed exactly (no float rounding). *)

val window_overload : Taskset.t -> m:int -> bool
(** True when some single window cannot hold its own job:
    never for valid tasks ([C <= D]) on identical platforms, but possible on
    heterogeneous ones; kept for the general entry point. *)

val slot_capacity_shortfall : Taskset.t -> m:int -> bool
(** True when, over the hyperperiod, total demand [Σ C_i·T/T_i] exceeds
    [m·T] — same as {!utilization_exceeds} — or when the per-slot supply
    [min(m, #covering windows)] summed over slots cannot cover the demand.
    The second test catches instances whose windows are too sparse even
    though [r <= 1].  Costs O(total window length); skipped (returns
    [false]) when that would exceed [10^7]. *)

val quick_check : Taskset.t -> m:int -> verdict
(** Run all necessary conditions in increasing cost order. *)

type min_processors_outcome =
  | Exact of int
      (** Smallest feasible [m]; every smaller candidate was refuted, so
          this is the true minimum. *)
  | Inconclusive of { first_limit : int; feasible : int option }
      (** Some candidate hit the per-[m] budget before a feasible [m] was
          decided: [first_limit] is the smallest undecided [m] (the true
          minimum may be as low as that), [feasible] the smallest [m]
          actually proved feasible, if any — an upper bound only. *)
  | All_infeasible  (** Every [m <= max_m] was refuted. *)

val min_processors_feasible :
  solve:(m:int -> [ `Feasible | `Infeasible | `Undecided ]) ->
  Taskset.t ->
  max_m:int ->
  min_processors_outcome
(** Incremental search for the smallest feasible [m], starting from [⌈U⌉]
    (the paper's closing suggestion in Section VII-E) and stopping at the
    first [`Feasible] verdict.  A budget-limited [`Undecided] verdict is
    {e not} treated as infeasible: it demotes the final answer to
    {!Inconclusive} instead of silently inflating the reported minimum. *)
