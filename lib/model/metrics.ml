type t = {
  busy_slots : int;
  idle_slots : int;
  preemptions : int;
  migrations : int;
  max_parallelism : int;
  avg_parallelism : float;
}

let analyze ts sched =
  let horizon = Schedule.horizon sched in
  if horizon <> Taskset.hyperperiod ts then
    invalid_arg "Metrics.analyze: schedule horizon differs from the hyperperiod";
  let m = Schedule.m sched in
  let windows = Windows.build ts in
  let busy = Schedule.busy_slots sched in
  let max_par = ref 0 in
  for time = 0 to horizon - 1 do
    max_par := Int.max !max_par (List.length (Schedule.tasks_at sched ~time))
  done;
  let preemptions = ref 0 in
  let migrations = ref 0 in
  for i = 0 to Taskset.size ts - 1 do
    (* Executed (window-position, processor) pairs of each job, in window
       (release) order — Windows lists slots in that order, so a wrapped
       window is walked head-last, as the real job experiences it. *)
    let runs_of_job (job : Windows.job) =
      let acc = ref [] in
      Array.iteri
        (fun pos slot ->
          match Schedule.proc_of_task_at sched ~task:i ~time:slot with
          | Some proc -> acc := (pos, proc) :: !acc
          | None -> ())
        job.Windows.slots;
      List.rev !acc
    in
    let jobs = Array.to_list (Windows.jobs_of_task windows i) in
    let runs = List.map runs_of_job jobs in
    (* Within-job gaps and processor changes. *)
    List.iter
      (fun job_runs ->
        let rec walk = function
          | (p1, q1) :: ((p2, q2) :: _ as rest) ->
            if p2 > p1 + 1 then incr preemptions;
            if q1 <> q2 then incr migrations;
            walk rest
          | [ _ ] | [] -> ()
        in
        walk job_runs)
      runs;
    (* Across consecutive jobs (cyclically): a task resuming on another
       processor is a task migration. *)
    let endpoints =
      List.filter_map
        (fun job_runs ->
          match job_runs with
          | [] -> None
          | (_, first) :: _ ->
            let rec last = function [ (_, q) ] -> q | _ :: tl -> last tl | [] -> first in
            Some (first, last job_runs))
        runs
    in
    (match endpoints with
    | [] | [ _ ] ->
      (* A single executing job still wraps onto itself cyclically, but a
         same-job wrap is already a window-order adjacency, not a resume. *)
      ()
    | (first0, _) :: _ ->
      let rec across = function
        | (_, last1) :: (((first2, _) :: _) as rest) ->
          if last1 <> first2 then incr migrations;
          across rest
        | [ (_, last_final) ] -> if last_final <> first0 then incr migrations
        | [] -> ()
      in
      across endpoints)
  done;
  {
    busy_slots = busy;
    idle_slots = (m * horizon) - busy;
    preemptions = !preemptions;
    migrations = !migrations;
    max_parallelism = !max_par;
    avg_parallelism = float_of_int busy /. float_of_int horizon;
  }

let pp ppf t =
  Format.fprintf ppf
    "busy %d, idle %d, preemptions %d, migrations %d, parallelism max %d / avg %.2f"
    t.busy_slots t.idle_slots t.preemptions t.migrations t.max_parallelism t.avg_parallelism
