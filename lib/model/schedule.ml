type t = { cells : int array array; horizon : int }

let idle = -1

let create ~m ~horizon =
  if m < 1 || horizon < 1 then invalid_arg "Schedule.create";
  { cells = Array.make_matrix m horizon idle; horizon }

let m t = Array.length t.cells
let horizon t = t.horizon

let get t ~proc ~time =
  if proc < 0 || proc >= m t then invalid_arg "Schedule.get: bad processor";
  t.cells.(proc).(Prelude.Intmath.imod time t.horizon)

let set t ~proc ~time v =
  if proc < 0 || proc >= m t then invalid_arg "Schedule.set: bad processor";
  if v < idle then invalid_arg "Schedule.set: bad task id";
  t.cells.(proc).(Prelude.Intmath.imod time t.horizon) <- v

let copy t = { cells = Array.map Array.copy t.cells; horizon = t.horizon }

let of_cells c =
  let m = Array.length c in
  if m = 0 then invalid_arg "Schedule.of_cells: no processors";
  let horizon = Array.length c.(0) in
  if horizon = 0 then invalid_arg "Schedule.of_cells: empty horizon";
  Array.iter (fun row -> if Array.length row <> horizon then invalid_arg "Schedule.of_cells: ragged") c;
  { cells = Array.map Array.copy c; horizon }

let tasks_at t ~time =
  let slot = Prelude.Intmath.imod time t.horizon in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun row ->
      let v = row.(slot) in
      if v <> idle then Hashtbl.replace seen v ())
    t.cells;
  List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

let proc_of_task_at t ~task ~time =
  let slot = Prelude.Intmath.imod time t.horizon in
  let rec go j =
    if j >= m t then None else if t.cells.(j).(slot) = task then Some j else go (j + 1)
  in
  go 0

let units_of_task t ~task =
  let acc = ref 0 in
  Array.iter (fun row -> Array.iter (fun v -> if v = task then incr acc) row) t.cells;
  !acc

let busy_slots t =
  let acc = ref 0 in
  Array.iter (fun row -> Array.iter (fun v -> if v <> idle then incr acc) row) t.cells;
  !acc

let equal a b =
  a.horizon = b.horizon && m a = m b
  &&
  let rec go j = j >= m a || (a.cells.(j) = b.cells.(j) && go (j + 1)) in
  go 0

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "t   ";
  for s = 0 to t.horizon - 1 do
    Format.fprintf ppf "%3d" s
  done;
  Format.fprintf ppf "@,";
  Array.iteri
    (fun j row ->
      Format.fprintf ppf "P%-3d" (j + 1);
      Array.iter
        (fun v -> if v = idle then Format.fprintf ppf "  ." else Format.fprintf ppf "%3d" (v + 1))
        row;
      Format.fprintf ppf "@,")
    t.cells;
  Format.fprintf ppf "@]"

type segment = { task : int; proc : int; start : int; len : int }

let segments t =
  let acc = ref [] in
  for proc = 0 to m t - 1 do
    let current = ref None in
    let flush () =
      match !current with
      | Some seg -> (
        acc := seg :: !acc;
        current := None)
      | None -> ()
    in
    for time = 0 to t.horizon - 1 do
      let v = t.cells.(proc).(time) in
      (match !current with
      | Some seg when v = seg.task -> current := Some { seg with len = seg.len + 1 }
      | Some _ ->
        flush ();
        if v <> idle then current := Some { task = v; proc; start = time; len = 1 }
      | None -> if v <> idle then current := Some { task = v; proc; start = time; len = 1 })
    done;
    flush ()
  done;
  List.rev !acc

let pp_gantt ppf t =
  let segs = segments t in
  let tasks = List.sort_uniq Int.compare (List.map (fun s -> s.task) segs) in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun task ->
      Format.fprintf ppf "τ%-3d" (task + 1);
      List.iter
        (fun s ->
          if s.task = task then
            Format.fprintf ppf " [P%d %d-%d]" (s.proc + 1) s.start (s.start + s.len - 1))
        (List.sort
           (fun a b ->
             match Int.compare a.start b.start with 0 -> Int.compare a.proc b.proc | c -> c)
           segs);
      Format.fprintf ppf "@,")
    tasks;
  Format.fprintf ppf "@]"
