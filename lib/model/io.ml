let split_fields line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line

let taskset_of_string text =
  let tasks = ref [] in
  List.iteri
    (fun lineno line ->
      let fields = split_fields (String.trim (strip_comment line)) in
      match fields with
      | [] -> ()
      | [ o; c; d; t ] -> (
        match
          (int_of_string_opt o, int_of_string_opt c, int_of_string_opt d, int_of_string_opt t)
        with
        | Some offset, Some wcet, Some deadline, Some period -> (
          match Task.make ~offset ~wcet ~deadline ~period () with
          | task -> tasks := task :: !tasks
          | exception Invalid_argument msg ->
            failwith (Printf.sprintf "line %d: %s" (lineno + 1) msg))
        | _ -> failwith (Printf.sprintf "line %d: expected four integers" (lineno + 1)))
      | _ ->
        failwith
          (Printf.sprintf "line %d: expected 'O C D T', got %d fields" (lineno + 1)
             (List.length fields)))
    (String.split_on_char '\n' text);
  match List.rev !tasks with
  | [] -> failwith "no tasks in input"
  | tasks -> Taskset.of_tasks tasks

let taskset_to_string ts =
  let buf = Buffer.create 128 in
  Array.iter
    (fun (t : Task.t) ->
      Buffer.add_string buf (Printf.sprintf "%d %d %d %d\n" t.offset t.wcet t.deadline t.period))
    (Taskset.tasks ts);
  Buffer.contents buf

(* [open_in] on a missing or unreadable path raises a bare [Sys_error];
   callers that must not crash on bad input (the CLI guard, the serve
   daemon) classify it via [Core.error_of_exn] into [Invalid_input].
   Parse failures are prefixed with the path so multi-file callers can
   tell which input was at fault. *)
let load_taskset path =
  let ic = open_in path in
  let read () =
    let len = in_channel_length ic in
    really_input_string ic len
  in
  let text = try read () with e -> close_in_noerr ic; raise e in
  close_in ic;
  try taskset_of_string text with Failure msg -> failwith (path ^ ": " ^ msg)

let save_taskset path ts =
  let oc = open_out path in
  (try output_string oc (taskset_to_string ts) with e -> close_out oc; raise e);
  close_out oc

let schedule_to_csv sched =
  let buf = Buffer.create 256 in
  for proc = 0 to Schedule.m sched - 1 do
    for time = 0 to Schedule.horizon sched - 1 do
      if time > 0 then Buffer.add_char buf ',';
      let v = Schedule.get sched ~proc ~time in
      if v <> Schedule.idle then Buffer.add_string buf (string_of_int (v + 1))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let schedule_of_csv text =
  let rows =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
    |> List.map (fun line ->
           String.split_on_char ',' line
           |> List.map (fun cell ->
                  let cell = String.trim cell in
                  if cell = "" then Schedule.idle
                  else
                    match int_of_string_opt cell with
                    | Some v when v >= 1 -> v - 1
                    | Some _ | None -> failwith ("bad schedule cell: " ^ cell)))
  in
  match rows with
  | [] -> failwith "empty schedule"
  | first :: _ ->
    let horizon = List.length first in
    List.iter
      (fun row -> if List.length row <> horizon then failwith "ragged schedule rows")
      rows;
    Schedule.of_cells (Array.of_list (List.map Array.of_list rows))
