type t = { id : int; offset : int; wcet : int; deadline : int; period : int }

let make ?(id = 0) ~offset ~wcet ~deadline ~period () =
  if offset < 0 then invalid_arg "Task.make: negative offset";
  if wcet < 1 then invalid_arg "Task.make: wcet must be >= 1";
  if deadline < wcet then invalid_arg "Task.make: deadline < wcet";
  if period < 1 then invalid_arg "Task.make: period must be >= 1";
  { id; offset; wcet; deadline; period }

let with_id t id = { t with id }
let is_constrained t = t.deadline <= t.period
let utilization t = float_of_int t.wcet /. float_of_int t.period
let density t = float_of_int t.wcet /. float_of_int (Int.min t.deadline t.period)
let laxity t = t.deadline - t.wcet
let release t k = t.offset + (k * t.period)
let abs_deadline t k = release t k + t.deadline

let equal a b =
  a.id = b.id && a.offset = b.offset && a.wcet = b.wcet && a.deadline = b.deadline
  && a.period = b.period

let compare a b =
  match Int.compare a.id b.id with
  | 0 -> (
    match Int.compare a.offset b.offset with
    | 0 -> (
      match Int.compare a.wcet b.wcet with
      | 0 -> (
        match Int.compare a.deadline b.deadline with
        | 0 -> Int.compare a.period b.period
        | c -> c)
      | c -> c)
    | c -> c)
  | c -> c

let pp ppf t =
  Format.fprintf ppf "τ%d(O=%d,C=%d,D=%d,T=%d)" (t.id + 1) t.offset t.wcet t.deadline t.period

let to_string t = Format.asprintf "%a" pp t
