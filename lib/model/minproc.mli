(** Incremental search for the smallest feasible processor count.

    The cheap necessary-condition pre-filters that used to live here
    ([quick_check] and friends) moved to the [Analysis] library, which
    subsumes them with certificate-producing interval and forced-slot
    arguments; this module keeps only the [m]-scan driver, which belongs to
    the model layer because it is pure control flow over an abstract
    [solve] callback. *)

type min_processors_outcome =
  | Exact of int
      (** Smallest feasible [m]; every smaller candidate was refuted, so
          this is the true minimum. *)
  | Inconclusive of { first_limit : int; feasible : int option }
      (** Some candidate hit the per-[m] budget before a feasible [m] was
          decided: [first_limit] is the smallest undecided [m] (the true
          minimum may be as low as that), [feasible] the smallest [m]
          actually proved feasible, if any — an upper bound only. *)
  | All_infeasible  (** Every [m <= max_m] was refuted. *)

val min_processors_feasible :
  ?start:int ->
  solve:(m:int -> [ `Feasible | `Infeasible | `Undecided ]) ->
  Taskset.t ->
  max_m:int ->
  min_processors_outcome
(** Incremental search for the smallest feasible [m], starting from
    [max ⌈U⌉ start] (the paper's closing suggestion in Section VII-E,
    sharpened by any sound lower bound the caller has — e.g. the static
    analyzer's) and stopping at the first [`Feasible] verdict.  A
    budget-limited [`Undecided] verdict is {e not} treated as infeasible:
    it demotes the final answer to {!Inconclusive} instead of silently
    inflating the reported minimum.  When [start > max_m] every candidate
    is below the lower bound, i.e. {!All_infeasible}. *)
