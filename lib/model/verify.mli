(** Schedule verification against the paper's feasibility conditions.

    A schedule is feasible (Section III-C) when
    - C1: every unit of task i executes inside one of its availability
      windows;
    - C2: at most one task per processor per instant (holds by the
      {!Schedule} representation);
    - C3: a task runs on at most one processor per instant (no
      intra-task parallelism);
    - C4: each job receives exactly [C_i] units of execution — on
      heterogeneous platforms, units weighted by the rates [s_{i,j}]
      (constraint (11)).

    The verifier also rejects cells that schedule a task on a processor with
    rate 0, mirroring the domain restriction [D_{i,j}(t) = {0}] of
    Section VI-A1.

    The verifier is the ground truth for the whole test suite: every solver
    path (CSP1 on the generic solver, CSP1 via SAT, CSP2 dedicated, local
    search, simulated baselines) must produce schedules this module
    accepts. *)

type violation =
  | Bad_task of { proc : int; time : int; value : int }
      (** Cell holds an id outside [[-1, n-1]]. *)
  | Out_of_window of { proc : int; time : int; task : int }
      (** C1 violated: the task has no window covering the slot. *)
  | Parallelism of { time : int; task : int; procs : int * int }
      (** C3 violated: same task on two processors in one slot. *)
  | Zero_rate of { proc : int; time : int; task : int }
      (** Task scheduled on a processor that cannot serve it. *)
  | Wrong_amount of { task : int; job : int; expected : int; got : int }
      (** C4 violated: job received [got] ≠ [expected] units. *)
  | Wrong_total of { task : int; expected : int; got : int }
      (** C4 violated in aggregate ({!check_cyclic}): the task received
          [got] units over the whole cycle instead of [expected]. *)

val pp_violation : Format.formatter -> violation -> unit

val check :
  ?platform:Platform.t -> ?max_violations:int -> Taskset.t -> Schedule.t ->
  (unit, violation list) result
(** [check ts sched] verifies the schedule for the task set on the given
    platform (default: identical with the schedule's processor count).
    At most [max_violations] (default 32) violations are collected.
    @raise Invalid_argument if the schedule horizon differs from the
    hyperperiod or the platform's processor count differs from the
    schedule's. *)

val check_cyclic :
  ?platform:Platform.t -> ?max_violations:int -> Taskset.t -> Schedule.t ->
  (unit, violation list) result
(** Like {!check} but for cyclic schedules whose horizon is any positive
    multiple of the hyperperiod, and with arbitrary deadlines allowed —
    this is the shape {!Clone.map_schedule} returns, so it is the ground
    truth for clone-mapped schedules.  With [D_i > T_i] the windows of one
    task overlap and a cell no longer names its job; C1/C3/C4 are checked
    as an exact assignment (each job receives exactly [C_i] units inside
    its own window, at most one per instant, every executed cell assigned
    to some job), computed per task with augmenting paths.  C3 is enforced
    at {e job} granularity: two live jobs of one arbitrary-deadline task
    are distinct clones in the paper's reduction and may legitimately run
    in parallel, so {!Parallelism} is never reported here — an
    over-parallel job surfaces as {!Wrong_amount} instead.  On cells whose
    rate differs from 1 the exact partition degrades to aggregate checks
    (window membership and the per-cycle total, reported as
    {!Wrong_total}).
    @raise Invalid_argument if the horizon is not a multiple of the
    hyperperiod, a deadline exceeds the horizon, or the platform's
    processor count differs from the schedule's. *)

val is_feasible : ?platform:Platform.t -> Taskset.t -> Schedule.t -> bool
