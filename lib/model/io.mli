(** Plain-text serialization of task systems and schedules.

    The task-set format is one task per line, four integers
    [O C D T], with ['#'] starting a comment:

    {v
    # the paper's running example
    0 1 2 2
    1 3 4 4
    0 2 2 3
    v}

    Schedules export as CSV, one row per processor, one column per slot,
    cells holding 1-based task ids or empty for idle — convenient for
    spreadsheets and plotting scripts. *)

val taskset_of_string : string -> Taskset.t
(** @raise Failure with a line-number message on malformed input. *)

val taskset_to_string : Taskset.t -> string
(** Round-trips through {!taskset_of_string} (offsets, WCETs, deadlines,
    periods; ids are positional). *)

val load_taskset : string -> Taskset.t
(** Read a file.
    @raise Sys_error on a missing or unreadable path (classified as
    invalid input by [Core.error_of_exn] — the CLI exits 3, the serve
    daemon answers with error code 3).
    @raise Failure on malformed contents, prefixed with the path. *)

val save_taskset : string -> Taskset.t -> unit

val schedule_to_csv : Schedule.t -> string
val schedule_of_csv : string -> Schedule.t
(** @raise Failure on ragged or non-integer input. *)
