type violation =
  | Bad_task of { proc : int; time : int; value : int }
  | Out_of_window of { proc : int; time : int; task : int }
  | Parallelism of { time : int; task : int; procs : int * int }
  | Zero_rate of { proc : int; time : int; task : int }
  | Wrong_amount of { task : int; job : int; expected : int; got : int }
  | Wrong_total of { task : int; expected : int; got : int }

let pp_violation ppf = function
  | Bad_task { proc; time; value } ->
    Format.fprintf ppf "invalid task id %d on P%d at t=%d" value (proc + 1) time
  | Out_of_window { proc; time; task } ->
    Format.fprintf ppf "τ%d runs on P%d at t=%d outside any availability window" (task + 1)
      (proc + 1) time
  | Parallelism { time; task; procs = p, p' } ->
    Format.fprintf ppf "τ%d runs on both P%d and P%d at t=%d (C3)" (task + 1) (p + 1) (p' + 1)
      time
  | Zero_rate { proc; time; task } ->
    Format.fprintf ppf "τ%d scheduled on P%d at t=%d but s=0" (task + 1) (proc + 1) time
  | Wrong_amount { task; job; expected; got } ->
    Format.fprintf ppf "job %d of τ%d received %d units instead of %d (C4)" job (task + 1) got
      expected
  | Wrong_total { task; expected; got } ->
    Format.fprintf ppf "τ%d received %d units per cycle instead of %d (C4)" (task + 1) got
      expected

let check ?platform ?(max_violations = 32) ts sched =
  let n = Taskset.size ts in
  let m = Schedule.m sched in
  let horizon = Schedule.horizon sched in
  if horizon <> Taskset.hyperperiod ts then
    invalid_arg "Verify.check: schedule horizon differs from the hyperperiod";
  let platform = match platform with Some p -> p | None -> Platform.identical ~m in
  if Platform.processors platform <> m then
    invalid_arg "Verify.check: platform processor count differs from the schedule";
  let jm = Jobmap.create ts in
  let received = Array.make (Jobmap.job_count jm) 0 in
  let violations = ref [] in
  let count = ref 0 in
  let report v =
    if !count < max_violations then violations := v :: !violations;
    incr count
  in
  let proc_of = Array.make n (-1) in
  for time = 0 to horizon - 1 do
    Array.fill proc_of 0 n (-1);
    for proc = 0 to m - 1 do
      let v = Schedule.get sched ~proc ~time in
      if v <> Schedule.idle then
        if v < 0 || v >= n then report (Bad_task { proc; time; value = v })
        else begin
          (if proc_of.(v) <> -1 then
             report (Parallelism { time; task = v; procs = (proc_of.(v), proc) })
           else proc_of.(v) <- proc);
          if not (Platform.can_run platform ~task:v ~proc) then
            report (Zero_rate { proc; time; task = v });
          let g = Jobmap.global_job_at jm ~task:v ~time in
          if g = -1 then report (Out_of_window { proc; time; task = v })
          else received.(g) <- received.(g) + Platform.rate platform ~task:v ~proc
        end
    done
  done;
  (* C4: exact amounts per job. *)
  for task = 0 to n - 1 do
    let expected = (Taskset.task ts task).wcet in
    let base = Jobmap.first_of_task jm task in
    for k = 0 to Jobmap.jobs_of_task jm task - 1 do
      let got = received.(base + k) in
      if got <> expected then report (Wrong_amount { task; job = k; expected; got })
    done
  done;
  if !count = 0 then Ok () else Error (List.rev !violations)

(* Cyclic verification for schedules whose horizon is a (positive) multiple
   of the hyperperiod, with arbitrary deadlines allowed: windows of one task
   may overlap, so which job a cell serves is no longer determined by the
   slot.  C1/C3/C4 therefore become an exact assignment problem — partition
   the task's executed cells among its jobs so that every job receives
   exactly [C_i] units inside its own window, at most one per instant —
   solved per task with augmenting paths (the instances are tiny: one node
   per executed cell).  Note C3 is per {e job} here, not per task: two
   live jobs of one arbitrary-deadline task are distinct clones in the
   reduction and may run in parallel.  When some executed cell carries a
   rate other than 1 (heterogeneous platforms) the cells are no longer unit
   items and the exact partition is not a matching; the check then degrades
   to the aggregate conditions (every cell inside some window, total units
   exact), which are necessary but no longer pin the per-job
   distribution. *)
let check_cyclic ?platform ?(max_violations = 32) ts sched =
  let n = Taskset.size ts in
  let m = Schedule.m sched in
  let horizon = Schedule.horizon sched in
  if horizon mod Taskset.hyperperiod ts <> 0 then
    invalid_arg "Verify.check_cyclic: schedule horizon is not a multiple of the hyperperiod";
  for i = 0 to n - 1 do
    if (Taskset.task ts i).deadline > horizon then
      invalid_arg "Verify.check_cyclic: a deadline exceeds the schedule horizon"
  done;
  let platform = match platform with Some p -> p | None -> Platform.identical ~m in
  if Platform.processors platform <> m then
    invalid_arg "Verify.check_cyclic: platform processor count differs from the schedule";
  let violations = ref [] in
  let count = ref 0 in
  let report v =
    if !count < max_violations then violations := v :: !violations;
    incr count
  in
  (* Structural pass: valid ids/rates, plus the executed cells of each task
     as (slot, rate, proc) triples in time order.  No per-task parallelism
     check here: two live jobs of one arbitrary-deadline task may run in
     parallel, so C3 is enforced per job by the assignment below. *)
  let exec = Array.make n [] in
  for time = 0 to horizon - 1 do
    for proc = 0 to m - 1 do
      let v = Schedule.get sched ~proc ~time in
      if v <> Schedule.idle then
        if v < 0 || v >= n then report (Bad_task { proc; time; value = v })
        else begin
          if not (Platform.can_run platform ~task:v ~proc) then
            report (Zero_rate { proc; time; task = v });
          exec.(v) <- (time, Platform.rate platform ~task:v ~proc, proc) :: exec.(v)
        end
    done
  done;
  for task = 0 to n - 1 do
    let tk = Taskset.task ts task in
    let jobs = horizon / tk.Task.period in
    let offset = tk.Task.offset mod tk.Task.period in
    let in_window ~slot k =
      let d = (slot - (offset + (k * tk.Task.period))) mod horizon in
      let d = if d < 0 then d + horizon else d in
      d < tk.Task.deadline
    in
    let cells = Array.of_list (List.rev exec.(task)) in
    let nc = Array.length cells in
    let total = Array.fold_left (fun acc (_, w, _) -> acc + w) 0 cells in
    let unit = Array.for_all (fun (_, w, _) -> w = 1) cells in
    if total <> tk.Task.wcet * jobs then
      report (Wrong_total { task; expected = tk.Task.wcet * jobs; got = total })
    else if not unit then
      (* Aggregate fallback (see above): window membership only. *)
      Array.iter
        (fun (slot, _, proc) ->
          if not (Array.exists (fun k -> in_window ~slot k) (Array.init jobs Fun.id)) then
            report (Out_of_window { proc; time = slot; task }))
        cells
    else begin
      (* The assignment is a max-flow instance: cell → (job, slot) → job,
         with unit capacity on every (job, slot) pair — a job executes at
         most one unit per instant, which is C3 at job granularity — and
         capacity [C_i] on each job.  DFS on the residual graph; a simple
         augmenting path exists whenever any augmenting path does, so
         per-node visited stamps are sound. *)
      let owner = Array.make nc (-1) in
      let fill = Array.make jobs 0 in
      let owned = Array.make jobs [] in
      let slot_user = Array.make (jobs * horizon) (-1) in
      let vc = Array.make nc 0 in
      let vjs = Array.make (jobs * horizon) 0 in
      let vj = Array.make jobs 0 in
      let stamp = ref 0 in
      let slot_of c =
        let s, _, _ = cells.(c) in
        s
      in
      let assign c k =
        (if owner.(c) >= 0 then begin
           let old = owner.(c) in
           fill.(old) <- fill.(old) - 1;
           owned.(old) <- List.filter (fun c' -> c' <> c) owned.(old);
           slot_user.((old * horizon) + slot_of c) <- -1
         end);
        owner.(c) <- k;
        fill.(k) <- fill.(k) + 1;
        owned.(k) <- c :: owned.(k);
        slot_user.((k * horizon) + slot_of c) <- c
      in
      let rec augment c =
        vc.(c) <- !stamp;
        let slot = slot_of c in
        let placed = ref false in
        let k = ref 0 in
        while (not !placed) && !k < jobs do
          let j = !k in
          let node = (j * horizon) + slot in
          if vjs.(node) < !stamp && in_window ~slot j then begin
            vjs.(node) <- !stamp;
            let occupant = slot_user.(node) in
            if occupant >= 0 then begin
              (* The job already runs at [slot]: that unit must move to a
                 different job before [c] can take its place. *)
              if vc.(occupant) < !stamp && augment occupant then begin
                assign c j;
                placed := true
              end
            end
            else if fill.(j) < tk.Task.wcet then begin
              assign c j;
              placed := true
            end
            else if vj.(j) < !stamp then begin
              vj.(j) <- !stamp;
              (* Job full: evict any owned cell through its own slot node. *)
              let evict c' =
                let node' = (j * horizon) + slot_of c' in
                if vjs.(node') < !stamp && vc.(c') < !stamp then begin
                  vjs.(node') <- !stamp;
                  augment c'
                end
                else false
              in
              if List.exists evict owned.(j) then begin
                assign c j;
                placed := true
              end
            end
          end;
          incr k
        done;
        !placed
      in
      let all_placed = ref true in
      for c = 0 to nc - 1 do
        incr stamp;
        if not (augment c) then begin
          all_placed := false;
          let slot, _, proc = cells.(c) in
          if not (Array.exists (fun k -> in_window ~slot k) (Array.init jobs Fun.id)) then
            report (Out_of_window { proc; time = slot; task })
        end
      done;
      if !all_placed then
        (* Totals match and every cell is owned, so every job is full. *)
        ()
      else
        Array.iteri
          (fun k got ->
            if got < tk.Task.wcet then
              report (Wrong_amount { task; job = k; expected = tk.Task.wcet; got }))
          fill
    end
  done;
  if !count = 0 then Ok () else Error (List.rev !violations)

let is_feasible ?platform ts sched =
  match check ?platform ts sched with Ok () -> true | Error _ -> false
