type min_processors_outcome =
  | Exact of int
  | Inconclusive of { first_limit : int; feasible : int option }
  | All_infeasible

let min_processors_feasible ?(start = 1) ~solve ts ~max_m =
  let rec go m first_limit =
    if m > max_m then
      match first_limit with
      | None -> All_infeasible
      | Some first_limit -> Inconclusive { first_limit; feasible = None }
    else
      match solve ~m with
      | `Feasible -> (
        match first_limit with
        | None -> Exact m
        | Some first_limit -> Inconclusive { first_limit; feasible = Some m })
      | `Infeasible -> go (m + 1) first_limit
      | `Undecided ->
        let first_limit = match first_limit with None -> Some m | some -> some in
        go (m + 1) first_limit
  in
  go (Int.max start (Taskset.min_processors ts)) None
