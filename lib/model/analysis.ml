type verdict = Infeasible of string | Unknown

let utilization_exceeds ts ~m =
  let num, den = Taskset.utilization_num_den ts in
  num > m * den

let window_overload ts ~m =
  ignore m;
  (* With C <= D enforced by [Task.make], a job always fits alone in its
     window on an identical platform; heterogeneous overloads are caught by
     the encodings' domain construction instead. *)
  Array.exists (fun (task : Task.t) -> task.wcet > task.deadline) (Taskset.tasks ts)

let slot_capacity_shortfall ts ~m =
  if utilization_exceeds ts ~m then true
  else if not (Taskset.is_constrained ts) then false
  else
    let horizon = Taskset.hyperperiod ts in
    let work = Array.fold_left (fun acc (t : Task.t) -> acc + (horizon / t.period * t.deadline)) 0 (Taskset.tasks ts) in
    if work > 10_000_000 then false
    else
      let windows = Windows.build ts in
      let load = Windows.slot_load windows in
      let supply = Array.fold_left (fun acc l -> acc + min m l) 0 load in
      supply < Taskset.total_demand ts

let quick_check ts ~m =
  if utilization_exceeds ts ~m then Infeasible "utilization ratio r > 1"
  else if window_overload ts ~m then Infeasible "a job exceeds its own window"
  else if slot_capacity_shortfall ts ~m then Infeasible "per-slot supply below demand"
  else Unknown

type min_processors_outcome =
  | Exact of int
  | Inconclusive of { first_limit : int; feasible : int option }
  | All_infeasible

let min_processors_feasible ~solve ts ~max_m =
  let rec go m first_limit =
    if m > max_m then
      match first_limit with
      | None -> All_infeasible
      | Some first_limit -> Inconclusive { first_limit; feasible = None }
    else
      match solve ~m with
      | `Feasible -> (
        match first_limit with
        | None -> Exact m
        | Some first_limit -> Inconclusive { first_limit; feasible = Some m })
      | `Infeasible -> go (m + 1) first_limit
      | `Undecided ->
        let first_limit = match first_limit with None -> Some m | some -> some in
        go (m + 1) first_limit
  in
  go (Taskset.min_processors ts) None
