type t = {
  original : Taskset.t;
  cloned : Taskset.t;
  origin : int array;  (* clone id -> original id *)
  clones : int list array;  (* original id -> clone ids *)
}

let transform ts =
  let n = Taskset.size ts in
  let clone_tasks = ref [] in
  let origin_rev = ref [] in
  for i = 0 to n - 1 do
    let task = Taskset.task ts i in
    let k = Prelude.Intmath.cdiv task.deadline task.period in
    let k = Int.max k 1 in
    for i' = 0 to k - 1 do
      let clone =
        Task.make
          ~offset:(task.offset + (i' * task.period))
          ~wcet:task.wcet ~deadline:task.deadline
          ~period:(k * task.period)
          ()
      in
      clone_tasks := clone :: !clone_tasks;
      origin_rev := i :: !origin_rev
    done
  done;
  let cloned = Taskset.of_tasks (List.rev !clone_tasks) in
  let origin = Array.of_list (List.rev !origin_rev) in
  let clones = Array.make n [] in
  Array.iteri (fun c i -> clones.(i) <- c :: clones.(i)) origin;
  Array.iteri (fun i l -> clones.(i) <- List.rev l) clones;
  { original = ts; cloned; origin; clones }

let cloned t = t.cloned
let original t = t.original
let origin t c = t.origin.(c)
let clone_count t i = List.length t.clones.(i)
let clones_of t i = t.clones.(i)

let map_schedule t sched =
  let horizon = Taskset.hyperperiod t.cloned in
  if Schedule.horizon sched <> horizon then
    invalid_arg "Clone.map_schedule: horizon differs from the clone hyperperiod";
  let m = Schedule.m sched in
  let out = Schedule.create ~m ~horizon in
  for proc = 0 to m - 1 do
    for time = 0 to horizon - 1 do
      let v = Schedule.get sched ~proc ~time in
      if v <> Schedule.idle then Schedule.set out ~proc ~time t.origin.(v)
    done
  done;
  out

let map_platform t platform =
  if Platform.is_identical platform then platform
  else
    let m = Platform.processors platform in
    let rates =
      Array.init (Array.length t.origin) (fun c ->
          Array.init m (fun proc -> Platform.rate platform ~task:t.origin.(c) ~proc))
    in
    Platform.heterogeneous ~rates
