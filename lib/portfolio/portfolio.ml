open Prelude

type spec =
  | Csp2 of Csp2.Heuristic.t
  | Csp2_opt of Csp2.Heuristic.t
  | Csp1_sat
  | Local_search

let spec_name = function
  | Csp2 h -> "csp2+" ^ Csp2.Heuristic.to_string h
  | Csp2_opt h -> "csp2-opt+" ^ Csp2.Heuristic.to_string h
  | Csp1_sat -> "csp1-sat"
  | Local_search -> "local-search"

(* Complementarity first: the memoized search under the paper's best
   heuristic, then the heuristics that win on other instances, then the two
   different solver families; the classic (memo-free) D−C engine rides at
   the tail as a cross-check arm.  With [jobs] below the list length the
   prefix runs first and the tail backfills as arms finish or lose. *)
let default_specs =
  [
    Csp2_opt Csp2.Heuristic.DC;
    Csp2 Csp2.Heuristic.RM;
    Csp1_sat;
    Local_search;
    Csp2 Csp2.Heuristic.DM;
    Csp2 Csp2.Heuristic.TC;
    Csp2 Csp2.Heuristic.DC;
  ]

type arm_status =
  | Ran
  | Crashed of string
  | Stalled
  | Not_started

type backend_stats = {
  name : string;
  outcome : Encodings.Outcome.t option;
  stats : Telemetry.Stats.t;
  winner : bool;
  status : arm_status;
}

exception All_arms_crashed of (string * string) list

type result = {
  verdict : Encodings.Outcome.t;
  winner : string option;
  time_s : float;
  backends : backend_stats list;
}

(* The unified {!Telemetry.Stats} view of each backend's native stats:
   SAT decisions/conflicts and local-search iterations/restarts play the
   roles of nodes/fails.  [memo_mb] only reaches the optimized engine —
   the degradation retry runs it with a reduced table. *)
let run_spec spec ~budget ~seed ?memo_mb ?domains ts ~m =
  let backend = spec_name spec in
  match spec with
  | Csp2 heuristic ->
    let outcome, st = Csp2.Solver.solve ~heuristic ~budget ?domains ts ~m in
    (outcome, Csp2.Solver.to_stats ~backend st)
  | Csp2_opt heuristic ->
    (* Sequential engine on purpose: each arm owns one domain already, so
       subtree splitting inside an arm would oversubscribe the race. *)
    let outcome, st = Csp2.Opt.solve ~heuristic ~budget ?memo_mb ?domains ts ~m in
    (outcome, Csp2.Opt.to_stats ~backend st)
  | Csp1_sat ->
    let outcome, st = Encodings.Csp1_sat.solve ~budget ~seed ?domains ts ~m in
    let stats =
      match st with
      | Some s -> Sat.Solver.to_stats ~backend s
      | None -> Telemetry.Stats.make ~backend ()
    in
    (outcome, stats)
  | Local_search ->
    let outcome, st = Localsearch.Min_conflicts.solve ~seed ~budget ?domains ts ~m in
    (outcome, Localsearch.Min_conflicts.to_stats ~backend st)

let analysis_arm_name = "static-analysis"

(* A queued unit of race work.  Originals occupy report slots [0..n-1] in
   spec order; the (at most one) retry of the arm in slot [i] reports in
   slot [n+i], so retry reports never race their originals. *)
type arm_job = {
  j_spec : spec;
  j_slot : int;
  j_seed : int;
  j_memo_mb : int option;
  j_retry : bool;
}

let solve ?(specs = default_specs) ?jobs ?(budget = Timer.unlimited) ?(seed = 0)
    ?(analyze = true) ?(stall_beats = 16.) ?domains ts ~m =
  if m < 1 then invalid_arg "Portfolio.solve: m must be >= 1";
  if specs = [] then invalid_arg "Portfolio.solve: empty backend list";
  let race_t0 = Timer.start () in
  let specs = Array.of_list specs in
  let n = Array.length specs in
  (* Arm 0 is the static analyzer: sequential, capped by its own work-unit
     budget AND by half the race's wall clock — it either ends the race
     before it starts or hands every search arm the pruned domains, and a
     slow interval scan can cost the arms at most half their allowance.
     [Timer.sub] (not a fresh [Timer.budget]) so the caller's stop flag —
     and its node/wall limits — stay observable: [Timer.cancel] on the
     race budget interrupts the analyzer too. *)
  let analysis_wall =
    match Timer.remaining_wall budget with
    | None -> budget (* no wall limit: share the caller's budget as-is *)
    | Some s -> Timer.sub ~wall_s:(s /. 2.) budget
  in
  let pre =
    match domains with
    | Some d -> `Race (Some d, None)
    | None when not analyze -> `Race (None, None)
    | None when Timer.cancelled budget -> `Race (None, None)
    | None -> (
      (* The analyzer is an arm like any other: contained.  A crashing
         analysis must not take the search arms with it — the race just
         proceeds without pruned domains. *)
      let protected =
        Resilience.Supervise.protect ~name:analysis_arm_name (fun () ->
            Telemetry.with_span analysis_arm_name ~cat:"portfolio" (fun () ->
                Resilience.Failpoint.hit "portfolio.analysis";
                Analysis.analyze ~wall:analysis_wall ts ~m))
      in
      match protected with
      | Error crash ->
        `Race
          ( None,
            Some
              {
                name = analysis_arm_name;
                outcome = None;
                stats = Telemetry.Stats.make ~backend:analysis_arm_name ();
                winner = false;
                status = Crashed (Resilience.Supervise.crash_message crash);
              } )
      | Ok report -> (
        (* For this arm, nodes/fails report what the analysis produced:
           statically forced cells and statically blocked cells. *)
        let entry outcome winner ~forced ~blocked =
          {
            name = analysis_arm_name;
            outcome = Some outcome;
            stats =
              Telemetry.Stats.make ~backend:analysis_arm_name ~nodes:forced ~fails:blocked
                ~time_s:report.Analysis.time_s ();
            winner;
            status = Ran;
          }
        in
        match report.Analysis.verdict with
        | Analysis.Infeasible _ ->
          `Decided
            ( Encodings.Outcome.Infeasible,
              entry Encodings.Outcome.Infeasible true ~forced:0 ~blocked:0 )
        | Analysis.Trivially_feasible sched ->
          let o = Encodings.Outcome.Feasible sched in
          `Decided (o, entry o true ~forced:0 ~blocked:0)
        | Analysis.Pruned d ->
          `Race
            ( Some d,
              Some
                (entry Encodings.Outcome.Limit false
                   ~forced:(Analysis.Domains.forced_cells d)
                   ~blocked:(Analysis.Domains.blocked_cells d)) )))
  in
  let never_started i =
    let name = spec_name specs.(i) in
    {
      name;
      outcome = None;
      stats = Telemetry.Stats.make ~backend:name ();
      winner = false;
      status = Not_started;
    }
  in
  match pre with
  | `Decided (verdict, arm0) ->
    {
      verdict;
      winner = Some arm0.name;
      time_s = Timer.elapsed race_t0;
      backends = arm0 :: List.init n never_started;
    }
  | `Race (domains, arm0) ->
  let jobs =
    let requested =
      match jobs with Some j -> j | None -> Parallel.recommended_jobs ()
    in
    Intmath.clamp ~lo:1 ~hi:n requested
  in
  (* One shared race: the first decisive arm claims the winner slot and
     raises the stop flag; every other arm observes the flag through its
     budget poll and returns [Limit].  The arms otherwise inherit the
     caller's wall/node limits, and — because [Timer.with_stop] demotes
     the caller's own flag to a watched one — an external [Timer.cancel]
     on [budget] still stops every arm. *)
  let race = Race.create () in
  let arm_budget = Timer.with_stop budget (Race.flag race) in
  let reports = Array.make (2 * n) None in
  (* A mutex-protected queue instead of a bare fetch-and-add index: a
     crashed or stalled arm can re-enqueue its (single) degraded retry,
     and freed domains backfill from whatever work is left. *)
  let qlock = Mutex.create () in
  let queue = Queue.create () in
  Array.iteri
    (fun i spec ->
      Queue.add { j_spec = spec; j_slot = i; j_seed = seed + i; j_memo_mb = None; j_retry = false }
        queue)
    specs;
  let pop () =
    Mutex.protect qlock (fun () -> if Queue.is_empty queue then None else Some (Queue.pop queue))
  in
  let push j = Mutex.protect qlock (fun () -> Queue.add j queue) in
  let watchdog =
    if stall_beats > 0. then Some (Resilience.Watchdog.create ~stall_beats ()) else None
  in
  let job_name j = spec_name j.j_spec ^ if j.j_retry then "(retry)" else "" in
  (* Retry-with-degradation: one retry per arm, from the original attempt
     only.  A failing csp2-opt arm rides again with its memo budget
     halved (a further failure disables the arm — no third attempt); a
     crashed SAT arm rides again under a fresh seed.  The classic CSP2
     and local-search arms have nothing to degrade. *)
  let retry_of j =
    if j.j_retry then None
    else
      match j.j_spec with
      | Csp2_opt _ ->
        Some { j with j_slot = n + j.j_slot; j_retry = true;
               j_memo_mb = Some (Csp2.Opt.default_memo_mb / 2) }
      | Csp1_sat -> Some { j with j_slot = n + j.j_slot; j_retry = true; j_seed = j.j_seed + 7919 }
      | Csp2 _ | Local_search -> None
  in
  let maybe_retry j =
    if (not (Race.stopped race)) && not (Timer.cancelled arm_budget) then
      Option.iter push (retry_of j)
  in
  let run_job j =
    let name = job_name j in
    (* Each arm gets a private cancellation point on top of the shared
       race budget: the watchdog can cancel a stalled arm alone. *)
    let my_budget = Timer.fork arm_budget in
    let cell =
      Option.map
        (fun wd ->
          Resilience.Watchdog.watch wd ~name ~cancel:(fun () -> Timer.cancel my_budget))
        watchdog
    in
    let run () =
      Telemetry.with_span name ~cat:"arm" (fun () ->
          Resilience.Failpoint.hit "portfolio.arm_start";
          run_spec j.j_spec ~budget:my_budget ~seed:j.j_seed ?memo_mb:j.j_memo_mb ?domains ts
            ~m)
    in
    let protected =
      match cell with
      | Some c -> Resilience.Watchdog.with_cell c (fun () -> Resilience.Supervise.protect ~name run)
      | None -> Resilience.Supervise.protect ~name run
    in
    Option.iter Resilience.Watchdog.unwatch cell;
    match protected with
    | Ok (outcome, stats) ->
      let stalled = match cell with Some c -> Resilience.Watchdog.stalled c | None -> false in
      let won = Encodings.Outcome.is_decided outcome && Race.claim race j.j_slot in
      (reports.(j.j_slot) <-
        Some
          {
            name;
            outcome = Some outcome;
            stats;
            winner = won;
            status = (if stalled then Stalled else Ran);
          })
      [@lint.racy_ok "slot is owned by this arm, read after the pool joins"];
      (* A memory-starved csp2-opt arm degrades like a crashed one. *)
      (match (outcome, j.j_spec) with
      | Encodings.Outcome.Memout _, Csp2_opt _ when not won -> maybe_retry j
      | _ -> ())
    | Error crash ->
      (reports.(j.j_slot) <-
        Some
          {
            name;
            outcome = None;
            stats = Telemetry.Stats.make ~backend:name ();
            winner = false;
            status = Crashed (Resilience.Supervise.crash_message crash);
          })
      [@lint.racy_ok "slot is owned by this arm, read after the pool joins"];
      maybe_retry j
  in
  let worker () =
    let rec loop () =
      if not (Race.stopped race) then
        match pop () with
        | None -> ()
        | Some j ->
          run_job j;
          loop ()
    in
    loop ()
  in
  Option.iter Resilience.Watchdog.start watchdog;
  (* Pooled domains, not per-race spawns: the portfolio is called in
     tight benchmark loops, and each arm supervises itself, so a warm
     worker carries no state across races beyond its domain-local engine
     caches — which are exactly what we want reused. *)
  Csp2.Pool.run ~jobs (fun _ -> worker ());
  Option.iter Resilience.Watchdog.stop watchdog;
  let originals =
    List.init n (fun i -> match reports.(i) with Some r -> r | None -> never_started i)
  in
  let retries = List.filter_map (fun i -> reports.(n + i)) (List.init n Fun.id) in
  (* Containment has a floor: when every arm that ran crashed (retries
     included) and none was even cut short by the budget, there is no
     honest verdict to report — surface the typed error instead of a
     fabricated [Limit]. *)
  let attempts = originals @ retries in
  let crashes =
    List.filter_map
      (fun r -> match r.status with Crashed msg -> Some (r.name, msg) | _ -> None)
      attempts
  in
  if List.length crashes = List.length attempts then raise (All_arms_crashed crashes);
  let backends = match arm0 with None -> attempts | Some a -> a :: attempts in
  (* Arms race on the same instance, so decisive verdicts must agree; a
     Feasible alongside an Infeasible is a solver soundness bug. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          match (a.outcome, b.outcome) with
          | Some oa, Some ob when not (Encodings.Outcome.agree oa ob) ->
            failwith
              (Printf.sprintf "Portfolio.solve: %s and %s contradict each other" a.name b.name)
          | _ -> ())
        backends)
    backends;
  let verdict, winner_name =
    match Race.winner race with
    | -1 ->
      (* Nobody decided.  Prefer reporting [Limit] over a backend-specific
         [Memout]: some arm was cut short by the budget. *)
      let memouts =
        List.filter_map
          (fun b -> match b.outcome with Some (Encodings.Outcome.Memout _ as o) -> Some o | _ -> None)
          backends
      in
      let all_memout =
        List.for_all
          (fun b ->
            match b.outcome with
            | Some (Encodings.Outcome.Memout _) | None -> true
            | Some _ -> false)
          backends
      in
      ((match memouts with o :: _ when all_memout -> o | _ -> Encodings.Outcome.Limit), None)
    | slot ->
      let r = Option.get reports.(slot) in
      (Option.get r.outcome, Some r.name)
  in
  { verdict; winner = winner_name; time_s = Timer.elapsed race_t0; backends }

let summary r =
  let outcome_tag = function
    | Encodings.Outcome.Feasible _ -> "feasible"
    | Encodings.Outcome.Infeasible -> "infeasible"
    | Encodings.Outcome.Limit -> "limit"
    | Encodings.Outcome.Memout _ -> "memout"
  in
  let backend b =
    match b.status with
    | Crashed msg -> Printf.sprintf "%s !crashed(%s)" b.name msg
    | Not_started -> Printf.sprintf "%s -" b.name
    | Ran | Stalled -> (
      let stalled = if b.status = Stalled then " ~stalled" else "" in
      match b.outcome with
      | None -> Printf.sprintf "%s -%s" b.name stalled
      | Some o ->
        Printf.sprintf "%s%s %s %s%s"
          b.name (if b.winner then "*" else "") (outcome_tag o)
          (Telemetry.Stats.summary b.stats) stalled)
  in
  Printf.sprintf "portfolio: %s in %.4fs (winner %s) | %s"
    (outcome_tag r.verdict) r.time_s
    (match r.winner with Some w -> w | None -> "none")
    (String.concat " | " (List.map backend r.backends))
