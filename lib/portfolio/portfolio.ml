open Prelude

type spec =
  | Csp2 of Csp2.Heuristic.t
  | Csp2_opt of Csp2.Heuristic.t
  | Csp1_sat
  | Local_search

let spec_name = function
  | Csp2 h -> "csp2+" ^ Csp2.Heuristic.to_string h
  | Csp2_opt h -> "csp2-opt+" ^ Csp2.Heuristic.to_string h
  | Csp1_sat -> "csp1-sat"
  | Local_search -> "local-search"

(* Complementarity first: the memoized search under the paper's best
   heuristic, then the heuristics that win on other instances, then the two
   different solver families; the classic (memo-free) D−C engine rides at
   the tail as a cross-check arm.  With [jobs] below the list length the
   prefix runs first and the tail backfills as arms finish or lose. *)
let default_specs =
  [
    Csp2_opt Csp2.Heuristic.DC;
    Csp2 Csp2.Heuristic.RM;
    Csp1_sat;
    Local_search;
    Csp2 Csp2.Heuristic.DM;
    Csp2 Csp2.Heuristic.TC;
    Csp2 Csp2.Heuristic.DC;
  ]

type backend_stats = {
  name : string;
  outcome : Encodings.Outcome.t option;
  stats : Telemetry.Stats.t;
  winner : bool;
}

type result = {
  verdict : Encodings.Outcome.t;
  winner : string option;
  time_s : float;
  backends : backend_stats list;
}

(* The unified {!Telemetry.Stats} view of each backend's native stats:
   SAT decisions/conflicts and local-search iterations/restarts play the
   roles of nodes/fails. *)
let run_spec spec ~budget ~seed ?domains ts ~m =
  let backend = spec_name spec in
  match spec with
  | Csp2 heuristic ->
    let outcome, st = Csp2.Solver.solve ~heuristic ~budget ?domains ts ~m in
    (outcome, Csp2.Solver.to_stats ~backend st)
  | Csp2_opt heuristic ->
    (* Sequential engine on purpose: each arm owns one domain already, so
       subtree splitting inside an arm would oversubscribe the race. *)
    let outcome, st = Csp2.Opt.solve ~heuristic ~budget ?domains ts ~m in
    (outcome, Csp2.Opt.to_stats ~backend st)
  | Csp1_sat ->
    let outcome, st = Encodings.Csp1_sat.solve ~budget ~seed ?domains ts ~m in
    let stats =
      match st with
      | Some s -> Sat.Solver.to_stats ~backend s
      | None -> Telemetry.Stats.make ~backend ()
    in
    (outcome, stats)
  | Local_search ->
    let outcome, st = Localsearch.Min_conflicts.solve ~seed ~budget ?domains ts ~m in
    (outcome, Localsearch.Min_conflicts.to_stats ~backend st)

let analysis_arm_name = "static-analysis"

let solve ?(specs = default_specs) ?jobs ?(budget = Timer.unlimited) ?(seed = 0)
    ?(analyze = true) ?domains ts ~m =
  if m < 1 then invalid_arg "Portfolio.solve: m must be >= 1";
  if specs = [] then invalid_arg "Portfolio.solve: empty backend list";
  let race_t0 = Timer.start () in
  let specs = Array.of_list specs in
  let n = Array.length specs in
  (* Arm 0 is the static analyzer: sequential, capped by its own work-unit
     budget AND by half the race's wall clock — it either ends the race
     before it starts or hands every search arm the pruned domains, and a
     slow interval scan can cost the arms at most half their allowance.
     [Timer.sub] (not a fresh [Timer.budget]) so the caller's stop flag —
     and its node/wall limits — stay observable: [Timer.cancel] on the
     race budget interrupts the analyzer too. *)
  let analysis_wall =
    match Timer.remaining_wall budget with
    | None -> budget (* no wall limit: share the caller's budget as-is *)
    | Some s -> Timer.sub ~wall_s:(s /. 2.) budget
  in
  let pre =
    match domains with
    | Some d -> `Race (Some d, None)
    | None when not analyze -> `Race (None, None)
    | None when Timer.cancelled budget -> `Race (None, None)
    | None -> (
      let report =
        Telemetry.with_span analysis_arm_name ~cat:"portfolio" (fun () ->
            Analysis.analyze ~wall:analysis_wall ts ~m)
      in
      (* For this arm, nodes/fails report what the analysis produced:
         statically forced cells and statically blocked cells. *)
      let entry outcome winner ~forced ~blocked =
        {
          name = analysis_arm_name;
          outcome = Some outcome;
          stats =
            Telemetry.Stats.make ~backend:analysis_arm_name ~nodes:forced ~fails:blocked
              ~time_s:report.Analysis.time_s ();
          winner;
        }
      in
      match report.Analysis.verdict with
      | Analysis.Infeasible _ ->
        `Decided (Encodings.Outcome.Infeasible, entry Encodings.Outcome.Infeasible true ~forced:0 ~blocked:0)
      | Analysis.Trivially_feasible sched ->
        let o = Encodings.Outcome.Feasible sched in
        `Decided (o, entry o true ~forced:0 ~blocked:0)
      | Analysis.Pruned d ->
        `Race
          ( Some d,
            Some
              (entry Encodings.Outcome.Limit false
                 ~forced:(Analysis.Domains.forced_cells d)
                 ~blocked:(Analysis.Domains.blocked_cells d)) ))
  in
  let never_started i =
    let name = spec_name specs.(i) in
    { name; outcome = None; stats = Telemetry.Stats.make ~backend:name (); winner = false }
  in
  match pre with
  | `Decided (verdict, arm0) ->
    {
      verdict;
      winner = Some arm0.name;
      time_s = Timer.elapsed race_t0;
      backends = arm0 :: List.init n never_started;
    }
  | `Race (domains, arm0) ->
  let jobs =
    let requested =
      match jobs with Some j -> j | None -> Domain.recommended_domain_count ()
    in
    Intmath.clamp ~lo:1 ~hi:n requested
  in
  (* One shared stop flag: the first decisive arm raises it, every other
     arm observes it through its budget poll and returns [Limit].  The
     arms otherwise inherit the caller's wall/node limits, and — because
     [Timer.with_stop] demotes the caller's own flag to a watched one —
     an external [Timer.cancel] on [budget] still stops every arm. *)
  let stop = Atomic.make false in
  let arm_budget = Timer.with_stop budget stop in
  let next = Atomic.make 0 in
  let winner = Atomic.make (-1) in
  let reports = Array.make n None in
  let worker () =
    let rec loop () =
      if not (Atomic.get stop) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let name = spec_name specs.(i) in
          let outcome, stats =
            Telemetry.with_span name ~cat:"arm" (fun () ->
                run_spec specs.(i) ~budget:arm_budget ~seed:(seed + i) ?domains ts ~m)
          in
          let won =
            Encodings.Outcome.is_decided outcome && Atomic.compare_and_set winner (-1) i
          in
          if won then Atomic.set stop true;
          reports.(i) <- Some { name; outcome = Some outcome; stats; winner = won };
          loop ()
        end
      end
    in
    loop ()
  in
  let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  let backends =
    Array.to_list
      (Array.mapi
         (fun i report ->
           match report with
           | Some r -> r
           (* Never started: the race was over before this spec's turn. *)
           | None -> never_started i)
         reports)
  in
  let backends = match arm0 with None -> backends | Some a -> a :: backends in
  (* Arms race on the same instance, so decisive verdicts must agree; a
     Feasible alongside an Infeasible is a solver soundness bug. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          match (a.outcome, b.outcome) with
          | Some oa, Some ob when not (Encodings.Outcome.agree oa ob) ->
            failwith
              (Printf.sprintf "Portfolio.solve: %s and %s contradict each other" a.name b.name)
          | _ -> ())
        backends)
    backends;
  let verdict, winner_name =
    match Atomic.get winner with
    | -1 ->
      (* Nobody decided.  Prefer reporting [Limit] over a backend-specific
         [Memout]: some arm was cut short by the budget. *)
      let memouts =
        List.filter_map
          (fun b -> match b.outcome with Some (Encodings.Outcome.Memout _ as o) -> Some o | _ -> None)
          backends
      in
      let all_memout =
        List.for_all
          (fun b ->
            match b.outcome with
            | Some (Encodings.Outcome.Memout _) | None -> true
            | Some _ -> false)
          backends
      in
      ((match memouts with o :: _ when all_memout -> o | _ -> Encodings.Outcome.Limit), None)
    | i ->
      let r = Option.get reports.(i) in
      (Option.get r.outcome, Some r.name)
  in
  { verdict; winner = winner_name; time_s = Timer.elapsed race_t0; backends }

let summary r =
  let outcome_tag = function
    | Encodings.Outcome.Feasible _ -> "feasible"
    | Encodings.Outcome.Infeasible -> "infeasible"
    | Encodings.Outcome.Limit -> "limit"
    | Encodings.Outcome.Memout _ -> "memout"
  in
  let backend b =
    match b.outcome with
    | None -> Printf.sprintf "%s -" b.name
    | Some o ->
      Printf.sprintf "%s%s %s %s"
        b.name (if b.winner then "*" else "") (outcome_tag o)
        (Telemetry.Stats.summary b.stats)
  in
  Printf.sprintf "portfolio: %s in %.4fs (winner %s) | %s"
    (outcome_tag r.verdict) r.time_s
    (match r.winner with Some w -> w | None -> "none")
    (String.concat " | " (List.map backend r.backends))
