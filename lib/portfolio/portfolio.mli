(** Parallel solver portfolio on OCaml 5 domains.

    Tables I–IV of the paper show no single strategy dominating: CSP1 wins
    some instances, each CSP2 value-ordering heuristic wins others, and the
    hard instances produce heavy-tailed overruns at the time limit.  The
    classic answer is to {e race} complementary strategies on the same
    instance and cancel the losers the moment one of them decides.

    Every arm runs an unmodified sequential backend under a budget derived
    from the caller's ({!Prelude.Timer.with_stop}): same wall/node limits,
    one shared stop flag.  The first arm returning a decisive verdict
    ([Feasible] or [Infeasible]) wins the compare-and-swap and raises the
    flag; the other arms observe it at their next budget poll — every
    backend polls at least each 256 search nodes — and return [Limit]
    promptly.  [Limit]/[Memout] arms are never winners: a local-search arm
    that gives up does not stop a complete solver mid-proof.

    The race is {e sound} because each backend is: a [Feasible] schedule is
    verified by the caller exactly as in the sequential paths, and an
    [Infeasible] only comes from complete searches.  It is not
    deterministic in {e which} arm wins a tie, but the verdict itself is
    the same for any winner (decisive verdicts must agree; disagreement is
    reported as a solver bug by raising [Failure]). *)

type spec =
  | Csp2 of Csp2.Heuristic.t
      (** The dedicated chronological search (identical platforms,
          urgency propagation on) under the given value ordering. *)
  | Csp2_opt of Csp2.Heuristic.t
      (** {!Csp2.Opt}: the same search with packed eligibility bitsets,
          the transposition table and the capacity bound — run
          sequentially (one arm = one domain; subtree splitting inside an
          arm would oversubscribe the race). *)
  | Csp1_sat  (** CSP1 compiled to CNF for the in-house CDCL solver. *)
  | Local_search  (** Min-conflicts; can win only with [Feasible]. *)

val spec_name : spec -> string

val analysis_arm_name : string
(** ["static-analysis"], the reported name of the analyzer arm. *)

val default_specs : spec list
(** [csp2-opt+D-C, csp2+RM, csp1-sat, local-search, csp2+DM, csp2+T-C,
    csp2+D-C] — most complementary strategies first, so truncating to the
    first [jobs] arms keeps the strongest mix; the classic (memo-free) D−C
    engine rides at the tail as a cross-check arm. *)

type backend_stats = {
  name : string;
  outcome : Encodings.Outcome.t option;
      (** [None] when the race ended before this arm started. *)
  stats : Telemetry.Stats.t;
      (** The backend's unified counters ({!Telemetry.Stats}): SAT
          decisions/conflicts and local-search iterations/restarts map to
          [nodes]/[fails]; all-zero for an arm that never started. *)
  winner : bool;
}

type result = {
  verdict : Encodings.Outcome.t;
      (** The winner's verdict, or [Limit] when no arm decided
          ([Memout] only when every arm ran out of memory). *)
  winner : string option;
  time_s : float;  (** Wall clock of the whole race, analysis included. *)
  backends : backend_stats list;
      (** One entry per spec, in spec order, preceded by the
          {!analysis_arm_name} entry when the analyzer ran.  For that arm,
          [nodes]/[fails] report statically forced/blocked cells and a
          non-decisive pass shows as [Limit]. *)
}

val solve :
  ?specs:spec list ->
  ?jobs:int ->
  ?budget:Prelude.Timer.budget ->
  ?seed:int ->
  ?analyze:bool ->
  ?domains:Analysis.Domains.t ->
  Rt_model.Taskset.t ->
  m:int ->
  result
(** Race [specs] (default {!default_specs}) with at most [jobs] domains
    (default [Domain.recommended_domain_count ()], clamped to the spec
    count); with fewer domains than specs, idle domains pull the next spec
    from the queue until a verdict lands.  Identical platforms and
    constrained deadlines only, like the backends themselves ({!Core} runs
    the clone transform before racing).  [seed + arm index] seeds the
    randomized backends, so a single-job portfolio is deterministic.

    The caller's [budget] wall/node limits apply to every arm, and so does
    its stop flag: the race installs its own flag for the winner signal,
    but the caller's flag is kept watched ({!Prelude.Timer.with_stop}), so
    [Timer.cancel] on the original budget stops the analyzer and every
    arm promptly and the race returns [Limit].

    Unless [analyze:false], the static analyzer runs first as a sequential
    arm 0, capped by its own work-unit budget {e and} by half of
    [budget]'s remaining wall clock ({!Prelude.Timer.sub}, so the caller's
    limits and stop flag remain in force) — the search arms always keep at
    least half the allowance: an [Infeasible] certificate or a statically built schedule
    ends the race before any search arm starts, and a [Pruned] result
    hands every arm the reduced domains.  Pass [domains] to supply
    already-computed facts instead; the analyzer is then skipped.
    @raise Invalid_argument on [m < 1], an empty [specs], or a [domains]
    fingerprint that does not match the instance. *)

val summary : result -> string
(** One line: overall verdict, wall time, winner, then per-arm
    [name outcome] followed by {!Telemetry.Stats.summary} cells ([*] marks
    the winner, [-] an arm that never started). *)
