(** Parallel solver portfolio on OCaml 5 domains, with fault containment.

    Tables I–IV of the paper show no single strategy dominating: CSP1 wins
    some instances, each CSP2 value-ordering heuristic wins others, and the
    hard instances produce heavy-tailed overruns at the time limit.  The
    classic answer is to {e race} complementary strategies on the same
    instance and cancel the losers the moment one of them decides.

    Every arm runs an unmodified sequential backend under a budget derived
    from the caller's ({!Prelude.Timer.with_stop}): same wall/node limits,
    one shared stop flag.  The first arm returning a decisive verdict
    ([Feasible] or [Infeasible]) wins the compare-and-swap and raises the
    flag; the other arms observe it at their next budget poll — every
    backend polls at least each 256 search nodes — and return [Limit]
    promptly.  [Limit]/[Memout] arms are never winners: a local-search arm
    that gives up does not stop a complete solver mid-proof.

    {b Supervision} (see DESIGN.md §9): every arm — the analyzer
    included — runs inside a containment wrapper
    ({!Resilience.Supervise.protect}).  A crash ([Out_of_memory] while
    growing a memo, a [Stack_overflow] in a deep subtree, any solver
    bug) is recorded as that arm's {!arm_status} and the race continues;
    the freed domain backfills from the remaining work.  Failing
    csp2-opt and SAT arms are re-enqueued once in degraded form
    (retry-with-degradation), and a stall watchdog cancels — via that
    arm's private {!Prelude.Timer.fork} budget — any arm whose telemetry
    heartbeats go silent.  Only when {e every} search arm (retries
    included) crashed does the race surface the typed
    {!All_arms_crashed} error.

    The race is {e sound} because each backend is: a [Feasible] schedule is
    verified by the caller exactly as in the sequential paths, and an
    [Infeasible] only comes from complete searches.  Containment preserves
    this: a crashed arm contributes no verdict at all, so it can remove
    potential deciders but never inject a wrong answer.  The race is not
    deterministic in {e which} arm wins a tie, but the verdict itself is
    the same for any winner (decisive verdicts must agree; disagreement is
    reported as a solver bug by raising [Failure]). *)

type spec =
  | Csp2 of Csp2.Heuristic.t
      (** The dedicated chronological search (identical platforms,
          urgency propagation on) under the given value ordering. *)
  | Csp2_opt of Csp2.Heuristic.t
      (** {!Csp2.Opt}: the same search with packed eligibility bitsets,
          the transposition table and the capacity bound — run
          sequentially (one arm = one domain; subtree splitting inside an
          arm would oversubscribe the race). *)
  | Csp1_sat  (** CSP1 compiled to CNF for the in-house CDCL solver. *)
  | Local_search  (** Min-conflicts; can win only with [Feasible]. *)

val spec_name : spec -> string

val analysis_arm_name : string
(** ["static-analysis"], the reported name of the analyzer arm. *)

val default_specs : spec list
(** [csp2-opt+D-C, csp2+RM, csp1-sat, local-search, csp2+DM, csp2+T-C,
    csp2+D-C] — most complementary strategies first, so truncating to the
    first [jobs] arms keeps the strongest mix; the classic (memo-free) D−C
    engine rides at the tail as a cross-check arm. *)

type arm_status =
  | Ran  (** Completed normally (its [outcome] says how). *)
  | Crashed of string
      (** Contained crash; the string is the exception text
          ({!Resilience.Supervise.crash_message}).  The exception and
          backtrace are also recorded as a [crash:<arm>] telemetry
          instant. *)
  | Stalled
      (** Cancelled by the stall watchdog: its heartbeats went silent for
          the stall window while the budget was live.  The arm still
          reports the (non-decisive) outcome it returned after the
          cancellation landed. *)
  | Not_started  (** The race ended before this spec's turn. *)

type backend_stats = {
  name : string;
      (** Spec name; a degraded re-run carries a ["(retry)"] suffix. *)
  outcome : Encodings.Outcome.t option;
      (** [None] when the arm never started or crashed. *)
  stats : Telemetry.Stats.t;
      (** The backend's unified counters ({!Telemetry.Stats}): SAT
          decisions/conflicts and local-search iterations/restarts map to
          [nodes]/[fails]; all-zero for an arm that never started or
          crashed. *)
  winner : bool;
  status : arm_status;
}

exception All_arms_crashed of (string * string) list
(** Every search arm that ran (retries included) crashed: no arm was even
    cut short by a budget, so there is no honest [Limit] to report.  The
    payload lists [(arm name, exception text)] per crash.  {!Core.solve_result}
    maps this to a typed error and [mgrts] to a dedicated exit code. *)

type result = {
  verdict : Encodings.Outcome.t;
      (** The winner's verdict, or [Limit] when no arm decided
          ([Memout] only when every arm ran out of memory). *)
  winner : string option;
  time_s : float;  (** Wall clock of the whole race, analysis included. *)
  backends : backend_stats list;
      (** One entry per spec, in spec order, preceded by the
          {!analysis_arm_name} entry when the analyzer ran and followed by
          one ["<spec>(retry)"] entry per degraded re-run that started.
          For the analyzer arm, [nodes]/[fails] report statically
          forced/blocked cells and a non-decisive pass shows as
          [Limit]. *)
}

val solve :
  ?specs:spec list ->
  ?jobs:int ->
  ?budget:Prelude.Timer.budget ->
  ?seed:int ->
  ?analyze:bool ->
  ?stall_beats:float ->
  ?domains:Analysis.Domains.t ->
  Rt_model.Taskset.t ->
  m:int ->
  result
(** Race [specs] (default {!default_specs}) with at most [jobs] domains
    (default [Domain.recommended_domain_count ()], clamped to the spec
    count); with fewer domains than specs, idle domains pull the next spec
    from the queue until a verdict lands.  Identical platforms and
    constrained deadlines only, like the backends themselves ({!Core} runs
    the clone transform before racing).  [seed + arm index] seeds the
    randomized backends, so a single-job portfolio is deterministic.

    The caller's [budget] wall/node limits apply to every arm, and so does
    its stop flag: the race installs its own flag for the winner signal,
    but the caller's flag is kept watched ({!Prelude.Timer.with_stop}), so
    [Timer.cancel] on the original budget stops the analyzer and every
    arm promptly and the race returns [Limit].  Each arm additionally
    runs under a private {!Prelude.Timer.fork} of the race budget, which
    is what the stall watchdog cancels: an arm whose heartbeats go silent
    for [stall_beats] × {!Telemetry.heartbeat_interval} seconds (default
    16 beats of 0.5 s) is cancelled alone and marked {!Stalled}, and its
    domain backfills from the queue.  [stall_beats <= 0] disables the
    watchdog.

    Unless [analyze:false], the static analyzer runs first as a sequential
    arm 0, capped by its own work-unit budget {e and} by half of
    [budget]'s remaining wall clock ({!Prelude.Timer.sub}, so the caller's
    limits and stop flag remain in force) — the search arms always keep at
    least half the allowance: an [Infeasible] certificate or a statically built schedule
    ends the race before any search arm starts, and a [Pruned] result
    hands every arm the reduced domains.  Pass [domains] to supply
    already-computed facts instead; the analyzer is then skipped.
    @raise Invalid_argument on [m < 1], an empty [specs], or a [domains]
    fingerprint that does not match the instance.
    @raise All_arms_crashed when every arm that ran crashed. *)

val summary : result -> string
(** One line: overall verdict, wall time, winner, then per-arm
    [name outcome] followed by {!Telemetry.Stats.summary} cells ([*] marks
    the winner, [-] an arm that never started, [!crashed(exn)] a contained
    crash, [~stalled] a watchdog cancellation). *)
