(** The serve wire protocol: NDJSON requests in, NDJSON responses out.

    One JSON object per line.  Requests:

    {v
    {"id": "r1", "taskset": [[0,1,2,2],[1,3,4,4],[0,2,2,3]], "m": 2}
    {"id": "r2", "cmd": "solve", "taskset_text": "0 1 2 2\n...", "m": 3,
     "solver": "portfolio", "wall_s": 1.5, "nodes": 500000, "seed": 7,
     "schedule": true, "no_cache": false}
    {"cmd": "stats"}
    {"cmd": "shutdown"}
    v}

    [taskset] rows are [(O, C, D, T)] integers; [taskset_text] accepts the
    same text format as the CLI ({!Rt_model.Io.taskset_of_string}).  All
    fields but [taskset]/[taskset_text] and [m] are optional.

    Responses mirror the CLI's stable exit codes in a [code] field:
    0 decided, 2 undecided (budget exhausted), 3 invalid input, 4
    hyperperiod overflow, 5 solver crash (contained), 6 rejected by
    admission control (queue full — retry later).  A [status] string
    carries the same information coarsely: ["decided"], ["undecided"],
    ["error"], ["rejected"].

    Periodic server-side counter dumps share the output stream as
    [{"event": "stats", ...}] lines — client code distinguishes them from
    responses by the [event] key (responses never carry one). *)

type solve_request = {
  id : string;
  tuples : (int * int * int * int) list;  (** [(O, C, D, T)] per task. *)
  m : int;
  solver : Core.solver option;  (** [None]: the server default. *)
  wall_s : float option;  (** Clamped to the server's max. *)
  nodes : int option;
  seed : int;
  want_schedule : bool;  (** Include the schedule grid in the response. *)
  no_cache : bool;  (** Bypass the verdict cache (both lookup and store). *)
}

type request =
  | Solve of solve_request
  | Stats_request
  | Shutdown_request
  | Malformed of string * string  (** (request id or a fallback, error). *)

val parse_request : fallback_id:string -> string -> request
(** Parse one NDJSON line.  [fallback_id] names the response when the line
    carries no usable [id] (the serve loop passes a line counter). *)

type status = Decided | Undecided | Error | Rejected

type response = {
  r_id : string;
  r_status : status;
  r_code : int;
  r_verdict : string option;  (** feasible / infeasible / limit / memout. *)
  r_cached : bool;
  r_solver : string option;
  r_winner : string option;  (** Winning arm, portfolio solves only. *)
  r_time_s : float;  (** Solve wall clock (0 for non-solve errors). *)
  r_queue_s : float;  (** Time spent queued before a worker picked it up. *)
  r_stats : Telemetry.Stats.t option;
  r_error : string option;
  r_schedule : Rt_model.Schedule.t option;
      (** Rows = processors, cells = 1-based task ids, 0 = idle. *)
}

val status_string : status -> string
val response_json : response -> string
(** One line, no trailing newline. *)

val error_response : id:string -> queue_s:float -> Core.error -> response
val rejected_response : id:string -> queue_depth:int -> response

(** Live server counters, rendered as the periodic [stats] event. *)
type counters = {
  uptime_s : float;
  received : int;
  served : int;
  decided : int;
  undecided : int;
  errors : int;
  rejected : int;
  crashed : int;
  front_door_infeasible : int;
      (** Answered by the exact-utilization admission check, no search. *)
  cache : Cache.stats;
  in_flight : int;
  queue_depth : int;
  workers : int;
  jobs_per_request : int;
}

val counters_json : counters -> string
(** The [{"event": "stats", ...}] line, no trailing newline. *)
