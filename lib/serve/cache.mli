(** The serve daemon's verdict cache, keyed on canonical fingerprints.

    Only {e decisive} verdicts are cached: [Feasible] (the schedule,
    stored in canonical task-id space — see {!Fingerprint}) and
    [Infeasible].  [Limit]/[Memout] depend on the request's budget, so
    caching them would let one tenant's tight budget answer another
    tenant's generous one.

    Thread-safe (one mutex — lookups are string-key hashtable probes, far
    off any search hot path).  Bounded: past [capacity] entries, the
    least-recently-used quarter is evicted in one sweep, keeping eviction
    O(n) but amortized O(1) per store. *)

type entry =
  | Feasible_canonical of Rt_model.Schedule.t
      (** Schedule in canonical task ids; relabel per request on a hit. *)
  | Infeasible_entry

type t

val create : capacity:int -> t
(** [capacity >= 1] (clamped). *)

val find : t -> key:string -> entry option
(** Bumps recency and the hit/miss counters. *)

val store : t -> key:string -> entry -> unit
(** Last writer wins on a duplicate key (both writers hold equal verdicts
    by soundness of the solvers, so the race is benign). *)

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  entries : int;
}

val stats : t -> stats
