open Rt_model

type solve_request = {
  id : string;
  tuples : (int * int * int * int) list;
  m : int;
  solver : Core.solver option;
  wall_s : float option;
  nodes : int option;
  seed : int;
  want_schedule : bool;
  no_cache : bool;
}

type request =
  | Solve of solve_request
  | Stats_request
  | Shutdown_request
  | Malformed of string * string

(* ------------------------------------------------------------------ *)
(* Request parsing.                                                    *)

exception Bad of string

let field_int name v =
  match Json.to_int v with
  | Some i -> i
  | None -> raise (Bad (Printf.sprintf "field %S must be an integer" name))

let tuples_of_json rows =
  List.mapi
    (fun i row ->
      match Json.to_list row with
      | Some [ o; c; d; t ] ->
        let g = field_int "taskset" in
        (g o, g c, g d, g t)
      | Some _ | None ->
        raise (Bad (Printf.sprintf "taskset row %d must be an [O, C, D, T] quadruple" i)))
    rows

let tuples_of_text text =
  (* Reuse the CLI text format; [taskset_of_string] validates per line. *)
  Array.to_list
    (Array.map
       (fun (t : Task.t) -> (t.Task.offset, t.Task.wcet, t.Task.deadline, t.Task.period))
       (Taskset.tasks (Io.taskset_of_string text)))

let parse_request ~fallback_id line =
  match Json.parse line with
  | Error msg -> Malformed (fallback_id, msg)
  | Ok json ->
    let id =
      match Json.member "id" json with
      | Some (Json.Str s) -> s
      | Some (Json.Num _ as n) -> (
        match Json.to_int n with
        | Some i -> string_of_int i
        | None -> fallback_id)
      | Some _ | None -> fallback_id
    in
    (try
       match
         match Json.member "cmd" json with
         | None -> `Solve
         | Some c -> (
           match Json.to_str c with
           | Some "solve" -> `Solve
           | Some "stats" -> `Stats
           | Some "shutdown" -> `Shutdown
           | Some other -> raise (Bad (Printf.sprintf "unknown cmd %S" other))
           | None -> raise (Bad "field \"cmd\" must be a string"))
       with
       | `Stats -> Stats_request
       | `Shutdown -> Shutdown_request
       | `Solve ->
      let tuples =
        match (Json.member "taskset" json, Json.member "taskset_text" json) with
        | Some rows, None -> (
          match Json.to_list rows with
          | Some rows -> tuples_of_json rows
          | None -> raise (Bad "field \"taskset\" must be an array of [O, C, D, T] rows"))
        | None, Some text -> (
          match Json.to_str text with
          | Some text -> (
            try tuples_of_text text with Failure msg -> raise (Bad msg))
          | None -> raise (Bad "field \"taskset_text\" must be a string"))
        | Some _, Some _ -> raise (Bad "give either \"taskset\" or \"taskset_text\", not both")
        | None, None -> raise (Bad "missing field \"taskset\" (or \"taskset_text\")")
      in
      let m =
        match Json.member "m" json with
        | Some v -> field_int "m" v
        | None -> raise (Bad "missing field \"m\"")
      in
      let solver =
        match Json.member "solver" json with
        | None -> None
        | Some v -> (
          match Json.to_str v with
          | None -> raise (Bad "field \"solver\" must be a string")
          | Some name -> (
            match Core.solver_of_string name with
            | Some s -> Some s
            | None -> raise (Bad (Printf.sprintf "unknown solver %S" name))))
      in
      let opt_float name =
        match Json.member name json with
        | None -> None
        | Some v -> (
          match Json.to_float v with
          | Some f -> Some f
          | None -> raise (Bad (Printf.sprintf "field %S must be a number" name)))
      in
      let opt_int name =
        match Json.member name json with None -> None | Some v -> Some (field_int name v)
      in
      let opt_bool name =
        match Json.member name json with
        | None -> false
        | Some v -> (
          match Json.to_bool v with
          | Some b -> b
          | None -> raise (Bad (Printf.sprintf "field %S must be a boolean" name)))
      in
         Solve
           {
             id;
             tuples;
             m;
             solver;
             wall_s = opt_float "wall_s";
             nodes = opt_int "nodes";
             seed = (match opt_int "seed" with Some s -> s | None -> 0);
             want_schedule = opt_bool "schedule";
             no_cache = opt_bool "no_cache";
           }
     with Bad msg -> Malformed (id, msg))

(* ------------------------------------------------------------------ *)
(* Responses.                                                          *)

type status = Decided | Undecided | Error | Rejected

type response = {
  r_id : string;
  r_status : status;
  r_code : int;
  r_verdict : string option;
  r_cached : bool;
  r_solver : string option;
  r_winner : string option;
  r_time_s : float;
  r_queue_s : float;
  r_stats : Telemetry.Stats.t option;
  r_error : string option;
  r_schedule : Rt_model.Schedule.t option;
}

let status_string = function
  | Decided -> "decided"
  | Undecided -> "undecided"
  | Error -> "error"
  | Rejected -> "rejected"

let schedule_rows sched =
  let m = Schedule.m sched and horizon = Schedule.horizon sched in
  let rows = Buffer.create (m * (horizon + 2) * 2) in
  Buffer.add_char rows '[';
  for proc = 0 to m - 1 do
    if proc > 0 then Buffer.add_char rows ',';
    Buffer.add_char rows '[';
    for time = 0 to horizon - 1 do
      if time > 0 then Buffer.add_char rows ',';
      let v = Schedule.get sched ~proc ~time in
      Buffer.add_string rows (string_of_int (if v = Schedule.idle then 0 else v + 1))
    done;
    Buffer.add_char rows ']'
  done;
  Buffer.add_char rows ']';
  Buffer.contents rows

let response_json r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"id\": \"%s\", \"status\": \"%s\", \"code\": %d" (Json.escape r.r_id)
       (status_string r.r_status) r.r_code);
  (match r.r_verdict with
  | Some v -> Buffer.add_string buf (Printf.sprintf ", \"verdict\": \"%s\"" (Json.escape v))
  | None -> ());
  Buffer.add_string buf (Printf.sprintf ", \"cached\": %b" r.r_cached);
  (match r.r_solver with
  | Some s -> Buffer.add_string buf (Printf.sprintf ", \"solver\": \"%s\"" (Json.escape s))
  | None -> ());
  (match r.r_winner with
  | Some w -> Buffer.add_string buf (Printf.sprintf ", \"winner\": \"%s\"" (Json.escape w))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf ", \"time_s\": %.6f, \"queue_s\": %.6f" r.r_time_s r.r_queue_s);
  (match r.r_stats with
  | Some st -> Buffer.add_string buf (", \"stats\": " ^ Telemetry.Stats.to_json st)
  | None -> ());
  (match r.r_error with
  | Some e -> Buffer.add_string buf (Printf.sprintf ", \"error\": \"%s\"" (Json.escape e))
  | None -> ());
  (match r.r_schedule with
  | Some sched -> Buffer.add_string buf (", \"schedule\": " ^ schedule_rows sched)
  | None -> ());
  Buffer.add_char buf '}';
  Buffer.contents buf

let error_response ~id ~queue_s err =
  {
    r_id = id;
    r_status = Error;
    r_code = Core.error_exit_code err;
    r_verdict = None;
    r_cached = false;
    r_solver = None;
    r_winner = None;
    r_time_s = 0.;
    r_queue_s = queue_s;
    r_stats = None;
    r_error = Some (Core.error_message err);
    r_schedule = None;
  }

let rejected_response ~id ~queue_depth =
  {
    r_id = id;
    r_status = Rejected;
    r_code = 6;
    r_verdict = None;
    r_cached = false;
    r_solver = None;
    r_winner = None;
    r_time_s = 0.;
    r_queue_s = 0.;
    r_stats = None;
    r_error =
      Some
        (Printf.sprintf "rejected: queue full (%d requests deep); retry later" queue_depth);
    r_schedule = None;
  }

(* ------------------------------------------------------------------ *)
(* Live counters.                                                      *)

type counters = {
  uptime_s : float;
  received : int;
  served : int;
  decided : int;
  undecided : int;
  errors : int;
  rejected : int;
  crashed : int;
  front_door_infeasible : int;
  cache : Cache.stats;
  in_flight : int;
  queue_depth : int;
  workers : int;
  jobs_per_request : int;
}

let counters_json c =
  Printf.sprintf
    "{\"event\": \"stats\", \"uptime_s\": %.3f, \"received\": %d, \"served\": %d, \
     \"decided\": %d, \"undecided\": %d, \"errors\": %d, \"rejected\": %d, \"crashed\": %d, \
     \"front_door_infeasible\": %d, \"cache_hits\": %d, \"cache_misses\": %d, \
     \"cache_stores\": %d, \"cache_evictions\": %d, \"cache_entries\": %d, \"in_flight\": \
     %d, \"queue_depth\": %d, \"workers\": %d, \"jobs_per_request\": %d}"
    c.uptime_s c.received c.served c.decided c.undecided c.errors c.rejected c.crashed
    c.front_door_infeasible c.cache.Cache.hits c.cache.Cache.misses c.cache.Cache.stores
    c.cache.Cache.evictions c.cache.Cache.entries c.in_flight c.queue_depth c.workers
    c.jobs_per_request
