open Rt_model

type config = {
  workers : int;
  jobs_per_request : int;
  queue_capacity : int;
  default_wall_s : float;
  max_wall_s : float;
  default_nodes : int option;
  default_solver : Core.solver;
  cache_capacity : int;
  stall_beats : float;
}

let default_config () =
  let total = Prelude.Parallel.recommended_jobs () in
  (* Shard the machine: half the domains become concurrent workers, the
     other half intra-request parallelism — so two tenants solving at once
     split the cores instead of oversubscribing them 2x. *)
  let workers = max 1 (total / 2) in
  let jobs_per_request = max 1 (total / workers) in
  {
    workers;
    jobs_per_request;
    queue_capacity = 64;
    default_wall_s = 5.;
    max_wall_s = 30.;
    default_nodes = None;
    default_solver = Core.default_solver;
    cache_capacity = 512;
    stall_beats = 16.;
  }

(* ------------------------------------------------------------------ *)
(* Bounded admission queue.  All mutation happens in these helpers,
   rooted at their queue parameter, so worker closures stay free of
   captured-root writes (tool/lint racy-mutable rule 3). *)

type queue = {
  mu : Mutex.t;
  nonempty : Condition.t;
  items : (Proto.solve_request * float) Queue.t;
  mutable closed : bool;
}

let queue_create () =
  { mu = Mutex.create (); nonempty = Condition.create (); items = Queue.create (); closed = false }

let queue_push q ~capacity item =
  Mutex.lock q.mu;
  let r =
    if q.closed || Queue.length q.items >= capacity then `Rejected (Queue.length q.items)
    else begin
      Queue.push item q.items;
      Condition.signal q.nonempty;
      `Accepted
    end
  in
  Mutex.unlock q.mu;
  r

let queue_pop q =
  Mutex.lock q.mu;
  let rec wait () =
    if not (Queue.is_empty q.items) then Some (Queue.pop q.items)
    else if q.closed then None
    else begin
      Condition.wait q.nonempty q.mu;
      wait ()
    end
  in
  let item = wait () in
  Mutex.unlock q.mu;
  item

let queue_close q =
  Mutex.lock q.mu;
  q.closed <- true;
  Condition.broadcast q.nonempty;
  Mutex.unlock q.mu

let queue_depth q =
  Mutex.lock q.mu;
  let n = Queue.length q.items in
  Mutex.unlock q.mu;
  n

(* ------------------------------------------------------------------ *)

type t = {
  config : config;
  emit : string -> unit;
  cache : Cache.t;
  queue : queue;
  mutable domains : unit Domain.t array;
  joined : bool Atomic.t;
  started : float;
  received : int Atomic.t;
  served : int Atomic.t;
  decided : int Atomic.t;
  undecided : int Atomic.t;
  errors : int Atomic.t;
  rejected : int Atomic.t;
  crashed : int Atomic.t;
  front_door : int Atomic.t;
  in_flight : int Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* The per-request pipeline. *)

(* Exact necessary-condition check, U > m over the hyperperiod: answers
   structurally infeasible requests without queueing any search.  The
   product guard keeps the comparison exact — if [m * den] would overflow
   then it exceeds [num] anyway. *)
let front_door_infeasible ts ~m =
  let num, den = Taskset.utilization_num_den ts in
  if m <= max_int / den then num > m * den else false

let decided_response (req : Proto.solve_request) ~verdict ~cached ~solver ~winner ~time_s
    ~stats ~schedule =
  {
    Proto.r_id = req.Proto.id;
    r_status = Proto.Decided;
    r_code = 0;
    r_verdict = Some verdict;
    r_cached = cached;
    r_solver = solver;
    r_winner = winner;
    r_time_s = time_s;
    r_queue_s = 0.;
    r_stats = stats;
    r_error = None;
    r_schedule = (if req.Proto.want_schedule then schedule else None);
  }

let undecided_response (req : Proto.solve_request) ~verdict ~solver ~time_s ~stats ~error =
  {
    Proto.r_id = req.Proto.id;
    r_status = Proto.Undecided;
    r_code = 2;
    r_verdict = Some verdict;
    r_cached = false;
    r_solver = solver;
    r_winner = None;
    r_time_s = time_s;
    r_queue_s = 0.;
    r_stats = stats;
    r_error = error;
    r_schedule = None;
  }

let run t (req : Proto.solve_request) =
  if req.Proto.m < 1 then
    invalid_arg (Printf.sprintf "m must be >= 1 (got %d)" req.Proto.m);
  let ts = Taskset.of_tuples req.Proto.tuples in
  let m = req.Proto.m in
  if front_door_infeasible ts ~m then begin
    Atomic.incr t.front_door;
    decided_response req ~verdict:"infeasible" ~cached:false ~solver:(Some "front-door")
      ~winner:None ~time_s:0. ~stats:None ~schedule:None
  end
  else begin
    let fp = Fingerprint.of_taskset ts ~m in
    let key = Fingerprint.key fp in
    let cached_entry = if req.Proto.no_cache then None else Cache.find t.cache ~key in
    match cached_entry with
    | Some (Cache.Feasible_canonical canon) ->
      let sched = Fingerprint.from_canonical fp canon in
      (* Verify-on-hit: the cache is sound by construction (DESIGN.md
         §11), but a verified schedule costs O(m·H) against a search that
         cost orders more — cheap insurance.  A violation here is a bug,
         surfaced as a contained crash, never as a wrong verdict. *)
      (match Verify.check_cyclic ts sched with
      | Ok () -> ()
      | Error _ -> failwith ("serve cache returned an infeasible schedule for " ^ req.Proto.id));
      decided_response req ~verdict:"feasible" ~cached:true ~solver:None ~winner:None
        ~time_s:0. ~stats:None ~schedule:(Some sched)
    | Some Cache.Infeasible_entry ->
      decided_response req ~verdict:"infeasible" ~cached:true ~solver:None ~winner:None
        ~time_s:0. ~stats:None ~schedule:None
    | None ->
      let wall_s =
        Float.min t.config.max_wall_s
          (match req.Proto.wall_s with Some w -> w | None -> t.config.default_wall_s)
      in
      let nodes = match req.Proto.nodes with Some _ as n -> n | None -> t.config.default_nodes in
      let budget = Prelude.Timer.budget ~wall_s ?nodes () in
      let solver =
        match (match req.Proto.solver with Some s -> s | None -> t.config.default_solver) with
        | Core.Portfolio _ -> Core.Portfolio t.config.jobs_per_request
        | s -> s
      in
      let verdict, time_s, winner, stats =
        match solver with
        | Core.Portfolio jobs ->
          let r =
            Core.solve_portfolio ~jobs ~budget ~seed:req.Proto.seed
              ~stall_beats:t.config.stall_beats ts ~m
          in
          let winner_stats =
            match
              List.find_opt (fun (b : Portfolio.backend_stats) -> b.winner) r.Portfolio.backends
            with
            | Some b -> Some b.Portfolio.stats
            | None -> None
          in
          (r.Portfolio.verdict, r.Portfolio.time_s, r.Portfolio.winner, winner_stats)
        | s ->
          let v, time_s = Core.solve ~solver:s ~budget ~seed:req.Proto.seed ts ~m in
          (v, time_s, None, None)
      in
      let solver_name = Some (Core.solver_name solver) in
      (match verdict with
      | Core.Feasible sched ->
        if not req.Proto.no_cache then
          Cache.store t.cache ~key (Cache.Feasible_canonical (Fingerprint.to_canonical fp sched));
        decided_response req ~verdict:"feasible" ~cached:false ~solver:solver_name ~winner
          ~time_s ~stats ~schedule:(Some sched)
      | Core.Infeasible ->
        if not req.Proto.no_cache then Cache.store t.cache ~key Cache.Infeasible_entry;
        decided_response req ~verdict:"infeasible" ~cached:false ~solver:solver_name ~winner
          ~time_s ~stats ~schedule:None
      | Core.Limit ->
        undecided_response req ~verdict:"limit" ~solver:solver_name ~time_s ~stats ~error:None
      | Core.Memout msg ->
        undecided_response req ~verdict:"memout" ~solver:solver_name ~time_s ~stats
          ~error:(Some msg))
  end

(* Outcome accounting lives here, not in the worker loop, so counters
   stay coherent for synchronous [process] callers (tests) too. *)
let account t (resp : Proto.response) =
  Atomic.incr t.served;
  match resp.Proto.r_code with
  | 0 -> Atomic.incr t.decided
  | 2 -> Atomic.incr t.undecided
  | 5 -> Atomic.incr t.crashed
  | _ -> Atomic.incr t.errors

let process t ~queue_s (req : Proto.solve_request) =
  let id = req.Proto.id in
  let outcome =
    Resilience.Supervise.protect ~name:("request:" ^ id) (fun () ->
        Resilience.Failpoint.hit "serve.request";
        match run t req with
        | resp -> resp
        | exception e -> (
          match Core.error_of_exn e with
          | Some err -> Proto.error_response ~id ~queue_s:0. err
          | None -> raise e))
  in
  let resp =
    match outcome with
    | Ok resp -> { resp with Proto.r_queue_s = queue_s }
    | Error crash ->
      {
        Proto.r_id = id;
      r_status = Proto.Error;
      r_code = 5;
      r_verdict = None;
      r_cached = false;
      r_solver = None;
      r_winner = None;
      r_time_s = 0.;
      r_queue_s = queue_s;
      r_stats = None;
        r_error =
          Some ("request crashed (contained): " ^ Resilience.Supervise.crash_message crash);
        r_schedule = None;
      }
  in
  account t resp;
  resp

(* ------------------------------------------------------------------ *)
(* Worker pool. *)

let rec worker_loop t =
  match queue_pop t.queue with
  | None -> ()
  | Some (req, enqueued_at) ->
    Atomic.incr t.in_flight;
    let queue_s = Prelude.Timer.now () -. enqueued_at in
    let resp = process t ~queue_s req in
    t.emit (Proto.response_json resp);
    Atomic.decr t.in_flight;
    worker_loop t

let create ?config ~emit () =
  let config = match config with Some c -> c | None -> default_config () in
  let t =
    {
      config;
      emit;
      cache = Cache.create ~capacity:config.cache_capacity;
      queue = queue_create ();
      domains = [||];
      joined = Atomic.make false;
      started = Prelude.Timer.now ();
      received = Atomic.make 0;
      served = Atomic.make 0;
      decided = Atomic.make 0;
      undecided = Atomic.make 0;
      errors = Atomic.make 0;
      rejected = Atomic.make 0;
      crashed = Atomic.make 0;
      front_door = Atomic.make 0;
      in_flight = Atomic.make 0;
    }
  in
  t.domains <- Array.init config.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let counters t =
  {
    Proto.uptime_s = Prelude.Timer.now () -. t.started;
    received = Atomic.get t.received;
    served = Atomic.get t.served;
    decided = Atomic.get t.decided;
    undecided = Atomic.get t.undecided;
    errors = Atomic.get t.errors;
    rejected = Atomic.get t.rejected;
    crashed = Atomic.get t.crashed;
    front_door_infeasible = Atomic.get t.front_door;
    cache = Cache.stats t.cache;
    in_flight = Atomic.get t.in_flight;
    queue_depth = queue_depth t.queue;
    workers = t.config.workers;
    jobs_per_request = t.config.jobs_per_request;
  }

let emit_stats t = t.emit (Proto.counters_json (counters t))

let handle_line t ~fallback_id line =
  match Proto.parse_request ~fallback_id line with
  | Proto.Malformed (id, msg) ->
    Atomic.incr t.received;
    Atomic.incr t.errors;
    t.emit (Proto.response_json (Proto.error_response ~id ~queue_s:0. (Core.Invalid_input msg)));
    `Continue
  | Proto.Stats_request ->
    emit_stats t;
    `Continue
  | Proto.Shutdown_request -> `Shutdown
  | Proto.Solve req ->
    Atomic.incr t.received;
    (match
       queue_push t.queue ~capacity:t.config.queue_capacity (req, Prelude.Timer.now ())
     with
    | `Accepted -> ()
    | `Rejected depth ->
      Atomic.incr t.rejected;
      t.emit
        (Proto.response_json (Proto.rejected_response ~id:req.Proto.id ~queue_depth:depth)));
    `Continue

let shutdown t =
  queue_close t.queue;
  if not (Atomic.exchange t.joined true) then Array.iter Domain.join t.domains
