(** Canonical taskset fingerprints for the serve result cache.

    Feasibility of a task system on [m] identical processors depends only
    on the multiset of task parameters [(O, C, D, T)], the processor count
    and the hyperperiod — never on the order tasks happen to be listed in
    (renaming tasks renames schedule cells and nothing else; see
    DESIGN.md §11 for the full soundness argument).  The fingerprint is
    therefore the exact canonical form, not a hash: [m], the hyperperiod,
    and the task tuples sorted field-wise.  Two tasksets share a
    fingerprint iff one is a task-reordering of the other on the same
    [m] — no collisions, so cache soundness needs no probabilistic
    argument.

    Feasible schedules are cached in {e canonical} task-id space: the
    fingerprint carries the permutation between the request's task ids and
    the canonical (sorted) ids, so a hit for a differently-ordered request
    relabels the cached schedule back into that request's id space
    ({!from_canonical}). *)

type t

val of_taskset : Rt_model.Taskset.t -> m:int -> t
(** Canonicalize.  O(n log n). *)

val key : t -> string
(** The exact canonical form as a string — the cache key.  Equal iff the
    [(taskset, m)] pairs are equal up to task reordering. *)

val to_canonical : t -> Rt_model.Schedule.t -> Rt_model.Schedule.t
(** Relabel a schedule for the fingerprinted taskset into canonical task
    ids (used when storing). *)

val from_canonical : t -> Rt_model.Schedule.t -> Rt_model.Schedule.t
(** Relabel a canonically-stored schedule into the fingerprinted taskset's
    task ids (used on a hit). *)
