type entry =
  | Feasible_canonical of Rt_model.Schedule.t
  | Infeasible_entry

type slot = { value : entry; mutable last_used : int }

type t = {
  lock : Mutex.t;
  table : (string, slot) Hashtbl.t;
  capacity : int;
  mutable tick : int;  (* recency clock; bumped under [lock] *)
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  entries : int;
}

let create ~capacity =
  let capacity = if capacity < 1 then 1 else capacity in
  {
    lock = Mutex.create ();
    table = Hashtbl.create 256;
    capacity;
    tick = 0;
    hits = 0;
    misses = 0;
    stores = 0;
    evictions = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t ~key =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some slot ->
    t.tick <- t.tick + 1;
    slot.last_used <- t.tick;
    t.hits <- t.hits + 1;
    Some slot.value
  | None ->
    t.misses <- t.misses + 1;
    None

(* One sweep evicting the least-recently-used quarter: collect (last_used,
   key), sort ascending, drop the oldest.  Runs only when the table spills
   past capacity, so the O(n log n) cost is amortized over >= capacity/4
   stores. *)
let evict_oldest t =
  let entries =
    Hashtbl.fold (fun key slot acc -> (slot.last_used, key) :: acc) t.table []
  in
  let entries =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) entries
  in
  let to_drop = 1 + (t.capacity / 4) in
  List.iteri
    (fun i (_, key) ->
      if i < to_drop then begin
        Hashtbl.remove t.table key;
        t.evictions <- t.evictions + 1
      end)
    entries

let store t ~key entry =
  with_lock t @@ fun () ->
  t.tick <- t.tick + 1;
  t.stores <- t.stores + 1;
  (match Hashtbl.find_opt t.table key with
  | Some _ -> Hashtbl.remove t.table key
  | None -> ());
  if Hashtbl.length t.table >= t.capacity then evict_oldest t;
  Hashtbl.replace t.table key { value = entry; last_used = t.tick }

let stats t =
  with_lock t @@ fun () ->
  {
    hits = t.hits;
    misses = t.misses;
    stores = t.stores;
    evictions = t.evictions;
    entries = Hashtbl.length t.table;
  }
