type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of int * string

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over a string, tracking one cursor.       *)

type cursor = { text : string; mutable pos : int }

let error c msg = raise (Parse_error (c.pos, msg))
let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let n = String.length c.text in
  while
    c.pos < n
    && match c.text.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance c
  done

let expect c ch =
  match peek c with
  | Some got when got = ch -> advance c
  | Some got -> error c (Printf.sprintf "expected %C, got %C" ch got)
  | None -> error c (Printf.sprintf "expected %C, got end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> error c "unterminated escape"
      | Some e ->
        advance c;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if c.pos + 4 > String.length c.text then error c "truncated \\u escape";
          let hex = String.sub c.text c.pos 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some v -> v
            | None -> error c ("bad \\u escape: " ^ hex)
          in
          c.pos <- c.pos + 4;
          (* Encode the scalar as UTF-8; surrogate pairs are not recombined
             (the protocol never carries any — ids and error texts are
             ASCII), each half round-trips as a replacement-range byte
             sequence rather than crashing the daemon. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | other -> error c (Printf.sprintf "bad escape \\%C" other));
        go ())
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let n = String.length c.text in
  let is_num_char ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while c.pos < n && is_num_char c.text.[c.pos] do
    advance c
  done;
  if c.pos = start then error c "expected a number";
  let span = String.sub c.text start (c.pos - start) in
  match float_of_string_opt span with
  | Some v -> Num v
  | None -> error c ("bad number: " ^ span)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec fields_loop () =
        skip_ws c;
        expect c '"';
        let key = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (key, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields_loop ()
        | Some '}' -> advance c
        | _ -> error c "expected ',' or '}' in object"
      in
      fields_loop ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec items_loop () =
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items_loop ()
        | Some ']' -> advance c
        | _ -> error c "expected ',' or ']' in array"
      in
      items_loop ();
      Arr (List.rev !items)
    end
  | Some '"' ->
    advance c;
    Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let parse text =
  let c = { text; pos = 0 } in
  match
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length text then error c "trailing characters after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) -> Error (Printf.sprintf "json error at offset %d: %s" pos msg)

(* ------------------------------------------------------------------ *)
(* Printer.                                                            *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let to_string value =
  let buf = Buffer.create 128 in
  let rec go v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num n -> Buffer.add_string buf (number_to_string n)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          go item)
        fields;
      Buffer.add_char buf '}'
  in
  go value;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors.                                                          *)

let member key v =
  match v with
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | Arr _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_float = function Num n -> Some n | _ -> None

let to_int = function
  | Num n when Float.is_integer n && Float.abs n <= 1e15 -> Some (int_of_float n)
  | _ -> None

let to_list = function Arr items -> Some items | _ -> None
