(** [mgrts serve]: the long-running NDJSON solve daemon.

    Reads one request per line from [input] (see {!Proto} for the
    grammar), answers one response per line on [output], in completion
    order — concurrent requests finish out of submission order, so
    clients correlate by [id].  Runs until end-of-file or a
    [{"cmd": "shutdown"}] line; either way the queue is drained (every
    admitted request still gets its response), a final stats event is
    emitted, and the daemon returns 0.  Per-request failures — malformed
    lines, invalid task sets, contained solver crashes, queue-full
    rejections — are {e responses}, never daemon exits. *)

val run :
  ?config:Scheduler.config ->
  ?stats_every_s:float ->
  ?input:in_channel ->
  ?output:out_channel ->
  unit ->
  int
(** [stats_every_s] enables the periodic [{"event": "stats", ...}] line
    (off by default, keeping test output deterministic).  Returns the
    process exit code (always 0: reaching EOF cleanly {e is} the daemon's
    success). *)
