(** The serve daemon's request scheduler: a bounded admission queue feeding
    a pool of worker domains, each solving one request at a time under its
    own supervision scope, budget and telemetry, with a shared verdict
    cache (see DESIGN.md §11).

    Sharding: with [Prelude.Parallel.recommended_jobs ()] cores available,
    the pool runs [workers] concurrent requests and hands each request
    [jobs_per_request] domains of intra-solve parallelism (portfolio
    races), so concurrent tenants split the machine instead of each
    grabbing all of it.

    Admission control: {!handle_line} rejects a solve request outright
    (code 6) when the queue already holds [queue_capacity] requests — the
    client sees the rejection immediately instead of its request sitting
    behind an unbounded backlog.  Per-request wall budgets are clamped to
    [max_wall_s], so one tenant cannot monopolize a worker.

    Containment: each request runs inside
    {!Resilience.Supervise.protect}[ ~name:("request:" ^ id)] — a solver
    crash (or an armed ["serve.request"] failpoint) becomes a code-5
    response for that request and the daemon keeps serving.  The
    [mgrts serve] I/O loop and the tests drive this module the same way:
    feed lines to {!handle_line}, collect responses from the [emit]
    callback. *)

type config = {
  workers : int;  (** Concurrent requests in flight. *)
  jobs_per_request : int;  (** Domains each portfolio solve may use. *)
  queue_capacity : int;  (** Admission bound; beyond it, code 6. *)
  default_wall_s : float;  (** Wall budget when the request names none. *)
  max_wall_s : float;  (** Hard per-request clamp, tenant-proof. *)
  default_nodes : int option;  (** Node budget when the request names none. *)
  default_solver : Core.solver;
  cache_capacity : int;  (** Verdict cache entries before LRU eviction. *)
  stall_beats : float;  (** Portfolio stall-watchdog window; <= 0 off. *)
}

val default_config : unit -> config
(** Shards [Prelude.Parallel.recommended_jobs ()] into
    [workers * jobs_per_request]; 5 s default / 30 s max wall budget,
    queue capacity 64, cache capacity 512. *)

type t

val create : ?config:config -> emit:(string -> unit) -> unit -> t
(** Start the worker pool.  [emit] receives every output line (responses
    and stats events), without trailing newline; it is called from worker
    domains and from {!handle_line}'s caller, so it must be thread-safe —
    the serve loop passes a mutex-guarded stdout writer, tests a
    mutex-guarded collector. *)

val handle_line : t -> fallback_id:string -> string -> [ `Continue | `Shutdown ]
(** Parse one NDJSON request line and act on it: enqueue a solve (or emit
    the code-6 rejection when the queue is full), emit the stats event,
    emit the code-3 error for a malformed line, or return [`Shutdown] for
    a shutdown command.  Never raises. *)

val process : t -> queue_s:float -> Proto.solve_request -> Proto.response
(** The per-request pipeline a worker runs: front-door exact-utilization
    check, cache lookup (with relabeling and verify-on-hit), budgeted
    solve, cache store.  Exposed so tests can drive single requests
    synchronously; [handle_line] is the concurrent entry point. *)

val counters : t -> Proto.counters
(** Live snapshot.  [received] counts solve attempts (including rejected)
    plus malformed lines; [served] counts worker-produced solve responses
    (decided + undecided + solver-side errors + crashed); [errors] counts
    code-3/4 responses, malformed lines answered inline included;
    [crashed] counts contained code-5 responses. *)

val emit_stats : t -> unit
(** Emit one [{"event": "stats", ...}] line through the [emit] callback. *)

val shutdown : t -> unit
(** Stop admitting, let the workers drain every queued request, join
    them.  Idempotent.  [handle_line] after shutdown rejects solves. *)
