(** Minimal JSON for the serve protocol.

    The repo deliberately has no JSON dependency: the telemetry and bench
    layers hand-roll their output, and the serve daemon needs only enough
    of a {e parser} to read one request object per NDJSON line.  This is
    that parser (recursive descent, full value grammar, no streaming) plus
    a compact one-line printer for responses.

    Numbers are held as [float]; every integer the protocol carries (task
    parameters, processor counts, node budgets) is far below 2{^53}, so
    the round-trip is exact. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one complete JSON value; trailing non-whitespace is an error.
    The error string carries a character offset. *)

val to_string : t -> string
(** Compact one-line rendering (no newlines — NDJSON-safe: newlines inside
    strings are escaped). *)

val escape : string -> string
(** The string-literal body escaping used by {!to_string}, exposed for
    callers assembling JSON by hand. *)

(** {1 Accessors} — all total, returning [None] on a shape mismatch. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_float : t -> float option
val to_int : t -> int option
(** [None] when the number is not integral or out of [int] range. *)

val to_list : t -> t list option
