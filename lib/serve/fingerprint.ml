open Rt_model

type t = {
  key : string;
  canon_of_orig : int array;  (* original task id -> canonical (sorted) id *)
  orig_of_canon : int array;
}

(* Field-wise tuple order; any fixed total order over (O, C, D, T) gives a
   canonical form — ties (identical tuples) make the permutation
   non-unique, but interchangeable tasks make any tie-break sound. *)
let compare_tuples (o1, c1, d1, t1) (o2, c2, d2, t2) =
  let c = Int.compare t1 t2 in
  if c <> 0 then c
  else
    let c = Int.compare d1 d2 in
    if c <> 0 then c
    else
      let c = Int.compare c1 c2 in
      if c <> 0 then c else Int.compare o1 o2

let of_taskset ts ~m =
  let tasks = Taskset.tasks ts in
  let n = Array.length tasks in
  let order = Array.init n (fun i -> i) in
  let tuple i =
    let t : Task.t = tasks.(i) in
    (t.Task.offset, t.Task.wcet, t.Task.deadline, t.Task.period)
  in
  Array.sort (fun a b -> compare_tuples (tuple a) (tuple b)) order;
  let canon_of_orig = Array.make n 0 and orig_of_canon = Array.make n 0 in
  Array.iteri
    (fun canon orig ->
      canon_of_orig.(orig) <- canon;
      orig_of_canon.(canon) <- orig)
    order;
  let buf = Buffer.create (32 + (n * 12)) in
  Buffer.add_string buf (Printf.sprintf "m=%d;H=%d" m (Taskset.hyperperiod ts));
  Array.iter
    (fun orig ->
      let o, c, d, t = tuple orig in
      Buffer.add_string buf (Printf.sprintf ";%d,%d,%d,%d" o c d t))
    order;
  { key = Buffer.contents buf; canon_of_orig; orig_of_canon }

let key fp = fp.key

let relabel map sched =
  let m = Schedule.m sched and horizon = Schedule.horizon sched in
  let out = Schedule.create ~m ~horizon in
  for proc = 0 to m - 1 do
    for time = 0 to horizon - 1 do
      let v = Schedule.get sched ~proc ~time in
      if v <> Schedule.idle then Schedule.set out ~proc ~time map.(v)
    done
  done;
  out

let to_canonical fp sched = relabel fp.canon_of_orig sched
let from_canonical fp sched = relabel fp.orig_of_canon sched
