(* The stats ticker polls a stop flag at a fine grain so shutdown never
   waits out a long stats interval; state lives in the loop's accumulator
   parameter (no captured mutable state on a spawned domain). *)
let ticker_loop ~stop ~every sched =
  let tick = 0.05 in
  let rec go acc =
    if not (Atomic.get stop) then begin
      Unix.sleepf tick;
      let acc = acc +. tick in
      if acc >= every then begin
        Scheduler.emit_stats sched;
        go 0.
      end
      else go acc
    end
  in
  go 0.

let run ?config ?stats_every_s ?(input = stdin) ?(output = stdout) () =
  let out_mu = Mutex.create () in
  let emit line =
    Mutex.lock out_mu;
    output_string output line;
    output_char output '\n';
    flush output;
    Mutex.unlock out_mu
  in
  let sched = Scheduler.create ?config ~emit () in
  let stop = Atomic.make false in
  let ticker =
    match stats_every_s with
    | Some every when every > 0. -> Some (Domain.spawn (fun () -> ticker_loop ~stop ~every sched))
    | Some _ | None -> None
  in
  let rec loop n =
    match input_line input with
    | exception End_of_file -> ()
    | line ->
      let line = String.trim line in
      if line = "" then loop (n + 1)
      else begin
        match Scheduler.handle_line sched ~fallback_id:(Printf.sprintf "line-%d" n) line with
        | `Continue -> loop (n + 1)
        | `Shutdown -> ()
      end
  in
  loop 1;
  Scheduler.shutdown sched;
  Atomic.set stop true;
  (match ticker with Some d -> Domain.join d | None -> ());
  Scheduler.emit_stats sched;
  0
