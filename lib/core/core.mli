(** MGRTS — Global Multiprocessor Real-Time Scheduling as a CSP.

    One-stop facade over the library: pick a solver path, hand it a task
    set and a processor count, get a verified verdict back.  The underlying
    pieces remain available for fine-grained control:

    - {!Rt_model}: tasks, platforms, windows, schedules, verification;
    - {!Fd}: the generic finite-domain solver (CSP1/CSP2 encodings);
    - {!Sat}: the CDCL solver behind the CSP1→CNF path;
    - {!Csp2}: the paper's dedicated chronological solver;
    - {!Sched}, {!Localsearch}, {!Priority}: baselines and future-work
      extensions;
    - {!Gen}: the random instance generator of Section VII-A.

    {2 Quickstart}

    {[
      let ts = Rt_model.Examples.running_example in
      match Core.solve ts ~m:2 with
      | Core.Feasible schedule, _ ->
        Format.printf "%a@." Rt_model.Schedule.pp schedule
      | _ -> print_endline "no schedule"
    ]} *)

type solver =
  | Csp1_generic  (** Boolean encoding on the generic FD solver (Section IV). *)
  | Csp1_sat  (** Boolean encoding compiled to CNF (Section IV's SAT remark). *)
  | Csp2_generic  (** Multi-valued encoding on the generic solver (ablation). *)
  | Csp2_dedicated of Csp2.Heuristic.t
      (** The paper's hand-written chronological search (Section V). *)
  | Csp2_opt of Csp2.Heuristic.t
      (** {!Csp2.Opt}: the dedicated search with packed eligibility
          bitsets, state-dominance memoization and the aggregate capacity
          bound — sequential here; {!solve_csp2_opt} adds the
          subtree-splitting knobs and the engine counters.  Falls back to
          {!Csp2.Het} on heterogeneous platforms, like [Csp2_dedicated]. *)
  | Local_search  (** Min-conflicts (future work #1); cannot prove infeasibility. *)
  | Portfolio of int
      (** Race the {!Portfolio.default_specs} backends on the given number
          of domains; first decisive verdict wins, losers are cancelled. *)

val default_solver : solver
(** [Csp2_dedicated DC] — the paper's overall winner. *)

val solver_name : solver -> string

val solver_of_string : string -> solver option
(** Inverse of {!solver_name}'s CLI spellings (case-insensitive): [csp1],
    [csp1-sat]/[sat], [csp2-generic], [csp2], [csp2+rm/dm/tc/dc],
    [csp2-opt]/[opt] (also [+rm/dm/tc/dc]), [local]/[local-search],
    [portfolio].  [Portfolio] carries a placeholder job count of 0 —
    callers substitute their own.  Shared by the CLI converter and the
    serve protocol so the two front ends accept the same names. *)

val all_solvers : solver list
(** One of each family (D−C heuristic for the dedicated path, four jobs
    for the portfolio). *)

type verdict = Encodings.Outcome.t =
  | Feasible of Rt_model.Schedule.t
  | Infeasible
  | Limit
  | Memout of string

val solve :
  ?solver:solver ->
  ?platform:Rt_model.Platform.t ->
  ?budget:Prelude.Timer.budget ->
  ?seed:int ->
  ?verify:bool ->
  ?analyze:bool ->
  Rt_model.Taskset.t ->
  m:int ->
  verdict * float
(** Decide feasibility; returns the verdict and the wall-clock seconds
    spent.  [verify] (default true) re-checks any produced schedule against
    {!Rt_model.Verify} and raises [Failure] on a solver bug — schedules you
    receive are guaranteed feasible.

    [analyze] (default true) runs the {!Analysis} static pass first on
    identical platforms: a certified refutation or a statically built
    schedule returns without any search (so even [Local_search] can report
    [Infeasible] through this path), and otherwise the pruned domains are
    fed to the chosen backend.  [analyze:false] restores the bare backend.

    Arbitrary-deadline task sets are transparently reduced with the clone
    transform (Section VI-B); the returned schedule then spans the clone
    hyperperiod and refers to the original task ids — the static pass runs
    on the clone system, and with [verify] both the clone-level schedule
    {e and} the mapped-back schedule are checked (the latter against the
    original task set via {!Rt_model.Verify.check_cyclic}).  Heterogeneous platforms are supported by
    [Csp1_generic], [Csp2_generic] and the dedicated path (which switches
    to {!Csp2.Het}); [Csp1_sat] and [Local_search] raise
    [Invalid_argument] for them. *)

val feasible : ?solver:solver -> ?budget:Prelude.Timer.budget -> Rt_model.Taskset.t -> m:int -> bool option
(** [Some true]/[Some false] when decided, [None] on limit/memout. *)

val dispatch :
  solver ->
  platform:Rt_model.Platform.t ->
  budget:Prelude.Timer.budget ->
  seed:int ->
  ?domains:Analysis.Domains.t ->
  Rt_model.Taskset.t ->
  m:int ->
  verdict
(** The bare backend dispatch used by {!solve}: no static pass, no clone
    transform, no schedule verification — constrained-deadline task sets
    only.  Exposed for callers (and tests) that need to pin the exact
    backend behavior.  [seed] only feeds the randomized backends; the
    dedicated CSP2 searches are deterministic and ignore it.
    @raise Invalid_argument when the platform is heterogeneous and the
    solver cannot honor the arguments: [Csp1_sat]/[Local_search]/
    [Portfolio] require identical platforms outright, and
    [Csp2_dedicated]/[Csp2_opt] fall back to {!Csp2.Het}, which rejects
    [domains] — pruned domains are derived assuming identical unit-speed
    processors and would be unsound on any other machine. *)

val solve_csp2_opt :
  ?heuristic:Csp2.Heuristic.t ->
  ?budget:Prelude.Timer.budget ->
  ?verify:bool ->
  ?analyze:bool ->
  ?memo_mb:int ->
  ?nogoods:bool ->
  ?jobs:int ->
  ?split_depth:int ->
  Rt_model.Taskset.t ->
  m:int ->
  verdict * float * Csp2.Opt.stats option
(** {!solve} specialized to the optimized engine via
    {!Csp2.Opt.solve_parallel}, exposing its knobs ([memo_mb] caps the
    combined memo + nogood tables, [nogoods] toggles dominance-nogood
    learning, [jobs]/[split_depth] control subtree splitting) and
    returning the engine's counters — nodes, memo and nogood
    hits/misses/stores, subtrees, steals — or [None] when the static
    pass decided without any search.  Identical platforms only (built
    from [m]); the clone transform and schedule verification behave
    exactly as in {!solve}. *)

val solve_portfolio :
  ?specs:Portfolio.spec list ->
  ?jobs:int ->
  ?budget:Prelude.Timer.budget ->
  ?seed:int ->
  ?verify:bool ->
  ?analyze:bool ->
  ?stall_beats:float ->
  Rt_model.Taskset.t ->
  m:int ->
  Portfolio.result
(** Like [solve ~solver:(Portfolio jobs)] but returns the full race result
    — per-backend outcome, node/fail counts, times and the winner — for
    callers that report statistics ({!Portfolio.summary} renders it as one
    line).  The static analyzer runs as arm 0 of the race unless
    [analyze:false] (see {!Portfolio.solve}); [stall_beats] tunes (or,
    with a non-positive value, disables) the stall watchdog.  Applies the
    same clone transform and schedule verification as {!solve}; identical
    platforms only. *)

val analyze :
  ?work_budget:int -> Rt_model.Taskset.t -> m:int -> Analysis.report * Rt_model.Taskset.t
(** The static pass alone, without any search.  Returns the report and the
    task set it refers to: the input itself when its deadlines are
    constrained, the clone system (Section VI-B) otherwise — certificates
    and domains in the report name {e that} system's task ids and
    hyperperiod.  [work_budget] as in {!Analysis.analyze}. *)

type min_processors_outcome = Rt_model.Minproc.min_processors_outcome =
  | Exact of int  (** True minimum: every smaller [m] was refuted. *)
  | Inconclusive of { first_limit : int; feasible : int option }
      (** A budgeted run was undecided at [first_limit] before the search
          could prove a minimum; [feasible], when present, is only an upper
          bound. *)
  | All_infeasible  (** Refuted for every [m <= max_m]. *)

val min_processors :
  ?solver:solver -> ?budget_per_m:Prelude.Timer.budget option -> ?max_m:int ->
  ?analyze:bool -> Rt_model.Taskset.t -> min_processors_outcome
(** Smallest [m] for which a schedule is found, starting from [⌈U⌉]
    (Section VII-E's closing suggestion) sharpened to the static analyzer's
    {!Analysis.m_lower_bound} unless [analyze:false], scanning up to
    [max_m] (default [n]).  With [budget_per_m], a [Limit]/[Memout]
    verdict at some [m] no longer masquerades as infeasibility: the result
    degrades to {!Inconclusive} carrying the smallest undecided [m]. *)

val min_processors_exn :
  ?solver:solver -> ?budget_per_m:Prelude.Timer.budget option -> ?max_m:int ->
  Rt_model.Taskset.t -> int option
(** Convenience wrapper for unbudgeted use: [Some m] for {!Exact},
    [None] for {!All_infeasible}.
    @raise Invalid_argument on an {!Inconclusive} outcome. *)

(** {1 Typed top-level errors}

    Bad input and resource exhaustion surface from the solver layers as a
    small set of exceptions: [Invalid_argument] for malformed task sets
    and parameters, {!Prelude.Intmath.Overflow} (or an [Invalid_argument]
    mentioning overflow, from [Taskset.of_tasks]) for hyperperiods that
    do not fit a native [int], and {!Portfolio.All_arms_crashed} when
    containment ran out of arms.  {!solve_result} and {!error_of_exn}
    classify them into a typed error a CLI or service can render —
    [mgrts] maps them to distinct nonzero exit codes
    ({!error_exit_code}). *)

type error =
  | Invalid_input of string  (** Malformed task set or invalid parameter. *)
  | Overflow of string  (** Hyperperiod (or other exact arithmetic) overflow. *)
  | All_arms_crashed of (string * string) list
      (** Every portfolio arm crashed ([(arm, exception text)] pairs). *)

val solve_result :
  ?solver:solver ->
  ?platform:Rt_model.Platform.t ->
  ?budget:Prelude.Timer.budget ->
  ?seed:int ->
  ?verify:bool ->
  ?analyze:bool ->
  Rt_model.Taskset.t ->
  m:int ->
  (verdict * float, error) result
(** {!solve} with the classified exceptions caught into [Error].
    Exceptions outside the classification (solver soundness bugs reported
    as [Failure], [Out_of_memory] on the unsupervised sequential paths)
    still raise. *)

val error_of_exn : exn -> error option
(** The classifier behind {!solve_result}, exposed so other entry points
    (the CLI wraps every subcommand, the serve daemon wraps every request)
    can reuse it.  [Sys_error] — a missing or unreadable input file — is
    classified as [Invalid_input]: file I/O problems are the caller's bad
    input, not a solver failure. *)

val error_message : error -> string
(** One human line, no trailing newline. *)

val error_exit_code : error -> int
(** Stable nonzero exit codes: 3 invalid input, 4 overflow, 5 all arms
    crashed.  (The CLI reserves 0 for decided, 2 for undecided runs.) *)
