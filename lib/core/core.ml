open Prelude
open Rt_model

type solver =
  | Csp1_generic
  | Csp1_sat
  | Csp2_generic
  | Csp2_dedicated of Csp2.Heuristic.t
  | Csp2_opt of Csp2.Heuristic.t
  | Local_search
  | Portfolio of int

let default_solver = Csp2_dedicated Csp2.Heuristic.DC

let solver_name = function
  | Csp1_generic -> "csp1"
  | Csp1_sat -> "csp1-sat"
  | Csp2_generic -> "csp2-generic"
  | Csp2_dedicated h -> "csp2+" ^ Csp2.Heuristic.to_string h
  | Csp2_opt h -> "csp2-opt+" ^ Csp2.Heuristic.to_string h
  | Local_search -> "local-search"
  | Portfolio jobs -> Printf.sprintf "portfolio(%d)" jobs

(* Inverse of {!solver_name}'s CLI spellings; shared by the cmdliner
   converter in [bin/mgrts.ml] and the serve protocol's "solver" field so
   the two front ends cannot drift. *)
let solver_of_string s =
  let prefixed prefix other =
    let pl = String.length prefix in
    if String.length other > pl && String.sub other 0 pl = prefix then
      Some (String.sub other pl (String.length other - pl))
    else None
  in
  match String.lowercase_ascii s with
  | "csp1" -> Some Csp1_generic
  | "csp1-sat" | "sat" -> Some Csp1_sat
  | "csp2-generic" -> Some Csp2_generic
  | "local" | "local-search" -> Some Local_search
  (* The job count is a placeholder; callers substitute their own. *)
  | "portfolio" -> Some (Portfolio 0)
  | "csp2-opt" | "opt" -> Some (Csp2_opt Csp2.Heuristic.DC)
  | "csp2" -> Some (Csp2_dedicated Csp2.Heuristic.Id)
  | other -> (
    match prefixed "csp2-opt+" other with
    | Some h -> Option.map (fun h -> Csp2_opt h) (Csp2.Heuristic.of_string h)
    | None -> (
      match prefixed "csp2+" other with
      | Some h -> Option.map (fun h -> Csp2_dedicated h) (Csp2.Heuristic.of_string h)
      | None -> None))

let all_solvers =
  [
    Csp1_generic;
    Csp1_sat;
    Csp2_generic;
    Csp2_dedicated Csp2.Heuristic.DC;
    Csp2_opt Csp2.Heuristic.DC;
    Local_search;
    Portfolio 4;
  ]

type verdict = Encodings.Outcome.t =
  | Feasible of Rt_model.Schedule.t
  | Infeasible
  | Limit
  | Memout of string

let dispatch solver ~platform ~budget ~seed ?domains ts ~m =
  let identical = Platform.is_identical platform in
  (* The heterogeneous fallback for the dedicated engines is {!Csp2.Het},
     which knows nothing of pruned domains: the analyzer derives them
     assuming identical unit-speed processors, so silently dropping them
     would be wrong twice over (the caller computed them for a different
     machine, and the solver would ignore an argument it was given).
     Reject loudly instead.  [seed] is genuinely unused on these paths —
     the dedicated searches are deterministic — so dropping it is fine. *)
  let het_reject name =
    if domains <> None then
      invalid_arg
        (Printf.sprintf
           "Core.solve: %s on a heterogeneous platform falls back to Csp2.Het, which \
            cannot use pruned domains (they assume identical processors)"
           name)
  in
  match solver with
  | Csp1_generic -> fst (Encodings.Csp1.solve ~platform ~budget ~seed ?domains ts ~m)
  | Csp1_sat ->
    if not identical then invalid_arg "Core.solve: Csp1_sat requires an identical platform";
    fst (Encodings.Csp1_sat.solve ~budget ~seed ?domains ts ~m)
  | Csp2_generic -> fst (Encodings.Csp2_fd.solve ~platform ~budget ~seed ?domains ts ~m)
  | Csp2_dedicated heuristic ->
    if identical then fst (Csp2.Solver.solve ~heuristic ~budget ?domains ts ~m)
    else begin
      het_reject "Csp2_dedicated";
      fst (Csp2.Het.solve ~heuristic ~budget ~platform ts)
    end
  | Csp2_opt heuristic ->
    (* Sequential by default at this level; {!solve_csp2_opt} exposes the
       subtree-splitting knobs and the memo/steal counters. *)
    if identical then fst (Csp2.Opt.solve ~heuristic ~budget ?domains ts ~m)
    else begin
      het_reject "Csp2_opt";
      fst (Csp2.Het.solve ~heuristic ~budget ~platform ts)
    end
  | Local_search ->
    if not identical then invalid_arg "Core.solve: Local_search requires an identical platform";
    fst (Localsearch.Min_conflicts.solve ~seed ~budget ?domains ts ~m)
  | Portfolio jobs ->
    if not identical then invalid_arg "Core.solve: Portfolio requires an identical platform";
    (* The analyzer already ran (or was disabled) at this level; hand the
       arms its domains rather than re-running it inside the race. *)
    (Portfolio.solve ~jobs ~budget ~seed ~analyze:false ?domains ts ~m).Portfolio.verdict

(* The static pre-pass on a constrained system and identical platform:
   decide outright when the analyzer can, otherwise return the pruned
   domains for the search backend. *)
let static_pass ~analyze ~platform ~budget ts ~m =
  if not (analyze && Platform.is_identical platform) then `Search None
  else
    match (Analysis.analyze ~wall:budget ts ~m).Analysis.verdict with
    | Analysis.Infeasible _ -> `Decided Encodings.Outcome.Infeasible
    | Analysis.Trivially_feasible sched -> `Decided (Encodings.Outcome.Feasible sched)
    | Analysis.Pruned d -> `Search (Some d)

let solve ?(solver = default_solver) ?platform ?(budget = Timer.unlimited) ?(seed = 0)
    ?(verify = true) ?(analyze = true) ts ~m =
  let platform = match platform with Some p -> p | None -> Platform.identical ~m in
  if Platform.processors platform <> m then invalid_arg "Core.solve: platform/m mismatch";
  let t0 = Timer.start () in
  let fail_invalid v =
    failwith
      (Format.asprintf "Core.solve: solver produced an invalid schedule: %a" Verify.pp_violation
         v)
  in
  let check ~platform ts schedule =
    if verify then
      Telemetry.with_span "verify" ~cat:"core" (fun () ->
          match Verify.check ~platform ts schedule with
          | Ok () -> ()
          | Error (v :: _) -> fail_invalid v
          | Error [] -> assert false)
  in
  (* Clone-mapped schedules span the clone hyperperiod and serve the
     original (possibly arbitrary-deadline) system: re-verify them with the
     cyclic checker against the *original* task set — the clone-level check
     alone would let a [Clone.map_schedule] bug ship an invalid schedule. *)
  let check_mapped ~platform ts schedule =
    if verify then
      Telemetry.with_span "verify-mapped" ~cat:"core" (fun () ->
          match Verify.check_cyclic ~platform ts schedule with
          | Ok () -> ()
          | Error (v :: _) -> fail_invalid v
          | Error [] -> assert false)
  in
  let static_pass ~platform ts =
    Telemetry.with_span "static-pass" ~cat:"core" (fun () ->
        static_pass ~analyze ~platform ~budget ts ~m)
  in
  let dispatch ~platform ?domains ts =
    Telemetry.with_span ("search:" ^ solver_name solver) ~cat:"core" (fun () ->
        dispatch solver ~platform ~budget ~seed ?domains ts ~m)
  in
  let verdict =
    if Taskset.is_constrained ts then begin
      match static_pass ~platform ts with
      | `Decided (Feasible schedule as result) ->
        check ~platform ts schedule;
        result
      | `Decided other -> other
      | `Search domains -> (
        match dispatch ~platform ?domains ts with
        | Feasible schedule as result ->
          check ~platform ts schedule;
          result
        | (Infeasible | Limit | Memout _) as other -> other)
    end
    else begin
      (* Arbitrary deadlines: reduce via the clone transform (Section VI-B),
         solve the constrained clone system, map task ids back. *)
      let reduction = Clone.transform ts in
      let cloned = Clone.cloned reduction in
      let clone_platform = Clone.map_platform reduction platform in
      let map_back clone_schedule =
        check ~platform:clone_platform cloned clone_schedule;
        let mapped = Clone.map_schedule reduction clone_schedule in
        check_mapped ~platform ts mapped;
        Feasible mapped
      in
      match static_pass ~platform:clone_platform cloned with
      | `Decided (Feasible clone_schedule) -> map_back clone_schedule
      | `Decided other -> other
      | `Search domains -> (
        match dispatch ~platform:clone_platform ?domains cloned with
        | Feasible clone_schedule -> map_back clone_schedule
        | (Infeasible | Limit | Memout _) as other -> other)
    end
  in
  (verdict, Timer.elapsed t0)

(* Like {!solve} with [Csp2_opt], but through {!Csp2.Opt.solve_parallel}
   with its knobs exposed, and returning the engine's counters (memo hits,
   subtrees, steals) — [None] when the static pass decided alone. *)
let solve_csp2_opt ?(heuristic = Csp2.Heuristic.DC) ?(budget = Timer.unlimited)
    ?(verify = true) ?(analyze = true) ?memo_mb ?nogoods ?jobs ?split_depth ts ~m =
  let platform = Platform.identical ~m in
  let t0 = Timer.start () in
  let fail_invalid v =
    failwith
      (Format.asprintf "Core.solve_csp2_opt: solver produced an invalid schedule: %a"
         Verify.pp_violation v)
  in
  let check ~platform ts schedule =
    if verify then
      match Verify.check ~platform ts schedule with
      | Ok () -> ()
      | Error (v :: _) -> fail_invalid v
      | Error [] -> assert false
  in
  (* [map_back] verifies what it returns (the cyclic checker on the
     original task set for clone-mapped schedules); [check] covers the
     clone-level schedule before mapping. *)
  let run ~platform ~map_back cts =
    match
      Telemetry.with_span "static-pass" ~cat:"core" (fun () ->
          static_pass ~analyze ~platform ~budget cts ~m)
    with
    | `Decided (Feasible schedule) ->
      check ~platform cts schedule;
      (Feasible (map_back schedule), Timer.elapsed t0, None)
    | `Decided other -> (other, Timer.elapsed t0, None)
    | `Search domains ->
      let outcome, stats =
        Telemetry.with_span
          ("search:csp2-opt+" ^ Csp2.Heuristic.to_string heuristic)
          ~cat:"core"
          (fun () ->
            Csp2.Opt.solve_parallel ~heuristic ~budget ?domains ?memo_mb ?nogoods ?jobs
              ?split_depth cts ~m)
      in
      let verdict =
        match outcome with
        | Feasible schedule ->
          check ~platform cts schedule;
          Feasible (map_back schedule)
        | (Infeasible | Limit | Memout _) as other -> other
      in
      (verdict, Timer.elapsed t0, Some stats)
  in
  if Taskset.is_constrained ts then run ~platform ~map_back:Fun.id ts
  else begin
    let reduction = Clone.transform ts in
    let clone_platform = Clone.map_platform reduction platform in
    let map_back clone_schedule =
      let mapped = Clone.map_schedule reduction clone_schedule in
      (if verify then
         Telemetry.with_span "verify-mapped" ~cat:"core" (fun () ->
             match Verify.check_cyclic ~platform ts mapped with
             | Ok () -> ()
             | Error (v :: _) -> fail_invalid v
             | Error [] -> assert false));
      mapped
    in
    run ~platform:clone_platform ~map_back (Clone.cloned reduction)
  end

let analyze ?work_budget ts ~m =
  if Taskset.is_constrained ts then (Analysis.analyze ?work_budget ts ~m, ts)
  else begin
    let cloned = Clone.cloned (Clone.transform ts) in
    (Analysis.analyze ?work_budget cloned ~m, cloned)
  end

let feasible ?solver ?budget ts ~m =
  match fst (solve ?solver ?budget ts ~m) with
  | Feasible _ -> Some true
  | Infeasible -> Some false
  | Limit | Memout _ -> None

let solve_portfolio ?specs ?jobs ?(budget = Timer.unlimited) ?(seed = 0) ?(verify = true)
    ?analyze ?stall_beats ts ~m =
  let platform = Platform.identical ~m in
  let fail_invalid v =
    failwith
      (Format.asprintf "Core.solve_portfolio: solver produced an invalid schedule: %a"
         Verify.pp_violation v)
  in
  let check ~platform ts schedule =
    if verify then
      match Verify.check ~platform ts schedule with
      | Ok () -> ()
      | Error (v :: _) -> fail_invalid v
      | Error [] -> assert false
  in
  if Taskset.is_constrained ts then begin
    let r = Portfolio.solve ?specs ?jobs ~budget ~seed ?analyze ?stall_beats ts ~m in
    (match r.Portfolio.verdict with
     | Feasible schedule -> check ~platform ts schedule
     | Infeasible | Limit | Memout _ -> ());
    r
  end
  else begin
    let reduction = Clone.transform ts in
    let cloned = Clone.cloned reduction in
    let clone_platform = Clone.map_platform reduction platform in
    let r = Portfolio.solve ?specs ?jobs ~budget ~seed ?analyze ?stall_beats cloned ~m in
    match r.Portfolio.verdict with
    | Feasible clone_schedule ->
      check ~platform:clone_platform cloned clone_schedule;
      let mapped = Clone.map_schedule reduction clone_schedule in
      (if verify then
         match Verify.check_cyclic ~platform ts mapped with
         | Ok () -> ()
         | Error (v :: _) -> fail_invalid v
         | Error [] -> assert false);
      { r with Portfolio.verdict = Feasible mapped }
    | Infeasible | Limit | Memout _ -> r
  end

type min_processors_outcome = Minproc.min_processors_outcome =
  | Exact of int
  | Inconclusive of { first_limit : int; feasible : int option }
  | All_infeasible

let min_processors ?solver ?(budget_per_m = None) ?max_m ?(analyze = true) ts =
  let max_m = match max_m with Some v -> v | None -> Taskset.size ts in
  (* The analyzer's m-independent lower bound (computed once, on the
     constrained clone system for arbitrary deadlines — the reduction
     preserves feasibility, so a bound for the clone bounds the original)
     lets the scan skip candidate counts no schedule can use. *)
  let start =
    if not analyze then 1
    else
      let cts = if Taskset.is_constrained ts then ts else Clone.cloned (Clone.transform ts) in
      Analysis.m_lower_bound cts
  in
  let solve_m ~m =
    let budget = match budget_per_m with Some b -> b | None -> Timer.unlimited in
    match fst (solve ?solver ~budget ~analyze ts ~m) with
    | Feasible _ -> `Feasible
    | Infeasible -> `Infeasible
    | Limit | Memout _ -> `Undecided
  in
  Minproc.min_processors_feasible ~start ~solve:solve_m ts ~max_m

let min_processors_exn ?solver ?budget_per_m ?max_m ts =
  match min_processors ?solver ?budget_per_m ?max_m ts with
  | Exact m -> Some m
  | All_infeasible -> None
  | Inconclusive { first_limit; _ } ->
    invalid_arg
      (Printf.sprintf
         "Core.min_processors_exn: undecided at m=%d (raise the budget)" first_limit)

(* ------------------------------------------------------------------ *)
(* Typed top-level errors.

   The solver layers report bad input and resource exhaustion through a
   small set of exceptions; this is the one place that classifies them
   into values a CLI (or any embedding service) can turn into messages
   and exit codes instead of crash dumps. *)

type error =
  | Invalid_input of string
  | Overflow of string
  | All_arms_crashed of (string * string) list

let contains_overflow msg =
  let msg = String.lowercase_ascii msg in
  let needle = "overflow" in
  let nl = String.length needle and hl = String.length msg in
  let rec go i = i + nl <= hl && (String.sub msg i nl = needle || go (i + 1)) in
  go 0

let error_of_exn = function
  (* Hyperperiod overflow surfaces as [Intmath.Overflow] from raw lcm
     callers and as [Invalid_argument "...: hyperperiod overflow"] from
     [Taskset.of_tasks]; classify both as [Overflow]. *)
  | Prelude.Intmath.Overflow what -> Some (Overflow what)
  | Invalid_argument msg when contains_overflow msg -> Some (Overflow msg)
  | Invalid_argument msg -> Some (Invalid_input msg)
  (* A missing or unreadable input file ([Io.load_taskset], schedule CSVs)
     surfaces as a bare [Sys_error]; before this branch the CLI died with
     an uncaught exception instead of the stable invalid-input exit. *)
  | Sys_error msg -> Some (Invalid_input msg)
  | Portfolio.All_arms_crashed crashes -> Some (All_arms_crashed crashes)
  | _ -> None

let error_message = function
  | Invalid_input msg -> "invalid input: " ^ msg
  | Overflow what ->
    Printf.sprintf "integer overflow in %s (hyperperiod too large for this machine's int)" what
  | All_arms_crashed crashes ->
    Printf.sprintf "all %d portfolio arms crashed%s" (List.length crashes)
      (match crashes with
      | (name, exn) :: _ -> Printf.sprintf " (first: %s: %s)" name exn
      | [] -> "")

let error_exit_code = function
  | Invalid_input _ -> 3
  | Overflow _ -> 4
  | All_arms_crashed _ -> 5

let solve_result ?solver ?platform ?budget ?seed ?verify ?analyze ts ~m =
  match solve ?solver ?platform ?budget ?seed ?verify ?analyze ts ~m with
  | v -> Ok v
  | exception e -> (
    match error_of_exn e with Some err -> Error err | None -> raise e)
