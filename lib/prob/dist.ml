type t = {
  values : int array;  (* ascending *)
  probs : float array;  (* normalized, aligned with values *)
  cum : float array;  (* cumulative, last = 1.0 *)
}

let of_list pairs =
  if pairs = [] then invalid_arg "Dist.of_list: empty support";
  List.iter
    (fun (v, w) ->
      if v < 1 then invalid_arg "Dist.of_list: non-positive value";
      if w <= 0. then invalid_arg "Dist.of_list: non-positive weight")
    pairs;
  let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) pairs in
  let rec check_distinct = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if a = b then invalid_arg "Dist.of_list: duplicate value";
      check_distinct rest
    | [ _ ] | [] -> ()
  in
  check_distinct sorted;
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. sorted in
  let values = Array.of_list (List.map fst sorted) in
  let probs = Array.of_list (List.map (fun (_, w) -> w /. total) sorted) in
  let cum = Array.make (Array.length probs) 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cum.(i) <- !acc)
    probs;
  cum.(Array.length cum - 1) <- 1.0;
  { values; probs; cum }

let point v = of_list [ (v, 1.) ]

let uniform ~lo ~hi =
  if lo < 1 || hi < lo then invalid_arg "Dist.uniform";
  of_list (List.init (hi - lo + 1) (fun i -> (lo + i, 1.)))

let support t = Array.to_list t.values

let prob t v =
  let rec find i = if i >= Array.length t.values then 0. else if t.values.(i) = v then t.probs.(i) else find (i + 1) in
  find 0

let min_value t = t.values.(0)
let max_value t = t.values.(Array.length t.values - 1)

let mean t =
  let acc = ref 0. in
  Array.iteri (fun i v -> acc := !acc +. (float_of_int v *. t.probs.(i))) t.values;
  !acc

let cdf t v =
  let acc = ref 0. in
  Array.iteri (fun i x -> if x <= v then acc := !acc +. t.probs.(i)) t.values;
  min !acc 1.0

let sample rng t =
  let u = Prelude.Prng.float rng in
  let rec find i = if i >= Array.length t.cum - 1 || u < t.cum.(i) then t.values.(i) else find (i + 1) in
  find 0

let scale_wcet t = mean t /. float_of_int (max_value t)

let pp ppf t =
  Format.fprintf ppf "{";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%d:%.3f" v t.probs.(i))
    t.values;
  Format.fprintf ppf "}"
