open Rt_model

type profile = { taskset : Taskset.t; dists : Dist.t array }

let profile ts dists =
  let n = Taskset.size ts in
  if Array.length dists <> n then invalid_arg "Robustness.profile: arity mismatch";
  Array.iteri
    (fun i dist ->
      if Dist.max_value dist <> (Taskset.task ts i).Task.wcet then
        invalid_arg
          (Printf.sprintf "Robustness.profile: task %d budget C=%d but distribution max=%d" (i + 1)
             (Taskset.task ts i).Task.wcet (Dist.max_value dist)))
    dists;
  { taskset = ts; dists }

let degenerate ts =
  { taskset = ts; dists = Array.map (fun (t : Task.t) -> Dist.point t.wcet) (Taskset.tasks ts) }

type waste = {
  reserved : int;
  expected_used : float;
  expected_idle : float;
  utilization_budgeted : float;
  utilization_expected : float;
}

let static_waste p =
  let ts = p.taskset in
  let hp = Taskset.hyperperiod ts in
  let reserved = ref 0 in
  let used = ref 0. in
  let u_budget = ref 0. and u_expected = ref 0. in
  Array.iteri
    (fun i dist ->
      let task = Taskset.task ts i in
      let jobs = hp / task.Task.period in
      reserved := !reserved + (jobs * task.Task.wcet);
      used := !used +. (float_of_int jobs *. Dist.mean dist);
      u_budget := !u_budget +. Task.utilization task;
      u_expected := !u_expected +. (Dist.mean dist /. float_of_int task.Task.period))
    p.dists;
  {
    reserved = !reserved;
    expected_used = !used;
    expected_idle = float_of_int !reserved -. !used;
    utilization_budgeted = !u_budget;
    utilization_expected = !u_expected;
  }

type miss_estimate = {
  runs : int;
  runs_with_miss : int;
  miss_probability : float;
  stderr : float;
}

(* Global EDF with sampled execution times over a bounded horizon.  This is
   a sampling variant of [Sched.Sim.step]: the only difference is that a
   job's demand is drawn at release instead of being the task's WCET. *)
let edf_run_has_miss rng p ~m ~horizon =
  let ts = p.taskset in
  let n = Taskset.size ts in
  let cur_job = Array.make n (-1) in
  let rem = Array.make n 0 in
  let miss = ref false in
  let t = ref 0 in
  while (not !miss) && !t < horizon do
    let time = !t in
    for i = 0 to n - 1 do
      let task = Taskset.task ts i in
      (* Deadline check before the release (cf. the D = T pitfall fixed in
         Sched.Sim). *)
      if cur_job.(i) >= 0 && rem.(i) > 0 && time >= Task.abs_deadline task cur_job.(i) then begin
        miss := true;
        rem.(i) <- 0
      end;
      if time >= task.Task.offset && (time - task.Task.offset) mod task.Task.period = 0 then begin
        cur_job.(i) <- (time - task.Task.offset) / task.Task.period;
        rem.(i) <- Dist.sample rng p.dists.(i)
      end
    done;
    if not !miss then begin
      let pending = ref [] in
      for i = n - 1 downto 0 do
        if cur_job.(i) >= 0 && rem.(i) > 0 then pending := i :: !pending
      done;
      let by_deadline =
        List.sort
          (fun a b ->
            let da = Task.abs_deadline (Taskset.task ts a) cur_job.(a) in
            let db = Task.abs_deadline (Taskset.task ts b) cur_job.(b) in
            if da <> db then Int.compare da db else Int.compare a b)
          !pending
      in
      List.iteri (fun pos i -> if pos < m then rem.(i) <- rem.(i) - 1) by_deadline
    end;
    incr t
  done;
  (* Tail: unfinished jobs whose deadline falls inside the horizon. *)
  if not !miss then
    for i = 0 to n - 1 do
      if cur_job.(i) >= 0 && rem.(i) > 0 then begin
        let dl = Task.abs_deadline (Taskset.task ts i) cur_job.(i) in
        if dl <= horizon then miss := true
      end
    done;
  !miss

let monte_carlo_misses ?(seed = 0) ?(runs = 1000) ?(hyperperiods = 2) p ~m =
  if runs < 1 then invalid_arg "Robustness.monte_carlo_misses: runs must be >= 1";
  let ts = p.taskset in
  let omax =
    Array.fold_left (fun acc (t : Task.t) -> max acc t.offset) 0 (Taskset.tasks ts)
  in
  let horizon = omax + (hyperperiods * Taskset.hyperperiod ts) in
  let master = Prelude.Prng.create ~seed in
  let with_miss = ref 0 in
  for _ = 1 to runs do
    let rng = Prelude.Prng.split master in
    if edf_run_has_miss rng p ~m ~horizon then incr with_miss
  done;
  let p_hat = float_of_int !with_miss /. float_of_int runs in
  {
    runs;
    runs_with_miss = !with_miss;
    miss_probability = p_hat;
    stderr = sqrt (p_hat *. (1. -. p_hat) /. float_of_int runs);
  }
