(** Machine-checkable infeasibility certificates.

    An [Infeasible] verdict of the static analyzer is justified by a
    {e chain} of steps.  Derivation steps ({!Forced}, {!Saturated}) record
    facts that hold in every feasible schedule; the final step states a
    contradiction.  Each step is checkable from the task set and the facts
    established by the preceding steps alone, so {!validate} re-verifies
    the whole argument with an independent replay — the analyzer cannot
    silently produce a wrong [Infeasible] verdict, mirroring how
    {!Rt_model.Verify.check} is the ground truth for [Feasible].

    All slot/interval arguments assume identical unit-speed processors and
    a constrained-deadline task set (arbitrary deadlines are reduced with
    {!Rt_model.Clone} first; the certificate then speaks clone task ids). *)

type step =
  | Utilization of { demand : int; supply : int }
      (** Total demand [Σ C_i·T/T_i] exceeds total supply [m·T] — the
          paper's [r > 1] filter, stated exactly.  Terminal. *)
  | Forced of { task : int; k : int }
      (** Job [k] of [task] has exactly [C] unblocked window slots left, so
          every feasible schedule runs the task in all of them.
          Derivation. *)
  | Saturated of { time : int }
      (** Slot [time] already carries [m] forced tasks, so no other task
          can run there: the slot is removed from every other window.
          Derivation. *)
  | Slot_overload of { time : int }
      (** More than [m] tasks are forced at the slot.  Terminal. *)
  | Starved of { task : int; k : int; allowed : int; wcet : int }
      (** Job [k] of [task] has fewer unblocked window slots than [C].
          Terminal. *)
  | Supply_shortfall of { demand : int; supply : int }
      (** Summed over the hyperperiod, [Σ_t min(m, #unblocked tasks at t)]
          cannot cover the total demand.  Terminal. *)
  | Interval_demand of { start : int; len : int; demand : int; supply : int }
      (** Over the cyclic interval [[start, start+len)], the demand that
          jobs are forced to place inside — [Σ max(0, C − unblocked window
          slots outside)] — exceeds the supply [m·len].  Terminal. *)

type t = {
  m : int;  (** Processor count the infeasibility is proved for. *)
  steps : step list;
      (** Derivations followed by exactly one terminal contradiction. *)
}

val validate : Rt_model.Taskset.t -> Rt_model.Platform.t -> t -> bool
(** Independent replay: re-derives every step from the task set, checking
    the recorded numbers exactly, and accepts only chains whose every
    prefix is justified and whose last step is a contradiction.  Returns
    [false] for non-identical platforms, platform/m mismatches, and
    non-constrained task sets (no certificate is valid there). *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering of the argument, one numbered step per line. *)
