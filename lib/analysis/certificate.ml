open Prelude
open Rt_model

type step =
  | Utilization of { demand : int; supply : int }
  | Forced of { task : int; k : int }
  | Saturated of { time : int }
  | Slot_overload of { time : int }
  | Starved of { task : int; k : int; allowed : int; wcet : int }
  | Supply_shortfall of { demand : int; supply : int }
  | Interval_demand of { start : int; len : int; demand : int; supply : int }

type t = { m : int; steps : step list }

let is_terminal = function
  | Utilization _ | Slot_overload _ | Starved _ | Supply_shortfall _ | Interval_demand _ ->
    true
  | Forced _ | Saturated _ -> false

(* Replay state: which in-window cells are still usable, and which tasks
   are forced per slot.  Built lazily so a bare utilization certificate
   never materializes the (potentially large) window tables. *)
type state = {
  ts : Taskset.t;
  m : int;
  windows : Windows.t;
  allowed : bool array array; (* [task].(slot) *)
  forced : Bitset.t array; (* per slot *)
}

let make_state ts ~m =
  let windows = Windows.build ts in
  let n = Taskset.size ts in
  let horizon = Windows.horizon windows in
  let allowed = Array.make_matrix n horizon false in
  Array.iter
    (fun (job : Windows.job) -> Array.iter (fun s -> allowed.(job.task).(s) <- true) job.slots)
    (Windows.jobs windows);
  { ts; m; windows; allowed; forced = Array.init horizon (fun _ -> Bitset.create n) }

let job_of st ~task ~k =
  if task < 0 || task >= Taskset.size st.ts then None
  else if k < 0 || k >= Taskset.jobs_per_hyperperiod st.ts task then None
  else Some (Windows.jobs st.windows).(Windows.global_index st.windows ~task ~index:k)

let allowed_slots st (job : Windows.job) =
  Array.fold_left (fun acc s -> if st.allowed.(job.task).(s) then acc + 1 else acc) 0 job.slots

(* Number of usable slots of [job] inside the cyclic interval
   [start, start+len). *)
let allowed_inside st (job : Windows.job) ~start ~len =
  let horizon = Windows.horizon st.windows in
  Array.fold_left
    (fun acc s ->
      if st.allowed.(job.task).(s) && Intmath.imod (s - start) horizon < len then acc + 1
      else acc)
    0 job.slots

let check_step st step =
  let horizon = Windows.horizon st.windows in
  let valid_slot time = time >= 0 && time < horizon in
  match step with
  | Utilization { demand; supply } ->
    let num, den = Taskset.utilization_num_den st.ts in
    demand = num && supply = st.m * den && demand > supply
  | Forced { task; k } -> (
    match job_of st ~task ~k with
    | None -> false
    | Some job ->
      let wcet = (Taskset.task st.ts task).wcet in
      allowed_slots st job = wcet
      && begin
           Array.iter
             (fun s -> if st.allowed.(task).(s) then Bitset.add st.forced.(s) task)
             job.slots;
           true
         end)
  | Saturated { time } ->
    valid_slot time
    && Bitset.cardinal st.forced.(time) = st.m
    && begin
         for task = 0 to Taskset.size st.ts - 1 do
           if not (Bitset.mem st.forced.(time) task) then st.allowed.(task).(time) <- false
         done;
         true
       end
  | Slot_overload { time } -> valid_slot time && Bitset.cardinal st.forced.(time) > st.m
  | Starved { task; k; allowed; wcet } -> (
    match job_of st ~task ~k with
    | None -> false
    | Some job ->
      (Taskset.task st.ts task).wcet = wcet
      && allowed_slots st job = allowed
      && allowed < wcet)
  | Supply_shortfall { demand; supply } ->
    let total = Taskset.total_demand st.ts in
    let cap = ref 0 in
    for time = 0 to horizon - 1 do
      let avail = ref 0 in
      for task = 0 to Taskset.size st.ts - 1 do
        if st.allowed.(task).(time) then incr avail
      done;
      cap := !cap + Int.min st.m !avail
    done;
    demand = total && supply = !cap && supply < demand
  | Interval_demand { start; len; demand; supply } ->
    start >= 0 && start < horizon && len >= 1 && len <= horizon
    && supply = st.m * len
    &&
    let forced_demand =
      Array.fold_left
        (fun acc (job : Windows.job) ->
          let wcet = (Taskset.task st.ts job.task).wcet in
          let inside = allowed_inside st job ~start ~len in
          let outside = allowed_slots st job - inside in
          acc + Int.max 0 (wcet - outside))
        0 (Windows.jobs st.windows)
    in
    demand = forced_demand && demand > supply

let validate ts platform (cert : t) =
  Platform.is_identical platform
  && Platform.processors platform = cert.m
  && cert.m >= 1
  && Taskset.is_constrained ts
  && cert.steps <> []
  &&
  let st = lazy (make_state ts ~m:cert.m) in
  let rec go = function
    | [] -> false
    | [ last ] -> is_terminal last && check_step (Lazy.force st) last
    | step :: rest -> (not (is_terminal step)) && check_step (Lazy.force st) step && go rest
  in
  (* A bare utilization argument is checked without building windows. *)
  match cert.steps with
  | [ Utilization { demand; supply } ] ->
    let num, den = Taskset.utilization_num_den ts in
    demand = num && supply = cert.m * den && demand > supply
  | steps -> go steps

let pp_step ppf = function
  | Utilization { demand; supply } ->
    Format.fprintf ppf "total demand %d exceeds the platform supply m·T = %d (utilization ratio r > 1)"
      demand supply
  | Forced { task; k } ->
    Format.fprintf ppf
      "job %d of τ%d has zero slack: every feasible schedule runs it in each of its remaining slots"
      (k + 1) (task + 1)
  | Saturated { time } ->
    Format.fprintf ppf "slot %d is saturated by m forced tasks; every other task is shut out of it"
      time
  | Slot_overload { time } ->
    Format.fprintf ppf "slot %d forces more than m tasks to run simultaneously" time
  | Starved { task; k; allowed; wcet } ->
    Format.fprintf ppf "job %d of τ%d retains only %d usable slot(s) for its %d execution unit(s)"
      (k + 1) (task + 1) allowed wcet
  | Supply_shortfall { demand; supply } ->
    Format.fprintf ppf
      "summed over the hyperperiod, the slot supply Σ min(m, available) = %d cannot cover the total demand %d"
      supply demand
  | Interval_demand { start; len; demand; supply } ->
    Format.fprintf ppf
      "the cyclic interval [%d, %d) must absorb %d forced unit(s) but supplies only m·%d = %d"
      start (start + len) demand len supply

let pp ppf (cert : t) =
  Format.fprintf ppf "@[<v>infeasible on %d processor(s):@," cert.m;
  List.iteri (fun i step -> Format.fprintf ppf "  %d. %a@," (i + 1) pp_step step) cert.steps;
  Format.fprintf ppf "@]"
