open Prelude
open Rt_model

module Domains = Domains
module Certificate = Certificate

type verdict =
  | Infeasible of Certificate.t
  | Trivially_feasible of Schedule.t
  | Pruned of Domains.t

type report = {
  verdict : verdict;
  m_lower : int;
  skipped : string list;
  time_s : float;
}

let default_work_budget = 10_000_000

let utilization_exceeds ts ~m =
  let num, den = Taskset.utilization_num_den ts in
  num > m * den

(* ------------------------------------------------------------------ *)
(* Work budget: every window-based pass draws from a shared pool and, on
   exhaustion, records WHY it stopped instead of silently degrading.    *)

type budget = { mutable left : int; mutable notes : string list; wall : Timer.budget }

let wall_note = "analysis stopped early: wall budget exhausted"

let spend b cost ~note =
  if Timer.cancelled b.wall || Timer.exceeded b.wall ~nodes:0 then begin
    if not (List.mem wall_note b.notes) then b.notes <- wall_note :: b.notes;
    false
  end
  else if cost <= b.left then begin
    b.left <- b.left - cost;
    true
  end
  else begin
    b.notes <- note :: b.notes;
    false
  end

(* Cost of building and sweeping the window tables: one n·T slot table
   plus Σ (T/T_i)·D_i window cells. *)
let window_work ts =
  let t = Taskset.hyperperiod ts in
  let n = Taskset.size ts in
  let cells =
    Array.fold_left
      (fun acc (task : Task.t) -> acc + (t / task.period * task.deadline))
      0 (Taskset.tasks ts)
  in
  (n * t) + cells

(* ------------------------------------------------------------------ *)
(* Fixpoint state at a fixed m.  [allowed] mirrors the replay state of
   Certificate.validate: the analyzer records exactly the derivation steps
   it applies, so a validator replay reconstructs the same matrices.     *)

type fx = {
  ts : Taskset.t;
  m : int;
  n : int;
  horizon : int;
  windows : Windows.t;
  allowed : bool array array; (* [task].(slot), true only in-window *)
  allowed_count : int array; (* per global job *)
  forced : Bitset.t array; (* per slot *)
  forced_job : bool array; (* per global job *)
  saturated : bool array; (* per slot *)
  mutable blocked_cells : int;
  mutable steps_rev : Certificate.step list;
}

exception Contradiction of Certificate.step

let make_fx ts ~m windows =
  let n = Taskset.size ts in
  let horizon = Windows.horizon windows in
  let jobs = Windows.jobs windows in
  let allowed = Array.make_matrix n horizon false in
  Array.iter
    (fun (job : Windows.job) -> Array.iter (fun s -> allowed.(job.task).(s) <- true) job.slots)
    jobs;
  {
    ts;
    m;
    n;
    horizon;
    windows;
    allowed;
    allowed_count = Array.map (fun (job : Windows.job) -> Array.length job.slots) jobs;
    forced = Array.init horizon (fun _ -> Bitset.create n);
    forced_job = Array.make (Array.length jobs) false;
    saturated = Array.make horizon false;
    blocked_cells = 0;
    steps_rev = [];
  }

let emit fx step = fx.steps_rev <- step :: fx.steps_rev

let certificate fx terminal = { Certificate.m = fx.m; steps = List.rev (terminal :: fx.steps_rev) }

(* Laxity-zero forcing + slot saturation, iterated to a fixed point.
   Raises [Contradiction] with the terminal step on refutation. *)
let run_fixpoint fx =
  let jobs = Windows.jobs fx.windows in
  let jobq = Queue.create () in
  let slotq = Queue.create () in
  Array.iteri (fun g _ -> Queue.push g jobq) jobs;
  let process_job g =
    if not fx.forced_job.(g) then begin
      let job = jobs.(g) in
      let wcet = (Taskset.task fx.ts job.task).wcet in
      let c = fx.allowed_count.(g) in
      if c < wcet then
        raise (Contradiction (Certificate.Starved { task = job.task; k = job.index; allowed = c; wcet }))
      else if c = wcet then begin
        fx.forced_job.(g) <- true;
        emit fx (Certificate.Forced { task = job.task; k = job.index });
        Array.iter
          (fun s ->
            if fx.allowed.(job.task).(s) && not (Bitset.mem fx.forced.(s) job.task) then begin
              Bitset.add fx.forced.(s) job.task;
              Queue.push s slotq
            end)
          job.slots
      end
    end
  in
  let process_slot s =
    let c = Bitset.cardinal fx.forced.(s) in
    if c > fx.m then raise (Contradiction (Certificate.Slot_overload { time = s }))
    else if c = fx.m && not fx.saturated.(s) then begin
      fx.saturated.(s) <- true;
      emit fx (Certificate.Saturated { time = s });
      for i = 0 to fx.n - 1 do
        if fx.allowed.(i).(s) && not (Bitset.mem fx.forced.(s) i) then begin
          fx.allowed.(i).(s) <- false;
          fx.blocked_cells <- fx.blocked_cells + 1;
          let g = Windows.job_id_at fx.windows ~task:i ~time:s in
          fx.allowed_count.(g) <- fx.allowed_count.(g) - 1;
          Queue.push g jobq
        end
      done
    end
  in
  while not (Queue.is_empty jobq && Queue.is_empty slotq) do
    while not (Queue.is_empty jobq) do
      process_job (Queue.pop jobq)
    done;
    if not (Queue.is_empty slotq) then process_slot (Queue.pop slotq)
  done

(* ------------------------------------------------------------------ *)
(* m-independent lower bounds (computed on the pristine windows only:
   saturation-derived facts are conditional on the analyzed m, so they
   must not leak into the bound). *)

(* Max over slots of the number of laxity-zero tasks covering the slot:
   all of them are forced to run there on any number of processors. *)
let zero_laxity_bound ts windows =
  let horizon = Windows.horizon windows in
  let zl = Array.make horizon 0 in
  Array.iter
    (fun (job : Windows.job) ->
      let task = Taskset.task ts job.task in
      if task.wcet = task.deadline then Array.iter (fun s -> zl.(s) <- zl.(s) + 1) job.slots)
    (Windows.jobs windows);
  Array.fold_left Int.max 0 zl

(* Smallest m' whose hyperperiod supply Σ_t min(m', load t) covers the
   total demand; [n + 1] when even unlimited parallelism falls short. *)
let supply_bound ts windows =
  let load = Windows.slot_load windows in
  let n = Taskset.size ts in
  let demand = Taskset.total_demand ts in
  let counts = Array.make (n + 1) 0 in
  Array.iter (fun l -> counts.(l) <- counts.(l) + 1) load;
  let rec search m' =
    if m' > n then n + 1
    else begin
      let supply = ref 0 in
      Array.iteri (fun l c -> supply := !supply + (c * Int.min m' l)) counts;
      if !supply >= demand then m' else search (m' + 1)
    end
  in
  search 1

(* ------------------------------------------------------------------ *)
(* Interval demand-bound tests.  Candidate intervals are the cyclic
   [start, start+len) whose endpoints are window boundaries (release
   instants and absolute deadlines folded mod T) — the only places where
   a job's forced contribution max(0, C − slots outside) changes.       *)

let boundary_points ts windows =
  let horizon = Windows.horizon windows in
  let starts = Array.make horizon false and ends = Array.make horizon false in
  Array.iter
    (fun (job : Windows.job) ->
      let task = Taskset.task ts job.task in
      starts.(Intmath.imod job.release horizon) <- true;
      ends.(Intmath.imod (job.release + task.deadline) horizon) <- true)
    (Windows.jobs windows);
  let collect flags =
    let acc = ref [] in
    for s = horizon - 1 downto 0 do
      if flags.(s) then acc := s :: !acc
    done;
    !acc
  in
  (collect starts, collect ends)

let overlap a b c d = Int.max 0 (Int.min b d - Int.max a c)

(* Pristine slots of [job] inside the cyclic interval, in O(1): both the
   window [r, r+D) and the interval live in [0, 2T), so three interval
   copies (shifted by −T, 0, +T) cover every cyclic intersection. *)
let pristine_inside ~horizon ~release ~deadline ~start ~len =
  let r2 = release + deadline in
  overlap release r2 (start - horizon) (start + len - horizon)
  + overlap release r2 start (start + len)
  + overlap release r2 (start + horizon) (start + len + horizon)

(* Sweep all candidate intervals on the pristine windows.  Returns the max
   lower bound ⌈demand/len⌉ and, when [detect_m] is given, the first
   interval whose forced demand exceeds m·len. *)
let pristine_interval_scan ts windows budget ?detect_m () =
  let horizon = Windows.horizon windows in
  let jobs = Windows.jobs windows in
  let wcet = Array.map (fun (j : Windows.job) -> (Taskset.task ts j.task).wcet) jobs in
  let deadline = Array.map (fun (j : Windows.job) -> (Taskset.task ts j.task).deadline) jobs in
  let starts, ends = boundary_points ts windows in
  let per_start = List.length ends * Array.length jobs in
  let bound = ref 1 in
  let hit = ref None in
  (try
     List.iter
       (fun start ->
         if
           not
             (spend budget per_start
                ~note:"interval pass truncated: work budget exhausted mid-sweep")
         then raise Exit;
         List.iter
           (fun e ->
             let len = Intmath.imod (e - start) horizon in
             (* len = 0 would be the full hyperperiod: that is exactly the
                utilization test, already run. *)
             if len > 0 then begin
               let demand = ref 0 in
               Array.iteri
                 (fun g (job : Windows.job) ->
                   let inside =
                     pristine_inside ~horizon ~release:job.release ~deadline:deadline.(g)
                       ~start ~len
                   in
                   demand := !demand + Int.max 0 (wcet.(g) - (deadline.(g) - inside)))
                 jobs;
               if !demand > 0 then bound := Int.max !bound (Intmath.cdiv !demand len);
               match detect_m with
               | Some m when !hit = None && !demand > m * len ->
                 hit := Some (start, len, !demand)
               | _ -> ()
             end)
           ends)
       starts
   with Exit -> ());
  (!bound, !hit)

(* Same detection on the post-fixpoint windows (needed once saturation has
   blocked cells: demand can only grow, so this subsumes the pristine
   detection).  Per-job counts scan the window slots, mirroring
   Certificate.validate exactly. *)
let post_interval_scan fx budget =
  let horizon = fx.horizon in
  let jobs = Windows.jobs fx.windows in
  let wcet = Array.map (fun (j : Windows.job) -> (Taskset.task fx.ts j.task).wcet) jobs in
  let starts, ends = boundary_points fx.ts fx.windows in
  let window_cells = Array.fold_left (fun acc (j : Windows.job) -> acc + Array.length j.slots) 0 jobs in
  let per_start = List.length ends * window_cells in
  let hit = ref None in
  (try
     List.iter
       (fun start ->
         if
           not
             (spend budget per_start
                ~note:"post-fixpoint interval pass truncated: work budget exhausted mid-sweep")
         then raise Exit;
         List.iter
           (fun e ->
             let len = Intmath.imod (e - start) horizon in
             if len > 0 && !hit = None then begin
               let demand = ref 0 in
               Array.iteri
                 (fun g (job : Windows.job) ->
                   let inside = ref 0 and total = ref 0 in
                   Array.iter
                     (fun s ->
                       if fx.allowed.(job.task).(s) then begin
                         incr total;
                         if Intmath.imod (s - start) horizon < len then incr inside
                       end)
                     job.slots;
                   demand := !demand + Int.max 0 (wcet.(g) - (!total - !inside)))
                 jobs;
               if !demand > fx.m * len then hit := Some (start, len, !demand)
             end)
           ends)
       starts
   with Exit -> ());
  !hit

(* ------------------------------------------------------------------ *)
(* Post-fixpoint per-slot availability and supply.                      *)

let availability fx =
  let avail = Array.make fx.horizon 0 in
  for s = 0 to fx.horizon - 1 do
    for i = 0 to fx.n - 1 do
      if fx.allowed.(i).(s) then avail.(s) <- avail.(s) + 1
    done
  done;
  avail

let post_supply fx avail = Array.fold_left (fun acc a -> acc + Int.min fx.m a) 0 avail

(* ------------------------------------------------------------------ *)
(* Trivially-feasible pass: first-fit-decreasing-density partitioning with
   a per-processor EDF packing over an unrolled double hyperperiod (so
   wrapped windows are served in release order).  The witness is accepted
   only if every job is fully served — and re-checked by Verify before the
   verdict is trusted. *)

let try_partition fx budget =
  let ts = fx.ts and m = fx.m and horizon = fx.horizon in
  let jobs = Windows.jobs fx.windows in
  let cost = 2 * horizon * (Array.length jobs + fx.n) in
  if not (spend budget cost ~note:"partitioned-fit pass skipped: work budget exhausted") then
    None
  else begin
    let order = Array.init fx.n (fun i -> i) in
    Array.sort
      (fun a b ->
        let da = Task.density (Taskset.task ts a) and db = Task.density (Taskset.task ts b) in
        if da <> db then Float.compare db da else Int.compare a b)
      order;
    let bin_demand = Array.make m 0 in
    let assign = Array.make fx.n (-1) in
    let fits = ref true in
    Array.iter
      (fun i ->
        let task = Taskset.task ts i in
        let d = Taskset.jobs_per_hyperperiod ts i * task.wcet in
        let rec place j =
          if j >= m then fits := false
          else if bin_demand.(j) + d <= horizon then begin
            bin_demand.(j) <- bin_demand.(j) + d;
            assign.(i) <- j
          end
          else place (j + 1)
        in
        place 0)
      order;
    if not !fits then None
    else begin
      let rem = Array.map (fun (j : Windows.job) -> (Taskset.task ts j.task).wcet) jobs in
      let sched = Schedule.create ~m ~horizon in
      for proc = 0 to m - 1 do
        let mine =
          Array.to_list jobs |> List.filter (fun (j : Windows.job) -> assign.(j.task) = proc)
        in
        for x = 0 to (2 * horizon) - 1 do
          let t = Intmath.imod x horizon in
          if Schedule.get sched ~proc ~time:t = Schedule.idle then begin
            let best = ref None in
            List.iter
              (fun (j : Windows.job) ->
                let d = (Taskset.task ts j.task).deadline in
                let g = Windows.global_index fx.windows ~task:j.task ~index:j.index in
                if rem.(g) > 0 && j.release <= x && x < j.release + d then
                  match !best with
                  | Some (key, _) when key <= (j.release + d, j.task, j.index) -> ()
                  | _ -> best := Some ((j.release + d, j.task, j.index), g))
              mine;
            match !best with
            | Some ((_, task, _), g) ->
              Schedule.set sched ~proc ~time:t task;
              rem.(g) <- rem.(g) - 1
            | None -> ()
          end
        done
      done;
      if Array.for_all (fun r -> r = 0) rem && Verify.is_feasible ts sched then Some sched
      else None
    end
  end

(* ------------------------------------------------------------------ *)

let build_domains fx ~m_lower avail =
  let d = Domains.create ~n:fx.n ~m:fx.m ~horizon:fx.horizon in
  for s = 0 to fx.horizon - 1 do
    Bitset.iter (fun task -> Domains.force d ~task ~time:s) fx.forced.(s);
    if avail.(s) = 0 then Domains.mark_dead d ~time:s
  done;
  if fx.blocked_cells > 0 then begin
    let jobs = Windows.jobs fx.windows in
    Array.iter
      (fun (job : Windows.job) ->
        Array.iter
          (fun s -> if not (fx.allowed.(job.task).(s)) then Domains.block d ~task:job.task ~time:s)
          job.slots)
      jobs
  end;
  Domains.set_m_lower d m_lower;
  d

let check_args name ts ~m =
  if m < 1 then invalid_arg (name ^ ": m must be >= 1");
  if not (Taskset.is_constrained ts) then
    invalid_arg (name ^ ": arbitrary-deadline task set (reduce with Clone first)")

let analyze ?(work_budget = default_work_budget) ?(wall = Timer.unlimited) ts ~m =
  check_args "Analysis.analyze" ts ~m;
  let t0 = Timer.now () in
  let finish ~m_lower ~skipped verdict =
    { verdict; m_lower; skipped; time_s = Timer.now () -. t0 }
  in
  let num, den = Taskset.utilization_num_den ts in
  let u_bound = Intmath.cdiv num den in
  if num > m * den then
    finish ~m_lower:u_bound ~skipped:[]
      (Infeasible { Certificate.m; steps = [ Certificate.Utilization { demand = num; supply = m * den } ] })
  else begin
    let budget = { left = work_budget; notes = []; wall } in
    let n = Taskset.size ts in
    let horizon = Taskset.hyperperiod ts in
    if
      not
        (spend budget (window_work ts)
           ~note:
             (Printf.sprintf
                "window passes skipped: instance cost %d exceeds work budget %d (n=%d, T=%d)"
                (window_work ts) work_budget n horizon))
    then
      (* Too large to inspect slot-by-slot: report the skip (the old
         slot_capacity_shortfall guard was silent here) and fall back to
         the utilization bound alone. *)
      finish ~m_lower:u_bound ~skipped:budget.notes
        (Pruned
           (let d = Domains.create ~n ~m ~horizon in
            Domains.set_m_lower d u_bound;
            d))
    else begin
      let windows = Windows.build ts in
      let fx = make_fx ts ~m windows in
      let m_low = ref u_bound in
      m_low := Int.max !m_low (zero_laxity_bound ts windows);
      m_low := Int.max !m_low (supply_bound ts windows);
      match run_fixpoint fx with
      | exception Contradiction terminal ->
        finish ~m_lower:!m_low ~skipped:budget.notes (Infeasible (certificate fx terminal))
      | () -> (
        let avail = availability fx in
        let cap = post_supply fx avail in
        let demand = Taskset.total_demand ts in
        if cap < demand then
          finish ~m_lower:!m_low ~skipped:budget.notes
            (Infeasible (certificate fx (Certificate.Supply_shortfall { demand; supply = cap })))
        else begin
          (* Pristine sweep: lower bounds always; direct detection doubles
             as the certificate source while no cell is blocked. *)
          let detect_m = if fx.blocked_cells = 0 then Some m else None in
          let bound, pristine_hit = pristine_interval_scan ts windows budget ?detect_m () in
          m_low := Int.max !m_low bound;
          let hit =
            match pristine_hit with
            | Some _ -> pristine_hit
            | None -> if fx.blocked_cells > 0 then post_interval_scan fx budget else None
          in
          match hit with
          | Some (start, len, demand) ->
            finish ~m_lower:!m_low ~skipped:budget.notes
              (Infeasible
                 (certificate fx
                    (Certificate.Interval_demand { start; len; demand; supply = m * len })))
          | None -> (
            match try_partition fx budget with
            | Some sched ->
              finish ~m_lower:!m_low ~skipped:budget.notes (Trivially_feasible sched)
            | None ->
              finish ~m_lower:!m_low ~skipped:budget.notes
                (Pruned (build_domains fx ~m_lower:!m_low avail)))
        end)
    end
  end

let m_lower_bound ?(work_budget = default_work_budget) ts =
  if not (Taskset.is_constrained ts) then
    invalid_arg "Analysis.m_lower_bound: arbitrary-deadline task set (reduce with Clone first)";
  let num, den = Taskset.utilization_num_den ts in
  let u_bound = Intmath.cdiv num den in
  let budget = { left = work_budget; notes = []; wall = Timer.unlimited } in
  if not (spend budget (window_work ts) ~note:"") then u_bound
  else begin
    let windows = Windows.build ts in
    let bound, _ = pristine_interval_scan ts windows budget () in
    Int.max
      (Int.max u_bound (zero_laxity_bound ts windows))
      (Int.max (supply_bound ts windows) bound)
  end
