open Prelude
open Rt_model

(* Rows and per-slot sets are allocated on first write: an analysis that was
   budget-skipped on a Table IV-sized instance (n·T ≈ 10^8) still returns a
   Domains.t without materializing n·T cells. *)
type t = {
  n : int;
  m : int;
  horizon : int;
  forced : Bitset.t option array; (* per slot: tasks that must run there *)
  blocked : bool array option array; (* [task]: in-window but excluded slots *)
  dead : bool array; (* per slot: no task may run *)
  mutable m_lower : int;
}

let create ~n ~m ~horizon =
  if n < 1 || m < 1 || horizon < 1 then invalid_arg "Domains.create";
  {
    n;
    m;
    horizon;
    forced = Array.make horizon None;
    blocked = Array.make n None;
    dead = Array.make horizon false;
    m_lower = 1;
  }

let slot t time =
  if time < 0 || time >= t.horizon then invalid_arg "Domains: slot out of range";
  time

let task_id t task = if task < 0 || task >= t.n then invalid_arg "Domains: bad task id" else task

let forced_set t time =
  match t.forced.(time) with
  | Some set -> set
  | None ->
    let set = Bitset.create t.n in
    t.forced.(time) <- Some set;
    set

let blocked_row t task =
  match t.blocked.(task) with
  | Some row -> row
  | None ->
    let row = Array.make t.horizon false in
    t.blocked.(task) <- Some row;
    row

let force t ~task ~time = Bitset.add (forced_set t (slot t time)) (task_id t task)
let block t ~task ~time = (blocked_row t (task_id t task)).(slot t time) <- true
let mark_dead t ~time = t.dead.(slot t time) <- true
let set_m_lower t v = if v > t.m_lower then t.m_lower <- v

let n t = t.n
let m t = t.m
let horizon t = t.horizon
let matches t ~n ~m ~horizon = t.n = n && t.m = m && t.horizon = horizon

let is_forced t ~task ~time =
  let task = task_id t task in
  match t.forced.(slot t time) with None -> false | Some set -> Bitset.mem set task

let is_blocked t ~task ~time =
  let time = slot t time in
  match t.blocked.(task_id t task) with None -> false | Some row -> row.(time)

let is_dead t ~time = t.dead.(slot t time)

let forced_at t ~time =
  match t.forced.(slot t time) with None -> [] | Some set -> Bitset.elements set

let forced_count t ~time =
  match t.forced.(slot t time) with None -> 0 | Some set -> Bitset.cardinal set

let m_lower t = t.m_lower

let forced_cells t =
  Array.fold_left
    (fun acc -> function None -> acc | Some set -> acc + Bitset.cardinal set)
    0 t.forced

let blocked_cells t =
  Array.fold_left
    (fun acc -> function
      | None -> acc
      | Some row -> Array.fold_left (fun acc b -> if b then acc + 1 else acc) acc row)
    0 t.blocked

let dead_slots t = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 t.dead

let respects t sched =
  if Schedule.horizon sched <> t.horizon then invalid_arg "Domains.respects: horizon mismatch";
  let ok = ref true in
  for time = 0 to t.horizon - 1 do
    let running = Schedule.tasks_at sched ~time in
    (match t.forced.(time) with
    | None -> ()
    | Some set -> Bitset.iter (fun task -> if not (List.mem task running) then ok := false) set);
    List.iter (fun task -> if task < t.n && is_blocked t ~task ~time then ok := false) running
  done;
  !ok

let pp ppf t =
  Format.fprintf ppf
    "domains (m=%d): %d forced cell(s), %d blocked cell(s), %d dead slot(s), m >= %d" t.m
    (forced_cells t) (blocked_cells t) (dead_slots t) t.m_lower
