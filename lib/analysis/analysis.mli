(** Static schedulability analysis — the solver-free pre-pass.

    The paper prunes unsolvable instances only with the trivial [r > 1]
    utilization filter (Section VII) before paying full CSP search.  This
    module is the single pre-filter entry point of the library: it examines
    a task set and a processor count {e before any search} and returns

    - [Infeasible certificate] — a machine-checkable, pretty-printable
      chain of interval/slot demand arguments ({!Certificate.validate}
      re-verifies it independently);
    - [Trivially_feasible schedule] — a witness found statically (a
      partitioned first-fit with per-processor EDF packing succeeded);
    - [Pruned domains] — per-slot forced tasks, blocked cells, dead slots
      and a lower bound on any feasible [m] ({!Domains}), ready to seed
      every backend's search.

    The passes, in increasing cost order:

    + exact utilization test [Σ C_i·T/T_i > m·T] (the paper's [r > 1]);
    + laxity-zero forced execution: a job whose usable window slots number
      exactly [C] must run in all of them; a slot with more than [m]
      forced tasks is an immediate contradiction;
    + a fixpoint loop: a slot saturated by [m] forced tasks is removed
      from every other window, which can force or starve further jobs,
      until stable;
    + per-slot supply vs demand over the hyperperiod
      ([Σ_t min(m, available) < Σ C_i·T/T_i]);
    + interval demand-bound tests: for window-aligned cyclic intervals
      [[t1, t2)], the demand jobs are forced to place inside
      ([Σ max(0, C − usable slots outside)]) vs the supply [m·(t2−t1)].

    Window-based passes cost [O(n·T + Σ T/T_i·D_i)] plus the interval
    enumeration; passes whose cost would exceed [work_budget] are skipped
    and {e reported} in {!report.skipped} — never silently dropped.

    Identical platforms and constrained-deadline task sets only: reduce
    arbitrary deadlines with {!Rt_model.Clone} first (as {!Core.solve}
    does transparently). *)

module Domains = Domains
module Certificate = Certificate

type verdict =
  | Infeasible of Certificate.t
  | Trivially_feasible of Rt_model.Schedule.t
  | Pruned of Domains.t

type report = {
  verdict : verdict;
  m_lower : int;
      (** Lower bound on any feasible processor count, from m-independent
          arguments only (also stored in [Pruned] domains). *)
  skipped : string list;
      (** Passes not run, with the reason — e.g. a work-budget overrun on a
          Table IV-sized instance.  Empty means the analysis was complete. *)
  time_s : float;
}

val default_work_budget : int
(** [10^7] elementary window operations — the cost class of the former
    silent [slot_capacity_shortfall] guard, now reported when hit. *)

val analyze :
  ?work_budget:int -> ?wall:Prelude.Timer.budget -> Rt_model.Taskset.t -> m:int -> report
(** Run all passes.  [wall] (default {!Prelude.Timer.unlimited}) is polled
    at every budget checkpoint: once the wall clock runs out or the budget
    is cancelled, remaining passes are skipped and reported — so a caller
    racing the analyzer against a deadline (the portfolio's arm 0) never
    loses more than one checkpoint interval past its limit.
    @raise Invalid_argument on non-constrained-deadline task sets or
    [m < 1]. *)

val m_lower_bound : ?work_budget:int -> Rt_model.Taskset.t -> int
(** Smallest processor count not excluded by the m-independent arguments
    (utilization, laxity-zero slot counts, supply and interval bounds):
    the starting point for {!Core.min_processors}' scan.  At least
    [⌈U⌉]; [n + 1] when the set is provably infeasible on any number of
    processors.
    @raise Invalid_argument on non-constrained-deadline task sets. *)

val utilization_exceeds : Rt_model.Taskset.t -> m:int -> bool
(** The paper's [r > 1] filter, computed exactly (no float rounding) —
    kept as a named fast path for the experiment tables' filter column. *)
