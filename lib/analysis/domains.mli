(** Pruned slot domains produced by the static analyzer.

    The analyzer derives two kinds of facts about a task set on [m]
    identical processors, both quantified over {e every} feasible schedule:

    - {b forced} cells: task [i] runs at slot [t] in every feasible
      schedule (its job has no slack left once the blocked slots are
      discounted);
    - {b blocked} cells: task [i] runs at slot [t] in no feasible schedule
      (the slot is saturated by [m] forced tasks), even though the slot
      lies inside one of the task's availability windows.

    Because the facts hold for every feasible schedule, seeding any
    complete backend with them preserves the solution set exactly: search
    only sheds branches that could not have led to a feasible schedule.
    The soundness property — every {!Rt_model.Verify}-accepted schedule
    {!respects} the domains — is property-tested in
    [test/test_analysis.ml].

    A value of this type is tied to the task set, horizon and processor
    count it was derived for; backends check the fingerprint with
    {!matches} before using it. *)

type t

val create : n:int -> m:int -> horizon:int -> t
(** Empty domains (no facts, [m_lower = 1]); populated by the analyzer. *)

(** {2 Construction (analyzer-side)} *)

val force : t -> task:int -> time:int -> unit
val block : t -> task:int -> time:int -> unit
val mark_dead : t -> time:int -> unit
val set_m_lower : t -> int -> unit
(** Raise the lower bound (keeps the maximum seen). *)

(** {2 Queries (backend-side)} *)

val n : t -> int
val m : t -> int
val horizon : t -> int

val matches : t -> n:int -> m:int -> horizon:int -> bool
(** Fingerprint check: the domains were derived for this instance shape. *)

val is_forced : t -> task:int -> time:int -> bool
val is_blocked : t -> task:int -> time:int -> bool
val is_dead : t -> time:int -> bool

val forced_at : t -> time:int -> int list
(** Tasks forced at the slot, ascending ids. *)

val forced_count : t -> time:int -> int

val m_lower : t -> int
(** Lower bound on any feasible processor count for the task set (derived
    from m-independent arguments only, so it is valid for every [m]). *)

(** {2 Reporting} *)

val forced_cells : t -> int
val blocked_cells : t -> int
val dead_slots : t -> int

val respects : t -> Rt_model.Schedule.t -> bool
(** [respects d sched] checks that the schedule runs every forced task at
    its forced slot and never uses a blocked cell — the contract every
    feasible schedule satisfies when the analyzer is sound.
    @raise Invalid_argument on a horizon mismatch. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: forced/blocked/dead counts and the [m] lower bound. *)
