open Rt_model
module E = Fd.Engine

type t = {
  eng : E.t;
  m : int;
  horizon : int;
  vars : E.var array array;  (* [proc].[slot], values -1..n-1 *)
}

let engine t = t.eng
let horizon t = t.horizon
let var t ~proc ~time = t.vars.(proc).(time)

(* Static domains are derived for identical unit-rate platforms; accepting
   them alongside a heterogeneous platform would smuggle unsound facts into
   the model. *)
let checked_domains name platform domains ~n ~m ~horizon =
  match domains with
  | None -> None
  | Some d ->
    if not (Platform.is_identical platform) then
      invalid_arg (name ^ ": domains require an identical platform");
    if not (Analysis.Domains.matches d ~n ~m ~horizon) then
      invalid_arg (name ^ ": domains derived for a different instance");
    Some d

let build ?platform ?(symmetry = true) ?(var_budget = 2_000_000) ?domains ts ~m =
  let platform = match platform with Some p -> p | None -> Platform.identical ~m in
  if Platform.processors platform <> m then invalid_arg "Csp2_fd.build: platform/m mismatch";
  let windows = Windows.build ts in
  let n = Taskset.size ts in
  let horizon = Windows.horizon windows in
  let domains = checked_domains "Csp2_fd.build" platform domains ~n ~m ~horizon in
  let requested = m * horizon in
  if requested > var_budget then
    raise (E.Too_large (Printf.sprintf "CSP2 needs %d variables (budget %d)" requested var_budget));
  let eng = E.create ~var_budget () in
  let blocked i s =
    match domains with None -> false | Some d -> Analysis.Domains.is_blocked d ~task:i ~time:s
  in
  (* (7) + heterogeneity: domain of x_j(t) = {-1} ∪ available tasks with
     positive rate on P_j, minus statically blocked cells. *)
  let avail = Array.init horizon (fun s -> Windows.available_tasks windows ~time:s) in
  let vars =
    Array.init m (fun j ->
        Array.init horizon (fun s ->
            let runnable =
              List.filter
                (fun i -> Platform.can_run platform ~task:i ~proc:j && not (blocked i s))
                avail.(s)
            in
            E.new_var_of eng ~name:(Printf.sprintf "x_%d_%d" j s) (-1 :: runnable)))
  in
  (* Statically forced cells: the task occupies exactly one processor in
     that slot (sound in every feasible schedule, so the solution set is
     unchanged while whole branches disappear). *)
  (match domains with
  | None -> ()
  | Some d ->
    for s = 0 to horizon - 1 do
      List.iter
        (fun i ->
          let scope = Array.init m (fun j -> vars.(j).(s)) in
          ignore (Fd.Constraints.count_eq eng scope ~value:i 1))
        (Analysis.Domains.forced_at d ~time:s)
    done);
  (* (8): per slot, non-idle values pairwise distinct. *)
  for s = 0 to horizon - 1 do
    let scope = Array.init m (fun j -> vars.(j).(s)) in
    ignore (Fd.Constraints.alldiff_except eng scope ~except:(-1))
  done;
  (* (9)/(12): per-job demand. *)
  Array.iter
    (fun (job : Windows.job) ->
      let i = job.task in
      let wcet = (Taskset.task ts i).wcet in
      let scope = ref [] in
      let weights = ref [] in
      Array.iter
        (fun s ->
          for j = 0 to m - 1 do
            let rate = Platform.rate platform ~task:i ~proc:j in
            if rate > 0 then begin
              scope := vars.(j).(s) :: !scope;
              weights := rate :: !weights
            end
          done)
        job.slots;
      ignore
        (Fd.Constraints.count_weighted_eq eng (Array.of_list !scope) ~value:i
           ~weights:(Array.of_list !weights) wcet))
    (Windows.jobs windows);
  (* (10)/(13): ascending order across identical neighbours. *)
  if symmetry then
    for s = 0 to horizon - 1 do
      for j = 0 to m - 2 do
        if Platform.same_kind platform ~proc:j ~proc':(j + 1) ~tasks:n then
          ignore (Fd.Constraints.leq eng vars.(j).(s) vars.(j + 1).(s))
      done
    done;
  { eng; m; horizon; vars }

let decode t valuation =
  let sched = Schedule.create ~m:t.m ~horizon:t.horizon in
  for j = 0 to t.m - 1 do
    for s = 0 to t.horizon - 1 do
      let v = valuation t.vars.(j).(s) in
      if v <> -1 then Schedule.set sched ~proc:j ~time:s v
    done
  done;
  sched

let solve ?platform ?symmetry ?var_budget ?domains ?var_heuristic ?value_heuristic ?seed
    ?budget ?restarts ts ~m =
  match build ?platform ?symmetry ?var_budget ?domains ts ~m with
  | exception E.Too_large reason -> (Outcome.Memout reason, None)
  | model ->
    let result =
      Fd.Search.solve ?var_heuristic ?value_heuristic ?seed ?budget ?restarts model.eng
    in
    let outcome =
      match result.Fd.Search.outcome with
      | Fd.Search.Sat valuation -> Outcome.Feasible (decode model valuation)
      | Fd.Search.Unsat -> Outcome.Infeasible
      | Fd.Search.Limit -> Outcome.Limit
    in
    (outcome, Some result.Fd.Search.stats)
