(** CSP1 compiled to CNF for the CDCL SAT solver.

    Section IV motivates CSP1's boolean variables by noting that "even
    boolean satisfiability (SAT) solvers could be used"; this module cashes
    that remark in.  Only in-window (task, processor, slot) cells get a
    propositional variable; constraints (3) and (4) become at-most-one
    clauses and the per-job demand (5) an exactly-[C_i] sequential counter.

    Identical platforms only: the weighted demand (11) of heterogeneous
    platforms is a pseudo-boolean constraint, outside plain CNF cardinality
    (use the FD paths for those). *)

type t

val build :
  ?var_budget:int -> ?domains:Analysis.Domains.t -> Rt_model.Taskset.t -> m:int -> t
(** @raise Fd.Engine.Too_large when the cell count exceeds the budget
    (same cliff semantics as {!Csp1.build}). *)

val solver : t -> Sat.Solver.t
val cell_count : t -> int
(** Number of propositional variables before the cardinality auxiliaries. *)

val to_dimacs : t -> Sat.Dimacs.cnf
(** Export the clause set (for external solvers or round-trip tests).
    Only valid before the first {!solve}/[Sat.Solver.solve] call. *)

val decode : t -> bool array -> Rt_model.Schedule.t

val solve :
  ?var_budget:int ->
  ?domains:Analysis.Domains.t ->
  ?seed:int ->
  ?budget:Prelude.Timer.budget ->
  Rt_model.Taskset.t ->
  m:int ->
  Outcome.t * Sat.Solver.stats option
