open Rt_model
module E = Fd.Engine

type t = {
  eng : E.t;
  ts : Taskset.t;
  m : int;
  horizon : int;
  vars : E.var array array array;  (* [task].[proc].[slot] *)
}

let horizon t = t.horizon
let engine t = t.eng

let var t ~task ~proc ~time = t.vars.(task).(proc).(time)

let build ?platform ?(var_budget = 2_000_000) ?domains ts ~m =
  let platform = match platform with Some p -> p | None -> Platform.identical ~m in
  if Platform.processors platform <> m then invalid_arg "Csp1.build: platform/m mismatch";
  let windows = Windows.build ts in
  let n = Taskset.size ts in
  let horizon = Windows.horizon windows in
  let domains =
    match domains with
    | None -> None
    | Some d ->
      if not (Platform.is_identical platform) then
        invalid_arg "Csp1.build: domains require an identical platform";
      if not (Analysis.Domains.matches d ~n ~m ~horizon) then
        invalid_arg "Csp1.build: domains derived for a different instance";
      Some d
  in
  let blocked i s =
    match domains with None -> false | Some d -> Analysis.Domains.is_blocked d ~task:i ~time:s
  in
  (* Refuse models beyond the budget before allocating anything: this is
     the moral equivalent of Choco's OOM on Table IV instances. *)
  let requested = n * m * horizon in
  if requested > var_budget then
    raise (E.Too_large (Printf.sprintf "CSP1 needs %d variables (budget %d)" requested var_budget));
  let eng = E.create ~var_budget () in
  (* Constraint (2) and the heterogeneous domain restriction: out-of-window
     or zero-rate variables are constants 0. *)
  let in_window = Array.make_matrix n horizon false in
  Array.iter
    (fun (job : Windows.job) ->
      Array.iter (fun s -> in_window.(job.task).(s) <- true) job.slots)
    (Windows.jobs windows);
  let vars =
    Array.init n (fun i ->
        Array.init m (fun j ->
            Array.init horizon (fun s ->
                let feasible_cell =
                  in_window.(i).(s)
                  && Platform.can_run platform ~task:i ~proc:j
                  && not (blocked i s)
                in
                let hi = if feasible_cell then 1 else 0 in
                E.new_var eng ~name:(Printf.sprintf "x_%d_%d_%d" i j s) ~lo:0 ~hi ())))
  in
  (* (3): at most one task per processor and slot. *)
  for j = 0 to m - 1 do
    for s = 0 to horizon - 1 do
      let scope = Array.init n (fun i -> vars.(i).(j).(s)) in
      ignore (Fd.Constraints.bool_sum_le eng scope 1)
    done
  done;
  (* (4): at most one processor per task and slot. *)
  for i = 0 to n - 1 do
    for s = 0 to horizon - 1 do
      if in_window.(i).(s) then begin
        let scope = Array.init m (fun j -> vars.(i).(j).(s)) in
        ignore (Fd.Constraints.bool_sum_le eng scope 1)
      end
    done
  done;
  (* Statically forced cells: the task runs on exactly one processor in
     that slot in every feasible schedule. *)
  (match domains with
  | None -> ()
  | Some d ->
    for s = 0 to horizon - 1 do
      List.iter
        (fun i ->
          let scope = Array.init m (fun j -> vars.(i).(j).(s)) in
          ignore (Fd.Constraints.bool_sum_eq eng scope 1))
        (Analysis.Domains.forced_at d ~time:s)
    done);
  (* (5)/(11): exact demand per job. *)
  Array.iter
    (fun (job : Windows.job) ->
      let i = job.task in
      let wcet = (Taskset.task ts i).wcet in
      let scope = ref [] in
      let weights = ref [] in
      Array.iter
        (fun s ->
          for j = 0 to m - 1 do
            let rate = Platform.rate platform ~task:i ~proc:j in
            if rate > 0 then begin
              scope := vars.(i).(j).(s) :: !scope;
              weights := rate :: !weights
            end
          done)
        job.slots;
      if Platform.is_identical platform then
        ignore (Fd.Constraints.bool_sum_eq eng (Array.of_list !scope) wcet)
      else
        ignore
          (Fd.Constraints.linear_eq eng
             ~coeffs:(Array.of_list !weights)
             (Array.of_list !scope) wcet))
    (Windows.jobs windows);
  { eng; ts; m; horizon; vars }

let decode t valuation =
  let sched = Schedule.create ~m:t.m ~horizon:t.horizon in
  let n = Taskset.size t.ts in
  for i = 0 to n - 1 do
    for j = 0 to t.m - 1 do
      for s = 0 to t.horizon - 1 do
        if valuation t.vars.(i).(j).(s) = 1 then Schedule.set sched ~proc:j ~time:s i
      done
    done
  done;
  sched

let solve ?platform ?var_budget ?domains ?var_heuristic ?value_heuristic ?seed ?budget
    ?restarts ts ~m =
  match build ?platform ?var_budget ?domains ts ~m with
  | exception E.Too_large reason -> (Outcome.Memout reason, None)
  | model ->
    (* Default to the cheap chronological variable scan with randomized
       values: boolean domains make min-dom degenerate (every open variable
       ties), and value randomization already reproduces the run-to-run
       variance the paper reports for Choco. *)
    let var_heuristic =
      match var_heuristic with Some h -> h | None -> Fd.Search.Input_order
    in
    let value_heuristic =
      match value_heuristic with Some h -> h | None -> Fd.Search.Random_value
    in
    let result =
      Fd.Search.solve ~var_heuristic ~value_heuristic ?seed ?budget ?restarts model.eng
    in
    let outcome =
      match result.Fd.Search.outcome with
      | Fd.Search.Sat valuation -> Outcome.Feasible (decode model valuation)
      | Fd.Search.Unsat -> Outcome.Infeasible
      | Fd.Search.Limit -> Outcome.Limit
    in
    (outcome, Some result.Fd.Search.stats)
