(** CSP encoding #2 (Section V) rendered on the *generic* solver.

    The paper pairs CSP2 with a hand-written search (our {!Csp2} library);
    this module instead posts CSP2's constraints on the generic FD solver,
    which isolates the contribution of the encoding from that of the search
    strategy — the ablation our benchmark harness reports alongside the
    paper's tables.

    Variables: one [(n+1)]-valued [x_j(t)] per (processor, slot), value −1
    for "no task" (6).  Constraints:

    - (7) + Section VI-A2's domain restriction: value [i ∈ D_j(t)] only if
      slot [t] lies in a window of τ_i and [s_{i,j} > 0];
    - (8): two processors agree only on idle — all-different-except-(−1)
      per slot;
    - (9)/(12): per-job (weighted) occurrence equals [C_i];
    - (10)/(13) (optional): ascending value order across (groups of
      identical) processors, the static symmetry breaker. *)

type t

val build :
  ?platform:Rt_model.Platform.t ->
  ?symmetry:bool ->
  ?var_budget:int ->
  ?domains:Analysis.Domains.t ->
  Rt_model.Taskset.t ->
  m:int ->
  t
(** @raise Fd.Engine.Too_large when [m·T] exceeds the variable budget. *)

val engine : t -> Fd.Engine.t
val horizon : t -> int

val var : t -> proc:int -> time:int -> Fd.Engine.var
val decode : t -> (Fd.Engine.var -> int) -> Rt_model.Schedule.t

val solve :
  ?platform:Rt_model.Platform.t ->
  ?symmetry:bool ->
  ?var_budget:int ->
  ?domains:Analysis.Domains.t ->
  ?var_heuristic:Fd.Search.var_heuristic ->
  ?value_heuristic:Fd.Search.value_heuristic ->
  ?seed:int ->
  ?budget:Prelude.Timer.budget ->
  ?restarts:bool ->
  Rt_model.Taskset.t ->
  m:int ->
  Outcome.t * Fd.Search.stats option
