(** CSP encoding #1 (Section IV): boolean variables on the generic solver.

    One 0/1 variable [x_{i,j}(t)] per (task, processor, slot) states whether
    task [i] runs on processor [j] at slot [t].  Constraints:

    - (2) [x_{i,j}(t) = 0] outside τ_i's availability windows — realized as
      domain [{0}] at construction, which is exactly the propagation the
      paper notes brings the variable count from [Σ m·T] down to
      [Σ m·(T/T_i)·D_i];
    - (3) [Σ_i x_{i,j}(t) <= 1] per (processor, slot);
    - (4) [Σ_j x_{i,j}(t) <= 1] per (task, slot);
    - (5) [Σ_{t∈window} Σ_j x_{i,j}(t) = C_i] per job — on heterogeneous
      platforms the weighted variant (11) [Σ s_{i,j}·x_{i,j}(t) = C_i], with
      [x_{i,j}(t) ∈ {0}] whenever [s_{i,j} = 0] (Section VI-A1).

    Theorem 1 (CSP1 ⟺ MGRTS-ID) makes {!decode} of any solution a feasible
    schedule; the test suite checks this against {!Rt_model.Verify}. *)

type t

val build :
  ?platform:Rt_model.Platform.t ->
  ?var_budget:int ->
  ?domains:Analysis.Domains.t ->
  Rt_model.Taskset.t ->
  m:int ->
  t
(** Construct the model.  The variable budget (default 2M) emulates the
    memory cliff of the paper's Choco runs on Table IV sizes.
    @raise Fd.Engine.Too_large when [n·m·T] exceeds the budget.
    @raise Invalid_argument on non-constrained-deadline task sets. *)

val engine : t -> Fd.Engine.t
val horizon : t -> int

val var : t -> task:int -> proc:int -> time:int -> Fd.Engine.var
(** The variable [x_{task,proc}(time)]. *)

val decode : t -> (Fd.Engine.var -> int) -> Rt_model.Schedule.t
(** Theorem 1's [σ] built from a solution valuation. *)

val solve :
  ?platform:Rt_model.Platform.t ->
  ?var_budget:int ->
  ?domains:Analysis.Domains.t ->
  ?var_heuristic:Fd.Search.var_heuristic ->
  ?value_heuristic:Fd.Search.value_heuristic ->
  ?seed:int ->
  ?budget:Prelude.Timer.budget ->
  ?restarts:bool ->
  Rt_model.Taskset.t ->
  m:int ->
  Outcome.t * Fd.Search.stats option
(** Build then search.  Default strategy is the randomized
    min-domain/random-value emulation of Choco's default (so different
    [seed]s may behave very differently, as in Section VII-B); [Memout] is
    reported instead of raising when the model is too large.  Stats are
    [None] only on memout. *)
