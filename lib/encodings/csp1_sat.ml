open Rt_model
module S = Sat.Solver

type t = {
  solver : S.t;
  ts : Taskset.t;
  m : int;
  horizon : int;
  cell : int array array array;  (* [task].[proc].[slot] -> sat var or -1 *)
  cell_count : int;
}

let solver t = t.solver
let cell_count t = t.cell_count

let build ?(var_budget = 2_000_000) ?domains ts ~m =
  let windows = Windows.build ts in
  let n = Taskset.size ts in
  let horizon = Windows.horizon windows in
  (match domains with
  | Some d when not (Analysis.Domains.matches d ~n ~m ~horizon) ->
    invalid_arg "Csp1_sat.build: domains derived for a different instance"
  | _ -> ());
  let blocked i s =
    match domains with None -> false | Some d -> Analysis.Domains.is_blocked d ~task:i ~time:s
  in
  if n * m * horizon > var_budget then
    raise
      (Fd.Engine.Too_large
         (Printf.sprintf "CSP1-SAT needs %d cells (budget %d)" (n * m * horizon) var_budget));
  let solver = S.create () in
  let cell = Array.init n (fun _ -> Array.make_matrix m horizon (-1)) in
  (* Variables only where constraint (2) allows a 1; statically blocked
     cells never get a variable at all (all processors of a slot share the
     created/absent status, which constraint (4) below relies on). *)
  Array.iter
    (fun (job : Windows.job) ->
      Array.iter
        (fun s ->
          if not (blocked job.task s) then
            for j = 0 to m - 1 do
              cell.(job.task).(j).(s) <- S.new_var solver
            done)
        job.slots)
    (Windows.jobs windows);
  let cell_count = S.nvars solver in
  (* (3): at most one task per (processor, slot). *)
  for j = 0 to m - 1 do
    for s = 0 to horizon - 1 do
      let lits = ref [] in
      for i = 0 to n - 1 do
        if cell.(i).(j).(s) >= 0 then lits := S.pos cell.(i).(j).(s) :: !lits
      done;
      Sat.Cardinality.at_most solver ~k:1 !lits
    done
  done;
  (* (4): at most one processor per (task, slot). *)
  for i = 0 to n - 1 do
    for s = 0 to horizon - 1 do
      if cell.(i).(0).(s) >= 0 then begin
        let lits = List.init m (fun j -> S.pos cell.(i).(j).(s)) in
        Sat.Cardinality.at_most solver ~k:1 lits
      end
    done
  done;
  (* (5): exactly C_i per job (over the cells that exist). *)
  Array.iter
    (fun (job : Windows.job) ->
      let wcet = (Taskset.task ts job.task).wcet in
      let lits = ref [] in
      Array.iter
        (fun s ->
          for j = 0 to m - 1 do
            if cell.(job.task).(j).(s) >= 0 then
              lits := S.pos cell.(job.task).(j).(s) :: !lits
          done)
        job.slots;
      Sat.Cardinality.exactly solver ~k:wcet !lits)
    (Windows.jobs windows);
  (* Statically forced cells: at least one processor runs the task there
     (constraint (4) already caps it at one). *)
  (match domains with
  | None -> ()
  | Some d ->
    for s = 0 to horizon - 1 do
      List.iter
        (fun i ->
          if cell.(i).(0).(s) >= 0 then
            S.add_clause solver (List.init m (fun j -> S.pos cell.(i).(j).(s))))
        (Analysis.Domains.forced_at d ~time:s)
    done);
  { solver; ts; m; horizon; cell; cell_count }

let to_dimacs t =
  { Sat.Dimacs.num_vars = S.nvars t.solver; clauses = S.export_clauses t.solver }

let decode t model =
  let sched = Schedule.create ~m:t.m ~horizon:t.horizon in
  let n = Taskset.size t.ts in
  for i = 0 to n - 1 do
    for j = 0 to t.m - 1 do
      for s = 0 to t.horizon - 1 do
        let v = t.cell.(i).(j).(s) in
        if v >= 0 && model.(v) then Schedule.set sched ~proc:j ~time:s i
      done
    done
  done;
  sched

let solve ?var_budget ?domains ?seed ?budget ts ~m =
  match build ?var_budget ?domains ts ~m with
  | exception Fd.Engine.Too_large reason -> (Outcome.Memout reason, None)
  | model ->
    let outcome, stats = S.solve ?budget ?seed model.solver in
    let verdict =
      match outcome with
      | S.Sat assignment -> Outcome.Feasible (decode model assignment)
      | S.Unsat -> Outcome.Infeasible
      | S.Unknown -> Outcome.Limit
    in
    (verdict, Some stats)
