open Prelude

type lit = int

let pos v = 2 * v
let neg v = (2 * v) + 1
let var_of_lit l = l lsr 1
let is_pos l = l land 1 = 0
let negate l = l lxor 1

let lit_of_int i =
  if i = 0 then invalid_arg "Solver.lit_of_int: zero"
  else if i > 0 then pos (i - 1)
  else neg (-i - 1)

type outcome = Sat of bool array | Unsat | Unknown

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnt : int;
  time_s : float;
}

(* Clauses live in a growable array of int arrays; the two watched literals
   are kept at positions 0 and 1. *)
type t = {
  mutable nvars : int;
  mutable clauses : int array array;
  mutable nclauses : int;
  mutable watches : int list array;  (* literal -> clause indices *)
  mutable assigns : int array;  (* var -> -1 / 0 / 1 *)
  mutable phase : bool array;
  mutable reason : int array;  (* var -> clause index or -1 *)
  mutable var_level : int array;
  mutable activity : float array;
  mutable seen : bool array;
  mutable trail : int array;  (* literals, in assignment order *)
  mutable trail_size : int;
  mutable trail_lim : int array;  (* level -> trail index *)
  mutable nlevels : int;
  mutable qhead : int;
  mutable var_inc : float;
  (* order heap (max-activity first) *)
  mutable heap : int array;
  mutable heap_size : int;
  mutable heap_pos : int array;  (* var -> index in heap, or -1 *)
  mutable solving : bool;
  mutable root_conflict : bool;
  mutable n_learnt : int;
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_props : int;
  mutable n_restarts : int;
}

let create () =
  {
    nvars = 0;
    clauses = Array.make 16 [||];
    nclauses = 0;
    watches = Array.make 16 [];
    assigns = [||];
    phase = [||];
    reason = [||];
    var_level = [||];
    activity = [||];
    seen = [||];
    trail = [||];
    trail_size = 0;
    trail_lim = Array.make 16 0;
    nlevels = 0;
    qhead = 0;
    var_inc = 1.0;
    heap = [||];
    heap_size = 0;
    heap_pos = [||];
    solving = false;
    root_conflict = false;
    n_learnt = 0;
    n_conflicts = 0;
    n_decisions = 0;
    n_props = 0;
    n_restarts = 0;
  }

let nvars t = t.nvars

let grow_int a n fill =
  let old = Array.length a in
  if n <= old then a
  else begin
    let bigger = Array.make (Int.max n (2 * old + 1)) fill in
    Array.blit a 0 bigger 0 old;
    bigger
  end

let grow_float a n fill =
  let old = Array.length a in
  if n <= old then a
  else begin
    let bigger = Array.make (Int.max n (2 * old + 1)) fill in
    Array.blit a 0 bigger 0 old;
    bigger
  end

let grow_bool a n fill =
  let old = Array.length a in
  if n <= old then a
  else begin
    let bigger = Array.make (Int.max n (2 * old + 1)) fill in
    Array.blit a 0 bigger 0 old;
    bigger
  end

let grow_list a n =
  let old = Array.length a in
  if n <= old then a
  else begin
    let bigger = Array.make (Int.max n (2 * old + 1)) [] in
    Array.blit a 0 bigger 0 old;
    bigger
  end

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  t.assigns <- grow_int t.assigns t.nvars (-1);
  t.phase <- grow_bool t.phase t.nvars false;
  t.reason <- grow_int t.reason t.nvars (-1);
  t.var_level <- grow_int t.var_level t.nvars 0;
  t.activity <- grow_float t.activity t.nvars 0.0;
  t.seen <- grow_bool t.seen t.nvars false;
  t.trail <- grow_int t.trail t.nvars 0;
  t.watches <- grow_list t.watches (2 * t.nvars);
  t.heap <- grow_int t.heap t.nvars 0;
  t.heap_pos <- grow_int t.heap_pos t.nvars (-1);
  t.assigns.(v) <- -1;
  t.reason.(v) <- -1;
  t.heap_pos.(v) <- -1;
  v

(* value of a literal: 1 true, 0 false, -1 unassigned *)
let lit_value t l =
  let a = t.assigns.(var_of_lit l) in
  if a = -1 then -1 else a lxor (l land 1)

(* ------------------------------------------------------------------ *)
(* Activity order heap (max-heap on activity).                         *)

let heap_less t a b = t.activity.(a) > t.activity.(b)

let heap_swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.heap_pos.(b) <- i;
  t.heap_pos.(a) <- j

let rec heap_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if heap_less t t.heap.(i) t.heap.(parent) then begin
      heap_swap t i parent;
      heap_up t parent
    end
  end

let rec heap_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_size && heap_less t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.heap_size && heap_less t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    heap_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) = -1 then begin
    t.heap.(t.heap_size) <- v;
    t.heap_pos.(v) <- t.heap_size;
    t.heap_size <- t.heap_size + 1;
    heap_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  if t.heap_size > 0 then begin
    t.heap.(0) <- t.heap.(t.heap_size);
    t.heap_pos.(t.heap.(0)) <- 0
  end;
  t.heap_pos.(v) <- -1;
  if t.heap_size > 0 then heap_down t 0;
  v

let bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.heap_pos.(v) <> -1 then heap_up t t.heap_pos.(v)

(* ------------------------------------------------------------------ *)
(* Clause management.                                                  *)

let push_clause t c =
  if t.nclauses >= Array.length t.clauses then begin
    let bigger = Array.make (2 * Array.length t.clauses) [||] in
    Array.blit t.clauses 0 bigger 0 t.nclauses;
    t.clauses <- bigger
  end;
  t.clauses.(t.nclauses) <- c;
  t.nclauses <- t.nclauses + 1;
  t.nclauses - 1

let watch t l ci = t.watches.(l) <- ci :: t.watches.(l)

let enqueue t l reason =
  let v = var_of_lit l in
  t.assigns.(v) <- (if is_pos l then 1 else 0);
  t.reason.(v) <- reason;
  t.var_level.(v) <- t.nlevels;
  t.trail.(t.trail_size) <- l;
  t.trail_size <- t.trail_size + 1

let add_clause t lits =
  if t.solving then invalid_arg "Solver.add_clause: solver already running";
  List.iter
    (fun l ->
      if var_of_lit l < 0 || var_of_lit l >= t.nvars then
        invalid_arg "Solver.add_clause: unknown variable")
    lits;
  (* Deduplicate; detect tautologies.  [Int.compare], not polymorphic
     [compare]: literals are ints, and the polymorphic comparator walks
     the generic structural-comparison path on every element pair of
     every clause added — a measurable constant factor on encoding-bound
     instances (guarded by the [sat-clause-dedup] micro-benchmark). *)
  let lits = List.sort_uniq Int.compare lits in
  let tautology =
    List.exists (fun l -> is_pos l && List.mem (negate l) lits) lits
  in
  if not tautology then begin
    (* Drop literals already false at root; detect satisfied clauses. *)
    let satisfied = List.exists (fun l -> lit_value t l = 1) lits in
    if not satisfied then begin
      let live = List.filter (fun l -> lit_value t l <> 0) lits in
      match live with
      | [] -> t.root_conflict <- true
      | [ l ] -> enqueue t l (-1)  (* level-0 fact; propagated in solve *)
      | l0 :: l1 :: _ ->
        let c = Array.of_list live in
        let ci = push_clause t c in
        watch t (negate l0) ci;
        watch t (negate l1) ci
    end
  end

(* ------------------------------------------------------------------ *)
(* Propagation with two watched literals.                              *)

let propagate t =
  let conflict = ref (-1) in
  while !conflict = -1 && t.qhead < t.trail_size do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.n_props <- t.n_props + 1;
    (* Clauses watching ¬p must find another watch or become unit. *)
    let watching = t.watches.(p) in
    t.watches.(p) <- [];
    let rec process = function
      | [] -> ()
      | ci :: rest ->
        let c = t.clauses.(ci) in
        (* Normalize: watched literals at c.(0), c.(1); the falsified one
           (whose negation is p) goes to position 1. *)
        if c.(0) = negate p then begin
          c.(0) <- c.(1);
          c.(1) <- negate p
        end;
        if lit_value t c.(0) = 1 then begin
          (* Clause satisfied: keep watching p. *)
          t.watches.(p) <- ci :: t.watches.(p);
          process rest
        end
        else begin
          (* Look for a new literal to watch. *)
          let len = Array.length c in
          let rec find k = if k >= len then -1 else if lit_value t c.(k) <> 0 then k else find (k + 1) in
          let k = find 2 in
          if k >= 0 then begin
            c.(1) <- c.(k);
            c.(k) <- negate p;
            watch t (negate c.(1)) ci;
            process rest
          end
          else begin
            t.watches.(p) <- ci :: t.watches.(p);
            if lit_value t c.(0) = 0 then begin
              (* Conflict: restore remaining watchers and stop. *)
              conflict := ci;
              t.qhead <- t.trail_size;
              List.iter (fun cj -> t.watches.(p) <- cj :: t.watches.(p)) rest
            end
            else begin
              enqueue t c.(0) ci;
              process rest
            end
          end
        end
    in
    process watching
  done;
  !conflict

(* ------------------------------------------------------------------ *)
(* Backtracking.                                                       *)

let cancel_until t level =
  if t.nlevels > level then begin
    let bound = t.trail_lim.(level) in
    for i = t.trail_size - 1 downto bound do
      let v = var_of_lit t.trail.(i) in
      t.phase.(v) <- t.assigns.(v) = 1;
      t.assigns.(v) <- -1;
      t.reason.(v) <- -1;
      heap_insert t v
    done;
    t.trail_size <- bound;
    t.qhead <- bound;
    t.nlevels <- level
  end

let push_decision_level t =
  if t.nlevels >= Array.length t.trail_lim then begin
    let bigger = Array.make (2 * Array.length t.trail_lim) 0 in
    Array.blit t.trail_lim 0 bigger 0 t.nlevels;
    t.trail_lim <- bigger
  end;
  t.trail_lim.(t.nlevels) <- t.trail_size;
  t.nlevels <- t.nlevels + 1

(* ------------------------------------------------------------------ *)
(* First-UIP conflict analysis.                                        *)

let analyze t confl =
  let learnt = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let idx = ref (t.trail_size - 1) in
  let continue_ = ref true in
  while !continue_ do
    let c = t.clauses.(!confl) in
    Array.iter
      (fun q ->
        if q <> !p then begin
          let v = var_of_lit q in
          if (not t.seen.(v)) && t.var_level.(v) > 0 then begin
            t.seen.(v) <- true;
            bump t v;
            if t.var_level.(v) = t.nlevels then incr counter
            else learnt := q :: !learnt
          end
        end)
      c;
    (* Walk the trail back to the next marked literal. *)
    while not t.seen.(var_of_lit t.trail.(!idx)) do
      decr idx
    done;
    p := t.trail.(!idx);
    decr idx;
    t.seen.(var_of_lit !p) <- false;
    decr counter;
    if !counter = 0 then continue_ := false else confl := t.reason.(var_of_lit !p)
  done;
  let asserting = negate !p in
  let clause = asserting :: !learnt in
  (* Backjump level: highest level among the non-asserting literals. *)
  let blevel = List.fold_left (fun acc q -> Int.max acc (t.var_level.(var_of_lit q))) 0 !learnt in
  List.iter (fun q -> t.seen.(var_of_lit q) <- false) !learnt;
  (clause, blevel)

let record_learnt t clause =
  t.n_learnt <- t.n_learnt + 1;
  match clause with
  | [] -> assert false
  | [ l ] ->
    enqueue t l (-1);
    -1
  | l0 :: _ ->
    (* Put a literal of the backjump level in second position so the watch
       invariant (watch the two highest levels) holds. *)
    let arr = Array.of_list clause in
    let best = ref 1 in
    for k = 2 to Array.length arr - 1 do
      if t.var_level.(var_of_lit arr.(k)) > t.var_level.(var_of_lit arr.(!best)) then best := k
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!best);
    arr.(!best) <- tmp;
    let ci = push_clause t arr in
    watch t (negate arr.(0)) ci;
    watch t (negate arr.(1)) ci;
    enqueue t l0 ci;
    ci

(* ------------------------------------------------------------------ *)

let decide t rng =
  let rec pick () =
    if t.heap_size = 0 then -1
    else
      let v = heap_pop t in
      if t.assigns.(v) = -1 then v else pick ()
  in
  let v = pick () in
  if v = -1 then -1
  else begin
    t.n_decisions <- t.n_decisions + 1;
    push_decision_level t;
    ignore rng;
    enqueue t (if t.phase.(v) then pos v else neg v) (-1);
    v
  end

let to_stats ~backend (st : stats) =
  Telemetry.Stats.make ~backend ~nodes:st.decisions ~fails:st.conflicts
    ~propagations:st.propagations ~restarts:st.restarts ~time_s:st.time_s ()

let solve ?(budget = Timer.unlimited) ?(seed = 0) t =
  let t0 = Timer.start () in
  t.solving <- true;
  let rng = Prng.create ~seed in
  let stats () =
    {
      conflicts = t.n_conflicts;
      decisions = t.n_decisions;
      propagations = t.n_props;
      restarts = t.n_restarts;
      learnt = t.n_learnt;
      time_s = Timer.elapsed t0;
    }
  in
  if t.root_conflict then (Unsat, stats ())
  else begin
    (* Randomize initial tie-breaking via tiny activity jitter. *)
    for v = 0 to t.nvars - 1 do
      t.activity.(v) <- t.activity.(v) +. (1e-9 *. Prng.float rng);
      heap_insert t v
    done;
    let result = ref None in
    let restart_budget = ref 100 in
    let restart_number = ref 1 in
    let conflicts_here = ref 0 in
    while !result = None do
      (* Polled before propagation so a cancellation also lands during
         conflict-heavy phases that never reach the decision branch. *)
      if t.n_decisions land 1023 = 0 then begin
        Resilience.Failpoint.hit "sat.propagate";
        Telemetry.heartbeat ~name:"sat" ~nodes:t.n_decisions ~fails:t.n_conflicts
          ~depth:t.nlevels
      end;
      if Timer.cancelled budget then result := Some Unknown
      else begin
      let confl = propagate t in
      if confl >= 0 then begin
        t.n_conflicts <- t.n_conflicts + 1;
        incr conflicts_here;
        if t.nlevels = 0 then result := Some Unsat
        else begin
          let clause, blevel = analyze t confl in
          cancel_until t blevel;
          ignore (record_learnt t clause);
          t.var_inc <- t.var_inc /. 0.95
        end
      end
      else if Timer.exceeded budget ~nodes:t.n_conflicts then result := Some Unknown
      else if !conflicts_here >= !restart_budget then begin
        (* Luby restart. *)
        t.n_restarts <- t.n_restarts + 1;
        incr restart_number;
        conflicts_here := 0;
        restart_budget := 100 * Intmath.luby !restart_number;
        cancel_until t 0
      end
      else if decide t rng = -1 then begin
        (* All variables assigned and no conflict: model found. *)
        let model = Array.init t.nvars (fun v -> t.assigns.(v) = 1) in
        result := Some (Sat model)
      end
      end
    done;
    (match !result with Some r -> (r, stats ()) | None -> assert false)
  end

let export_clauses t =
  let dimacs_lit l = if is_pos l then var_of_lit l + 1 else -(var_of_lit l + 1) in
  let units = List.init t.trail_size (fun i -> [ dimacs_lit t.trail.(i) ]) in
  let clauses =
    List.init t.nclauses (fun ci -> Array.to_list (Array.map dimacs_lit t.clauses.(ci)))
  in
  let conflict = if t.root_conflict then [ [] ] else [] in
  units @ clauses @ conflict
