(** A CDCL boolean satisfiability solver.

    Section IV of the paper chooses boolean variables for CSP1 precisely so
    that "even boolean satisfiability (SAT) solvers could be used"; this
    module is that third solver path.  It is a from-scratch conflict-driven
    clause-learning solver with the standard ingredients: two-watched-literal
    propagation, first-UIP conflict analysis with clause learning and
    non-chronological backjumping, exponential VSIDS activities, phase
    saving, and Luby restarts.

    Variables are integers [0 .. nvars-1]; a literal packs variable and sign
    (see {!lit}).  Clauses may be added only before calling {!solve}. *)

type t

type lit = private int
(** [2·var] for the positive literal, [2·var+1] for the negative. *)

val create : unit -> t

val new_var : t -> int
(** Returns the fresh variable's index. *)

val nvars : t -> int

val pos : int -> lit
(** Positive literal of a variable. *)

val neg : int -> lit

val lit_of_int : int -> lit
(** DIMACS-style: [+v] ↦ positive literal of variable [v−1], [−v] ↦
    negative.  @raise Invalid_argument on 0. *)

val var_of_lit : lit -> int
val is_pos : lit -> bool
val negate : lit -> lit

val add_clause : t -> lit list -> unit
(** Add a clause; duplicate literals are merged, tautologies dropped.
    Adding the empty clause (or a clause falsified at level 0) makes the
    instance trivially unsatisfiable.
    @raise Invalid_argument after {!solve} has been called, or on literals
    of unknown variables. *)

type outcome =
  | Sat of bool array  (** Model indexed by variable. *)
  | Unsat
  | Unknown  (** Budget exhausted. *)

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnt : int;
  time_s : float;
}

val to_stats : backend:string -> stats -> Telemetry.Stats.t
(** The unified telemetry view: decisions play the role of [nodes] and
    conflicts of [fails] (the convention of Tables I–IV's node columns). *)

val solve : ?budget:Prelude.Timer.budget -> ?seed:int -> t -> outcome * stats
(** Decide satisfiability.  [seed] randomizes initial variable activities
    (ties in VSIDS), giving independent runs for restarts experiments.
    The node budget counts conflicts. *)

val export_clauses : t -> int list list
(** Every clause in the store in DIMACS integer convention: level-0 facts
    as unit clauses, then the clause database (including any learnt
    clauses, so export before {!solve} for the original formula), and
    [[]] if a root conflict was recorded. *)
