(* Signatures for the synchronization substrate of the lock-free core,
   plus the production instantiation (thin stdlib aliases).  See the
   interface for the design rationale; the model checker's instrumented
   implementation lives in lib/check. *)

module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
  val decr : int t -> unit
end

module type MUTEX = sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val unlock : t -> unit
end

module type CONDITION = sig
  type t
  type mutex

  val create : unit -> t
  val wait : t -> mutex -> unit
  val signal : t -> unit
  val broadcast : t -> unit
end

module type THREAD = sig
  type t

  val spawn : (unit -> unit) -> t
  val join : t -> unit
  val cpu_relax : unit -> unit
end

module type PRIMS = sig
  module Atomic : ATOMIC
  module Mutex : MUTEX
  module Condition : CONDITION with type mutex = Mutex.t
  module Thread : THREAD
end

module Atomic = Stdlib.Atomic
module Mutex = Stdlib.Mutex

module Condition = struct
  type mutex = Stdlib.Mutex.t

  include Stdlib.Condition
end

module Thread = struct
  type t = unit Domain.t

  let spawn f = Domain.spawn f
  let join = Domain.join
  let cpu_relax = Domain.cpu_relax
end

module Native = struct
  module Atomic = Atomic
  module Mutex = Mutex
  module Condition = Condition
  module Thread = Thread
end

let protect (type m) (module M : MUTEX with type t = m) (m : m) f =
  M.lock m;
  match f () with
  | v ->
    M.unlock m;
    v
  | exception e ->
    M.unlock m;
    raise e
