(** Signatures for the synchronization primitives the lock-free core is
    written against.

    Every hand-argued concurrent structure in this repo — the Chase–Lev
    deque, the parked-domain pool's job-slot protocol, the telemetry
    ring registry, the portfolio's stop/winner race — is a functor over
    these signatures instead of calling [Stdlib.Atomic] / [Mutex] /
    [Condition] / [Domain] directly.  Production code instantiates
    {!Native} (thin aliases of the stdlib modules, so the compiled code
    is what it always was); the model checker in [lib/check]
    instantiates an instrumented shim whose every operation is a
    scheduling point of a deterministic effects-based scheduler, which
    is what lets small scenarios be explored exhaustively and their
    invariants checked over {e all} interleavings rather than the ones a
    lucky test run happens to hit. *)

(** Sequentially consistent atomic references ([Stdlib.Atomic]'s
    footprint as of OCaml 5.1). *)
module type ATOMIC = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
  val incr : int t -> unit
  val decr : int t -> unit
end

(** Mutual exclusion ([Stdlib.Mutex]'s core footprint). *)
module type MUTEX = sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val unlock : t -> unit
end

(** Condition variables bound to a mutex type. *)
module type CONDITION = sig
  type t
  type mutex

  val create : unit -> t
  val wait : t -> mutex -> unit
  val signal : t -> unit
  val broadcast : t -> unit
end

(** Thread spawning ([Domain]'s footprint, restricted to what the pool
    protocol needs). *)
module type THREAD = sig
  type t

  val spawn : (unit -> unit) -> t
  val join : t -> unit
  val cpu_relax : unit -> unit
end

(** The full bundle a mutex/condvar protocol is written against. *)
module type PRIMS = sig
  module Atomic : ATOMIC
  module Mutex : MUTEX
  module Condition : CONDITION with type mutex = Mutex.t
  module Thread : THREAD
end

module Atomic : ATOMIC with type 'a t = 'a Stdlib.Atomic.t
module Mutex : MUTEX with type t = Stdlib.Mutex.t

module Condition :
  CONDITION with type t = Stdlib.Condition.t and type mutex = Stdlib.Mutex.t

module Thread : THREAD with type t = unit Domain.t

(** The production instantiation: stdlib atomics, mutexes, condvars and
    domains, re-exported verbatim. *)
module Native :
  PRIMS
    with module Atomic = Atomic
     and module Mutex = Mutex
     and module Condition = Condition
     and module Thread = Thread

val protect : (module MUTEX with type t = 'm) -> 'm -> (unit -> 'a) -> 'a
(** [protect (module M) m f] is [Mutex.protect] generalized over the
    mutex implementation: runs [f] with [m] held, releasing it on normal
    return and on exceptions alike. *)
