(** Epoch-invalidated open-addressing [int -> int] dictionary with
    O(1) [clear].

    Clearing bumps a generation counter instead of touching slots:
    every binding whose stamp no longer matches the current epoch is
    dead.  The nogood store keys its per-slot chains here and rebinds
    between back-to-back solves thousands of times per campaign — the
    O(1) clear (the ZAT EpochDict model) is what makes engine reuse
    through {!Csp2.Pool} cheaper than fresh allocation.

    Single writer, any readers.  Bindings persist until the next
    [clear]; there is no individual delete.  A [find] racing a
    [clear]+[set] rebind returns the pre-clear value, the new value, or
    [None] — never a torn binding; the [lib/check] scenario
    [epoch_dict-clear-vs-find] explores every interleaving of exactly
    that shape over the same code instantiated with instrumented
    atomics. *)

module type S = sig
  type t

  val create : ?capacity:int -> unit -> t
  (** An empty dictionary.  [capacity] (default 64, rounded up to a
      power of two, minimum 4) is only the initial slot count; the
      table doubles when load reaches 3/4. *)

  val clear : t -> unit
  (** Drop every binding in O(1) (epoch bump; no slot is written). *)

  val set : t -> int -> int -> unit
  (** Writer only: bind key to value, replacing any current-epoch
      binding of the same key. *)

  val find : t -> int -> int option
  (** The current-epoch binding of a key, if any. *)

  val get : t -> default:int -> int -> int
  (** [find] without the allocation: the bound value or [default]. *)

  val length : t -> int
  (** Number of live (current-epoch) bindings. *)

  val epoch : t -> int
  (** Generation counter, bumped by each [clear]. *)
end

module Make (_ : Sync.ATOMIC) : S

include S
