type t = { capacity : int; words : Bytes.t (* packed int64 words *) }

(* Words are stored in a Bytes buffer accessed via unsafe 64-bit reads: this
   keeps the structure unboxed-friendly and cheap to copy (a single
   [Bytes.blit]) — copies happen on every trailed domain change in [Fd]. *)

let words_for capacity = (capacity + 63) / 64

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create";
  { capacity; words = Bytes.make (8 * Int.max 1 (words_for capacity)) '\000' }

let capacity t = t.capacity
let nwords t = words_for t.capacity
let get_word t i = Bytes.get_int64_le t.words (8 * i)
let set_word t i w = Bytes.set_int64_le t.words (8 * i) w

let full capacity =
  let t = create capacity in
  let nw = words_for capacity in
  for i = 0 to nw - 1 do
    set_word t i (-1L)
  done;
  (* Mask the tail word so cardinal/iter never see phantom elements. *)
  let rem = capacity land 63 in
  if rem <> 0 && nw > 0 then
    set_word t (nw - 1) (Int64.sub (Int64.shift_left 1L rem) 1L);
  if capacity = 0 && nw >= 1 then set_word t 0 0L;
  t

let copy t = { capacity = t.capacity; words = Bytes.copy t.words }

let blit ~src ~dst =
  if src.capacity <> dst.capacity then invalid_arg "Bitset.blit";
  Bytes.blit src.words 0 dst.words 0 (Bytes.length src.words)

let check t v = v >= 0 && v < t.capacity

let mem t v =
  check t v && Int64.logand (get_word t (v lsr 6)) (Int64.shift_left 1L (v land 63)) <> 0L

let add t v =
  if not (check t v) then invalid_arg "Bitset.add";
  let i = v lsr 6 in
  set_word t i (Int64.logor (get_word t i) (Int64.shift_left 1L (v land 63)))

let remove t v =
  if check t v then begin
    let i = v lsr 6 in
    set_word t i (Int64.logand (get_word t i) (Int64.lognot (Int64.shift_left 1L (v land 63))))
  end

let popcount64 x =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x = add (logand x 0x3333333333333333L) (logand (shift_right_logical x 2) 0x3333333333333333L) in
  let x = logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let cardinal t =
  let n = ref 0 in
  for i = 0 to nwords t - 1 do
    n := !n + popcount64 (get_word t i)
  done;
  !n

let is_empty t =
  let rec go i = i >= nwords t || (get_word t i = 0L && go (i + 1)) in
  go 0

let ctz64 x =
  (* Count trailing zeros of a non-zero word via de Bruijn-free loop on
     bytes; words are small in number so a simple loop is fine. *)
  let rec go x n =
    if Int64.logand x 1L = 1L then n else go (Int64.shift_right_logical x 1) (n + 1)
  in
  go x 0

let clz_pos64 x =
  let rec go x n = if x = 0L then n else go (Int64.shift_right_logical x 1) (n + 1) in
  go x 0 - 1 (* index of highest set bit *)

let min_elt t =
  let rec go i =
    if i >= nwords t then raise Not_found
    else
      let w = get_word t i in
      if w = 0L then go (i + 1) else (i lsl 6) + ctz64 w
  in
  go 0

let max_elt t =
  let rec go i =
    if i < 0 then raise Not_found
    else
      let w = get_word t i in
      if w = 0L then go (i - 1) else (i lsl 6) + clz_pos64 w
  in
  go (nwords t - 1)

let next_from t v =
  if v >= t.capacity then raise Not_found;
  let v = Int.max v 0 in
  let i0 = v lsr 6 in
  let first = Int64.shift_right_logical (get_word t i0) (v land 63) in
  if first <> 0L then v + ctz64 first
  else
    let rec go i =
      if i >= nwords t then raise Not_found
      else
        let w = get_word t i in
        if w = 0L then go (i + 1) else (i lsl 6) + ctz64 w
    in
    go (i0 + 1)

let iter f t =
  for i = 0 to nwords t - 1 do
    let w = ref (get_word t i) in
    let base = i lsl 6 in
    while !w <> 0L do
      let b = ctz64 !w in
      f (base + b);
      w := Int64.logand !w (Int64.sub !w 1L)
    done
  done

let fold f init t =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) t;
  !acc

let elements t = List.rev (fold (fun acc v -> v :: acc) [] t)

let equal a b =
  a.capacity = b.capacity
  &&
  let rec go i = i >= nwords a || (get_word a i = get_word b i && go (i + 1)) in
  go 0

let inter_inplace a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.inter_inplace";
  for i = 0 to nwords a - 1 do
    set_word a i (Int64.logand (get_word a i) (get_word b i))
  done

let remove_below t bound =
  let bound = Intmath.clamp ~lo:0 ~hi:t.capacity bound in
  let full_words = bound lsr 6 in
  for i = 0 to Int.min (full_words - 1) (nwords t - 1) do
    set_word t i 0L
  done;
  let rem = bound land 63 in
  if rem <> 0 && full_words < nwords t then
    set_word t full_words
      (Int64.logand (get_word t full_words)
         (Int64.lognot (Int64.sub (Int64.shift_left 1L rem) 1L)))

let remove_above t bound =
  if bound < t.capacity - 1 then begin
    let bound = Int.max bound (-1) in
    let first_dead = bound + 1 in
    let word = first_dead lsr 6 in
    let rem = first_dead land 63 in
    if rem <> 0 then
      set_word t word
        (Int64.logand (get_word t word) (Int64.sub (Int64.shift_left 1L rem) 1L));
    let start = if rem = 0 then word else word + 1 in
    for i = start to nwords t - 1 do
      set_word t i 0L
    done
  end

let singleton_value t =
  match min_elt t with
  | exception Not_found -> None
  | v -> if v = max_elt t then Some v else None

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
    (elements t)

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'
