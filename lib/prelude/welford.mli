(** Streaming mean/variance accumulator (Welford's algorithm).

    Used to aggregate per-instance resolution times and utilization ratios
    into the per-bucket averages reported in Tables III and IV without
    storing every sample. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 when fewer than two samples. *)

val stddev : t -> float
val min : t -> float
(** [nan] when empty (never the [infinity] sentinel, which would render as
    a plausible-looking "inf" cell in the variance tables). *)

val max : t -> float
(** [nan] when empty. *)
