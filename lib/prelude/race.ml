(* First-decisive-wins race protocol: one winner CAS, one stop flag.

   Extracted from the (previously inlined, twice) pair of atomics in
   Portfolio.solve and Csp2.Opt.solve_parallel so that (a) the claim
   discipline — CAS the winner slot FIRST, raise the stop flag only
   after winning — lives in one place, and (b) the model checker can
   instantiate it over instrumented atomics and verify the uniqueness
   invariant (at most one successful claim, winner never overwritten)
   over all interleavings. *)

module type S = sig
  type t

  val create : unit -> t
  val claim : t -> int -> bool
  val cancel : t -> unit
  val stopped : t -> bool
  val winner : t -> int
end

module Make (A : Sync.ATOMIC) = struct
  type t = { stop : bool A.t; winner : int A.t }

  let create () = { stop = A.make false; winner = A.make (-1) }

  (* The order matters: the winner slot is claimed before the stop flag
     is raised, so any observer of [stopped () = true] can rely on
     [winner () >= 0] (stop is never up with the race undecided), and a
     losing claimant never touches either atomic's decided value. *)
  let claim t slot =
    slot >= 0
    && A.compare_and_set t.winner (-1) slot
    &&
    (A.set t.stop true;
     true)

  let cancel t = A.set t.stop true
  let stopped t = A.get t.stop
  let winner t = A.get t.winner
end

include Make (Sync.Atomic)

(* The native instance additionally exposes its stop flag as the raw
   atomic, because Timer.with_stop composes budgets over a [bool
   Atomic.t]. *)
let flag (t : t) = t.stop
