let recommended_jobs ?(lo = 1) ?(hi = 64) () =
  Intmath.clamp ~lo ~hi (Domain.recommended_domain_count ())
