(* Bump allocator over one flat int array with O(1) epoch reset.

   The model is ZAT-style bank allocation: a batch of short-lived
   vectors (nogood remainder vectors, flattened Zobrist tables) is
   carved out of one growing array by moving a single cursor, and the
   whole batch is reclaimed at once by moving the cursor back to zero
   and bumping the epoch.  Nothing is freed individually and nothing is
   zeroed on reclaim — a client that may hold an offset across a reset
   must stamp it with [epoch] at allocation time and compare before
   dereferencing (the use-after-reset discipline the arena model test
   pins). *)

type t = { mutable data : int array; mutable used : int; mutable epoch : int }

let create ?(capacity = 256) () =
  { data = Array.make (Int.max 16 capacity) 0; used = 0; epoch = 0 }

let epoch t = t.epoch
let used t = t.used
let capacity t = Array.length t.data
let data t = t.data

let ensure t extra =
  let need = t.used + extra in
  if need > Array.length t.data then begin
    let cap = ref (Array.length t.data * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    let grown = Array.make !cap 0 in
    Array.blit t.data 0 grown 0 t.used;
    t.data <- grown
  end

let alloc t n =
  if n < 0 then invalid_arg "Arena.alloc: negative size";
  ensure t n;
  let off = t.used in
  t.used <- t.used + n;
  off

let get t i = t.data.(i)
let set t i v = t.data.(i) <- v

let reset t =
  t.used <- 0;
  t.epoch <- t.epoch + 1

let truncate t n =
  if n < 0 || n > t.used then invalid_arg "Arena.truncate";
  t.used <- n
