type t = { mutable data : Bytes.t }

let create () = { data = Bytes.make 64 '\000' }

let get t i =
  if i < 0 then invalid_arg "Bool_vec.get";
  i < Bytes.length t.data && Bytes.get t.data i <> '\000'

let set t i b =
  if i < 0 then invalid_arg "Bool_vec.set";
  if i >= Bytes.length t.data then begin
    let bigger = Bytes.make (Int.max (2 * Bytes.length t.data) (i + 1)) '\000' in
    Bytes.blit t.data 0 bigger 0 (Bytes.length t.data);
    t.data <- bigger
  end;
  Bytes.set t.data i (if b then '\001' else '\000')

let clear t = Bytes.fill t.data 0 (Bytes.length t.data) '\000'
