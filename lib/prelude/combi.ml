let first ~n ~k =
  if k < 0 || k > n then None else Some (Array.init k (fun i -> i))

(* [next_k] advances only the first [k] cells, so a caller can reuse one
   max-sized buffer across states whose subset size varies (the CSP2 hot
   path does: k changes per slot) without reallocating. *)
let next_k ~n ~k c =
  (* Find the rightmost index that can still move right. *)
  let rec find i = if i < 0 then -1 else if c.(i) < n - k + i then i else find (i - 1) in
  let i = find (k - 1) in
  if i < 0 then false
  else begin
    c.(i) <- c.(i) + 1;
    for j = i + 1 to k - 1 do
      c.(j) <- c.(j - 1) + 1
    done;
    true
  end

let next ~n c = next_k ~n ~k:(Array.length c) c

let count ~n ~k =
  if k < 0 || k > n then 0
  else begin
    let k = Int.min k (n - k) in
    let acc = ref 1 in
    (try
       for i = 1 to k do
         let v = !acc * (n - k + i) in
         if v / (n - k + i) <> !acc then raise Exit;
         acc := v / i
       done
     with Exit -> acc := max_int);
    !acc
  end

let iter ~n ~k f =
  match first ~n ~k with
  | None -> ()
  | Some c ->
    let continue_ = ref true in
    while !continue_ do
      f c;
      continue_ := next ~n c
    done
