(** Int-backed bitsets for solver hot paths.

    A set over [0 .. capacity-1] packed into an [int array], 32 bits per
    word.  Unlike {!Bitset} (Bytes + Int64, built for the generic FD
    solver's trailed domains), this representation is tuned for inner
    loops that classify and enumerate candidates on every search node:
    membership, word-parallel intersection/difference and set-bit
    iteration compile to plain int instructions with no allocation.

    The type is exposed as [private int array] so that hot loops can walk
    words directly (combine {!lowest_bit_index} with [bits land (bits-1)]
    to strip bits) without paying a closure per node; everyone else should
    stick to the functional accessors below.

    No bounds checks beyond the array's own: callers index with values
    below the creation capacity. *)

type t = private int array

val bits_per_word : int
(** 32: bit [i] lives in word [i lsr 5] at position [i land 31]. *)

val words : int -> int
(** Number of words backing a set of the given capacity. *)

val create : int -> t
(** Empty set over [0 .. capacity-1] (at least one word is allocated). *)

val set : t -> int -> unit
val unset : t -> int -> unit
val mem : t -> int -> bool
val clear : t -> unit

val copy_into : src:t -> dst:t -> unit
(** Overwrite [dst] with [src]; word counts must match. *)

val inter_into : dst:t -> t -> t -> unit
(** [inter_into ~dst a b] writes [a ∩ b] into [dst] (aliasing allowed). *)

val diff_into : dst:t -> t -> t -> unit
(** [diff_into ~dst a b] writes [a \ b] into [dst] (aliasing allowed). *)

val is_empty : t -> bool

val popcount : t -> int

val lowest_bit_index : int -> int
(** Index (0..31) of the lowest set bit of a non-zero 32-bit word value;
    the word-walking primitive for allocation-free iteration. *)

val iter : (int -> unit) -> t -> unit
(** Apply to each element in ascending order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val elements : t -> int list
