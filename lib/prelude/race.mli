(** First-decisive-arm-wins race protocol.

    A {!t} is the pair of atomics every parallel race in this repo
    coordinates on: a winner slot (claimed by CAS, at most once) and a
    stop flag (raised only after a successful claim, or by an external
    {!cancel}).  [Portfolio.solve] races its arms on one; the
    work-stealing [Csp2.Opt.solve_parallel] races its subtree workers on
    another.

    Invariants (model-checked in [lib/check] over the instrumented
    instantiation, relied on by both call sites):
    - at most one {!claim} ever returns [true], and {!winner} then
      reports that slot forever;
    - once a claim succeeds, {!stopped} becomes (and stays) [true];
    - {!stopped} with a [< 0] {!winner} only ever means an external
      {!cancel}, never a half-finished claim. *)

module type S = sig
  type t

  val create : unit -> t

  val claim : t -> int -> bool
  (** [claim t slot] tries to decide the race in favour of [slot]
      ([>= 0]); returns whether this call won.  The winner's slot is
      published before the stop flag is raised. *)

  val cancel : t -> unit
  (** Raise the stop flag without deciding a winner (budget exhaustion,
      external cancellation). *)

  val stopped : t -> bool
  val winner : t -> int
  (** The winning slot, or [-1] while the race is undecided. *)
end

module Make (_ : Sync.ATOMIC) : S

include S

val flag : t -> bool Atomic.t
(** The stop flag of the production instance as a raw atomic, for
    [Timer.with_stop] composition. *)
