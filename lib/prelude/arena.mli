(** Bump allocator over one flat [int array] with O(1) epoch reset.

    Batch campaigns solve hundreds of instances back to back through
    the same pooled engines; the arena lets each solve carve its
    short-lived vectors (nogood remainder vectors, flattened Zobrist
    tables) out of one reused array and reclaim them all at once,
    instead of re-allocating — the ZAT bank-allocation model.

    Single-owner: an arena belongs to one domain (in the engine, it
    lives inside a per-domain pooled search state) and is never shared.

    {b Use-after-reset discipline.}  [reset] does not zero the backing
    store, so an offset obtained before a reset still {e reads} —
    stale garbage.  A client that can hold an offset across a reset
    must record [epoch a] when allocating and compare it before
    dereferencing; the arena model test pins this protocol. *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh arena. [capacity] (default 256, minimum 16) is the initial
    word count; allocation beyond it doubles the backing array. *)

val alloc : t -> int -> int
(** [alloc a n] reserves [n] words and returns the offset of the
    first.  Contents are {e unspecified} (possibly stale data from
    before the last [reset]) — callers write before reading.
    @raise Invalid_argument on negative [n]. *)

val get : t -> int -> int
(** [get a i] reads the word at offset [i]. *)

val set : t -> int -> int -> unit
(** [set a i v] writes [v] at offset [i]. *)

val data : t -> int array
(** The backing array, for allocation-free hot loops ([Array.blit],
    pointwise compares).  Valid only until the next [alloc] — growth
    replaces the array. *)

val reset : t -> unit
(** Reclaim everything: O(1) cursor rewind plus an epoch bump.  Live
    offsets become stale (see the use-after-reset discipline above). *)

val truncate : t -> int -> unit
(** [truncate a n] rewinds the cursor to [n] words {e without} bumping
    the epoch — compaction helper: copy survivors below [n] first.
    @raise Invalid_argument unless [0 <= n <= used a]. *)

val epoch : t -> int
(** Generation counter, bumped by each [reset].  Stamp offsets with it
    to detect use-after-reset. *)

val used : t -> int
(** Words allocated since the last [reset]. *)

val capacity : t -> int
(** Current backing-array size in words. *)
