(** Lock-free Chase–Lev work-stealing deque.

    One {e owner} domain pushes and pops work at the bottom (LIFO, so the
    owner keeps working depth-first on what it just produced); any number
    of {e thief} domains steal from the top (FIFO, so thieves take the
    oldest — and for tree search the largest — pending branch).  This is
    the distribution substrate for {!Csp2.Opt.solve_parallel}: static
    subtree partitioning collapses on skewed search trees, because one
    worker ends up owning the whole hard region; with per-worker deques
    the hard region keeps shedding open sibling branches that idle
    workers steal.

    The implementation is the classic Chase–Lev circular-array deque
    ("Dynamic circular work-stealing deque", SPAA 2005) on OCaml 5
    [Atomic]s, which are sequentially consistent — strong enough to
    subsume the fences of the original:

    - [top] only ever increases and is the thieves' CAS point;
    - [bottom] is written by the owner alone;
    - the buffer is an array of per-cell [Atomic]s published through an
      [Atomic] holding the array itself, so growth (double and copy)
      is safe against concurrent readers of the old buffer — cells keep
      their values in both copies, and any steal decided against a stale
      buffer still synchronizes on the [top] CAS;
    - slot reuse after wrap-around requires [top] to have advanced past
      the reader's snapshot, which makes the reader's CAS fail: a stale
      cell read is never returned.

    Operations never block and never lock; [pop]/[steal] return [None]
    on emptiness {e or} on losing a race (a thief that loses a CAS does
    not retry internally — callers typically move on to another victim,
    which is exactly what a work-stealing scheduler wants).

    The structure is a functor over {!Sync.ATOMIC} so the model checker
    ([lib/check]) can run the {e same} code under its instrumented
    atomics and explore steal/pop/grow interleavings exhaustively; the
    toplevel module is the production instantiation over
    [Stdlib.Atomic]. *)

module type S = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  (** An empty deque.  [capacity] (default 64, rounded up to a power of
      two, minimum 2) is only the initial buffer size: pushes beyond it
      double the buffer.  The small minimum exists for the model
      checker, which wants a grow reachable within a handful of pushes;
      production callers use the default. *)

  val push : 'a t -> 'a -> unit
  (** Owner only: add at the bottom. *)

  val pop : 'a t -> 'a option
  (** Owner only: take the most recently pushed remaining element, or
      [None] when empty (a last-element race against a thief is decided by
      a CAS on [top]; the loser sees [None]). *)

  val steal : 'a t -> 'a option
  (** Any domain: take the oldest element, or [None] when the deque looks
      empty or the CAS was lost to a concurrent pop/steal.  Safe to call
      from many thieves concurrently. *)

  val size : 'a t -> int
  (** A snapshot estimate of the element count (never negative).  Exact
      when no other domain is mutating; used by the owner to decide when
      to shed more work. *)
end

module Make (_ : Sync.ATOMIC) : S

include S
