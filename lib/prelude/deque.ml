(* Chase–Lev work-stealing deque on sequentially consistent Atomics.

   Layout: a circular buffer of per-cell Atomics indexed by [i land
   (size - 1)], with [top <= bottom] delimiting the live region
   [top, bottom).  The owner works at [bottom], thieves CAS [top].

   Why per-cell Atomics rather than a plain array: a thief reads a cell
   it does not own, and the OCaml memory model only promises a
   non-teared, happens-before-ordered read through an atomic location.
   The cost (one extra indirection per cell) is irrelevant next to the
   work items stored here (subtree descriptors, milliseconds each).

   The delicate orderings, all inherited from the published algorithm:
   - [push] writes the cell BEFORE publishing the new [bottom], so any
     thief that observes the new bottom also observes the cell value;
   - [pop] lowers [bottom] BEFORE reading [top]: once bottom = b is
     visible, no thief can CAS top past b, so the owner's element at
     index b is fenced off (the top = b single-element case is the only
     owner/thief race, and the CAS on [top] arbitrates it);
   - [steal] reads [top] before [bottom]; a stale [bottom] can only
     make the deque look emptier than it is (a lost steal, never a
     duplicated element).

   The whole module is a functor over the atomic implementation: the
   production instantiation (bottom of the file) is [Stdlib.Atomic]
   verbatim, while lib/check instantiates an instrumented shim and
   model-checks these orderings instead of trusting the comment above. *)

module type S = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option
  val steal : 'a t -> 'a option
  val size : 'a t -> int
end

module Make (A : Sync.ATOMIC) = struct
  type 'a t = {
    top : int A.t;
    bottom : int A.t;
    buf : 'a option A.t array A.t;
  }

  let rec pow2 n p = if p >= n then p else pow2 n (2 * p)

  let create ?(capacity = 64) () =
    let size = pow2 (Int.max 2 capacity) 2 in
    {
      top = A.make 0;
      bottom = A.make 0;
      buf = A.make (Array.init size (fun _ -> A.make None));
    }

  (* Owner only.  Copy the live region [t0, b) into a buffer twice the
     size and publish it; thieves still holding the old buffer read the
     same values there (cells are never cleared by [grow]), and their CAS
     on [top] remains the single synchronization point. *)
  let grow t a ~top:t0 ~bottom:b =
    let old_mask = Array.length a - 1 in
    let size = 2 * (old_mask + 1) in
    let mask = size - 1 in
    let bigger = Array.init size (fun _ -> A.make None) in
    for i = t0 to b - 1 do
      A.set bigger.(i land mask) (A.get a.(i land old_mask))
    done;
    A.set t.buf bigger;
    bigger

  let push t x =
    let b = A.get t.bottom in
    let tp = A.get t.top in
    let a = A.get t.buf in
    let a = if b - tp >= Array.length a then grow t a ~top:tp ~bottom:b else a in
    A.set a.(b land (Array.length a - 1)) (Some x);
    A.set t.bottom (b + 1)

  let pop t =
    let b = A.get t.bottom - 1 in
    A.set t.bottom b;
    let tp = A.get t.top in
    if b < tp then begin
      (* Empty; restore the canonical empty shape. *)
      A.set t.bottom tp;
      None
    end
    else begin
      let a = A.get t.buf in
      let cell = a.(b land (Array.length a - 1)) in
      let x = A.get cell in
      if b > tp then begin
        A.set cell None;
        x
      end
      else begin
        (* Last element: race any thief for it via [top]. *)
        let won = A.compare_and_set t.top tp (tp + 1) in
        A.set t.bottom (tp + 1);
        A.set cell None;
        if won then x else None
      end
    end

  let steal t =
    let tp = A.get t.top in
    let b = A.get t.bottom in
    if tp >= b then None
    else begin
      let a = A.get t.buf in
      let x = A.get a.(tp land (Array.length a - 1)) in
      if A.compare_and_set t.top tp (tp + 1) then x else None
    end

  let size t =
    let b = A.get t.bottom in
    let tp = A.get t.top in
    Int.max 0 (b - tp)
end

include Make (Sync.Atomic)
