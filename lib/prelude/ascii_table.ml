type align = Left | Right
type row = Cells of string list | Sep

type t = {
  headers : string list;
  arity : int;
  mutable rows : row list; (* reverse order *)
  mutable aligns : align array;
}

let create ~headers =
  let arity = List.length headers in
  { headers; arity; rows = []; aligns = Array.make arity Right }

let set_align t l =
  if List.length l <> t.arity then invalid_arg "Ascii_table.set_align";
  t.aligns <- Array.of_list l

let add_row t cells =
  if List.length cells <> t.arity then invalid_arg "Ascii_table.add_row";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let widen = function
    | Sep -> ()
    | Cells cs -> List.iteri (fun i c -> widths.(i) <- Int.max widths.(i) (String.length c)) cs
  in
  List.iter widen rows;
  let buf = Buffer.create 256 in
  let rule () =
    Array.iter (fun w -> Buffer.add_char buf '+'; Buffer.add_string buf (String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let pad i c =
    let w = widths.(i) in
    let missing = w - String.length c in
    match t.aligns.(i) with
    | Left -> c ^ String.make missing ' '
    | Right -> String.make missing ' ' ^ c
  in
  let line cs =
    List.iteri
      (fun i c ->
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad i c);
        Buffer.add_char buf ' ')
      cs;
    Buffer.add_string buf "|\n"
  in
  rule ();
  line t.headers;
  rule ();
  List.iter (function Sep -> rule () | Cells cs -> line cs) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)
