(* Epoch-invalidated open-addressing int -> int dictionary.

   [clear] is one epoch bump: every slot whose stamp no longer matches
   the current epoch is free.  That is the whole point — the nogood
   store rebinds to a new instance between back-to-back solves and must
   drop thousands of slot chains in O(1) instead of zeroing tables
   (the ZAT EpochDict model).

   Single writer, any readers.  In production the dictionary lives
   inside a per-domain pooled engine, so writer and reader are the same
   domain; the functor exists so lib/check can run the same code under
   instrumented atomics and explore the one genuinely concurrent shape
   — an in-flight [find] overlapping a [clear]+[set] rebind — proving
   the epoch protocol never serves a torn or fabricated binding (a racy
   find returns the pre-clear value, the post-clear value, or [None];
   nothing else).

   Orderings that make that true on SC atomics:
   - [set] writes key, then value, then stamp := epoch LAST: a reader
     that observes a fresh stamp observes the matching key and value;
   - [find] reads the epoch FIRST, then the slot bundle: a stamp can
     only look fresh if it was written under an epoch the reader
     already saw;
   - growth copies live entries into a bigger bundle and publishes it
     through one atomic; old-bundle readers still see consistent
     (key, value, stamp) triples because cells are never recycled
     within an epoch. *)

module type S = sig
  type t

  val create : ?capacity:int -> unit -> t
  val clear : t -> unit
  val set : t -> int -> int -> unit
  val find : t -> int -> int option
  val get : t -> default:int -> int -> int
  val length : t -> int
  val epoch : t -> int
end

module Make (A : Sync.ATOMIC) = struct
  type slots = {
    mask : int;
    stamps : int A.t array;
    keys : int A.t array;
    vals : int A.t array;
  }

  type t = { cur_epoch : int A.t; slots : slots A.t; count : int A.t }

  let rec pow2 n p = if p >= n then p else pow2 n (2 * p)

  let make_slots size =
    {
      mask = size - 1;
      (* Stamps start below any reachable epoch, so every slot is free. *)
      stamps = Array.init size (fun _ -> A.make (-1));
      keys = Array.init size (fun _ -> A.make 0);
      vals = Array.init size (fun _ -> A.make 0);
    }

  let create ?(capacity = 64) () =
    {
      cur_epoch = A.make 0;
      slots = A.make (make_slots (pow2 (Int.max 4 capacity) 4));
      count = A.make 0;
    }

  let epoch t = A.get t.cur_epoch
  let length t = A.get t.count

  let clear t =
    A.incr t.cur_epoch;
    A.set t.count 0

  (* Fibonacci multiplicative hash; keys are arbitrary ints. *)
  let slot_of s k = k * 0x2545F4914F6CDD1D land s.mask

  let find t k =
    let e = A.get t.cur_epoch in
    let s = A.get t.slots in
    let rec probe i =
      if A.get s.stamps.(i) <> e then None
      else if A.get s.keys.(i) = k then Some (A.get s.vals.(i))
      else probe ((i + 1) land s.mask)
    in
    probe (slot_of s k)

  let get t ~default k = match find t k with Some v -> v | None -> default

  (* Writer only.  [insert] assumes the bundle has a free slot. *)
  let insert s ~e k v =
    let rec probe i =
      if A.get s.stamps.(i) <> e then begin
        A.set s.keys.(i) k;
        A.set s.vals.(i) v;
        A.set s.stamps.(i) e;
        true
      end
      else if A.get s.keys.(i) = k then begin
        A.set s.vals.(i) v;
        false
      end
      else probe ((i + 1) land s.mask)
    in
    probe (slot_of s k)

  let grow t s ~e =
    let bigger = make_slots (2 * (s.mask + 1)) in
    for i = 0 to s.mask do
      if A.get s.stamps.(i) = e then
        ignore (insert bigger ~e (A.get s.keys.(i)) (A.get s.vals.(i)))
    done;
    A.set t.slots bigger;
    bigger

  let set t k v =
    let e = A.get t.cur_epoch in
    let s = A.get t.slots in
    (* Keep load below 3/4 so probe chains stay short. *)
    let s = if 4 * A.get t.count >= 3 * (s.mask + 1) then grow t s ~e else s in
    if insert s ~e k v then A.incr t.count
end

module Native = Make (Sync.Atomic)
include Native
