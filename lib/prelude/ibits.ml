(* Words are 32 bits of an OCaml int each: bit index arithmetic stays in
   shifts/masks (no division), word ops are native int instructions, and
   the representation is a plain [int array] — no boxing, no [Bytes]
   round-trips, cheap to copy.  [Bitset] (Bytes + Int64) remains the
   general-purpose sibling; this module exists for solver hot paths that
   iterate set bits millions of times per second. *)

type t = int array

let bits_per_word = 32
let word_mask = 0xFFFFFFFF
let words capacity = (capacity + bits_per_word - 1) lsr 5

let create capacity =
  if capacity < 0 then invalid_arg "Ibits.create";
  Array.make (Int.max 1 (words capacity)) 0

let set t i = t.(i lsr 5) <- t.(i lsr 5) lor (1 lsl (i land 31))
let unset t i = t.(i lsr 5) <- t.(i lsr 5) land lnot (1 lsl (i land 31))
let mem t i = t.(i lsr 5) land (1 lsl (i land 31)) <> 0

let clear t = Array.fill t 0 (Array.length t) 0

let copy_into ~src ~dst =
  if Array.length src <> Array.length dst then invalid_arg "Ibits.copy_into";
  Array.blit src 0 dst 0 (Array.length src)

let inter_into ~dst a b =
  for w = 0 to Array.length dst - 1 do
    dst.(w) <- a.(w) land b.(w)
  done

let diff_into ~dst a b =
  for w = 0 to Array.length dst - 1 do
    dst.(w) <- a.(w) land lnot b.(w)
  done

let is_empty t =
  let rec go w = w >= Array.length t || (t.(w) = 0 && go (w + 1)) in
  go 0

(* SWAR popcount of a 32-bit value held in an int. *)
let popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24 land 0xFF

let popcount t =
  let n = ref 0 in
  for w = 0 to Array.length t - 1 do
    n := !n + popcount32 t.(w)
  done;
  !n

(* De Bruijn sequence lookup: index of the (single) set bit of [x land -x]
   for a non-zero 32-bit value. *)
let debruijn_table =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

(* Parenthesize carefully: [lsr] binds tighter than [land] in OCaml, so the
   32-bit truncation of the product must be explicit before the shift. *)
let lowest_bit_index x = debruijn_table.(((x land -x) * 0x077CB531 land word_mask) lsr 27)

let iter f t =
  for w = 0 to Array.length t - 1 do
    let bits = ref t.(w) in
    let base = w lsl 5 in
    while !bits <> 0 do
      f (base + lowest_bit_index !bits);
      bits := !bits land (!bits - 1)
    done
  done

let fold f init t =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) t;
  !acc

let elements t = List.rev (fold (fun acc v -> v :: acc) [] t)
