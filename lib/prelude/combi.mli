(** Enumeration of k-combinations in lexicographic order.

    The CSP2 chronological search branches, at each time slot, over the
    size-k subsets of the available tasks (tasks ordered by the active
    heuristic); lexicographic enumeration over the heuristic rank realizes
    the paper's "consider tasks in ascending order" rule (Section V-C). *)

val first : n:int -> k:int -> int array option
(** Indices [0..k-1], or [None] when [k > n].  [k = 0] yields [Some [||]]. *)

val next : n:int -> int array -> bool
(** Advance the index array to the next combination in place; returns
    [false] (array left unspecified) when the last combination was given. *)

val next_k : n:int -> k:int -> int array -> bool
(** Like {!next} but only the first [k] cells of the (possibly longer)
    array hold the combination — lets hot paths reuse one max-sized buffer
    across subset sizes.  Cells at index [>= k] are never read or written. *)

val count : n:int -> k:int -> int
(** Binomial coefficient, saturating at [max_int] on overflow. *)

val iter : n:int -> k:int -> (int array -> unit) -> unit
(** Apply the function to each combination in lexicographic order.  The
    array is reused between calls; callers must copy if they retain it. *)
