(** Wall-clock timers and combined wall-clock/node budgets.

    The paper gives every solver run a 30 s limit on a 2.4 GHz Core2Quad.
    We reproduce the mechanism with a deadline based on the monotonic-enough
    [Unix.gettimeofday], complemented by a node budget so that test-suite
    runs stay fast and fully deterministic.

    A budget also carries a cooperative {e stop flag}: an [Atomic.t] that
    another domain can raise with {!cancel} to make every solver polling the
    budget return [Limit] promptly.  This is how the parallel portfolio
    ({!Portfolio}) cancels losing backends. *)

val now : unit -> float
(** Seconds since the epoch, sub-millisecond resolution. *)

type t
(** A started stopwatch. *)

val start : unit -> t
val elapsed : t -> float

type budget

val budget : ?wall_s:float -> ?nodes:int -> ?stop:bool Atomic.t -> unit -> budget
(** Missing components are unlimited.  When [stop] is omitted a fresh flag
    is allocated, so {!cancel} works on every budget made here; pass a
    shared flag to make several budgets cancellable together. *)

val unlimited : budget
(** No limits and no stop flag: {!cancel} on it is a no-op (it is a shared
    constant; a cancellable unlimited budget is [budget ()]). *)

val cancel : budget -> unit
(** Raise the budget's own stop flag: every solver sharing it observes
    {!exceeded} at its next poll and returns [Limit].  Safe to call from
    another domain; idempotent.  Cancellation propagates {e downward}
    through {!with_stop}/{!sub} derivations (a derived budget observes its
    ancestors' flags), never upward: cancelling a derived budget does not
    cancel the budget it was derived from. *)

val cancelled : budget -> bool
(** Stop-flag component only — one atomic read per attached flag (usually
    one or two), cheap enough to call on every search node (unlike the
    wall-clock read in {!exceeded}). *)

val with_stop : budget -> bool Atomic.t -> budget
(** Same limits, with the given flag as the budget's own stop flag.  Any
    previously attached flag is {e kept} and still observed by
    {!cancelled}: cancellation composes — a [cancel] on the original
    budget is seen through every [with_stop] derivation.  Used to derive
    per-backend budgets that share one cancellation point without
    disconnecting the caller's. *)

val fork : budget -> budget
(** [with_stop b (Atomic.make f)] for a fresh flag: same limits, the
    parent's flags still watched, but independently cancellable — a
    [cancel] on the fork stops only its holder.  This is how the
    portfolio gives each arm a private cancellation point (the stall
    watchdog cancels a single stalled arm without touching the race). *)

val sub : ?wall_s:float -> ?nodes:int -> budget -> budget
(** A fresh budget with the given (tighter) limits and its own fresh stop
    flag, which additionally observes every stop flag of the argument:
    cancelling the parent cancels the sub-budget, but not vice versa.
    This is how the portfolio caps its analyzer arm at half the race's
    remaining wall clock while keeping it interruptible by the caller. *)

val exceeded : budget -> nodes:int -> bool
(** [exceeded b ~nodes] is true once either limit is hit or the stop flag
    raised.  The wall clock is consulted lazily (every call), so callers
    should poll at a coarse granularity (e.g. every 256 search nodes) —
    but on {e every} increment of their node counter, so a masked check
    such as [nodes land 255 = 0] cannot be skipped over. *)

val nodes_exceeded : budget -> nodes:int -> bool
(** Node-limit component only — no clock read, cheap enough to call on
    every search node. *)

val wall_limit : budget -> float option
val remaining_wall : budget -> float option
