let now () = Unix.gettimeofday ()

type t = float

let start () = now ()
let elapsed t0 = now () -. t0

type budget = {
  deadline : float option;
  node_limit : int option;
  started : float;
  stop : bool Atomic.t option;  (* the flag {!cancel} raises *)
  watches : bool Atomic.t list;  (* inherited flags, observed but never raised *)
}

let budget ?wall_s ?nodes ?stop () =
  let started = now () in
  let stop = match stop with Some _ as s -> s | None -> Some (Atomic.make false) in
  {
    deadline = Option.map (fun s -> started +. s) wall_s;
    node_limit = nodes;
    started;
    stop;
    watches = [];
  }

let unlimited =
  { deadline = None; node_limit = None; started = 0.; stop = None; watches = [] }

let cancel b = match b.stop with Some flag -> Atomic.set flag true | None -> ()

let rec any_set = function [] -> false | f :: tl -> Atomic.get f || any_set tl

let cancelled b =
  (match b.stop with Some flag -> Atomic.get flag | None -> false)
  || (match b.watches with [] -> false | ws -> any_set ws)

(* The new flag becomes the budget's own (so the derived budget is
   cancellable on its own), while every previously attached flag is kept as
   a watch: cancellation composes instead of being overwritten.  This is
   the PR 1 race bug — [with_stop] used to *replace* the caller's flag, so
   an external [cancel] on the original budget was never observed by the
   portfolio arms once the race had swapped in its internal flag. *)
let with_stop b stop =
  let watches = match b.stop with Some f when f != stop -> f :: b.watches | _ -> b.watches in
  { b with stop = Some stop; watches }

let fork b = with_stop b (Atomic.make false)

let sub ?wall_s ?nodes b =
  let fresh = budget ?wall_s ?nodes () in
  let inherited = match b.stop with Some f -> f :: b.watches | None -> b.watches in
  { fresh with watches = inherited }

let exceeded b ~nodes =
  cancelled b
  || (match b.node_limit with Some l -> nodes >= l | None -> false)
  || (match b.deadline with Some d -> now () >= d | None -> false)

let nodes_exceeded b ~nodes =
  match b.node_limit with Some l -> nodes >= l | None -> false

let wall_limit b = Option.map (fun d -> d -. b.started) b.deadline
let remaining_wall b = Option.map (fun d -> d -. now ()) b.deadline
