let now () = Unix.gettimeofday ()

type t = float

let start () = now ()
let elapsed t0 = now () -. t0

type budget = {
  deadline : float option;
  node_limit : int option;
  started : float;
  stop : bool Atomic.t option;
}

let budget ?wall_s ?nodes ?stop () =
  let started = now () in
  let stop = match stop with Some _ as s -> s | None -> Some (Atomic.make false) in
  { deadline = Option.map (fun s -> started +. s) wall_s; node_limit = nodes; started; stop }

let unlimited = { deadline = None; node_limit = None; started = 0.; stop = None }

let cancel b = match b.stop with Some flag -> Atomic.set flag true | None -> ()
let cancelled b = match b.stop with Some flag -> Atomic.get flag | None -> false

let with_stop b stop = { b with stop = Some stop }

let exceeded b ~nodes =
  cancelled b
  || (match b.node_limit with Some l -> nodes >= l | None -> false)
  || (match b.deadline with Some d -> now () >= d | None -> false)

let nodes_exceeded b ~nodes =
  match b.node_limit with Some l -> nodes >= l | None -> false

let wall_limit b = Option.map (fun d -> d -. b.started) b.deadline
let remaining_wall b = Option.map (fun d -> d -. now ()) b.deadline
