type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable mn : float;
  mutable mx : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; mn = infinity; mx = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)

(* The internal sentinels are +/-infinity; leaking them renders as "inf" in
   tables, so an empty accumulator reports [nan] (detectable, never a
   plausible-looking extremum). *)
let min t = if t.n = 0 then nan else t.mn
let max t = if t.n = 0 then nan else t.mx
