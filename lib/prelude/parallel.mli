(** The one place that decides how many domains a parallel path gets.

    Before this module, each caller rolled its own default:
    [Opt.solve_parallel] used a bare [Domain.recommended_domain_count ()]
    while the CSP2OPT bench forced [max 2 (...)] — so a single-core CI
    box still spawned two domains and recorded the oversubscription
    slowdown as if it were a parallelism result.  Every default now funnels
    through {!recommended_jobs}; callers that want to oversubscribe must
    say so explicitly (e.g. [MGRTS_JOBS=2] on the bench harness). *)

val recommended_jobs : ?lo:int -> ?hi:int -> unit -> int
(** [Domain.recommended_domain_count ()] clamped into [[lo, hi]]
    (defaults: [lo = 1], [hi = 64]).  On a 1-core machine this is [1]:
    parallel entry points then take their sequential path instead of
    time-slicing domains against each other. *)
