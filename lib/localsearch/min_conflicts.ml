open Prelude
open Rt_model

type stats = {
  iterations : int;
  restarts : int;
  best_cost : int;
  time_s : float;
}

(* Sparse set of job ids with received ≠ C, O(1) add/remove/sample. *)
module Unsat = struct
  type t = { items : int array; pos : int array; mutable size : int }

  let create n = { items = Array.init n Fun.id; pos = Array.init n Fun.id; size = 0 }

  let mem t g = t.pos.(g) < t.size

  let add t g =
    if not (mem t g) then begin
      let p = t.pos.(g) in
      let swapped = t.items.(t.size) in
      t.items.(t.size) <- g;
      t.items.(p) <- swapped;
      t.pos.(swapped) <- p;
      t.pos.(g) <- t.size;
      t.size <- t.size + 1
    end

  let remove t g =
    if mem t g then begin
      t.size <- t.size - 1;
      let p = t.pos.(g) in
      let swapped = t.items.(t.size) in
      t.items.(p) <- swapped;
      t.items.(t.size) <- g;
      t.pos.(swapped) <- p;
      t.pos.(g) <- t.size
    end

  let sample t rng = t.items.(Prng.int rng t.size)
end

type state = {
  windows : Windows.t;
  m : int;
  horizon : int;
  cells : int array array;  (* [proc].[slot] = task or -1 *)
  received : int array;  (* per global job *)
  present : Bitset.t array;  (* per slot: tasks running *)
  wcet_of_job : int array;
  unsat : Unsat.t;
  mutable cost : int;
  rng : Prng.t;
  dc_order : int array;
  domains : Analysis.Domains.t option;
}

let job_at st ~task ~time = Windows.job_id_at st.windows ~task ~time

let blocked st ~task ~time =
  match st.domains with
  | None -> false
  | Some d -> Analysis.Domains.is_blocked d ~task ~time

let cost_term st g = abs (st.received.(g) - st.wcet_of_job.(g))

let touch st g delta =
  st.cost <- st.cost - cost_term st g;
  st.received.(g) <- st.received.(g) + delta;
  st.cost <- st.cost + cost_term st g;
  if cost_term st g = 0 then Unsat.remove st.unsat g else Unsat.add st.unsat g

(* Set cell (j,t) to [v] (task or -1), maintaining received/present/cost. *)
let set_cell st ~proc ~time v =
  let old = st.cells.(proc).(time) in
  if old <> v then begin
    if old >= 0 then begin
      touch st (job_at st ~task:old ~time) (-1);
      Bitset.remove st.present.(time) old
    end;
    st.cells.(proc).(time) <- v;
    if v >= 0 then begin
      touch st (job_at st ~task:v ~time) 1;
      Bitset.add st.present.(time) v
    end
  end

(* Cost delta of setting (proc,time) to [v], without applying. *)
let delta_of st ~proc ~time v =
  let old = st.cells.(proc).(time) in
  if old = v then 0
  else begin
    let d = ref 0 in
    if old >= 0 then begin
      let g = job_at st ~task:old ~time in
      d := !d + abs (st.received.(g) - 1 - st.wcet_of_job.(g)) - cost_term st g
    end;
    if v >= 0 then begin
      let g = job_at st ~task:v ~time in
      d := !d + abs (st.received.(g) + 1 - st.wcet_of_job.(g)) - cost_term st g
    end;
    !d
  end

let greedy_init st =
  for j = 0 to st.m - 1 do
    for t = 0 to st.horizon - 1 do
      set_cell st ~proc:j ~time:t (-1)
    done
  done;
  for t = 0 to st.horizon - 1 do
    let next_proc = ref 0 in
    (* Statically forced tasks go in first: the analyzer proved every
       feasible schedule runs them here, so a start state honoring them is
       never further from a solution. *)
    (match st.domains with
    | None -> ()
    | Some d ->
      List.iter
        (fun i ->
          if !next_proc < st.m then begin
            set_cell st ~proc:!next_proc ~time:t i;
            incr next_proc
          end)
        (Analysis.Domains.forced_at d ~time:t));
    Array.iter
      (fun i ->
        if
          !next_proc < st.m
          && job_at st ~task:i ~time:t >= 0
          && (not (Bitset.mem st.present.(t) i))
          && not (blocked st ~task:i ~time:t)
        then begin
          let g = job_at st ~task:i ~time:t in
          if st.received.(g) < st.wcet_of_job.(g) then begin
            set_cell st ~proc:!next_proc ~time:t i;
            incr next_proc
          end
        end)
      st.dc_order
  done

let solve ?(seed = 0) ?(noise = 0.08) ?(budget = Timer.unlimited) ?restart_every ?domains ts
    ~m =
  let t0 = Timer.start () in
  let windows = Windows.build ts in
  let n = Taskset.size ts in
  let horizon = Windows.horizon windows in
  (match domains with
  | Some d when not (Analysis.Domains.matches d ~n ~m ~horizon) ->
    invalid_arg "Min_conflicts.solve: domains derived for a different instance"
  | _ -> ());
  let job_count = Windows.job_count windows in
  let wcet_of_job =
    Array.map (fun (j : Windows.job) -> (Taskset.task ts j.task).wcet) (Windows.jobs windows)
  in
  let st =
    {
      windows;
      m;
      horizon;
      cells = Array.make_matrix m horizon (-1);
      received = Array.make job_count 0;
      present = Array.init horizon (fun _ -> Bitset.create n);
      wcet_of_job;
      unsat = Unsat.create job_count;
      cost = 0;
      rng = Prng.create ~seed;
      dc_order = Csp2.Heuristic.order Csp2.Heuristic.DC ts;
      domains;
    }
  in
  (* All jobs start unserved. *)
  Array.iteri
    (fun g c ->
      st.cost <- st.cost + c;
      if c > 0 then Unsat.add st.unsat g)
    wcet_of_job;
  let restart_every =
    match restart_every with Some r -> r | None -> Int.max 1000 (20 * m * horizon)
  in
  let iterations = ref 0 in
  let restarts = ref 0 in
  let best_cost = ref max_int in
  greedy_init st;
  let jobs = Windows.jobs windows in
  let result = ref None in
  while !result = None do
    if st.cost < !best_cost then best_cost := st.cost;
    if st.cost = 0 then begin
      let sched = Schedule.create ~m ~horizon in
      for j = 0 to m - 1 do
        for t = 0 to horizon - 1 do
          if st.cells.(j).(t) >= 0 then Schedule.set sched ~proc:j ~time:t st.cells.(j).(t)
        done
      done;
      result := Some (Encodings.Outcome.Feasible sched)
    end
    else if
      (if !iterations land 63 = 0 then begin
         Resilience.Failpoint.hit "localsearch.iter";
         Telemetry.heartbeat ~name:"min-conflicts" ~nodes:!iterations ~fails:!restarts
           ~depth:!best_cost
       end;
       Timer.cancelled budget
       || Timer.nodes_exceeded budget ~nodes:!iterations
       || (!iterations land 63 = 0 && Timer.exceeded budget ~nodes:!iterations))
    then result := Some Encodings.Outcome.Limit
    else begin
      incr iterations;
      if !iterations mod restart_every = 0 then begin
        Resilience.Failpoint.hit "localsearch.restart";
        incr restarts;
        greedy_init st
      end
      else begin
        let g = Unsat.sample st.unsat st.rng in
        let job = jobs.(g) in
        let i = job.Windows.task in
        if st.received.(g) < st.wcet_of_job.(g) then begin
          (* Under-served: put the task into one of its window slots. *)
          let slots =
            Array.of_list
              (List.filter
                 (fun t ->
                   (not (Bitset.mem st.present.(t) i)) && not (blocked st ~task:i ~time:t))
                 (Array.to_list job.Windows.slots))
          in
          if Array.length slots > 0 then begin
            let t = Prng.pick st.rng slots in
            let pick_proc =
              if Prng.float st.rng < noise then Prng.int st.rng m
              else begin
                let best = ref 0 and best_d = ref max_int in
                for j = 0 to m - 1 do
                  let d = delta_of st ~proc:j ~time:t i in
                  if d < !best_d then begin
                    best_d := d;
                    best := j
                  end
                done;
                !best
              end
            in
            set_cell st ~proc:pick_proc ~time:t i
          end
        end
        else begin
          (* Over-served: free one of the task's cells in this window. *)
          let owned = ref [] in
          Array.iter
            (fun t ->
              for j = 0 to m - 1 do
                if st.cells.(j).(t) = i then owned := (j, t) :: !owned
              done)
            job.Windows.slots;
          match !owned with
          | [] -> ()
          | l ->
            let j, t = Prng.pick st.rng (Array.of_list l) in
            (* Replace with the best alternative value (idle or another
               available, absent task). *)
            let candidates =
              (-1)
              :: List.filter
                   (fun a ->
                     a <> i
                     && (not (Bitset.mem st.present.(t) a))
                     && not (blocked st ~task:a ~time:t))
                   (Windows.available_tasks st.windows ~time:t)
            in
            let choice =
              if Prng.float st.rng < noise then
                List.nth candidates (Prng.int st.rng (List.length candidates))
              else
                List.fold_left
                  (fun (bv, bd) v ->
                    let d = delta_of st ~proc:j ~time:t v in
                    if d < bd then (v, d) else (bv, bd))
                  (-1, delta_of st ~proc:j ~time:t (-1))
                  candidates
                |> fst
            in
            set_cell st ~proc:j ~time:t choice
        end
      end
    end
  done;
  let outcome = match !result with Some o -> o | None -> assert false in
  ( outcome,
    { iterations = !iterations; restarts = !restarts; best_cost = Int.min !best_cost st.cost;
      time_s = Timer.elapsed t0 } )

let to_stats ~backend (st : stats) =
  Telemetry.Stats.make ~backend ~nodes:st.iterations ~fails:st.restarts
    ~restarts:st.restarts ~time_s:st.time_s ()
