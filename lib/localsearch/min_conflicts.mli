(** Min-conflicts local search over the CSP2 representation.

    The paper's first future-work item (Section VIII): "using the same CSP
    formalizations with local search algorithms, although they won't be
    able to prove that a given instance is infeasible".

    The state is a full assignment of CSP2's variables — a task id or idle
    per (processor, slot) — kept consistent with constraints (7) (windows)
    and (8) (no intra-slot duplicates) by construction; the cost counts
    violations of the demand constraint (9): [Σ_jobs |received − C|].
    A move re-assigns one (processor, slot) cell to the value minimizing the
    cost, with random-walk noise to escape plateaus.

    Consequently the verdict is [Feasible] (cost reached 0, schedule
    verified) or [Limit] — never [Infeasible]. *)

type stats = {
  iterations : int;
  restarts : int;
  best_cost : int;  (** 0 on success. *)
  time_s : float;
}

val to_stats : backend:string -> stats -> Telemetry.Stats.t
(** The unified telemetry view: iterations play the role of [nodes] and
    restarts of [fails]. *)

val solve :
  ?seed:int ->
  ?noise:float ->
  ?budget:Prelude.Timer.budget ->
  ?restart_every:int ->
  ?domains:Analysis.Domains.t ->
  Rt_model.Taskset.t ->
  m:int ->
  Encodings.Outcome.t * stats
(** [noise] (default 0.08) is the random-walk probability;
    [restart_every] (default 20·m·T iterations) re-seeds from a fresh
    greedy state.  The node budget counts iterations.

    [domains] seeds every greedy (re)start with the analyzer's statically
    forced cells and keeps moves out of statically blocked cells — blocked
    cells appear in no feasible schedule, so excluding them narrows the
    walk without excluding any solution.
    @raise Invalid_argument if the [domains] fingerprint does not match. *)
