open Rt_model

type policy = EDF | LLF | Fixed_priority of int array

type miss = { task : int; job : int; at : int }

type result = {
  ok : bool;
  exact : bool;
  misses : miss list;
  grid : Schedule.t;
  busy : int;
}

let ranks_by ts key =
  let n = Taskset.size ts in
  let ids = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let ka = key (Taskset.task ts a) and kb = key (Taskset.task ts b) in
      if ka <> kb then Int.compare ka kb else Int.compare a b)
    ids;
  let ranks = Array.make n 0 in
  Array.iteri (fun pos id -> ranks.(id) <- pos) ids;
  ranks

let rm_priorities ts = ranks_by ts (fun (t : Task.t) -> t.period)
let dm_priorities ts = ranks_by ts (fun (t : Task.t) -> t.deadline)

type state = {
  ts : Taskset.t;
  m : int;
  policy : policy;
  cur_job : int array;
  rem : int array;
  mutable misses_rev : miss list;
  mutable nmisses : int;
  mutable busy : int;
  mutable cells : int array;  (* flattened [slot*m + proc], grown on demand *)
}

let ensure_capacity st upto =
  let needed = upto * st.m in
  if needed > Array.length st.cells then begin
    let bigger = Array.make (max needed (2 * Array.length st.cells)) Schedule.idle in
    Array.blit st.cells 0 bigger 0 (Array.length st.cells);
    st.cells <- bigger
  end

(* Simulate one slot. *)
let step st t =
  let n = Taskset.size st.ts in
  ensure_capacity st (t + 1);
  for i = 0 to n - 1 do
    let task = Taskset.task st.ts i in
    (* Deadline check BEFORE the release: with D = T the old job's deadline
       coincides with the next release instant, and processing the release
       first would silently overwrite the unfinished job. *)
    if st.cur_job.(i) >= 0 && st.rem.(i) > 0 then begin
      let dl = Task.abs_deadline task st.cur_job.(i) in
      if t >= dl then begin
        if st.nmisses < 16 then
          st.misses_rev <- { task = i; job = st.cur_job.(i); at = t } :: st.misses_rev;
        st.nmisses <- st.nmisses + 1;
        st.rem.(i) <- 0 (* drop the job; keep simulating to find later misses *)
      end
    end;
    if t >= task.offset && (t - task.offset) mod task.period = 0 then begin
      st.cur_job.(i) <- (t - task.offset) / task.period;
      st.rem.(i) <- task.wcet
    end
  done;
  let pending = ref [] in
  for i = n - 1 downto 0 do
    if st.cur_job.(i) >= 0 && st.rem.(i) > 0 then pending := i :: !pending
  done;
  let weight i =
    let task = Taskset.task st.ts i in
    match st.policy with
    | EDF -> Task.abs_deadline task st.cur_job.(i)
    | LLF -> Task.abs_deadline task st.cur_job.(i) - t - st.rem.(i)
    | Fixed_priority ranks -> ranks.(i)
  in
  let sorted =
    List.sort
      (fun a b ->
        let wa = weight a and wb = weight b in
        if wa <> wb then Int.compare wa wb else Int.compare a b)
      !pending
  in
  List.iteri
    (fun pos i ->
      if pos < st.m then begin
        st.cells.((t * st.m) + pos) <- i;
        st.rem.(i) <- st.rem.(i) - 1;
        st.busy <- st.busy + 1
      end)
    sorted

(* Jobs pending at the end with deadlines inside the simulated window. *)
let flush_tail_misses st horizon =
  let n = Taskset.size st.ts in
  for i = 0 to n - 1 do
    if st.cur_job.(i) >= 0 && st.rem.(i) > 0 then begin
      let dl = Task.abs_deadline (Taskset.task st.ts i) st.cur_job.(i) in
      if dl <= horizon then begin
        if st.nmisses < 16 then
          st.misses_rev <- { task = i; job = st.cur_job.(i); at = dl } :: st.misses_rev;
        st.nmisses <- st.nmisses + 1
      end
    end
  done

let grid_of st horizon =
  let cells =
    Array.init st.m (fun j -> Array.init horizon (fun t -> st.cells.((t * st.m) + j)))
  in
  Schedule.of_cells cells

let finish st ~horizon ~exact =
  flush_tail_misses st horizon;
  {
    ok = st.nmisses = 0;
    exact;
    misses = List.rev st.misses_rev;
    grid = grid_of st horizon;
    busy = st.busy;
  }

let make_state ts ~m ~policy =
  let n = Taskset.size ts in
  {
    ts;
    m;
    policy;
    cur_job = Array.make n (-1);
    rem = Array.make n 0;
    misses_rev = [];
    nmisses = 0;
    busy = 0;
    cells = Array.make (1024 * m) Schedule.idle;
  }

let max_slots = 10_000_000

let run ?horizon ?(policy = EDF) ?(max_hyperperiods = 64) ts ~m =
  if m < 1 then invalid_arg "Sim.run: m must be >= 1";
  if not (Taskset.is_constrained ts) then
    invalid_arg "Sim.run: arbitrary-deadline task set (apply Clone.transform first)";
  let n = Taskset.size ts in
  (match policy with
  | Fixed_priority ranks ->
    if Array.length ranks <> n then invalid_arg "Sim.run: priority array arity"
  | EDF | LLF -> ());
  let hp = Taskset.hyperperiod ts in
  let omax =
    Array.fold_left (fun acc (t : Task.t) -> max acc t.offset) 0 (Taskset.tasks ts)
  in
  let st = make_state ts ~m ~policy in
  match horizon with
  | Some h ->
    if h > max_slots then invalid_arg "Sim.run: horizon too large";
    for t = 0 to h - 1 do
      step st t
    done;
    (* A fixed window decides misses inside it, nothing beyond. *)
    finish st ~horizon:h ~exact:(st.nmisses > 0)
  | None ->
    (* Adaptive: simulate hyperperiod chunks past O_max until the scheduler
       state repeats at chunk boundaries.  Deterministic memoryless
       policies then repeat forever, so the verdict is exact.  A growing
       backlog (utilization above capacity) never repeats, but then a miss
       must eventually occur and stops us; the [max_hyperperiods] cap is a
       safety net (verdict flagged inexact). *)
    let snapshot () = Array.copy st.rem in
    let t = ref 0 in
    let simulate_until bound =
      while !t < bound do
        step st !t;
        incr t
      done
    in
    simulate_until (omax + hp);
    let prev = ref (snapshot ()) in
    let exact = ref false in
    let chunks = ref 1 in
    let continue_ = ref true in
    while !continue_ do
      if st.nmisses > 0 then begin
        (* Miss found: definitive. *)
        exact := true;
        continue_ := false
      end
      else if !chunks >= max_hyperperiods || (!t + hp) * m > max_slots then begin
        exact := false;
        continue_ := false
      end
      else begin
        simulate_until (!t + hp);
        incr chunks;
        let now = snapshot () in
        if now = !prev && st.nmisses = 0 then begin
          exact := true;
          continue_ := false
        end
        else prev := now
      end
    done;
    finish st ~horizon:!t ~exact:!exact
