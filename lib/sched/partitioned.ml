open Rt_model

type result = { assignment : int array; ok : bool }

let edf_schedulable tasks =
  match tasks with
  | [] -> true
  | _ ->
    let ts = Taskset.of_tasks tasks in
    (* Exact uniprocessor test: EDF is optimal on one processor, and the
       adaptive simulation only reports ok once the schedule provably
       repeats.  The utilization pre-filter avoids simulating the long
       slow-divergence of overloaded bins. *)
    let num, den = Taskset.utilization_num_den ts in
    num <= den
    &&
    if Array.for_all (fun (t : Task.t) -> t.offset = 0) (Taskset.tasks ts) then
      (* Synchronous: the analytic demand-bound test is exact and cheap. *)
      Dbf.edf_schedulable ts
    else
      let res = Sim.run ts ~m:1 ~policy:Sim.EDF in
      res.Sim.ok && res.Sim.exact

let partition ts ~m =
  let n = Taskset.size ts in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let da = Task.density (Taskset.task ts a) and db = Task.density (Taskset.task ts b) in
      if da <> db then Float.compare db da else Int.compare a b)
    order;
  let assignment = Array.make n (-1) in
  let bins = Array.make m [] in
  let ok = ref true in
  Array.iter
    (fun i ->
      let task = Taskset.task ts i in
      let rec place j =
        if j >= m then ok := false
        else if edf_schedulable (task :: bins.(j)) then begin
          bins.(j) <- task :: bins.(j);
          assignment.(i) <- j
        end
        else place (j + 1)
      in
      place 0)
    order;
  { assignment; ok = !ok }

let schedule ts ~m =
  let { assignment; ok } = partition ts ~m in
  if not ok then None
  else begin
    let hp = Taskset.hyperperiod ts in
    let omax = Array.fold_left (fun acc (t : Task.t) -> max acc t.offset) 0 (Taskset.tasks ts) in
    let horizon = omax + (2 * hp) in
    let grid = Schedule.create ~m ~horizon in
    for j = 0 to m - 1 do
      let members =
        List.filter (fun (t : Task.t) -> assignment.(t.id) = j)
          (Array.to_list (Taskset.tasks ts))
      in
      match members with
      | [] -> ()
      | _ ->
        (* Per-processor EDF; re-map the sub-taskset ids back to the
           original ones. *)
        let back = Array.of_list (List.map (fun (t : Task.t) -> t.id) members) in
        let sub = Taskset.of_tasks members in
        let res = Sim.run ~horizon sub ~m:1 ~policy:Sim.EDF in
        for t = 0 to horizon - 1 do
          let v = Schedule.get res.Sim.grid ~proc:0 ~time:t in
          if v <> Schedule.idle then Schedule.set grid ~proc:j ~time:t back.(v)
        done
    done;
    Some grid
  end
