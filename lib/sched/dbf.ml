open Rt_model

let demand ts t =
  Array.fold_left
    (fun acc (task : Task.t) ->
      let jobs = ((t - task.deadline) / task.period) + 1 in
      if t >= task.deadline then acc + (jobs * task.wcet) else acc)
    0 (Taskset.tasks ts)

let check_points ts =
  let hp = Taskset.hyperperiod ts in
  let points = Hashtbl.create 64 in
  Array.iter
    (fun (task : Task.t) ->
      let k = ref 0 in
      let rec add () =
        let d = (!k * task.period) + task.deadline in
        if d <= hp then begin
          Hashtbl.replace points d ();
          incr k;
          add ()
        end
      in
      add ())
    (Taskset.tasks ts);
  List.sort Int.compare (Hashtbl.fold (fun p () acc -> p :: acc) points [])

let edf_schedulable ts =
  if not (Taskset.is_constrained ts) then
    invalid_arg "Dbf.edf_schedulable: arbitrary-deadline task set";
  if Array.exists (fun (t : Task.t) -> t.offset <> 0) (Taskset.tasks ts) then
    invalid_arg "Dbf.edf_schedulable: offsets not supported (use Sim.run)";
  let num, den = Taskset.utilization_num_den ts in
  num <= den && List.for_all (fun t -> demand ts t <= t) (check_points ts)
