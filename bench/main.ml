(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VII), the ablation/baseline extensions documented in
   DESIGN.md, and a set of Bechamel micro-benchmarks for the solver kernels.

   Paper regime: MGRTS_LIMIT=30 MGRTS_INSTANCES=500 dune exec bench/main.exe
   (defaults are scaled down so the default run finishes in minutes; see
   EXPERIMENTS.md for the paper-vs-measured discussion). *)

open Experiments

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

(* MGRTS_SECTIONS=portfolio,analyze runs only the sections whose title
   contains one of the comma-separated keys (case-insensitive); unset or
   empty runs everything. *)
let wanted =
  match Sys.getenv_opt "MGRTS_SECTIONS" with
  | None | Some "" -> fun _ -> true
  | Some spec ->
    let keys =
      String.split_on_char ',' (String.lowercase_ascii spec)
      |> List.map String.trim
      |> List.filter (fun k -> k <> "")
    in
    let contains hay needle =
      let h = String.length hay and n = String.length needle in
      let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
      n = 0 || at 0
    in
    fun title ->
      let t = String.lowercase_ascii title in
      List.exists (contains t) keys

(* Every section is timed (and recorded as a telemetry span when tracing
   is on); the per-phase wall clocks land in BENCH_phases.json so runs can
   be compared phase by phase, not just by total. *)
let phases : (string * float) list ref = ref []

let run_section title body =
  if wanted title then begin
    section title;
    let t0 = Prelude.Timer.start () in
    Telemetry.with_span title ~cat:"bench" body;
    phases := (title, Prelude.Timer.elapsed t0) :: !phases
  end

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_phases () =
  let out =
    match Sys.getenv_opt "MGRTS_PHASES_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_phases.json"
  in
  let cells =
    List.rev_map
      (fun (title, s) -> Printf.sprintf "  {\"phase\": \"%s\", \"wall_s\": %.6f}" (json_escape title) s)
      !phases
  in
  Resilience.Artifact.write_atomic out ("{\"phases\": [\n" ^ String.concat ",\n" cells ^ "\n]}\n");
  Printf.printf "\nphase timings written to %s\n" out

let progress_every every label i =
  if (i + 1) mod every = 0 then Printf.printf "  .. %s %d\n%!" label (i + 1)

let () =
  (* MGRTS_TRACE=out.json records the whole harness run — section spans
     plus solver heartbeats — as Chrome trace-event JSON.  Off by default:
     the CSP2OPT section doubles as the telemetry no-op overhead guard and
     must run with recording disabled. *)
  let trace_out =
    match Sys.getenv_opt "MGRTS_TRACE" with Some p when p <> "" -> Some p | _ -> None
  in
  if trace_out <> None then Telemetry.start ();
  let config = Config.from_env () in
  Printf.printf
    "MGRTS benchmark harness\n\
     config: %d instances, %.3fs limit, seed %d, table IV: %d instances x n in {%s}\n\
     (paper regime: MGRTS_LIMIT=30 MGRTS_INSTANCES=500)\n%!"
    config.Config.instances config.Config.limit_s config.Config.seed
    config.Config.table4_instances
    (String.concat "," (List.map string_of_int config.Config.table4_sizes));

  run_section "FIGURE 1" (fun () -> print_string (Tables.figure1 ()));

  run_section "TABLES I-III (shared campaign: m=5, n=10, Tmax=7)" (fun () ->
      let campaign = Campaign.run ~progress:(progress_every 100 "instance") config in
      print_string (Tables.render_table1 (Tables.table1 campaign));
      print_newline ();
      print_string (Tables.render_table2 (Tables.table2 campaign));
      print_newline ();
      print_string (Tables.render_bucket_rows (Tables.table3 campaign)));

  run_section
    "TABLE I VARIANT (weak propagation: urgency off — the regime where the paper's heuristic ordering shows)"
    (fun () ->
      let weak_campaign =
        Campaign.run
          ~solvers:Experiments.Runner.table1_weak_solvers
          ~progress:(progress_every 100 "instance")
          config
      in
      print_string (Tables.render_table1 (Tables.table1 weak_campaign)));

  run_section "TABLE IV (scaling: Tmax=15, m minimal)" (fun () ->
      let rows = Tables.table4 ~progress:(fun i -> progress_every 1 "size" i) config in
      print_string (Tables.render_table4 rows));

  run_section "PORTFOLIO (Domains race vs its sequential arms)" (fun () ->
      let portfolio_solvers =
        [
          List.find (fun s -> s.Runner.name = "+(D-C)") Runner.csp2_variants;
          Runner.csp1_sat;
          Runner.local_search;
          Runner.portfolio ();
        ]
      in
      let portfolio_campaign =
        Campaign.run ~solvers:portfolio_solvers ~progress:(progress_every 100 "instance") config
      in
      print_string (Tables.render_table1 (Tables.table1 portfolio_campaign));
      print_newline ();
      print_string (Tables.render_bucket_rows (Tables.table3 portfolio_campaign)));

  run_section "ANALYZE (static pre-pass: decision rates, prune volume, csp2 node reduction)"
    (fun () ->
      print_string (Prepass.render (Prepass.run ~progress:(progress_every 100 "instance") config)));

  run_section "CSP2OPT (classic search vs bitset+memo engine, node parity and wall clock)"
    (fun () ->
      (* MGRTS_JOBS forces the parallel run's domain count (e.g. [2] to
         measure the work-stealing path even on a single-core box);
         unset, the section uses the engine's own clamped default. *)
      let jobs =
        match Sys.getenv_opt "MGRTS_JOBS" with
        | Some v -> int_of_string_opt (String.trim v)
        | None -> None
      in
      let totals = Csp2opt.run ~progress:(progress_every 100 "instance") ?jobs config in
      print_string (Csp2opt.render totals);
      let out =
        match Sys.getenv_opt "MGRTS_BENCH_OUT" with
        | Some p when p <> "" -> p
        | _ -> "BENCH_csp2.json"
      in
      Resilience.Artifact.write_atomic out (Csp2opt.to_json totals);
      Printf.printf "  json written to %s\n" out);

  run_section "RANDOMNESS (Section VII-B)" (fun () -> print_string (Variance.render (Variance.run config)));

  run_section "ABLATIONS" (fun () -> print_string (Ablation.render (Ablation.run config)));

  run_section "BASELINES" (fun () -> print_string (Baselines.render (Baselines.run config)));

  run_section "SERVE (request scheduler: latency/throughput vs concurrency, cache, failpoint soak)"
    (fun () ->
      let totals = Serve_load.run ~progress:(fun msg -> Printf.printf "  .. %s\n%!" msg) () in
      print_string (Serve_load.render totals);
      let out =
        match Sys.getenv_opt "MGRTS_SERVE_OUT" with
        | Some p when p <> "" -> p
        | _ -> "BENCH_serve.json"
      in
      Resilience.Artifact.write_atomic out (Serve_load.to_json totals);
      Printf.printf "  json written to %s\n" out);

  run_section "MICRO-BENCHMARKS (Bechamel)" (fun () -> Micro.run ());

  write_phases ();
  match trace_out with
  | None -> ()
  | Some out ->
    Telemetry.stop ();
    let events = Telemetry.drain () in
    Resilience.Artifact.write_atomic out (Telemetry.to_chrome_json events);
    Printf.printf "trace (%d events) written to %s\n" (List.length events) out
