(* Load generator for the serve request scheduler (DESIGN.md §11).

   Three measurements, all in-process against [Serve.Scheduler] (the same
   code path as [mgrts serve] minus stdin/stdout):

   - latency/throughput vs concurrency: a mixed NDJSON stream (unique
     instances, repeats that hit the cache, over-utilized instances the
     front door kills) through the full handle_line -> queue -> worker ->
     emit pipeline, at two or more worker-pool sizes; per-request latency
     is submit-to-emit wall clock.
   - cache hit vs fresh solve: the same instance solved with the cache
     bypassed and then answered from the cache (relabel + verify-on-hit
     included), paired per instance.
   - soak with failpoints: a sustained stream through a small admission
     queue while [serve.request] is periodically armed to raise and to
     delay; the daemon must contain every injected crash, keep serving,
     and lose no request (every submission gets a response or a code-6
     rejection).

   Scaled by MGRTS_SERVE_REQUESTS (per concurrency level) and
   MGRTS_SERVE_SOAK; the committed BENCH_serve.json comes from the
   defaults. *)

open Rt_model
module Json = Serve.Json
module Proto = Serve.Proto
module Scheduler = Serve.Scheduler
module Failpoint = Resilience.Failpoint
module Generator = Gen.Generator

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt (String.trim v) with Some i when i > 0 -> i | _ -> default)
  | None -> default

(* ------------------------------------------------------------------ *)
(* Workload. *)

let tuples_of ts =
  Array.to_list
    (Array.map
       (fun (t : Task.t) -> (t.Task.offset, t.Task.wcet, t.Task.deadline, t.Task.period))
       (Taskset.tasks ts))

let request_line ~id ?(no_cache = false) (ts, m) =
  let b = Buffer.create 128 in
  Printf.bprintf b "{\"id\": \"%s\", \"taskset\": [" id;
  Array.iteri
    (fun i (t : Task.t) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "[%d,%d,%d,%d]" t.Task.offset t.Task.wcet t.Task.deadline t.Task.period)
    (Taskset.tasks ts);
  Printf.bprintf b "], \"m\": %d" m;
  if no_cache then Buffer.add_string b ", \"no_cache\": true";
  Buffer.add_char b '}';
  Buffer.contents b

(* Table I's regime: small instances the solvers decide in well under the
   budget, so the bench measures the service, not solver timeouts.  The
   generator's instances include over-utilized (front-door) task sets. *)
let instances ~seed ~count =
  Generator.batch ~seed ~count (Generator.default ~n:10 ~m:(Generator.Fixed_m 5) ~tmax:7)

(* Per-request wall budget for the bench: hard instances go undecided at
   0.25 s instead of burning the 5 s service default, so the percentiles
   describe the scheduler, not a handful of solver timeouts. *)
let bench_wall_s = 0.25

(* ------------------------------------------------------------------ *)
(* Statistics. *)

type latency = {
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

let summarize lats =
  let arr = Array.of_list lats in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  if n = 0 then { count = 0; mean_ms = 0.; p50_ms = 0.; p95_ms = 0.; p99_ms = 0.; max_ms = 0. }
  else begin
    let pct q = arr.(min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1))) in
    let sum = Array.fold_left ( +. ) 0. arr in
    let ms s = 1000. *. s in
    {
      count = n;
      mean_ms = ms (sum /. float_of_int n);
      p50_ms = ms (pct 0.50);
      p95_ms = ms (pct 0.95);
      p99_ms = ms (pct 0.99);
      max_ms = ms arr.(n - 1);
    }
  end

let latency_json l =
  Printf.sprintf
    "{\"count\": %d, \"mean_ms\": %.4f, \"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, \
     \"max_ms\": %.4f}"
    l.count l.mean_ms l.p50_ms l.p95_ms l.p99_ms l.max_ms

(* ------------------------------------------------------------------ *)
(* Latency/throughput vs concurrency. *)

type level = {
  workers : int;
  jobs_per_request : int;
  requests : int;
  wall_s : float;
  throughput_rps : float;
  latency : latency;
  cache_hits : int;
  cache_misses : int;
  front_door : int;
}

(* Completion times keyed by request id, recorded in the emit callback
   (worker domains), so latency covers queueing + solving + rendering. *)
let collector () =
  let mu = Mutex.create () in
  let completions : (string, float) Hashtbl.t = Hashtbl.create 1024 in
  let n_done = Atomic.make 0 in
  let emit line =
    let t = Prelude.Timer.now () in
    match Json.parse line with
    | Ok j -> (
      match Json.member "id" j with
      | Some (Json.Str id) ->
        Mutex.lock mu;
        Hashtbl.replace completions id t;
        Mutex.unlock mu;
        Atomic.incr n_done
      | Some _ | None -> ())
    | Error _ -> ()
  in
  (emit, completions, n_done)

let run_level ~requests ~workers ~seed =
  let total = Prelude.Parallel.recommended_jobs () in
  let jobs = max 1 (total / workers) in
  (* Every third request repeats an earlier instance, so the stream mixes
     cold solves with cache hits the way a multi-tenant batch would. *)
  let uniq = instances ~seed ~count:(max 1 ((requests * 2 / 3) + 1)) in
  let pick i = uniq.(if i mod 3 = 2 then i / 3 mod Array.length uniq else i * 2 / 3 mod Array.length uniq) in
  let emit, completions, n_done = collector () in
  let config =
    {
      (Scheduler.default_config ()) with
      Scheduler.workers;
      jobs_per_request = jobs;
      queue_capacity = requests + 8;
      cache_capacity = requests + 8;
      default_wall_s = bench_wall_s;
    }
  in
  let sched = Scheduler.create ~config ~emit () in
  let submits : (string * float) list ref = ref [] in
  (* Closed-loop driver: keep a bounded number of requests in flight so
     the percentiles measure service latency under load, not position in
     an unbounded backlog. *)
  let window = max 4 (2 * workers) in
  let t0 = Prelude.Timer.start () in
  for i = 0 to requests - 1 do
    while i - Atomic.get n_done >= window do
      Unix.sleepf 0.0002
    done;
    let id = Printf.sprintf "q%d" i in
    submits := (id, Prelude.Timer.now ()) :: !submits;
    ignore (Scheduler.handle_line sched ~fallback_id:id (request_line ~id (pick i)))
  done;
  Scheduler.shutdown sched;
  let wall_s = Prelude.Timer.elapsed t0 in
  let c = Scheduler.counters sched in
  let lats =
    List.filter_map
      (fun (id, t_submit) ->
        match Hashtbl.find_opt completions id with
        | Some t_done -> Some (t_done -. t_submit)
        | None -> None)
      !submits
  in
  {
    workers;
    jobs_per_request = jobs;
    requests;
    wall_s;
    throughput_rps = (if wall_s > 0. then float_of_int requests /. wall_s else 0.);
    latency = summarize lats;
    cache_hits = c.Proto.cache.Serve.Cache.hits;
    cache_misses = c.Proto.cache.Serve.Cache.misses;
    front_door = c.Proto.front_door_infeasible;
  }

(* ------------------------------------------------------------------ *)
(* Cache hit vs fresh solve, paired per instance. *)

type cache_result = {
  pairs : int;
  fresh : latency;
  hit : latency;
  speedup : float;
}

let mk_req ~id ~no_cache (ts, m) =
  {
    Proto.id;
    tuples = tuples_of ts;
    m;
    solver = None;
    wall_s = None;
    nodes = None;
    seed = 0;
    want_schedule = false;
    no_cache;
  }

let run_cache ~pairs ~seed =
  let config =
    {
      (Scheduler.default_config ()) with
      Scheduler.workers = 1;
      jobs_per_request = 1;
      default_wall_s = bench_wall_s;
    }
  in
  let sched = Scheduler.create ~config ~emit:(fun _ -> ()) () in
  let uniq = instances ~seed ~count:pairs in
  let timed req =
    let t0 = Prelude.Timer.start () in
    let resp = Scheduler.process sched ~queue_s:0. req in
    (Prelude.Timer.elapsed t0, resp)
  in
  let fresh = ref [] and hit = ref [] and n = ref 0 in
  Array.iteri
    (fun i inst ->
      let id = Printf.sprintf "c%d" i in
      let fresh_s, _ = timed (mk_req ~id ~no_cache:true inst) in
      ignore (timed (mk_req ~id ~no_cache:false inst));
      let hit_s, second = timed (mk_req ~id ~no_cache:false inst) in
      (* Only count instances the cache actually answers: front-door
         infeasible instances are decided structurally both times and
         would flatter the hit numbers. *)
      if second.Proto.r_cached then begin
        fresh := fresh_s :: !fresh;
        hit := hit_s :: !hit;
        incr n
      end)
    uniq;
  Scheduler.shutdown sched;
  let fresh = summarize !fresh and hit = summarize !hit in
  {
    pairs = !n;
    fresh;
    hit;
    speedup = (if hit.mean_ms > 0. then fresh.mean_ms /. hit.mean_ms else 0.);
  }

(* ------------------------------------------------------------------ *)
(* Soak with failpoints. *)

type soak_result = {
  soak_requests : int;
  responses : int;
  soak_rejected : int;
  contained_crashes : int;
  lost : int;
  wall : float;
  survived : bool;
}

let run_soak ~requests ~seed =
  Failpoint.reset ();
  let responded = Atomic.make 0 in
  let emit line =
    match Json.parse line with
    | Ok j when Json.member "id" j <> None -> Atomic.incr responded
    | Ok _ | Error _ -> ()
  in
  (* Rejections count as responses for the in-flight window, so the
     closed loop below keeps moving even through a rejected burst. *)
  (* Small queue: rejection/backpressure is part of what the soak
     exercises, on top of the injected raises and delays. *)
  let config =
    {
      (Scheduler.default_config ()) with
      Scheduler.queue_capacity = 16;
      cache_capacity = 256;
      default_wall_s = bench_wall_s;
    }
  in
  let sched = Scheduler.create ~config ~emit () in
  let uniq = instances ~seed ~count:(max 1 (requests / 4)) in
  let window = 8 in
  let burst_until = ref (-1) in
  let t0 = Prelude.Timer.start () in
  Fun.protect ~finally:Failpoint.reset (fun () ->
      for i = 0 to requests - 1 do
        (* Intermittent faults: every 50th request re-arms a one-shot
           raise, every 83rd a 5 ms stall. *)
        if i mod 50 = 25 then
          Failpoint.arm ~trigger:(Failpoint.Nth 1) "serve.request"
            (Failpoint.Raise Failpoint.Out_of_memory)
        else if i mod 83 = 40 then
          Failpoint.arm ~trigger:(Failpoint.Nth 1) "serve.request" (Failpoint.Delay 0.005);
        (* Mostly a closed loop (window below queue capacity, so steady
           state is never rejected), punctuated by unpaced bursts that
           overflow the admission queue and exercise code-6 backpressure. *)
        if i mod 97 = 0 then burst_until := i + 24;
        if i > !burst_until then
          while i - Atomic.get responded >= window do
            Unix.sleepf 0.0005
          done;
        let id = Printf.sprintf "s%d" i in
        ignore
          (Scheduler.handle_line sched ~fallback_id:id
             (request_line ~id uniq.(i mod Array.length uniq)))
      done;
      Scheduler.shutdown sched);
  let wall = Prelude.Timer.elapsed t0 in
  let c = Scheduler.counters sched in
  let responses = Atomic.get responded in
  {
    soak_requests = requests;
    responses;
    soak_rejected = c.Proto.rejected;
    contained_crashes = c.Proto.crashed;
    lost = requests - responses;
    wall;
    survived = requests = responses;
  }

(* ------------------------------------------------------------------ *)
(* Driver, rendering, JSON. *)

type totals = { levels : level list; cache : cache_result; soak : soak_result }

let run ?(progress = fun (_ : string) -> ()) () =
  let requests = env_int "MGRTS_SERVE_REQUESTS" 1000 in
  let soak_requests = env_int "MGRTS_SERVE_SOAK" 1000 in
  let total = Prelude.Parallel.recommended_jobs () in
  let level_list = if total >= 4 then [ 1; 2; 4 ] else [ 1; 2 ] in
  let levels =
    List.map
      (fun workers ->
        progress (Printf.sprintf "level: %d workers, %d requests" workers requests);
        run_level ~requests ~workers ~seed:42)
      level_list
  in
  progress "cache: paired fresh vs hit";
  let cache = run_cache ~pairs:(min 400 (max 50 (requests / 4))) ~seed:43 in
  progress (Printf.sprintf "soak: %d requests under failpoints" soak_requests);
  let soak = run_soak ~requests:soak_requests ~seed:44 in
  { levels; cache; soak }

let render t =
  let b = Buffer.create 1024 in
  Printf.bprintf b "  %-8s %-6s %-9s %-11s %9s %9s %9s %9s\n" "workers" "jobs" "requests"
    "rps" "p50 ms" "p95 ms" "p99 ms" "mean ms";
  List.iter
    (fun l ->
      Printf.bprintf b "  %-8d %-6d %-9d %-11.1f %9.3f %9.3f %9.3f %9.3f\n" l.workers
        l.jobs_per_request l.requests l.throughput_rps l.latency.p50_ms l.latency.p95_ms
        l.latency.p99_ms l.latency.mean_ms)
    t.levels;
  (match t.levels with
  | l :: _ ->
    Printf.bprintf b "  mix at %d worker(s): %d cache hits, %d misses, %d front-door\n" l.workers
      l.cache_hits l.cache_misses l.front_door
  | [] -> ());
  Printf.bprintf b
    "  cache: %d pairs, fresh mean %.3f ms vs hit mean %.3f ms -> %.1fx (p95 %.3f vs %.3f)\n"
    t.cache.pairs t.cache.fresh.mean_ms t.cache.hit.mean_ms t.cache.speedup t.cache.fresh.p95_ms
    t.cache.hit.p95_ms;
  Printf.bprintf b
    "  soak: %d requests in %.2fs, %d responses (%d lost), %d rejected (code 6), %d contained \
     crashes -> %s\n"
    t.soak.soak_requests t.soak.wall t.soak.responses t.soak.lost t.soak.soak_rejected
    t.soak.contained_crashes
    (if t.soak.survived then "survived" else "LOST REQUESTS");
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"levels\": [\n";
  List.iteri
    (fun i l ->
      if i > 0 then Buffer.add_string b ",\n";
      Printf.bprintf b
        "  {\"workers\": %d, \"jobs_per_request\": %d, \"requests\": %d, \"wall_s\": %.3f, \
         \"throughput_rps\": %.1f, \"latency\": %s, \"cache_hits\": %d, \"cache_misses\": %d, \
         \"front_door_infeasible\": %d}"
        l.workers l.jobs_per_request l.requests l.wall_s l.throughput_rps
        (latency_json l.latency) l.cache_hits l.cache_misses l.front_door)
    t.levels;
  Buffer.add_string b "\n],\n";
  Printf.bprintf b "\"cache\": {\"pairs\": %d, \"fresh\": %s, \"hit\": %s, \"speedup\": %.1f},\n"
    t.cache.pairs (latency_json t.cache.fresh) (latency_json t.cache.hit) t.cache.speedup;
  Printf.bprintf b
    "\"soak\": {\"requests\": %d, \"responses\": %d, \"rejected\": %d, \"contained_crashes\": \
     %d, \"lost\": %d, \"wall_s\": %.3f, \"survived\": %b}}\n"
    t.soak.soak_requests t.soak.responses t.soak.soak_rejected t.soak.contained_crashes
    t.soak.lost t.soak.wall t.soak.survived;
  Buffer.contents b
