(* Bechamel micro-benchmarks for the solver kernels: one Test.make per
   component whose inner-loop performance the tables depend on. *)

open Bechamel
open Toolkit

let running_example = Rt_model.Examples.running_example

let prng_test =
  Test.make ~name:"prng.int" (Staged.stage (let rng = Prelude.Prng.create ~seed:1 in fun () -> ignore (Prelude.Prng.int rng 1000)))

let bitset_test =
  Test.make ~name:"bitset.iter"
    (Staged.stage
       (let set = Prelude.Bitset.full 256 in
        fun () ->
          let acc = ref 0 in
          Prelude.Bitset.iter (fun v -> acc := !acc + v) set;
          ignore !acc))

let windows_test =
  Test.make ~name:"windows.build"
    (Staged.stage (fun () -> ignore (Rt_model.Windows.build running_example)))

let csp1_test =
  Test.make ~name:"csp1.solve(example)"
    (Staged.stage (fun () ->
         ignore (Encodings.Csp1.solve ~seed:1 running_example ~m:2)))

let csp1_sat_test =
  Test.make ~name:"csp1-sat.solve(example)"
    (Staged.stage (fun () -> ignore (Encodings.Csp1_sat.solve running_example ~m:2)))

let csp2_test =
  Test.make ~name:"csp2-dc.solve(example)"
    (Staged.stage (fun () ->
         ignore (Csp2.Solver.solve ~heuristic:Csp2.Heuristic.DC running_example ~m:2)))

let csp2_opt_test =
  Test.make ~name:"csp2-opt-dc.solve(example)"
    (Staged.stage (fun () ->
         ignore (Csp2.Opt.solve ~heuristic:Csp2.Heuristic.DC running_example ~m:2)))

let ibits_test =
  Test.make ~name:"ibits.iter"
    (Staged.stage
       (let set = Prelude.Ibits.create 256 in
        let i = ref 0 in
        while !i < 256 do
          Prelude.Ibits.set set !i;
          i := !i + 3
        done;
        fun () ->
          let acc = ref 0 in
          Prelude.Ibits.iter (fun v -> acc := !acc + v) set;
          ignore !acc))

(* The no-op overhead guard: with recording off (the default in this
   process), a solver checkpoint pays one atomic load in [enabled] plus the
   early return of [heartbeat]/[with_span].  These should cost a few ns —
   if they regress, every backend's hot loop regresses with them. *)
let telemetry_disabled_heartbeat_test =
  Test.make ~name:"telemetry.heartbeat(off)"
    (Staged.stage (fun () -> Telemetry.heartbeat ~name:"bench" ~nodes:1 ~fails:0 ~depth:1))

let telemetry_disabled_span_test =
  Test.make ~name:"telemetry.with_span(off)"
    (Staged.stage (fun () -> Telemetry.with_span "bench" (fun () -> ())))

(* Same guard for failpoints: with nothing armed (the default), a [hit] in
   a solver checkpoint is one atomic load on [armed_flag]. *)
let failpoint_disarmed_test =
  Test.make ~name:"failpoint.hit(off)"
    (Staged.stage (fun () -> Resilience.Failpoint.hit "bench"))

(* Guard for the [Int.compare] clause-dedup fix in [Sat.Solver.add_clause]:
   encoding-bound instances add tens of thousands of clauses, and a
   polymorphic [compare] in the dedup sort is pure constant-factor loss.
   The run measures clause ingestion (create + add), the phase the sort
   sits in. *)
let sat_clause_dedup_test =
  Test.make ~name:"sat.clause-dedup"
    (Staged.stage (fun () ->
         let s = Sat.Solver.create () in
         let vs = Array.init 24 (fun _ -> Sat.Solver.new_var s) in
         for c = 0 to 63 do
           Sat.Solver.add_clause s
             [
               Sat.Solver.pos vs.(c mod 24);
               Sat.Solver.neg vs.((c + 7) mod 24);
               Sat.Solver.pos vs.((c + 13) mod 24);
               Sat.Solver.pos vs.(c mod 24);
             ]
         done))

(* The work-stealing deque's owner path: push/pop must stay in the few-ns
   range or lazy splitting would tax every expansion. *)
let deque_test =
  Test.make ~name:"deque.push-pop"
    (Staged.stage
       (let d = Prelude.Deque.create () in
        fun () ->
          for i = 0 to 15 do
            Prelude.Deque.push d i
          done;
          for _ = 0 to 15 do
            ignore (Prelude.Deque.pop d)
          done))

let sim_test =
  Test.make ~name:"sim.edf(example)"
    (Staged.stage (fun () -> ignore (Sched.Sim.run running_example ~m:2)))

let generator_test =
  Test.make ~name:"generator.instance"
    (Staged.stage
       (let rng = Prelude.Prng.create ~seed:3 in
        let params = Gen.Generator.default ~n:10 ~m:(Gen.Generator.Fixed_m 5) ~tmax:7 in
        fun () -> ignore (Gen.Generator.generate rng params)))

let tests =
  Test.make_grouped ~name:"mgrts" ~fmt:"%s/%s"
    [
      prng_test;
      bitset_test;
      ibits_test;
      windows_test;
      csp1_test;
      csp1_sat_test;
      csp2_test;
      csp2_opt_test;
      sat_clause_dedup_test;
      deque_test;
      sim_test;
      generator_test;
      telemetry_disabled_heartbeat_test;
      telemetry_disabled_span_test;
      failpoint_disarmed_test;
    ]

let run () =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-32s %16s\n" "benchmark" "ns/run";
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-32s %16.1f\n" name est
      | Some _ | None -> Printf.printf "%-32s %16s\n" name "n/a")
    rows
