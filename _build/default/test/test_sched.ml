(* Tests for the baseline schedulers: the slot-level simulator (policies,
   misses, adaptive exactness) and partitioned first-fit EDF. *)

open Rt_model
module O = Encodings.Outcome

let check = Alcotest.check
let qtest = Test_util.qtest

(* ------------------------------------------------------------------ *)
(* Simulator                                                            *)

let test_single_task_edf () =
  let ts = Taskset.of_tuples [ (0, 1, 2, 2) ] in
  let res = Sched.Sim.run ts ~m:1 in
  Alcotest.(check bool) "ok" true res.Sched.Sim.ok;
  Alcotest.(check bool) "exact" true res.Sched.Sim.exact;
  check Alcotest.int "no misses" 0 (List.length res.Sched.Sim.misses)

let test_overload_misses () =
  (* Two always-urgent tasks on one processor. *)
  let ts = Taskset.of_tuples [ (0, 2, 2, 2); (0, 2, 2, 2) ] in
  let res = Sched.Sim.run ts ~m:1 in
  Alcotest.(check bool) "not ok" false res.Sched.Sim.ok;
  Alcotest.(check bool) "definitive" true res.Sched.Sim.exact;
  Alcotest.(check bool) "has misses" true (res.Sched.Sim.misses <> [])

let test_slow_divergence_detected () =
  (* U slightly above 1: the backlog grows by one unit per hyperperiod, so
     the fixed-window test of the first implementation missed it; the
     adaptive simulation must keep going until the miss. *)
  let ts = Taskset.of_tuples [ (0, 3, 6, 6); (0, 2, 4, 4); (0, 1, 3, 12) ] in
  (* U = 1/2 + 1/2 + 1/12 = 13/12 > 1 *)
  let res = Sched.Sim.run ts ~m:1 in
  Alcotest.(check bool) "miss eventually found" false res.Sched.Sim.ok;
  Alcotest.(check bool) "definitive" true res.Sched.Sim.exact

let test_edf_trap () =
  let res = Sched.Sim.run Examples.edf_trap ~m:Examples.edf_trap_m in
  Alcotest.(check bool) "EDF misses" false res.Sched.Sim.ok;
  match res.Sched.Sim.misses with
  | { Sched.Sim.task; _ } :: _ -> check Alcotest.int "task 3 misses" 2 task
  | [] -> Alcotest.fail "expected a recorded miss"

let test_offsets_respected () =
  (* A task with offset 3 must not run before t = 3. *)
  let ts = Taskset.of_tuples [ (3, 1, 2, 4) ] in
  let res = Sched.Sim.run ts ~m:1 in
  Alcotest.(check bool) "ok" true res.Sched.Sim.ok;
  for t = 0 to 2 do
    check Alcotest.int (Printf.sprintf "idle at %d" t) Schedule.idle
      (Schedule.get res.Sched.Sim.grid ~proc:0 ~time:t)
  done;
  check Alcotest.int "runs at 3" 0 (Schedule.get res.Sched.Sim.grid ~proc:0 ~time:3)

let test_priorities () =
  let ts = Taskset.of_tuples [ (0, 1, 4, 4); (0, 1, 2, 3) ] in
  let rm = Sched.Sim.rm_priorities ts in
  Alcotest.(check bool) "τ2 has shorter period" true (rm.(1) < rm.(0));
  let dm = Sched.Sim.dm_priorities ts in
  Alcotest.(check bool) "τ2 has shorter deadline" true (dm.(1) < dm.(0))

let test_fixed_priority_starvation () =
  (* The low-priority task starves under FP but EDF schedules it. *)
  let ts = Taskset.of_tuples [ (0, 2, 2, 2); (0, 2, 4, 4) ] in
  let fp =
    Sched.Sim.run ts ~m:1 ~policy:(Sched.Sim.Fixed_priority [| 0; 1 |])
  in
  Alcotest.(check bool) "low priority misses" false fp.Sched.Sim.ok;
  (* On two processors everything fits. *)
  let fp2 =
    Sched.Sim.run ts ~m:2 ~policy:(Sched.Sim.Fixed_priority [| 0; 1 |])
  in
  Alcotest.(check bool) "fits on 2" true (fp2.Sched.Sim.ok && fp2.Sched.Sim.exact)

let test_fixed_horizon_mode () =
  let ts = Taskset.of_tuples [ (0, 1, 2, 2) ] in
  let res = Sched.Sim.run ~horizon:10 ts ~m:1 in
  check Alcotest.int "grid horizon" 10 (Schedule.horizon res.Sched.Sim.grid);
  Alcotest.(check bool) "no-miss window is not a proof" false res.Sched.Sim.exact

let prop_sim_grid_consistent =
  qtest ~count:80 "simulation grids never violate C2/C3 and busy counts add up"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      let res = Sched.Sim.run ts ~m in
      let grid = res.Sched.Sim.grid in
      let horizon = Schedule.horizon grid in
      let busy = ref 0 in
      let ok = ref true in
      for t = 0 to horizon - 1 do
        let seen = Hashtbl.create 8 in
        for j = 0 to m - 1 do
          let v = Schedule.get grid ~proc:j ~time:t in
          if v <> Schedule.idle then begin
            incr busy;
            if Hashtbl.mem seen v then ok := false;
            Hashtbl.replace seen v ()
          end
        done
      done;
      !ok && !busy = res.Sched.Sim.busy)

let prop_edf_ok_implies_csp_feasible =
  qtest ~count:60 "an exact EDF success implies CSP feasibility"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      let res = Sched.Sim.run ts ~m in
      (not (res.Sched.Sim.ok && res.Sched.Sim.exact))
      ||
      match Csp2.Solver.solve ~budget:(Prelude.Timer.budget ~wall_s:5.0 ()) ts ~m with
      | O.Feasible _, _ -> true
      | (O.Infeasible | O.Limit | O.Memout _), _ -> false)

(* ------------------------------------------------------------------ *)
(* Partitioned                                                          *)

let test_partition_trivial () =
  let ts = Taskset.of_tuples [ (0, 1, 2, 2); (0, 1, 2, 2) ] in
  let res = Sched.Partitioned.partition ts ~m:2 in
  Alcotest.(check bool) "ok" true res.Sched.Partitioned.ok;
  Array.iter (fun p -> Alcotest.(check bool) "assigned" true (p >= 0)) res.Sched.Partitioned.assignment

let test_partition_fails_on_global_only () =
  (* Three tasks of utilization 2/3 each: globally feasible on 2, but any
     partition puts two of them (U = 4/3) on one processor. *)
  let res = Sched.Partitioned.partition Examples.edf_trap ~m:2 in
  Alcotest.(check bool) "partitioning fails" false res.Sched.Partitioned.ok

let test_partition_overload_bin_rejected () =
  (* Regression: a bin with U slightly above 1 must be rejected even though
     no miss shows up within two hyperperiods. *)
  let tasks = [ (0, 3, 6, 6); (0, 2, 4, 4); (0, 1, 3, 12) ] in
  let ts = Taskset.of_tuples tasks in
  let res = Sched.Partitioned.partition ts ~m:1 in
  Alcotest.(check bool) "rejected" false res.Sched.Partitioned.ok

let prop_partition_sound =
  qtest ~count:50 "a successful partition implies CSP feasibility"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      let res = Sched.Partitioned.partition ts ~m in
      (not res.Sched.Partitioned.ok)
      ||
      match Csp2.Solver.solve ~budget:(Prelude.Timer.budget ~wall_s:5.0 ()) ts ~m with
      | O.Feasible _, _ -> true
      | (O.Infeasible | O.Limit | O.Memout _), _ -> false)

let prop_partition_assignment_wellformed =
  qtest ~count:80 "assignments are within range and all-or-nothing on success"
    (Test_util.instance_gen ~nmax:5 ~tmax:4 ())
    (fun (ts, m) ->
      let res = Sched.Partitioned.partition ts ~m in
      Array.for_all (fun p -> p >= -1 && p < m) res.Sched.Partitioned.assignment
      && (not res.Sched.Partitioned.ok
         || Array.for_all (fun p -> p >= 0) res.Sched.Partitioned.assignment))

let test_partition_schedule_grid () =
  let ts = Taskset.of_tuples [ (0, 1, 2, 2); (0, 1, 2, 2) ] in
  match Sched.Partitioned.schedule ts ~m:2 with
  | Some grid ->
    (* Each task stays on its assigned processor. *)
    let { Sched.Partitioned.assignment; _ } = Sched.Partitioned.partition ts ~m:2 in
    let ok = ref true in
    for t = 0 to Schedule.horizon grid - 1 do
      for j = 0 to 1 do
        let v = Schedule.get grid ~proc:j ~time:t in
        if v <> Schedule.idle && assignment.(v) <> j then ok := false
      done
    done;
    Alcotest.(check bool) "no migration" true !ok
  | None -> Alcotest.fail "partition should succeed"

(* ------------------------------------------------------------------ *)
(* Demand bound function                                                *)

let sync ts =
  Taskset.of_tasks
    (List.map
       (fun (t : Task.t) ->
         Task.make ~offset:0 ~wcet:t.wcet ~deadline:t.deadline ~period:t.period ())
       (Array.to_list (Taskset.tasks ts)))

let test_dbf_basics () =
  let ts = Taskset.of_tuples [ (0, 1, 2, 4); (0, 2, 4, 4) ] in
  check Alcotest.int "dbf(1)" 0 (Sched.Dbf.demand ts 1);
  check Alcotest.int "dbf(2)" 1 (Sched.Dbf.demand ts 2);
  check Alcotest.int "dbf(4)" 3 (Sched.Dbf.demand ts 4);
  check Alcotest.int "dbf(8)" 6 (Sched.Dbf.demand ts 8);
  Alcotest.(check (list int)) "check points" [ 2; 4 ] (Sched.Dbf.check_points ts);
  Alcotest.(check bool) "schedulable" true (Sched.Dbf.edf_schedulable ts)

let test_dbf_rejects () =
  let ts = Taskset.of_tuples [ (0, 2, 2, 3); (0, 2, 2, 3) ] in
  Alcotest.(check bool) "two urgent tasks on one core" false (Sched.Dbf.edf_schedulable ts);
  Alcotest.(check bool) "offsets rejected" true
    (try ignore (Sched.Dbf.edf_schedulable (Taskset.of_tuples [ (1, 1, 2, 2) ])); false
     with Invalid_argument _ -> true)

let prop_dbf_agrees_with_simulation =
  qtest ~count:120 "dbf test = adaptive EDF simulation on synchronous systems"
    (Test_util.taskset_gen ~nmax:4 ~tmax:5 ())
    (fun ts ->
      let ts = sync ts in
      let analytic = Sched.Dbf.edf_schedulable ts in
      let sim = Sched.Sim.run ts ~m:1 in
      (not sim.Sched.Sim.exact) || analytic = sim.Sched.Sim.ok)

(* ------------------------------------------------------------------ *)
(* Segments                                                             *)

let test_segments () =
  let s = Schedule.create ~m:2 ~horizon:5 in
  List.iter (fun (p, t, v) -> Schedule.set s ~proc:p ~time:t v)
    [ (0, 0, 1); (0, 1, 1); (0, 3, 0); (1, 2, 1) ];
  let segs = Schedule.segments s in
  check Alcotest.int "three segments" 3 (List.length segs);
  match segs with
  | [ a; b; c ] ->
    Alcotest.(check bool) "first" true
      (a.Schedule.task = 1 && a.Schedule.proc = 0 && a.Schedule.start = 0 && a.Schedule.len = 2);
    Alcotest.(check bool) "second" true
      (b.Schedule.task = 0 && b.Schedule.proc = 0 && b.Schedule.start = 3 && b.Schedule.len = 1);
    Alcotest.(check bool) "third" true
      (c.Schedule.task = 1 && c.Schedule.proc = 1 && c.Schedule.start = 2 && c.Schedule.len = 1)
  | _ -> Alcotest.fail "unexpected shape"

let prop_segments_cover =
  qtest ~count:80 "segments partition exactly the busy cells"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      match Csp2.Solver.solve ~budget:(Prelude.Timer.budget ~wall_s:5.0 ()) ts ~m with
      | O.Feasible sched, _ ->
        let total = List.fold_left (fun acc s -> acc + s.Schedule.len) 0 (Schedule.segments sched) in
        total = Schedule.busy_slots sched
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* Polish                                                               *)

let test_polish_preserves_and_improves () =
  let ts = Examples.running_example in
  match Csp2.Solver.solve ts ~m:2 with
  | O.Feasible sched, _ ->
    let polished = Sched.Polish.minimize_migrations sched in
    Alcotest.(check bool) "still feasible" true (Verify.is_feasible ts polished);
    let before = (Metrics.analyze ts sched).Metrics.migrations in
    let after = (Metrics.analyze ts polished).Metrics.migrations in
    Alcotest.(check bool)
      (Printf.sprintf "migrations %d -> %d" before after)
      true (after <= before)
  | _ -> Alcotest.fail "running example is feasible"

let prop_polish_sound =
  qtest ~count:60 "polishing preserves feasibility and task multisets"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      match Csp2.Solver.solve ~budget:(Prelude.Timer.budget ~wall_s:5.0 ()) ts ~m with
      | O.Feasible sched, _ ->
        let polished = Sched.Polish.minimize_migrations sched in
        Verify.is_feasible ts polished
        && (let ok = ref true in
            for t = 0 to Schedule.horizon sched - 1 do
              if Schedule.tasks_at sched ~time:t <> Schedule.tasks_at polished ~time:t then
                ok := false
            done;
            !ok)
      | _ -> true)

let () =
  Alcotest.run "sched"
    [
      ( "sim",
        [
          Alcotest.test_case "single task" `Quick test_single_task_edf;
          Alcotest.test_case "overload" `Quick test_overload_misses;
          Alcotest.test_case "slow divergence" `Quick test_slow_divergence_detected;
          Alcotest.test_case "EDF trap" `Quick test_edf_trap;
          Alcotest.test_case "offsets" `Quick test_offsets_respected;
          Alcotest.test_case "RM/DM priorities" `Quick test_priorities;
          Alcotest.test_case "FP starvation" `Quick test_fixed_priority_starvation;
          Alcotest.test_case "fixed horizon" `Quick test_fixed_horizon_mode;
          prop_sim_grid_consistent;
          prop_edf_ok_implies_csp_feasible;
        ] );
      ( "partitioned",
        [
          Alcotest.test_case "trivial" `Quick test_partition_trivial;
          Alcotest.test_case "global-only instance" `Quick test_partition_fails_on_global_only;
          Alcotest.test_case "overloaded bin regression" `Quick
            test_partition_overload_bin_rejected;
          Alcotest.test_case "no-migration grid" `Quick test_partition_schedule_grid;
          prop_partition_sound;
          prop_partition_assignment_wellformed;
        ] );
      ( "polish",
        [
          Alcotest.test_case "preserves and improves" `Quick test_polish_preserves_and_improves;
          prop_polish_sound;
        ] );
      ( "dbf",
        [
          Alcotest.test_case "demand values" `Quick test_dbf_basics;
          Alcotest.test_case "rejections" `Quick test_dbf_rejects;
          prop_dbf_agrees_with_simulation;
        ] );
      ( "segments",
        [
          Alcotest.test_case "segment extraction" `Quick test_segments;
          prop_segments_cover;
        ] );
    ]
