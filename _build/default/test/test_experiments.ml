(* Tests for the instance generator (Section VII-A) and the experiment
   harness: campaign invariants, table computations, config parsing. *)

open Rt_model

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Generator                                                            *)

let params = Gen.Generator.default ~n:10 ~m:(Gen.Generator.Fixed_m 5) ~tmax:7

let test_generator_validity () =
  let rng = Prelude.Prng.create ~seed:1 in
  for _ = 1 to 100 do
    let ts, m = Gen.Generator.generate rng params in
    check Alcotest.int "n" 10 (Taskset.size ts);
    check Alcotest.int "m" 5 m;
    Array.iter
      (fun (t : Task.t) ->
        Alcotest.(check bool) "0 < C <= D <= T" true
          (1 <= t.wcet && t.wcet <= t.deadline && t.deadline <= t.period);
        Alcotest.(check bool) "T <= Tmax" true (t.period <= 7);
        Alcotest.(check bool) "O < T" true (0 <= t.offset && t.offset < t.period))
      (Taskset.tasks ts)
  done

let test_generator_determinism () =
  let batch1 = Gen.Generator.batch ~seed:9 ~count:5 params in
  let batch2 = Gen.Generator.batch ~seed:9 ~count:5 params in
  Array.iteri
    (fun i (ts1, m1) ->
      let ts2, m2 = batch2.(i) in
      check Alcotest.int "same m" m1 m2;
      Alcotest.(check string) "same tasks" (Taskset.to_string ts1) (Taskset.to_string ts2))
    batch1

let test_generator_orderings_differ () =
  (* C-first favours large periods, T-first short WCETs (Section VII-A). *)
  let mean_of order field =
    let rng = Prelude.Prng.create ~seed:4 in
    let acc = ref 0 and count = ref 0 in
    for _ = 1 to 200 do
      let ts, _ = Gen.Generator.generate rng { params with Gen.Generator.order } in
      Array.iter
        (fun t ->
          acc := !acc + field t;
          incr count)
        (Taskset.tasks ts)
    done;
    float_of_int !acc /. float_of_int !count
  in
  let period (t : Task.t) = t.period and wcet (t : Task.t) = t.wcet in
  Alcotest.(check bool) "C-first has larger periods than T-first" true
    (mean_of Gen.Generator.C_first period > mean_of Gen.Generator.T_first period);
  Alcotest.(check bool) "T-first has smaller WCETs than C-first" true
    (mean_of Gen.Generator.T_first wcet < mean_of Gen.Generator.C_first wcet)

let test_generator_m_specs () =
  let rng = Prelude.Prng.create ~seed:2 in
  for _ = 1 to 50 do
    let ts, m =
      Gen.Generator.generate rng
        { params with Gen.Generator.m = Gen.Generator.Min_processors }
    in
    check Alcotest.int "m = ceil(U)" (max 1 (Taskset.min_processors ts)) m
  done;
  for _ = 1 to 50 do
    let _, m =
      Gen.Generator.generate rng { params with Gen.Generator.m = Gen.Generator.Uniform_m }
    in
    Alcotest.(check bool) "1 <= m < n" true (1 <= m && m < 10)
  done

let test_generator_synchronous () =
  let rng = Prelude.Prng.create ~seed:3 in
  let ts, _ = Gen.Generator.generate rng { params with Gen.Generator.offsets = false } in
  Array.iter (fun (t : Task.t) -> check Alcotest.int "O = 0" 0 t.offset) (Taskset.tasks ts)

let test_generator_rejects_bad_params () =
  Alcotest.(check bool) "n <= 2" true
    (try
       ignore (Gen.Generator.batch ~seed:1 ~count:1 (Gen.Generator.default ~n:2 ~m:(Gen.Generator.Fixed_m 1) ~tmax:5));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "m >= n" true
    (try
       ignore (Gen.Generator.batch ~seed:1 ~count:1 (Gen.Generator.default ~n:4 ~m:(Gen.Generator.Fixed_m 4) ~tmax:5));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Campaign and tables (small but real run)                             *)

let small_config =
  {
    Experiments.Config.instances = 30;
    limit_s = 0.02;
    seed = 3;
    table4_instances = 5;
    table4_sizes = [ 4; 8 ];
  }

let campaign = lazy (Experiments.Campaign.run small_config)

let test_campaign_consistency () =
  let c = Lazy.force campaign in
  check Alcotest.int "instances" 30 (Array.length c.Experiments.Campaign.instances);
  check Alcotest.int "solver count" 6 (List.length c.Experiments.Campaign.solvers);
  (* A solved instance is never also proved infeasible. *)
  Array.iteri
    (fun i solved ->
      if solved then
        Alcotest.(check bool) "consistency" false c.Experiments.Campaign.proved_infeasible.(i))
    c.Experiments.Campaign.solved_by_any;
  (* The filter agrees with Analysis. *)
  Array.iteri
    (fun i (ts, m) ->
      Alcotest.(check bool) "filter" (Analysis.utilization_exceeds ts ~m)
        c.Experiments.Campaign.filtered.(i))
    c.Experiments.Campaign.instances

let test_table1_totals () =
  let c = Lazy.force campaign in
  match Experiments.Tables.table1 c with
  | [ solved; unsolved ] ->
    check Alcotest.int "classes partition instances" 30
      (solved.Experiments.Tables.total + unsolved.Experiments.Tables.total);
    List.iter
      (fun (_, overruns) ->
        Alcotest.(check bool) "bounded" true
          (overruns >= 0 && overruns <= solved.Experiments.Tables.total))
      solved.Experiments.Tables.per_solver;
    (* Solvers never overrun more often than the class size. *)
    List.iter
      (fun (_, overruns) ->
        Alcotest.(check bool) "bounded" true
          (overruns >= 0 && overruns <= unsolved.Experiments.Tables.total))
      unsolved.Experiments.Tables.per_solver
  | _ -> Alcotest.fail "table1 must have two rows"

let test_table2_refines_table1 () =
  let c = Lazy.force campaign in
  match (Experiments.Tables.table1 c, Experiments.Tables.table2 c) with
  | [ _; unsolved ], ([ filtered; unfiltered ], proved) ->
    check Alcotest.int "filtered + unfiltered = unsolved"
      unsolved.Experiments.Tables.total
      (filtered.Experiments.Tables.total + unfiltered.Experiments.Tables.total);
    List.iteri
      (fun idx (name, overruns) ->
        let fname, fo = List.nth filtered.Experiments.Tables.per_solver idx in
        let uname, uo = List.nth unfiltered.Experiments.Tables.per_solver idx in
        Alcotest.(check string) "same column" name fname;
        Alcotest.(check string) "same column" name uname;
        check Alcotest.int (name ^ " overruns split") overruns (fo + uo))
      unsolved.Experiments.Tables.per_solver;
    Alcotest.(check bool) "proved bounded" true
      (proved >= 0 && proved <= unfiltered.Experiments.Tables.total)
  | _ -> Alcotest.fail "unexpected table shapes"

let test_table3_buckets () =
  let c = Lazy.force campaign in
  let rows = Experiments.Tables.table3 c in
  let total = List.fold_left (fun acc r -> acc + r.Experiments.Tables.count) 0 rows in
  check Alcotest.int "buckets partition instances" 30 total;
  List.iter
    (fun (r : Experiments.Tables.bucket_row) ->
      Alcotest.(check bool) "time bounded by limit" true
        (r.Experiments.Tables.mean_time >= 0.
        && r.Experiments.Tables.mean_time <= small_config.Experiments.Config.limit_s +. 1e-6))
    rows

let test_table4_rows () =
  let rows = Experiments.Tables.table4 small_config in
  check Alcotest.int "two sizes" 2 (List.length rows);
  List.iter
    (fun (r : Experiments.Tables.table4_row) ->
      Alcotest.(check bool) "r sane" true (r.Experiments.Tables.mean_r > 0.);
      Alcotest.(check bool) "m at least lower bound" true (r.Experiments.Tables.mean_m >= 1.);
      let pct = r.Experiments.Tables.csp2_dc.Experiments.Tables.solved_pct in
      Alcotest.(check bool) "solved% in range" true (pct >= 0. && pct <= 100.))
    rows

let test_figure1_mentions_tasks () =
  let fig = Experiments.Tables.figure1 () in
  Alcotest.(check bool) "non-empty" true (String.length fig > 40)

let test_renderers_produce_tables () =
  let c = Lazy.force campaign in
  let t1 = Experiments.Tables.render_table1 (Experiments.Tables.table1 c) in
  let t2 = Experiments.Tables.render_table2 (Experiments.Tables.table2 c) in
  let t3 = Experiments.Tables.render_bucket_rows (Experiments.Tables.table3 c) in
  List.iter
    (fun s -> Alcotest.(check bool) "rendered" true (String.length s > 80))
    [ t1; t2; t3 ]

let test_ablation_rows () =
  let rows = Experiments.Ablation.run { small_config with Experiments.Config.instances = 10 } in
  check Alcotest.int "solver rows" Experiments.Ablation.solver_count (List.length rows);
  List.iter
    (fun r ->
      check Alcotest.int
        (r.Experiments.Ablation.solver ^ " accounts for all instances")
        10
        (r.Experiments.Ablation.solved + r.Experiments.Ablation.infeasible
       + r.Experiments.Ablation.overruns))
    rows

let test_variance_rows () =
  let config = { small_config with Experiments.Config.limit_s = 0.01 } in
  let rows = Experiments.Variance.run ~instances:3 ~seeds:5 config in
  Alcotest.(check bool) "some rows" true (List.length rows > 0);
  List.iter
    (fun r ->
      Alcotest.(check bool) "ordered stats" true
        (r.Experiments.Variance.min_time <= r.Experiments.Variance.median_time
        && r.Experiments.Variance.median_time <= r.Experiments.Variance.max_time);
      Alcotest.(check bool) "overrun bound" true
        (r.Experiments.Variance.overruns >= 0
        && r.Experiments.Variance.overruns < r.Experiments.Variance.seeds))
    rows

let test_config_env () =
  let base = Experiments.Config.default in
  check Alcotest.int "default instances" 500 base.Experiments.Config.instances;
  Alcotest.(check bool) "budget works" true
    (not (Prelude.Timer.exceeded (Experiments.Config.budget base) ~nodes:0))

let () =
  Alcotest.run "experiments"
    [
      ( "generator",
        [
          Alcotest.test_case "validity constraints" `Quick test_generator_validity;
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
          Alcotest.test_case "ordering distributions" `Quick test_generator_orderings_differ;
          Alcotest.test_case "m specifications" `Quick test_generator_m_specs;
          Alcotest.test_case "synchronous option" `Quick test_generator_synchronous;
          Alcotest.test_case "parameter validation" `Quick test_generator_rejects_bad_params;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "consistency" `Quick test_campaign_consistency;
          Alcotest.test_case "table I totals" `Quick test_table1_totals;
          Alcotest.test_case "table II refines table I" `Quick test_table2_refines_table1;
          Alcotest.test_case "table III buckets" `Quick test_table3_buckets;
          Alcotest.test_case "table IV rows" `Quick test_table4_rows;
          Alcotest.test_case "figure 1" `Quick test_figure1_mentions_tasks;
          Alcotest.test_case "renderers" `Quick test_renderers_produce_tables;
          Alcotest.test_case "ablation accounting" `Quick test_ablation_rows;
          Alcotest.test_case "variance rows" `Quick test_variance_rows;
          Alcotest.test_case "config" `Quick test_config_env;
        ] );
    ]
