(* Tests for the CDCL SAT solver, the cardinality encodings and DIMACS
   I/O.  The centrepiece is a randomized cross-check against brute-force
   model counting. *)

module S = Sat.Solver

let check = Alcotest.check
let qtest = Test_util.qtest

(* ------------------------------------------------------------------ *)
(* Literals                                                             *)

let test_literals () =
  let l = S.pos 3 in
  check Alcotest.int "var" 3 (S.var_of_lit l);
  Alcotest.(check bool) "pos" true (S.is_pos l);
  Alcotest.(check bool) "negate" false (S.is_pos (S.negate l));
  check Alcotest.int "negate var" 3 (S.var_of_lit (S.negate l));
  check Alcotest.int "dimacs +4" 3 (S.var_of_lit (S.lit_of_int 4));
  Alcotest.(check bool) "dimacs -4 sign" false (S.is_pos (S.lit_of_int (-4)));
  Alcotest.check_raises "zero" (Invalid_argument "Solver.lit_of_int: zero") (fun () ->
      ignore (S.lit_of_int 0))

(* ------------------------------------------------------------------ *)
(* Small hand cases                                                     *)

let test_empty_formula_sat () =
  let s = S.create () in
  ignore (S.new_var s);
  match fst (S.solve s) with
  | S.Sat model -> check Alcotest.int "one var" 1 (Array.length model)
  | S.Unsat | S.Unknown -> Alcotest.fail "empty formula is SAT"

let test_unit_contradiction () =
  let s = S.create () in
  let v = S.new_var s in
  S.add_clause s [ S.pos v ];
  S.add_clause s [ S.neg v ];
  match fst (S.solve s) with
  | S.Unsat -> ()
  | S.Sat _ | S.Unknown -> Alcotest.fail "x ∧ ¬x is UNSAT"

let test_empty_clause () =
  let s = S.create () in
  ignore (S.new_var s);
  S.add_clause s [];
  match fst (S.solve s) with
  | S.Unsat -> ()
  | S.Sat _ | S.Unknown -> Alcotest.fail "empty clause is UNSAT"

let test_tautology_dropped () =
  let s = S.create () in
  let v = S.new_var s in
  S.add_clause s [ S.pos v; S.neg v ];
  match fst (S.solve s) with
  | S.Sat _ -> ()
  | S.Unsat | S.Unknown -> Alcotest.fail "a tautology constrains nothing"

let test_implication_chain () =
  (* x0 ∧ (x0→x1) ∧ ... ∧ (x_{k-1}→x_k): all forced true. *)
  let s = S.create () in
  let k = 30 in
  let vs = Array.init (k + 1) (fun _ -> S.new_var s) in
  S.add_clause s [ S.pos vs.(0) ];
  for i = 0 to k - 1 do
    S.add_clause s [ S.neg vs.(i); S.pos vs.(i + 1) ]
  done;
  match fst (S.solve s) with
  | S.Sat model -> Alcotest.(check bool) "all true" true (Array.for_all Fun.id model)
  | S.Unsat | S.Unknown -> Alcotest.fail "chain is SAT"

let php ~pigeons ~holes =
  let s = S.create () in
  let p = Array.init pigeons (fun _ -> Array.init holes (fun _ -> S.new_var s)) in
  for i = 0 to pigeons - 1 do
    S.add_clause s (List.init holes (fun j -> S.pos p.(i).(j)))
  done;
  for j = 0 to holes - 1 do
    Sat.Cardinality.at_most s ~k:1 (List.init pigeons (fun i -> S.pos p.(i).(j)))
  done;
  s

let test_pigeonhole () =
  (match fst (S.solve (php ~pigeons:5 ~holes:4)) with
  | S.Unsat -> ()
  | S.Sat _ | S.Unknown -> Alcotest.fail "PHP(5,4) is UNSAT");
  (match fst (S.solve (php ~pigeons:6 ~holes:5)) with
  | S.Unsat -> ()
  | S.Sat _ | S.Unknown -> Alcotest.fail "PHP(6,5) is UNSAT");
  match fst (S.solve (php ~pigeons:4 ~holes:4)) with
  | S.Sat _ -> ()
  | S.Unsat | S.Unknown -> Alcotest.fail "PHP(4,4) is SAT"

let test_budget_unknown () =
  let s = php ~pigeons:9 ~holes:8 in
  match fst (S.solve ~budget:(Prelude.Timer.budget ~nodes:3 ()) s) with
  | S.Unknown -> ()
  | S.Sat _ -> Alcotest.fail "PHP(9,8) is not SAT"
  | S.Unsat -> Alcotest.fail "3 conflicts cannot refute PHP(9,8)"

(* ------------------------------------------------------------------ *)
(* Randomized cross-check vs brute force                                *)

let eval_clause model clause =
  List.exists
    (fun l ->
      let v = abs l - 1 in
      if l > 0 then model land (1 lsl v) <> 0 else model land (1 lsl v) = 0)
    clause

let brute_sat nv clauses =
  let rec go m = m < 1 lsl nv && (List.for_all (eval_clause m) clauses || go (m + 1)) in
  go 0

let cnf_gen =
  let open QCheck2.Gen in
  int_range 1 7 >>= fun nv ->
  let lit = int_range 1 nv >>= fun v -> bool >>= fun s -> return (if s then v else -v) in
  let clause = list_size (int_range 1 3) lit in
  list_size (int_range 1 25) clause >>= fun clauses -> return (nv, clauses)

let prop_agrees_with_brute_force =
  qtest ~count:300 "CDCL agrees with brute force on random CNF" cnf_gen
    (fun (nv, clauses) ->
      let s = S.create () in
      Sat.Dimacs.load s { Sat.Dimacs.num_vars = nv; clauses };
      match fst (S.solve s) with
      | S.Sat model ->
        (* The model must actually satisfy the formula. *)
        List.for_all
          (fun clause ->
            List.exists
              (fun l -> if l > 0 then model.(l - 1) else not model.(abs l - 1))
              clause)
          clauses
      | S.Unsat -> not (brute_sat nv clauses)
      | S.Unknown -> false)

let prop_seeds_agree =
  qtest ~count:100 "verdict independent of the seed" cnf_gen
    (fun (nv, clauses) ->
      let solve seed =
        let s = S.create () in
        Sat.Dimacs.load s { Sat.Dimacs.num_vars = nv; clauses };
        match fst (S.solve ~seed s) with
        | S.Sat _ -> true
        | S.Unsat -> false
        | S.Unknown -> failwith "unexpected budget stop"
      in
      solve 1 = solve 99)

(* ------------------------------------------------------------------ *)
(* Cardinality encodings                                                *)

(* Count models of the encoded constraint projected on the original
   variables by repeatedly solving with blocking clauses. *)
let count_projected_models build n =
  let s = S.create () in
  let xs = List.init n (fun _ -> S.new_var s) in
  build s xs;
  (* Enumerate by decision: try all 2^n assignments via assumptions is not
     supported, so brute force each candidate with a fresh solver. *)
  let count = ref 0 in
  for m = 0 to (1 lsl n) - 1 do
    let s = S.create () in
    let xs = List.init n (fun _ -> S.new_var s) in
    build s xs;
    List.iteri
      (fun i v -> S.add_clause s [ (if m land (1 lsl i) <> 0 then S.pos v else S.neg v) ])
      xs;
    match fst (S.solve s) with
    | S.Sat _ -> incr count
    | S.Unsat -> ()
    | S.Unknown -> failwith "unexpected"
  done;
  !count

let binomial n k = Prelude.Combi.count ~n ~k

let test_at_most_counts () =
  List.iter
    (fun (n, k) ->
      let expected = List.fold_left (fun acc i -> acc + binomial n i) 0 (List.init (k + 1) Fun.id) in
      let got =
        count_projected_models
          (fun s xs -> Sat.Cardinality.at_most s ~k (List.map S.pos xs))
          n
      in
      check Alcotest.int (Printf.sprintf "at_most %d of %d" k n) expected got)
    [ (4, 1); (4, 2); (5, 3); (6, 1) ]

let test_at_least_counts () =
  List.iter
    (fun (n, k) ->
      let expected =
        List.fold_left (fun acc i -> acc + (if i >= k then binomial n i else 0)) 0
          (List.init (n + 1) Fun.id)
      in
      let got =
        count_projected_models
          (fun s xs -> Sat.Cardinality.at_least s ~k (List.map S.pos xs))
          n
      in
      check Alcotest.int (Printf.sprintf "at_least %d of %d" k n) expected got)
    [ (4, 2); (5, 4); (5, 1) ]

let test_exactly_counts () =
  List.iter
    (fun (n, k) ->
      let got =
        count_projected_models
          (fun s xs -> Sat.Cardinality.exactly s ~k (List.map S.pos xs))
          n
      in
      check Alcotest.int (Printf.sprintf "exactly %d of %d" k n) (binomial n k) got)
    [ (4, 0); (4, 2); (5, 3); (6, 6); (5, 5) ]

let test_at_least_more_than_n () =
  let s = S.create () in
  let xs = List.init 3 (fun _ -> S.new_var s) in
  Sat.Cardinality.at_least s ~k:4 (List.map S.pos xs);
  match fst (S.solve s) with
  | S.Unsat -> ()
  | S.Sat _ | S.Unknown -> Alcotest.fail "at_least 4 of 3 is UNSAT"

(* ------------------------------------------------------------------ *)
(* DIMACS                                                               *)

let test_dimacs_roundtrip () =
  let cnf = { Sat.Dimacs.num_vars = 3; clauses = [ [ 1; -2 ]; [ 2; 3 ]; [ -1 ] ] } in
  let parsed = Sat.Dimacs.of_string (Sat.Dimacs.to_string cnf) in
  check Alcotest.int "vars" 3 parsed.Sat.Dimacs.num_vars;
  Alcotest.(check (list (list int))) "clauses" cnf.Sat.Dimacs.clauses parsed.Sat.Dimacs.clauses

let test_dimacs_comments () =
  let text = "c a comment\np cnf 2 2\n1 2 0\nc mid comment\n-1 -2 0\n" in
  let parsed = Sat.Dimacs.of_string text in
  check Alcotest.int "clauses" 2 (List.length parsed.Sat.Dimacs.clauses)

let test_dimacs_export () =
  let s = S.create () in
  let a = S.new_var s and b = S.new_var s in
  S.add_clause s [ S.pos a; S.neg b ];
  S.add_clause s [ S.pos b ];
  let clauses = S.export_clauses s in
  (* The unit clause lands on the trail, the binary one in the store. *)
  Alcotest.(check bool) "has unit" true (List.mem [ 2 ] clauses);
  Alcotest.(check bool) "has binary" true
    (List.exists (fun c -> List.sort compare c = [ -2; 1 ]) clauses)

let () =
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "literal encoding" `Quick test_literals;
          Alcotest.test_case "empty formula" `Quick test_empty_formula_sat;
          Alcotest.test_case "unit contradiction" `Quick test_unit_contradiction;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "tautology" `Quick test_tautology_dropped;
          Alcotest.test_case "implication chain" `Quick test_implication_chain;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
          Alcotest.test_case "budget -> unknown" `Quick test_budget_unknown;
          prop_agrees_with_brute_force;
          prop_seeds_agree;
        ] );
      ( "cardinality",
        [
          Alcotest.test_case "at_most model counts" `Quick test_at_most_counts;
          Alcotest.test_case "at_least model counts" `Quick test_at_least_counts;
          Alcotest.test_case "exactly model counts" `Quick test_exactly_counts;
          Alcotest.test_case "at_least > n" `Quick test_at_least_more_than_n;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "comments" `Quick test_dimacs_comments;
          Alcotest.test_case "export" `Quick test_dimacs_export;
        ] );
    ]
