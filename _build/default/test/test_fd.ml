(* Tests for the generic finite-domain solver: engine mechanics (domains,
   trail, propagation), each constraint against brute-force solution
   counts, and the search strategies on classic CSPs. *)

module E = Fd.Engine
module C = Fd.Constraints
module S = Fd.Search

let check = Alcotest.check
let qtest = Test_util.qtest

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)

let test_domain_ops () =
  let eng = E.create () in
  let v = E.new_var eng ~lo:(-2) ~hi:5 () in
  check Alcotest.int "size" 8 (E.size v);
  check Alcotest.int "min" (-2) (E.vmin v);
  check Alcotest.int "max" 5 (E.vmax v);
  Alcotest.(check bool) "mem -2" true (E.mem v (-2));
  Alcotest.(check bool) "mem 6" false (E.mem v 6);
  Alcotest.(check bool) "remove ok" true (E.remove eng v 0);
  Alcotest.(check bool) "mem 0 gone" false (E.mem v 0);
  Alcotest.(check bool) "remove_below" true (E.remove_below eng v 1);
  check Alcotest.int "new min" 1 (E.vmin v);
  Alcotest.(check bool) "remove_above" true (E.remove_above eng v 3);
  check Alcotest.int "new max" 3 (E.vmax v);
  Alcotest.(check (list int)) "values" [ 1; 2; 3 ] (E.values v);
  Alcotest.(check bool) "assign" true (E.assign eng v 2);
  Alcotest.(check (option int)) "value" (Some 2) (E.value v)

let test_domain_wipeout () =
  let eng = E.create () in
  let v = E.new_var eng ~lo:0 ~hi:1 () in
  Alcotest.(check bool) "remove 0" true (E.remove eng v 0);
  Alcotest.(check bool) "remove 1 fails" false (E.remove eng v 1);
  Alcotest.(check bool) "engine failed" true (E.failed eng)

let test_new_var_of () =
  let eng = E.create () in
  let v = E.new_var_of eng [ -1; 2; 7 ] in
  check Alcotest.int "size" 3 (E.size v);
  Alcotest.(check bool) "mem -1" true (E.mem v (-1));
  Alcotest.(check bool) "no 0" false (E.mem v 0);
  Alcotest.(check bool) "mem 7" true (E.mem v 7)

let test_trail_restores () =
  let eng = E.create () in
  let v = E.new_var eng ~lo:0 ~hi:9 () in
  let w = E.new_var eng ~lo:0 ~hi:9 () in
  E.push_level eng;
  ignore (E.remove eng v 3);
  ignore (E.assign eng w 5);
  E.push_level eng;
  ignore (E.remove_below eng v 7);
  check Alcotest.int "deep min" 7 (E.vmin v);
  E.backtrack eng;
  check Alcotest.int "level-1 min" 0 (E.vmin v);
  Alcotest.(check bool) "still no 3" false (E.mem v 3);
  Alcotest.(check (option int)) "w still assigned" (Some 5) (E.value w);
  E.backtrack eng;
  Alcotest.(check bool) "3 back" true (E.mem v 3);
  Alcotest.(check bool) "w free" false (E.is_assigned w);
  Alcotest.check_raises "root backtrack" (Invalid_argument "Engine.backtrack: at root level")
    (fun () -> E.backtrack eng)

let test_var_budget () =
  let eng = E.create ~var_budget:2 () in
  ignore (E.new_var eng ~lo:0 ~hi:1 ());
  ignore (E.new_var eng ~lo:0 ~hi:1 ());
  Alcotest.(check bool) "third raises" true
    (try
       ignore (E.new_var eng ~lo:0 ~hi:1 ());
       false
     with E.Too_large _ -> true)

let test_propagation_chain () =
  (* x <= y <= z with z assigned low: chain reaction fixes everything. *)
  let eng = E.create () in
  let x = E.new_var eng ~lo:0 ~hi:5 () in
  let y = E.new_var eng ~lo:0 ~hi:5 () in
  let z = E.new_var eng ~lo:0 ~hi:5 () in
  Alcotest.(check bool) "post xy" true (C.leq eng x y);
  Alcotest.(check bool) "post yz" true (C.leq eng y z);
  Alcotest.(check bool) "assign z" true (E.assign eng z 0);
  Alcotest.(check bool) "propagate" true (E.propagate eng);
  Alcotest.(check (option int)) "x forced" (Some 0) (E.value x);
  Alcotest.(check (option int)) "y forced" (Some 0) (E.value y)

(* ------------------------------------------------------------------ *)
(* Constraints: each checked by exhaustive solution counting.           *)

(* Brute-force count over explicit domains. *)
let brute_count domains pred =
  let rec go acc assignment = function
    | [] -> if pred (List.rev assignment) then acc + 1 else acc
    | dom :: rest ->
      List.fold_left (fun acc v -> go acc (v :: assignment) rest) acc dom
  in
  go 0 [] domains

let test_bool_sum_le () =
  let eng = E.create () in
  let xs = Array.init 4 (fun _ -> E.new_var eng ~lo:0 ~hi:1 ()) in
  Alcotest.(check bool) "post" true (C.bool_sum_le eng xs 2);
  let expected =
    brute_count [ [0;1]; [0;1]; [0;1]; [0;1] ] (fun vs -> List.fold_left ( + ) 0 vs <= 2)
  in
  check Alcotest.int "counts" expected (S.count_solutions eng)

let test_bool_sum_eq () =
  let eng = E.create () in
  let xs = Array.init 5 (fun _ -> E.new_var eng ~lo:0 ~hi:1 ()) in
  Alcotest.(check bool) "post" true (C.bool_sum_eq eng xs 3);
  check Alcotest.int "C(5,3)" 10 (S.count_solutions eng)

let test_bool_sum_eq_impossible () =
  let eng = E.create () in
  let xs = Array.init 3 (fun _ -> E.new_var eng ~lo:0 ~hi:1 ()) in
  Alcotest.(check bool) "post fails" false (C.bool_sum_eq eng xs 4)

let test_linear_le () =
  let eng = E.create () in
  let x = E.new_var eng ~lo:0 ~hi:4 () in
  let y = E.new_var eng ~lo:0 ~hi:4 () in
  Alcotest.(check bool) "post" true (C.linear_le eng ~coeffs:[| 2; 3 |] [| x; y |] 10);
  let expected =
    brute_count [ [0;1;2;3;4]; [0;1;2;3;4] ] (function [ a; b ] -> (2*a) + (3*b) <= 10 | _ -> false)
  in
  check Alcotest.int "counts" expected (S.count_solutions eng)

let test_linear_le_negative_coeffs () =
  let eng = E.create () in
  let x = E.new_var eng ~lo:0 ~hi:4 () in
  let y = E.new_var eng ~lo:0 ~hi:4 () in
  (* x - y <= -2, i.e. y >= x + 2 *)
  Alcotest.(check bool) "post" true (C.linear_le eng ~coeffs:[| 1; -1 |] [| x; y |] (-2));
  let expected =
    brute_count [ [0;1;2;3;4]; [0;1;2;3;4] ] (function [ a; b ] -> a - b <= -2 | _ -> false)
  in
  check Alcotest.int "counts" expected (S.count_solutions eng)

let test_linear_eq () =
  let eng = E.create () in
  let x = E.new_var eng ~lo:0 ~hi:6 () in
  let y = E.new_var eng ~lo:0 ~hi:6 () in
  let z = E.new_var eng ~lo:0 ~hi:6 () in
  Alcotest.(check bool) "post" true (C.linear_eq eng ~coeffs:[| 1; 2; 1 |] [| x; y; z |] 6);
  let dom = [0;1;2;3;4;5;6] in
  let expected =
    brute_count [ dom; dom; dom ] (function [ a; b; c ] -> a + (2*b) + c = 6 | _ -> false)
  in
  check Alcotest.int "counts" expected (S.count_solutions eng)

let test_count_eq () =
  let eng = E.create () in
  let xs = Array.init 4 (fun _ -> E.new_var eng ~lo:(-1) ~hi:2 ()) in
  Alcotest.(check bool) "post" true (C.count_eq eng xs ~value:0 2);
  let dom = [ -1; 0; 1; 2 ] in
  let expected =
    brute_count [ dom; dom; dom; dom ]
      (fun vs -> List.length (List.filter (fun v -> v = 0) vs) = 2)
  in
  check Alcotest.int "counts" expected (S.count_solutions eng)

let test_count_weighted_eq () =
  let eng = E.create () in
  let xs = Array.init 3 (fun _ -> E.new_var eng ~lo:0 ~hi:1 ()) in
  (* weights 2,1,3 on value 1; want total 3: {x0,x1} or {x2}. *)
  Alcotest.(check bool) "post" true
    (C.count_weighted_eq eng xs ~value:1 ~weights:[| 2; 1; 3 |] 3);
  let expected =
    brute_count [ [0;1]; [0;1]; [0;1] ]
      (function
        | [ a; b; c ] -> (2*a) + b + (3*c) = 3
        | _ -> false)
  in
  check Alcotest.int "counts" expected (S.count_solutions eng)

let test_neq_leq () =
  let eng = E.create () in
  let x = E.new_var eng ~lo:0 ~hi:3 () in
  let y = E.new_var eng ~lo:0 ~hi:3 () in
  Alcotest.(check bool) "neq" true (C.neq eng x y);
  Alcotest.(check bool) "leq" true (C.leq eng x y);
  let dom = [0;1;2;3] in
  let expected = brute_count [ dom; dom ] (function [ a; b ] -> a <> b && a <= b | _ -> false) in
  check Alcotest.int "counts" expected (S.count_solutions eng)

let test_alldiff_except () =
  let eng = E.create () in
  let xs = Array.init 3 (fun _ -> E.new_var eng ~lo:(-1) ~hi:1 ()) in
  Alcotest.(check bool) "post" true (C.alldiff_except eng xs ~except:(-1));
  let dom = [ -1; 0; 1 ] in
  let expected =
    brute_count [ dom; dom; dom ]
      (fun vs ->
        let non_idle = List.filter (fun v -> v <> -1) vs in
        List.length non_idle = List.length (List.sort_uniq compare non_idle))
  in
  check Alcotest.int "counts" expected (S.count_solutions eng)

let test_clause () =
  let eng = E.create () in
  let a = E.new_var eng ~lo:0 ~hi:1 () in
  let b = E.new_var eng ~lo:0 ~hi:1 () in
  let c = E.new_var eng ~lo:0 ~hi:1 () in
  (* (a ∨ ¬b ∨ c) *)
  Alcotest.(check bool) "post" true (C.clause eng ~pos:[ a; c ] ~neg:[ b ]);
  let expected =
    brute_count [ [0;1]; [0;1]; [0;1] ]
      (function [ x; y; z ] -> x = 1 || y = 0 || z = 1 | _ -> false)
  in
  check Alcotest.int "counts" expected (S.count_solutions eng)

let test_clause_unit_propagation () =
  let eng = E.create () in
  let a = E.new_var eng ~lo:0 ~hi:1 () in
  let b = E.new_var eng ~lo:0 ~hi:1 () in
  Alcotest.(check bool) "post" true (C.clause eng ~pos:[ a ] ~neg:[ b ]);
  Alcotest.(check bool) "assign b" true (E.assign eng b 1);
  Alcotest.(check bool) "propagate" true (E.propagate eng);
  Alcotest.(check (option int)) "a forced true" (Some 1) (E.value a)

(* ------------------------------------------------------------------ *)
(* Search                                                               *)

let queens_model n =
  let eng = E.create () in
  let qs = Array.init n (fun i -> E.new_var eng ~name:(Printf.sprintf "q%d" i) ~lo:0 ~hi:(n - 1) ()) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      ignore (C.neq eng qs.(i) qs.(j));
      let d = j - i in
      ignore
        (E.post eng ~name:"diag" ~wake:[ qs.(i); qs.(j) ] ~propagate:(fun () ->
             match (E.value qs.(i), E.value qs.(j)) with
             | Some a, Some b -> a - b <> d && b - a <> d
             | Some a, None -> E.remove eng qs.(j) (a + d) && E.remove eng qs.(j) (a - d)
             | None, Some b -> E.remove eng qs.(i) (b + d) && E.remove eng qs.(i) (b - d)
             | None, None -> true))
    done
  done;
  eng

let test_queens_counts () =
  List.iter
    (fun (n, solutions) ->
      check Alcotest.int (Printf.sprintf "%d-queens" n) solutions
        (S.count_solutions (queens_model n)))
    [ (4, 2); (5, 10); (6, 4); (7, 40) ]

let test_queens_all_heuristics () =
  List.iter
    (fun vh ->
      List.iter
        (fun valh ->
          let result = S.solve ~var_heuristic:vh ~value_heuristic:valh ~seed:3 (queens_model 6) in
          match result.S.outcome with
          | S.Sat _ -> ()
          | S.Unsat | S.Limit -> Alcotest.fail "6-queens is satisfiable")
        [ S.Min_value; S.Max_value; S.Random_value ])
    [ S.Input_order; S.Min_dom; S.Min_dom_random; S.Random_var ]

let test_dom_wdeg_weights_accumulate () =
  (* Failing propagators bump their scope's weights; weights survive
     backtracking. *)
  let eng = E.create () in
  let x = E.new_var eng ~lo:0 ~hi:2 () in
  let y = E.new_var eng ~lo:0 ~hi:2 () in
  let z = E.new_var eng ~lo:0 ~hi:2 () in
  ignore (C.neq eng x y);
  ignore (C.neq eng y z);
  ignore (C.neq eng x z);
  let before = E.weight y in
  (match (S.solve ~var_heuristic:S.Dom_over_wdeg ~value_heuristic:S.Min_value eng).S.outcome with
  | S.Sat valuation ->
    Alcotest.(check bool) "valid coloring" true
      (valuation x <> valuation y && valuation y <> valuation z && valuation x <> valuation z)
  | S.Unsat | S.Limit -> Alcotest.fail "3-coloring of a triangle with 3 colors is SAT");
  Alcotest.(check bool) "weights never decrease" true (E.weight y >= before)

let test_dom_wdeg_solves_and_refutes () =
  (match (S.solve ~var_heuristic:S.Dom_over_wdeg (queens_model 6)).S.outcome with
  | S.Sat _ -> ()
  | S.Unsat | S.Limit -> Alcotest.fail "6-queens SAT under dom/wdeg");
  let eng = E.create () in
  let ps = Array.init 5 (fun _ -> E.new_var eng ~lo:0 ~hi:3 ()) in
  for i = 0 to 4 do
    for j = i + 1 to 4 do
      ignore (C.neq eng ps.(i) ps.(j))
    done
  done;
  match (S.solve ~var_heuristic:S.Dom_over_wdeg eng).S.outcome with
  | S.Unsat -> ()
  | S.Sat _ | S.Limit -> Alcotest.fail "PHP(5,4) UNSAT under dom/wdeg"

let test_pigeonhole_unsat () =
  let eng = E.create () in
  let ps = Array.init 5 (fun _ -> E.new_var eng ~lo:0 ~hi:3 ()) in
  for i = 0 to 4 do
    for j = i + 1 to 4 do
      ignore (C.neq eng ps.(i) ps.(j))
    done
  done;
  match (S.solve eng).S.outcome with
  | S.Unsat -> ()
  | S.Sat _ | S.Limit -> Alcotest.fail "PHP(5,4) must be UNSAT"

let test_budget_limit () =
  let eng = queens_model 10 in
  let result = S.solve ~budget:(Prelude.Timer.budget ~nodes:5 ()) eng in
  match result.S.outcome with
  | S.Limit -> Alcotest.(check bool) "few nodes" true (result.S.stats.S.nodes <= 1024 + 5)
  | S.Sat _ | S.Unsat -> Alcotest.fail "expected a budget stop"

let test_restarts_complete_on_sat () =
  let result = S.solve ~restarts:true ~seed:1 (queens_model 7) in
  match result.S.outcome with
  | S.Sat _ -> ()
  | S.Unsat | S.Limit -> Alcotest.fail "7-queens with restarts must solve"

let test_ordered_value_heuristic () =
  let eng = E.create () in
  let x = E.new_var eng ~lo:0 ~hi:5 () in
  let preferred = [ 4; 2 ] in
  let result = S.solve ~value_heuristic:(S.Ordered (fun _ -> preferred)) eng in
  match result.S.outcome with
  | S.Sat valuation -> check Alcotest.int "first preferred wins" 4 (valuation x)
  | S.Unsat | S.Limit -> Alcotest.fail "trivially satisfiable"

let test_solution_extraction_stable () =
  let eng = E.create () in
  let x = E.new_var eng ~lo:0 ~hi:2 () in
  let y = E.new_var eng ~lo:0 ~hi:2 () in
  ignore (C.neq eng x y);
  match (S.solve ~value_heuristic:S.Min_value eng).S.outcome with
  | S.Sat valuation ->
    Alcotest.(check bool) "valid" true (valuation x <> valuation y)
  | S.Unsat | S.Limit -> Alcotest.fail "satisfiable"

let prop_random_binary_csp_agrees_with_brute_force =
  (* Random binary CSPs over 3 vars with domain {0..3}: compare the solver's
     solution count with brute force. *)
  let open QCheck2.Gen in
  let forbidden_pair = pair (int_range 0 3) (int_range 0 3) in
  let constraint_gen =
    pair (pair (int_range 0 2) (int_range 0 2)) (list_size (int_range 0 6) forbidden_pair)
  in
  qtest ~count:150 "random binary CSP counts match brute force"
    (list_size (int_range 0 5) constraint_gen)
    (fun constraints ->
      let eng = E.create () in
      let vars = Array.init 3 (fun _ -> E.new_var eng ~lo:0 ~hi:3 ()) in
      List.iter
        (fun ((i, j), forbidden) ->
          if i <> j then
            ignore
              (E.post eng ~name:"table" ~wake:[ vars.(i); vars.(j) ]
                 ~propagate:(fun () ->
                   match (E.value vars.(i), E.value vars.(j)) with
                   | Some a, Some b -> not (List.mem (a, b) forbidden)
                   | _ -> true)))
        constraints;
      let dom = [ 0; 1; 2; 3 ] in
      let expected =
        brute_count [ dom; dom; dom ]
          (fun vs ->
            let arr = Array.of_list vs in
            List.for_all
              (fun ((i, j), forbidden) -> i = j || not (List.mem (arr.(i), arr.(j)) forbidden))
              constraints)
      in
      S.count_solutions eng = expected)

let () =
  Alcotest.run "fd"
    [
      ( "engine",
        [
          Alcotest.test_case "domain operations" `Quick test_domain_ops;
          Alcotest.test_case "wipeout fails" `Quick test_domain_wipeout;
          Alcotest.test_case "sparse domains" `Quick test_new_var_of;
          Alcotest.test_case "trail restores" `Quick test_trail_restores;
          Alcotest.test_case "variable budget" `Quick test_var_budget;
          Alcotest.test_case "propagation chain" `Quick test_propagation_chain;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "bool_sum_le" `Quick test_bool_sum_le;
          Alcotest.test_case "bool_sum_eq" `Quick test_bool_sum_eq;
          Alcotest.test_case "bool_sum_eq impossible" `Quick test_bool_sum_eq_impossible;
          Alcotest.test_case "linear_le" `Quick test_linear_le;
          Alcotest.test_case "linear_le negative coeffs" `Quick test_linear_le_negative_coeffs;
          Alcotest.test_case "linear_eq" `Quick test_linear_eq;
          Alcotest.test_case "count_eq" `Quick test_count_eq;
          Alcotest.test_case "count_weighted_eq" `Quick test_count_weighted_eq;
          Alcotest.test_case "neq + leq" `Quick test_neq_leq;
          Alcotest.test_case "alldiff_except" `Quick test_alldiff_except;
          Alcotest.test_case "clause" `Quick test_clause;
          Alcotest.test_case "clause unit propagation" `Quick test_clause_unit_propagation;
        ] );
      ( "search",
        [
          Alcotest.test_case "n-queens counts" `Quick test_queens_counts;
          Alcotest.test_case "all heuristics solve" `Quick test_queens_all_heuristics;
          Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
          Alcotest.test_case "dom/wdeg weights" `Quick test_dom_wdeg_weights_accumulate;
          Alcotest.test_case "dom/wdeg solves and refutes" `Quick test_dom_wdeg_solves_and_refutes;
          Alcotest.test_case "budget limit" `Quick test_budget_limit;
          Alcotest.test_case "restarts still solve" `Quick test_restarts_complete_on_sat;
          Alcotest.test_case "ordered value heuristic" `Quick test_ordered_value_heuristic;
          Alcotest.test_case "extraction" `Quick test_solution_extraction_stable;
          prop_random_binary_csp_agrees_with_brute_force;
        ] );
    ]
