(* Tests for the future-work extensions: min-conflicts local search and
   the feasible-priority-assignment search. *)

open Rt_model
module O = Encodings.Outcome

let check = Alcotest.check
let qtest = Test_util.qtest

let running = Examples.running_example

(* ------------------------------------------------------------------ *)
(* Local search                                                         *)

let test_ls_running_example () =
  match Localsearch.Min_conflicts.solve running ~m:2 with
  | O.Feasible sched, stats ->
    Alcotest.(check bool) "verified" true (Verify.is_feasible running sched);
    check Alcotest.int "cost 0" 0 stats.Localsearch.Min_conflicts.best_cost
  | (O.Infeasible | O.Limit | O.Memout _), _ -> Alcotest.fail "local search should solve it"

let test_ls_never_proves_infeasibility () =
  (* m=1 is infeasible: local search must stop at Limit, never Infeasible. *)
  match
    Localsearch.Min_conflicts.solve ~budget:(Prelude.Timer.budget ~nodes:20_000 ()) running ~m:1
  with
  | O.Limit, stats ->
    Alcotest.(check bool) "cost stayed positive" true
      (stats.Localsearch.Min_conflicts.best_cost > 0)
  | O.Infeasible, _ -> Alcotest.fail "local search cannot prove infeasibility"
  | O.Feasible _, _ -> Alcotest.fail "m=1 has no schedule"
  | O.Memout _, _ -> Alcotest.fail "unexpected memout"

let test_ls_seed_determinism () =
  let run seed =
    match Localsearch.Min_conflicts.solve ~seed running ~m:2 with
    | O.Feasible _, stats -> stats.Localsearch.Min_conflicts.iterations
    | _ -> Alcotest.fail "feasible"
  in
  check Alcotest.int "same iterations for same seed" (run 7) (run 7)

let prop_ls_solves_feasible_instances =
  qtest ~count:40 "local search finds verified schedules on CSP-feasible instances"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      match Csp2.Solver.solve ~budget:(Prelude.Timer.budget ~wall_s:5.0 ()) ts ~m with
      | O.Feasible _, _ -> (
        match
          Localsearch.Min_conflicts.solve ~budget:(Prelude.Timer.budget ~nodes:400_000 ()) ts ~m
        with
        | O.Feasible sched, _ -> Verify.is_feasible ts sched
        | O.Limit, _ -> true (* incomplete method: allowed to give up *)
        | (O.Infeasible | O.Memout _), _ -> false)
      | (O.Infeasible | O.Limit | O.Memout _), _ -> true)

let prop_ls_never_infeasible =
  qtest ~count:40 "local search verdicts are Feasible or Limit only"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      match
        Localsearch.Min_conflicts.solve ~budget:(Prelude.Timer.budget ~nodes:5_000 ()) ts ~m
      with
      | O.Feasible sched, _ -> Verify.is_feasible ts sched
      | O.Limit, _ -> true
      | (O.Infeasible | O.Memout _), _ -> false)

(* ------------------------------------------------------------------ *)
(* Priority assignment                                                  *)

let test_priority_dc_seed () =
  let ranks = Priority.Assignment.dc_first running in
  (* D−C: τ3 (0) < τ1 (1) = τ2 (1, tie by id). *)
  check Alcotest.int "τ3 highest" 0 ranks.(2);
  check Alcotest.int "τ1 next" 1 ranks.(0);
  check Alcotest.int "τ2 last" 2 ranks.(1)

let test_priority_found_simulates_ok () =
  (* A comfortable instance: any found assignment must pass simulation. *)
  let ts = Taskset.of_tuples [ (0, 1, 3, 3); (0, 1, 4, 4); (0, 1, 6, 6) ] in
  match Priority.Assignment.search ts ~m:2 with
  | Priority.Assignment.Found ranks, _ ->
    let res = Sched.Sim.run ts ~m:2 ~policy:(Sched.Sim.Fixed_priority ranks) in
    Alcotest.(check bool) "assignment works" true (res.Sched.Sim.ok && res.Sched.Sim.exact)
  | Priority.Assignment.Not_found, _ -> Alcotest.fail "trivially schedulable"
  | Priority.Assignment.Limit, _ -> Alcotest.fail "unexpected limit"

let test_priority_trap_not_found () =
  (* The EDF trap has no working fixed-priority order on 2 processors. *)
  match Priority.Assignment.search Examples.edf_trap ~m:2 with
  | Priority.Assignment.Not_found, stats ->
    Alcotest.(check bool) "searched some orders" true
      (stats.Priority.Assignment.candidates > 0)
  | Priority.Assignment.Found _, _ -> Alcotest.fail "no FP order works for the trap"
  | Priority.Assignment.Limit, _ -> Alcotest.fail "unexpected limit"

let test_priority_budget () =
  match
    Priority.Assignment.search ~budget:(Prelude.Timer.budget ~nodes:1 ())
      (Taskset.of_tuples [ (0, 2, 2, 2); (0, 2, 2, 2); (0, 2, 2, 2) ])
      ~m:1
  with
  | Priority.Assignment.Limit, _ -> ()
  | (Priority.Assignment.Found _ | Priority.Assignment.Not_found), _ ->
    Alcotest.fail "one simulation cannot finish this search"

let prop_priority_found_implies_feasible =
  qtest ~count:40 "Found assignments simulate cleanly and imply CSP feasibility"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      match
        Priority.Assignment.search ~budget:(Prelude.Timer.budget ~nodes:2_000 ()) ts ~m
      with
      | Priority.Assignment.Found ranks, _ ->
        let sim = Sched.Sim.run ts ~m ~policy:(Sched.Sim.Fixed_priority ranks) in
        sim.Sched.Sim.ok && sim.Sched.Sim.exact
        && (match Csp2.Solver.solve ~budget:(Prelude.Timer.budget ~wall_s:5.0 ()) ts ~m with
           | O.Feasible _, _ -> true
           | (O.Infeasible | O.Limit | O.Memout _), _ -> false)
      | (Priority.Assignment.Not_found | Priority.Assignment.Limit), _ -> true)

let prop_priority_dc_tried_first =
  qtest ~count:40 "when the D-C order works it is found with minimal simulations"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      let dc = Priority.Assignment.dc_first ts in
      let sim = Sched.Sim.run ts ~m ~policy:(Sched.Sim.Fixed_priority dc) in
      (not (sim.Sched.Sim.ok && sim.Sched.Sim.exact))
      ||
      match Priority.Assignment.search ts ~m with
      | Priority.Assignment.Found ranks, stats ->
        ranks = dc && stats.Priority.Assignment.candidates = Taskset.size ts
      | (Priority.Assignment.Not_found | Priority.Assignment.Limit), _ -> false)

let () =
  Alcotest.run "extensions"
    [
      ( "local search",
        [
          Alcotest.test_case "running example" `Quick test_ls_running_example;
          Alcotest.test_case "no infeasibility proofs" `Quick test_ls_never_proves_infeasibility;
          Alcotest.test_case "seed determinism" `Quick test_ls_seed_determinism;
          prop_ls_solves_feasible_instances;
          prop_ls_never_infeasible;
        ] );
      ( "priority assignment",
        [
          Alcotest.test_case "D-C seed order" `Quick test_priority_dc_seed;
          Alcotest.test_case "found => simulates ok" `Quick test_priority_found_simulates_ok;
          Alcotest.test_case "trap has no FP order" `Quick test_priority_trap_not_found;
          Alcotest.test_case "budget" `Quick test_priority_budget;
          prop_priority_found_implies_feasible;
          prop_priority_dc_tried_first;
        ] );
    ]
