(* Tests for the probabilistic extension: distributions, static waste
   analysis and the Monte-Carlo miss estimator. *)

open Rt_model

let check = Alcotest.check
let qtest = Test_util.qtest

(* ------------------------------------------------------------------ *)
(* Dist                                                                 *)

let test_dist_normalization () =
  let d = Prob.Dist.of_list [ (2, 2.); (1, 1.); (3, 1.) ] in
  Alcotest.(check (list int)) "support sorted" [ 1; 2; 3 ] (Prob.Dist.support d);
  Alcotest.(check (float 1e-9)) "prob 2" 0.5 (Prob.Dist.prob d 2);
  Alcotest.(check (float 1e-9)) "prob 4" 0. (Prob.Dist.prob d 4);
  check Alcotest.int "min" 1 (Prob.Dist.min_value d);
  check Alcotest.int "max" 3 (Prob.Dist.max_value d);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Prob.Dist.mean d);
  Alcotest.(check (float 1e-9)) "cdf 2" 0.75 (Prob.Dist.cdf d 2);
  Alcotest.(check (float 1e-9)) "cdf 3" 1.0 (Prob.Dist.cdf d 3)

let test_dist_point_uniform () =
  let p = Prob.Dist.point 4 in
  Alcotest.(check (float 1e-9)) "point mean" 4.0 (Prob.Dist.mean p);
  Alcotest.(check (float 1e-9)) "point scale" 1.0 (Prob.Dist.scale_wcet p);
  let u = Prob.Dist.uniform ~lo:1 ~hi:4 in
  Alcotest.(check (float 1e-9)) "uniform mean" 2.5 (Prob.Dist.mean u);
  Alcotest.(check (float 1e-9)) "uniform prob" 0.25 (Prob.Dist.prob u 3)

let test_dist_validation () =
  let invalid f = Alcotest.(check bool) "rejected" true (try ignore (f ()); false with Invalid_argument _ -> true) in
  invalid (fun () -> Prob.Dist.of_list []);
  invalid (fun () -> Prob.Dist.of_list [ (0, 1.) ]);
  invalid (fun () -> Prob.Dist.of_list [ (1, -1.) ]);
  invalid (fun () -> Prob.Dist.of_list [ (1, 1.); (1, 1.) ]);
  invalid (fun () -> Prob.Dist.uniform ~lo:3 ~hi:2)

let test_dist_sampling_frequencies () =
  let d = Prob.Dist.of_list [ (1, 0.25); (2, 0.75) ] in
  let rng = Prelude.Prng.create ~seed:5 in
  let ones = ref 0 in
  let draws = 20_000 in
  for _ = 1 to draws do
    match Prob.Dist.sample rng d with
    | 1 -> incr ones
    | 2 -> ()
    | other -> Alcotest.failf "sampled %d outside the support" other
  done;
  let freq = float_of_int !ones /. float_of_int draws in
  Alcotest.(check bool) (Printf.sprintf "frequency %.3f near 0.25" freq) true
    (freq > 0.22 && freq < 0.28)

let prop_sample_in_support =
  qtest ~count:100 "samples always land in the support"
    QCheck2.Gen.(pair small_int (list_size (int_range 1 5) (pair (int_range 1 9) (int_range 1 10))))
    (fun (seed, pairs) ->
      let pairs = List.map (fun (v, w) -> (v, float_of_int w)) pairs in
      match Prob.Dist.of_list pairs with
      | exception Invalid_argument _ -> true (* duplicate values: rejected input *)
      | d ->
        let rng = Prelude.Prng.create ~seed in
        let ok = ref true in
        for _ = 1 to 50 do
          if not (List.mem (Prob.Dist.sample rng d) (Prob.Dist.support d)) then ok := false
        done;
        !ok)

(* ------------------------------------------------------------------ *)
(* Robustness                                                           *)

let running = Examples.running_example

let test_profile_validation () =
  Alcotest.(check bool) "max must equal C" true
    (try
       ignore (Prob.Robustness.profile running [| Prob.Dist.point 2; Prob.Dist.point 3; Prob.Dist.point 2 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "arity" true
    (try
       ignore (Prob.Robustness.profile running [| Prob.Dist.point 1 |]);
       false
     with Invalid_argument _ -> true)

let test_static_waste_degenerate () =
  (* Point distributions at the WCET: nothing is wasted. *)
  let w = Prob.Robustness.static_waste (Prob.Robustness.degenerate running) in
  check Alcotest.int "reserved = total demand" (Taskset.total_demand running)
    w.Prob.Robustness.reserved;
  Alcotest.(check (float 1e-9)) "no idle" 0.0 w.Prob.Robustness.expected_idle;
  Alcotest.(check (float 1e-9)) "utilizations equal" w.Prob.Robustness.utilization_budgeted
    w.Prob.Robustness.utilization_expected

let test_static_waste_shorter () =
  let dists = [| Prob.Dist.point 1; Prob.Dist.of_list [ (1, 1.); (3, 1.) ]; Prob.Dist.point 2 |] in
  let w = Prob.Robustness.static_waste (Prob.Robustness.profile running dists) in
  (* τ2 contributes 3 jobs × (3 − 2) expected unused slots. *)
  Alcotest.(check (float 1e-9)) "expected idle" 3.0 w.Prob.Robustness.expected_idle;
  Alcotest.(check bool) "expected utilization lower" true
    (w.Prob.Robustness.utilization_expected < w.Prob.Robustness.utilization_budgeted)

let test_monte_carlo_wcet_trap () =
  (* With degenerate (worst-case) distributions the trap always misses. *)
  let est =
    Prob.Robustness.monte_carlo_misses ~seed:1 ~runs:200
      (Prob.Robustness.degenerate Examples.edf_trap) ~m:2
  in
  check Alcotest.int "all runs miss" est.Prob.Robustness.runs est.Prob.Robustness.runs_with_miss;
  Alcotest.(check (float 1e-9)) "probability 1" 1.0 est.Prob.Robustness.miss_probability;
  Alcotest.(check (float 1e-9)) "stderr 0" 0.0 est.Prob.Robustness.stderr

let test_monte_carlo_feasible_system () =
  (* A lightly loaded system never misses under EDF regardless of times. *)
  let ts = Taskset.of_tuples [ (0, 1, 4, 4); (0, 1, 4, 4) ] in
  let est = Prob.Robustness.monte_carlo_misses ~seed:2 ~runs:300 (Prob.Robustness.degenerate ts) ~m:2 in
  check Alcotest.int "no run misses" 0 est.Prob.Robustness.runs_with_miss

let test_monte_carlo_monotone_in_load () =
  (* Shorter execution times can only reduce the trap's miss rate. *)
  let trap = Examples.edf_trap in
  let estimate mix =
    (Prob.Robustness.monte_carlo_misses ~seed:7 ~runs:1500
       (Prob.Robustness.profile trap (Array.make 3 (Prob.Dist.of_list mix)))
       ~m:2)
      .Prob.Robustness.miss_probability
  in
  let heavy = estimate [ (1, 0.1); (2, 0.9) ] in
  let light = estimate [ (1, 0.9); (2, 0.1) ] in
  Alcotest.(check bool)
    (Printf.sprintf "miss probability decreases with load (%.3f > %.3f)" heavy light)
    true (heavy > light)

let test_monte_carlo_deterministic_seed () =
  let profile =
    Prob.Robustness.profile Examples.edf_trap
      (Array.make 3 (Prob.Dist.of_list [ (1, 0.5); (2, 0.5) ]))
  in
  let a = Prob.Robustness.monte_carlo_misses ~seed:9 ~runs:200 profile ~m:2 in
  let b = Prob.Robustness.monte_carlo_misses ~seed:9 ~runs:200 profile ~m:2 in
  check Alcotest.int "same counts" a.Prob.Robustness.runs_with_miss b.Prob.Robustness.runs_with_miss

let () =
  Alcotest.run "prob"
    [
      ( "dist",
        [
          Alcotest.test_case "normalization" `Quick test_dist_normalization;
          Alcotest.test_case "point and uniform" `Quick test_dist_point_uniform;
          Alcotest.test_case "validation" `Quick test_dist_validation;
          Alcotest.test_case "sampling frequencies" `Quick test_dist_sampling_frequencies;
          prop_sample_in_support;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "profile validation" `Quick test_profile_validation;
          Alcotest.test_case "degenerate waste" `Quick test_static_waste_degenerate;
          Alcotest.test_case "shorter executions" `Quick test_static_waste_shorter;
          Alcotest.test_case "worst-case trap" `Quick test_monte_carlo_wcet_trap;
          Alcotest.test_case "feasible system" `Quick test_monte_carlo_feasible_system;
          Alcotest.test_case "monotone in load" `Quick test_monte_carlo_monotone_in_load;
          Alcotest.test_case "seed determinism" `Quick test_monte_carlo_deterministic_seed;
        ] );
    ]
