(* Tests for the three CSP encodings: schedules decode into verified
   feasible schedules (Theorem 1 executable), the encodings are
   equisatisfiable (Theorem 2 executable), heterogeneity follows
   Section VI-A, and memory cliffs are reported as Memout. *)

open Rt_model
module O = Encodings.Outcome

let check = Alcotest.check
let qtest = Test_util.qtest

let running = Examples.running_example

let budget () = Prelude.Timer.budget ~wall_s:5.0 ()

let feasible_verified ?platform ts outcome =
  match outcome with
  | O.Feasible sched -> Verify.is_feasible ?platform ts sched
  | O.Infeasible | O.Limit | O.Memout _ -> false

(* ------------------------------------------------------------------ *)
(* Running example through each path                                    *)

let test_csp1_running () =
  let outcome, stats = Encodings.Csp1.solve ~budget:(budget ()) running ~m:2 in
  Alcotest.(check bool) "feasible and verified" true (feasible_verified running outcome);
  Alcotest.(check bool) "has stats" true (stats <> None)

let test_csp1_sat_running () =
  let outcome, _ = Encodings.Csp1_sat.solve ~budget:(budget ()) running ~m:2 in
  Alcotest.(check bool) "feasible and verified" true (feasible_verified running outcome)

let test_csp2_fd_running () =
  let outcome, _ = Encodings.Csp2_fd.solve ~budget:(budget ()) running ~m:2 in
  Alcotest.(check bool) "feasible and verified" true (feasible_verified running outcome)

let test_infeasible_on_one_proc () =
  (* r > 1 on m=1: all complete paths must prove infeasibility. *)
  let check_path name solve =
    match solve () with
    | O.Infeasible, _ -> ()
    | (O.Feasible _ | O.Limit | O.Memout _), _ -> Alcotest.failf "%s failed to refute" name
  in
  check_path "csp1" (fun () -> Encodings.Csp1.solve ~budget:(budget ()) running ~m:1);
  check_path "csp1-sat" (fun () -> Encodings.Csp1_sat.solve ~budget:(budget ()) running ~m:1);
  check_path "csp2-fd" (fun () -> Encodings.Csp2_fd.solve ~budget:(budget ()) running ~m:1)

(* ------------------------------------------------------------------ *)
(* Structure of the models                                              *)

let test_csp1_variable_count () =
  let model = Encodings.Csp1.build running ~m:2 in
  (* n·m·T variables exist (out-of-window ones constant 0). *)
  check Alcotest.int "variables" (3 * 2 * 12) (Fd.Engine.var_count (Encodings.Csp1.engine model));
  (* Constraint (2): τ3 has no window at slot 2. *)
  let v = Encodings.Csp1.var model ~task:2 ~proc:0 ~time:2 in
  Alcotest.(check (option int)) "out-of-window constant" (Some 0) (Fd.Engine.value v)

let test_csp2_fd_variable_count () =
  let model = Encodings.Csp2_fd.build running ~m:2 in
  check Alcotest.int "variables" (2 * 12) (Fd.Engine.var_count (Encodings.Csp2_fd.engine model));
  (* Constraint (7): value 2 (τ3) absent from x_j(2). *)
  let v = Encodings.Csp2_fd.var model ~proc:0 ~time:2 in
  Alcotest.(check bool) "no τ3 at slot 2" false (Fd.Engine.mem v 2);
  Alcotest.(check bool) "idle available" true (Fd.Engine.mem v (-1))

let test_memout () =
  (match Encodings.Csp1.solve ~var_budget:10 running ~m:2 with
  | O.Memout _, None -> ()
  | _ -> Alcotest.fail "tiny budget must memout");
  match Encodings.Csp1_sat.solve ~var_budget:10 running ~m:2 with
  | O.Memout _, None -> ()
  | _ -> Alcotest.fail "tiny budget must memout (SAT)"

let test_dimacs_export () =
  let model = Encodings.Csp1_sat.build running ~m:2 in
  let cnf = Encodings.Csp1_sat.to_dimacs model in
  Alcotest.(check bool) "has clauses" true (List.length cnf.Sat.Dimacs.clauses > 0);
  Alcotest.(check bool) "cells counted" true
    (Encodings.Csp1_sat.cell_count model <= cnf.Sat.Dimacs.num_vars)

(* ------------------------------------------------------------------ *)
(* Equisatisfiability properties (Theorems 1 and 2)                     *)

let decided = function O.Feasible _ | O.Infeasible -> true | O.Limit | O.Memout _ -> false

let prop_theorem_1_and_2 =
  (* The CDCL path refutes quickly, so it serves as ground truth; the DFS
     paths must be *consistent* with it (a Limit is acceptable — the paper
     itself reports CSP1 overrunning mostly on unsolvable instances). *)
  qtest ~count:60 "all encodings agree and schedules verify"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      let truth, _ = Encodings.Csp1_sat.solve ~budget:(budget ()) ts ~m in
      let o1, _ = Encodings.Csp1.solve ~budget:(budget ()) ts ~m in
      let o3, _ = Encodings.Csp2_fd.solve ~budget:(budget ()) ts ~m in
      decided truth
      && List.for_all
           (fun o ->
             O.agree truth o
             && (match o with
                | O.Feasible s -> Verify.is_feasible ts s
                | O.Infeasible -> not (O.is_feasible truth)
                | O.Limit | O.Memout _ -> true))
           [ truth; o1; o3 ])

let prop_symmetry_preserves_satisfiability =
  qtest ~count:60 "symmetry constraint (10) preserves satisfiability"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      let with_sym, _ = Encodings.Csp2_fd.solve ~symmetry:true ~budget:(budget ()) ts ~m in
      let without, _ = Encodings.Csp2_fd.solve ~symmetry:false ~budget:(budget ()) ts ~m in
      O.agree with_sym without
      && (match (with_sym, without) with
         | (O.Feasible _ | O.Infeasible), (O.Feasible _ | O.Infeasible) ->
           O.is_feasible with_sym = O.is_feasible without
         | _ -> true))

let prop_r_filter_sound =
  qtest ~count:60 "r > 1 instances are refuted by the solver"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      (not (Analysis.utilization_exceeds ts ~m))
      ||
      match Encodings.Csp1_sat.solve ~budget:(budget ()) ts ~m with
      | O.Infeasible, _ -> true
      | (O.Feasible _ | O.Limit | O.Memout _), _ -> false)

(* ------------------------------------------------------------------ *)
(* Heterogeneous platforms (Section VI-A)                               *)

let test_dedicated_example () =
  let ts, platform = Examples.dedicated in
  let m = Platform.processors platform in
  let o1, _ = Encodings.Csp1.solve ~platform ~budget:(budget ()) ts ~m in
  Alcotest.(check bool) "csp1 het feasible+verified" true
    (feasible_verified ~platform ts o1);
  let o2, _ = Encodings.Csp2_fd.solve ~platform ~budget:(budget ()) ts ~m in
  Alcotest.(check bool) "csp2-fd het feasible+verified" true
    (feasible_verified ~platform ts o2)

let test_heterogeneous_domain_restriction () =
  let ts, platform = Examples.dedicated in
  let model = Encodings.Csp2_fd.build ~platform ts ~m:2 in
  (* τ3 (id 2) has rate 0 on P1: never in P1's domains. *)
  let ok = ref true in
  for t = 0 to Encodings.Csp2_fd.horizon model - 1 do
    if Fd.Engine.mem (Encodings.Csp2_fd.var model ~proc:0 ~time:t) 2 then ok := false
  done;
  Alcotest.(check bool) "domain restriction" true !ok

let prop_het_paths_agree =
  (* Both paths run on the FD solver here, so require consistency and
     verified schedules; a shared Limit on a nasty instance is tolerated. *)
  let gen =
    let open QCheck2.Gen in
    Test_util.taskset_gen ~nmax:3 ~tmax:4 () >>= fun ts ->
    Test_util.platform_gen ~n:(Taskset.size ts) >>= fun platform -> return (ts, platform)
  in
  qtest ~count:50 "CSP1 and CSP2-fd agree on heterogeneous instances" gen
    (fun (ts, platform) ->
      let m = Platform.processors platform in
      let o1, _ = Encodings.Csp1.solve ~platform ~budget:(budget ()) ts ~m in
      let o2, _ = Encodings.Csp2_fd.solve ~platform ~budget:(budget ()) ts ~m in
      O.agree o1 o2
      && (match (o1, o2) with
         | (O.Feasible _ | O.Infeasible), (O.Feasible _ | O.Infeasible) ->
           O.is_feasible o1 = O.is_feasible o2
         | _ -> true)
      && (match o1 with O.Feasible s -> Verify.is_feasible ~platform ts s | _ -> true)
      && match o2 with O.Feasible s -> Verify.is_feasible ~platform ts s | _ -> true)

(* ------------------------------------------------------------------ *)
(* Outcome helpers                                                      *)

let test_outcome_agree () =
  let sched = Schedule.create ~m:1 ~horizon:1 in
  Alcotest.(check bool) "feasible vs infeasible" false (O.agree (O.Feasible sched) O.Infeasible);
  Alcotest.(check bool) "limit vs anything" true (O.agree O.Limit O.Infeasible);
  Alcotest.(check bool) "memout vs feasible" true (O.agree (O.Memout "x") (O.Feasible sched));
  Alcotest.(check bool) "decided" true (O.is_decided O.Infeasible);
  Alcotest.(check bool) "limit undecided" false (O.is_decided O.Limit)

let () =
  Alcotest.run "encodings"
    [
      ( "running example",
        [
          Alcotest.test_case "csp1" `Quick test_csp1_running;
          Alcotest.test_case "csp1-sat" `Quick test_csp1_sat_running;
          Alcotest.test_case "csp2-fd" `Quick test_csp2_fd_running;
          Alcotest.test_case "infeasible on m=1" `Quick test_infeasible_on_one_proc;
        ] );
      ( "model structure",
        [
          Alcotest.test_case "csp1 variables and constraint (2)" `Quick test_csp1_variable_count;
          Alcotest.test_case "csp2 variables and constraint (7)" `Quick
            test_csp2_fd_variable_count;
          Alcotest.test_case "memout emulation" `Quick test_memout;
          Alcotest.test_case "dimacs export" `Quick test_dimacs_export;
        ] );
      ( "equivalence",
        [ prop_theorem_1_and_2; prop_symmetry_preserves_satisfiability; prop_r_filter_sound ] );
      ( "heterogeneous",
        [
          Alcotest.test_case "dedicated example" `Quick test_dedicated_example;
          Alcotest.test_case "domain restriction" `Quick test_heterogeneous_domain_restriction;
          prop_het_paths_agree;
        ] );
      ("outcome", [ Alcotest.test_case "agree/decided" `Quick test_outcome_agree ]);
    ]
