lib/encodings/csp1_sat.ml: Array Fd List Outcome Printf Rt_model Sat Schedule Taskset Windows
