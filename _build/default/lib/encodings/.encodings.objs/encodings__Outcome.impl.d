lib/encodings/outcome.ml: Format Rt_model
