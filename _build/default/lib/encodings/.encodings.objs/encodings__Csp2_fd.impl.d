lib/encodings/csp2_fd.ml: Array Fd List Outcome Platform Printf Rt_model Schedule Taskset Windows
