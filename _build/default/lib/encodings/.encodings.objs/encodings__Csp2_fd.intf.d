lib/encodings/csp2_fd.mli: Fd Outcome Prelude Rt_model
