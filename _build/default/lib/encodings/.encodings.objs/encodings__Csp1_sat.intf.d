lib/encodings/csp1_sat.mli: Outcome Prelude Rt_model Sat
