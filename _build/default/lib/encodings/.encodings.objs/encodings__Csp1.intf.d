lib/encodings/csp1.mli: Fd Outcome Prelude Rt_model
