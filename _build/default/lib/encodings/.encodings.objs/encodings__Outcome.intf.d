lib/encodings/outcome.mli: Format Rt_model
