lib/encodings/csp1.ml: Array Fd Outcome Platform Printf Rt_model Schedule Taskset Windows
