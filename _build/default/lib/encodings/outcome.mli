(** Common solver verdicts.

    Every solver path (CSP1/FD, CSP2/FD, CSP1/SAT, the dedicated CSP2
    solver, local search) reports one of these, matching the four ways a run
    ends in the paper's experiments: a schedule is found, infeasibility is
    proved, the time limit is hit (an "overrun"), or — CSP1 on large
    instances — the model is too big to build (Choco's out-of-memory). *)

type t =
  | Feasible of Rt_model.Schedule.t
  | Infeasible
  | Limit  (** Budget exhausted: nothing proved. *)
  | Memout of string  (** Model exceeds the variable budget. *)

val is_feasible : t -> bool
val is_decided : t -> bool
(** [Feasible] or [Infeasible]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val agree : t -> t -> bool
(** Two verdicts are consistent (used to cross-check solver paths, the way
    the paper debugged CSP2 against Choco): [Feasible] never meets
    [Infeasible]; [Limit]/[Memout] are consistent with anything. *)
