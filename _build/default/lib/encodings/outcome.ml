type t =
  | Feasible of Rt_model.Schedule.t
  | Infeasible
  | Limit
  | Memout of string

let is_feasible = function Feasible _ -> true | Infeasible | Limit | Memout _ -> false
let is_decided = function Feasible _ | Infeasible -> true | Limit | Memout _ -> false

let pp ppf = function
  | Feasible _ -> Format.fprintf ppf "feasible"
  | Infeasible -> Format.fprintf ppf "infeasible"
  | Limit -> Format.fprintf ppf "limit"
  | Memout reason -> Format.fprintf ppf "memout (%s)" reason

let to_string t = Format.asprintf "%a" pp t

let agree a b =
  match (a, b) with
  | Feasible _, Infeasible | Infeasible, Feasible _ -> false
  | _ -> true
