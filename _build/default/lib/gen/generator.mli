(** Random problem generation (Section VII-A of the paper).

    An instance is a task set plus a processor count.  The generator
    enforces the paper's validity constraints [0 < C_i <= D_i <= T_i] and
    [1 < m < n], and implements the three parameter-sampling orders the
    paper discusses:

    - [C_first] ([C → D → T]): favours large periods;
    - [T_first] ([T → D → C]): favours short WCETs;
    - [D_first]: the paper's chosen middle ground — sample [D] uniformly in
      [[1, Tmax]] first, then [C ~ U(1, D)] and [T ~ U(D, Tmax)]
      (independent given [D]).

    Offsets are sampled uniformly in [[0, T_i − 1]] ([O_i] "is independent
    of other parameters"); pass [~offsets:false] for synchronous systems.

    Instances are *not* filtered for feasibility — Tables I–III rely on
    unsolvable instances (utilization ratio above 1) being present. *)

type order = D_first | C_first | T_first

val order_to_string : order -> string
val all_orders : order list

type m_spec =
  | Fixed_m of int  (** e.g. Table I uses [Fixed_m 5]. *)
  | Uniform_m  (** Uniform in [[1, n−1]] (the paper's general setting). *)
  | Min_processors  (** [m = ⌈Σ C_i/T_i⌉], Table IV's choice. *)

type params = {
  n : int;  (** Number of tasks, > 2. *)
  m : m_spec;
  tmax : int;  (** Maximum period, > 1. *)
  order : order;
  offsets : bool;  (** Sample release offsets (default true). *)
}

val default : n:int -> m:m_spec -> tmax:int -> params
(** [D_first] ordering, offsets on. *)

val generate : Prelude.Prng.t -> params -> Rt_model.Taskset.t * int
(** Draw one instance: the task set and the processor count. *)

val batch : seed:int -> count:int -> params -> (Rt_model.Taskset.t * int) array
(** [count] independent instances from a master seed (split per instance,
    so instance [i] is reproducible in isolation). *)
