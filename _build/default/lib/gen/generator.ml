open Prelude
open Rt_model

type order = D_first | C_first | T_first

let order_to_string = function
  | D_first -> "D-first"
  | C_first -> "C->D->T"
  | T_first -> "T->D->C"

let all_orders = [ D_first; C_first; T_first ]

type m_spec = Fixed_m of int | Uniform_m | Min_processors

type params = { n : int; m : m_spec; tmax : int; order : order; offsets : bool }

let default ~n ~m ~tmax = { n; m; tmax; order = D_first; offsets = true }

let validate p =
  if p.n <= 2 then invalid_arg "Generator: n must be > 2";
  if p.tmax <= 1 then invalid_arg "Generator: Tmax must be > 1";
  match p.m with
  | Fixed_m m when m < 1 || m >= p.n -> invalid_arg "Generator: need 1 <= m < n"
  | Fixed_m _ | Uniform_m | Min_processors -> ()

let sample_task rng p =
  let c, d, t =
    match p.order with
    | C_first ->
      let c = Prng.in_range rng ~lo:1 ~hi:p.tmax in
      let d = Prng.in_range rng ~lo:c ~hi:p.tmax in
      let t = Prng.in_range rng ~lo:d ~hi:p.tmax in
      (c, d, t)
    | T_first ->
      let t = Prng.in_range rng ~lo:1 ~hi:p.tmax in
      let d = Prng.in_range rng ~lo:1 ~hi:t in
      let c = Prng.in_range rng ~lo:1 ~hi:d in
      (c, d, t)
    | D_first ->
      let d = Prng.in_range rng ~lo:1 ~hi:p.tmax in
      let c = Prng.in_range rng ~lo:1 ~hi:d in
      let t = Prng.in_range rng ~lo:d ~hi:p.tmax in
      (c, d, t)
  in
  let o = if p.offsets then Prng.in_range rng ~lo:0 ~hi:(t - 1) else 0 in
  Task.make ~offset:o ~wcet:c ~deadline:d ~period:t ()

let generate rng p =
  validate p;
  let tasks = List.init p.n (fun _ -> sample_task rng p) in
  let ts = Taskset.of_tasks tasks in
  let m =
    match p.m with
    | Fixed_m m -> m
    | Uniform_m -> Prng.in_range rng ~lo:1 ~hi:(p.n - 1)
    | Min_processors -> max 1 (Taskset.min_processors ts)
  in
  (ts, m)

let batch ~seed ~count p =
  validate p;
  let master = Prng.create ~seed in
  (* Split explicitly in index order: [Array.init]'s evaluation order is
     unspecified and reproducibility demands instance i be stable. *)
  let rngs = Array.make count master in
  for i = 0 to count - 1 do
    rngs.(i) <- Prng.split master
  done;
  Array.map (fun rng -> generate rng p) rngs
