lib/gen/generator.ml: Array List Prelude Prng Rt_model Task Taskset
