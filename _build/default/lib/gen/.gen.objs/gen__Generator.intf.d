lib/gen/generator.mli: Prelude Rt_model
