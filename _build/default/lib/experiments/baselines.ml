open Prelude
open Rt_model

type row = { policy : string; succeeded : int; out_of : int }

let policies ts =
  [
    ("global EDF", fun ~m -> let r = Sched.Sim.run ts ~m ~policy:Sched.Sim.EDF in r.Sched.Sim.ok && r.Sched.Sim.exact);
    ("global LLF", fun ~m -> let r = Sched.Sim.run ts ~m ~policy:Sched.Sim.LLF in r.Sched.Sim.ok && r.Sched.Sim.exact);
    ( "global RM",
      fun ~m ->
        let r = Sched.Sim.run ts ~m ~policy:(Sched.Sim.Fixed_priority (Sched.Sim.rm_priorities ts)) in
        r.Sched.Sim.ok && r.Sched.Sim.exact );
    ( "global DM",
      fun ~m ->
        let r = Sched.Sim.run ts ~m ~policy:(Sched.Sim.Fixed_priority (Sched.Sim.dm_priorities ts)) in
        r.Sched.Sim.ok && r.Sched.Sim.exact );
    ("partitioned FF-EDF", fun ~m -> (Sched.Partitioned.partition ts ~m).Sched.Partitioned.ok);
  ]

let run ?(progress = fun _ -> ()) (config : Config.t) =
  let config = { config with Config.instances = min config.Config.instances 200 } in
  let params = Campaign.generation_params config in
  let instances =
    Gen.Generator.batch ~seed:(config.Config.seed + 31337) ~count:config.Config.instances params
  in
  let feasible = ref [] in
  Array.iteri
    (fun idx (ts, m) ->
      (match
         Csp2.Solver.solve ~heuristic:Csp2.Heuristic.DC
           ~budget:(Prelude.Timer.budget ~wall_s:config.Config.limit_s ())
           ts ~m
       with
      | Encodings.Outcome.Feasible _, _ -> feasible := (ts, m) :: !feasible
      | (Encodings.Outcome.Infeasible | Encodings.Outcome.Limit | Encodings.Outcome.Memout _), _
        -> ());
      progress idx)
    instances;
  let feasible = !feasible in
  let out_of = List.length feasible in
  let names = List.map fst (policies Examples.running_example) in
  List.map
    (fun name ->
      let succeeded =
        List.fold_left
          (fun acc (ts, m) ->
            let policy = List.assoc name (policies ts) in
            if policy ~m then acc + 1 else acc)
          0 feasible
      in
      { policy = name; succeeded; out_of })
    names

let render rows =
  let table = Ascii_table.create ~headers:[ "policy"; "schedulable"; "of feasible" ] in
  Ascii_table.set_align table [ Ascii_table.Left; Ascii_table.Right; Ascii_table.Right ];
  List.iter
    (fun r ->
      Ascii_table.add_row table
        [ r.policy; string_of_int r.succeeded; string_of_int r.out_of ])
    rows;
  "Baselines: priority-driven policies on CSP-feasible instances\n" ^ Ascii_table.render table

