(** Ablation studies beyond the paper's tables.

    DESIGN.md calls out three design choices worth isolating; these runs
    quantify them on the Table I workload:

    - encoding vs search: CSP2's constraints on the *generic* solver
      (with/without the symmetry constraint (10), with/without the D−C
      value order) against the dedicated chronological search;
    - the SAT route for CSP1;
    - local search (min-conflicts) as an incomplete alternative. *)

type row = {
  solver : string;
  solved : int;
  infeasible : int;
  overruns : int;
  mean_time : float;
}

val solver_count : int
(** Number of ablation rows produced. *)

val run : ?progress:(int -> unit) -> Config.t -> row list
(** Uses [config.instances] capped at 100 (ablations are about shape, not
    statistics) on the Table I generation parameters. *)

val render : row list -> string
