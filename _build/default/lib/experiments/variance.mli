(** The randomness observation of Section VII-B.

    The paper notes that the CSP2 solver is fully deterministic while
    Choco's randomized search makes CSP1 runs incomparable: "for a given
    problem, some executions of the CSP1 solver may be very quick while
    others are very slow".  This experiment quantifies that spread: each
    instance is solved with [seeds] different seeds of the randomized CSP1
    strategy, and with the deterministic CSP2+(D−C) solver once as a
    reference. *)

type row = {
  instance : int;
  ratio : float;  (** Utilization ratio r. *)
  min_time : float;
  median_time : float;
  max_time : float;  (** Capped at the limit. *)
  overruns : int;  (** Seeds that hit the limit. *)
  seeds : int;
  csp2_time : float;  (** Deterministic reference. *)
}

val run :
  ?instances:int -> ?seeds:int -> Config.t -> row list
(** Default 10 instances (Table I parameters, solvable-biased by skipping
    instances every seed overruns), 20 seeds each, per-run limit from the
    config. *)

val render : row list -> string
