open Rt_model

type t = {
  config : Config.t;
  solvers : Runner.solver list;
  instances : (Taskset.t * int) array;
  ratios : float array;
  filtered : bool array;
  runs : Runner.run array array;
  solved_by_any : bool array;
  proved_infeasible : bool array;
}

let generation_params config =
  ignore config;
  Gen.Generator.default ~n:10 ~m:(Gen.Generator.Fixed_m 5) ~tmax:7

let run ?(solvers = Runner.table1_solvers) ?(progress = fun _ -> ()) config =
  let params = generation_params config in
  let instances = Gen.Generator.batch ~seed:config.Config.seed ~count:config.Config.instances params in
  let count = Array.length instances in
  let nsolvers = List.length solvers in
  let ratios =
    Array.map (fun (ts, m) -> Taskset.utilization_ratio ts ~m) instances
  in
  let filtered =
    Array.map (fun (ts, m) -> Analysis.utilization_exceeds ts ~m) instances
  in
  let runs = Array.make_matrix nsolvers count { Runner.outcome = Encodings.Outcome.Limit; time_s = 0.; overrun = true } in
  let solved_by_any = Array.make count false in
  let proved_infeasible = Array.make count false in
  for inst = 0 to count - 1 do
    let ts, m = instances.(inst) in
    List.iteri
      (fun si solver ->
        let run = Runner.run_one solver ts ~m ~limit_s:config.Config.limit_s ~seed:inst in
        runs.(si).(inst) <- run;
        match run.Runner.outcome with
        | Encodings.Outcome.Feasible _ ->
          if proved_infeasible.(inst) then
            failwith
              (Printf.sprintf "Campaign.run: solver %s contradicts an infeasibility proof on instance %d"
                 solver.Runner.name inst);
          solved_by_any.(inst) <- true
        | Encodings.Outcome.Infeasible ->
          if solved_by_any.(inst) then
            failwith
              (Printf.sprintf "Campaign.run: solver %s contradicts a schedule on instance %d"
                 solver.Runner.name inst);
          proved_infeasible.(inst) <- true
        | Encodings.Outcome.Limit | Encodings.Outcome.Memout _ -> ())
      solvers;
    progress inst
  done;
  { config; solvers; instances; ratios; filtered; runs; solved_by_any; proved_infeasible }
