lib/experiments/variance.ml: Array Ascii_table Campaign Config Gen List Prelude Printf Rt_model Runner
