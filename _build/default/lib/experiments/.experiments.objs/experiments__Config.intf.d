lib/experiments/config.mli: Prelude
