lib/experiments/runner.mli: Encodings Prelude Rt_model
