lib/experiments/runner.ml: Array Csp2 Encodings Fd Localsearch Prelude Printf Rt_model Timer
