lib/experiments/baselines.ml: Array Ascii_table Campaign Config Csp2 Encodings Examples Gen List Prelude Rt_model Sched
