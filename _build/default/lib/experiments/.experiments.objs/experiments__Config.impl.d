lib/experiments/config.ml: List Prelude String Sys
