lib/experiments/campaign.ml: Analysis Array Config Encodings Gen List Printf Rt_model Runner Taskset
