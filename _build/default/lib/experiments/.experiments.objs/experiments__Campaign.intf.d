lib/experiments/campaign.mli: Config Gen Rt_model Runner
