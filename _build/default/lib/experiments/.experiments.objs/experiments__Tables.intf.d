lib/experiments/tables.mli: Campaign Config
