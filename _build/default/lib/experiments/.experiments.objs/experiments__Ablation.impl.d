lib/experiments/ablation.ml: Array Ascii_table Campaign Config Encodings Gen List Prelude Printf Runner Welford
