lib/experiments/tables.ml: Array Ascii_table Campaign Config Encodings Examples Format Fun Gen Intmath List Prelude Printf Rt_model Runner Taskset Welford Windows
