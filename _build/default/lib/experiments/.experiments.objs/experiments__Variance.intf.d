lib/experiments/variance.mli: Config
