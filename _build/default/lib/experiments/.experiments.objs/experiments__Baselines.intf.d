lib/experiments/baselines.mli: Config
