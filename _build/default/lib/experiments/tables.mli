(** Renderings of the paper's Tables I–IV and Figure 1.

    Each function returns both structured rows (asserted in the test suite)
    and a printable ASCII table in the paper's layout.  Paper values are
    quoted in [EXPERIMENTS.md]; we compare shapes, not absolute counts. *)

type overrun_row = {
  label : string;  (** "solved" / "unsolved" (Table I), "filtered" / "unfiltered" (Table II). *)
  per_solver : (string * int) list;  (** Overruns per solver column. *)
  total : int;  (** Class size. *)
}

val table1 : Campaign.t -> overrun_row list
(** Overruns split by instances solved by at least one solver vs never
    solved (paper Table I). *)

val table2 : Campaign.t -> overrun_row list * int
(** Unsolved-instance overruns split by the r > 1 filter (paper Table II),
    plus the number of unfiltered instances some solver proved infeasible
    (the paper found 3). *)

type bucket_row = {
  r_lo : float;
  r_hi : float;
  count : int;
  mean_time : float;  (** Mean resolution time across all solvers, overruns
                          counted at the limit (paper Table III). *)
}

val table3 : ?bucket:float -> Campaign.t -> bucket_row list

type table4_cell = {
  solved_pct : float;
  mean_time : float;
  memouts : int;  (** CSP1's Choco-style out-of-memory count. *)
}

type table4_row = {
  n : int;
  mean_r : float;
  mean_m : float;
  mean_hyperperiod : float;
  csp1 : table4_cell;
  csp2_dc : table4_cell;
}

val table4 : ?progress:(int -> unit) -> Config.t -> table4_row list
(** The scaling experiment (paper Table IV): Tmax = 15,
    m = ⌈Σ C_i/T_i⌉, n swept over [config.table4_sizes]. *)

val render_table1 : overrun_row list -> string
val render_table2 : overrun_row list * int -> string
val render_bucket_rows : bucket_row list -> string
val render_table4 : table4_row list -> string

val figure1 : unit -> string
(** ASCII availability-interval pattern of the paper's running example
    (Figure 1). *)
