(** Priority-driven and partitioned baselines vs the complete CSP search.

    Quantifies the completeness gap the paper's introduction motivates:
    on instances the CSP2+(D−C) solver proves feasible, how often do global
    EDF / RM / DM / LLF simulation and partitioned first-fit EDF actually
    meet all deadlines?  (Every miss here is a scheduling-anomaly-style
    failure of a work-conserving policy on a feasible instance.) *)

type row = {
  policy : string;
  succeeded : int;  (** Schedulable by the policy. *)
  out_of : int;  (** Instances proved feasible by CSP2+(D−C). *)
}

val run : ?progress:(int -> unit) -> Config.t -> row list
val render : row list -> string
