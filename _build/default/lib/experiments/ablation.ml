open Prelude

type row = {
  solver : string;
  solved : int;
  infeasible : int;
  overruns : int;
  mean_time : float;
}

let solvers () =
  [
    Runner.csp1;
    Runner.csp1_wdeg;
    Runner.csp1_sat;
    Runner.csp2_generic ~symmetry:false ();
    Runner.csp2_generic ~symmetry:true ();
    Runner.csp2_generic ~symmetry:true ~dc_value_order:true ();
    List.nth Runner.csp2_variants 4;
    Runner.local_search;
  ]

let solver_count = List.length (solvers ())

let run ?(progress = fun _ -> ()) (config : Config.t) =
  let config = { config with Config.instances = min config.Config.instances 100 } in
  let params = Campaign.generation_params config in
  let instances =
    Gen.Generator.batch ~seed:(config.Config.seed + 7777) ~count:config.Config.instances params
  in
  List.map
    (fun solver ->
      let solved = ref 0 and infeasible = ref 0 and overruns = ref 0 in
      let times = Welford.create () in
      Array.iteri
        (fun idx (ts, m) ->
          let r = Runner.run_one solver ts ~m ~limit_s:config.Config.limit_s ~seed:idx in
          (match r.Runner.outcome with
          | Encodings.Outcome.Feasible _ -> incr solved
          | Encodings.Outcome.Infeasible -> incr infeasible
          | Encodings.Outcome.Limit | Encodings.Outcome.Memout _ -> incr overruns);
          Welford.add times r.Runner.time_s;
          progress idx)
        instances;
      {
        solver = solver.Runner.name;
        solved = !solved;
        infeasible = !infeasible;
        overruns = !overruns;
        mean_time = Welford.mean times;
      })
    (solvers ())

let render rows =
  let table =
    Ascii_table.create ~headers:[ "solver"; "solved"; "infeasible"; "overruns"; "t_mean" ]
  in
  Ascii_table.set_align table
    [ Ascii_table.Left; Ascii_table.Right; Ascii_table.Right; Ascii_table.Right; Ascii_table.Right ];
  List.iter
    (fun r ->
      Ascii_table.add_row table
        [
          r.solver;
          string_of_int r.solved;
          string_of_int r.infeasible;
          string_of_int r.overruns;
          Printf.sprintf "%.4f" r.mean_time;
        ])
    rows;
  "Ablations (Table I workload): encoding vs search-rule contributions\n"
  ^ Ascii_table.render table
