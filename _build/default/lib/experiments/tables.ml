open Prelude
open Rt_model

type overrun_row = {
  label : string;
  per_solver : (string * int) list;
  total : int;
}

let overruns_in (c : Campaign.t) ~belongs =
  let count = Array.length c.instances in
  List.mapi
    (fun si solver ->
      let overruns = ref 0 in
      for inst = 0 to count - 1 do
        if belongs inst && c.runs.(si).(inst).Runner.overrun then incr overruns
      done;
      (solver.Runner.name, !overruns))
    c.solvers

let class_size (c : Campaign.t) ~belongs =
  let size = ref 0 in
  Array.iteri (fun inst _ -> if belongs inst then incr size) c.instances;
  !size

let table1 (c : Campaign.t) =
  let solved inst = c.solved_by_any.(inst) in
  let unsolved inst = not c.solved_by_any.(inst) in
  [
    { label = "solved"; per_solver = overruns_in c ~belongs:solved; total = class_size c ~belongs:solved };
    {
      label = "unsolved";
      per_solver = overruns_in c ~belongs:unsolved;
      total = class_size c ~belongs:unsolved;
    };
  ]

let table2 (c : Campaign.t) =
  let filtered inst = (not c.solved_by_any.(inst)) && c.filtered.(inst) in
  let unfiltered inst = (not c.solved_by_any.(inst)) && not c.filtered.(inst) in
  let rows =
    [
      {
        label = "filtered";
        per_solver = overruns_in c ~belongs:filtered;
        total = class_size c ~belongs:filtered;
      };
      {
        label = "unfiltered";
        per_solver = overruns_in c ~belongs:unfiltered;
        total = class_size c ~belongs:unfiltered;
      };
    ]
  in
  let proved = ref 0 in
  Array.iteri (fun inst p -> if p && unfiltered inst then incr proved) c.proved_infeasible;
  (rows, !proved)

type bucket_row = { r_lo : float; r_hi : float; count : int; mean_time : float }

let table3 ?(bucket = 0.1) (c : Campaign.t) =
  let nbuckets = int_of_float (ceil (2.0 /. bucket)) in
  let counts = Array.make nbuckets 0 in
  let times = Array.init nbuckets (fun _ -> Welford.create ()) in
  Array.iteri
    (fun inst r ->
      let b = Intmath.clamp ~lo:0 ~hi:(nbuckets - 1) (int_of_float (r /. bucket)) in
      counts.(b) <- counts.(b) + 1;
      List.iteri (fun si _ -> Welford.add times.(b) c.runs.(si).(inst).Runner.time_s) c.solvers)
    c.ratios;
  List.filter_map
    (fun b ->
      if counts.(b) = 0 then None
      else
        Some
          {
            r_lo = float_of_int b *. bucket;
            r_hi = float_of_int (b + 1) *. bucket;
            count = counts.(b);
            mean_time = Welford.mean times.(b);
          })
    (List.init nbuckets Fun.id)

type table4_cell = { solved_pct : float; mean_time : float; memouts : int }

type table4_row = {
  n : int;
  mean_r : float;
  mean_m : float;
  mean_hyperperiod : float;
  csp1 : table4_cell;
  csp2_dc : table4_cell;
}

let table4 ?(progress = fun _ -> ()) (config : Config.t) =
  let dc = List.nth Runner.csp2_variants 4 in
  List.mapi
    (fun step n ->
      let params =
        Gen.Generator.default ~n ~m:Gen.Generator.Min_processors ~tmax:15
      in
      let instances =
        Gen.Generator.batch ~seed:(config.Config.seed + (1000 * n)) ~count:config.Config.table4_instances
          params
      in
      let r_acc = Welford.create () and m_acc = Welford.create () and t_acc = Welford.create () in
      let run_cell solver =
        let solved = ref 0 and memouts = ref 0 in
        let time_acc = Welford.create () in
        Array.iteri
          (fun idx (ts, m) ->
            let run = Runner.run_one solver ts ~m ~limit_s:config.Config.limit_s ~seed:idx in
            (match run.Runner.outcome with
            | Encodings.Outcome.Feasible _ -> incr solved
            | Encodings.Outcome.Memout _ -> incr memouts
            | Encodings.Outcome.Infeasible | Encodings.Outcome.Limit -> ());
            Welford.add time_acc run.Runner.time_s)
          instances;
        {
          solved_pct = 100. *. float_of_int !solved /. float_of_int (Array.length instances);
          mean_time = Welford.mean time_acc;
          memouts = !memouts;
        }
      in
      Array.iter
        (fun (ts, m) ->
          Welford.add r_acc (Taskset.utilization_ratio ts ~m);
          Welford.add m_acc (float_of_int m);
          Welford.add t_acc (float_of_int (Taskset.hyperperiod ts)))
        instances;
      let csp1 = run_cell Runner.csp1 in
      let csp2_dc = run_cell dc in
      progress step;
      {
        n;
        mean_r = Welford.mean r_acc;
        mean_m = Welford.mean m_acc;
        mean_hyperperiod = Welford.mean t_acc;
        csp1;
        csp2_dc;
      })
    config.Config.table4_sizes

(* ------------------------------------------------------------------ *)
(* Rendering.                                                          *)

let render_overruns ~title rows =
  match rows with
  | [] -> title ^ ": (no data)\n"
  | first :: _ ->
    let headers = "# overruns" :: List.map fst first.per_solver @ [ "Total" ] in
    let table = Ascii_table.create ~headers in
    Ascii_table.set_align table (Ascii_table.Left :: List.map (fun _ -> Ascii_table.Right) (List.tl headers));
    List.iter
      (fun row ->
        Ascii_table.add_row table
          ((row.label :: List.map (fun (_, v) -> string_of_int v) row.per_solver)
          @ [ string_of_int row.total ]))
      rows;
    title ^ "\n" ^ Ascii_table.render table

let render_table1 rows = render_overruns ~title:"Table I: runs reaching the time limit" rows

let render_table2 (rows, proved) =
  render_overruns ~title:"Table II: unsolved runs reaching the time limit" rows
  ^ Printf.sprintf "unfiltered instances proved unsolvable: %d\n" proved

let render_bucket_rows rows =
  let table = Ascii_table.create ~headers:[ "r_min-r_max"; "#instances"; "t_res" ] in
  List.iter
    (fun { r_lo; r_hi; count; mean_time } ->
      Ascii_table.add_row table
        [ Printf.sprintf "%.1f-%.1f" r_lo r_hi; string_of_int count; Printf.sprintf "%.4f" mean_time ])
    rows;
  "Table III: instance distribution and mean resolution time by utilization ratio\n"
  ^ Ascii_table.render table

let render_table4 rows =
  let table =
    Ascii_table.create
      ~headers:
        [ "n"; "r"; "m"; "T(1000)"; "CSP1 solved"; "CSP1 t"; "CSP1 memout"; "+(D-C) solved"; "+(D-C) t" ]
  in
  List.iter
    (fun row ->
      let cell c = Printf.sprintf "%.0f%%" c.solved_pct in
      let time c = Printf.sprintf "%.4f" c.mean_time in
      Ascii_table.add_row table
        [
          string_of_int row.n;
          Printf.sprintf "%.2f" row.mean_r;
          Printf.sprintf "%.2f" row.mean_m;
          Printf.sprintf "%.2f" (row.mean_hyperperiod /. 1000.);
          cell row.csp1;
          time row.csp1;
          string_of_int row.csp1.memouts;
          cell row.csp2_dc;
          time row.csp2_dc;
        ])
    rows;
  "Table IV: growing the number of tasks (Tmax=15, m = min processors)\n"
  ^ Ascii_table.render table

let figure1 () =
  let windows = Windows.build Examples.running_example in
  Format.asprintf
    "Figure 1: availability intervals of the running example over one hyperperiod@.%a@."
    Windows.pp_figure windows
