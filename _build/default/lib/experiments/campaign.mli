(** The shared experimental campaign behind Tables I, II and III.

    The paper generates 500 random problems (m = 5, n = 10, Tmax = 7,
    unsolvable instances included on purpose) and gives each of six solvers
    a fixed time limit per instance; the three tables are different views
    of that single run matrix.  This module produces the matrix once. *)

type t = {
  config : Config.t;
  solvers : Runner.solver list;
  instances : (Rt_model.Taskset.t * int) array;
  ratios : float array;  (** Utilization ratio r per instance. *)
  filtered : bool array;  (** The paper's r > 1 pre-filter. *)
  runs : Runner.run array array;  (** [solver index].(instance index). *)
  solved_by_any : bool array;
  proved_infeasible : bool array;  (** Some solver returned [Infeasible]. *)
}

val generation_params : Config.t -> Gen.Generator.params
(** m = 5, n = 10, Tmax = 7 (Section VII-C). *)

val run : ?solvers:Runner.solver list -> ?progress:(int -> unit) -> Config.t -> t
(** Default solvers: {!Runner.table1_solvers}.  [progress] is called with
    each completed instance index (for long campaigns).
    Solver verdicts are cross-checked: a [Feasible]/[Infeasible] clash
    raises [Failure] — the executable analogue of the paper's remark that
    comparing the two implementations exposed rare bugs. *)
