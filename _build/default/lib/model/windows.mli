(** Availability windows over one hyperperiod, as cyclic slot sets.

    The paper's interval [I_{i,k} = [O_i+(k−1)T_i, O_i+(k−1)T_i+D_i−1]]
    (Section II) lives on the infinite timeline; folding it modulo the
    hyperperiod [T] gives the slot set the CSP variables range over.  With a
    nonzero offset the last window of a task wraps around the hyperperiod
    boundary — e.g. job 3 of τ₂ in the paper's running example covers
    absolute slots 9..12, i.e. cyclic slots {9,10,11,0}.  All encodings, the
    dedicated solver and the verifier use this module so that they agree on
    the wrap-around semantics.

    For constrained-deadline systems the windows of one task are pairwise
    disjoint modulo T; {!build} checks this invariant.

    Offsets are folded: the cyclic pattern only depends on [O_i mod T_i], so
    windows are laid out with that effective offset.  The resulting periodic
    schedule describes the steady state; when [O_i >= T_i] the slots the
    pattern grants to τ_i before its first actual release are simply idled
    on the real timeline, which cannot violate any deadline. *)

type job = {
  task : int;  (** Owning task id. *)
  index : int;  (** Job number within the hyperperiod, 0-based. *)
  release : int;  (** Absolute release instant [O + index·T]. *)
  slots : int array;  (** Cyclic slots [release+d mod T], for d < D, in
                          release order (so a wrapped window lists its
                          pre-boundary slots first). *)
}

type t

val build : Taskset.t -> t
(** Precompute every job's slot set.
    @raise Invalid_argument if the task set is not constrained-deadline
    (reduce with {!Clone} first) or if some task's windows overlap. *)

val taskset : t -> Taskset.t
val horizon : t -> int
(** The hyperperiod [T]. *)

val jobs : t -> job array
(** All jobs, grouped by task, job index ascending within a task. *)

val job_count : t -> int

val jobs_of_task : t -> int -> job array
(** Jobs of one task, index ascending. *)

val job_at : t -> task:int -> time:int -> job option
(** The unique job of [task] whose cyclic window contains slot
    [time mod T], if any. *)

val job_id_at : t -> task:int -> time:int -> int
(** Like {!job_at} but returns the job's global index in {!jobs}, or [-1]. *)

val global_index : t -> task:int -> index:int -> int
(** Global position of a (task, job index) pair inside {!jobs}. *)

val available_tasks : t -> time:int -> int list
(** Tasks having a window containing the slot, ascending ids. *)

val slot_load : t -> int array
(** For each slot, the number of tasks whose window covers it — an upper
    bound on achievable parallelism used for quick infeasibility checks. *)

val pp_figure : Format.formatter -> t -> unit
(** ASCII rendering of the availability pattern in the style of the paper's
    Figure 1: one row per task, ['#'] marking available slots. *)
