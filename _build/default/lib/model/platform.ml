type kind =
  | Identical
  | Uniform of int array
  | Heterogeneous of int array array

type t = { m : int; kind : kind }

let identical ~m =
  if m < 1 then invalid_arg "Platform.identical: m must be >= 1";
  { m; kind = Identical }

let uniform ~speeds =
  let m = Array.length speeds in
  if m = 0 then invalid_arg "Platform.uniform: no processors";
  if Array.exists (fun s -> s < 1) speeds then
    invalid_arg "Platform.uniform: speeds must be >= 1";
  { m; kind = Uniform (Array.copy speeds) }

let heterogeneous ~rates =
  let n = Array.length rates in
  if n = 0 then invalid_arg "Platform.heterogeneous: no tasks";
  let m = Array.length rates.(0) in
  if m = 0 then invalid_arg "Platform.heterogeneous: no processors";
  Array.iteri
    (fun i row ->
      if Array.length row <> m then invalid_arg "Platform.heterogeneous: ragged matrix";
      if Array.exists (fun r -> r < 0) row then
        invalid_arg "Platform.heterogeneous: negative rate";
      if Array.for_all (fun r -> r = 0) row then
        invalid_arg
          (Printf.sprintf "Platform.heterogeneous: task %d cannot run anywhere" i))
    rates;
  { m; kind = Heterogeneous (Array.map Array.copy rates) }

let processors t = t.m

let rate t ~task ~proc =
  if proc < 0 || proc >= t.m then invalid_arg "Platform.rate: bad processor";
  match t.kind with
  | Identical -> 1
  | Uniform speeds -> speeds.(proc)
  | Heterogeneous rates ->
    if task < 0 || task >= Array.length rates then invalid_arg "Platform.rate: bad task";
    rates.(task).(proc)

let is_identical t = match t.kind with Identical -> true | Uniform _ | Heterogeneous _ -> false
let can_run t ~task ~proc = rate t ~task ~proc > 0

let eligible_processors t ~task =
  List.filter (fun proc -> can_run t ~task ~proc) (List.init t.m Fun.id)

let quality t ts ~proc =
  let n = Taskset.size ts in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (float_of_int (rate t ~task:i ~proc) *. Task.utilization (Taskset.task ts i))
  done;
  !acc

let same_kind t ~proc ~proc' ~tasks =
  let rec go i = i >= tasks || (rate t ~task:i ~proc = rate t ~task:i ~proc:proc' && go (i + 1)) in
  go 0

let pp ppf t =
  match t.kind with
  | Identical -> Format.fprintf ppf "%d identical processors" t.m
  | Uniform speeds ->
    Format.fprintf ppf "%d uniform processors (speeds %a)" t.m
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
      (Array.to_list speeds)
  | Heterogeneous rates ->
    Format.fprintf ppf "%d heterogeneous processors (%d tasks)" t.m (Array.length rates)
