(** Task systems τ = {τ₁, …, τₙ}.

    A task set owns its tasks' identifiers (0-based, contiguous) and caches
    the hyperperiod [T = lcm(T_i)], over which any feasible schedule of a
    constrained-deadline system can be made periodic (paper, Section III). *)

type t

val of_tasks : Task.t list -> t
(** Re-identifies the tasks as 0,1,…,n−1 in list order.
    @raise Invalid_argument on the empty list or on hyperperiod overflow. *)

val of_tuples : (int * int * int * int) list -> t
(** Convenience: each element is [(O, C, D, T)]. *)

val size : t -> int
val task : t -> int -> Task.t
val tasks : t -> Task.t array
(** A fresh array; mutating it does not affect the task set. *)

val hyperperiod : t -> int
(** [lcm] of the periods; written [T] in the paper. *)

val utilization : t -> float
(** [U = Σ C_i / T_i]. *)

val utilization_num_den : t -> int * int
(** [U] as an exact fraction (numerator, denominator) over the hyperperiod:
    [(Σ C_i · T/T_i, T)].  Avoids float rounding in the [r > 1] filter. *)

val utilization_ratio : t -> m:int -> float
(** [r = U / m], the paper's difficulty measure. *)

val min_processors : t -> int
(** [⌈U⌉]: the smallest m not excluded by the [r > 1] necessary condition
    (used to pick m in the paper's Table IV experiment). *)

val is_constrained : t -> bool
(** All deadlines constrained ([D_i <= T_i]). *)

val jobs_per_hyperperiod : t -> int -> int
(** [jobs_per_hyperperiod ts i] is [T / T_i], the number of jobs task [i]
    releases in one hyperperiod. *)

val total_demand : t -> int
(** [Σ_i C_i · T/T_i]: total execution units required per hyperperiod. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
