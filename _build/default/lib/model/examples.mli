(** Canned task systems used across documentation, tests and examples. *)

val running_example : Taskset.t
(** The paper's Example 1: n = 3, tasks (0,1,2,2), (1,3,4,4), (0,2,2,3);
    hyperperiod 12, meant for m = 2 processors. *)

val running_example_m : int
(** The processor count (2) the paper uses with {!running_example}. *)

val edf_trap : Taskset.t
(** A feasible 3-task system on 2 processors that global EDF (deadline ties
    broken by task id) misses: three synchronous tasks (0,2,3,3).  Each slot
    can host two tasks and the demand exactly fills 2×3 slots, but EDF runs
    τ1 and τ2 twice in a row, leaving τ3 a single slot.  Demonstrates why
    systematic search is needed (cf. the scheduling anomalies discussed in
    the paper's introduction). *)

val edf_trap_m : int

val dedicated : Taskset.t * Platform.t
(** A heterogeneous example in the style of Section VI-A: 2 processors, one
    of which cannot serve task 3 at all ([s_{3,1} = 0]) while processor 2 is
    twice as fast for task 1. *)

val arbitrary_deadline : Taskset.t
(** A small arbitrary-deadline system ([D_1 = 5 > T_1 = 3]) exercising the
    clone transform of Section VI-B. *)
