(** Concrete periodic schedules σ over one hyperperiod.

    A schedule stores, for each processor [j] and slot [t], the task
    scheduled there ([idle] = −1 when none) — exactly the paper's
    [σ_j(t)] restricted to [t ∈ [0, T)], to be repeated forever
    (Theorem 1).  The representation makes condition C2 (at most one task
    per processor per instant) hold by construction. *)

type t

val idle : int
(** The "no task" value, −1. *)

val create : m:int -> horizon:int -> t
(** All-idle schedule. *)

val m : t -> int
val horizon : t -> int

val get : t -> proc:int -> time:int -> int
(** Task at [(proc, time mod horizon)], or {!idle}. *)

val set : t -> proc:int -> time:int -> int -> unit
(** Assign a task id (or {!idle}); bounds-checked. *)

val copy : t -> t

val of_cells : int array array -> t
(** [of_cells c] wraps [c.(proc).(time)] (copied; rows must be rectangular
    and non-empty). *)

val tasks_at : t -> time:int -> int list
(** Distinct non-idle tasks running in the slot, ascending. *)

val proc_of_task_at : t -> task:int -> time:int -> int option
(** First processor running the task in the slot, if any. *)

val units_of_task : t -> task:int -> int
(** Total slots the task occupies over the hyperperiod (unit rates). *)

val busy_slots : t -> int
(** Total non-idle (processor, slot) cells. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Grid rendering: one row per processor, columns are slots, task ids are
    printed 1-based as in the paper ('.' = idle). *)

type segment = { task : int; proc : int; start : int; len : int }
(** A maximal run of consecutive slots of one task on one processor
    (not merged across the hyperperiod wrap). *)

val segments : t -> segment list
(** All busy segments, ordered by processor then start slot — the compact
    form Gantt-style renderings and humans prefer over per-slot grids. *)

val pp_gantt : Format.formatter -> t -> unit
(** Task-major Gantt rendering built from {!segments}: one row per task,
    bars showing when and where it runs, e.g.

    {v
    τ1   [P1 0-1] [P1 4-5]
    τ2   [P2 2-3]
    v} *)
