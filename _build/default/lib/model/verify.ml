type violation =
  | Bad_task of { proc : int; time : int; value : int }
  | Out_of_window of { proc : int; time : int; task : int }
  | Parallelism of { time : int; task : int; procs : int * int }
  | Zero_rate of { proc : int; time : int; task : int }
  | Wrong_amount of { task : int; job : int; expected : int; got : int }

let pp_violation ppf = function
  | Bad_task { proc; time; value } ->
    Format.fprintf ppf "invalid task id %d on P%d at t=%d" value (proc + 1) time
  | Out_of_window { proc; time; task } ->
    Format.fprintf ppf "τ%d runs on P%d at t=%d outside any availability window" (task + 1)
      (proc + 1) time
  | Parallelism { time; task; procs = p, p' } ->
    Format.fprintf ppf "τ%d runs on both P%d and P%d at t=%d (C3)" (task + 1) (p + 1) (p' + 1)
      time
  | Zero_rate { proc; time; task } ->
    Format.fprintf ppf "τ%d scheduled on P%d at t=%d but s=0" (task + 1) (proc + 1) time
  | Wrong_amount { task; job; expected; got } ->
    Format.fprintf ppf "job %d of τ%d received %d units instead of %d (C4)" job (task + 1) got
      expected

let check ?platform ?(max_violations = 32) ts sched =
  let n = Taskset.size ts in
  let m = Schedule.m sched in
  let horizon = Schedule.horizon sched in
  if horizon <> Taskset.hyperperiod ts then
    invalid_arg "Verify.check: schedule horizon differs from the hyperperiod";
  let platform = match platform with Some p -> p | None -> Platform.identical ~m in
  if Platform.processors platform <> m then
    invalid_arg "Verify.check: platform processor count differs from the schedule";
  let jm = Jobmap.create ts in
  let received = Array.make (Jobmap.job_count jm) 0 in
  let violations = ref [] in
  let count = ref 0 in
  let report v =
    if !count < max_violations then violations := v :: !violations;
    incr count
  in
  let proc_of = Array.make n (-1) in
  for time = 0 to horizon - 1 do
    Array.fill proc_of 0 n (-1);
    for proc = 0 to m - 1 do
      let v = Schedule.get sched ~proc ~time in
      if v <> Schedule.idle then
        if v < 0 || v >= n then report (Bad_task { proc; time; value = v })
        else begin
          (if proc_of.(v) <> -1 then
             report (Parallelism { time; task = v; procs = (proc_of.(v), proc) })
           else proc_of.(v) <- proc);
          if not (Platform.can_run platform ~task:v ~proc) then
            report (Zero_rate { proc; time; task = v });
          let g = Jobmap.global_job_at jm ~task:v ~time in
          if g = -1 then report (Out_of_window { proc; time; task = v })
          else received.(g) <- received.(g) + Platform.rate platform ~task:v ~proc
        end
    done
  done;
  (* C4: exact amounts per job. *)
  for task = 0 to n - 1 do
    let expected = (Taskset.task ts task).wcet in
    let base = Jobmap.first_of_task jm task in
    for k = 0 to Jobmap.jobs_of_task jm task - 1 do
      let got = received.(base + k) in
      if got <> expected then report (Wrong_amount { task; job = k; expected; got })
    done
  done;
  if !count = 0 then Ok () else Error (List.rev !violations)

let is_feasible ?platform ts sched =
  match check ?platform ts sched with Ok () -> true | Error _ -> false
