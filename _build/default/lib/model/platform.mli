(** Multiprocessor platforms (Section I's three platform classes).

    Execution rates are integers: a job of task i running one slot on
    processor j completes [rate i j] units of its WCET.  [rate i j = 0]
    models a dedicated processor that cannot serve the task at all —
    the paper's motivation for the heterogeneous model. *)

type t

val identical : m:int -> t
(** [m] unit-speed processors (MGRTS-ID, Sections IV–V). *)

val uniform : speeds:int array -> t
(** Processor [j] completes [speeds.(j)] units per slot, for every task.
    @raise Invalid_argument on empty or non-positive speeds. *)

val heterogeneous : rates:int array array -> t
(** [rates.(i).(j)] is the execution rate of task [i] on processor [j]
    (Section VI-A).  Rows must be non-empty, rectangular and non-negative,
    and every task must have at least one positive rate.
    @raise Invalid_argument otherwise. *)

val processors : t -> int
(** The number m of processors. *)

val rate : t -> task:int -> proc:int -> int
(** Execution rate; [identical] and [uniform] platforms accept any task
    index, heterogeneous ones require [task] within the rate matrix. *)

val is_identical : t -> bool

val can_run : t -> task:int -> proc:int -> bool
(** [rate > 0]. *)

val eligible_processors : t -> task:int -> int list
(** Processors with positive rate for the task, ascending. *)

val quality : t -> Taskset.t -> proc:int -> float
(** The paper's processor quality [Q(P_j) = Σ_i s_{i,j} · C_i/T_i]
    (Section VI-A2), used to order variables on heterogeneous platforms. *)

val same_kind : t -> proc:int -> proc':int -> tasks:int -> bool
(** True when the two processors have equal rates for all [tasks] task
    indices — the [P_j ≈ P_j'] relation restricting the symmetry-breaking
    rule (13) to groups of identical processors. *)

val pp : Format.formatter -> t -> unit
