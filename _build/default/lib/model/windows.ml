type job = { task : int; index : int; release : int; slots : int array }

type t = {
  taskset : Taskset.t;
  horizon : int;
  jobs : job array;
  first_of_task : int array;  (* global index of job 0 of each task *)
  job_of_slot : int array array;  (* [task].(slot) = job index or -1 *)
}

let build ts =
  if not (Taskset.is_constrained ts) then
    invalid_arg "Windows.build: arbitrary-deadline task set (apply Clone.transform first)";
  let horizon = Taskset.hyperperiod ts in
  let n = Taskset.size ts in
  let first_of_task = Array.make n 0 in
  let job_of_slot = Array.init n (fun _ -> Array.make horizon (-1)) in
  let jobs = ref [] in
  let global = ref 0 in
  for i = 0 to n - 1 do
    first_of_task.(i) <- !global;
    let task = Taskset.task ts i in
    let count = horizon / task.period in
    (* Fold the offset into the hyperperiod: the cyclic pattern only depends
       on [O mod T_i]; see the .mli on steady-state semantics. *)
    let offset = task.offset mod task.period in
    for k = 0 to count - 1 do
      let release = offset + (k * task.period) in
      let slots =
        Array.init task.deadline (fun d -> Prelude.Intmath.imod (release + d) horizon)
      in
      Array.iter
        (fun s ->
          if job_of_slot.(i).(s) <> -1 then
            invalid_arg "Windows.build: overlapping windows within one task";
          job_of_slot.(i).(s) <- k)
        slots;
      jobs := { task = i; index = k; release; slots } :: !jobs;
      incr global
    done
  done;
  { taskset = ts; horizon; jobs = Array.of_list (List.rev !jobs); first_of_task; job_of_slot }

let taskset t = t.taskset
let horizon t = t.horizon
let jobs t = t.jobs
let job_count t = Array.length t.jobs

let global_index t ~task ~index = t.first_of_task.(task) + index

let jobs_of_task t i =
  let count = Taskset.jobs_per_hyperperiod t.taskset i in
  Array.init count (fun k -> t.jobs.(global_index t ~task:i ~index:k))

let job_id_at t ~task ~time =
  let slot = Prelude.Intmath.imod time t.horizon in
  let k = t.job_of_slot.(task).(slot) in
  if k = -1 then -1 else global_index t ~task ~index:k

let job_at t ~task ~time =
  let g = job_id_at t ~task ~time in
  if g = -1 then None else Some t.jobs.(g)

let available_tasks t ~time =
  let slot = Prelude.Intmath.imod time t.horizon in
  let n = Taskset.size t.taskset in
  let rec go i acc = if i < 0 then acc else go (i - 1) (if t.job_of_slot.(i).(slot) <> -1 then i :: acc else acc) in
  go (n - 1) []

let slot_load t =
  let load = Array.make t.horizon 0 in
  Array.iter
    (fun job -> Array.iter (fun s -> load.(s) <- load.(s) + 1) job.slots)
    t.jobs;
  load

let pp_figure ppf t =
  let n = Taskset.size t.taskset in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "t    ";
  for s = 0 to t.horizon - 1 do
    Format.fprintf ppf "%2d " s
  done;
  Format.fprintf ppf "@,";
  for i = 0 to n - 1 do
    Format.fprintf ppf "τ%-3d " (i + 1);
    for s = 0 to t.horizon - 1 do
      let mark = if t.job_of_slot.(i).(s) <> -1 then " #" else " ." in
      Format.fprintf ppf "%s " mark
    done;
    Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
