(** Arithmetic job lookup — the memory-lean sibling of {!Windows}.

    {!Windows.build} materializes a per-task, per-slot table, which is
    perfect for the CSP encodings (bounded instance sizes) but would cost
    gigabytes on the paper's Table IV extremes (n = 256, T = 360360).  This
    module answers the same queries in O(1) arithmetic with O(n) memory, and
    is what the dedicated CSP2 solver and the schedule verifier use.

    Semantics match {!Windows} exactly (offsets folded modulo the period,
    windows cyclic modulo the hyperperiod); the agreement is property-tested
    in [test/test_model.ml]. *)

type t

val create : Taskset.t -> t
(** @raise Invalid_argument on non-constrained-deadline task sets. *)

val taskset : t -> Taskset.t
val horizon : t -> int

val job_count : t -> int
(** Total jobs in one hyperperiod, [Σ_i T/T_i]. *)

val jobs_of_task : t -> int -> int
val first_of_task : t -> int -> int
(** Global job index of job 0 of the task; jobs of one task are contiguous. *)

val local_job_at : t -> task:int -> time:int -> int
(** Job index [k] (0-based, within the task) whose cyclic window contains
    slot [time mod T], or [-1]. *)

val global_job_at : t -> task:int -> time:int -> int
(** Global job index version of {!local_job_at}, or [-1]. *)

val release : t -> task:int -> k:int -> int
(** Folded release instant of job [k] of the task, in [[0, T)] for [k] = 0
    (later jobs add multiples of the period and may exceed [T]). *)

val window_last : t -> task:int -> k:int -> int
(** Last slot (un-folded) of the window: [release + D − 1]. *)

val remaining_window_slots : t -> task:int -> k:int -> from:int -> int
(** Number of window slots at cyclic positions whose *sweep order* is
    [>= from], where the sweep enumerates slot [release], [release+1], …
    un-folded.  Used by the chronological solver's slack pruning: [from] is
    an un-folded instant in [[release, release + D]]. *)
