(** Periodic real-time tasks.

    A task is the 4-tuple [(O, C, D, T)] of the paper (Section II): offset,
    worst-case execution time, relative deadline and period, all integers
    (time is discrete).  Job [k] (counted from 0) is released at
    [O + k*T] and must receive [C] units of execution before
    [O + k*T + D]. *)

type t = private {
  id : int;  (** Position in the owning task set; also the CSP2 value. *)
  offset : int;  (** [O_i >= 0]. *)
  wcet : int;  (** [C_i >= 1]. *)
  deadline : int;  (** Relative deadline [D_i >= C_i]. *)
  period : int;  (** [T_i >= 1]. *)
}

val make : ?id:int -> offset:int -> wcet:int -> deadline:int -> period:int -> unit -> t
(** @raise Invalid_argument unless [0 <= O], [1 <= C <= D] and [1 <= T].
    [D > T] is allowed (arbitrary-deadline systems); use {!Clone} to reduce
    such systems to constrained-deadline ones. *)

val with_id : t -> int -> t
(** Same parameters under a new identifier. *)

val is_constrained : t -> bool
(** [D_i <= T_i]. *)

val utilization : t -> float
(** [C_i / T_i]. *)

val density : t -> float
(** [C_i / min(D_i, T_i)]. *)

val laxity : t -> int
(** [D_i - C_i], the (D−C) quantity driving the paper's best heuristic. *)

val release : t -> int -> int
(** [release task k] is the release instant of job [k] (0-based). *)

val abs_deadline : t -> int -> int
(** [abs_deadline task k] is the first instant after which job [k] may no
    longer execute, i.e. [release + D]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
