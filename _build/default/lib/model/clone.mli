(** The clone transform for arbitrary-deadline systems (Section VI-B).

    When [D_i > T_i], up to [k_i = ⌈D_i/T_i⌉] jobs of τ_i may be live
    simultaneously, which the CSP variables (one value per task) cannot
    express.  The paper's fix: replace τ_i by [k_i] {e clones}
    τ_{i,i'} with

    - [O_{i,i'} = O_i + (i'−1)·T_i]  (staggered starts),
    - [C_{i,i'} = C_i], [D_{i,i'} = D_i]  (unchanged),
    - [T_{i,i'} = k_i·T_i]  (stretched so each clone is constrained).

    Solving the cloned (constrained-deadline) system and mapping clone ids
    back yields a feasible schedule of the original system. *)

type t

val transform : Taskset.t -> t
(** Clone every task (tasks with [D_i <= T_i] get a single clone equal to
    themselves, so the transform is the identity on constrained systems). *)

val cloned : t -> Taskset.t
(** The constrained-deadline clone system. *)

val original : t -> Taskset.t

val origin : t -> int -> int
(** [origin t c] is the original task id of clone [c]. *)

val clone_count : t -> int -> int
(** [clone_count t i] is [k_i] for original task [i]. *)

val clones_of : t -> int -> int list
(** Clone ids of an original task, ascending. *)

val map_schedule : t -> Schedule.t -> Schedule.t
(** Rewrite a feasible schedule of the clone system into a schedule of the
    original system over the original hyperperiod.  The clone hyperperiod is
    a multiple of the original's; the cloned schedule is *not* generally
    periodic with the original period, so the result keeps the clone
    system's horizon (a valid period for the original system too).

    @raise Invalid_argument if the schedule horizon differs from the clone
    system's hyperperiod. *)

val map_platform : t -> Platform.t -> Platform.t
(** Lift a (possibly heterogeneous) platform for the original system to the
    clone system: a clone inherits its origin's rates. *)
