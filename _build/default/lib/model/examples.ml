let running_example =
  Taskset.of_tuples [ (0, 1, 2, 2); (1, 3, 4, 4); (0, 2, 2, 3) ]

let running_example_m = 2

let edf_trap = Taskset.of_tuples [ (0, 2, 3, 3); (0, 2, 3, 3); (0, 2, 3, 3) ]
let edf_trap_m = 2

let dedicated =
  let ts = Taskset.of_tuples [ (0, 2, 4, 4); (0, 3, 6, 6); (0, 2, 3, 4) ] in
  let rates = [| [| 1; 2 |]; [| 1; 1 |]; [| 0; 1 |] |] in
  (ts, Platform.heterogeneous ~rates)

let arbitrary_deadline = Taskset.of_tuples [ (0, 2, 5, 3); (0, 1, 2, 2) ]
