type t = {
  taskset : Taskset.t;
  horizon : int;
  offsets : int array;  (* folded offsets, O_i mod T_i *)
  first : int array;  (* prefix sums of jobs per task; length n+1 *)
}

let create ts =
  if not (Taskset.is_constrained ts) then
    invalid_arg "Jobmap.create: arbitrary-deadline task set (apply Clone.transform first)";
  let n = Taskset.size ts in
  let horizon = Taskset.hyperperiod ts in
  let offsets = Array.init n (fun i -> (Taskset.task ts i).offset mod (Taskset.task ts i).period) in
  let first = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    first.(i + 1) <- first.(i) + (horizon / (Taskset.task ts i).period)
  done;
  { taskset = ts; horizon; offsets; first }

let taskset t = t.taskset
let horizon t = t.horizon
let job_count t = t.first.(Taskset.size t.taskset)
let jobs_of_task t i = t.first.(i + 1) - t.first.(i)
let first_of_task t i = t.first.(i)

let local_job_at t ~task ~time =
  let tk = Taskset.task t.taskset task in
  let offset = t.offsets.(task) in
  let count = jobs_of_task t task in
  let slot = Prelude.Intmath.imod time t.horizon in
  (* A cyclic slot corresponds to absolute instants [slot] and [slot + T];
     with constrained deadlines at most one of the two hits a window. *)
  let try_abs abs =
    if abs < offset then -1
    else
      let k = (abs - offset) / tk.period in
      if k < count && abs - (offset + (k * tk.period)) < tk.deadline then k else -1
  in
  let k = try_abs slot in
  if k >= 0 then k else try_abs (slot + t.horizon)

let global_job_at t ~task ~time =
  let k = local_job_at t ~task ~time in
  if k = -1 then -1 else t.first.(task) + k

let release t ~task ~k = t.offsets.(task) + (k * (Taskset.task t.taskset task).period)
let window_last t ~task ~k = release t ~task ~k + (Taskset.task t.taskset task).deadline - 1

let remaining_window_slots t ~task ~k ~from =
  let last = window_last t ~task ~k in
  if from > last then 0 else last - from + 1
