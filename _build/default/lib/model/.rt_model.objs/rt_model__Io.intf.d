lib/model/io.mli: Schedule Taskset
