lib/model/analysis.ml: Array Task Taskset Windows
