lib/model/platform.mli: Format Taskset
