lib/model/clone.mli: Platform Schedule Taskset
