lib/model/examples.ml: Platform Taskset
