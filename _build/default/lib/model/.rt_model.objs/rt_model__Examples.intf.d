lib/model/examples.mli: Platform Taskset
