lib/model/taskset.ml: Array Format List Prelude Task
