lib/model/clone.ml: Array List Platform Prelude Schedule Task Taskset
