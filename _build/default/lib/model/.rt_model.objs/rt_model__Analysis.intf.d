lib/model/analysis.mli: Taskset
