lib/model/jobmap.mli: Taskset
