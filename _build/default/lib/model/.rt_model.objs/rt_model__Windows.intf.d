lib/model/windows.mli: Format Taskset
