lib/model/windows.ml: Array Format List Prelude Taskset
