lib/model/verify.ml: Array Format Jobmap List Platform Schedule Taskset
