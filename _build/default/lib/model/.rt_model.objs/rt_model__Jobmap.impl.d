lib/model/jobmap.ml: Array Prelude Taskset
