lib/model/schedule.ml: Array Format Hashtbl List Prelude Stdlib
