lib/model/metrics.ml: Array Format List Schedule Taskset Windows
