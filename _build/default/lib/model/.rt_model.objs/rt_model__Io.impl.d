lib/model/io.ml: Array Buffer List Printf Schedule String Task Taskset
