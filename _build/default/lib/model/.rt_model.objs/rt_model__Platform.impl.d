lib/model/platform.ml: Array Format Fun List Printf Task Taskset
