lib/model/schedule.mli: Format
