lib/model/metrics.mli: Format Schedule Taskset
