lib/model/verify.mli: Format Platform Schedule Taskset
