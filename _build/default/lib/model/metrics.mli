(** Quality metrics of feasible schedules.

    The CSP solvers stop at the first feasible schedule (the problem "has
    no performance criterion to optimize", Section I) — but not all
    feasible schedules are equal in practice: preemptions and migrations
    have real costs on hardware.  These metrics let users compare the
    schedules different solver paths or heuristics produce, and power the
    migration/preemption columns of the extended benchmark report.

    All counts are over one period of the cyclic schedule, including the
    wrap from the last slot back to slot 0 (the schedule repeats). *)

type t = {
  busy_slots : int;  (** Non-idle (processor, slot) cells. *)
  idle_slots : int;
  preemptions : int;
      (** Times a job stops executing with work remaining (it runs at slot
          [t] but not at [t+1], and its window/job has not just ended). *)
  migrations : int;
      (** Times a task resumes on a different processor than it last ran
          on (job or task migration, Section I's distinction collapsed at
          slot granularity). *)
  max_parallelism : int;  (** Busiest slot. *)
  avg_parallelism : float;
}

val analyze : Taskset.t -> Schedule.t -> t
(** @raise Invalid_argument if the horizon differs from the hyperperiod
    (metrics rely on the cyclic wrap). *)

val pp : Format.formatter -> t -> unit
