type t = { tasks : Task.t array; hyperperiod : int }

let of_tasks l =
  if l = [] then invalid_arg "Taskset.of_tasks: empty task set";
  let tasks = Array.of_list (List.mapi (fun i task -> Task.with_id task i) l) in
  let hyperperiod =
    try Prelude.Intmath.lcm_list (List.map (fun (task : Task.t) -> task.period) l)
    with Prelude.Intmath.Overflow _ -> invalid_arg "Taskset.of_tasks: hyperperiod overflow"
  in
  { tasks; hyperperiod }

let of_tuples l =
  of_tasks
    (List.map (fun (offset, wcet, deadline, period) -> Task.make ~offset ~wcet ~deadline ~period ()) l)

let size t = Array.length t.tasks

let task t i =
  if i < 0 || i >= size t then invalid_arg "Taskset.task: bad index";
  t.tasks.(i)

let tasks t = Array.copy t.tasks
let hyperperiod t = t.hyperperiod

let utilization t = Array.fold_left (fun acc task -> acc +. Task.utilization task) 0. t.tasks

let utilization_num_den t =
  let hp = t.hyperperiod in
  let num =
    Array.fold_left (fun acc (task : Task.t) -> acc + (task.wcet * (hp / task.period))) 0 t.tasks
  in
  (num, hp)

let utilization_ratio t ~m = utilization t /. float_of_int m

let min_processors t =
  let num, den = utilization_num_den t in
  Prelude.Intmath.cdiv num den

let is_constrained t = Array.for_all Task.is_constrained t.tasks

let jobs_per_hyperperiod t i =
  let task = task t i in
  t.hyperperiod / task.period

let total_demand t = fst (utilization_num_den t)

let pp ppf t =
  Format.fprintf ppf "@[<v>taskset (n=%d, T=%d, U=%.3f)@," (size t) t.hyperperiod (utilization t);
  Array.iter (fun task -> Format.fprintf ppf "  %a@," Task.pp task) t.tasks;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
