(** Processor demand analysis for uniprocessor EDF (Baruah–Rosier–Howell).

    For a {e synchronous} constrained-deadline system on one processor, EDF
    feasibility has a classic analytic characterization: the demand bound
    function

    [dbf(t) = Σ_i max(0, ⌊(t − D_i)/T_i⌋ + 1) · C_i]

    counts the work that must complete inside [[0, t)]; the system is
    EDF-schedulable iff [U <= 1] and [dbf(t) <= t] at every absolute
    deadline [t] up to the hyperperiod.

    This gives the partitioned baseline an analytic fast path and the test
    suite an independent oracle for {!Sim}'s adaptive simulation (the two
    must agree on synchronous systems — property-tested). *)

val demand : Rt_model.Taskset.t -> int -> int
(** [demand ts t] is dbf(t) for the synchronous version of [ts] (offsets
    ignored). *)

val check_points : Rt_model.Taskset.t -> int list
(** The absolute deadlines in [(0, T]] — the only points where
    [dbf(t) <= t] can newly fail. *)

val edf_schedulable : Rt_model.Taskset.t -> bool
(** Exact uniprocessor EDF test for synchronous systems.
    @raise Invalid_argument on non-constrained-deadline systems or if any
    task has a nonzero offset (use {!Sim.run} for those). *)
