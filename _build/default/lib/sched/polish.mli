(** Migration-reducing post-processing of feasible schedules.

    On identical processors, permuting {e which processor} runs each task
    within one slot never affects feasibility (that is the symmetry the
    paper's rule (10) exploits to prune the search).  The CSP solvers
    return one canonical representative — typically a migration-heavy one,
    since they re-pack tasks in ascending order every slot.

    [minimize_migrations] walks the slots in order and greedily keeps every
    task on the processor it occupied in the previous slot, assigning the
    remaining tasks to the freed processors.  The task multiset per slot is
    unchanged, so verification is preserved exactly; only the
    processor-assignment within slots changes.  The pass never increases
    adjacent-slot migrations and typically removes most of them. *)

val minimize_migrations : Rt_model.Schedule.t -> Rt_model.Schedule.t
(** Returns a fresh schedule; the input is not modified.  Valid for
    identical platforms only (on heterogeneous platforms processor identity
    matters — do not polish those schedules). *)
