(** Slot-level simulation of classic global schedulers.

    The paper's closing discussion contrasts systematic CSP search with
    priority-driven scheduling (and proposes searching priority orders as
    future work).  This simulator provides those baselines: work-conserving
    global EDF, LLF and fixed-priority (RM/DM/arbitrary order) scheduling of
    a periodic task set on identical processors, on the *absolute* timeline
    starting at t = 0.

    Unlike the CSP solvers, a priority-driven scheduler is not complete: a
    deadline miss only proves that this particular policy fails, not that
    the system is infeasible — that asymmetry (cf. the Dhall-style traps in
    {!Rt_model.Examples}) is what motivates the paper.

    The default horizon is [O_max + 2T], a feasibility interval for
    constrained-deadline periodic systems under deterministic memoryless
    policies: the scheduler state at [O_max + T] and [O_max + 2T] coincide,
    so a miss-free prefix extends periodically. *)

type policy =
  | EDF  (** Earliest absolute deadline first. *)
  | LLF  (** Least laxity (deadline − remaining work) first. *)
  | Fixed_priority of int array
      (** [priority.(i)] = rank of task [i], smaller = more urgent. *)

val rm_priorities : Rt_model.Taskset.t -> int array
(** Rate-monotonic ranks (ties by id). *)

val dm_priorities : Rt_model.Taskset.t -> int array
(** Deadline-monotonic ranks. *)

type miss = { task : int; job : int; at : int }

type result = {
  ok : bool;  (** No deadline missed within the simulated window. *)
  exact : bool;  (** The verdict is definitive: either a miss was found, or
                     the scheduler state repeated across hyperperiod
                     boundaries, so the simulated prefix extends forever. *)
  misses : miss list;  (** First few misses (the simulation keeps going). *)
  grid : Rt_model.Schedule.t;  (** What ran where; horizon = simulated length. *)
  busy : int;  (** Total busy processor-slots. *)
}

val run :
  ?horizon:int ->
  ?policy:policy ->
  ?max_hyperperiods:int ->
  Rt_model.Taskset.t ->
  m:int ->
  result
(** Simulate (default policy EDF).  Ties are broken by task id, making the
    simulation deterministic.

    Without [horizon] the simulation is adaptive: it runs hyperperiod
    chunks past [O_max] until the per-task backlog repeats at a chunk
    boundary (the deterministic scheduler then repeats forever — verdict
    exact), a miss occurs (exact), or [max_hyperperiods] (default 64) /
    the 10^7-cell memory cap is hit ([exact = false]; treat [ok] as "no
    miss found", not schedulability).  An overloaded system (utilization
    above capacity) always ends with a miss because its backlog grows.

    With an explicit [horizon], exactly that many slots are simulated and
    [exact] is true only when a miss was found.
    @raise Invalid_argument on non-constrained-deadline systems or
    horizons above 10^7 slots. *)
