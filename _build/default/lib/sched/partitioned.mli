(** Partitioned scheduling baseline (first-fit decreasing density + EDF).

    The paper's introduction distinguishes global from partitioned
    multiprocessor scheduling, and its conclusion lists "partitioning or
    mixed approaches" as alternatives worth comparing against; this module
    is that comparator.  Tasks are sorted by decreasing density
    [C / min(D,T)] and placed first-fit on the first processor whose
    partition stays EDF-schedulable (EDF is optimal on one processor, and
    the {!Sim} horizon [O_max + 2T] makes the per-processor test exact for
    constrained-deadline systems).

    Partitioned placement can fail on systems that are globally feasible —
    e.g. three tasks of utilization 2/3 on two processors — which is
    exactly the gap the CSP approach closes. *)

type result = {
  assignment : int array;  (** task -> processor, or −1 when placement failed. *)
  ok : bool;  (** Every task placed. *)
}

val partition : Rt_model.Taskset.t -> m:int -> result

val schedule : Rt_model.Taskset.t -> m:int -> Rt_model.Schedule.t option
(** When placement succeeds, the combined per-processor EDF schedules over
    [[0, O_max + 2T)] (same grid semantics as {!Sim.run}). *)
