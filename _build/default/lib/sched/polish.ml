open Rt_model

let minimize_migrations sched =
  let m = Schedule.m sched in
  let horizon = Schedule.horizon sched in
  let out = Schedule.create ~m ~horizon in
  (* last_proc.(i) = processor task i most recently ran on in the output
     (remembered across preemption gaps, not just the previous slot). *)
  let ntasks =
    let mx = ref 0 in
    for j = 0 to m - 1 do
      for t = 0 to horizon - 1 do
        mx := max !mx (Schedule.get sched ~proc:j ~time:t)
      done
    done;
    !mx + 1
  in
  let last_proc = Array.make (max ntasks 1) (-1) in
  let prev = Array.make m Schedule.idle in
  for time = 0 to horizon - 1 do
    let tasks = Schedule.tasks_at sched ~time in
    let placed = Array.make m Schedule.idle in
    (* Pass 1: tasks continuing from the previous slot keep their
       processor unconditionally (these are the adjacencies the migration
       metric charges directly). *)
    let rest =
      List.filter
        (fun task ->
          let p = last_proc.(task) in
          if p >= 0 && prev.(p) = task then begin
            placed.(p) <- task;
            false
          end
          else true)
        tasks
    in
    (* Pass 2: tasks resuming after a gap reclaim their remembered
       processor when it is still free. *)
    let newcomers =
      List.filter
        (fun task ->
          let p = last_proc.(task) in
          if p >= 0 && placed.(p) = Schedule.idle then begin
            placed.(p) <- task;
            false
          end
          else true)
        rest
    in
    (* Pass 3: everything else fills the free processors, ascending. *)
    let next_free = ref 0 in
    List.iter
      (fun task ->
        while placed.(!next_free) <> Schedule.idle do
          incr next_free
        done;
        placed.(!next_free) <- task)
      newcomers;
    Array.iteri
      (fun j task ->
        if task <> Schedule.idle then begin
          Schedule.set out ~proc:j ~time task;
          last_proc.(task) <- j
        end)
      placed;
    Array.blit placed 0 prev 0 m
  done;
  out
