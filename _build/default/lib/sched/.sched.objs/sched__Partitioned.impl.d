lib/sched/partitioned.ml: Array Dbf Fun List Rt_model Schedule Sim Task Taskset
