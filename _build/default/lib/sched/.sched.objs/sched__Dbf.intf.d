lib/sched/dbf.mli: Rt_model
