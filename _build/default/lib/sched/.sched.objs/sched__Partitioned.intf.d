lib/sched/partitioned.mli: Rt_model
