lib/sched/sim.ml: Array Fun List Rt_model Schedule Task Taskset
