lib/sched/sim.mli: Rt_model
