lib/sched/dbf.ml: Array Hashtbl List Rt_model Task Taskset
