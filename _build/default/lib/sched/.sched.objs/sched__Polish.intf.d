lib/sched/polish.mli: Rt_model
