lib/sched/polish.ml: Array List Rt_model Schedule
