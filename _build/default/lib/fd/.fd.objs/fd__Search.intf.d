lib/fd/search.mli: Engine Prelude
