lib/fd/engine.ml: Array Bitset Bool_vec List Prelude Printf Queue
