lib/fd/search.ml: Array Engine Hashtbl Intmath List Prelude Prng Timer
