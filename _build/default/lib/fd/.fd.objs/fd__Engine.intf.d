lib/fd/engine.mli:
