lib/fd/constraints.ml: Array Engine List
