lib/fd/constraints.mli: Engine
