(** Core of the finite-domain constraint solver: variables, domains,
    propagation queue and the backtrack trail.

    This is the in-house replacement for the generic CSP solver the paper
    uses for CSP1 (Choco): propagators are posted against variables, domain
    changes wake them through a FIFO queue until a fixpoint, and a trail of
    saved domains supports chronological backtracking.  The design favours
    simplicity and allocation-light inner loops over sophistication —
    propagators rescan their scope (arities here are small) instead of
    maintaining incremental state across backtracks.

    {2 Failure discipline}

    All domain-shrinking operations return [false] when they empty a domain
    (and poison the engine until the next backtrack); propagators return
    [false] to signal inconsistency.  Callers must stop propagating once
    [false] is seen. *)

type t
type var

exception Too_large of string
(** Raised by {!create} and {!new_var} when the variable budget is
    exhausted; used to emulate the memory cliff the paper reports for
    Choco on large CSP1 instances (Table IV). *)

val create : ?var_budget:int -> unit -> t
(** Fresh engine.  [var_budget] (default 2_000_000) bounds the number of
    variables ever created. *)

(** {2 Variables} *)

val new_var : t -> ?name:string -> lo:int -> hi:int -> unit -> var
(** Variable with domain [[lo, hi]]; requires [lo <= hi]. *)

val new_var_of : t -> ?name:string -> int list -> var
(** Variable with the given (non-empty) domain. *)

val var_count : t -> int
val name : var -> string
val vid : var -> int

val vmin : var -> int
val vmax : var -> int
val size : var -> int
val mem : var -> int -> bool
val value : var -> int option
(** [Some v] iff the variable is assigned (singleton domain). *)

val is_assigned : var -> bool
val iter_values : var -> (int -> unit) -> unit
val values : var -> int list

(** {2 Domain operations} — return [false] on wipe-out. *)

val assign : t -> var -> int -> bool
val remove : t -> var -> int -> bool
val remove_below : t -> var -> int -> bool
(** Remove all values strictly below the bound. *)

val remove_above : t -> var -> int -> bool

(** {2 Propagators} *)

val post : t -> name:string -> wake:var list -> propagate:(unit -> bool) -> bool
(** Register a propagator woken by changes to any variable in [wake], run it
    once immediately, and propagate to fixpoint.  Returns [false] if this
    already proves inconsistency (engine left failed at the root). *)

val propagate : t -> bool
(** Run the queue to fixpoint. *)

(** {2 Search support} *)

val push_level : t -> unit
val backtrack : t -> unit
(** Undo all domain changes of the current level and pop it.
    @raise Invalid_argument at the root. *)

val level : t -> int
val failed : t -> bool
val propagation_count : t -> int

val weight : var -> int
(** Accumulated failure count of the propagators watching the variable —
    the "wdeg" part of the dom/wdeg search heuristic.  Weights persist
    across backtracking (that is the point: they summarize where conflicts
    concentrate). *)

val unassigned_count : t -> int
val fold_vars : t -> ('a -> var -> 'a) -> 'a -> 'a
