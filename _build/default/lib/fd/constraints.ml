module E = Engine

let check_bool v =
  if E.vmin v < 0 || E.vmax v > 1 then invalid_arg "Constraints: variable is not boolean"

(* Boolean cardinality: count assigned ones and still-free variables on each
   wake; arities in the scheduling encodings are small (n, m, or a window
   length), so rescanning beats incremental bookkeeping across backtracks. *)
let bool_card eng xs ~at_least ~at_most =
  Array.iter check_bool xs;
  let propagate () =
    let ones = ref 0 and free = ref 0 in
    Array.iter
      (fun x ->
        match E.value x with
        | Some 1 -> incr ones
        | Some _ -> ()
        | None -> incr free)
      xs;
    if !ones > at_most || !ones + !free < at_least then false
    else begin
      let ok = ref true in
      if !ones = at_most then
        (* No more ones allowed: fix every free variable to 0. *)
        Array.iter (fun x -> if !ok && not (E.is_assigned x) then ok := E.assign eng x 0) xs
      else if !ones + !free = at_least then
        Array.iter (fun x -> if !ok && not (E.is_assigned x) then ok := E.assign eng x 1) xs;
      !ok
    end
  in
  E.post eng ~name:"bool_card" ~wake:(Array.to_list xs) ~propagate

let bool_sum_le eng xs k = bool_card eng xs ~at_least:0 ~at_most:k
let bool_sum_eq eng xs k = bool_card eng xs ~at_least:k ~at_most:k

(* Bounds-consistent linear inequality Σ c_i x_i <= k. *)
let linear_le eng ~coeffs xs k =
  if Array.length coeffs <> Array.length xs then invalid_arg "Constraints.linear_le: arity";
  let term_min c x = if c >= 0 then c * E.vmin x else c * E.vmax x in
  let propagate () =
    let min_sum = ref 0 in
    Array.iteri (fun i x -> min_sum := !min_sum + term_min coeffs.(i) x) xs;
    if !min_sum > k then false
    else begin
      let ok = ref true in
      Array.iteri
        (fun i x ->
          if !ok && coeffs.(i) <> 0 then begin
            let c = coeffs.(i) in
            (* Slack available to this term alone. *)
            let slack = k - (!min_sum - term_min c x) in
            if c > 0 then begin
              let hi = if slack >= 0 then slack / c else -(((-slack) + c - 1) / c) in
              if E.vmax x > hi then ok := E.remove_above eng x hi
            end
            else begin
              (* c < 0: x >= ceil(-slack / -c) = ceil(slack / c) *)
              let lo =
                if slack >= 0 then -(slack / -c)
                else ((-slack) + (-c) - 1) / -c
              in
              if E.vmin x < lo then ok := E.remove_below eng x lo
            end
          end)
        xs;
      !ok
    end
  in
  E.post eng ~name:"linear_le" ~wake:(Array.to_list xs) ~propagate

let linear_eq eng ~coeffs xs k =
  linear_le eng ~coeffs xs k
  && linear_le eng ~coeffs:(Array.map (fun c -> -c) coeffs) xs (-k)

let count_weighted_eq eng xs ~value ~weights k =
  if Array.length weights <> Array.length xs then
    invalid_arg "Constraints.count_weighted_eq: arity";
  if Array.exists (fun w -> w < 0) weights then
    invalid_arg "Constraints.count_weighted_eq: negative weight";
  let propagate () =
    (* [lo] counts weight fixed to [value]; [hi] adds weight that may still
       choose [value]. *)
    let lo = ref 0 and hi = ref 0 in
    Array.iteri
      (fun i x ->
        let w = weights.(i) in
        match E.value x with
        | Some v when v = value ->
          lo := !lo + w;
          hi := !hi + w
        | Some _ -> ()
        | None -> if E.mem x value then hi := !hi + w)
      xs;
    if !lo > k || !hi < k then false
    else begin
      let ok = ref true in
      if !lo = k then
        (* Demand met: forbid [value] everywhere it still costs weight. *)
        Array.iteri
          (fun i x ->
            if !ok && weights.(i) > 0 && (not (E.is_assigned x)) && E.mem x value then
              ok := E.remove eng x value)
          xs
      else if !hi = k then
        Array.iteri
          (fun i x ->
            if !ok && weights.(i) > 0 && (not (E.is_assigned x)) && E.mem x value then
              ok := E.assign eng x value)
          xs;
      !ok
    end
  in
  E.post eng ~name:"count_weighted_eq" ~wake:(Array.to_list xs) ~propagate

let count_eq eng xs ~value k =
  count_weighted_eq eng xs ~value ~weights:(Array.make (Array.length xs) 1) k

let neq eng x y =
  let propagate () =
    match (E.value x, E.value y) with
    | Some a, Some b -> a <> b
    | Some a, None -> E.remove eng y a
    | None, Some b -> E.remove eng x b
    | None, None -> true
  in
  E.post eng ~name:"neq" ~wake:[ x; y ] ~propagate

let leq eng x y =
  let propagate () = E.remove_above eng x (E.vmax y) && E.remove_below eng y (E.vmin x) in
  E.post eng ~name:"leq" ~wake:[ x; y ] ~propagate

let alldiff_except eng xs ~except =
  let propagate () =
    let ok = ref true in
    Array.iteri
      (fun i x ->
        match E.value x with
        | Some v when v <> except ->
          Array.iteri
            (fun j y -> if !ok && j <> i && E.mem y v then ok := E.remove eng y v)
            xs
        | Some _ | None -> ())
      xs;
    !ok
  in
  E.post eng ~name:"alldiff_except" ~wake:(Array.to_list xs) ~propagate

let clause eng ~pos ~neg =
  List.iter check_bool pos;
  List.iter check_bool neg;
  let satisfied_by want v = match E.value v with Some x -> x = want | None -> false in
  let open_lit want v = match E.value v with Some x -> x = want | None -> true in
  let propagate () =
    if List.exists (satisfied_by 1) pos || List.exists (satisfied_by 0) neg then true
    else begin
      let live_pos = List.filter (open_lit 1) pos in
      let live_neg = List.filter (open_lit 0) neg in
      match (live_pos, live_neg) with
      | [], [] -> false
      | [ v ], [] -> E.assign eng v 1
      | [], [ v ] -> E.assign eng v 0
      | _ -> true
    end
  in
  E.post eng ~name:"clause" ~wake:(pos @ neg) ~propagate
