(** Constraint builders for the finite-domain engine.

    Each function posts one or more propagators and returns [false] when the
    posting itself proves inconsistency.  The catalogue covers what the two
    CSP encodings of the paper need — boolean cardinalities for CSP1
    (constraints (3)–(5)), weighted sums for the heterogeneous variant
    (constraint (11)), occurrence counting, all-different-except-idle and
    value-ordering for the generic rendering of CSP2 (constraints (7)–(10))
    — plus a few generic extras ([neq], [clause]) used by the test suite's
    classic problems (pigeonhole, n-queens). *)

val bool_sum_le : Engine.t -> Engine.var array -> int -> bool
(** [Σ xs <= k] over 0/1 variables. *)

val bool_sum_eq : Engine.t -> Engine.var array -> int -> bool
(** [Σ xs = k] over 0/1 variables. *)

val linear_le : Engine.t -> coeffs:int array -> Engine.var array -> int -> bool
(** [Σ c_i·x_i <= k], bounds-consistent, arbitrary integer coefficients. *)

val linear_eq : Engine.t -> coeffs:int array -> Engine.var array -> int -> bool

val count_eq : Engine.t -> Engine.var array -> value:int -> int -> bool
(** [#{i | x_i = value} = k] — the occurrence constraint behind CSP2's
    per-job demand (constraint (9)). *)

val count_weighted_eq :
  Engine.t -> Engine.var array -> value:int -> weights:int array -> int -> bool
(** [Σ_i w_i·(x_i = value) = k] with [w_i >= 0] — heterogeneous CSP2
    demand (constraint (12)).  A zero weight combined with the domain
    restriction of Section VI-A2 keeps tasks off incapable processors. *)

val neq : Engine.t -> Engine.var -> Engine.var -> bool
(** [x ≠ y]. *)

val leq : Engine.t -> Engine.var -> Engine.var -> bool
(** [x <= y], bounds-consistent — the symmetry-breaking order (10)/(13). *)

val alldiff_except : Engine.t -> Engine.var array -> except:int -> bool
(** Pairwise-distinct unless equal to [except] — CSP2's constraint (8)
    ("two processors agree only on idle").  Value-precise propagation on
    assignment. *)

val clause : Engine.t -> pos:Engine.var list -> neg:Engine.var list -> bool
(** Boolean clause [⋁ pos ∨ ⋁ ¬neg] over 0/1 variables (unit propagation). *)
