lib/prelude/timer.ml: Option Unix
