lib/prelude/bool_vec.mli:
