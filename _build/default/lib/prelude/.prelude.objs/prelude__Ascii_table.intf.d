lib/prelude/ascii_table.mli:
