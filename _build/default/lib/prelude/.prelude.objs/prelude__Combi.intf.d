lib/prelude/combi.mli:
