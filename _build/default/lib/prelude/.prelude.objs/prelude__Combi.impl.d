lib/prelude/combi.ml: Array
