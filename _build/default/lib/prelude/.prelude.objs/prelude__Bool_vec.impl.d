lib/prelude/bool_vec.ml: Bytes
