lib/prelude/bitset.ml: Bytes Format Int64 Intmath List
