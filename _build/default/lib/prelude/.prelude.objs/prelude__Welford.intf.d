lib/prelude/welford.mli:
