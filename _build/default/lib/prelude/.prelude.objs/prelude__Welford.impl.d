lib/prelude/welford.ml:
