lib/prelude/prng.mli:
