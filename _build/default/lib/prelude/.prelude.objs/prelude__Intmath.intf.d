lib/prelude/intmath.mli:
