lib/prelude/ascii_table.ml: Array Buffer List String
