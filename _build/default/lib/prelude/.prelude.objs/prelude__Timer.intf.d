lib/prelude/timer.mli:
