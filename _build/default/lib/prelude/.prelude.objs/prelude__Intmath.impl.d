lib/prelude/intmath.ml: List
