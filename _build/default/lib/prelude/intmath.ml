exception Overflow of string

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let mul_check a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a then raise (Overflow "Intmath.lcm") else p

let lcm a b =
  let a = abs a and b = abs b in
  if a = 0 || b = 0 then 0 else mul_check (a / gcd a b) b

let lcm_list l = List.fold_left lcm 1 l

let cdiv a b =
  if b <= 0 then invalid_arg "Intmath.cdiv: non-positive divisor"
  else if a <= 0 then 0
  else (a + b - 1) / b

let pow b e =
  if e < 0 then invalid_arg "Intmath.pow: negative exponent";
  (* Square-and-multiply; the guard on [e = 1] avoids a spurious overflow in
     the final squaring whose result would be discarded. *)
  let rec go acc b e =
    if e = 0 then acc
    else if e = 1 then mul_check acc b
    else if e land 1 = 1 then go (mul_check acc b) (mul_check b b) (e asr 1)
    else go acc (mul_check b b) (e asr 1)
  in
  go 1 b e

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
let sum = List.fold_left ( + ) 0

let imod a b =
  if b <= 0 then invalid_arg "Intmath.imod: non-positive modulus"
  else
    let r = a mod b in
    if r < 0 then r + b else r

let rec luby i =
  let rec pow2m1 k = if (1 lsl k) - 1 >= i then k else pow2m1 (k + 1) in
  let k = pow2m1 1 in
  if (1 lsl k) - 1 = i then 1 lsl (k - 1) else luby (i - (1 lsl (k - 1)) + 1)
