(** Growable vector of booleans (dense flags).

    Backs the "already queued" flags of the propagation queue in [Fd]:
    indices grow with the number of posted propagators, reads outside the
    current size return [false]. *)

type t

val create : unit -> t
val get : t -> int -> bool
val set : t -> int -> bool -> unit
(** Grows the vector as needed; negative indices are invalid. *)

val clear : t -> unit
(** Reset every flag to [false] (capacity retained). *)
