(** Minimal fixed-width ASCII table rendering for experiment reports.

    The benchmark harness prints each reproduced table in a layout close to
    the paper's, e.g.

    {v
    +----------+-------+-------+
    | solver   | runs  | t(s)  |
    +----------+-------+-------+
    | CSP1     |   202 |  19.5 |
    +----------+-------+-------+
    v} *)

type align = Left | Right

type t

val create : headers:string list -> t
(** Column count is fixed by the header row. *)

val set_align : t -> align list -> unit
(** Per-column alignment; default is [Right] everywhere. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the arity differs from the header. *)

val add_sep : t -> unit
(** Insert a horizontal rule between the surrounding rows. *)

val render : t -> string
val print : t -> unit
