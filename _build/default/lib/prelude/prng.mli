(** Deterministic pseudo-random number generation.

    Every randomized component of the library (instance generator, random
    tie-breaking in the generic CSP solver, local search) takes an explicit
    generator so that experiments are reproducible bit-for-bit: the paper
    (Section VII-B) makes a point of contrasting the deterministic CSP2
    solver with Choco's randomized search, and we need seeds to demonstrate
    the same contrast.

    The implementation is splitmix64 for seeding and xoshiro256** for the
    stream — both public-domain algorithms reimplemented here so that the
    library does not depend on the OCaml stdlib [Random] state (whose
    sequence may change between compiler releases). *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator; equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy with identical future stream. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s continuation. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int g bound] is uniform in [[0, bound-1]]; [bound] must be positive.
    Uses rejection sampling, so it is exactly uniform. *)

val in_range : t -> lo:int -> hi:int -> int
(** Uniform in the closed interval [[lo, hi]]; requires [lo <= hi]. *)

val float : t -> float
(** Uniform in [[0, 1)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
