let now () = Unix.gettimeofday ()

type t = float

let start () = now ()
let elapsed t0 = now () -. t0

type budget = { deadline : float option; node_limit : int option; started : float }

let budget ?wall_s ?nodes () =
  let started = now () in
  { deadline = Option.map (fun s -> started +. s) wall_s; node_limit = nodes; started }

let unlimited = { deadline = None; node_limit = None; started = 0. }

let exceeded b ~nodes =
  (match b.node_limit with Some l -> nodes >= l | None -> false)
  || (match b.deadline with Some d -> now () >= d | None -> false)

let nodes_exceeded b ~nodes =
  match b.node_limit with Some l -> nodes >= l | None -> false

let wall_limit b = Option.map (fun d -> d -. b.started) b.deadline
let remaining_wall b = Option.map (fun d -> d -. now ()) b.deadline
