type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the user seed into the 256-bit xoshiro
   state, as recommended by the xoshiro authors. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  let st = ref (bits64 g) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

(* Non-negative 61-bit int from the top bits: 2^61 still fits an OCaml
   immediate (63-bit), so the rejection bound below cannot overflow. *)
let bits61 g = Int64.to_int (Int64.shift_right_logical (bits64 g) 3)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: non-positive bound";
  if bound land (bound - 1) = 0 then bits61 g land (bound - 1)
  else
    (* Rejection sampling on the largest multiple of [bound] below 2^61. *)
    let max61 = 1 lsl 61 in
    let limit = max61 - (max61 mod bound) in
    let rec draw () =
      let v = bits61 g in
      if v < limit then v mod bound else draw ()
    in
    draw ()

let in_range g ~lo ~hi =
  if lo > hi then invalid_arg "Prng.in_range: empty interval";
  lo + int g (hi - lo + 1)

let float g = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) *. 0x1p-53
let bool g = Int64.logand (bits64 g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))
