(** Fixed-capacity bitsets over [0 .. capacity-1].

    These back the finite domains of the generic CSP solver ([Fd]), where
    membership tests, cardinality and min/max queries dominate the
    propagation inner loop. *)

type t

val create : int -> t
(** [create capacity] is the empty set over [0 .. capacity-1]. *)

val full : int -> t
(** [full capacity] contains every value in [0 .. capacity-1]. *)

val capacity : t -> int
val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with [src]'s contents; capacities must match. *)

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val cardinal : t -> int

val is_empty : t -> bool

val min_elt : t -> int
(** @raise Not_found on the empty set. *)

val max_elt : t -> int
(** @raise Not_found on the empty set. *)

val next_from : t -> int -> int
(** [next_from s v] is the smallest element [>= v], or raises [Not_found]. *)

val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val elements : t -> int list
val equal : t -> t -> bool

val inter_inplace : t -> t -> unit
(** [inter_inplace a b] replaces [a] with [a ∩ b]. *)

val remove_below : t -> int -> unit
(** Remove every element strictly below the argument. *)

val remove_above : t -> int -> unit
(** Remove every element strictly above the argument. *)

val singleton_value : t -> int option
(** [Some v] when the set is exactly [{v}]. *)

val pp : Format.formatter -> t -> unit

val clear : t -> unit
(** Remove every element. *)
