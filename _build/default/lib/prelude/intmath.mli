(** Exact integer arithmetic helpers used throughout the scheduler.

    All task parameters are integers (discrete time), so hyperperiods are
    computed with exact [gcd]/[lcm].  Overflow is a real concern: the
    hyperperiod of 256 tasks with periods up to 15 is 360360, but a careless
    generator could request much larger periods, so [lcm] checks for
    overflow and raises. *)

exception Overflow of string
(** Raised when an exact operation would exceed [max_int]. *)

val gcd : int -> int -> int
(** [gcd a b] is the greatest common divisor of [abs a] and [abs b].
    [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** [lcm a b] is the least common multiple of [abs a] and [abs b].
    [lcm 0 _ = 0].  @raise Overflow if the result does not fit in an [int]. *)

val lcm_list : int list -> int
(** Least common multiple of a list; [lcm_list [] = 1]. *)

val cdiv : int -> int -> int
(** [cdiv a b] is [ceil (a / b)] for positive [b] and non-negative [a]. *)

val pow : int -> int -> int
(** [pow b e] is [b] to the power [e] ([e >= 0]), checking for overflow. *)

val clamp : lo:int -> hi:int -> int -> int
(** [clamp ~lo ~hi x] forces [x] into the closed interval [[lo, hi]]. *)

val sum : int list -> int

val imod : int -> int -> int
(** Mathematical modulo: [imod a b] is in [[0, b-1]] for [b > 0], even for
    negative [a]. *)

val luby : int -> int
(** The Luby restart sequence 1,1,2,1,1,2,4,… (1-indexed), used by both the
    CDCL SAT solver and the FD search restarts. *)
