(** Wall-clock timers and combined wall-clock/node budgets.

    The paper gives every solver run a 30 s limit on a 2.4 GHz Core2Quad.
    We reproduce the mechanism with a deadline based on the monotonic-enough
    [Unix.gettimeofday], complemented by a node budget so that test-suite
    runs stay fast and fully deterministic. *)

val now : unit -> float
(** Seconds since the epoch, sub-millisecond resolution. *)

type t
(** A started stopwatch. *)

val start : unit -> t
val elapsed : t -> float

type budget

val budget : ?wall_s:float -> ?nodes:int -> unit -> budget
(** Missing components are unlimited. *)

val unlimited : budget

val exceeded : budget -> nodes:int -> bool
(** [exceeded b ~nodes] is true once either limit is hit.  The wall clock is
    consulted lazily (every call), so callers should poll at a coarse
    granularity (e.g. every 1024 search nodes). *)

val nodes_exceeded : budget -> nodes:int -> bool
(** Node-limit component only — no clock read, cheap enough to call on
    every search node. *)

val wall_limit : budget -> float option
val remaining_wall : budget -> float option
