(** CNF encodings of cardinality constraints (sequential counters).

    CSP1's constraints are all cardinalities over booleans: the per-slot
    mutual exclusions (3)–(4) are "at most 1" and the per-window demand (5)
    is "exactly C_i".  This module provides the standard
    Sinz sequential-counter encoding, which is linear in [n·k] and
    arc-consistent under unit propagation, plus the pairwise special case
    for "at most 1". *)

val at_most_one_pairwise : Solver.t -> Solver.lit list -> unit
(** O(n²) binary clauses; preferable for small scopes. *)

val at_most : Solver.t -> k:int -> Solver.lit list -> unit
(** [Σ lits <= k] via sequential counter (fresh auxiliary variables). *)

val at_least : Solver.t -> k:int -> Solver.lit list -> unit
(** [Σ lits >= k], encoded as "at most (n−k) negations". *)

val exactly : Solver.t -> k:int -> Solver.lit list -> unit
