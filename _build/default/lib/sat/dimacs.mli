(** DIMACS CNF serialization.

    Lets the CSP1→SAT encoding interoperate with external solvers and
    supports round-trip tests of the in-house CDCL solver. *)

type cnf = { num_vars : int; clauses : int list list }
(** Clauses in DIMACS convention: non-zero integers, sign = polarity,
    magnitude = 1-based variable. *)

val to_string : cnf -> string
(** Render with the [p cnf] header. *)

val of_string : string -> cnf
(** Parse; tolerates comments and blank lines.
    @raise Failure on malformed input. *)

val load : Solver.t -> cnf -> unit
(** Create [num_vars] fresh variables in an empty solver and add every
    clause.  @raise Invalid_argument if the solver already has variables. *)
