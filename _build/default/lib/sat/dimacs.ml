type cnf = { num_vars : int; clauses : int list list }

let to_string { num_vars; clauses } =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" num_vars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let of_string text =
  let num_vars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let header_seen = ref false in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = 'c' then ()
         else if line.[0] = 'p' then begin
           (match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
           | [ "p"; "cnf"; nv; _nc ] -> (
             match int_of_string_opt nv with
             | Some n -> num_vars := n
             | None -> failwith "Dimacs.of_string: bad header")
           | _ -> failwith "Dimacs.of_string: bad header");
           header_seen := true
         end
         else
           String.split_on_char ' ' line
           |> List.filter (fun s -> s <> "")
           |> List.iter (fun tok ->
                  match int_of_string_opt tok with
                  | None -> failwith ("Dimacs.of_string: bad literal " ^ tok)
                  | Some 0 ->
                    clauses := List.rev !current :: !clauses;
                    current := []
                  | Some l ->
                    if abs l > !num_vars then num_vars := abs l;
                    current := l :: !current));
  if not !header_seen then failwith "Dimacs.of_string: missing p cnf header";
  if !current <> [] then clauses := List.rev !current :: !clauses;
  { num_vars = !num_vars; clauses = List.rev !clauses }

let load solver { num_vars; clauses } =
  if Solver.nvars solver <> 0 then invalid_arg "Dimacs.load: solver not empty";
  for _ = 1 to num_vars do
    ignore (Solver.new_var solver)
  done;
  List.iter (fun clause -> Solver.add_clause solver (List.map Solver.lit_of_int clause)) clauses
