let at_most_one_pairwise s lits =
  let arr = Array.of_list lits in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Solver.add_clause s [ Solver.negate arr.(i); Solver.negate arr.(j) ]
    done
  done

(* Sinz 2005 sequential counter: registers r.(i).(j) meaning "at least j+1
   of the first i+1 literals are true". *)
let at_most s ~k lits =
  if k < 0 then invalid_arg "Cardinality.at_most: negative bound";
  let arr = Array.of_list lits in
  let n = Array.length arr in
  if k = 0 then Array.iter (fun l -> Solver.add_clause s [ Solver.negate l ]) arr
  else if k >= n then ()
  else if k = 1 && n <= 6 then at_most_one_pairwise s lits
  else begin
    let reg = Array.init n (fun _ -> Array.init k (fun _ -> Solver.pos (Solver.new_var s))) in
    let r i j = reg.(i).(j) in
    for i = 0 to n - 1 do
      if i = 0 then Solver.add_clause s [ Solver.negate arr.(0); r 0 0 ]
      else begin
        (* x_i -> r_i_0 *)
        Solver.add_clause s [ Solver.negate arr.(i); r i 0 ];
        for j = 0 to k - 1 do
          (* r_{i-1}_j -> r_i_j *)
          Solver.add_clause s [ Solver.negate (r (i - 1) j); r i j ];
          (* x_i ∧ r_{i-1}_{j-1} -> r_i_j *)
          if j > 0 then
            Solver.add_clause s
              [ Solver.negate arr.(i); Solver.negate (r (i - 1) (j - 1)); r i j ];
        done;
        (* Overflow: x_i ∧ r_{i-1}_{k-1} -> ⊥ *)
        Solver.add_clause s [ Solver.negate arr.(i); Solver.negate (r (i - 1) (k - 1)) ]
      end
    done
  end

let at_least s ~k lits =
  let n = List.length lits in
  if k <= 0 then ()
  else if k > n then Solver.add_clause s []  (* unsatisfiable *)
  else if k = n then List.iter (fun l -> Solver.add_clause s [ l ]) lits
  else at_most s ~k:(n - k) (List.map Solver.negate lits)

let exactly s ~k lits =
  at_most s ~k lits;
  at_least s ~k lits
