lib/sat/cardinality.ml: Array List Solver
