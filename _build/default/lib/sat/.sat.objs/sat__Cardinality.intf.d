lib/sat/cardinality.mli: Solver
