lib/sat/solver.ml: Array Intmath List Prelude Prng Timer
