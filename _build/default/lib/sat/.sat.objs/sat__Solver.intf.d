lib/sat/solver.mli: Prelude
