lib/priority/assignment.ml: Array Csp2 Fun List Prelude Rt_model Sched Taskset Timer
