lib/priority/assignment.mli: Prelude Rt_model
