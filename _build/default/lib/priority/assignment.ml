open Prelude
open Rt_model

type outcome = Found of int array | Not_found | Limit

type stats = {
  candidates : int;
  prefixes_pruned : int;
  time_s : float;
}

let dc_first ts = Csp2.Heuristic.rank Csp2.Heuristic.DC ts

exception Stop_limit

let search ?(budget = Timer.unlimited) ts ~m =
  let t0 = Timer.start () in
  let n = Taskset.size ts in
  let sims = ref 0 in
  let pruned = ref 0 in
  (* Simulate the prefix alone: under global fixed priorities, tasks below
     the prefix cannot disturb it, so a miss here dooms every extension. *)
  let prefix_ok prefix =
    incr sims;
    if Timer.exceeded budget ~nodes:!sims then raise Stop_limit;
    let tasks = List.rev_map (fun i -> Taskset.task ts i) prefix in
    let sub = Taskset.of_tasks tasks in
    (* [prefix] is most-recent-first, so [rev_map] lists tasks from highest
       priority down; sub-taskset ids follow list order, so task id = rank. *)
    let k = List.length prefix in
    let ranks = Array.init k Fun.id in
    let res = Sched.Sim.run sub ~m ~policy:(Sched.Sim.Fixed_priority ranks) in
    (* Require an exact verdict: an inexact "no miss found" must not
       certify an ordering. *)
    res.Sched.Sim.ok && res.Sched.Sim.exact
  in
  let dc = Csp2.Heuristic.order Csp2.Heuristic.DC ts in
  let chosen = Array.make n (-1) in
  let used = Array.make n false in
  (* DFS over orderings, (D−C)-ranked tasks first at every level. *)
  let rec extend depth prefix_rev =
    if depth = n then begin
      let ranks = Array.make n 0 in
      Array.iteri (fun pos i -> ranks.(i) <- pos) chosen;
      Some ranks
    end
    else begin
      let rec try_tasks = function
        | [] -> None
        | i :: rest ->
          if used.(i) then try_tasks rest
          else begin
            used.(i) <- true;
            chosen.(depth) <- i;
            let prefix_rev' = i :: prefix_rev in
            let result =
              if prefix_ok prefix_rev' then extend (depth + 1) prefix_rev'
              else begin
                incr pruned;
                None
              end
            in
            match result with
            | Some _ as found -> found
            | None ->
              used.(i) <- false;
              try_tasks rest
          end
      in
      try_tasks (Array.to_list dc)
    end
  in
  let stats () = { candidates = !sims; prefixes_pruned = !pruned; time_s = Timer.elapsed t0 } in
  match extend 0 [] with
  | Some ranks -> (Found ranks, stats ())
  | None -> (Not_found, stats ())
  | exception Stop_limit -> (Limit, stats ())
