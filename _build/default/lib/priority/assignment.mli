(** Search for a feasible fixed-priority assignment.

    The paper's second future-work item (Section VIII): instead of deciding
    every slot with a CSP, search "for a feasible priority assignment among
    the n! possible orderings of n tasks", seeding the search with a
    (D − C) ordering — which the experiments single out as the strongest
    heuristic.

    A candidate ordering is accepted when global fixed-priority simulation
    ({!Sched.Sim}) over the feasibility interval misses no deadline.  The
    search enumerates orderings depth-first, most-promising (smallest
    [D − C]) first — so the very first leaf tried is exactly the (D−C)
    priority order — and prunes with a per-prefix bound: once the chosen
    prefix of high-priority tasks already misses a deadline when simulated
    alone (lower-priority tasks cannot interfere upward), the subtree is
    abandoned. *)

type outcome =
  | Found of int array
      (** [priority.(i)] = rank of task [i] (0 = highest); the simulation
          with these ranks meets all deadlines. *)
  | Not_found  (** All orderings fail (exhaustive proof for this policy). *)
  | Limit

type stats = {
  candidates : int;  (** Full orderings simulated. *)
  prefixes_pruned : int;
  time_s : float;
}

val dc_first : Rt_model.Taskset.t -> int array
(** The (D−C) seed ordering as a rank array. *)

val search :
  ?budget:Prelude.Timer.budget -> Rt_model.Taskset.t -> m:int -> outcome * stats
(** The node budget counts simulated candidates (full or prefix). *)
