(** Value-ordering heuristics for the dedicated CSP2 search
    (Section V-C2 of the paper).

    A heuristic ranks tasks; at every time slot the search prefers
    scheduling better-ranked tasks first.  The paper evaluates:

    - [RM]: smallest period first (Rate Monotonic);
    - [DM]: smallest deadline first (Deadline Monotonic);
    - [TC]: smallest [T − C] first;
    - [DC]: smallest [D − C] first — the winner in Tables I and IV;
    - [Id]: task-id order, i.e. the paper's plain "CSP2" baseline. *)

type t = Id | RM | DM | TC | DC

val all : t list
val to_string : t -> string
val of_string : string -> t option

val key : t -> Rt_model.Task.t -> int
(** The quantity minimized by the heuristic ([Id] uses the task id). *)

val rank : t -> Rt_model.Taskset.t -> int array
(** [rank h ts] maps each task id to its position in the heuristic order
    (0 = schedule first); ties broken by task id, so ranks are a
    permutation and the search is deterministic (Section VII-B). *)

val order : t -> Rt_model.Taskset.t -> int array
(** Task ids sorted by rank (inverse permutation of {!rank}). *)
