lib/csp2/het.ml: Array Bitset Encodings Fun Heuristic List Platform Prelude Rt_model Schedule Solver Taskset Timer Windows
