lib/csp2/solver.ml: Array Bitset Combi Encodings Fun Heuristic Jobmap List Prelude Rt_model Schedule Taskset Timer
