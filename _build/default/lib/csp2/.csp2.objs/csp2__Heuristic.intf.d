lib/csp2/heuristic.mli: Rt_model
