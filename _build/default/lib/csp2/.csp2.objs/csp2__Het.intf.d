lib/csp2/het.mli: Encodings Heuristic Prelude Rt_model Solver
