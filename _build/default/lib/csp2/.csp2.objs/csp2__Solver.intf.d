lib/csp2/solver.mli: Encodings Heuristic Prelude Rt_model
