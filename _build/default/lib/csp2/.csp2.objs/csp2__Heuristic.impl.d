lib/csp2/heuristic.ml: Array Fun Rt_model String Task Taskset
