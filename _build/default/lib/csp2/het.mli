(** Dedicated CSP2 search for heterogeneous platforms (Section VI-A).

    Implements the paper's proposed adaptations of the CSP2 search
    strategy:

    - variables are still decided chronologically, and within a slot the
      processors are decided {e least capable first}, ordered by the quality
      measure [Q(P_j) = Σ_i s_{i,j}·C_i/T_i];
    - the value order prefers tasks that can run on few processors, then
      the scheduling heuristic (default D−C);
    - the symmetry rule (13) applies the ascending-value constraint to
      adjacent pairs of *identical* processors only;
    - domains follow Section VI-A2: task [i] is a candidate for [P_j] only
      when [s_{i,j} > 0], the slot is in a window, and the job still needs
      at least [s_{i,j}] units (the demand (12) is an exact sum, so an
      overshooting slot can never be repaired).

    {b Deviation from the paper}: the no-idle rule is {e not} enforced
    here.  With execution rates it is unsound — e.g. a job with [C = 5]
    and a 5-slot window on processors with rates (3, 2) completes only as
    3 + 2: three slots stay idle, some of them while the task is still
    eligible (the exact-demand constraint (12) forbids running it again).
    Idle is instead ordered last, so work-conserving assignments are still
    tried first.  (On identical platforms the rule is safe — see
    {!Solver} — because swapping a later unit into the idle slot preserves
    the completed amount.)

    Search is complete; [Infeasible] is a proof.  Intended for the
    moderate-size platforms of the heterogeneity extension; the identical
    fast path is {!Solver.solve}. *)

val solve :
  ?heuristic:Heuristic.t ->
  ?budget:Prelude.Timer.budget ->
  platform:Rt_model.Platform.t ->
  Rt_model.Taskset.t ->
  Encodings.Outcome.t * Solver.stats
(** @raise Invalid_argument on non-constrained-deadline task sets. *)
