(** Probabilistic evaluation of schedules and policies (Section VIII's
    long-term direction, made concrete).

    Two complementary questions:

    {b 1. What does worst-case budgeting waste?}  A CSP schedule reserves
    [C_i] slots per job; when actual execution times follow a distribution,
    the reserved-but-unused slots are idled (the paper's own remark after
    Theorem 1: idling instead of reclaiming avoids scheduling anomalies).
    {!static_waste} quantifies that reservation overhead analytically from
    the distributions — no sampling needed, since under the idling rule the
    schedule itself never changes.

    {b 2. How brittle is a priority policy without worst-case slack?}
    When global EDF misses deadlines under WCETs, it may still survive most
    {e actual} executions.  {!monte_carlo_misses} estimates the per-run
    deadline-miss probability of work-conserving EDF when every job draws
    its execution time independently from its task's distribution. *)

type profile = {
  taskset : Rt_model.Taskset.t;
  dists : Dist.t array;  (** One distribution per task; the maximum of each
                             must equal the task's WCET (the budget). *)
}

val profile : Rt_model.Taskset.t -> Dist.t array -> profile
(** @raise Invalid_argument on arity mismatch or when some distribution's
    maximum differs from the task's [C] (the deterministic schedule budgets
    exactly the worst case). *)

val degenerate : Rt_model.Taskset.t -> profile
(** Point distributions at the WCETs — the deterministic special case. *)

type waste = {
  reserved : int;  (** Processor slots the schedule reserves per hyperperiod. *)
  expected_used : float;  (** Expected slots actually executed. *)
  expected_idle : float;  (** [reserved - expected_used]. *)
  utilization_budgeted : float;  (** [Σ C_i/T_i]. *)
  utilization_expected : float;  (** [Σ E(X_i)/T_i]. *)
}

val static_waste : profile -> waste

type miss_estimate = {
  runs : int;
  runs_with_miss : int;
  miss_probability : float;
  stderr : float;  (** Binomial standard error of the estimate. *)
}

val monte_carlo_misses :
  ?seed:int -> ?runs:int -> ?hyperperiods:int -> profile -> m:int -> miss_estimate
(** Simulate global EDF for [hyperperiods] (default 2, past O_max) per run,
    [runs] (default 1000) independent runs, each job's execution time drawn
    from its task's distribution; count runs with at least one deadline
    miss.  Deterministic given [seed]. *)
