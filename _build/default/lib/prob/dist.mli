(** Discrete probability distributions over execution times.

    The paper's long-term goal (Section VIII) is to "move from the usual
    deterministic setting — where worst-case execution times are considered
    — to probabilistic settings — e.g. where a probability distribution
    over execution times is known for each task".  This module provides
    those distributions: finite supports over positive integers, exact
    rational-free arithmetic avoided in favour of normalized floats (the
    Monte-Carlo estimators downstream dominate any rounding here). *)

type t

val of_list : (int * float) list -> t
(** [(value, weight)] pairs; weights must be positive and values
    distinct positive integers.  Weights are normalized to sum to 1.
    @raise Invalid_argument on empty lists, non-positive weights or
    values. *)

val point : int -> t
(** Deterministic time (the classical WCET-only setting). *)

val uniform : lo:int -> hi:int -> t
(** Uniform over [[lo, hi]], [1 <= lo <= hi]. *)

val support : t -> int list
(** Ascending values with positive probability. *)

val prob : t -> int -> float
val min_value : t -> int
val max_value : t -> int
(** The worst case — what the deterministic CSP schedule must budget. *)

val mean : t -> float

val cdf : t -> int -> float
(** [P(X <= v)]. *)

val sample : Prelude.Prng.t -> t -> int
(** Inverse-CDF sampling; deterministic given the generator state. *)

val scale_wcet : t -> float
(** [mean / max]: expected fraction of the budgeted worst case actually
    used — 1.0 for {!point} distributions. *)

val pp : Format.formatter -> t -> unit
