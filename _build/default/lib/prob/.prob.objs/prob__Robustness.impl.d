lib/prob/robustness.ml: Array Dist List Prelude Printf Rt_model Task Taskset
