lib/prob/dist.ml: Array Format List Prelude
