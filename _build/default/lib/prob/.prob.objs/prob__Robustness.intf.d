lib/prob/robustness.mli: Dist Rt_model
