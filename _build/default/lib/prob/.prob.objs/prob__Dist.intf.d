lib/prob/dist.mli: Format Prelude
