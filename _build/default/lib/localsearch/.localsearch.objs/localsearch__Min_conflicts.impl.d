lib/localsearch/min_conflicts.ml: Array Bitset Csp2 Encodings Fun List Prelude Prng Rt_model Schedule Taskset Timer Windows
