lib/localsearch/min_conflicts.mli: Encodings Prelude Rt_model
