bench/micro.ml: Analyze Bechamel Benchmark Csp2 Encodings Gen Hashtbl Instance List Measure Prelude Printf Rt_model Sched Staged Test Time Toolkit
