bench/main.ml: Ablation Baselines Campaign Config Experiments List Micro Printf String Tables Variance
