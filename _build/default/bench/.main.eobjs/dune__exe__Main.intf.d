bench/main.mli:
