(* Arbitrary deadlines and the clone transform (Section VI-B).

   When D > T several jobs of one task can be live — even running
   simultaneously on different processors — which one CSP2 value per task
   cannot express.  The paper's fix creates k = ceil(D/T) "clones" per
   task with staggered offsets and stretched periods.

   This example builds a pipeline-flavoured workload (a logging task whose
   deadline spans almost two periods), shows the transform, solves the
   cloned system, and maps the schedule back — two clones of the logger
   visibly overlap on distinct processors.

   Run with: dune exec examples/arbitrary_deadlines.exe *)

open Rt_model

let () =
  (* τ1: logger with D=5 > T=3 (k=2 clones); τ2: control loop. *)
  let ts = Taskset.of_tuples [ (0, 2, 5, 3); (0, 1, 2, 2) ] in
  Format.printf "Arbitrary-deadline system:@.%a@." Taskset.pp ts;
  Format.printf "  τ1 has D=5 > T=3: up to ⌈5/3⌉ = 2 jobs live at once@.@.";

  let reduction = Clone.transform ts in
  let cloned = Clone.cloned reduction in
  Format.printf "Clone system (constrained deadlines, Section VI-B rules):@.%a@." Taskset.pp
    cloned;
  Array.iteri
    (fun c _ -> Format.printf "  clone %d originates from task %d@." (c + 1) (Clone.origin reduction c + 1))
    (Taskset.tasks cloned);

  (* Core.solve applies the transform automatically for D > T systems. *)
  (match Core.solve ts ~m:2 with
  | Core.Feasible schedule, elapsed ->
    Format.printf "@.Feasible on 2 processors (%.4fs); schedule over the clone hyperperiod %d:@.%a@."
      elapsed (Schedule.horizon schedule) Schedule.pp schedule;
    (* Find a slot where the logger overlaps itself. *)
    let overlap = ref None in
    for t = 0 to Schedule.horizon schedule - 1 do
      if !overlap = None then begin
        let running = ref 0 in
        for j = 0 to 1 do
          if Schedule.get schedule ~proc:j ~time:t = 0 then incr running
        done;
        if !running = 2 then overlap := Some t
      end
    done;
    (match !overlap with
    | Some t ->
      Format.printf
        "  at t=%d the logger runs on BOTH processors — two of its jobs in parallel, which only \
         the clone transform can express@."
        t
    | None -> Format.printf "  (no self-overlap needed in this schedule)@.")
  | (Core.Infeasible | Core.Limit | Core.Memout _), _ -> Format.printf "unexpected verdict@.");

  (* On one processor the same system is infeasible: U = 2/3 + 1/2 > 1. *)
  match Core.solve ts ~m:1 with
  | Core.Infeasible, _ -> Format.printf "@.On 1 processor: infeasible (r > 1), as expected@."
  | _ -> Format.printf "@.unexpected verdict on m=1@."
