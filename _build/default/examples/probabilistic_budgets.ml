(* Probabilistic execution times (Section VIII's long-term direction).

   The CSP schedule budgets worst-case execution times; real executions
   are usually shorter.  This example quantifies both sides of that coin
   on the paper's running example:

   - how much reserved capacity the WCET schedule leaves idle in
     expectation, given per-task execution-time distributions
     (the paper's own idling rule keeps the schedule anomaly-free);
   - how often plain global EDF — which misses deadlines for the EDF trap
     under worst-case times — actually survives when execution times are
     random (a Monte-Carlo estimate).

   Run with: dune exec examples/probabilistic_budgets.exe *)

open Rt_model

let () =
  let ts = Examples.running_example in
  Format.printf "Task system:@.%a@." Taskset.pp ts;

  (* Execution-time distributions; each maximum equals the budgeted C. *)
  let dists =
    [|
      Prob.Dist.point 1;                          (* τ1 always needs its WCET *)
      Prob.Dist.of_list [ (1, 0.2); (2, 0.5); (3, 0.3) ];  (* τ2 usually shorter *)
      Prob.Dist.uniform ~lo:1 ~hi:2;              (* τ3 *)
    |]
  in
  Array.iteri
    (fun i d -> Format.printf "  τ%d execution time ~ %a (mean %.2f)@." (i + 1) Prob.Dist.pp d (Prob.Dist.mean d))
    dists;
  let profile = Prob.Robustness.profile ts dists in

  let waste = Prob.Robustness.static_waste profile in
  Format.printf
    "@.Worst-case budgeting over one hyperperiod:@.\
    \  reserved slots     : %d@.\
    \  expected executed  : %.2f@.\
    \  expected idled     : %.2f (%.0f%% of the reservation)@.\
    \  utilization        : %.3f budgeted vs %.3f expected@."
    waste.Prob.Robustness.reserved waste.Prob.Robustness.expected_used
    waste.Prob.Robustness.expected_idle
    (100. *. waste.Prob.Robustness.expected_idle /. float_of_int waste.Prob.Robustness.reserved)
    waste.Prob.Robustness.utilization_budgeted waste.Prob.Robustness.utilization_expected;

  (* The EDF trap: guaranteed miss under WCETs, yet often fine in practice. *)
  let trap = Examples.edf_trap in
  Format.printf "@.The EDF trap under random execution times (m = 2):@.";
  let wcet_run = Sched.Sim.run trap ~m:2 in
  Format.printf "  worst-case EDF: %s@."
    (if wcet_run.Sched.Sim.ok then "meets deadlines" else "MISSES (as the paper's anomaly predicts)");
  List.iter
    (fun (label, dists) ->
      let profile = Prob.Robustness.profile trap dists in
      let est = Prob.Robustness.monte_carlo_misses ~seed:42 ~runs:2000 profile ~m:2 in
      Format.printf "  %-28s miss probability ≈ %.3f ± %.3f (%d/%d runs)@." label
        est.Prob.Robustness.miss_probability est.Prob.Robustness.stderr
        est.Prob.Robustness.runs_with_miss est.Prob.Robustness.runs)
    [
      ("always worst case", Array.make 3 (Prob.Dist.point 2));
      ("usually one of two slots", Array.make 3 (Prob.Dist.of_list [ (1, 0.7); (2, 0.3) ]));
      ("almost always short", Array.make 3 (Prob.Dist.of_list [ (1, 0.95); (2, 0.05) ]));
    ];
  Format.printf
    "@.The CSP schedule needs no such luck: it meets every deadline even in the@.\
     worst case, and shorter executions only add idle slots (Theorem 1 remark).@."
