examples/arbitrary_deadlines.ml: Array Clone Core Format Rt_model Schedule Taskset
