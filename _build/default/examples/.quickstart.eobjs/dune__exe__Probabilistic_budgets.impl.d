examples/probabilistic_budgets.ml: Array Examples Format List Prob Rt_model Sched Taskset
