examples/quickstart.ml: Core Encodings Examples Format List Metrics Rt_model Schedule Taskset Verify Windows
