examples/quickstart.mli:
