examples/capacity_planning.ml: Core Format Gen Prelude Rt_model Sched Taskset
