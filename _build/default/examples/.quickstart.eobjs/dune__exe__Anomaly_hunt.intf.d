examples/anomaly_hunt.mli:
