examples/heterogeneous_avionics.ml: Array Core Format Platform Rt_model Schedule Taskset Verify
