examples/arbitrary_deadlines.mli:
