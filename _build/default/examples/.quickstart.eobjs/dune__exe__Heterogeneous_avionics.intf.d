examples/heterogeneous_avionics.mli:
