examples/anomaly_hunt.ml: Array Core Csp2 Encodings Examples Format Gen List Prelude Printf Priority Rt_model Sched Schedule String Taskset
