examples/probabilistic_budgets.mli:
