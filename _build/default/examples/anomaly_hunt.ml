(* Anomaly hunt: why complete search beats priority-driven policies.

   The paper's introduction recalls that multiprocessor scheduling suffers
   anomalies: natural work-conserving policies (global EDF, RM, ...) can
   miss deadlines on systems that are perfectly feasible.  This example

   1. shows a hand-crafted trap (three tasks of utilization 2/3 on two
      processors) where global EDF fails but the CSP solver schedules;
   2. sweeps random instances to count, among CSP-feasible systems, how
      often each classic policy fails;
   3. uses the priority-assignment search (the paper's future-work #2) to
      rescue fixed-priority scheduling where RM/DM fail.

   Run with: dune exec examples/anomaly_hunt.exe *)

open Rt_model

let show_policy name ok = Format.printf "  %-22s %s@." name (if ok then "meets all deadlines" else "MISSES a deadline")

let () =
  let ts = Examples.edf_trap in
  let m = Examples.edf_trap_m in
  Format.printf "The trap (three synchronous tasks (0,2,3,3) on 2 processors):@.%a@." Taskset.pp ts;

  let edf = Sched.Sim.run ts ~m ~policy:Sched.Sim.EDF in
  show_policy "global EDF" (edf.Sched.Sim.ok && edf.Sched.Sim.exact);
  (match edf.Sched.Sim.misses with
  | { Sched.Sim.task; job; at } :: _ ->
    Format.printf "    first miss: job %d of task %d at t=%d@." job (task + 1) at
  | [] -> ());
  let rm = Sched.Sim.run ts ~m ~policy:(Sched.Sim.Fixed_priority (Sched.Sim.rm_priorities ts)) in
  show_policy "global RM" (rm.Sched.Sim.ok && rm.Sched.Sim.exact);

  (match Core.solve ts ~m with
  | Core.Feasible schedule, _ ->
    Format.printf "  CSP2+(D-C)             finds a feasible schedule:@.%a@." Schedule.pp schedule
  | _ -> assert false);

  (* Can a different *fixed* priority order do it?  Search the n! space. *)
  (match Priority.Assignment.search ts ~m with
  | Priority.Assignment.Found ranks, stats ->
    Format.printf "  priority search: feasible assignment after %d simulations: %s@."
      stats.Priority.Assignment.candidates
      (String.concat " > "
         (List.map (fun (i, _) -> Printf.sprintf "task %d" (i + 1))
            (List.sort (fun (_, a) (_, b) -> compare a b)
               (Array.to_list (Array.mapi (fun i r -> (i, r)) ranks)))))
  | Priority.Assignment.Not_found, stats ->
    Format.printf
      "  priority search: NO fixed-priority order works (%d orders simulated) — only a \
       time-triggered schedule (the CSP solution) does@."
      stats.Priority.Assignment.candidates
  | Priority.Assignment.Limit, _ -> Format.printf "  priority search: undecided@.");

  (* Random sweep: the anomaly is not rare. *)
  Format.printf "@.Sweep: 300 random instances (n=6, m=3, Tmax=6), CSP-feasible ones only@.";
  let params = Gen.Generator.default ~n:6 ~m:(Gen.Generator.Fixed_m 3) ~tmax:6 in
  let instances = Gen.Generator.batch ~seed:2024 ~count:300 params in
  let feasible = ref 0 in
  let edf_ok = ref 0 and rm_ok = ref 0 and dm_ok = ref 0 and llf_ok = ref 0 and part_ok = ref 0 in
  Array.iter
    (fun (ts, m) ->
      match Csp2.Solver.solve ~budget:(Prelude.Timer.budget ~wall_s:0.2 ()) ts ~m with
      | Encodings.Outcome.Feasible _, _ ->
        incr feasible;
        let check flag policy = if policy then incr flag in
        check edf_ok (let r = Sched.Sim.run ts ~m ~policy:Sched.Sim.EDF in r.Sched.Sim.ok && r.Sched.Sim.exact);
        check llf_ok (let r = Sched.Sim.run ts ~m ~policy:Sched.Sim.LLF in r.Sched.Sim.ok && r.Sched.Sim.exact);
        check rm_ok
          (let r = Sched.Sim.run ts ~m ~policy:(Sched.Sim.Fixed_priority (Sched.Sim.rm_priorities ts)) in
           r.Sched.Sim.ok && r.Sched.Sim.exact);
        check dm_ok
          (let r = Sched.Sim.run ts ~m ~policy:(Sched.Sim.Fixed_priority (Sched.Sim.dm_priorities ts)) in
           r.Sched.Sim.ok && r.Sched.Sim.exact);
        check part_ok (Sched.Partitioned.partition ts ~m).Sched.Partitioned.ok
      | (Encodings.Outcome.Infeasible | Encodings.Outcome.Limit | Encodings.Outcome.Memout _), _
        -> ())
    instances;
  Format.printf "  CSP-feasible instances : %d@." !feasible;
  Format.printf "  global EDF schedules   : %d@." !edf_ok;
  Format.printf "  global LLF schedules   : %d@." !llf_ok;
  Format.printf "  global RM schedules    : %d@." !rm_ok;
  Format.printf "  global DM schedules    : %d@." !dm_ok;
  Format.printf "  partitioned FF-EDF     : %d@." !part_ok
