(* Heterogeneous platforms (Section VI-A): an avionics-flavoured scenario.

   An integrated modular avionics cabinet mixes a general-purpose core
   (P1), a DSP (P2) and an I/O coprocessor (P3).  Rates model affinity:
   the signal-processing task runs twice as fast on the DSP, the bus
   handler runs *only* on the I/O coprocessor (s = 0 elsewhere — the
   paper's "dedicated processors" motivation), and the housekeeping tasks
   run anywhere.

   The example solves the system with both heterogeneous-aware paths
   (CSP1 with weighted demand (11), and the dedicated CSP2 search with
   quality-ordered processors (Section VI-A2)), verifies the schedules
   under weighted C4, and shows the processor-quality measure Q(P_j).

   Run with: dune exec examples/heterogeneous_avionics.exe *)

open Rt_model

let () =
  (* O C D T per task. *)
  let ts =
    Taskset.of_tuples
      [
        (0, 5, 8, 8);  (* τ1 signal processing: C=5 at unit speed          *)
        (0, 2, 4, 4);  (* τ2 flight control law                            *)
        (0, 2, 8, 8);  (* τ3 bus handler: only the I/O coprocessor         *)
        (1, 1, 3, 4);  (* τ4 telemetry                                     *)
      ]
  in
  (* rates.(task).(proc) *)
  let rates =
    [|
      [| 1; 2; 0 |];  (* τ1: DSP twice as fast, no I/O coprocessor        *)
      [| 1; 1; 0 |];  (* τ2 *)
      [| 0; 0; 1 |];  (* τ3: dedicated *)
      [| 1; 1; 1 |];  (* τ4 *)
    |]
  in
  let platform = Platform.heterogeneous ~rates in
  let m = Platform.processors platform in
  Format.printf "Task system:@.%a@." Taskset.pp ts;
  Format.printf "Platform: %a@." Platform.pp platform;
  for j = 0 to m - 1 do
    Format.printf "  Q(P%d) = %.3f%s@." (j + 1)
      (Platform.quality platform ts ~proc:j)
      (if j = 2 then "  (dedicated I/O coprocessor)" else "")
  done;

  (* The dedicated heterogeneous CSP2 search (Section VI-A adaptations). *)
  (match Core.solve ~platform ts ~m with
  | Core.Feasible schedule, elapsed ->
    Format.printf "@.CSP2 (heterogeneous search) finds a schedule in %.4fs:@.%a@." elapsed
      Schedule.pp schedule;
    Format.printf "Weighted C4 verification: %s@."
      (if Verify.is_feasible ~platform ts schedule then "ok" else "BUG")
  | (Core.Infeasible | Core.Limit | Core.Memout _), _ -> Format.printf "no schedule?!@.");

  (* CSP1 with the weighted demand constraint (11) agrees. *)
  (match Core.solve ~solver:Core.Csp1_generic ~platform ts ~m with
  | Core.Feasible _, elapsed -> Format.printf "CSP1 (constraint (11)) agrees: feasible (%.4fs)@." elapsed
  | (Core.Infeasible | Core.Limit | Core.Memout _), _ -> Format.printf "CSP1 disagrees?!@.");

  (* Remove the DSP: the signal task no longer fits at unit speed. *)
  let degraded =
    Platform.heterogeneous ~rates:(Array.map (fun row -> [| row.(0); row.(2) |]) rates)
  in
  Format.printf "@.Degraded cabinet (DSP failed, 2 processors left):@.";
  match Core.solve ~platform:degraded ts ~m:2 with
  | Core.Infeasible, elapsed ->
    Format.printf "  proved infeasible in %.4fs — the DSP was load-bearing@." elapsed
  | Core.Feasible _, _ -> Format.printf "  still feasible (unexpected for this workload)@."
  | (Core.Limit | Core.Memout _), _ -> Format.printf "  undecided@."
