#!/bin/sh
# Exit-code pinning for the mgrts CLI (see DESIGN.md §9): bad input and
# resource exhaustion must surface as a one-line "mgrts: ..." message and
# a stable nonzero code, never a crash dump.
#   0 decided   2 undecided   3 invalid input   4 hyperperiod overflow
set -u

MGRTS=$1
EXAMPLE=$2
MALFORMED=$3
OVERFLOW=$4

fail() {
  echo "test_cli: $1" >&2
  exit 1
}

expect() {
  want=$1
  label=$2
  shift 2
  "$MGRTS" "$@" >/dev/null 2>&1
  got=$?
  [ "$got" -eq "$want" ] || fail "$label: expected exit $want, got $got"
}

expect 0 "decided solve" solve "$EXAMPLE" -m 2 --quiet
expect 3 "m = 0" solve "$EXAMPLE" -m 0
expect 3 "malformed task set" solve "$MALFORMED" -m 2

# A missing input file used to escape as an uncaught Sys_error crash dump
# (or cmdliner's exit 124, depending on the path); it must be classified
# as invalid input like any other bad argument.
expect 3 "missing task-set file" solve /nonexistent/mgrts_no_such_file.txt -m 2
expect 3 "missing task-set file (analyze)" analyze /nonexistent/mgrts_no_such_file.txt -m 2

err=$("$MGRTS" solve /nonexistent/mgrts_no_such_file.txt -m 2 2>&1 >/dev/null)
case "$err" in
mgrts:*) ;;
*) fail "missing-file message: got '$err'" ;;
esac
expect 4 "hyperperiod overflow" solve "$OVERFLOW" -m 2
expect 4 "overflow reaches every reader" analyze "$OVERFLOW" -m 2
expect 3 "unknown failpoint site" solve "$EXAMPLE" -m 2 --failpoints bogus=raise:Out_of_memory

# Injected single-arm crash: the race must still decide, exit 0.
expect 0 "portfolio survives one crash" \
  solve "$EXAMPLE" -m 2 --quiet --solver portfolio \
  --failpoints portfolio.arm_start=raise:Out_of_memory@1

# The messages are one-liners on stderr, prefixed for grepping.
err=$("$MGRTS" solve "$OVERFLOW" -m 2 2>&1 >/dev/null)
case "$err" in
mgrts:*overflow*) ;;
*) fail "overflow message: got '$err'" ;;
esac

err=$("$MGRTS" solve "$MALFORMED" -m 2 2>&1 >/dev/null)
case "$err" in
mgrts:*) ;;
*) fail "malformed-input message: got '$err'" ;;
esac

echo "cli exit codes ok"
