(* Tests for the Core facade: solver dispatch, schedule verification on
   return, the transparent clone reduction for arbitrary deadlines, and
   the minimal-processor search. *)

open Rt_model

let check = Alcotest.check
let qtest = Test_util.qtest

let running = Examples.running_example

let test_all_solvers_running_example () =
  List.iter
    (fun solver ->
      match Core.solve ~solver running ~m:2 with
      | Core.Feasible _, elapsed ->
        Alcotest.(check bool)
          (Core.solver_name solver ^ " time sane")
          true (elapsed >= 0.)
      | (Core.Infeasible | Core.Limit | Core.Memout _), _ ->
        Alcotest.failf "%s failed on the running example" (Core.solver_name solver))
    Core.all_solvers

let test_complete_solvers_prove_infeasibility () =
  List.iter
    (fun solver ->
      match Core.solve ~solver running ~m:1 with
      | Core.Infeasible, _ -> ()
      | (Core.Feasible _ | Core.Limit | Core.Memout _), _ ->
        Alcotest.failf "%s should refute m=1" (Core.solver_name solver))
    [ Core.Csp1_generic; Core.Csp1_sat; Core.Csp2_generic; Core.default_solver ]

let test_feasible_helper () =
  Alcotest.(check (option bool)) "m=2" (Some true) (Core.feasible running ~m:2);
  Alcotest.(check (option bool)) "m=1" (Some false) (Core.feasible running ~m:1);
  Alcotest.(check (option bool)) "tiny budget -> None" None
    (Core.feasible ~solver:Core.Csp1_generic
       ~budget:(Prelude.Timer.budget ~nodes:1 ())
       (fst (Gen.Generator.generate (Prelude.Prng.create ~seed:8)
               (Gen.Generator.default ~n:10 ~m:(Gen.Generator.Fixed_m 5) ~tmax:7)))
       ~m:5)

let test_solver_names () =
  Alcotest.(check string) "default" "csp2+D-C" (Core.solver_name Core.default_solver);
  Alcotest.(check string) "csp1" "csp1" (Core.solver_name Core.Csp1_generic);
  Alcotest.(check string) "sat" "csp1-sat" (Core.solver_name Core.Csp1_sat)

let test_platform_mismatch_rejected () =
  let platform = Platform.identical ~m:3 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Core.solve ~platform running ~m:2);
       false
     with Invalid_argument _ -> true)

let test_sat_rejects_heterogeneous () =
  let ts, platform = Examples.dedicated in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Core.solve ~solver:Core.Csp1_sat ~platform ts ~m:2);
       false
     with Invalid_argument _ -> true)

let test_arbitrary_deadline_reduction () =
  let ts = Examples.arbitrary_deadline in
  match Core.solve ts ~m:2 with
  | Core.Feasible sched, _ ->
    (* The mapped schedule speaks original task ids over the clone
       hyperperiod. *)
    let clone_hp = Taskset.hyperperiod (Clone.cloned (Clone.transform ts)) in
    check Alcotest.int "horizon is the clone hyperperiod" clone_hp (Schedule.horizon sched);
    let n = Taskset.size ts in
    let ok = ref true in
    for j = 0 to 1 do
      for t = 0 to Schedule.horizon sched - 1 do
        let v = Schedule.get sched ~proc:j ~time:t in
        if v <> Schedule.idle && (v < 0 || v >= n) then ok := false
      done
    done;
    Alcotest.(check bool) "original ids" true !ok
  | (Core.Infeasible | Core.Limit | Core.Memout _), _ ->
    Alcotest.fail "the arbitrary-deadline example is feasible on 2 processors"

let prop_arbitrary_deadline_agreement =
  (* Verdicts must be consistent (never Feasible vs Infeasible); the CDCL
     reference refutes high-utilization clone systems quickly. *)
  qtest ~count:30 "clone reduction: complete solvers are consistent on D>T systems"
    (Test_util.loose_taskset_gen ~nmax:3 ~tmax:3 ())
    (fun ts ->
      let m = 2 in
      let budget () = Prelude.Timer.budget ~wall_s:2.0 () in
      let a = fst (Core.solve ~solver:Core.Csp1_sat ~budget:(budget ()) ts ~m) in
      let b = fst (Core.solve ~solver:Core.default_solver ~budget:(budget ()) ts ~m) in
      Encodings.Outcome.agree a b
      (* and the dedicated path must decide: its refutations are fast. *)
      && (match b with Core.Feasible _ | Core.Infeasible -> true | _ -> false))

let test_opt_heterogeneous_fallback () =
  (* [Csp2_opt] only packs identical platforms; on a heterogeneous one it
     must transparently fall back to the dedicated heterogeneous solver
     and agree with the [Csp2_dedicated] route. *)
  let ts, platform = Examples.dedicated in
  let m = Platform.processors platform in
  let a = fst (Core.solve ~solver:(Core.Csp2_opt Csp2.Heuristic.DC) ~platform ts ~m) in
  let b = fst (Core.solve ~solver:(Core.Csp2_dedicated Csp2.Heuristic.DC) ~platform ts ~m) in
  Alcotest.(check bool) "agree" true (Encodings.Outcome.agree a b);
  Alcotest.(check bool) "decided" true
    (match a with Core.Feasible _ | Core.Infeasible -> true | _ -> false)

let prop_opt_clone_agreement =
  (* D > T systems reach the optimized engine through the clone
     transform; its verdicts must stay consistent with the CDCL
     reference, and mapped-back schedules must verify (enforced by the
     facade's verify guard raising on failure). *)
  qtest ~count:30 "clone reduction: optimized engine is consistent on D>T systems"
    (Test_util.loose_taskset_gen ~nmax:3 ~tmax:3 ())
    (fun ts ->
      let m = 2 in
      let budget () = Prelude.Timer.budget ~wall_s:2.0 () in
      let a = fst (Core.solve ~solver:Core.Csp1_sat ~budget:(budget ()) ts ~m) in
      let b =
        fst (Core.solve ~solver:(Core.Csp2_opt Csp2.Heuristic.DC) ~budget:(budget ()) ts ~m)
      in
      Encodings.Outcome.agree a b
      && (match b with Core.Feasible _ | Core.Infeasible -> true | _ -> false))

let test_solve_csp2_opt_facade () =
  (* The stats-bearing entry point: counters when the engine searched,
     [None] when the static pass decided, and parallel knobs accepted. *)
  (match Core.solve_csp2_opt ~analyze:false ~jobs:2 ~split_depth:1 running ~m:2 with
  | Core.Feasible sched, _, Some stats ->
    Alcotest.(check bool) "verified" true (Verify.is_feasible running sched);
    Alcotest.(check bool) "searched" true (stats.Csp2.Opt.nodes > 0)
  | (Core.Feasible _ | Core.Infeasible | Core.Limit | Core.Memout _), _, _ ->
    Alcotest.fail "running example is feasible on m=2 with search stats");
  match Core.solve_csp2_opt running ~m:1 with
  | Core.Infeasible, _, None -> ()
  | Core.Infeasible, _, Some _ ->
    Alcotest.fail "static pass should decide m=1 without search"
  | (Core.Feasible _ | Core.Limit | Core.Memout _), _, _ ->
    Alcotest.fail "running example is infeasible on m=1"

let test_dispatch_het_domains_rejected () =
  (* Pins the fallback bugfix: [dispatch] used to silently drop pruned
     [domains] when the dedicated engines fall back to {!Csp2.Het} on a
     heterogeneous platform.  It must reject the combination explicitly —
     and still decide the instance when no domains are passed. *)
  let ts, platform = Examples.dedicated in
  let m = Platform.processors platform in
  let budget = Prelude.Timer.unlimited in
  let domains =
    Analysis.Domains.create ~n:(Taskset.size ts) ~m ~horizon:(Taskset.hyperperiod ts)
  in
  List.iter
    (fun solver ->
      Alcotest.(check bool)
        (Core.solver_name solver ^ " rejects het platform + domains")
        true
        (try
           ignore (Core.dispatch solver ~platform ~budget ~seed:0 ~domains ts ~m);
           false
         with Invalid_argument _ -> true);
      match Core.dispatch solver ~platform ~budget ~seed:0 ts ~m with
      | Core.Feasible _ | Core.Infeasible -> ()
      | Core.Limit | Core.Memout _ ->
        Alcotest.failf "%s should decide the dedicated example without domains"
          (Core.solver_name solver))
    [ Core.Csp2_dedicated Csp2.Heuristic.DC; Core.Csp2_opt Csp2.Heuristic.DC ]

let prop_mapped_schedules_reverify =
  (* Pins the re-verification bugfix from the outside: with the facade's
     own verify guard off, every mapped-back schedule returned for a D>T
     system must still pass the cyclic checker against the {e original}
     task set — the mapping itself is sound, not merely unchecked. *)
  qtest ~count:30 "clone-mapped schedules re-verify against the original task set"
    (Test_util.loose_taskset_gen ~nmax:3 ~tmax:3 ())
    (fun ts ->
      let m = 2 in
      match Core.solve ~verify:false ~budget:(Prelude.Timer.budget ~wall_s:2.0 ()) ts ~m with
      | Core.Feasible sched, _ -> Verify.check_cyclic ts sched = Ok ()
      | (Core.Infeasible | Core.Limit | Core.Memout _), _ -> true)

let test_min_processors () =
  Alcotest.(check bool) "running example" true
    (Core.min_processors running = Core.Exact 2);
  Alcotest.(check bool) "trap" true
    (Core.min_processors Examples.edf_trap = Core.Exact 2);
  (* An infeasible-at-any-m system does not exist with C <= D, so check the
     max_m cutoff instead. *)
  Alcotest.(check bool) "cutoff" true
    (Core.min_processors ~max_m:1 running = Core.All_infeasible);
  Alcotest.(check (option int)) "exn wrapper" (Some 2) (Core.min_processors_exn running)

let test_min_processors_inconclusive () =
  (* A one-node budget times out at every m, so the search must admit it
     cannot locate the minimum instead of inflating it.  [analyze:false]:
     the static pass decides the running example without search nodes,
     which would defeat the budget-semantics point of this test. *)
  let budget_per_m = Some (Prelude.Timer.budget ~nodes:1 ()) in
  match Core.min_processors ~budget_per_m ~analyze:false running with
  | Core.Inconclusive { first_limit; feasible = None } ->
    Alcotest.(check int) "first undecided m is the lower bound"
      (Taskset.min_processors running) first_limit
  | Core.Inconclusive { feasible = Some _; _ } ->
    Alcotest.fail "nothing is decidable in one node"
  | Core.Exact _ | Core.All_infeasible ->
    Alcotest.fail "a one-node budget cannot decide anything"

let prop_min_processors_bounds =
  qtest ~count:30 "min_processors lies between ceil(U) and n"
    (Test_util.taskset_gen ~nmax:4 ~tmax:4 ())
    (fun ts ->
      match Core.min_processors ts with
      | Core.Exact m -> m >= Taskset.min_processors ts && m <= max 1 (Taskset.size ts)
      | Core.All_infeasible -> true
      | Core.Inconclusive _ -> false (* unbudgeted search is always decided *))

let test_analyze_facade () =
  (* Constrained input: the report refers to the input itself. *)
  let report, analyzed = Core.analyze running ~m:1 in
  Alcotest.(check bool) "same taskset" true (analyzed == running);
  (match report.Analysis.verdict with
  | Analysis.Infeasible cert ->
    Alcotest.(check bool) "certificate validates" true
      (Analysis.Certificate.validate analyzed (Platform.identical ~m:1) cert)
  | Analysis.Trivially_feasible _ | Analysis.Pruned _ ->
    Alcotest.fail "running example is statically refutable on m=1");
  (* Arbitrary deadlines: the report refers to the clone system. *)
  let ts = Examples.arbitrary_deadline in
  let _, analyzed = Core.analyze ts ~m:2 in
  Alcotest.(check bool) "clone system returned" true
    (Taskset.is_constrained analyzed && not (Taskset.is_constrained ts))

let test_static_pass_lets_local_search_refute () =
  (* Local search alone can never prove infeasibility; through the static
     pre-pass the facade still returns a refutation without searching. *)
  match Core.solve ~solver:Core.Local_search running ~m:1 with
  | Core.Infeasible, _ -> ()
  | (Core.Feasible _ | Core.Limit | Core.Memout _), _ ->
    Alcotest.fail "static pass should refute m=1 before local search runs"

let prop_verify_guard_all_solvers =
  (* Core.solve with verify=true must never return an unverified schedule;
     exercising it across solvers is an end-to-end soundness sweep. *)
  qtest ~count:30 "facade schedules are always verified"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      List.for_all
        (fun solver ->
          match
            Core.solve ~solver ~budget:(Prelude.Timer.budget ~wall_s:5.0 ()) ts ~m
          with
          | Core.Feasible sched, _ -> Verify.is_feasible ts sched
          | (Core.Infeasible | Core.Limit | Core.Memout _), _ -> true)
        [ Core.Csp1_generic; Core.Csp1_sat; Core.Csp2_generic; Core.default_solver ])

let () =
  Alcotest.run "core"
    [
      ( "facade",
        [
          Alcotest.test_case "all solvers solve the example" `Quick
            test_all_solvers_running_example;
          Alcotest.test_case "complete solvers refute" `Quick
            test_complete_solvers_prove_infeasibility;
          Alcotest.test_case "feasible helper" `Quick test_feasible_helper;
          Alcotest.test_case "solver names" `Quick test_solver_names;
          Alcotest.test_case "platform mismatch" `Quick test_platform_mismatch_rejected;
          Alcotest.test_case "sat rejects heterogeneous" `Quick test_sat_rejects_heterogeneous;
          Alcotest.test_case "analyze facade" `Quick test_analyze_facade;
          Alcotest.test_case "static pass refutes for local search" `Quick
            test_static_pass_lets_local_search_refute;
          prop_verify_guard_all_solvers;
          Alcotest.test_case "opt heterogeneous fallback" `Quick
            test_opt_heterogeneous_fallback;
          Alcotest.test_case "dispatch rejects het + domains" `Quick
            test_dispatch_het_domains_rejected;
          Alcotest.test_case "solve_csp2_opt stats" `Quick test_solve_csp2_opt_facade;
        ] );
      ( "arbitrary deadlines",
        [
          Alcotest.test_case "clone reduction" `Quick test_arbitrary_deadline_reduction;
          prop_arbitrary_deadline_agreement;
          prop_opt_clone_agreement;
          prop_mapped_schedules_reverify;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "min_processors" `Quick test_min_processors;
          Alcotest.test_case "min_processors inconclusive" `Quick
            test_min_processors_inconclusive;
          prop_min_processors_bounds;
        ] );
    ]
