(* Unit and property tests for the prelude: exact integer math, PRNG,
   bitsets, combinations, tables, accumulators. *)

open Prelude

let check = Alcotest.check
let qtest = Test_util.qtest

(* ------------------------------------------------------------------ *)
(* Intmath                                                             *)

let test_gcd_basics () =
  check Alcotest.int "gcd 12 18" 6 (Intmath.gcd 12 18);
  check Alcotest.int "gcd 0 5" 5 (Intmath.gcd 0 5);
  check Alcotest.int "gcd 5 0" 5 (Intmath.gcd 5 0);
  check Alcotest.int "gcd 0 0" 0 (Intmath.gcd 0 0);
  check Alcotest.int "gcd negatives" 6 (Intmath.gcd (-12) 18)

let test_lcm_basics () =
  check Alcotest.int "lcm 4 6" 12 (Intmath.lcm 4 6);
  check Alcotest.int "lcm 1..7" 420 (Intmath.lcm_list [ 1; 2; 3; 4; 5; 6; 7 ]);
  check Alcotest.int "lcm 1..15" 360360 (Intmath.lcm_list [ 1;2;3;4;5;6;7;8;9;10;11;12;13;14;15 ]);
  check Alcotest.int "lcm_list empty" 1 (Intmath.lcm_list []);
  check Alcotest.int "lcm 0" 0 (Intmath.lcm 0 9)

let test_lcm_overflow () =
  Alcotest.check_raises "overflow" (Intmath.Overflow "Intmath.lcm") (fun () ->
      ignore (Intmath.lcm max_int (max_int - 1)))

let prop_gcd_divides =
  qtest "gcd divides both"
    QCheck2.Gen.(pair (int_range 1 100000) (int_range 1 100000))
    (fun (a, b) ->
      let g = Intmath.gcd a b in
      g > 0 && a mod g = 0 && b mod g = 0)

let prop_lcm_gcd =
  qtest "gcd * lcm = a * b"
    QCheck2.Gen.(pair (int_range 1 10000) (int_range 1 10000))
    (fun (a, b) -> Intmath.gcd a b * Intmath.lcm a b = a * b)

let test_cdiv () =
  check Alcotest.int "cdiv 7 2" 4 (Intmath.cdiv 7 2);
  check Alcotest.int "cdiv 8 2" 4 (Intmath.cdiv 8 2);
  check Alcotest.int "cdiv 0 3" 0 (Intmath.cdiv 0 3);
  check Alcotest.int "cdiv 1 5" 1 (Intmath.cdiv 1 5);
  Alcotest.check_raises "cdiv by 0" (Invalid_argument "Intmath.cdiv: non-positive divisor")
    (fun () -> ignore (Intmath.cdiv 3 0))

let test_pow () =
  check Alcotest.int "2^10" 1024 (Intmath.pow 2 10);
  check Alcotest.int "7^0" 1 (Intmath.pow 7 0);
  check Alcotest.int "1^big" 1 (Intmath.pow 1 60);
  check Alcotest.int "0^3" 0 (Intmath.pow 0 3)

let test_imod () =
  check Alcotest.int "imod -1 12" 11 (Intmath.imod (-1) 12);
  check Alcotest.int "imod 13 12" 1 (Intmath.imod 13 12);
  check Alcotest.int "imod -12 12" 0 (Intmath.imod (-12) 12)

let test_luby () =
  let expected = [ 1; 1; 2; 1; 1; 2; 4; 1; 1; 2; 1; 1; 2; 4; 8 ] in
  List.iteri
    (fun i want -> check Alcotest.int (Printf.sprintf "luby %d" (i + 1)) want (Intmath.luby (i + 1)))
    expected

let test_clamp () =
  check Alcotest.int "inside" 5 (Intmath.clamp ~lo:0 ~hi:10 5);
  check Alcotest.int "below" 0 (Intmath.clamp ~lo:0 ~hi:10 (-3));
  check Alcotest.int "above" 10 (Intmath.clamp ~lo:0 ~hi:10 42)

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_seeds_differ () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.int a 1_000_000 = Prng.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 8)

let prop_prng_range =
  qtest "int g b in [0,b)"
    QCheck2.Gen.(pair (int_range 0 10000) (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.create ~seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let prop_in_range =
  qtest "in_range inclusive"
    QCheck2.Gen.(pair small_int (pair (int_range (-50) 50) (int_range 0 100)))
    (fun (seed, (lo, span)) ->
      let g = Prng.create ~seed in
      let v = Prng.in_range g ~lo ~hi:(lo + span) in
      v >= lo && v <= lo + span)

let test_prng_uniformity () =
  (* Coarse chi-squared-ish check: 10 buckets, 10k draws. *)
  let g = Prng.create ~seed:7 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Prng.int g 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "bucket %d near 1000 (%d)" i c) true
        (c > 850 && c < 1150))
    buckets

let test_shuffle_permutation () =
  let g = Prng.create ~seed:3 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_split_independent () =
  let g = Prng.create ~seed:5 in
  let child = Prng.split g in
  (* Child and parent continue without interfering deterministically. *)
  let c1 = Prng.int child 1000 and p1 = Prng.int g 1000 in
  let g' = Prng.create ~seed:5 in
  let child' = Prng.split g' in
  check Alcotest.int "child reproducible" c1 (Prng.int child' 1000);
  check Alcotest.int "parent reproducible" p1 (Prng.int g' 1000)

let test_float_range () =
  let g = Prng.create ~seed:11 in
  for _ = 1 to 1000 do
    let f = Prng.float g in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)

let ref_of_list l = List.sort_uniq compare l

let prop_bitset_model =
  (* Apply a random op sequence; compare against a sorted-list model. *)
  let open QCheck2.Gen in
  let op = int_range 0 199 >>= fun v -> int_range 0 3 >>= fun k -> return (k, v) in
  qtest ~count:200 "bitset matches reference model"
    (list_size (int_range 0 60) op)
    (fun ops ->
      let set = Prelude.Bitset.create 200 in
      let model = ref [] in
      List.iter
        (fun (k, v) ->
          match k with
          | 0 ->
            Prelude.Bitset.add set v;
            model := ref_of_list (v :: !model)
          | 1 ->
            Prelude.Bitset.remove set v;
            model := List.filter (fun x -> x <> v) !model
          | 2 -> Prelude.Bitset.remove_below set v;
            model := List.filter (fun x -> x >= v) !model
          | _ -> Prelude.Bitset.remove_above set v;
            model := List.filter (fun x -> x <= v) !model)
        ops;
      Prelude.Bitset.elements set = !model
      && Prelude.Bitset.cardinal set = List.length !model
      && (match !model with
         | [] -> Prelude.Bitset.is_empty set
         | first :: _ ->
           Prelude.Bitset.min_elt set = first
           && Prelude.Bitset.max_elt set = List.nth !model (List.length !model - 1)))

let test_bitset_full () =
  let s = Prelude.Bitset.full 67 in
  check Alcotest.int "cardinal" 67 (Prelude.Bitset.cardinal s);
  check Alcotest.int "min" 0 (Prelude.Bitset.min_elt s);
  check Alcotest.int "max" 66 (Prelude.Bitset.max_elt s);
  Alcotest.(check bool) "no 67" false (Prelude.Bitset.mem s 67)

let test_bitset_next_from () =
  let s = Prelude.Bitset.create 128 in
  List.iter (Prelude.Bitset.add s) [ 3; 64; 100 ];
  check Alcotest.int "from 0" 3 (Prelude.Bitset.next_from s 0);
  check Alcotest.int "from 3" 3 (Prelude.Bitset.next_from s 3);
  check Alcotest.int "from 4" 64 (Prelude.Bitset.next_from s 4);
  check Alcotest.int "from 65" 100 (Prelude.Bitset.next_from s 65);
  Alcotest.check_raises "from 101" Not_found (fun () ->
      ignore (Prelude.Bitset.next_from s 101))

let test_bitset_blit_clear () =
  let a = Prelude.Bitset.full 100 and b = Prelude.Bitset.create 100 in
  Prelude.Bitset.blit ~src:a ~dst:b;
  Alcotest.(check bool) "equal after blit" true (Prelude.Bitset.equal a b);
  Prelude.Bitset.clear b;
  Alcotest.(check bool) "empty after clear" true (Prelude.Bitset.is_empty b)

let test_bitset_singleton () =
  let s = Prelude.Bitset.create 10 in
  Alcotest.(check (option int)) "empty" None (Prelude.Bitset.singleton_value s);
  Prelude.Bitset.add s 4;
  Alcotest.(check (option int)) "singleton" (Some 4) (Prelude.Bitset.singleton_value s);
  Prelude.Bitset.add s 7;
  Alcotest.(check (option int)) "pair" None (Prelude.Bitset.singleton_value s)

(* ------------------------------------------------------------------ *)
(* Combi                                                               *)

let test_combi_exhaustive () =
  let seen = ref [] in
  Prelude.Combi.iter ~n:5 ~k:3 (fun c -> seen := Array.to_list c :: !seen);
  let seen = List.rev !seen in
  check Alcotest.int "C(5,3)" 10 (List.length seen);
  check Alcotest.int "count agrees" 10 (Prelude.Combi.count ~n:5 ~k:3);
  (* Lexicographic order. *)
  Alcotest.(check (list (list int))) "prefix"
    [ [ 0; 1; 2 ]; [ 0; 1; 3 ]; [ 0; 1; 4 ]; [ 0; 2; 3 ] ]
    [ List.nth seen 0; List.nth seen 1; List.nth seen 2; List.nth seen 3 ]

let test_combi_edge () =
  Alcotest.(check (option (array int))) "k=0" (Some [||]) (Prelude.Combi.first ~n:4 ~k:0);
  Alcotest.(check (option (array int))) "k>n" None (Prelude.Combi.first ~n:2 ~k:3);
  check Alcotest.int "count k>n" 0 (Prelude.Combi.count ~n:2 ~k:3);
  check Alcotest.int "count k=n" 1 (Prelude.Combi.count ~n:4 ~k:4)

let prop_combi_count =
  qtest "iter visits count strictly-increasing combos"
    QCheck2.Gen.(pair (int_range 0 8) (int_range 0 8))
    (fun (n, k) ->
      let visits = ref 0 in
      let well_formed = ref true in
      Prelude.Combi.iter ~n ~k (fun c ->
          incr visits;
          if Array.length c <> k then well_formed := false;
          Array.iteri
            (fun i v ->
              if v < 0 || v >= n then well_formed := false;
              if i > 0 && c.(i - 1) >= v then well_formed := false)
            c);
      !well_formed && !visits = Prelude.Combi.count ~n ~k)

let prop_combi_next_k_matches_next =
  (* [next_k] over a longer, reused buffer must trace exactly the same
     combination sequence as [next] over an exact-size array. *)
  qtest "next_k on an oversized buffer = next on an exact one"
    QCheck2.Gen.(pair (int_range 0 7) (int_range 0 7))
    (fun (n, k) ->
      if k > n then true
      else begin
        let buf = Array.make (max 1 (k + 3)) 0 in
        for i = 0 to k - 1 do
          buf.(i) <- i
        done;
        let exact = Array.init k Fun.id in
        let ok = ref true in
        let continue_ = ref true in
        while !continue_ do
          for i = 0 to k - 1 do
            if buf.(i) <> exact.(i) then ok := false
          done;
          let a = Prelude.Combi.next_k ~n ~k buf in
          let b = k > 0 && Prelude.Combi.next ~n exact in
          if a <> b then ok := false;
          continue_ := a && b && !ok
        done;
        !ok
      end)

(* ------------------------------------------------------------------ *)
(* Ibits                                                               *)

let test_ibits_lowest_bit () =
  (* Regression: the De Bruijn index computation once dropped parentheses
     around the 32-bit truncation ([lsr] binds tighter than [land]),
     returning garbage indices for most words. *)
  for i = 0 to 31 do
    check Alcotest.int
      (Printf.sprintf "bit %d" i)
      i
      (Prelude.Ibits.lowest_bit_index (1 lsl i))
  done;
  check Alcotest.int "composite word" 3 (Prelude.Ibits.lowest_bit_index 0b11011000)

let test_ibits_basics () =
  let s = Prelude.Ibits.create 70 in
  Alcotest.(check bool) "fresh is empty" true (Prelude.Ibits.is_empty s);
  List.iter (Prelude.Ibits.set s) [ 0; 31; 32; 69 ];
  Alcotest.(check (list int)) "elements" [ 0; 31; 32; 69 ] (Prelude.Ibits.elements s);
  check Alcotest.int "popcount" 4 (Prelude.Ibits.popcount s);
  Alcotest.(check bool) "mem 31" true (Prelude.Ibits.mem s 31);
  Alcotest.(check bool) "mem 33" false (Prelude.Ibits.mem s 33);
  Prelude.Ibits.unset s 31;
  Alcotest.(check (list int)) "after unset" [ 0; 32; 69 ] (Prelude.Ibits.elements s);
  Prelude.Ibits.clear s;
  Alcotest.(check bool) "cleared" true (Prelude.Ibits.is_empty s)

let test_ibits_setops () =
  let a = Prelude.Ibits.create 64 and b = Prelude.Ibits.create 64 in
  let dst = Prelude.Ibits.create 64 in
  List.iter (Prelude.Ibits.set a) [ 1; 5; 40; 63 ];
  List.iter (Prelude.Ibits.set b) [ 5; 40; 41 ];
  Prelude.Ibits.inter_into ~dst a b;
  Alcotest.(check (list int)) "inter" [ 5; 40 ] (Prelude.Ibits.elements dst);
  Prelude.Ibits.diff_into ~dst a b;
  Alcotest.(check (list int)) "diff" [ 1; 63 ] (Prelude.Ibits.elements dst);
  Prelude.Ibits.copy_into ~src:a ~dst;
  Alcotest.(check (list int)) "copy" [ 1; 5; 40; 63 ] (Prelude.Ibits.elements dst)

let prop_ibits_model =
  (* Random operation trace against a sorted-list model, mirroring the
     [Bitset] model test. *)
  qtest "ibits agrees with a reference model"
    QCheck2.Gen.(list_size (return 120) (pair (int_range 0 2) (int_range 0 199)))
    (fun ops ->
      let set = Prelude.Ibits.create 200 in
      let model = ref [] in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 ->
            Prelude.Ibits.set set v;
            if not (List.mem v !model) then model := List.sort Int.compare (v :: !model)
          | 1 ->
            Prelude.Ibits.unset set v;
            model := List.filter (fun x -> x <> v) !model
          | _ -> if Prelude.Ibits.mem set v <> List.mem v !model then model := [ -1 ])
        ops;
      Prelude.Ibits.elements set = !model
      && Prelude.Ibits.popcount set = List.length !model
      && Prelude.Ibits.fold (fun acc _ -> acc + 1) 0 set = List.length !model
      && Prelude.Ibits.is_empty set = (!model = []))

(* ------------------------------------------------------------------ *)
(* Ascii_table, Welford, Bool_vec, Timer                                *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_ascii_table () =
  let t = Prelude.Ascii_table.create ~headers:[ "a"; "bb" ] in
  Prelude.Ascii_table.add_row t [ "1"; "22" ];
  Prelude.Ascii_table.add_sep t;
  Prelude.Ascii_table.add_row t [ "333"; "4" ];
  let out = Prelude.Ascii_table.render t in
  Alcotest.(check bool) "contains header" true (contains out " a ");
  Alcotest.(check bool) "contains wide cell" true (contains out "333");
  Alcotest.check_raises "arity" (Invalid_argument "Ascii_table.add_row") (fun () ->
      Prelude.Ascii_table.add_row t [ "only one" ])

let test_welford () =
  let w = Prelude.Welford.create () in
  List.iter (Prelude.Welford.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check Alcotest.int "count" 8 (Prelude.Welford.count w);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Prelude.Welford.mean w);
  Alcotest.(check (float 1e-9)) "variance" (32. /. 7.) (Prelude.Welford.variance w);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Prelude.Welford.min w);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Prelude.Welford.max w)

let test_bool_vec () =
  let v = Prelude.Bool_vec.create () in
  Alcotest.(check bool) "unset" false (Prelude.Bool_vec.get v 1000);
  Prelude.Bool_vec.set v 1000 true;
  Alcotest.(check bool) "set" true (Prelude.Bool_vec.get v 1000);
  Prelude.Bool_vec.clear v;
  Alcotest.(check bool) "cleared" false (Prelude.Bool_vec.get v 1000)

let test_prng_copy () =
  let a = Prng.create ~seed:13 in
  ignore (Prng.int a 100);
  let b = Prng.copy a in
  for _ = 1 to 20 do
    check Alcotest.int "copies coincide" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_welford_degenerate () =
  let w = Welford.create () in
  Alcotest.(check (float 0.)) "empty mean" 0. (Welford.mean w);
  Alcotest.(check (float 0.)) "empty variance" 0. (Welford.variance w);
  (* No observations: nan, not the +/-infinity initializers. *)
  Alcotest.(check bool) "empty min is nan" true (Float.is_nan (Welford.min w));
  Alcotest.(check bool) "empty max is nan" true (Float.is_nan (Welford.max w));
  Welford.add w 7.;
  Alcotest.(check (float 0.)) "single mean" 7. (Welford.mean w);
  Alcotest.(check (float 0.)) "single variance" 0. (Welford.variance w);
  Alcotest.(check (float 0.)) "single min" 7. (Welford.min w);
  Alcotest.(check (float 0.)) "single max" 7. (Welford.max w)

let test_pow_overflow () =
  Alcotest.(check bool) "2^80 overflows" true
    (try ignore (Intmath.pow 2 80); false with Intmath.Overflow _ -> true);
  Alcotest.check_raises "negative exponent" (Invalid_argument "Intmath.pow: negative exponent")
    (fun () -> ignore (Intmath.pow 2 (-1)))

let test_budget () =
  let b = Timer.budget ~nodes:100 () in
  Alcotest.(check bool) "below" false (Timer.exceeded b ~nodes:99);
  Alcotest.(check bool) "at" true (Timer.exceeded b ~nodes:100);
  let b2 = Timer.budget ~wall_s:3600. () in
  Alcotest.(check bool) "time far away" false (Timer.exceeded b2 ~nodes:0);
  Alcotest.(check bool) "unlimited" false (Timer.exceeded Timer.unlimited ~nodes:max_int)

let test_budget_cancel () =
  let b = Timer.budget ~wall_s:3600. () in
  Alcotest.(check bool) "fresh" false (Timer.cancelled b);
  Timer.cancel b;
  Alcotest.(check bool) "cancelled" true (Timer.cancelled b);
  Alcotest.(check bool) "exceeded once cancelled" true (Timer.exceeded b ~nodes:0);
  (* with_stop shares one flag across budgets. *)
  let stop = Atomic.make false in
  let a1 = Timer.with_stop (Timer.budget ~wall_s:3600. ()) stop in
  let a2 = Timer.with_stop (Timer.budget ~nodes:1_000_000 ()) stop in
  Alcotest.(check bool) "arm 1 fresh" false (Timer.cancelled a1);
  Timer.cancel a2;
  Alcotest.(check bool) "arm 1 sees arm 2's cancel" true (Timer.cancelled a1);
  (* The shared unlimited budget is not cancellable. *)
  Timer.cancel Timer.unlimited;
  Alcotest.(check bool) "unlimited immune" false (Timer.cancelled Timer.unlimited)

(* [with_stop] must compose: installing a new flag demotes the previous one
   to a watched flag, it does not disconnect it.  This was the portfolio
   cancellation bug — cancelling the caller's budget was never observed
   after the race swapped in its internal stop flag. *)
let test_with_stop_composes () =
  let outer = Timer.budget ~wall_s:3600. () in
  let inner = Timer.with_stop outer (Atomic.make false) in
  Alcotest.(check bool) "inner fresh" false (Timer.cancelled inner);
  Timer.cancel outer;
  Alcotest.(check bool) "inner sees outer cancel" true (Timer.cancelled inner);
  (* Downward only: cancelling the derived budget must not cancel the
     caller's. *)
  let outer2 = Timer.budget ~wall_s:3600. () in
  let inner2 = Timer.with_stop outer2 (Atomic.make false) in
  Timer.cancel inner2;
  Alcotest.(check bool) "inner2 cancelled" true (Timer.cancelled inner2);
  Alcotest.(check bool) "outer2 untouched" false (Timer.cancelled outer2);
  (* Two levels: outer -> mid -> leaf. *)
  let mid = Timer.with_stop outer2 (Atomic.make false) in
  let leaf = Timer.with_stop mid (Atomic.make false) in
  Timer.cancel outer2;
  Alcotest.(check bool) "leaf sees root cancel through two levels" true (Timer.cancelled leaf)

(* [Timer.sub] derives a child with fresh limits that still observes every
   ancestor flag (the portfolio analyzer arm). *)
let test_sub_budget () =
  let parent = Timer.budget ~wall_s:3600. () in
  let child = Timer.sub ~wall_s:1800. parent in
  Alcotest.(check bool) "child fresh" false (Timer.cancelled child);
  Timer.cancel parent;
  Alcotest.(check bool) "child sees parent cancel" true (Timer.cancelled parent);
  Alcotest.(check bool) "child cancelled via parent" true (Timer.cancelled child);
  (* And not the other way around. *)
  let parent2 = Timer.budget ~wall_s:3600. () in
  let child2 = Timer.sub ~nodes:10 parent2 in
  Timer.cancel child2;
  Alcotest.(check bool) "parent2 untouched" false (Timer.cancelled parent2);
  (* A child of a stop-flagged budget (race arm) still sees the flag. *)
  let stop = Atomic.make false in
  let arm = Timer.with_stop (Timer.budget ~wall_s:3600. ()) stop in
  let grandchild = Timer.sub ~wall_s:1. arm in
  Atomic.set stop true;
  Alcotest.(check bool) "grandchild sees the race flag" true (Timer.cancelled grandchild);
  (* Fresh node limits: the child's node budget is its own. *)
  let p3 = Timer.budget ~nodes:100 () in
  let c3 = Timer.sub ~nodes:10 p3 in
  Alcotest.(check bool) "child node limit" true (Timer.exceeded c3 ~nodes:10);
  Alcotest.(check bool) "parent node limit unchanged" false (Timer.exceeded p3 ~nodes:10)

(* ------------------------------------------------------------------ *)
(* Deque (Chase-Lev work-stealing)                                     *)

(* Sequential refinement: against a plain list model the deque is exact —
   [push]/[pop] act on the newest end, [steal] takes the oldest, and with
   no contention a steal of a non-empty deque never fails. *)
let prop_deque_model =
  qtest "deque matches list model (sequential)"
    QCheck2.Gen.(list_size (int_range 0 300) (int_range 0 3))
    (fun ops ->
      let d = Deque.create ~capacity:16 () in
      let model = ref [] in
      (* head = newest *)
      let counter = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 | 1 ->
            incr counter;
            Deque.push d !counter;
            model := !counter :: !model;
            true
          | 2 -> (
            match (Deque.pop d, !model) with
            | Some x, y :: rest when x = y ->
              model := rest;
              true
            | None, [] -> true
            | _ -> false)
          | _ -> (
            match (Deque.steal d, List.rev !model) with
            | Some x, y :: rest when x = y ->
              model := List.rev rest;
              true
            | None, [] -> true
            | _ -> false))
        ops
      && Deque.size d = List.length !model)

let test_deque_steal_fifo () =
  let d = Deque.create () in
  for i = 1 to 10 do
    Deque.push d i
  done;
  for i = 1 to 10 do
    check Alcotest.(option int) "steal takes the oldest" (Some i) (Deque.steal d)
  done;
  check Alcotest.(option int) "empty" None (Deque.steal d)

let test_deque_grow () =
  (* Push far past the initial capacity: growth must preserve both the
     contents and the LIFO pop order. *)
  let d = Deque.create ~capacity:16 () in
  for i = 0 to 999 do
    Deque.push d i
  done;
  check Alcotest.int "size after growth" 1000 (Deque.size d);
  for i = 999 downto 0 do
    check Alcotest.(option int) "pop order preserved" (Some i) (Deque.pop d)
  done;
  check Alcotest.(option int) "drained" None (Deque.pop d)

(* The linearizability smoke test: one owner pushing and popping, two
   thieves stealing concurrently.  Whatever the interleaving, every
   pushed item must surface exactly once across the three actors — a
   double-take or a lost element is exactly the class of bug a Chase-Lev
   implementation gets wrong. *)
let test_deque_concurrent () =
  let n = 20000 in
  let d = Deque.create ~capacity:16 () in
  let stop = Atomic.make false in
  let stolen = Array.make 2 [] in
  let thieves =
    Array.init 2 (fun t ->
        Domain.spawn (fun () ->
            let acc = ref [] in
            let rec drain () =
              match Deque.steal d with
              | Some x ->
                acc := x :: !acc;
                drain ()
              | None -> ()
            in
            while not (Atomic.get stop) do
              drain ();
              Domain.cpu_relax ()
            done;
            drain ();
            stolen.(t) <- !acc))
  in
  let popped = ref [] in
  for i = 0 to n - 1 do
    Deque.push d i;
    if i land 3 = 0 then
      match Deque.pop d with Some x -> popped := x :: !popped | None -> ()
  done;
  let rec drain () =
    match Deque.pop d with
    | Some x ->
      popped := x :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set stop true;
  Array.iter Domain.join thieves;
  let all = !popped @ stolen.(0) @ stolen.(1) in
  check Alcotest.int "every item surfaced exactly once" n (List.length all);
  List.iteri
    (fun i x -> if i <> x then Alcotest.failf "item %d surfaced as %d" i x)
    (List.sort Int.compare all)

(* ------------------------------------------------------------------ *)
(* Arena (bump allocator) and Epoch_dict (O(1)-clear dictionary)       *)

let test_arena_reset_reclaims () =
  let a = Arena.create ~capacity:16 () in
  let o1 = Arena.alloc a 8 in
  check Alcotest.int "first block at offset 0" 0 o1;
  for i = 0 to 7 do
    Arena.set a (o1 + i) (100 + i)
  done;
  (* Growth past the initial capacity must preserve earlier blocks. *)
  let o2 = Arena.alloc a 64 in
  check Alcotest.int "second block follows the first" 8 o2;
  for i = 0 to 7 do
    check Alcotest.int "contents survive growth" (100 + i) (Arena.get a (o1 + i))
  done;
  check Alcotest.int "used counts both blocks" 72 (Arena.used a);
  Alcotest.(check bool) "capacity grew" true (Arena.capacity a >= 72);
  let e = Arena.epoch a in
  Arena.reset a;
  check Alcotest.int "reset reclaims everything" 0 (Arena.used a);
  check Alcotest.int "reset bumps the epoch" (e + 1) (Arena.epoch a);
  (* The reclaimed space is really reused: the next alloc lands at 0. *)
  check Alcotest.int "post-reset alloc reuses offset 0" 0 (Arena.alloc a 4)

let test_arena_epoch_guards_stale_offsets () =
  (* The use-after-reset discipline from the interface: a client holding
     (offset, epoch) must detect that a reset invalidated the offset —
     this is exactly how the nogood store guards its rem vectors. *)
  let a = Arena.create ~capacity:16 () in
  let off = Arena.alloc a 4 in
  Arena.set a off 42;
  let stamp = Arena.epoch a in
  Alcotest.(check bool) "live offset passes the epoch check" true (Arena.epoch a = stamp);
  Arena.reset a;
  Alcotest.(check bool) "stale offset fails the epoch check" false (Arena.epoch a = stamp);
  (* truncate rewinds without bumping: offsets below the mark stay valid. *)
  let o1 = Arena.alloc a 4 in
  Arena.set a o1 7;
  let _o2 = Arena.alloc a 4 in
  let e = Arena.epoch a in
  Arena.truncate a 4;
  check Alcotest.int "truncate rewinds used" 4 (Arena.used a);
  check Alcotest.int "truncate keeps the epoch" e (Arena.epoch a);
  check Alcotest.int "survivor block readable" 7 (Arena.get a o1);
  Alcotest.check_raises "negative alloc rejected"
    (Invalid_argument "Arena.alloc: negative size") (fun () -> ignore (Arena.alloc a (-1)))

let prop_arena_blocks_disjoint =
  (* Allocation is a bump cursor: blocks are adjacent, disjoint, and
     writes through one block never alias another. *)
  qtest "arena blocks are disjoint and ordered"
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 17))
    (fun sizes ->
      let a = Arena.create ~capacity:16 () in
      let offs = List.map (fun n -> (Arena.alloc a n, n)) sizes in
      let rec adjacent = function
        | (o1, n1) :: ((o2, _) :: _ as rest) -> o2 = o1 + n1 && adjacent rest
        | [ (o, n) ] -> o + n = Arena.used a
        | [] -> Arena.used a = 0
      in
      List.iteri (fun i (o, n) -> if n > 0 then Arena.set a o (i + 1)) offs;
      adjacent offs
      && List.for_all
           (fun (i, (o, n)) -> n = 0 || Arena.get a o = i + 1)
           (List.mapi (fun i b -> (i, b)) offs))

let prop_epoch_dict_model =
  (* Sequential refinement against Hashtbl: set/clear/find/length agree
     on every op sequence, across growth and repeated O(1) clears. *)
  qtest "epoch_dict matches reference map"
    QCheck2.Gen.(
      list_size (int_range 0 200) (triple (int_range 0 5) (int_range (-25) 25) (int_range 0 99)))
    (fun ops ->
      let d = Epoch_dict.create ~capacity:4 () in
      let h = Hashtbl.create 16 in
      List.for_all
        (fun (op, k, v) ->
          match op with
          | 0 ->
            Epoch_dict.clear d;
            Hashtbl.reset h;
            true
          | 1 | 2 | 3 ->
            Epoch_dict.set d k v;
            Hashtbl.replace h k v;
            true
          | _ ->
            Epoch_dict.find d k = Hashtbl.find_opt h k
            && Epoch_dict.get d ~default:(-1) k
               = Option.value ~default:(-1) (Hashtbl.find_opt h k)
            && Epoch_dict.length d = Hashtbl.length h)
        ops)

let test_epoch_dict_clear_is_epoch_bump () =
  let d = Epoch_dict.create ~capacity:4 () in
  for k = 0 to 99 do
    Epoch_dict.set d k (k * k)
  done;
  check Alcotest.int "all bindings live" 100 (Epoch_dict.length d);
  let e = Epoch_dict.epoch d in
  Epoch_dict.clear d;
  check Alcotest.int "clear bumps the epoch" (e + 1) (Epoch_dict.epoch d);
  check Alcotest.int "clear empties the table" 0 (Epoch_dict.length d);
  check Alcotest.(option int) "stale binding invisible" None (Epoch_dict.find d 7);
  (* Rebinding after the clear is fully independent of the old epoch. *)
  Epoch_dict.set d 7 1;
  check Alcotest.(option int) "rebind visible" (Some 1) (Epoch_dict.find d 7);
  check Alcotest.int "one live binding" 1 (Epoch_dict.length d)

let () =
  Alcotest.run "prelude"
    [
      ( "intmath",
        [
          Alcotest.test_case "gcd basics" `Quick test_gcd_basics;
          Alcotest.test_case "lcm basics" `Quick test_lcm_basics;
          Alcotest.test_case "lcm overflow" `Quick test_lcm_overflow;
          Alcotest.test_case "cdiv" `Quick test_cdiv;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "imod" `Quick test_imod;
          Alcotest.test_case "luby" `Quick test_luby;
          Alcotest.test_case "clamp" `Quick test_clamp;
          prop_gcd_divides;
          prop_lcm_gcd;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "float range" `Quick test_float_range;
          prop_prng_range;
          prop_in_range;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "full" `Quick test_bitset_full;
          Alcotest.test_case "next_from" `Quick test_bitset_next_from;
          Alcotest.test_case "blit/clear" `Quick test_bitset_blit_clear;
          Alcotest.test_case "singleton" `Quick test_bitset_singleton;
          prop_bitset_model;
        ] );
      ( "combi",
        [
          Alcotest.test_case "exhaustive C(5,3)" `Quick test_combi_exhaustive;
          Alcotest.test_case "edge cases" `Quick test_combi_edge;
          prop_combi_count;
          prop_combi_next_k_matches_next;
        ] );
      ( "ibits",
        [
          Alcotest.test_case "lowest bit index" `Quick test_ibits_lowest_bit;
          Alcotest.test_case "basics" `Quick test_ibits_basics;
          Alcotest.test_case "set operations" `Quick test_ibits_setops;
          prop_ibits_model;
        ] );
      ( "deque",
        [
          Alcotest.test_case "steal is FIFO" `Quick test_deque_steal_fifo;
          Alcotest.test_case "growth preserves order" `Quick test_deque_grow;
          Alcotest.test_case "concurrent owner + thieves" `Quick test_deque_concurrent;
          prop_deque_model;
        ] );
      ( "arena/epoch_dict",
        [
          Alcotest.test_case "reset reclaims" `Quick test_arena_reset_reclaims;
          Alcotest.test_case "epoch guards stale offsets" `Quick
            test_arena_epoch_guards_stale_offsets;
          Alcotest.test_case "clear is an epoch bump" `Quick test_epoch_dict_clear_is_epoch_bump;
          prop_arena_blocks_disjoint;
          prop_epoch_dict_model;
        ] );
      ( "misc",
        [
          Alcotest.test_case "ascii table" `Quick test_ascii_table;
          Alcotest.test_case "welford" `Quick test_welford;
          Alcotest.test_case "bool_vec" `Quick test_bool_vec;
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "budget cancel" `Quick test_budget_cancel;
          Alcotest.test_case "with_stop composes" `Quick test_with_stop_composes;
          Alcotest.test_case "sub budget" `Quick test_sub_budget;
          Alcotest.test_case "prng copy" `Quick test_prng_copy;
          Alcotest.test_case "welford degenerate" `Quick test_welford_degenerate;
          Alcotest.test_case "pow overflow" `Quick test_pow_overflow;
        ] );
    ]
