#!/bin/sh
# Smoke test for the mgrts serve daemon: pipe a mixed NDJSON batch —
# solves, a cache hit, a malformed line, a structurally infeasible
# instance, a failpoint-armed request — through one daemon process and
# check that every request gets a well-formed response, the daemon
# never dies mid-batch, and EOF is a clean exit 0.
set -u

MGRTS=$1

# The CI failpoints matrix arms solver sites for the whole test run;
# this script owns its own injection (per-request, via --failpoints), so
# the environment arming must not leak into the daemon under test.
MGRTS_FAILPOINTS=
export MGRTS_FAILPOINTS

fail() {
  echo "test_serve: $1" >&2
  exit 1
}

OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

{
  echo '{"id":"a","taskset":[[0,1,2,2],[1,3,4,4],[0,2,2,3]],"m":2}'
  echo '{"id":"b","taskset":[[0,2,2,3],[1,3,4,4],[0,1,2,2]],"m":2}'
  echo 'this is not json'
  echo '{"id":"over","taskset":[[0,2,2,2],[0,2,2,2],[0,2,2,2]],"m":2}'
  echo '{"id":"boom","taskset":[[0,1,2,2]],"m":1,"no_cache":true}'
  echo '{"id":"after","taskset":[[0,1,2,2]],"m":1,"no_cache":true}'
  echo '{"cmd":"stats"}'
} | "$MGRTS" serve --workers 1 --failpoints 'serve.request=raise:Out_of_memory@4' >"$OUT" 2>/dev/null
code=$?
[ "$code" -eq 0 ] || fail "daemon exit: expected 0, got $code"

# One JSON object per line, and every line is an object.
while IFS= read -r line; do
  case "$line" in
  {*}) ;;
  *) fail "non-JSON output line: $line" ;;
  esac
done <"$OUT"

has() {
  grep -q "$1" "$OUT" || fail "missing expected output: $1"
}

has '"id": "a", "status": "decided", "code": 0, "verdict": "feasible"'
# Same instance, reordered tasks: answered from the cache.
has '"id": "b", "status": "decided", "code": 0, "verdict": "feasible", "cached": true'
# The malformed line is answered (code 3) under a line-number fallback id.
has '"status": "error", "code": 3'
has '"id": "line-3"'
# Utilization > m: decided structurally, no search.
has '"id": "over", "status": "decided", "code": 0, "verdict": "infeasible"'
has '"solver": "front-door"'
# The armed failpoint fires on the 4th supervised request (a, b and
# over hit the scope first; --workers 1 pins that order): contained as
# that request's code-5 response...
has '"id": "boom", "status": "error", "code": 5'
# ...and the daemon keeps serving afterwards.
has '"id": "after", "status": "decided", "code": 0'
# Both the requested stats event and the final one are present.
[ "$(grep -c '"event": "stats"' "$OUT")" -ge 2 ] || fail "expected two stats events"
grep -q '"crashed": 1' "$OUT" || fail "final stats must count the contained crash"

# Responses for every request id, none lost.
for id in a b over boom after line-3; do
  grep -q "\"id\": \"$id\"" "$OUT" || fail "no response for request $id"
done

echo "serve smoke ok"
