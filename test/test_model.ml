(* Tests for the task model: tasks, task sets, cyclic windows (including
   hyperperiod wrap-around), the arithmetic job map, schedules, the C1-C4
   verifier, the clone transform and the necessary-condition analysis. *)

open Rt_model

let check = Alcotest.check
let qtest = Test_util.qtest

(* ------------------------------------------------------------------ *)
(* Task                                                                 *)

let test_task_make () =
  let t = Task.make ~offset:1 ~wcet:2 ~deadline:3 ~period:4 () in
  check Alcotest.int "laxity" 1 (Task.laxity t);
  Alcotest.(check (float 1e-9)) "utilization" 0.5 (Task.utilization t);
  Alcotest.(check bool) "constrained" true (Task.is_constrained t);
  check Alcotest.int "release 2" 9 (Task.release t 2);
  check Alcotest.int "deadline 2" 12 (Task.abs_deadline t 2)

let test_task_validation () =
  let invalid_msg = function
    | "neg offset" -> "Task.make: negative offset"
    | "zero wcet" -> "Task.make: wcet must be >= 1"
    | "d < c" -> "Task.make: deadline < wcet"
    | _ -> "Task.make: period must be >= 1"
  in
  let expect_invalid name f = Alcotest.check_raises name (Invalid_argument (invalid_msg name)) f in
  expect_invalid "neg offset" (fun () ->
      ignore (Task.make ~offset:(-1) ~wcet:1 ~deadline:1 ~period:1 ()));
  expect_invalid "zero wcet" (fun () ->
      ignore (Task.make ~offset:0 ~wcet:0 ~deadline:1 ~period:1 ()));
  expect_invalid "d < c" (fun () ->
      ignore (Task.make ~offset:0 ~wcet:3 ~deadline:2 ~period:5 ()));
  expect_invalid "zero period" (fun () ->
      ignore (Task.make ~offset:0 ~wcet:1 ~deadline:1 ~period:0 ()))

let test_task_arbitrary_deadline_allowed () =
  let t = Task.make ~offset:0 ~wcet:2 ~deadline:7 ~period:3 () in
  Alcotest.(check bool) "not constrained" false (Task.is_constrained t);
  Alcotest.(check (float 1e-9)) "density uses min(D,T)" (2. /. 3.) (Task.density t)

(* ------------------------------------------------------------------ *)
(* Taskset                                                              *)

let running = Examples.running_example

let test_taskset_hyperperiod () =
  check Alcotest.int "hyperperiod" 12 (Taskset.hyperperiod running);
  check Alcotest.int "size" 3 (Taskset.size running);
  let num, den = Taskset.utilization_num_den running in
  check Alcotest.int "demand" 23 num;
  check Alcotest.int "den" 12 den;
  Alcotest.(check (float 1e-9)) "U" (23. /. 12.) (Taskset.utilization running);
  check Alcotest.int "min processors" 2 (Taskset.min_processors running);
  check Alcotest.int "jobs of τ1" 6 (Taskset.jobs_per_hyperperiod running 0);
  check Alcotest.int "total demand" 23 (Taskset.total_demand running)

let test_taskset_reindex () =
  let ts = Taskset.of_tuples [ (0, 1, 1, 2); (0, 1, 2, 3) ] in
  check Alcotest.int "task 0 id" 0 (Taskset.task ts 0).Task.id;
  check Alcotest.int "task 1 id" 1 (Taskset.task ts 1).Task.id;
  Alcotest.check_raises "empty" (Invalid_argument "Taskset.of_tasks: empty task set") (fun () ->
      ignore (Taskset.of_tasks []))

(* ------------------------------------------------------------------ *)
(* Windows                                                              *)

let test_windows_running_example () =
  let w = Windows.build running in
  check Alcotest.int "horizon" 12 (Windows.horizon w);
  check Alcotest.int "job count" (6 + 3 + 4) (Windows.job_count w);
  (* τ2 (id 1): offset 1, D 4, T 4 -> windows {1..4},{5..8},{9,10,11,0}. *)
  let jobs = Windows.jobs_of_task w 1 in
  check Alcotest.int "three jobs" 3 (Array.length jobs);
  Alcotest.(check (list int)) "wrapped window" [ 9; 10; 11; 0 ]
    (Array.to_list jobs.(2).Windows.slots);
  (* job_at resolves the wrap. *)
  (match Windows.job_at w ~task:1 ~time:0 with
  | Some j -> check Alcotest.int "slot 0 is job 2 of τ2" 2 j.Windows.index
  | None -> Alcotest.fail "expected a job at slot 0");
  (* τ3 (id 2): D 2, T 3 -> slot 2 uncovered. *)
  Alcotest.(check bool) "gap at slot 2" true (Windows.job_at w ~task:2 ~time:2 = None)

let test_windows_available () =
  let w = Windows.build running in
  Alcotest.(check (list int)) "all at t=0" [ 0; 1; 2 ] (Windows.available_tasks w ~time:0);
  Alcotest.(check (list int)) "τ3 gap at t=2" [ 0; 1 ] (Windows.available_tasks w ~time:2)

let test_windows_rejects_arbitrary () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Windows.build Examples.arbitrary_deadline);
       false
     with Invalid_argument _ -> true)

let test_windows_offset_folding () =
  (* A task with offset >= period folds to offset mod period. *)
  let a = Taskset.of_tuples [ (5, 1, 2, 3) ] in
  let b = Taskset.of_tuples [ (2, 1, 2, 3) ] in
  let wa = Windows.build a and wb = Windows.build b in
  let slots ts_w = Array.map (fun (j : Windows.job) -> Array.to_list j.Windows.slots) (Windows.jobs ts_w) in
  Alcotest.(check (array (list int))) "same cyclic pattern" (slots wb) (slots wa)

let prop_windows_disjoint_and_cover =
  qtest ~count:200 "per-task windows partition D·(T/Ti) slots"
    (Test_util.taskset_gen ())
    (fun ts ->
      let w = Windows.build ts in
      let horizon = Windows.horizon w in
      Array.for_all
        (fun i ->
          let covered = Array.make horizon 0 in
          Array.iter
            (fun (j : Windows.job) ->
              Array.iter (fun s -> covered.(s) <- covered.(s) + 1) j.Windows.slots)
            (Windows.jobs_of_task w i);
          let total = Array.fold_left ( + ) 0 covered in
          let task = Taskset.task ts i in
          Array.for_all (fun c -> c <= 1) covered
          && total = horizon / task.Task.period * task.Task.deadline)
        (Array.init (Taskset.size ts) Fun.id))

let prop_jobmap_agrees_with_windows =
  qtest ~count:200 "Jobmap and Windows agree on job_at"
    (Test_util.taskset_gen ())
    (fun ts ->
      let w = Windows.build ts in
      let jm = Jobmap.create ts in
      let horizon = Windows.horizon w in
      let ok = ref (Jobmap.job_count jm = Windows.job_count w && Jobmap.horizon jm = horizon) in
      for i = 0 to Taskset.size ts - 1 do
        for t = 0 to horizon - 1 do
          let via_w =
            match Windows.job_at w ~task:i ~time:t with
            | Some j -> j.Windows.index
            | None -> -1
          in
          if via_w <> Jobmap.local_job_at jm ~task:i ~time:t then ok := false
        done
      done;
      !ok)

let prop_slot_load =
  qtest ~count:100 "slot_load counts covering windows"
    (Test_util.taskset_gen ())
    (fun ts ->
      let w = Windows.build ts in
      let load = Windows.slot_load w in
      let horizon = Windows.horizon w in
      let ok = ref true in
      for t = 0 to horizon - 1 do
        if load.(t) <> List.length (Windows.available_tasks w ~time:t) then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Schedule                                                             *)

let test_schedule_basics () =
  let s = Schedule.create ~m:2 ~horizon:4 in
  check Alcotest.int "idle" Schedule.idle (Schedule.get s ~proc:0 ~time:0);
  Schedule.set s ~proc:0 ~time:1 2;
  Schedule.set s ~proc:1 ~time:1 0;
  check Alcotest.int "set/get" 2 (Schedule.get s ~proc:0 ~time:1);
  check Alcotest.int "cyclic get" 2 (Schedule.get s ~proc:0 ~time:5);
  Alcotest.(check (list int)) "tasks_at" [ 0; 2 ] (Schedule.tasks_at s ~time:1);
  Alcotest.(check (option int)) "proc_of" (Some 1) (Schedule.proc_of_task_at s ~task:0 ~time:1);
  check Alcotest.int "units" 1 (Schedule.units_of_task s ~task:2);
  check Alcotest.int "busy" 2 (Schedule.busy_slots s);
  let s' = Schedule.copy s in
  Alcotest.(check bool) "copy equal" true (Schedule.equal s s');
  Schedule.set s' ~proc:0 ~time:0 1;
  Alcotest.(check bool) "copy independent" false (Schedule.equal s s')

let test_schedule_validation () =
  Alcotest.(check bool) "bad proc raises" true
    (try
       ignore (Schedule.get (Schedule.create ~m:1 ~horizon:1) ~proc:2 ~time:0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "ragged rejected" true
    (try
       ignore (Schedule.of_cells [| [| 0 |]; [| 0; 1 |] |]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Verify                                                               *)

let feasible_schedule_for_running () =
  (* Hand-built feasible schedule of the running example (from the paper's
     structure): verified below. *)
  let s = Schedule.create ~m:2 ~horizon:12 in
  let assign proc cells = List.iteri (fun t v -> if v >= 0 then Schedule.set s ~proc ~time:t v) cells in
  (*          t=0  1  2  3  4  5  6  7  8  9 10 11 *)
  assign 0 [   0;  1; 0; 1; 0; -1; 0; 1; 0; 1; 1; 0 ];
  assign 1 [   2;  2; 1; 2; 2;  1; 2; 2; 1; 2; 2; 1 ];
  s

let test_verify_accepts () =
  match Verify.check running (feasible_schedule_for_running ()) with
  | Ok () -> ()
  | Error (v :: _) ->
    Alcotest.failf "unexpected violation: %s" (Format.asprintf "%a" Verify.pp_violation v)
  | Error [] -> Alcotest.fail "empty violation list"

let test_verify_rejects_out_of_window () =
  let s = feasible_schedule_for_running () in
  (* τ3 (id 2) has no window at slot 2. *)
  Schedule.set s ~proc:0 ~time:2 2;
  match Verify.check running s with
  | Ok () -> Alcotest.fail "accepted an out-of-window unit"
  | Error vs ->
    Alcotest.(check bool) "mentions C1" true
      (List.exists (function Verify.Out_of_window _ -> true | _ -> false) vs)

let test_verify_rejects_parallelism () =
  let s = feasible_schedule_for_running () in
  (* Run τ1 on both processors at t=0 (and break amounts as side effect). *)
  Schedule.set s ~proc:1 ~time:0 0;
  match Verify.check running s with
  | Ok () -> Alcotest.fail "accepted intra-task parallelism"
  | Error vs ->
    Alcotest.(check bool) "mentions C3" true
      (List.exists (function Verify.Parallelism _ -> true | _ -> false) vs)

let test_verify_rejects_wrong_amount () =
  let s = feasible_schedule_for_running () in
  Schedule.set s ~proc:0 ~time:0 Schedule.idle;
  match Verify.check running s with
  | Ok () -> Alcotest.fail "accepted an underserved job"
  | Error vs ->
    Alcotest.(check bool) "mentions C4" true
      (List.exists (function Verify.Wrong_amount _ -> true | _ -> false) vs)

let test_verify_rejects_bad_id () =
  let s = feasible_schedule_for_running () in
  Schedule.set s ~proc:0 ~time:5 7;
  match Verify.check running s with
  | Ok () -> Alcotest.fail "accepted an unknown task id"
  | Error vs ->
    Alcotest.(check bool) "mentions id" true
      (List.exists (function Verify.Bad_task _ -> true | _ -> false) vs)

let test_verify_zero_rate () =
  let ts, platform = Examples.dedicated in
  let s = Schedule.create ~m:2 ~horizon:(Taskset.hyperperiod ts) in
  (* τ3 (id 2) cannot run on P1 (rate 0). *)
  Schedule.set s ~proc:0 ~time:0 2;
  match Verify.check ~platform ts s with
  | Ok () -> Alcotest.fail "accepted a zero-rate cell"
  | Error vs ->
    Alcotest.(check bool) "mentions rate" true
      (List.exists (function Verify.Zero_rate _ -> true | _ -> false) vs)

let test_verify_weighted_amount () =
  (* One task, C=2, on a speed-2 processor: a single slot completes it. *)
  let ts = Taskset.of_tuples [ (0, 2, 2, 2) ] in
  let platform = Platform.uniform ~speeds:[| 2 |] in
  let s = Schedule.create ~m:1 ~horizon:2 in
  Schedule.set s ~proc:0 ~time:0 0;
  Alcotest.(check bool) "weighted ok" true (Verify.is_feasible ~platform ts s);
  (* Two slots would overshoot: 4 units for C=2. *)
  Schedule.set s ~proc:0 ~time:1 0;
  Alcotest.(check bool) "overshoot rejected" false (Verify.is_feasible ~platform ts s)

(* [Examples.arbitrary_deadline]: τ1 = (O=0, C=2, D=5, T=3), τ2 = (O=0,
   C=1, D=2, T=2); hyperperiod 6.  τ1's two jobs overlap on slots
   {0,1,3,4}, so one cell per processor at a shared slot is legal — each
   job takes one. *)
let cyclic_parallel_schedule () =
  let s = Schedule.create ~m:2 ~horizon:6 in
  let assign proc cells =
    List.iteri (fun t v -> if v >= 0 then Schedule.set s ~proc ~time:t v) cells
  in
  (*          t=0  1  2  3  4  5 *)
  assign 0 [   0;  1; 1; 0; 1; -1 ];
  assign 1 [   0; -1; -1; 0; -1; -1 ];
  s

let test_check_cyclic_accepts_job_parallelism () =
  (* Two jobs of τ1 run in parallel at t=0 and t=3: the plain checker
     calls that C3, the cyclic checker must assign one cell per job and
     accept. *)
  let ts = Examples.arbitrary_deadline in
  match Verify.check_cyclic ts (cyclic_parallel_schedule ()) with
  | Ok () -> ()
  | Error (v :: _) ->
    Alcotest.failf "unexpected violation: %s" (Format.asprintf "%a" Verify.pp_violation v)
  | Error [] -> Alcotest.fail "empty violation list"

let test_check_cyclic_rejects_per_job_excess () =
  (* τ1 runs on both processors at slot 2, which only job 0's window
     covers — and a job takes at most one unit per instant (per-job C3),
     so one of the two cells is unplaceable and job 1 ends up underserved
     even though the per-cycle total is right. *)
  let ts = Examples.arbitrary_deadline in
  let s = Schedule.create ~m:2 ~horizon:6 in
  List.iter
    (fun (proc, time, v) -> Schedule.set s ~proc ~time v)
    [
      (0, 0, 0); (0, 2, 0); (1, 2, 0); (1, 3, 0);
      (* τ2's three jobs, one unit in each window. *)
      (1, 1, 1); (0, 3, 1); (0, 4, 1);
    ];
  (match Verify.check_cyclic ts s with
  | Ok () -> Alcotest.fail "accepted a same-job same-slot excess"
  | Error vs ->
    Alcotest.(check bool) "mentions C4" true
      (List.exists (function Verify.Wrong_amount _ -> true | _ -> false) vs));
  Alcotest.(check bool) "plain checker horizon guard" true
    (try
       ignore (Verify.check_cyclic ts (Schedule.create ~m:2 ~horizon:7));
       false
     with Invalid_argument _ -> true)

let test_check_cyclic_rejects_wrong_total () =
  let ts = Examples.arbitrary_deadline in
  let s = cyclic_parallel_schedule () in
  Schedule.set s ~proc:1 ~time:0 Schedule.idle;
  match Verify.check_cyclic ts s with
  | Ok () -> Alcotest.fail "accepted a short per-cycle total"
  | Error vs ->
    Alcotest.(check bool) "mentions the total" true
      (List.exists (function Verify.Wrong_total _ -> true | _ -> false) vs)

(* ------------------------------------------------------------------ *)
(* Clone                                                                *)

let test_clone_parameters () =
  (* Section VI-B: τ=(O,C,D,T)=(0,2,5,3) -> k=2 clones with O'=0,3; T'=6. *)
  let ts = Taskset.of_tuples [ (0, 2, 5, 3) ] in
  let r = Clone.transform ts in
  let cloned = Clone.cloned r in
  check Alcotest.int "k" 2 (Clone.clone_count r 0);
  check Alcotest.int "n clones" 2 (Taskset.size cloned);
  let c0 = Taskset.task cloned 0 and c1 = Taskset.task cloned 1 in
  check Alcotest.int "O0" 0 c0.Task.offset;
  check Alcotest.int "O1" 3 c1.Task.offset;
  check Alcotest.int "C" 2 c0.Task.wcet;
  check Alcotest.int "D" 5 c0.Task.deadline;
  check Alcotest.int "T'" 6 c0.Task.period;
  Alcotest.(check bool) "clones constrained" true (Taskset.is_constrained cloned);
  Alcotest.(check (list int)) "clones_of" [ 0; 1 ] (Clone.clones_of r 0);
  check Alcotest.int "origin" 0 (Clone.origin r 1)

let prop_clone_identity_on_constrained =
  qtest ~count:100 "constrained tasks get one identical clone"
    (Test_util.taskset_gen ())
    (fun ts ->
      let r = Clone.transform ts in
      let cloned = Clone.cloned r in
      Taskset.size cloned = Taskset.size ts
      && Array.for_all
           (fun i ->
             let a = Taskset.task ts i and b = Taskset.task cloned i in
             a.Task.offset = b.Task.offset && a.Task.wcet = b.Task.wcet
             && a.Task.deadline = b.Task.deadline && a.Task.period = b.Task.period)
           (Array.init (Taskset.size ts) Fun.id))

let prop_clone_counts =
  qtest ~count:100 "k_i = ceil(D/T) and parameters follow Section VI-B"
    (Test_util.loose_taskset_gen ())
    (fun ts ->
      let r = Clone.transform ts in
      let cloned = Clone.cloned r in
      Array.for_all
        (fun i ->
          let task = Taskset.task ts i in
          let k = Prelude.Intmath.cdiv task.Task.deadline task.Task.period in
          Clone.clone_count r i = max 1 k
          && List.for_all
               (fun c ->
                 let clone = Taskset.task cloned c in
                 clone.Task.wcet = task.Task.wcet
                 && clone.Task.deadline = task.Task.deadline
                 && clone.Task.period = max 1 k * task.Task.period)
               (Clone.clones_of r i))
        (Array.init (Taskset.size ts) Fun.id))

(* ------------------------------------------------------------------ *)
(* Minproc (the pre-filters moved to the Analysis library; see
   test_analysis.ml)                                                    *)

let test_min_processors_search () =
  let solve ~m = if m >= 3 then `Feasible else `Infeasible in
  Alcotest.(check bool) "finds 3" true
    (Minproc.min_processors_feasible ~solve running ~max_m:5 = Minproc.Exact 3);
  let never ~m = ignore m; `Infeasible in
  Alcotest.(check bool) "none" true
    (Minproc.min_processors_feasible ~solve:never running ~max_m:4 = Minproc.All_infeasible);
  (* A timeout below the first feasible m demotes the verdict: the reported
     feasible m is only an upper bound, never presented as exact. *)
  let limited ~m = if m = 2 then `Undecided else if m >= 4 then `Feasible else `Infeasible in
  Alcotest.(check bool) "inconclusive" true
    (Minproc.min_processors_feasible ~solve:limited running ~max_m:5
    = Minproc.Inconclusive { first_limit = 2; feasible = Some 4 });
  let all_limited ~m = ignore m; `Undecided in
  Alcotest.(check bool) "inconclusive without upper bound" true
    (Minproc.min_processors_feasible ~solve:all_limited running ~max_m:4
    = Minproc.Inconclusive { first_limit = 2; feasible = None })

let test_min_processors_start () =
  (* A caller-supplied sound lower bound skips the refuted prefix... *)
  let probed = ref [] in
  let solve ~m =
    probed := m :: !probed;
    if m >= 4 then `Feasible else `Infeasible
  in
  Alcotest.(check bool) "finds 4 from 3" true
    (Minproc.min_processors_feasible ~start:3 ~solve running ~max_m:5 = Minproc.Exact 4);
  Alcotest.(check (list int)) "m=2 never probed" [ 4; 3 ] !probed;
  (* ... never lowers the ⌈U⌉ floor, and a bound above max_m means every
     candidate is already refuted. *)
  Alcotest.(check bool) "start below ceil U is clamped" true
    (Minproc.min_processors_feasible ~start:1 ~solve running ~max_m:5
    = Minproc.Exact 4);
  Alcotest.(check bool) "start beyond max_m" true
    (Minproc.min_processors_feasible ~start:6 ~solve running ~max_m:5
    = Minproc.All_infeasible)

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)

let test_metrics_counts () =
  let s = feasible_schedule_for_running () in
  let m = Metrics.analyze running s in
  check Alcotest.int "busy" 23 m.Metrics.busy_slots;
  check Alcotest.int "idle" 1 m.Metrics.idle_slots;
  check Alcotest.int "max parallelism" 2 m.Metrics.max_parallelism;
  Alcotest.(check (float 1e-9)) "avg parallelism" (23. /. 12.) m.Metrics.avg_parallelism;
  Alcotest.(check bool) "non-negative" true (m.Metrics.preemptions >= 0 && m.Metrics.migrations >= 0)

let test_metrics_single_task_no_preemption () =
  let ts = Taskset.of_tuples [ (0, 2, 3, 3) ] in
  let s = Schedule.create ~m:1 ~horizon:3 in
  Schedule.set s ~proc:0 ~time:0 0;
  Schedule.set s ~proc:0 ~time:1 0;
  let m = Metrics.analyze ts s in
  check Alcotest.int "no preemptions" 0 m.Metrics.preemptions;
  check Alcotest.int "no migrations" 0 m.Metrics.migrations

let test_metrics_detects_preemption () =
  (* Execute at window positions 0 and 2 with a gap: one preemption. *)
  let ts = Taskset.of_tuples [ (0, 2, 3, 3) ] in
  let s = Schedule.create ~m:1 ~horizon:3 in
  Schedule.set s ~proc:0 ~time:0 0;
  Schedule.set s ~proc:0 ~time:2 0;
  let m = Metrics.analyze ts s in
  check Alcotest.int "one preemption" 1 m.Metrics.preemptions

let test_metrics_detects_migration () =
  (* Same job on two processors in consecutive slots: one migration. *)
  let ts = Taskset.of_tuples [ (0, 2, 2, 2); (0, 2, 2, 2) ] in
  let s = Schedule.create ~m:2 ~horizon:2 in
  Schedule.set s ~proc:0 ~time:0 0;
  Schedule.set s ~proc:1 ~time:1 0;
  Schedule.set s ~proc:1 ~time:0 1;
  Schedule.set s ~proc:0 ~time:1 1;
  let m = Metrics.analyze ts s in
  Alcotest.(check bool) "migrations counted" true (m.Metrics.migrations >= 2)

let prop_metrics_bounds =
  qtest ~count:50 "metrics of solver schedules are internally consistent"
    (Test_util.instance_gen ~nmax:4 ~tmax:4 ())
    (fun (ts, m) ->
      match Csp2.Solver.solve ~budget:(Prelude.Timer.budget ~wall_s:5.0 ()) ts ~m with
      | Encodings.Outcome.Feasible sched, _ ->
        let metrics = Metrics.analyze ts sched in
        metrics.Metrics.busy_slots = Taskset.total_demand ts
        && metrics.Metrics.busy_slots + metrics.Metrics.idle_slots = m * Taskset.hyperperiod ts
        && metrics.Metrics.max_parallelism <= m
        && metrics.Metrics.preemptions >= 0
        && metrics.Metrics.migrations >= 0
      | _ -> true)

let test_gantt_rendering () =
  let s = feasible_schedule_for_running () in
  let text = Format.asprintf "%a" Schedule.pp_gantt s in
  (* Every task appears, and slot references stay within the horizon. *)
  Alcotest.(check bool) "mentions all tasks" true
    (List.for_all
       (fun needle ->
         let nl = String.length needle and hl = String.length text in
         let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
         go 0)
       [ "τ1"; "τ2"; "τ3"; "[P1"; "[P2" ])

(* ------------------------------------------------------------------ *)
(* Io                                                                   *)

let test_io_roundtrip () =
  let text = Io.taskset_to_string running in
  let parsed = Io.taskset_of_string text in
  Alcotest.(check string) "roundtrip" (Taskset.to_string running) (Taskset.to_string parsed)

let test_io_comments_and_blanks () =
  let ts = Io.taskset_of_string "# header\n\n0 1 2 2  # inline comment\n\t1 3 4 4\n" in
  check Alcotest.int "two tasks" 2 (Taskset.size ts)

let test_io_errors () =
  let fails input =
    Alcotest.(check bool) ("rejects " ^ input) true
      (try ignore (Io.taskset_of_string input); false with Failure _ -> true)
  in
  fails "";
  fails "1 2 3";
  fails "a b c d";
  fails "0 3 2 5" (* D < C *)

let test_io_schedule_csv () =
  let s = feasible_schedule_for_running () in
  let csv = Io.schedule_to_csv s in
  let parsed = Io.schedule_of_csv csv in
  Alcotest.(check bool) "csv roundtrip" true (Schedule.equal s parsed)

let prop_io_taskset_roundtrip =
  qtest ~count:100 "taskset text roundtrip"
    (Test_util.taskset_gen ())
    (fun ts ->
      Taskset.to_string (Io.taskset_of_string (Io.taskset_to_string ts)) = Taskset.to_string ts)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "rt_model"
    [
      ( "task",
        [
          Alcotest.test_case "make and accessors" `Quick test_task_make;
          Alcotest.test_case "validation" `Quick test_task_validation;
          Alcotest.test_case "arbitrary deadlines allowed" `Quick
            test_task_arbitrary_deadline_allowed;
        ] );
      ( "taskset",
        [
          Alcotest.test_case "hyperperiod and utilization" `Quick test_taskset_hyperperiod;
          Alcotest.test_case "re-identification" `Quick test_taskset_reindex;
        ] );
      ( "windows",
        [
          Alcotest.test_case "running example" `Quick test_windows_running_example;
          Alcotest.test_case "available tasks" `Quick test_windows_available;
          Alcotest.test_case "rejects arbitrary deadlines" `Quick test_windows_rejects_arbitrary;
          Alcotest.test_case "offset folding" `Quick test_windows_offset_folding;
          prop_windows_disjoint_and_cover;
          prop_jobmap_agrees_with_windows;
          prop_slot_load;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "basics" `Quick test_schedule_basics;
          Alcotest.test_case "validation" `Quick test_schedule_validation;
        ] );
      ( "verify",
        [
          Alcotest.test_case "accepts a feasible schedule" `Quick test_verify_accepts;
          Alcotest.test_case "rejects C1 violations" `Quick test_verify_rejects_out_of_window;
          Alcotest.test_case "rejects C3 violations" `Quick test_verify_rejects_parallelism;
          Alcotest.test_case "rejects C4 violations" `Quick test_verify_rejects_wrong_amount;
          Alcotest.test_case "rejects unknown ids" `Quick test_verify_rejects_bad_id;
          Alcotest.test_case "rejects zero-rate cells" `Quick test_verify_zero_rate;
          Alcotest.test_case "weighted amounts" `Quick test_verify_weighted_amount;
          Alcotest.test_case "cyclic: accepts job-level parallelism" `Quick
            test_check_cyclic_accepts_job_parallelism;
          Alcotest.test_case "cyclic: rejects per-job excess" `Quick
            test_check_cyclic_rejects_per_job_excess;
          Alcotest.test_case "cyclic: rejects wrong totals" `Quick
            test_check_cyclic_rejects_wrong_total;
        ] );
      ( "clone",
        [
          Alcotest.test_case "Section VI-B parameters" `Quick test_clone_parameters;
          prop_clone_identity_on_constrained;
          prop_clone_counts;
        ] );
      ( "minproc",
        [
          Alcotest.test_case "incremental m search" `Quick test_min_processors_search;
          Alcotest.test_case "lower-bound start" `Quick test_min_processors_start;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "running example counts" `Quick test_metrics_counts;
          Alcotest.test_case "no spurious events" `Quick test_metrics_single_task_no_preemption;
          Alcotest.test_case "preemption detection" `Quick test_metrics_detects_preemption;
          Alcotest.test_case "migration detection" `Quick test_metrics_detects_migration;
          Alcotest.test_case "gantt rendering" `Quick test_gantt_rendering;
          prop_metrics_bounds;
        ] );
      ( "io",
        [
          Alcotest.test_case "taskset roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "comments and blanks" `Quick test_io_comments_and_blanks;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "schedule csv" `Quick test_io_schedule_csv;
          prop_io_taskset_roundtrip;
        ] );
    ]
