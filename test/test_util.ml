(* Shared helpers for the test suites: QCheck generators for task systems
   and instances, and glue to register QCheck properties as alcotest
   cases. *)

open Rt_model

let qtest ?(count = 100) ?print name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ?print gen law)

(* A small task: parameters bounded so hyperperiods stay tiny and
   exhaustive cross-checks remain fast. *)
let task_gen ~tmax =
  let open QCheck2.Gen in
  int_range 1 tmax >>= fun period ->
  int_range 1 period >>= fun deadline ->
  int_range 1 deadline >>= fun wcet ->
  int_range 0 (period - 1) >>= fun offset ->
  return (Task.make ~offset ~wcet ~deadline ~period ())

let taskset_gen ?(nmax = 5) ?(tmax = 5) () =
  let open QCheck2.Gen in
  int_range 1 nmax >>= fun n ->
  list_size (return n) (task_gen ~tmax) >>= fun tasks ->
  return (Taskset.of_tasks tasks)

(* An instance pairs a task set with a processor count 1 <= m <= n+1. *)
let instance_gen ?(nmax = 5) ?(tmax = 5) () =
  let open QCheck2.Gen in
  taskset_gen ~nmax ~tmax () >>= fun ts ->
  int_range 1 (Taskset.size ts + 1) >>= fun m ->
  return (ts, m)

let print_taskset ts = Taskset.to_string ts
let print_instance (ts, m) = Printf.sprintf "m=%d %s" m (Taskset.to_string ts)

(* An arbitrary-deadline task (D may exceed T). *)
let loose_task_gen ~tmax =
  let open QCheck2.Gen in
  int_range 1 tmax >>= fun period ->
  int_range 1 (2 * tmax) >>= fun deadline ->
  int_range 1 deadline >>= fun wcet ->
  int_range 0 (period - 1) >>= fun offset ->
  return (Task.make ~offset ~wcet ~deadline ~period ())

let loose_taskset_gen ?(nmax = 4) ?(tmax = 4) () =
  let open QCheck2.Gen in
  int_range 1 nmax >>= fun n ->
  list_size (return n) (loose_task_gen ~tmax) >>= fun tasks ->
  return (Taskset.of_tasks tasks)

(* A heterogeneous platform for [n] tasks: every task keeps at least one
   positive rate. *)
let platform_gen ~n =
  let open QCheck2.Gen in
  int_range 1 3 >>= fun m ->
  let row =
    list_size (return m) (int_range 0 2) >>= fun rates ->
    if List.for_all (fun r -> r = 0) rates then
      int_range 0 (m - 1) >>= fun lucky ->
      return (List.mapi (fun j r -> if j = lucky then 1 else r) rates)
    else return rates
  in
  list_size (return n) row >>= fun rows ->
  return (Platform.heterogeneous ~rates:(Array.of_list (List.map Array.of_list rows)))
