(* Tests for the static schedulability analyzer: verdicts on hand-crafted
   instances, independent certificate validation (including corrupted
   certificates), pruned-domain soundness against verified schedules, and
   differential properties against the complete CSP2 backend. *)

open Rt_model
module O = Encodings.Outcome
module A = Analysis

let check = Alcotest.check
let qtest = Test_util.qtest

let analyze ?work_budget ts ~m = A.analyze ?work_budget ts ~m

let validate ts ~m cert = A.Certificate.validate ts (Platform.identical ~m) cert

let infeasible_cert name report =
  match report.A.verdict with
  | A.Infeasible cert -> cert
  | A.Trivially_feasible _ -> Alcotest.fail (name ^ ": expected Infeasible, got Trivially_feasible")
  | A.Pruned _ -> Alcotest.fail (name ^ ": expected Infeasible, got Pruned")

(* ------------------------------------------------------------------ *)
(* Hand-crafted verdicts                                                *)

(* The running example needs 2 processors (U = 23/12): on one, the r > 1
   filter fires with an exact utilization certificate. *)
let test_utilization_certificate () =
  let ts = Examples.running_example in
  let report = analyze ts ~m:1 in
  let cert = infeasible_cert "running m=1" report in
  (match cert.steps with
  | [ A.Certificate.Utilization { demand = 23; supply = 12 } ] -> ()
  | _ -> Alcotest.fail "expected a bare utilization step");
  Alcotest.(check bool) "validates" true (validate ts ~m:1 cert);
  check Alcotest.int "m_lower" 2 report.m_lower;
  Alcotest.(check (list string)) "nothing skipped" [] report.skipped

(* Three laxity-zero tasks share the slots {0,1}: every feasible schedule
   runs all three there, overloading m = 2 — caught without any search,
   while U = 1.5 <= m keeps the r > 1 filter silent. *)
let test_slot_overload () =
  let ts = Taskset.of_tuples [ (0, 2, 2, 4); (0, 2, 2, 4); (0, 2, 2, 4) ] in
  let report = analyze ts ~m:2 in
  let cert = infeasible_cert "zero-laxity overload" report in
  Alcotest.(check bool) "validates" true (validate ts ~m:2 cert);
  Alcotest.(check bool) "overload terminal" true
    (match List.rev cert.steps with A.Certificate.Slot_overload _ :: _ -> true | _ -> false);
  check Alcotest.int "m_lower from forced slots" 3 report.m_lower

(* Saturation cascade: two laxity-zero tasks saturate slots 0 and 1, which
   blocks the third task's only window and forces it into slot 1 — a
   three-step derivation ending in an overload. *)
let test_saturation_cascade () =
  let ts = Taskset.of_tuples [ (0, 2, 2, 4); (0, 2, 2, 4); (0, 1, 2, 4) ] in
  let report = analyze ts ~m:2 in
  let cert = infeasible_cert "saturation cascade" report in
  Alcotest.(check bool) "validates" true (validate ts ~m:2 cert);
  Alcotest.(check bool) "has a saturation step" true
    (List.exists (function A.Certificate.Saturated _ -> true | _ -> false) cert.steps)

(* Interval demand: on [0, 4) tasks τ1 and τ2 are forced to place 3 units
   each while m = 1 supplies 4 slots.  Utilization is exactly 1 and the
   hyperperiod supply matches the demand, so only the interval test can
   refute this instance statically. *)
let interval_trap =
  Taskset.of_tuples [ (0, 3, 4, 6); (0, 4, 5, 12); (10, 1, 2, 12); (5, 1, 1, 12) ]

let test_interval_demand () =
  let ts = interval_trap in
  Alcotest.(check bool) "r <= 1" false (A.utilization_exceeds ts ~m:1);
  let report = analyze ts ~m:1 in
  let cert = infeasible_cert "interval trap" report in
  Alcotest.(check bool) "validates" true (validate ts ~m:1 cert);
  Alcotest.(check bool) "interval terminal" true
    (match List.rev cert.steps with A.Certificate.Interval_demand _ :: _ -> true | _ -> false);
  (* The interval argument is m-independent here: ⌈6/4⌉ = 2 processors are
     needed although ⌈U⌉ = 1. *)
  check Alcotest.int "m_lower beats ceil U" 2 report.m_lower;
  check Alcotest.int "m_lower_bound agrees" 2 (A.m_lower_bound ts)

(* U exactly m must NOT be filtered by r > 1 (r = 1 is allowed) — but the
   analyzer is strictly stronger: both tasks' only window is slot 0, so the
   forced-slot argument still refutes m = 1. *)
let test_exact_boundary () =
  let ts = Taskset.of_tuples [ (0, 1, 1, 2); (0, 1, 1, 2) ] in
  Alcotest.(check bool) "r = 1 passes the filter" false (A.utilization_exceeds ts ~m:1);
  let cert = infeasible_cert "r = 1 but slot-overloaded" (analyze ts ~m:1) in
  Alcotest.(check bool) "validates" true (validate ts ~m:1 cert)

(* Sparse windows (the old slot_capacity_shortfall test family): demand 4
   per hyperperiod 4 but only three covered slots, so the hyperperiod
   supply argument refutes m = 1 without any forced slot. *)
let test_supply_shortfall () =
  let ts = Taskset.of_tuples [ (0, 2, 3, 4); (0, 2, 3, 4) ] in
  let report = analyze ts ~m:1 in
  let cert = infeasible_cert "sparse windows" report in
  Alcotest.(check bool) "validates" true (validate ts ~m:1 cert);
  Alcotest.(check bool) "supply terminal" true
    (match List.rev cert.steps with A.Certificate.Supply_shortfall _ :: _ -> true | _ -> false);
  match (analyze ts ~m:2).A.verdict with
  | A.Infeasible _ -> Alcotest.fail "feasible on two processors"
  | _ -> ()

(* Saturation prunes but does not refute: the fixpoint forces τ3 into
   slots {2,3} and blocks τ3/τ4 from the saturated slots {0,1}. *)
let pruned_example =
  Taskset.of_tuples [ (0, 2, 2, 4); (0, 2, 2, 4); (0, 2, 4, 4); (0, 1, 4, 4) ]

let test_pruned_domains () =
  let ts = pruned_example in
  let report = analyze ts ~m:2 in
  match report.A.verdict with
  | A.Pruned d ->
    Alcotest.(check bool) "fingerprint" true (A.Domains.matches d ~n:4 ~m:2 ~horizon:4);
    check Alcotest.int "forced cells" 6 (A.Domains.forced_cells d);
    check Alcotest.int "blocked cells" 4 (A.Domains.blocked_cells d);
    Alcotest.(check (list int)) "slot 0 forced" [ 0; 1 ] (A.Domains.forced_at d ~time:0);
    Alcotest.(check bool) "τ3 forced at 2" true (A.Domains.is_forced d ~task:2 ~time:2);
    Alcotest.(check bool) "τ3 blocked at 0" true (A.Domains.is_blocked d ~task:2 ~time:0);
    (* The instance is feasible; the unique (up to processor symmetry)
       schedule must respect the derived domains. *)
    (match Csp2.Solver.solve ts ~m:2 with
    | O.Feasible sched, _ ->
      Alcotest.(check bool) "verified" true (Verify.is_feasible ts sched);
      Alcotest.(check bool) "respects domains" true (A.Domains.respects d sched)
    | _ -> Alcotest.fail "pruned example should be feasible on 2 processors")
  | _ -> Alcotest.fail "expected Pruned"

let test_trivially_feasible () =
  let ts = Taskset.of_tuples [ (0, 1, 2, 2); (0, 1, 2, 2) ] in
  let report = analyze ts ~m:2 in
  match report.A.verdict with
  | A.Trivially_feasible sched ->
    Alcotest.(check bool) "verified" true (Verify.is_feasible ts sched)
  | _ -> Alcotest.fail "expected Trivially_feasible"

(* The old slot_capacity_shortfall guard silently returned "no conclusion"
   over the 10^7 cost line; the analyzer must now say so. *)
let test_budget_skip_is_reported () =
  let ts = Examples.running_example in
  let report = analyze ~work_budget:10 ts ~m:2 in
  Alcotest.(check bool) "skip reported" true (report.A.skipped <> []);
  match report.A.verdict with
  | A.Pruned d ->
    check Alcotest.int "m_lower still exact" 2 (A.Domains.m_lower d);
    check Alcotest.int "no facts claimed" 0 (A.Domains.forced_cells d + A.Domains.blocked_cells d)
  | _ -> Alcotest.fail "budget-starved analysis must stay inconclusive"

let test_wall_budget_skip_is_reported () =
  (* An already-expired wall budget must stop the window passes at the
     first checkpoint — reported, never silently degraded — so a caller
     racing the analyzer (portfolio arm 0) cannot lose its whole
     allowance to a slow interval scan. *)
  let ts = Examples.running_example in
  let wall = Prelude.Timer.budget ~wall_s:0.0 () in
  let report = A.analyze ~wall ts ~m:2 in
  (* The default work budget cannot trigger on the tiny running example,
     so any reported skip here comes from the wall check. *)
  Alcotest.(check bool) "skip reported" true (report.A.skipped <> []);
  (match report.A.verdict with
  | A.Pruned _ -> ()
  | _ -> Alcotest.fail "wall-starved analysis must stay inconclusive");
  let cancelled = Prelude.Timer.budget () in
  Prelude.Timer.cancel cancelled;
  let report = A.analyze ~wall:cancelled ts ~m:2 in
  Alcotest.(check bool) "cancelled budget also skips" true (report.A.skipped <> [])

let test_rejects_bad_arguments () =
  Alcotest.check_raises "m = 0"
    (Invalid_argument "Analysis.analyze: m must be >= 1") (fun () ->
      ignore (analyze Examples.running_example ~m:0));
  let loose = Taskset.of_tuples [ (0, 1, 5, 3) ] in
  Alcotest.(check bool) "arbitrary deadlines rejected" true
    (try
       ignore (analyze loose ~m:1);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Certificate validation is adversarial                                *)

let test_corrupted_certificates_rejected () =
  let ts = interval_trap in
  let cert = infeasible_cert "interval trap" (analyze ts ~m:1) in
  Alcotest.(check bool) "genuine" true (validate ts ~m:1 cert);
  let tamper f = { cert with A.Certificate.steps = f cert.A.Certificate.steps } in
  let tampered_demand =
    tamper
      (List.map (function
        | A.Certificate.Interval_demand i ->
          A.Certificate.Interval_demand { i with demand = i.demand + 1 }
        | s -> s))
  in
  Alcotest.(check bool) "tampered demand" false (validate ts ~m:1 tampered_demand);
  let wrong_m = { cert with A.Certificate.m = 2 } in
  Alcotest.(check bool) "wrong m" false (validate ts ~m:2 wrong_m);
  Alcotest.(check bool) "platform mismatch" false
    (A.Certificate.validate ts (Platform.identical ~m:2) cert);
  Alcotest.(check bool) "empty chain" false
    (validate ts ~m:1 { A.Certificate.m = 1; steps = [] });
  let no_terminal =
    tamper (List.filter (function A.Certificate.Interval_demand _ -> false | _ -> true))
  in
  Alcotest.(check bool) "derivations only" false (validate ts ~m:1 no_terminal);
  (* A fabricated overload on a healthy instance must not validate. *)
  let fake =
    { A.Certificate.m = 2; steps = [ A.Certificate.Slot_overload { time = 0 } ] }
  in
  Alcotest.(check bool) "fabricated overload" false
    (validate Examples.running_example ~m:2 fake)

let contains s sub =
  let n = String.length s and k = String.length sub in
  let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
  k = 0 || go 0

let test_certificate_pp () =
  let cert = infeasible_cert "interval trap" (analyze interval_trap ~m:1) in
  let s = Format.asprintf "%a" A.Certificate.pp cert in
  Alcotest.(check bool) "mentions the interval" true (contains s "interval")

(* ------------------------------------------------------------------ *)
(* Differential properties against the complete CSP2 backend            *)

let solve_exact ts ~m =
  let budget = Prelude.Timer.budget ~wall_s:10.0 () in
  fst (Csp2.Solver.solve ~budget ts ~m)

(* Every Infeasible verdict carries a valid certificate and never
   contradicts the complete solver; every Trivially_feasible verdict is a
   verified schedule. *)
let prop_analyzer_agrees_with_backend =
  qtest ~count:300 "analyzer never contradicts CSP2"
    (Test_util.instance_gen ())
    ~print:Test_util.print_instance
    (fun (ts, m) ->
      let report = analyze ts ~m in
      match report.A.verdict with
      | A.Infeasible cert ->
        validate ts ~m cert
        && (match solve_exact ts ~m with O.Feasible _ -> false | _ -> true)
      | A.Trivially_feasible sched -> Verify.is_feasible ts sched
      | A.Pruned _ -> true)

(* Domain soundness: any schedule the verifier accepts also respects the
   analyzer's pruned domains (forced cells are truly forced, blocked cells
   truly dead). *)
let prop_domains_sound =
  qtest ~count:300 "verified schedules respect pruned domains"
    (Test_util.instance_gen ())
    ~print:Test_util.print_instance
    (fun (ts, m) ->
      match (analyze ts ~m).A.verdict with
      | A.Pruned d -> (
        match solve_exact ts ~m with
        | O.Feasible sched -> Verify.is_feasible ts sched && A.Domains.respects d sched
        | _ -> true)
      | A.Infeasible _ | A.Trivially_feasible _ -> true)

(* Pruned domains only ever shrink the dedicated solver's search: with the
   analyzer's facts wired in, CSP2 reaches the same verdict in at most as
   many nodes. *)
let prop_csp2_nodes_monotone =
  qtest ~count:300 "csp2 node count with domains <= without"
    (Test_util.instance_gen ())
    ~print:Test_util.print_instance
    (fun (ts, m) ->
      match (analyze ts ~m).A.verdict with
      | A.Pruned d ->
        let budget () = Prelude.Timer.budget ~wall_s:10.0 () in
        let bare, bare_stats = Csp2.Solver.solve ~budget:(budget ()) ts ~m in
        let pruned, pruned_stats = Csp2.Solver.solve ~budget:(budget ()) ~domains:d ts ~m in
        let same_verdict =
          match (bare, pruned) with
          | O.Feasible _, O.Feasible _
          | O.Infeasible, O.Infeasible
          | O.Limit, _ | _, O.Limit -> true
          | _ -> false
        in
        same_verdict && pruned_stats.Csp2.Solver.nodes <= bare_stats.Csp2.Solver.nodes
      | A.Infeasible _ | A.Trivially_feasible _ -> true)

(* Local search with domains still only returns verified schedules, and
   those honor the pruned domains it was seeded with. *)
let prop_localsearch_respects_domains =
  qtest ~count:100 "min-conflicts with domains returns respecting schedules"
    (Test_util.instance_gen ())
    ~print:Test_util.print_instance
    (fun (ts, m) ->
      match (analyze ts ~m).A.verdict with
      | A.Pruned d -> (
        let budget = Prelude.Timer.budget ~nodes:200_000 () in
        match Localsearch.Min_conflicts.solve ~budget ~domains:d ts ~m with
        | O.Feasible sched, _ -> Verify.is_feasible ts sched && A.Domains.respects d sched
        | _ -> true)
      | A.Infeasible _ | A.Trivially_feasible _ -> true)

(* The m-independent lower bound never excludes a feasible processor
   count. *)
let prop_m_lower_sound =
  qtest ~count:300 "m_lower_bound never exceeds a feasible m"
    (Test_util.instance_gen ())
    ~print:Test_util.print_instance
    (fun (ts, m) ->
      match solve_exact ts ~m with
      | O.Feasible _ -> A.m_lower_bound ts <= m
      | _ -> true)

let () =
  Alcotest.run "analysis"
    [
      ( "verdicts",
        [
          Alcotest.test_case "utilization certificate" `Quick test_utilization_certificate;
          Alcotest.test_case "slot overload" `Quick test_slot_overload;
          Alcotest.test_case "saturation cascade" `Quick test_saturation_cascade;
          Alcotest.test_case "interval demand" `Quick test_interval_demand;
          Alcotest.test_case "r = 1 boundary" `Quick test_exact_boundary;
          Alcotest.test_case "supply shortfall" `Quick test_supply_shortfall;
          Alcotest.test_case "pruned domains" `Quick test_pruned_domains;
          Alcotest.test_case "trivially feasible" `Quick test_trivially_feasible;
          Alcotest.test_case "budget skip reported" `Quick test_budget_skip_is_reported;
          Alcotest.test_case "wall budget skip reported" `Quick test_wall_budget_skip_is_reported;
          Alcotest.test_case "bad arguments" `Quick test_rejects_bad_arguments;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "corrupted certificates rejected" `Quick
            test_corrupted_certificates_rejected;
          Alcotest.test_case "pretty-printing" `Quick test_certificate_pp;
        ] );
      ( "differential",
        [
          prop_analyzer_agrees_with_backend;
          prop_domains_sound;
          prop_csp2_nodes_monotone;
          prop_localsearch_respects_domains;
          prop_m_lower_sound;
        ] );
    ]
